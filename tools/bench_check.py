#!/usr/bin/env python3
"""Bench-regression gate: fail CI when a named benchmark regresses.

Compares a freshly produced Google Benchmark JSON file against the
committed perf trajectory (BENCH_*.json at the repo root) and exits
non-zero when any *named* benchmark is more than --threshold slower.

Absolute times do not transfer between machines, so the gate is meant to
run with --normalize-by: every time on each side is divided by that side's
reference benchmark before comparison. The gated quantity is then a
*shape* property of the suite (e.g. "a 256-pair batch costs ~4x a 64-pair
batch", "a coalescing window does not slow a pipelined herd") which holds
across hosts; machine speed cancels.

Scaling mode (--speedup-from/--speedup-to) gates *within* the current
file instead: it fails unless real_time(from) / real_time(to) reaches
--min-speedup — e.g. the 1-worker D&C build must be >= 3x slower than
the 8-worker one. Wall-clock speedup only exists when the host has the
cores, so the check reads the `host_cores` counter the bench attaches
and exits 0 (skipped, loudly) when the host is narrower than
--skip-below-cores. No baseline is needed in this mode.

Exit codes: 0 = all named benchmarks within threshold, 1 = regression or
missing benchmark, 2 = usage / unreadable input.

Examples:
  tools/bench_check.py --baseline BENCH_engine.json \
      --current build/BENCH_engine.fresh.json \
      --normalize-by BM_BatchLengths/64 \
      --name BM_BatchLengths/256 --name BM_BatchLengths/1024
  tools/bench_check.py --current /tmp/fresh_build.json \
      --speedup-from BM_BuildDncThreads/64/1 \
      --speedup-to BM_BuildDncThreads/64/8 \
      --min-speedup 3.0 --skip-below-cores 8
"""

import argparse
import json
import sys


def load_times(path, metric):
    """Returns {name: time} over plain iteration runs (no aggregates)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write(f"bench_check: cannot read {path}: {e}\n")
        sys.exit(2)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b.get("name")
        value = b.get(metric)
        if name is None or not isinstance(value, (int, float)) or value <= 0:
            continue
        times[name] = float(value)
    if not times:
        sys.stderr.write(f"bench_check: no usable benchmarks in {path}\n")
        sys.exit(2)
    return times


def normalize(times, reference, path):
    if reference not in times:
        sys.stderr.write(
            f"bench_check: reference '{reference}' not found in {path}\n")
        sys.exit(2)
    ref = times[reference]
    return {name: t / ref for name, t in times.items()}


def load_counter(path, name, counter):
    """Reads a user counter off one iteration run; None when absent."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write(f"bench_check: cannot read {path}: {e}\n")
        sys.exit(2)
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        if b.get("name") == name and isinstance(b.get(counter), (int, float)):
            return float(b[counter])
    return None


def check_scaling(args):
    """--speedup-from/--speedup-to: wall-clock scaling gate, no baseline."""
    # Speedup is a wall-clock property; cpu_time sums across workers and
    # would hide any parallelism, so this mode always reads real_time.
    times = load_times(args.current, "real_time")
    for name in (args.speedup_from, args.speedup_to):
        if name not in times:
            sys.stderr.write(
                f"bench_check: '{name}' not found in {args.current}\n")
            return 1
    cores = load_counter(args.current, args.speedup_to, "host_cores")
    if args.skip_below_cores > 0:
        if cores is None:
            sys.stderr.write(
                f"bench_check: '{args.speedup_to}' carries no host_cores "
                f"counter; cannot apply --skip-below-cores\n")
            return 2
        if cores < args.skip_below_cores:
            print(f"bench_check: SKIPPED scaling gate — host has "
                  f"{cores:.0f} cores, below --skip-below-cores "
                  f"{args.skip_below_cores} (speedup unmeasurable)")
            return 0
    speedup = times[args.speedup_from] / times[args.speedup_to]
    verdict = "ok" if speedup >= args.min_speedup else "FAIL"
    print(f"bench_check: {args.speedup_from} / {args.speedup_to} = "
          f"{speedup:.2f}x speedup (need >= {args.min_speedup:.2f}x, "
          f"host_cores={cores if cores is not None else '?'}) {verdict}")
    return 0 if verdict == "ok" else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default=None,
                    help="committed BENCH_*.json (the trajectory); required "
                         "except in scaling mode")
    ap.add_argument("--current", required=True,
                    help="freshly produced benchmark JSON")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max tolerated slowdown fraction (default 0.25)")
    ap.add_argument("--metric", default="cpu_time",
                    choices=["cpu_time", "real_time"],
                    help="which per-iteration time to compare")
    ap.add_argument("--normalize-by", metavar="NAME", default=None,
                    help="divide both sides by this benchmark's time first "
                         "(strongly recommended across machines)")
    ap.add_argument("--name", action="append", default=[],
                    help="benchmark to gate (repeatable); default: every "
                         "name present in the baseline")
    ap.add_argument("--speedup-from", metavar="NAME", default=None,
                    help="scaling mode: the slow (e.g. 1-worker) run")
    ap.add_argument("--speedup-to", metavar="NAME", default=None,
                    help="scaling mode: the fast (e.g. 8-worker) run")
    ap.add_argument("--min-speedup", type=float, default=3.0,
                    help="scaling mode: required from/to real_time ratio")
    ap.add_argument("--skip-below-cores", type=int, default=0,
                    help="scaling mode: exit 0 without judging when the "
                         "current file's host_cores counter is below this")
    args = ap.parse_args()

    if (args.speedup_from is None) != (args.speedup_to is None):
        sys.stderr.write("bench_check: --speedup-from and --speedup-to "
                         "must be given together\n")
        return 2
    if args.speedup_from is not None:
        return check_scaling(args)
    if args.baseline is None:
        sys.stderr.write("bench_check: --baseline is required outside "
                         "scaling mode\n")
        return 2

    base = load_times(args.baseline, args.metric)
    cur = load_times(args.current, args.metric)
    if args.normalize_by:
        base = normalize(base, args.normalize_by, args.baseline)
        cur = normalize(cur, args.normalize_by, args.current)

    names = args.name or sorted(base)
    if args.normalize_by:
        names = [n for n in names if n != args.normalize_by]

    failures = []
    width = max(len(n) for n in names)
    print(f"bench_check: {args.current} vs {args.baseline} "
          f"(metric={args.metric}"
          + (f", normalized by {args.normalize_by}" if args.normalize_by
             else "")
          + f", threshold +{args.threshold:.0%})")
    for name in names:
        if name not in base:
            print(f"  {name:<{width}}  MISSING in baseline — skipped "
                  f"(new benchmark?)")
            continue
        if name not in cur:
            print(f"  {name:<{width}}  MISSING in current — FAIL")
            failures.append(name)
            continue
        ratio = cur[name] / base[name]
        verdict = "FAIL" if ratio > 1.0 + args.threshold else "ok"
        print(f"  {name:<{width}}  {ratio:7.3f}x  {verdict}")
        if verdict == "FAIL":
            failures.append(name)

    if failures:
        print(f"bench_check: {len(failures)} regression(s): "
              + ", ".join(failures))
        return 1
    print("bench_check: all named benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
