#!/usr/bin/env python3
"""Bench-regression gate: fail CI when a named benchmark regresses.

Compares a freshly produced Google Benchmark JSON file against the
committed perf trajectory (BENCH_*.json at the repo root) and exits
non-zero when any *named* benchmark is more than --threshold slower.

Absolute times do not transfer between machines, so the gate is meant to
run with --normalize-by: every time on each side is divided by that side's
reference benchmark before comparison. The gated quantity is then a
*shape* property of the suite (e.g. "a 256-pair batch costs ~4x a 64-pair
batch", "a coalescing window does not slow a pipelined herd") which holds
across hosts; machine speed cancels.

Exit codes: 0 = all named benchmarks within threshold, 1 = regression or
missing benchmark, 2 = usage / unreadable input.

Examples:
  tools/bench_check.py --baseline BENCH_engine.json \
      --current build/BENCH_engine.fresh.json \
      --normalize-by BM_BatchLengths/64 \
      --name BM_BatchLengths/256 --name BM_BatchLengths/1024
"""

import argparse
import json
import sys


def load_times(path, metric):
    """Returns {name: time} over plain iteration runs (no aggregates)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write(f"bench_check: cannot read {path}: {e}\n")
        sys.exit(2)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b.get("name")
        value = b.get(metric)
        if name is None or not isinstance(value, (int, float)) or value <= 0:
            continue
        times[name] = float(value)
    if not times:
        sys.stderr.write(f"bench_check: no usable benchmarks in {path}\n")
        sys.exit(2)
    return times


def normalize(times, reference, path):
    if reference not in times:
        sys.stderr.write(
            f"bench_check: reference '{reference}' not found in {path}\n")
        sys.exit(2)
    ref = times[reference]
    return {name: t / ref for name, t in times.items()}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_*.json (the trajectory)")
    ap.add_argument("--current", required=True,
                    help="freshly produced benchmark JSON")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max tolerated slowdown fraction (default 0.25)")
    ap.add_argument("--metric", default="cpu_time",
                    choices=["cpu_time", "real_time"],
                    help="which per-iteration time to compare")
    ap.add_argument("--normalize-by", metavar="NAME", default=None,
                    help="divide both sides by this benchmark's time first "
                         "(strongly recommended across machines)")
    ap.add_argument("--name", action="append", default=[],
                    help="benchmark to gate (repeatable); default: every "
                         "name present in the baseline")
    args = ap.parse_args()

    base = load_times(args.baseline, args.metric)
    cur = load_times(args.current, args.metric)
    if args.normalize_by:
        base = normalize(base, args.normalize_by, args.baseline)
        cur = normalize(cur, args.normalize_by, args.current)

    names = args.name or sorted(base)
    if args.normalize_by:
        names = [n for n in names if n != args.normalize_by]

    failures = []
    width = max(len(n) for n in names)
    print(f"bench_check: {args.current} vs {args.baseline} "
          f"(metric={args.metric}"
          + (f", normalized by {args.normalize_by}" if args.normalize_by
             else "")
          + f", threshold +{args.threshold:.0%})")
    for name in names:
        if name not in base:
            print(f"  {name:<{width}}  MISSING in baseline — skipped "
                  f"(new benchmark?)")
            continue
        if name not in cur:
            print(f"  {name:<{width}}  MISSING in current — FAIL")
            failures.append(name)
            continue
        ratio = cur[name] / base[name]
        verdict = "FAIL" if ratio > 1.0 + args.threshold else "ok"
        print(f"  {name:<{width}}  {ratio:7.3f}x  {verdict}")
        if verdict == "FAIL":
            failures.append(name)

    if failures:
        print(f"bench_check: {len(failures)} regression(s): "
              + ", ".join(failures))
        return 1
    print("bench_check: all named benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
