// rspcli — the build-once / serve-many workflow, end to end:
//
//   rspcli build --gen uniform --n 256 --seed 7 --out scene.rsnap
//   rspcli info  scene.rsnap
//   rspcli query scene.rsnap --pair 1,1,200,180 --path
//   rspcli query scene.rsnap --random 8 --seed 3
//   rspcli bench scene.rsnap --queries 20000 --threads 8
//   rspcli serve --snapshot scene.rsnap --stdio --threads 8
//   rspcli serve --snapshot scene.rsnap --port 7070 --stats-json stats.json
//
// Fleet mode (io/manifest.h + serve/router.h):
//
//   rspcli build --gen uniform --n 256 --seed 7 --shards 3 --out fleet.man
//   rspcli serve --snapshot fleet.man --port 7101        # union shard server
//   rspcli serve --snapshot fleet.man --port 7101 \
//                --mount owned --shard 0                 # partial mount
//   rspcli serve --router fleet.man \
//                --shards 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 \
//                --port 7100
//
// `build --shards K` writes K row-partitioned shard snapshots plus the
// manifest; `serve --snapshot` on a manifest mounts the union (any shard
// server can answer any query) or, with `--mount owned --shard I`, just
// shard I's rows (~1/k the memory; unowned queries answer ERR NOT_OWNER);
// `serve --router` fans each request to the shard servers by source slab,
// re-routes NOT_OWNER refusals, and merges the responses — same wire
// grammar, so clients cannot tell a router from a single engine.
//
// `build` generates a scene (io/gen.h generators), runs the all-pairs
// build on an Engine and saves a snapshot; `query` and `bench` reopen the
// snapshot — paying the load cost, not the O(n^2) build — and serve
// queries through the normal Engine batch path. `serve` keeps the loaded
// engine resident and answers the line protocol of serve/protocol.h over
// stdin/stdout or a TCP port, coalescing pipelined requests into engine
// batches; on shutdown it writes a JSON telemetry summary to --stats-json
// (or stderr for '-'). Exit code 0 on success, 1 for usage errors, 2 when
// the library reports a non-OK Status.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "io/gen.h"
#include "io/manifest.h"
#include "io/snapshot.h"
#include "serve/router.h"
#include "serve/server.h"

namespace {

using namespace rsp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  rspcli build --gen NAME --n N [--seed S] [--threads K]\n"
      "               [--backend B] [--shards K] [--no-delta] --out FILE\n"
      "  rspcli info  FILE\n"
      "  rspcli query FILE [--threads K] [--backend B] [--map eager|mmap]"
      " (--pair X1,Y1,X2,Y2 ... | --random K [--seed S]) [--path]\n"
      "  rspcli bench FILE [--threads K] [--backend B] [--map eager|mmap]"
      " [--queries Q] [--seed S]\n"
      "  rspcli serve --snapshot FILE (--stdio | --port N) [--threads K]\n"
      "               [--backend B] [--map eager|mmap] [--window-us U]\n"
      "               [--max-batch B] [--stats-json FILE] [--max-sessions M]\n"
      "               [--max-queue Q] [--target-p95-us T]\n"
      "               [--mount union|owned --shard I]\n"
      "  rspcli serve --router MANIFEST --shards HOST:PORT,HOST:PORT,...\n"
      "               (--stdio | --port N) [--timeout-ms T] [--retries R]\n"
      "               [--max-sessions M] [--stats-json FILE]\n"
      "\n"
      "serve flags: --max-sessions caps *concurrent* TCP sessions (0 = no\n"
      "cap); --max-queue caps pending admitted requests — excess requests\n"
      "answer ERR LOAD_SHED (0 = unbounded); --target-p95-us adapts the\n"
      "coalescing window from the live p95 (0 = fixed --window-us).\n"
      "--mount owned --shard I mounts only shard I's rows of a manifest\n"
      "(~1/k the memory); queries needing other rows answer ERR NOT_OWNER\n"
      "and the fleet router re-routes them (--mount union, the default,\n"
      "mounts every shard's rows so any query is answerable locally).\n"
      "router flags: --shards lists one endpoint per manifest shard (in\n"
      "manifest order); --timeout-ms bounds each shard exchange; --retries\n"
      "is the reconnect-and-resend budget after a failure (exhausted\n"
      "retries answer ERR SHARD_DOWN).\n"
      "--map mmap maps the snapshot and adopts the tables in place (replica\n"
      "fast start); --no-delta writes raw dist rows instead of the\n"
      "delta-compressed v5 encoding.\n"
      "\n"
      "backends: ";
  for (Backend b : {Backend::kAuto, Backend::kAllPairsSeq,
                    Backend::kAllPairsParallel, Backend::kBoundaryTree,
                    Backend::kDijkstraBaseline}) {
    std::cerr << (b == Backend::kAuto ? "" : " ") << backend_name(b);
  }
  std::cerr << "\ngenerators:";
  for (const auto& g : kAllGens) std::cerr << ' ' << g.name;
  std::cerr << "\n";
  return 1;
}

int fail_status(const Status& st) {
  std::cerr << "error: " << st << "\n";
  return 2;
}

// Tiny flag scanner: flags may appear in any order after the subcommand.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  bool has(const std::string& name) const {
    for (const auto& [k, v] : flags)
      if (k == name) return true;
    return false;
  }
  std::string get(const std::string& name, const std::string& dflt = "") const {
    for (const auto& [k, v] : flags)
      if (k == name) return v;
    return dflt;
  }
  // All values of a repeatable flag (--pair may be given many times).
  std::vector<std::string> all(const std::string& name) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : flags)
      if (k == name) out.push_back(v);
    return out;
  }
};

bool parse_args(int argc, char** argv, int start, Args& out) {
  for (int i = start; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      std::string name = a.substr(2);
      if (name == "path" || name == "stdio" || name == "no-delta") {
        // boolean flags
        out.flags.emplace_back(name, "1");
        continue;
      }
      if (i + 1 >= argc) {
        std::cerr << "missing value for --" << name << "\n";
        return false;
      }
      out.flags.emplace_back(name, argv[++i]);
    } else {
      out.positional.push_back(a);
    }
  }
  return true;
}

// Rejects flags no subcommand handler reads — a typo (--thread for
// --threads) must fail loudly, not silently run a default configuration.
bool check_flags(const Args& args, std::initializer_list<const char*> allowed) {
  for (const auto& [k, v] : args.flags) {
    bool known = false;
    for (const char* a : allowed) known = known || k == a;
    if (!known) {
      std::cerr << "unknown flag --" << k << "\n";
      return false;
    }
  }
  return true;
}

bool parse_u64(const std::string& s, uint64_t& out) {
  try {
    size_t pos = 0;
    out = std::stoull(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

// Strict numeric flag read: an unparsable value ("10k", "-3") is a usage
// error, never a silent fallback to the default. Values are capped well
// below the wrap point of downstream arithmetic (2 * count etc.).
bool u64_flag(const Args& args, const std::string& name, uint64_t dflt,
              uint64_t& out) {
  constexpr uint64_t kMax = 1'000'000'000'000ull;
  const std::string s = args.get(name, "");
  if (s.empty()) {
    out = dflt;
    return true;
  }
  if (!parse_u64(s, out) || out > kMax) {
    std::cerr << "bad value for --" << name << ": '" << s << "'\n";
    return false;
  }
  return true;
}

bool parse_pair(const std::string& s, PointPair& out) {
  long long v[4];
  char trailing;
  if (std::sscanf(s.c_str(), "%lld,%lld,%lld,%lld%c", &v[0], &v[1], &v[2],
                  &v[3], &trailing) != 4) {
    return false;
  }
  out = PointPair{{v[0], v[1]}, {v[2], v[3]}};
  return true;
}

// Rejects random-sampling requests the scene cannot satisfy: the sampler
// draws *distinct* free lattice points, so asking for more than a fraction
// of the container's lattice would grind (the library's stuck check only
// fires after 1000 attempts per point). Fail fast with a clear message.
bool sampling_fits(const Scene& scene, uint64_t num_points) {
  const Rect& bb = scene.container().bbox();
  const double lattice = (static_cast<double>(bb.width()) + 1) *
                         (static_cast<double>(bb.height()) + 1);
  if (static_cast<double>(num_points) <= lattice / 4) return true;
  std::cerr << "error: cannot sample " << num_points
            << " distinct free points from a container with ~" << lattice
            << " lattice points; lower --random/--queries\n";
  return false;
}

bool options_from(const Args& args, EngineOptions& opt) {
  uint64_t threads = 0;
  if (!u64_flag(args, "threads", 0, threads)) return false;
  opt.num_threads = static_cast<size_t>(threads);
  const std::string be = args.get("backend", "");
  if (!be.empty()) {
    std::optional<Backend> b = backend_from_name(be);
    if (!b) {
      std::cerr << "unknown backend '" << be << "'\n";
      return false;
    }
    opt.backend = *b;
  }
  return true;
}

// Reads --map into an OpenOptions map mode ("eager" default).
bool map_mode_from(const Args& args, MapMode& out) {
  const std::string m = args.get("map", "eager");
  if (m == "eager") {
    out = MapMode::kEager;
    return true;
  }
  if (m == "mmap") {
    out = MapMode::kMmap;
    return true;
  }
  std::cerr << "bad value for --map: '" << m << "' (want eager or mmap)\n";
  return false;
}

int cmd_build(const Args& args) {
  if (!args.positional.empty() ||
      !check_flags(args,
                   {"gen", "n", "seed", "threads", "backend", "out",
                    "shards", "no-delta"})) {
    return usage();
  }
  const std::string gen_name = args.get("gen", "uniform");
  const std::string out_path = args.get("out");
  uint64_t n = 0, seed = 1, shards = 0;
  if (out_path.empty() || !u64_flag(args, "n", 0, n) || n == 0 ||
      !u64_flag(args, "seed", 1, seed) ||
      !u64_flag(args, "shards", 0, shards)) {
    return usage();
  }
  SceneGen gen = nullptr;
  for (const auto& g : kAllGens)
    if (gen_name == g.name) gen = g.fn;
  if (!gen) {
    std::cerr << "unknown generator '" << gen_name << "'\n";
    return usage();
  }

  auto t0 = Clock::now();
  Scene scene = gen(static_cast<size_t>(n), seed);
  const double gen_ms = ms_since(t0);

  EngineOptions opt;
  if (!options_from(args, opt)) return usage();
  t0 = Clock::now();
  Engine eng(std::move(scene), opt);
  if (Status st = eng.warmup(); !st.ok()) return fail_status(st);
  const double build_ms = ms_since(t0);

  t0 = Clock::now();
  if (Status st = eng.save(out_path,
                           {.shards = static_cast<size_t>(shards),
                            .delta_encode = !args.has("no-delta")});
      !st.ok()) {
    return fail_status(st);
  }
  const double save_ms = ms_since(t0);

  std::cout << "scene: gen=" << gen_name << " n=" << n << " seed=" << seed
            << " (" << gen_ms << " ms)\n"
            << "build: backend=" << backend_name(eng.backend())
            << " threads=" << eng.num_threads() << " (" << build_ms
            << " ms)\n";
  if (shards > 0) {
    std::cout << "saved: " << out_path << " + " << shards
              << " shard snapshot(s) (" << save_ms << " ms)\n";
  } else {
    std::cout << "saved: " << out_path << " (" << save_ms << " ms)\n";
  }
  return 0;
}

int cmd_info(const Args& args) {
  if (args.positional.size() != 1 || !check_flags(args, {})) return usage();
  if (is_manifest_file(args.positional[0])) {
    Result<ShardManifest> man = load_manifest(args.positional[0]);
    if (!man.ok()) return fail_status(man.status());
    uint64_t union_rows = 0;
    for (const ShardEntry& e : man->shards) union_rows += e.row_hi - e.row_lo;
    std::cout << "manifest: " << args.positional[0] << "\n"
              << "  format version:     " << kManifestFormatVersion << "\n"
              << "  obstacles:          " << man->num_obstacles << "\n"
              << "  V_R vertices (m):   " << man->m << "\n"
              << "  shards:             " << man->shards.size() << "\n"
              << "  union rows:         " << union_rows << " of " << man->m
              << "\n";
    uint64_t total_bytes = 0;
    for (size_t i = 0; i < man->shards.size(); ++i) {
      const ShardEntry& e = man->shards[i];
      std::error_code ec;
      const uint64_t fsize = std::filesystem::file_size(
          shard_file_path(args.positional[0], e), ec);
      std::cout << "  shard " << i << ": " << e.file << " rows [" << e.row_lo
                << ", " << e.row_hi << ") slab x [" << e.x_lo << ", "
                << e.x_hi << ") ";
      if (ec) {
        std::cout << "size unavailable (" << ec.message() << ")";
      } else {
        total_bytes += fsize;
        std::cout << fsize << " bytes";
      }
      std::cout << " checksum " << std::hex << std::setw(16)
                << std::setfill('0') << e.checksum << std::dec
                << std::setfill(' ') << "\n";
    }
    std::cout << "  shard bytes:        " << total_bytes << "\n";
    return 0;
  }
  std::ifstream is(args.positional[0], std::ios::binary);
  if (!is) {
    return fail_status(
        Status::IoError("cannot open '" + args.positional[0] + "'"));
  }
  Result<SnapshotInfo> info = read_snapshot_info(is);
  if (!info.ok()) return fail_status(info.status());
  std::cout << "snapshot: " << args.positional[0] << "\n"
            << "  format version:     " << info->format_version << "\n"
            << "  payload:            " << payload_kind_name(info->kind)
            << "\n"
            << "  obstacles:          " << info->num_obstacles << "\n"
            << "  container vertices: " << info->num_container_vertices << "\n";
  if (info->kind == SnapshotPayloadKind::kAllPairs) {
    std::cout << "  V_R vertices (m):   " << info->num_vertices << "\n";
  } else if (info->kind == SnapshotPayloadKind::kAllPairsShard) {
    std::cout << "  V_R vertices (m):   " << info->num_vertices << "\n"
              << "  source rows:        [" << info->row_lo << ", "
              << info->row_hi << ")\n";
  }
  if (info->dist_section_bytes > 0) {
    std::cout << "  dist section:       " << info->dist_section_bytes
              << " bytes ("
              << (info->dist_delta_encoded ? "delta-encoded" : "raw")
              << ")\n";
  }
  if (info->kind == SnapshotPayloadKind::kBoundaryTree) {
    std::cout << "  recursion nodes:    " << info->num_tree_nodes << "\n";
    // The tree is sublinear-space, so a full load is cheap here (unlike the
    // O(n^2) all-pairs payload, which info never materializes). Report the
    // port-matrix compression split: resident bytes vs dense-equivalent.
    // read_snapshot_info rewound the stream, so load composes on it.
    Result<SnapshotPayload> payload = load_snapshot(is);
    if (!payload.ok()) return fail_status(payload.status());
    if (payload->tree) {
      const size_t pb = payload->tree->port_matrix_bytes();
      const size_t pd = payload->tree->port_matrix_dense_bytes();
      std::cout << "  port bytes:         " << pb << " (dense-equivalent " << pd;
      if (pb > 0) {
        std::cout << ", " << std::fixed << std::setprecision(1)
                  << static_cast<double>(pd) / static_cast<double>(pb) << "x";
      }
      std::cout << ")\n";
    }
  }
  return 0;
}

int cmd_query(const Args& args) {
  if (args.positional.size() != 1 ||
      !check_flags(args, {"threads", "backend", "map", "pair", "random",
                          "seed", "path"})) {
    return usage();
  }
  uint64_t random_k = 0, seed = 1;
  if (!u64_flag(args, "random", 0, random_k) ||
      !u64_flag(args, "seed", 1, seed)) {
    return usage();
  }
  OpenOptions oopt;
  if (!options_from(args, oopt.engine) || !map_mode_from(args, oopt.map)) {
    return usage();
  }

  auto t0 = Clock::now();
  Result<Engine> eng = Engine::open(args.positional[0], oopt);
  if (!eng.ok()) return fail_status(eng.status());
  const double load_ms = ms_since(t0);

  std::vector<PointPair> pairs;
  for (const std::string& s : args.all("pair")) {
    PointPair p;
    if (!parse_pair(s, p)) {
      std::cerr << "bad --pair '" << s << "' (want X1,Y1,X2,Y2)\n";
      return usage();
    }
    pairs.push_back(p);
  }
  if (random_k > 0) {
    if (!sampling_fits(eng->scene(), 2 * random_k)) return 2;
    auto pts = random_free_points(eng->scene(), 2 * random_k, seed);
    for (uint64_t i = 0; i < random_k; ++i) {
      pairs.push_back({pts[2 * i], pts[2 * i + 1]});
    }
  }
  if (pairs.empty()) {
    std::cerr << "no queries given (--pair or --random)\n";
    return usage();
  }

  std::cout << "opened " << args.positional[0] << " in " << load_ms
            << " ms (backend=" << backend_name(eng->backend()) << ")\n";
  if (args.has("path")) {
    Result<std::vector<std::vector<Point>>> paths = eng->paths(pairs);
    if (!paths.ok()) return fail_status(paths.status());
    for (size_t i = 0; i < pairs.size(); ++i) {
      std::cout << pairs[i].s << " -> " << pairs[i].t << " :";
      for (const Point& p : (*paths)[i]) std::cout << ' ' << p;
      std::cout << "\n";
    }
  } else {
    Result<std::vector<Length>> lens = eng->lengths(pairs);
    if (!lens.ok()) return fail_status(lens.status());
    for (size_t i = 0; i < pairs.size(); ++i) {
      std::cout << pairs[i].s << " -> " << pairs[i].t << " : "
                << (*lens)[i] << "\n";
    }
  }
  return 0;
}

int cmd_bench(const Args& args) {
  if (args.positional.size() != 1 ||
      !check_flags(args, {"threads", "backend", "map", "queries", "seed"})) {
    return usage();
  }
  uint64_t queries = 10000, seed = 1;
  if (!u64_flag(args, "queries", 10000, queries) || queries == 0 ||
      !u64_flag(args, "seed", 1, seed)) {
    return usage();
  }
  OpenOptions oopt;
  if (!options_from(args, oopt.engine) || !map_mode_from(args, oopt.map)) {
    return usage();
  }

  auto t0 = Clock::now();
  Result<Engine> eng = Engine::open(args.positional[0], oopt);
  if (!eng.ok()) return fail_status(eng.status());
  const double load_ms = ms_since(t0);

  if (!sampling_fits(eng->scene(), 2 * queries)) return 2;
  auto pts = random_free_points(eng->scene(), 2 * queries, seed);
  std::vector<PointPair> pairs(queries);
  for (uint64_t i = 0; i < queries; ++i) {
    pairs[i] = {pts[2 * i], pts[2 * i + 1]};
  }

  t0 = Clock::now();
  Result<std::vector<Length>> lens = eng->lengths(pairs);
  const double query_ms = ms_since(t0);
  if (!lens.ok()) return fail_status(lens.status());

  Length sum = 0;
  for (Length l : *lens) sum += l;
  std::cout << "load:    " << load_ms << " ms\n"
            << "queries: " << queries << " in " << query_ms << " ms ("
            << (1000.0 * static_cast<double>(queries) / query_ms)
            << " qps, threads=" << eng->num_threads() << ")\n"
            << "checksum(sum of lengths): " << sum << "\n";
  return 0;
}

// Signal plumbing for `serve --port`: the handler may only touch the
// async-signal-safe shutdown_port (atomics + shutdown(2)).
std::atomic<QueryServer*> g_tcp_server{nullptr};
std::atomic<Router*> g_router{nullptr};

void stop_tcp_server(int) {
  if (QueryServer* s = g_tcp_server.load()) s->shutdown_port();
  if (Router* r = g_router.load()) r->shutdown_port();
}

// "host:port,host:port,..." — one endpoint per manifest shard, in order.
bool parse_endpoints(const std::string& s, std::vector<ShardEndpoint>& out) {
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const size_t colon = item.rfind(':');
    uint64_t port = 0;
    if (colon == std::string::npos || colon == 0 ||
        !parse_u64(item.substr(colon + 1), port) || port == 0 ||
        port > 65535) {
      return false;
    }
    out.push_back({item.substr(0, colon), static_cast<uint16_t>(port)});
  }
  return !out.empty();
}

// `serve --router MANIFEST`: fleet front end. Owns no engine — just the
// manifest (routing slabs) and one TCP connector per shard server.
int cmd_serve_router(const Args& args) {
  const std::string manifest_path = args.get("router");
  const bool stdio = args.has("stdio");
  uint64_t port = 0, timeout_ms = 2000, retries = 1, max_sessions = 0;
  if (!u64_flag(args, "port", 0, port) || port > 65535 ||
      !u64_flag(args, "timeout-ms", 2000, timeout_ms) || timeout_ms == 0 ||
      !u64_flag(args, "retries", 1, retries) ||
      !u64_flag(args, "max-sessions", 0, max_sessions)) {
    return usage();
  }
  if (stdio == (port != 0)) {
    std::cerr << "serve wants exactly one of --stdio or --port N\n";
    return usage();
  }
  Result<ShardManifest> man = load_manifest(manifest_path);
  if (!man.ok()) return fail_status(man.status());
  std::vector<ShardEndpoint> eps;
  const std::string shards_flag = args.get("shards");
  if (shards_flag.empty() || !parse_endpoints(shards_flag, eps)) {
    std::cerr << "bad or missing --shards (want HOST:PORT,HOST:PORT,...)\n";
    return usage();
  }
  if (eps.size() != man->shards.size()) {
    std::cerr << "--shards lists " << eps.size() << " endpoint(s) but the "
              << "manifest names " << man->shards.size() << " shard(s)\n";
    return 1;
  }

  RouterOptions ropt;
  ropt.shard_timeout = std::chrono::milliseconds(timeout_ms);
  ropt.shard_retries = static_cast<size_t>(retries);
  ropt.max_sessions = static_cast<size_t>(max_sessions);
  Router router(std::move(*man), tcp_connector(std::move(eps)), ropt);
  std::cerr << "routing " << manifest_path << " across "
            << router.manifest().shards.size() << " shard server(s)\n";

#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif
  int rc = 0;
  if (stdio) {
    router.serve(std::cin, std::cout);
  } else {
    g_router = &router;
    std::signal(SIGINT, stop_tcp_server);
    std::signal(SIGTERM, stop_tcp_server);
    Status st = router.serve_port(
        static_cast<uint16_t>(port),
        [](uint16_t p) { std::cerr << "listening on port " << p << "\n"; });
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_router = nullptr;
    if (!st.ok()) rc = fail_status(st);
  }

  const std::string stats_path = args.get("stats-json");
  if (!stats_path.empty()) {
    if (stats_path == "-") {
      std::cerr << router.stats_json();
    } else {
      std::ofstream os(stats_path, std::ios::trunc);
      os << router.stats_json();
      os.flush();
      if (!os.good()) {
        std::cerr << "error: cannot write stats to '" << stats_path << "'\n";
        if (rc == 0) rc = 2;
      }
    }
  }
  RouterStats s = router.stats();
  std::cerr << "routed " << s.requests << " requests (" << s.errors
            << " errors, " << s.shard_down << " shard_down)\n";
  return rc;
}

int cmd_serve(const Args& args) {
  if (!args.positional.empty() ||
      !check_flags(args, {"snapshot", "stdio", "port", "threads", "backend",
                          "map", "window-us", "max-batch", "stats-json",
                          "max-sessions", "max-queue", "target-p95-us",
                          "mount", "shard", "router", "shards", "timeout-ms",
                          "retries"})) {
    return usage();
  }
  if (args.has("router")) {
    if (args.has("snapshot")) {
      std::cerr << "serve wants --snapshot (engine) or --router (fleet), "
                << "not both\n";
      return usage();
    }
    if (!check_flags(args, {"router", "shards", "stdio", "port", "timeout-ms",
                            "retries", "max-sessions", "stats-json"})) {
      return usage();
    }
    return cmd_serve_router(args);
  }
  const std::string snap = args.get("snapshot");
  const bool stdio = args.has("stdio");
  uint64_t port = 0, window_us = 200, max_batch = 256, max_sessions = 0;
  uint64_t max_queue = 0, target_p95_us = 0;
  if (snap.empty() || !u64_flag(args, "port", 0, port) || port > 65535 ||
      !u64_flag(args, "window-us", 200, window_us) ||
      !u64_flag(args, "max-batch", 256, max_batch) || max_batch == 0 ||
      !u64_flag(args, "max-sessions", 0, max_sessions) ||
      !u64_flag(args, "max-queue", 0, max_queue) ||
      !u64_flag(args, "target-p95-us", 0, target_p95_us)) {
    return usage();
  }
  if (stdio == (port != 0)) {
    std::cerr << "serve wants exactly one of --stdio or --port N\n";
    return usage();
  }
  OpenOptions oopt;
  if (!options_from(args, oopt.engine) || !map_mode_from(args, oopt.map)) {
    return usage();
  }
  const std::string mount = args.get("mount", "union");
  if (mount == "owned") {
    uint64_t shard = 0;
    if (!args.has("shard") || !u64_flag(args, "shard", 0, shard)) {
      std::cerr << "--mount owned wants the shard to adopt: --shard I\n";
      return usage();
    }
    oopt.mount = MountMode::kOwnedRows;
    oopt.shard = static_cast<size_t>(shard);
  } else if (mount != "union") {
    std::cerr << "bad --mount '" << mount << "' (want union or owned)\n";
    return usage();
  } else if (args.has("shard")) {
    std::cerr << "--shard only applies with --mount owned\n";
    return usage();
  }

  auto t0 = Clock::now();
  Result<Engine> eng = Engine::open(snap, oopt);
  if (!eng.ok()) return fail_status(eng.status());
  // Session chatter goes to stderr: stdout carries only protocol
  // responses, so `rspcli serve --stdio < script` stays diffable.
  std::cerr << "serving " << snap << " (loaded in " << ms_since(t0)
            << " ms, backend=" << backend_name(eng->backend())
            << ", threads=" << eng->num_threads() << ")\n";

  ServeOptions sopt;
  sopt.coalesce_window_us = window_us;
  sopt.max_batch_pairs = static_cast<size_t>(max_batch);
  sopt.max_queue_depth = static_cast<size_t>(max_queue);
  sopt.target_p95_us = target_p95_us;
  QueryServer server(std::move(*eng), sopt);

  // A client (or the stdout pipe) vanishing mid-response must surface as
  // a failed write inside that one session, never as a process-killing
  // SIGPIPE for every other client. The socket layer already sends with
  // MSG_NOSIGNAL; this covers stdio and any platform gaps.
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif
  int rc = 0;
  if (stdio) {
    server.serve(std::cin, std::cout);
  } else {
    // SIGINT/SIGTERM end the accept loop cleanly (shutdown_port is
    // async-signal-safe), so the stats summary below is reachable for the
    // long-running TCP deployment, not only for bounded --max-sessions.
    g_tcp_server = &server;
    std::signal(SIGINT, stop_tcp_server);
    std::signal(SIGTERM, stop_tcp_server);
    Status st = server.serve_port(
        static_cast<uint16_t>(port), static_cast<size_t>(max_sessions),
        [](uint16_t p) { std::cerr << "listening on port " << p << "\n"; });
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_tcp_server = nullptr;
    if (!st.ok()) rc = fail_status(st);
  }

  const std::string stats_path = args.get("stats-json");
  if (!stats_path.empty()) {
    if (stats_path == "-") {
      std::cerr << server.stats_json();
    } else {
      std::ofstream os(stats_path, std::ios::trunc);
      os << server.stats_json();
      os.flush();  // surface buffered write failures before the check
      if (!os.good()) {
        std::cerr << "error: cannot write stats to '" << stats_path << "'\n";
        if (rc == 0) rc = 2;
      }
    }
  }
  ServeStats s = server.stats();
  std::cerr << "served " << s.requests << " requests (" << s.queries
            << " queries, " << s.errors << " errors, " << s.shed
            << " shed) in " << s.dispatches
            << " dispatches, mean batch " << s.mean_batch_occupancy()
            << ", p50/p95/p99 " << s.p50_us << '/' << s.p95_us << '/'
            << s.p99_us << " us\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Args args;
  if (!parse_args(argc, argv, 2, args)) return usage();
  // Library invariant failures (e.g. point sampling stuck on a scene too
  // small for the requested --random/--queries count) surface as
  // exceptions below the Status boundary; honor the exit-code contract
  // instead of letting them reach std::terminate.
  try {
    if (cmd == "build") return cmd_build(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "bench") return cmd_bench(args);
    if (cmd == "serve") return cmd_serve(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  std::cerr << "unknown command '" << cmd << "'\n";
  return usage();
}
