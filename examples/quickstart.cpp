// Quickstart: build the all-pairs shortest-path structure for a small
// scene, then run the three kinds of queries the paper supports:
// vertex-to-vertex lengths (O(1)), arbitrary-point lengths (O(log n)-ish),
// and actual shortest paths.

#include <iostream>

#include "core/query.h"

int main() {
  using namespace rsp;

  // A rectilinear convex container with three rectangular obstacles.
  RectilinearPolygon container = RectilinearPolygon::from_vertices(
      {{0, 0}, {40, 0}, {40, 26}, {30, 26}, {30, 30}, {0, 30}});
  Scene scene({Rect{5, 5, 11, 12}, Rect{16, 9, 24, 15}, Rect{28, 18, 33, 23}},
              container);

  AllPairsSP sp(std::move(scene));

  std::cout << "obstacle vertices: " << sp.num_vertices() << "\n";

  // O(1) vertex-pair query: vertex ids are 4*rect + {ll, lr, ur, ul}.
  std::cout << "dist(rect0.ll, rect2.ur) = " << sp.vertex_length(0, 10)
            << "\n";

  // Arbitrary points anywhere in the free space.
  Point s{1, 1}, t{39, 25};
  std::cout << "dist(" << s << ", " << t << ") = " << sp.length(s, t) << "\n";

  // The actual shortest path, as a polyline.
  std::cout << "path:";
  for (const Point& p : sp.path(s, t)) std::cout << " " << p;
  std::cout << "\n";
  return 0;
}
