// Quickstart: configure an rsp::Engine for a small scene, then run the
// kinds of queries the paper supports — single-pair lengths, actual
// shortest paths, and a batch of length queries — all through the
// non-throwing Result/Status API. Ends with the deployment loop: save the
// built engine to a snapshot and reopen it without rebuilding.

#include <iostream>
#include <sstream>

#include "api/engine.h"

int main() {
  using namespace rsp;

  // A rectilinear convex container with three rectangular obstacles.
  RectilinearPolygon container = RectilinearPolygon::from_vertices(
      {{0, 0}, {40, 0}, {40, 26}, {30, 26}, {30, 30}, {0, 30}});
  auto engine = Engine::Create(
      {Rect{5, 5, 11, 12}, Rect{16, 9, 24, 15}, Rect{28, 18, 33, 23}},
      container);
  if (!engine.ok()) {
    std::cerr << "scene rejected: " << engine.status() << "\n";
    return 1;
  }
  Engine& eng = engine.value();

  std::cout << "backend: " << backend_name(eng.backend()) << ", "
            << eng.scene().obstacle_vertices().size()
            << " obstacle vertices\n";

  // Vertex-to-vertex query: obstacle vertices are just points.
  Point r0_ll = eng.scene().vertex(0), r2_ur = eng.scene().vertex(10);
  std::cout << "dist(rect0.ll, rect2.ur) = " << *eng.length(r0_ll, r2_ur)
            << "\n";

  // Arbitrary points anywhere in the free space.
  Point s{1, 1}, t{39, 25};
  std::cout << "dist(" << s << ", " << t << ") = " << *eng.length(s, t)
            << "\n";

  // The actual shortest path, as a polyline. (Keep the Result alive while
  // iterating its value — a C++20 range-for does not extend the life of a
  // temporary Result.)
  auto sp_path = eng.path(s, t);
  std::cout << "path:";
  for (const Point& p : *sp_path) std::cout << " " << p;
  std::cout << "\n";

  // Batch queries fan out over the engine's pool (when configured).
  std::vector<PointPair> pairs = {{s, t}, {s, r2_ur}, {r0_ll, t}};
  auto lens = eng.lengths(pairs);
  std::cout << "batch:";
  for (Length v : *lens) std::cout << " " << v;
  std::cout << "\n";

  // Invalid queries come back as a Status, never an exception.
  auto bad = eng.length({7, 7}, t);  // inside rect 0
  std::cout << "blocked query -> " << bad.status() << "\n";

  // Snapshot round trip: persist the built structure (here to a string
  // stream; Engine::save("file.rsnap") for the file path) and reopen it.
  // The reopened engine skips the O(n^2) build and answers identically —
  // this is how query-server replicas start in a deployment.
  std::ostringstream snap;
  if (Status st = eng.save(snap, {}); !st.ok()) {
    std::cerr << "snapshot save failed: " << st << "\n";
    return 1;
  }
  std::istringstream in(snap.str());
  auto replica = Engine::open(in, {});
  if (!replica.ok()) {
    std::cerr << "snapshot open failed: " << replica.status() << "\n";
    return 1;
  }
  std::cout << "replica dist(" << s << ", " << t << ") = "
            << *replica->length(s, t) << " ("
            << snap.str().size() << "-byte snapshot)\n";
  return 0;
}
