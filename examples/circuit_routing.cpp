// Wire-layout scenario (the paper's §1 motivation: "wire layout, circuit
// design"): macro blocks on a die are obstacles; we estimate rectilinear
// net lengths between pin pairs. One AllPairsSP build serves every net —
// the paper's all-pairs data structure is exactly what a router's
// length-estimation inner loop wants.

#include <iostream>

#include "core/query.h"
#include "io/gen.h"
#include "io/svg.h"

int main() {
  using namespace rsp;

  // A die with macro blocks (grid-perturbed placement, as in row-based
  // layouts).
  Scene die = gen_grid(24, 2024);
  AllPairsSP sp{Scene{die}};

  // Nets: pin pairs sampled from the free area.
  auto pins = random_free_points(die, 12, 7);
  std::cout << "net  pin A        pin B        wirelength  detour_vs_L1\n";
  Length total = 0;
  for (size_t i = 0; i + 1 < pins.size(); i += 2) {
    Length len = sp.length(pins[i], pins[i + 1]);
    Length l1 = dist1(pins[i], pins[i + 1]);
    total += len;
    std::cout << i / 2 << "    " << pins[i] << "  " << pins[i + 1] << "  "
              << len << "        +" << (len - l1) << "\n";
  }
  std::cout << "total wirelength: " << total << "\n";

  // Render the die with the routed nets.
  SvgCanvas svg(die.container().bbox().expanded(2));
  svg.add_scene(die);
  const char* colors[] = {"#c00", "#06c", "#080", "#a0a", "#f80", "#0aa"};
  for (size_t i = 0; i + 1 < pins.size(); i += 2) {
    auto path = sp.path(pins[i], pins[i + 1]);
    svg.add_polyline(path, colors[(i / 2) % 6], 2.5);
    svg.add_point(pins[i], colors[(i / 2) % 6]);
    svg.add_point(pins[i + 1], colors[(i / 2) % 6]);
  }
  svg.write("circuit_routing.svg");
  std::cout << "wrote circuit_routing.svg\n";
  return 0;
}
