// Wire-layout scenario (the paper's §1 motivation: "wire layout, circuit
// design"): macro blocks on a die are obstacles; we estimate rectilinear
// net lengths between pin pairs. One engine build serves every net — and
// the nets go through the batch entry point, the shape a router's
// length-estimation inner loop actually has.

#include <iostream>

#include "api/engine.h"
#include "io/gen.h"
#include "io/svg.h"

int main() {
  using namespace rsp;

  // A die with macro blocks (grid-perturbed placement, as in row-based
  // layouts). Batch queries fan out over the engine-owned pool.
  Scene die = gen_grid(24, 2024);
  Engine eng(std::move(die), {.backend = Backend::kAuto, .num_threads = 4});

  // Nets: pin pairs sampled from the free area, queried as one batch.
  auto pins = random_free_points(eng.scene(), 12, 7);
  std::vector<PointPair> nets;
  for (size_t i = 0; i + 1 < pins.size(); i += 2) {
    nets.push_back({pins[i], pins[i + 1]});
  }
  auto lens = eng.lengths(nets);
  if (!lens.ok()) {
    std::cerr << "batch failed: " << lens.status() << "\n";
    return 1;
  }

  std::cout << "net  pin A        pin B        wirelength  detour_vs_L1\n";
  Length total = 0;
  for (size_t i = 0; i < nets.size(); ++i) {
    Length len = (*lens)[i];
    Length l1 = dist1(nets[i].s, nets[i].t);
    total += len;
    std::cout << i << "    " << nets[i].s << "  " << nets[i].t << "  " << len
              << "        +" << (len - l1) << "\n";
  }
  std::cout << "total wirelength: " << total << "\n";

  // Render the die with the routed nets (batch path queries).
  auto routed = eng.paths(nets);
  if (!routed.ok()) {
    std::cerr << "batch paths failed: " << routed.status() << "\n";
    return 1;
  }
  SvgCanvas svg(eng.scene().container().bbox().expanded(2));
  svg.add_scene(eng.scene());
  const char* colors[] = {"#c00", "#06c", "#080", "#a0a", "#f80", "#0aa"};
  for (size_t i = 0; i < routed->size(); ++i) {
    svg.add_polyline((*routed)[i], colors[i % 6], 2.5);
    svg.add_point(nets[i].s, colors[i % 6]);
    svg.add_point(nets[i].t, colors[i % 6]);
  }
  svg.write("circuit_routing.svg");
  std::cout << "wrote circuit_routing.svg\n";
  return 0;
}
