// Robot-motion scenario (paper §1: "robot motion"): a warehouse with
// shelving rows (the serpentine corridor workload) where a picking robot
// repeatedly needs shortest rectilinear routes. Routes go through the
// rsp::Engine facade; the §8 chunked path reporting demo reaches the
// implementation layer via Engine::all_pairs().

#include <iostream>

#include "api/engine.h"
#include "core/query.h"
#include "core/sptree.h"
#include "io/gen.h"
#include "io/svg.h"

int main() {
  using namespace rsp;

  Scene warehouse = gen_corridors(14, 99);
  Engine eng(warehouse);

  // Dock at the bottom-left free corner, pick location at the top.
  const auto& verts = eng.scene().obstacle_vertices();
  size_t dock = 0, pick = 0;
  for (size_t v = 0; v < verts.size(); ++v) {
    if (verts[v].y < verts[dock].y) dock = v;
    if (verts[v].y > verts[pick].y) pick = v;
  }

  auto route = eng.path(verts[dock], verts[pick]);
  if (!route.ok()) {
    std::cerr << "route failed: " << route.status() << "\n";
    return 1;
  }
  std::cout << "route from " << verts[dock] << " to " << verts[pick] << ": "
            << *eng.length(verts[dock], verts[pick]) << " units, "
            << route->size() - 1 << " segments\n";

  // §8: emit the route's predecessor chain in ⌈k/log n⌉ chunks, the way
  // the paper assigns one processor per chunk. This needs the shortest
  // path trees, so it goes through the implementation-layer escape hatch.
  const AllPairsSP& sp = *eng.all_pairs();
  SpTrees trees(sp.scene(), sp.tracer(), sp.data());
  int chunk = std::max<int>(
      1, static_cast<int>(std::log2(double(sp.num_vertices()))));
  auto pieces = trees.chunked_chain(dock, pick, chunk);
  std::cout << "chunked emission: " << pieces.size() << " chunks of <= "
            << chunk << " hops\n";

  SvgCanvas svg(eng.scene().container().bbox().expanded(2));
  svg.add_scene(eng.scene());
  svg.add_polyline(*route, "#c00", 3.0);
  svg.add_point(route->front(), "#080", 5);
  svg.add_point(route->back(), "#06c", 5);
  svg.write("warehouse_robot.svg");
  std::cout << "wrote warehouse_robot.svg\n";
  return 0;
}
