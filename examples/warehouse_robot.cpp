// Robot-motion scenario (paper §1: "robot motion"): a warehouse with
// shelving rows (the serpentine corridor workload) where a picking robot
// repeatedly needs shortest rectilinear routes. Demonstrates long paths
// (k >> log n) and the §8 chunked path reporting.

#include <iostream>

#include "core/query.h"
#include "core/sptree.h"
#include "io/gen.h"
#include "io/svg.h"

int main() {
  using namespace rsp;

  Scene warehouse = gen_corridors(14, 99);
  AllPairsSP sp{Scene{warehouse}};

  // Dock at the bottom-left free corner, pick location at the top.
  const auto& verts = warehouse.obstacle_vertices();
  size_t dock = 0, pick = 0;
  for (size_t v = 0; v < verts.size(); ++v) {
    if (verts[v].y < verts[dock].y) dock = v;
    if (verts[v].y > verts[pick].y) pick = v;
  }

  auto route = sp.vertex_path(dock, pick);
  std::cout << "route from " << verts[dock] << " to " << verts[pick] << ": "
            << sp.vertex_length(dock, pick) << " units, "
            << route.size() - 1 << " segments\n";

  // §8: emit the route's predecessor chain in ⌈k/log n⌉ chunks, the way
  // the paper assigns one processor per chunk.
  SpTrees trees(sp.scene(), sp.tracer(), sp.data());
  int chunk = std::max<int>(
      1, static_cast<int>(std::log2(double(sp.num_vertices()))));
  auto pieces = trees.chunked_chain(dock, pick, chunk);
  std::cout << "chunked emission: " << pieces.size() << " chunks of <= "
            << chunk << " hops\n";

  SvgCanvas svg(warehouse.container().bbox().expanded(2));
  svg.add_scene(warehouse);
  svg.add_polyline(route, "#c00", 3.0);
  svg.add_point(route.front(), "#080", 5);
  svg.add_point(route.back(), "#06c", 5);
  svg.write("warehouse_robot.svg");
  std::cout << "wrote warehouse_robot.svg\n";
  return 0;
}
