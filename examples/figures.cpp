// Regenerates the paper's illustrative figures from live geometry:
//   fig1  — MAX_NE / MAX_SW staircases of a rectangle set (paper Fig. 1)
//   fig2  — envelope / rectilinear hull (paper Fig. 2)
//   fig5  — NE(p) and WS(p) escape paths (paper Fig. 5)
//   fig6  — the staircase separator construction (paper Fig. 6)
//   fig9  — the divide step: separator and the two sides (paper Fig. 9)
//
// This example deliberately renders algorithm *internals* (staircases,
// separators) and issues no shortest-path queries, so it uses the geometry
// layers directly; query-driven examples go through api/engine.h.

#include <iostream>

#include "core/separator.h"
#include "geom/envelope.h"
#include "io/gen.h"
#include "io/svg.h"

using namespace rsp;

static void fig_staircases() {
  std::vector<Rect> rects{{2, 10, 8, 16}, {12, 4, 18, 9},
                          {22, 12, 27, 20}, {6, 24, 13, 28}};
  Scene s = Scene::with_bbox(rects, 6);
  SvgCanvas svg(s.container().bbox());
  svg.add_scene(s);
  svg.add_staircase(Staircase::max_staircase(rects, Quadrant::NE), "#c00");
  svg.add_staircase(Staircase::max_staircase(rects, Quadrant::SW), "#06c");
  svg.add_label({3, 29}, "MAX_NE", "#c00");
  svg.add_label({3, 3}, "MAX_SW", "#06c");
  svg.write("fig1_max_staircases.svg");
}

static void fig_envelope() {
  std::vector<Rect> rects{{0, 0, 5, 4}, {8, 6, 12, 11}, {3, 9, 6, 13}};
  Envelope env = Envelope::compute(rects);
  Scene s = Scene::with_bbox(rects, 4);
  SvgCanvas svg(s.container().bbox());
  svg.add_scene(s);
  if (env.hull_exists) svg.add_polygon(env.boundary, "#080");
  svg.write("fig2_envelope.svg");
}

static void fig_escape_paths() {
  Scene s = gen_uniform(10, 4);
  RayShooter shooter(s);
  Tracer tracer(s, shooter);
  auto pts = random_free_points(s, 1, 8);
  SvgCanvas svg(s.container().bbox());
  svg.add_scene(s);
  svg.add_polyline(tracer.trace(pts[0], TraceKind::NE), "#c00", 2.5);
  svg.add_polyline(tracer.trace(pts[0], TraceKind::WS), "#06c", 2.5);
  svg.add_point(pts[0], "#000", 4);
  svg.add_label(pts[0], "p");
  svg.write("fig5_escape_paths.svg");
}

static void fig_separator(const char* name, SceneGen gen, uint64_t seed) {
  Scene s = gen(16, seed);
  RayShooter shooter(s);
  Tracer tracer(s, shooter);
  SeparatorResult r = staircase_separator(s, tracer);
  SvgCanvas svg(s.container().bbox());
  // Color sides.
  for (int id : r.above) svg.add_rect(s.obstacle(id), "#fbb");
  for (int id : r.below) svg.add_rect(s.obstacle(id), "#bbf");
  svg.add_polygon(s.container().vertices(), "#222");
  svg.add_staircase(r.sep, "#080", 3.0);
  svg.add_point(r.pivot, "#000", 4);
  svg.write(name);
}

int main() {
  fig_staircases();
  fig_envelope();
  fig_escape_paths();
  fig_separator("fig6_separator.svg", gen_uniform, 6);
  fig_separator("fig9_divide.svg", gen_clustered, 3);
  std::cout << "wrote fig1_max_staircases.svg fig2_envelope.svg "
               "fig5_escape_paths.svg fig6_separator.svg fig9_divide.svg\n";
  return 0;
}
