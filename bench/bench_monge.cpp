// E7 — the Monge (min,+) engine (paper Lemmas 3–5, §10(iii)).
// Monge multiply (per-row SMAWK, O(a(b+z))) vs the naive O(abz) product:
// the gap should widen linearly with the inner dimension z — this is what
// keeps the paper's conquer work quadratic instead of cubic.

#include <benchmark/benchmark.h>

#include <random>

#include "monge/monge.h"
#include "monge/smawk.h"

namespace rsp {
namespace {

Matrix random_monge(size_t rows, size_t cols, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Length> d(0, 20);
  Matrix m(rows, cols, 0);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = cols; j-- > 0;) {
      Length acc = d(rng);
      if (i > 0) acc += m(i - 1, j);
      if (j + 1 < cols) acc += m(i, j + 1);
      if (i > 0 && j + 1 < cols) acc -= m(i - 1, j + 1);
      m(i, j) = acc;
    }
  }
  return m;
}

void BM_MinplusMonge(benchmark::State& state) {
  const size_t s = static_cast<size_t>(state.range(0));
  Matrix a = random_monge(s, s, 1);
  Matrix b = random_monge(s, s, 2);
  for (auto _ : state) {
    Matrix c = minplus_monge(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.counters["cells"] = static_cast<double>(s * s);
}

void BM_MinplusNaive(benchmark::State& state) {
  const size_t s = static_cast<size_t>(state.range(0));
  Matrix a = random_monge(s, s, 1);
  Matrix b = random_monge(s, s, 2);
  for (auto _ : state) {
    Matrix c = minplus_naive(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.counters["cells"] = static_cast<double>(s * s);
}

void BM_Smawk(benchmark::State& state) {
  const size_t s = static_cast<size_t>(state.range(0));
  Matrix a = random_monge(s, s, 3);
  for (auto _ : state) {
    auto arg = smawk(s, s, [&](size_t i, size_t j) { return a(i, j); });
    benchmark::DoNotOptimize(arg);
  }
}

}  // namespace


BENCHMARK(BM_MinplusMonge)->RangeMultiplier(2)->Range(32, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MinplusNaive)->RangeMultiplier(2)->Range(32, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Smawk)->RangeMultiplier(2)->Range(32, 4096)
    ->Unit(benchmark::kMicrosecond);


}  // namespace rsp

BENCHMARK_MAIN();
