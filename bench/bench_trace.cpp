// E8 — path tracing (paper §3 Lemma 6, §6.1 pre-processing).
// Forest construction is near-linear (n ray shots through the stabbing
// trees); individual trace extraction is one ray shot plus O(bends).
// Counters: avg_bends of traced escape paths.

#include <benchmark/benchmark.h>

#include "core/trace.h"
#include "io/gen.h"

namespace rsp {
namespace {

void BM_TracerBuild(benchmark::State& state, SceneGen gen) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen(n, 23);
  RayShooter shooter(scene);
  for (auto _ : state) {
    Tracer tracer(scene, shooter);
    benchmark::DoNotOptimize(tracer.forest(TraceKind::NE));
  }
}

void BM_TraceExtract(benchmark::State& state, SceneGen gen) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen(n, 23);
  RayShooter shooter(scene);
  Tracer tracer(scene, shooter);
  auto pts = random_free_points(scene, 64, 3);
  size_t i = 0;
  size_t bends = 0, traces = 0;
  for (auto _ : state) {
    TraceKind k = kAllTraceKinds[i % 8];
    auto path = tracer.trace(pts[(i / 8) % 64], k);
    benchmark::DoNotOptimize(path);
    bends += path.size();
    ++traces;
    ++i;
  }
  state.counters["avg_bends"] =
      static_cast<double>(bends) / static_cast<double>(traces);
}

}  // namespace


BENCHMARK_CAPTURE(BM_TracerBuild, uniform, gen_uniform)
    ->RangeMultiplier(2)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_TracerBuild, corridors, gen_corridors)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_TraceExtract, uniform, gen_uniform)
    ->RangeMultiplier(4)
    ->Range(16, 1024);
BENCHMARK_CAPTURE(BM_TraceExtract, corridors, gen_corridors)
    ->RangeMultiplier(4)
    ->Range(16, 256);


}  // namespace rsp

BENCHMARK_MAIN();
