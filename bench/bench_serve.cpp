// S1 — serving-layer end-to-end benchmarks: what a pipelined client of
// `rspcli serve` actually experiences, including protocol parse, admission,
// batch coalescing, the engine fan-out and in-order response writing.
//
// Series:
//  * BM_ServeHerdWindow:  a 256-request LEN herd through one stdio-style
//    session vs the coalescing window — the window/throughput trade the
//    dispatcher makes (window 0 = dispatch immediately, small batches).
//  * BM_ServeHerdThreads: the same herd vs engine pool width at a fixed
//    window — how far the PR-2 work-stealing scheduler carries the serve
//    path on real hardware.
//  * BM_ServeBatchRequest: one BATCH k wire request per session — the
//    cheapest way a client can hand the server a full batch.
//  * BM_ServeMultiClientHerd: C concurrent sessions, each a pipelined
//    64-request LEN herd into the shared dispatcher — the cross-client
//    coalescing the session-per-connection reader pool exists for. The
//    mean_batch counter must exceed 1 once C > 1: batches span clients.
//  * BM_RouterBatch:      one BATCH k through a fleet Router over 3
//    in-process shard channels — split, fan-out, collect, scatter-merge;
//    against BM_ServeBatchRequest this is the router tax per batch.
//  * BM_RouterHerd:       a 64-request LEN herd through the router — the
//    per-request routing + exchange overhead, channels reused.
//  * BM_RouterOwnedRows:  the same herd through an owned-rows fleet: every
//    shard adopts only its [row_lo,row_hi) rows, so routing is load-bearing
//    and a NOT_OWNER refusal walks to the true owner. Against BM_RouterHerd
//    this is the ownership tax; max_shard_mem_fraction records each shard's
//    resident bytes as a fraction of the union mount (≈ 1/k).
//  * BM_ProtocolParse:    parser micro-cost of one LEN request line.
//
// All series run real QueryServer sessions over in-memory streams, so the
// numbers include both server threads (dispatcher + writer) and the
// latency histogram bookkeeping — the same code path CI smoke-drives.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <vector>

#include "io/gen.h"
#include "io/manifest.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"

namespace rsp {
namespace {

std::string herd_script(const Scene& scene, size_t count, uint64_t seed) {
  auto pts = random_free_points(scene, 2 * count, seed);
  std::ostringstream os;
  for (size_t i = 0; i + 1 < 2 * count; i += 2) {
    os << "LEN " << pts[i].x << ',' << pts[i].y << ' ' << pts[i + 1].x << ','
       << pts[i + 1].y << '\n';
  }
  os << "QUIT\n";
  return os.str();
}

std::string batch_script(const Scene& scene, size_t count, uint64_t seed) {
  auto pts = random_free_points(scene, 2 * count, seed);
  std::ostringstream os;
  os << "BATCH " << count << '\n';
  for (size_t i = 0; i + 1 < 2 * count; i += 2) {
    os << pts[i].x << ',' << pts[i].y << ' ' << pts[i + 1].x << ','
       << pts[i + 1].y << '\n';
  }
  os << "QUIT\n";
  return os.str();
}

// One resident server per (tag, threads, window) configuration —
// construction (the all-pairs build) happens once, exactly like a
// long-lived replica. `tag` keeps series with cumulative counters (batch
// occupancy) from sharing a server with unrelated series.
QueryServer& shared_server(const std::string& tag, size_t threads,
                           uint64_t window_us) {
  static std::map<std::tuple<std::string, size_t, uint64_t>,
                  std::unique_ptr<QueryServer>>
      cache;
  auto key = std::make_tuple(tag, threads, window_us);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Engine eng(gen_uniform(48, 11),
               {.backend = Backend::kAuto, .num_threads = threads});
    it = cache
             .emplace(key, std::make_unique<QueryServer>(
                               std::move(eng),
                               ServeOptions{.max_batch_pairs = 256,
                                            .coalesce_window_us = window_us}))
             .first;
  }
  return *it->second;
}

void run_session(QueryServer& srv, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  srv.serve(in, out);
  benchmark::DoNotOptimize(out.str().size());
}

// 256 pipelined LEN requests vs coalescing window (us); 4-thread engine.
void BM_ServeHerdWindow(benchmark::State& state) {
  const auto window = static_cast<uint64_t>(state.range(0));
  QueryServer& srv = shared_server("window", 4, window);
  const std::string script = herd_script(srv.engine().scene(), 256, 7);
  for (auto _ : state) {
    run_session(srv, script);
  }
  state.counters["requests_per_sec"] = benchmark::Counter(
      256.0, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["mean_batch"] = srv.stats().mean_batch_occupancy();
}

// The same herd vs engine pool width; window fixed at 200 us.
void BM_ServeHerdThreads(benchmark::State& state) {
  const auto threads = static_cast<size_t>(state.range(0));
  QueryServer& srv = shared_server("threads", threads, 200);
  const std::string script = herd_script(srv.engine().scene(), 256, 7);
  for (auto _ : state) {
    run_session(srv, script);
  }
  state.counters["pool_width"] =
      static_cast<double>(srv.engine().num_threads());
  state.counters["requests_per_sec"] = benchmark::Counter(
      256.0, benchmark::Counter::kIsIterationInvariantRate);
}

// One BATCH k request per session: framing amortized over k pairs.
void BM_ServeBatchRequest(benchmark::State& state) {
  const auto k = static_cast<size_t>(state.range(0));
  QueryServer& srv = shared_server("batch", 4, 200);
  const std::string script = batch_script(srv.engine().scene(), k, 13);
  for (auto _ : state) {
    run_session(srv, script);
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate);
}

// C concurrent sessions (thread each, like serve_port's reader pool), all
// pipelining 64 LEN requests into one shared dispatcher. This is the
// herd-of-herds workload: batches coalesce *across* clients, so
// mean_batch > 1 whenever C > 1 even at a modest window.
void BM_ServeMultiClientHerd(benchmark::State& state) {
  const auto nclients = static_cast<size_t>(state.range(0));
  QueryServer& srv = shared_server("multiclient", 4, 200);
  std::vector<std::string> scripts;
  for (size_t c = 0; c < nclients; ++c) {
    scripts.push_back(herd_script(srv.engine().scene(), 64, 17 + c));
  }
  const ServeStats before = srv.stats();
  for (auto _ : state) {
    std::vector<std::thread> clients;
    clients.reserve(nclients);
    for (size_t c = 0; c < nclients; ++c) {
      clients.emplace_back([&, c] { run_session(srv, scripts[c]); });
    }
    for (auto& t : clients) t.join();
  }
  // Occupancy over *this* run only (the server is shared across args).
  const ServeStats after = srv.stats();
  const uint64_t dispatches = after.dispatches - before.dispatches;
  state.counters["clients"] = static_cast<double>(nclients);
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(64 * nclients),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["mean_batch"] =
      dispatches == 0
          ? 0.0
          : static_cast<double>(after.dispatched_pairs -
                                before.dispatched_pairs) /
                static_cast<double>(dispatches);
}

// ---------------------------------------------------------------------------
// Fleet router overhead (serve/router.h)
// ---------------------------------------------------------------------------

// In-process shard channel answering from an Engine — the same transport
// seam the fault-injection tests use, minus faults: the benchmark measures
// pure router split/exchange/merge cost, not socket latency.
class BenchShardChannel : public ShardChannel {
 public:
  explicit BenchShardChannel(const Engine* engine) : engine_(engine) {}

  bool send(std::string_view data) override {
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < data.size()) {
      size_t nl = data.find('\n', start);
      if (nl == std::string_view::npos) nl = data.size();
      lines.emplace_back(data.substr(start, nl - start));
      start = nl + 1;
    }
    if (lines.empty()) return false;
    size_t consumed = 0;
    ParsedRequest pr = parse_request(lines[0], [&](std::string& l) {
      if (consumed + 1 >= lines.size()) return false;
      l = lines[++consumed];
      return true;
    });
    if (!pr.ok) {
      pending_.push_back(format_error("BAD_REQUEST", pr.error));
      return true;
    }
    if (pr.req.verb == Verb::kBatch) {
      Result<std::vector<Length>> r = engine_->lengths(pr.req.pairs);
      pending_.push_back(r.ok() ? format_batch(*r) : format_error(r.status()));
    } else {
      Result<Length> r = engine_->length(pr.req.pairs[0].s, pr.req.pairs[0].t);
      pending_.push_back(r.ok() ? format_length(*r) : format_error(r.status()));
    }
    return true;
  }

  bool recv_line(std::string& line, std::chrono::milliseconds) override {
    if (pending_.empty()) return false;
    line = pending_.front();
    pending_.pop_front();
    return true;
  }

 private:
  const Engine* engine_;
  std::deque<std::string> pending_;
};

// A synthetic 3-shard manifest over the scene: balanced row partition,
// container x-extent split into even slabs. Routing is an affinity hint
// (every "shard" here is the same engine), so the slab edges only shape
// how a batch splits — which is exactly the cost under measurement.
ShardManifest bench_manifest(const Scene& scene, size_t k) {
  ShardManifest man;
  man.num_obstacles = scene.num_obstacles();
  man.m = 4 * man.num_obstacles;
  Coord xmin = scene.obstacles()[0].xmin, xmax = xmin;
  for (const Rect& r : scene.obstacles()) {
    xmin = std::min(xmin, r.xmin);
    xmax = std::max(xmax, r.xmax);
  }
  for (size_t i = 0; i < k; ++i) {
    ShardEntry e;
    e.file = "bench.shard" + std::to_string(i);
    e.row_lo = man.m * i / k;
    e.row_hi = man.m * (i + 1) / k;
    e.x_lo = xmin + static_cast<Coord>((xmax - xmin) * static_cast<long>(i) /
                                       static_cast<long>(k));
    e.x_hi = i + 1 == k ? xmax + 1
                        : xmin + static_cast<Coord>((xmax - xmin) *
                                                    static_cast<long>(i + 1) /
                                                    static_cast<long>(k));
    e.checksum = i + 1;
    man.shards.push_back(e);
  }
  return man;
}

void run_router_session(Router& r, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  r.serve(in, out);
  benchmark::DoNotOptimize(out.str().size());
}

// One BATCH k per session through the 3-shard router.
void BM_RouterBatch(benchmark::State& state) {
  const auto k = static_cast<size_t>(state.range(0));
  static Engine* engine = new Engine(
      gen_uniform(48, 11), {.backend = Backend::kAllPairsSeq});
  static Router* router = new Router(
      bench_manifest(engine->scene(), 3),
      [](size_t) -> std::unique_ptr<ShardChannel> {
        return std::make_unique<BenchShardChannel>(engine);
      });
  const std::string script = batch_script(engine->scene(), k, 13);
  for (auto _ : state) {
    run_router_session(*router, script);
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate);
}

// A pipelined 64-request LEN herd through the router (channel reuse).
void BM_RouterHerd(benchmark::State& state) {
  static Engine* engine = new Engine(
      gen_uniform(48, 11), {.backend = Backend::kAllPairsSeq});
  static Router* router = new Router(
      bench_manifest(engine->scene(), 3),
      [](size_t) -> std::unique_ptr<ShardChannel> {
        return std::make_unique<BenchShardChannel>(engine);
      });
  const std::string script = herd_script(engine->scene(), 64, 7);
  for (auto _ : state) {
    run_router_session(*router, script);
  }
  state.counters["requests_per_sec"] = benchmark::Counter(
      64.0, benchmark::Counter::kIsIterationInvariantRate);
}

// The herd through an owned-rows fleet: a real sharded snapshot on disk,
// each shard Engine adopting only its own row range, so a misrouted
// request is refused with NOT_OWNER and the router's candidate walk has
// to find the true owner. The delta vs BM_RouterHerd is the cost of
// making routing load-bearing; max_shard_mem_fraction asserts the point
// of the exercise — each shard holds ~1/k of the union mount's bytes.
void BM_RouterOwnedRows(benchmark::State& state) {
  struct OwnedFleet {
    std::vector<Engine> shards;
    std::unique_ptr<Router> router;
    std::string script;
    double max_shard_mem_fraction = 0.0;
  };
  static OwnedFleet* fleet = []() -> OwnedFleet* {
    auto f = std::make_unique<OwnedFleet>();
    Engine full(gen_uniform(48, 11), {.backend = Backend::kAllPairsSeq});
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "rsp_bench_owned_rows";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string man_path = (dir / "fleet.man").string();
    if (!full.save(man_path, {.shards = 3}).ok()) return nullptr;
    Result<ShardManifest> man = load_manifest(man_path);
    if (!man.ok()) return nullptr;
    Result<Engine> un = Engine::open(man_path, {});
    if (!un.ok()) return nullptr;
    const auto union_bytes =
        static_cast<double>(un->memory_breakdown().total_bytes);
    for (size_t i = 0; i < man->shards.size(); ++i) {
      Result<Engine> sh = Engine::open(
          man_path, {.mount = MountMode::kOwnedRows, .shard = i});
      if (!sh.ok()) return nullptr;
      f->max_shard_mem_fraction = std::max(
          f->max_shard_mem_fraction,
          static_cast<double>(sh->memory_breakdown().total_bytes) /
              union_bytes);
      f->shards.push_back(std::move(*sh));
    }
    OwnedFleet* raw = f.get();
    f->router = std::make_unique<Router>(
        *man, [raw](size_t shard) -> std::unique_ptr<ShardChannel> {
          if (shard >= raw->shards.size()) return nullptr;
          return std::make_unique<BenchShardChannel>(&raw->shards[shard]);
        });
    f->script = herd_script(full.scene(), 64, 7);
    return f.release();
  }();
  if (fleet == nullptr) {
    state.SkipWithError("owned-rows fleet setup failed");
    return;
  }
  for (auto _ : state) {
    run_router_session(*fleet->router, fleet->script);
  }
  state.counters["requests_per_sec"] = benchmark::Counter(
      64.0, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["max_shard_mem_fraction"] = fleet->max_shard_mem_fraction;
}

// Parser micro-cost: one LEN line, no server.
void BM_ProtocolParse(benchmark::State& state) {
  const std::string line = "LEN 123,-456 789,1011";
  const LineSource none = [](std::string&) { return false; };
  for (auto _ : state) {
    ParsedRequest pr = parse_request(line, none);
    benchmark::DoNotOptimize(pr.ok);
  }
}

}  // namespace


BENCHMARK(BM_ServeHerdWindow)->Arg(0)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeHerdThreads)->DenseRange(0, 8, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeBatchRequest)->RangeMultiplier(4)->Range(4, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeMultiClientHerd)->RangeMultiplier(2)->Range(1, 8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouterBatch)->RangeMultiplier(4)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouterHerd)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouterOwnedRows)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProtocolParse);


}  // namespace rsp

BENCHMARK_MAIN();
