// E5 — our all-pairs structure vs the naive comparator (paper §1),
// expressed as rsp::Engine backends.
// The paper positions its structure against answering queries with
// repeated single-source / single-pair computations. Series: engine
// construction with the kAllPairsSeq backend vs repeated Dijkstra over the
// track graph, and per-query cost on a built engine vs the structure-free
// kDijkstraBaseline backend (the Guha–Stout / ElGindy–Mitra-style
// comparison point). Expected shape: the builder wins on construction
// asymptotically, and queries win by orders of magnitude — the crossover
// is after a handful of queries.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "api/engine.h"
#include "baseline/dijkstra.h"
#include "io/gen.h"

namespace rsp {
namespace {

void BM_AllPairsBuilder(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 11);
  for (auto _ : state) {
    Engine eng(Scene{scene}, {.backend = Backend::kAllPairsSeq});
    benchmark::DoNotOptimize(eng.all_pairs());
  }
}

void BM_AllPairsRepeatedDijkstra(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 11);
  for (auto _ : state) {
    Matrix d = all_pairs_repeated_dijkstra(scene);
    benchmark::DoNotOptimize(d);
  }
}

void BM_QueryViaStructure(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  static std::map<size_t, std::shared_ptr<Engine>> cache;
  if (!cache.count(n)) {
    cache[n] = std::make_shared<Engine>(gen_uniform(n, 11));
  }
  auto eng = cache[n];
  auto pts = random_free_points(eng->scene(), 32, 5);
  size_t i = 0;
  for (auto _ : state) {
    Length v = *eng->length(pts[i % 32], pts[(i + 9) % 32]);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}

void BM_QueryViaFreshDijkstra(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Engine eng(gen_uniform(n, 11), {.backend = Backend::kDijkstraBaseline});
  auto pts = random_free_points(eng.scene(), 32, 5);
  size_t i = 0;
  for (auto _ : state) {
    Length v = *eng.length(pts[i % 32], pts[(i + 9) % 32]);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}

}  // namespace


BENCHMARK(BM_AllPairsBuilder)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllPairsRepeatedDijkstra)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueryViaStructure)->RangeMultiplier(4)->Range(8, 128);
BENCHMARK(BM_QueryViaFreshDijkstra)->RangeMultiplier(4)->Range(8, 128)
    ->Unit(benchmark::kMicrosecond);


}  // namespace rsp

BENCHMARK_MAIN();
