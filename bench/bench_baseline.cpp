// E5 — our all-pairs structure vs the naive comparator (paper §1).
// The paper positions its structure against answering queries with
// repeated single-source / single-pair computations. Series: all-pairs
// build via the §9 builder vs repeated Dijkstra over the track graph, and
// per-query cost after construction vs a fresh Dijkstra per query
// (the Guha–Stout / ElGindy–Mitra-style comparison point). Expected shape:
// the builder wins on construction asymptotically, and queries win by
// orders of magnitude — the crossover is after a handful of queries.

#include <benchmark/benchmark.h>

#include "baseline/dijkstra.h"
#include "core/query.h"
#include "io/gen.h"

namespace rsp {
namespace {

void BM_AllPairsBuilder(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 11);
  for (auto _ : state) {
    RayShooter shooter(scene);
    Tracer tracer(scene, shooter);
    AllPairsData d = build_all_pairs(scene, shooter, tracer);
    benchmark::DoNotOptimize(d.dist);
  }
}

void BM_AllPairsRepeatedDijkstra(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 11);
  for (auto _ : state) {
    Matrix d = all_pairs_repeated_dijkstra(scene);
    benchmark::DoNotOptimize(d);
  }
}

void BM_QueryViaStructure(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  static std::map<size_t, std::shared_ptr<AllPairsSP>> cache;
  if (!cache.count(n)) {
    cache[n] = std::make_shared<AllPairsSP>(gen_uniform(n, 11));
  }
  auto sp = cache[n];
  auto pts = random_free_points(sp->scene(), 32, 5);
  size_t i = 0;
  for (auto _ : state) {
    Length v = sp->length(pts[i % 32], pts[(i + 9) % 32]);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}

void BM_QueryViaFreshDijkstra(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 11);
  auto pts = random_free_points(scene, 32, 5);
  size_t i = 0;
  for (auto _ : state) {
    Length v = oracle_length(scene, pts[i % 32], pts[(i + 9) % 32]);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}

}  // namespace


BENCHMARK(BM_AllPairsBuilder)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllPairsRepeatedDijkstra)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueryViaStructure)->RangeMultiplier(4)->Range(8, 128);
BENCHMARK(BM_QueryViaFreshDijkstra)->RangeMultiplier(4)->Range(8, 128)
    ->Unit(benchmark::kMicrosecond);


}  // namespace rsp

BENCHMARK_MAIN();
