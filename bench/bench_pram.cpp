// E6 — PRAM primitive cost model (paper §2: parallel prefix [18,19],
// merging [35], sorting [10], Brent's theorem [7]).
// Counters report the idealized PRAM work/depth charged by each primitive;
// work should grow linearly (n log n for sort) and depth logarithmically
// (log^2 for sort), independent of wall-clock and thread count.
// Accounting is scoped (PramCostScope accumulates its own deltas and
// follows forked tasks), so no global pram_reset() is needed and these
// benches can run concurrently with others without corrupting tallies.

#include <benchmark/benchmark.h>

#include <random>

#include "pram/parallel.h"

namespace rsp {
namespace {

void BM_Scan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<long long> base(n, 1);
  PramCost cost{};
  for (auto _ : state) {
    std::vector<long long> v = base;
    PramCostScope scope;
    long long total = exclusive_scan(v);
    benchmark::DoNotOptimize(total);
    cost = scope.cost();
  }
  state.counters["pram_work"] = static_cast<double>(cost.work);
  state.counters["pram_depth"] = static_cast<double>(cost.depth);
}

void BM_Merge(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(1);
  std::vector<long long> a(n), b(n);
  for (auto& x : a) x = static_cast<long long>(rng() % 100000);
  for (auto& x : b) x = static_cast<long long>(rng() % 100000);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  PramCost cost{};
  for (auto _ : state) {
    std::vector<long long> out;
    PramCostScope scope;
    parallel_merge(Scheduler::global(), a, b, out);
    benchmark::DoNotOptimize(out);
    cost = scope.cost();
  }
  state.counters["pram_work"] = static_cast<double>(cost.work);
  state.counters["pram_depth"] = static_cast<double>(cost.depth);
}

void BM_Sort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(2);
  std::vector<long long> base(n);
  for (auto& x : base) x = static_cast<long long>(rng());
  PramCost cost{};
  for (auto _ : state) {
    std::vector<long long> v = base;
    PramCostScope scope;
    parallel_sort(v);
    benchmark::DoNotOptimize(v);
    cost = scope.cost();
  }
  state.counters["pram_work"] = static_cast<double>(cost.work);
  state.counters["pram_depth"] = static_cast<double>(cost.depth);
}

}  // namespace


BENCHMARK(BM_Scan)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);
BENCHMARK(BM_Merge)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);
BENCHMARK(BM_Sort)->RangeMultiplier(4)->Range(1 << 10, 1 << 18);


}  // namespace rsp

BENCHMARK_MAIN();
