// E3/E4 — query costs (paper §6.4, §8), measured through the rsp::Engine
// facade.
// E3: vertex-pair length queries are O(1) (flat across n); arbitrary-point
// queries are logarithmic-ish (one ray shot + curve walk + 4 lookups).
// E4: path reporting scales linearly in k (the segment count), and the
// chunked level-ancestor emission produces ⌈k/chunk⌉ pieces.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "api/engine.h"
#include "core/query.h"
#include "core/sptree.h"
#include "io/gen.h"

namespace rsp {
namespace {

std::shared_ptr<Engine> shared_engine(size_t n, SceneGen gen, uint64_t seed) {
  static std::map<std::tuple<size_t, SceneGen, uint64_t>,
                  std::shared_ptr<Engine>>
      cache;
  auto key = std::make_tuple(n, gen, seed);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  auto eng = std::make_shared<Engine>(gen(n, seed));
  cache.emplace(key, eng);
  return eng;
}

void BM_VertexLength(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto eng = shared_engine(n, gen_uniform, 3);
  const AllPairsSP* sp = eng->all_pairs();
  size_t m = sp->num_vertices();
  size_t i = 0;
  for (auto _ : state) {
    Length v = sp->vertex_length(i % m, (i * 7 + 3) % m);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}

void BM_ArbitraryLength(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto eng = shared_engine(n, gen_uniform, 3);
  auto pts = random_free_points(eng->scene(), 64, 9);
  size_t i = 0;
  for (auto _ : state) {
    Length v = *eng->length(pts[i % 64], pts[(i + 17) % 64]);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}

void BM_VertexPath(benchmark::State& state) {
  // Corridor scenes: path segment count k grows with n; report time/k.
  const size_t n = static_cast<size_t>(state.range(0));
  auto eng = shared_engine(n, gen_corridors, 5);
  const auto& verts = eng->scene().obstacle_vertices();
  size_t lo = 0, hi = 0;
  for (size_t v = 0; v < verts.size(); ++v) {
    if (verts[v].y < verts[lo].y) lo = v;
    if (verts[v].y > verts[hi].y) hi = v;
  }
  size_t k = 0;
  for (auto _ : state) {
    auto path = *eng->path(verts[lo], verts[hi]);
    benchmark::DoNotOptimize(path);
    k = path.size();
  }
  state.counters["k_segments"] = static_cast<double>(k);
  state.counters["us_per_segment"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate |
                                  benchmark::Counter::kInvert);
}

void BM_ChunkedChain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto eng = shared_engine(n, gen_corridors, 5);
  const AllPairsSP* sp = eng->all_pairs();
  SpTrees trees(sp->scene(), sp->tracer(), sp->data());
  // Deepest predecessor chain: the k >> log n regime §8 targets.
  size_t lo = 0, hi = 0;
  int best = -1;
  for (size_t a = 0; a < sp->num_vertices(); a += 7) {
    for (size_t b2 = 0; b2 < sp->num_vertices(); ++b2) {
      int d = trees.hops(a, b2);
      if (d > best) {
        best = d;
        lo = a;
        hi = b2;
      }
    }
  }
  int chunk = std::max<int>(1, static_cast<int>(std::log2(4.0 * n)));
  size_t pieces = 0;
  for (auto _ : state) {
    auto c = trees.chunked_chain(lo, hi, chunk);
    benchmark::DoNotOptimize(c);
    pieces = c.size();
  }
  state.counters["chunk_logn"] = static_cast<double>(chunk);
  state.counters["pieces"] = static_cast<double>(pieces);
}

}  // namespace


BENCHMARK(BM_VertexLength)->RangeMultiplier(4)->Range(8, 128);
BENCHMARK(BM_ArbitraryLength)->RangeMultiplier(4)->Range(8, 128);
BENCHMARK(BM_VertexPath)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ChunkedChain)->RangeMultiplier(2)->Range(8, 64);


}  // namespace rsp

BENCHMARK_MAIN();
