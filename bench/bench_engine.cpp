// E8 — rsp::Engine batch-query throughput, seeding the perf trajectory for
// the ROADMAP's heavy-traffic goal.
//
// Series:
//  * BM_BatchLengths:  queries/sec vs batch size (fixed scene, fixed pool)
//    — measures fan-out overhead amortization.
//  * BM_BatchThreads:  queries/sec vs engine pool width (fixed batch)
//    — wall-clock scaling is flat on a one-core container; the series
//    exists to track the shape as the hardware grows.
//  * BM_BatchPaths:    batch path reporting (exercises the mutex-guarded
//    shortest-path-tree cache under concurrency).
//  * BM_LazyFirstQuery: construction deferral — the one-off cost the first
//    query pays with lazy_build on.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "api/engine.h"
#include "io/gen.h"

namespace rsp {
namespace {

std::vector<PointPair> make_batch(const Scene& scene, size_t count,
                                  uint64_t seed) {
  auto pts = random_free_points(scene, 2 * count, seed);
  std::vector<PointPair> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    pairs.push_back({pts[i], pts[i + 1]});
  }
  return pairs;
}

std::shared_ptr<Engine> shared_engine(size_t n, size_t threads) {
  static std::map<std::pair<size_t, size_t>, std::shared_ptr<Engine>> cache;
  auto key = std::make_pair(n, threads);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  auto eng = std::make_shared<Engine>(
      gen_uniform(n, 11),
      EngineOptions{.backend = Backend::kAuto, .num_threads = threads});
  cache.emplace(key, eng);
  return eng;
}

// Throughput vs batch size: n = 48 obstacles, 4-thread pool.
void BM_BatchLengths(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  auto eng = shared_engine(48, 4);
  auto pairs = make_batch(eng->scene(), batch, 7);
  for (auto _ : state) {
    auto lens = eng->lengths(pairs);
    benchmark::DoNotOptimize(lens.value());
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs.size()), benchmark::Counter::kIsIterationInvariantRate);
}

// Throughput vs pool width: fixed 256-pair batch.
void BM_BatchThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  auto eng = shared_engine(48, threads);
  auto pairs = make_batch(eng->scene(), 256, 7);
  for (auto _ : state) {
    auto lens = eng->lengths(pairs);
    benchmark::DoNotOptimize(lens.value());
  }
  state.counters["pool_width"] = static_cast<double>(eng->num_threads());
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs.size()), benchmark::Counter::kIsIterationInvariantRate);
}

// Batch path reporting: the SpTrees cache is shared across the fan-out.
void BM_BatchPaths(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  auto eng = shared_engine(32, 4);
  auto pairs = make_batch(eng->scene(), batch, 13);
  for (auto _ : state) {
    auto paths = eng->paths(pairs);
    benchmark::DoNotOptimize(paths.value());
  }
  state.counters["paths_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs.size()), benchmark::Counter::kIsIterationInvariantRate);
}

// lazy_build: construction is free; the first query pays the O(n^2) build.
void BM_LazyFirstQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 11);
  auto pts = random_free_points(scene, 2, 5);
  for (auto _ : state) {
    Engine eng(Scene{scene}, {.lazy_build = true});
    Length v = *eng.length(pts[0], pts[1]);
    benchmark::DoNotOptimize(v);
  }
}

}  // namespace


BENCHMARK(BM_BatchLengths)->RangeMultiplier(4)->Range(4, 1024);
BENCHMARK(BM_BatchThreads)->DenseRange(0, 8, 2);
BENCHMARK(BM_BatchPaths)->RangeMultiplier(4)->Range(4, 256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LazyFirstQuery)->RangeMultiplier(2)->Range(8, 32)
    ->Unit(benchmark::kMillisecond);


}  // namespace rsp

BENCHMARK_MAIN();
