// E2 — data structure construction (paper §5/§6 parallel, §9 sequential).
// Series: build time vs n for (a) the §9 all-pairs V_R builder, (b) the
// scheduler-parallel driver, (c) the §5 D&C boundary-matrix builder, and
// (d) the D&C builder vs scheduler width — (d) exercises the work-stealing
// scheduler's nested tree parallelism (sibling separator subtrees as
// parallel tasks), so its wall-clock is the one to watch on multi-core
// hardware. The paper predicts O(n^2)-ish growth for (a)/(b) (we carry an
// extra log from the stabbing trees) and quadratic total work for (c)/(d);
// the PRAM work/depth counters accompany (c).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "api/engine.h"
#include "backend/boundary_tree.h"
#include "core/dnc_builder.h"
#include "core/seq_builder.h"
#include "io/gen.h"
#include "io/snapshot.h"
#include "pram/parallel.h"

namespace rsp {
namespace {

// Physical cores of the recording host, attached to every threads-sweep
// run: speedup claims in a BENCH_*.json are only meaningful relative to
// the parallelism the machine could actually deliver, and the CI scaling
// gate (tools/bench_check.py --skip-below-cores) keys off this counter.
double host_cores() {
  return static_cast<double>(std::thread::hardware_concurrency());
}

void BM_BuildSeq(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 7);
  RayShooter shooter(scene);
  Tracer tracer(scene, shooter);
  for (auto _ : state) {
    AllPairsData d = build_all_pairs(scene, shooter, tracer);
    benchmark::DoNotOptimize(d.dist);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["vertices"] = static_cast<double>(4 * n);
}

void BM_BuildPar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 7);
  RayShooter shooter(scene);
  Tracer tracer(scene, shooter);
  Scheduler sched(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    AllPairsData d = build_all_pairs(sched, scene, shooter, tracer);
    benchmark::DoNotOptimize(d.dist);
  }
  state.counters["threads"] = static_cast<double>(state.range(1));
}

void BM_BuildDnc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 7);
  DncStats stats;
  PramCost cost{};
  for (auto _ : state) {
    PramCostScope scope;
    DncResult r = build_boundary_structure(scene);
    benchmark::DoNotOptimize(r.root);
    stats = r.stats;
    cost = scope.cost();
  }
  state.counters["pram_work"] = static_cast<double>(cost.work);
  state.counters["pram_depth"] = static_cast<double>(cost.depth);
  state.counters["nodes"] = static_cast<double>(stats.nodes);
  state.counters["depth"] = static_cast<double>(stats.max_depth);
  state.counters["maxB"] = static_cast<double>(stats.max_boundary);
  state.counters["monge_mults"] = static_cast<double>(stats.monge_multiplies);
  state.counters["monge_fallbacks"] =
      static_cast<double>(stats.monge_fallbacks);
}

// D&C build vs scheduler width: sibling separator subtrees build as
// parallel tasks, so wall-clock should drop with width on real cores (and
// stay flat, not regress, on a one-core container). The workers counter
// records how many distinct threads the recursion actually ran on.
void BM_BuildDncThreads(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 7);
  DncOptions opt;
  opt.num_threads = static_cast<size_t>(state.range(1));
  DncStats stats;
  for (auto _ : state) {
    DncResult r = build_boundary_structure(scene, opt);
    benchmark::DoNotOptimize(r.root);
    stats = r.stats;
  }
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["workers"] = static_cast<double>(stats.workers_observed);
  state.counters["tasks"] = static_cast<double>(stats.sched_tasks);
  state.counters["steals"] = static_cast<double>(stats.sched_steals);
  state.counters["host_cores"] = host_cores();
}

// Snapshot trade-off (io/snapshot.h): BM_Build is the full cold-start cost
// an engine replica pays without persistence — generate-free, Engine
// construction with the eager all-pairs build. BM_SnapshotLoad is the
// deployment alternative: Engine::open on the serialized bytes (held in
// memory — the disk is the deployment's variable, the decode+restore cost
// is ours). The acceptance bar is load >= 5x faster than rebuild at n=512.
void BM_Build(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 7);
  for (auto _ : state) {
    Engine eng(scene, {.backend = Backend::kAllPairsSeq});
    benchmark::DoNotOptimize(eng.built());
  }
  state.counters["n"] = static_cast<double>(n);
}

void BM_SnapshotLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Engine built(gen_uniform(n, 7), {.backend = Backend::kAllPairsSeq});
  std::ostringstream os;
  Status st = built.save(os, {});
  if (!st.ok()) {
    state.SkipWithError(st.to_string().c_str());
    return;
  }
  const std::string bytes = os.str();
  // One stream, rewound per iteration: copying the multi-megabyte byte
  // string into a fresh istringstream is stream setup, not load cost (a
  // deployment reads a file; the disk is its variable, the decode+restore
  // is ours).
  std::istringstream is(bytes);
  for (auto _ : state) {
    is.clear();
    is.seekg(0);
    Result<Engine> eng = Engine::open(is, {.engine = {.backend = Backend::kAllPairsSeq}});
    if (!eng.ok()) {
      state.SkipWithError(eng.status().to_string().c_str());
      return;
    }
    benchmark::DoNotOptimize(eng->built());
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["snapshot_bytes"] = static_cast<double>(bytes.size());
}

void BM_SnapshotSave(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Engine built(gen_uniform(n, 7), {.backend = Backend::kAllPairsSeq});
  for (auto _ : state) {
    std::ostringstream os;
    Status st = built.save(os, {});
    if (!st.ok()) {
      state.SkipWithError(st.to_string().c_str());
      return;
    }
    benchmark::DoNotOptimize(os);
  }
  state.counters["n"] = static_cast<double>(n);
}

// File-backed replica start (the deployment path BM_SnapshotLoad's
// in-memory stream abstracts away): one set of snapshot files per n,
// built once and reused across benchmark registrations so the n = 4096
// fixture — a ~30 s sequential build and ~7 GB of table files — is paid
// once per bench process. Three files per n: the previous format (v4,
// raw tables) for the eager baseline, and both v5 encodings (delta dist
// rows, and raw for in-place adoption of all three tables).
struct SnapshotFiles {
  std::string v4, v5_delta, v5_raw;
  double v4_bytes = 0, v5_delta_bytes = 0, v5_raw_bytes = 0;
  double dist_delta_bytes = 0;  // v5 delta file's dist section, on disk
  size_t m = 0;
  bool ok = false;
  std::string err;
};

const SnapshotFiles& snapshot_files(size_t n) {
  static std::map<size_t, SnapshotFiles> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  SnapshotFiles& f = cache[n];
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path dir = fs::temp_directory_path() / "rsp_bench_snapshots";
  fs::create_directories(dir, ec);
  if (ec) {
    f.err = "cannot create " + dir.string() + ": " + ec.message();
    return f;
  }
  // gen_uniform's dense interiors stop scaling past n ~ 600 (the same
  // wall BM_Build hits); the large-n point uses the sparse generator.
  Scene scene = n > 600 ? gen_sparse(n, 7) : gen_uniform(n, 7);
  RayShooter shooter(scene);
  Tracer tracer(scene, shooter);
  AllPairsData data = build_all_pairs(scene, shooter, tracer);
  f.m = data.m;
  const std::string stem = (dir / ("n" + std::to_string(n))).string();
  auto write = [&](std::string& out, const char* suffix,
                   const SnapshotSaveOptions& opt) -> bool {
    out = stem + suffix;
    std::ofstream os(out, std::ios::binary | std::ios::trunc);
    Status st = os ? save_snapshot(os, scene, &data, opt)
                   : Status::IoError("cannot open '" + out + "' for writing");
    if (st.ok() && !os.flush()) st = Status::IoError("flush failed: " + out);
    if (!st.ok()) f.err = st.to_string();
    return st.ok();
  };
  if (!write(f.v4, ".v4.rsnap", {.format_version = 4})) return f;
  if (!write(f.v5_delta, ".v5.rsnap", {})) return f;
  if (!write(f.v5_raw, ".v5raw.rsnap", {.delta_encode = false})) return f;
  f.v4_bytes = static_cast<double>(fs::file_size(f.v4, ec));
  f.v5_delta_bytes = static_cast<double>(fs::file_size(f.v5_delta, ec));
  f.v5_raw_bytes = static_cast<double>(fs::file_size(f.v5_raw, ec));
  std::ifstream is(f.v5_delta, std::ios::binary);
  Result<SnapshotInfo> info = read_snapshot_info(is);
  if (!info.ok()) {
    f.err = info.status().to_string();
    return f;
  }
  f.dist_delta_bytes = static_cast<double>(info->dist_section_bytes);
#if !defined(_WIN32)
  // Writing the fixtures dirties gigabytes of page cache; flush the
  // writeback and touch every page again so both open benches measure a
  // warm cache (the decode/restore cost, not this process's own I/O).
  ::sync();
  for (const std::string* p : {&f.v4, &f.v5_delta, &f.v5_raw}) {
    std::ifstream warm(*p, std::ios::binary);
    std::vector<char> buf(1 << 20);
    while (warm.read(buf.data(), static_cast<std::streamsize>(buf.size())) ||
           warm.gcount() > 0) {
    }
  }
#endif
  f.ok = true;
  return f;
}

// Eager baseline: Engine::open on the previous-format (v4) file — read,
// copy, and validate every table. This is what a replica start cost
// before the mmap path existed; BM_SnapshotMmapOpen's acceptance bar is
// >= 5x faster than this at n = 4096.
void BM_SnapshotLoadFile(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const SnapshotFiles& f = snapshot_files(n);
  if (!f.ok) {
    state.SkipWithError(f.err.c_str());
    return;
  }
  for (auto _ : state) {
    Result<Engine> eng =
        Engine::open(f.v4, {.engine = {.backend = Backend::kAllPairsSeq}});
    if (!eng.ok()) {
      state.SkipWithError(eng.status().to_string().c_str());
      return;
    }
    benchmark::DoNotOptimize(eng->built());
  }
  const double mm = static_cast<double>(f.m) * static_cast<double>(f.m);
  state.counters["n"] = static_cast<double>(n);
  state.counters["bytes_on_disk"] = f.v4_bytes;
  state.counters["dist_bytes"] = mm * 8.0;
}

// The v5 replica fast start: Engine::open with MapMode::kMmap adopts the
// aligned tables straight out of the mapping (one checksum pass, no
// copies; derived structures rebuilt). Opens the raw-encoded v5 file —
// delta rows trade decode CPU for bytes, the wrong side of the trade
// when start latency is the goal — and records both encodings' sizes so
// BENCH_build.json carries the size acceptance too: dist_delta_bytes
// vs dist_raw_bytes (>= 2x smaller) next to the timing (>= 5x faster).
void BM_SnapshotMmapOpen(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const SnapshotFiles& f = snapshot_files(n);
  if (!f.ok) {
    state.SkipWithError(f.err.c_str());
    return;
  }
  for (auto _ : state) {
    Result<Engine> eng =
        Engine::open(f.v5_raw, {.engine = {.backend = Backend::kAllPairsSeq},
                                .map = MapMode::kMmap});
    if (!eng.ok()) {
      state.SkipWithError(eng.status().to_string().c_str());
      return;
    }
    benchmark::DoNotOptimize(eng->built());
  }
  const double mm = static_cast<double>(f.m) * static_cast<double>(f.m);
  state.counters["n"] = static_cast<double>(n);
  state.counters["bytes_on_disk"] = f.v5_raw_bytes;
  state.counters["delta_bytes_on_disk"] = f.v5_delta_bytes;
  state.counters["dist_delta_bytes"] = f.dist_delta_bytes;
  state.counters["dist_raw_bytes"] = mm * 8.0;
  state.counters["dist_ratio"] =
      f.dist_delta_bytes > 0 ? (mm * 8.0) / f.dist_delta_bytes : 0.0;
}

// The sublinear-space backend (src/backend/boundary_tree.h): build cost
// and memory/snapshot footprint vs the all-pairs table it replaces,
// swept over scheduler width (arg 1). The workload is gen_sparse — the
// only generator that scales past n ~ 600. Two headline counters:
// `ratio`, analytic all-pairs snapshot bytes (13 bytes per ordered
// vertex pair + 8 per vertex, m = 4n vertices) over the measured
// boundary-tree snapshot (acceptance: >= 10 at n = 4096); and
// `port_ratio`, the dense-equivalent port-matrix bytes over the resident
// Monge-compressed bytes (acceptance: >= 5 at n >= 65536 — the large-n
// registration below). workers/tasks/steals expose what the scheduler
// actually did during the build.
void BM_BuildBoundaryTree(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  Scene scene = gen_sparse(n, 7);
  std::optional<BoundaryTreeSP> sp;
  for (auto _ : state) {
    sp.emplace(scene, threads);
    benchmark::DoNotOptimize(sp->memory_bytes());
  }
  std::ostringstream os;
  Status st = save_snapshot(os, scene, sp->tree());
  if (!st.ok()) {
    state.SkipWithError(st.to_string().c_str());
    return;
  }
  const double m = static_cast<double>(4 * n);
  const double allpairs = 13.0 * m * m + 8.0 * m;
  const double snap = static_cast<double>(os.str().size());
  const DncStats& stats = sp->build_stats();
  const double port = static_cast<double>(sp->port_matrix_bytes());
  const double port_dense = static_cast<double>(sp->port_matrix_dense_bytes());
  state.counters["n"] = static_cast<double>(n);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["workers"] = static_cast<double>(stats.workers_observed);
  state.counters["tasks"] = static_cast<double>(stats.sched_tasks);
  state.counters["steals"] = static_cast<double>(stats.sched_steals);
  state.counters["host_cores"] = host_cores();
  state.counters["mem_bytes"] = static_cast<double>(sp->memory_bytes());
  state.counters["port_bytes"] = port;
  state.counters["port_dense_bytes"] = port_dense;
  state.counters["port_ratio"] = port > 0 ? port_dense / port : 0.0;
  state.counters["snapshot_bytes"] = snap;
  state.counters["allpairs_bytes"] = allpairs;
  state.counters["ratio"] = allpairs / snap;
}

// Per-query latency on the boundary-tree backend at sizes the all-pairs
// table cannot reach (its build is the wall BM_Build hits at 512). Single
// uncached length() calls over a rotating pool of free points.
void BM_QueryBoundaryTree(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_sparse(n, 7);
  Engine eng(scene, EngineOptions{.backend = Backend::kBoundaryTree});
  const std::vector<Point> pts = random_free_points(scene, 64, 99);
  size_t i = 0;
  for (auto _ : state) {
    Result<Length> d = eng.length(pts[i % 64], pts[(i + 17) % 64]);
    if (!d.ok()) {
      state.SkipWithError(d.status().to_string().c_str());
      return;
    }
    benchmark::DoNotOptimize(d);
    ++i;
  }
  state.counters["n"] = static_cast<double>(n);
}

}  // namespace


BENCHMARK(BM_BuildSeq)->RangeMultiplier(2)->Range(8, 256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildPar)
    ->ArgsProduct({{64}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildDnc)->RangeMultiplier(2)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildDncThreads)
    ->ArgsProduct({{64, 256}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Build)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotLoad)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotSave)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotLoadFile)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotMmapOpen)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond);
// The replica-start headline at a size whose tables dwarf the page
// cache churn: a ~3.5 GB v4 file against the v5 mapped open. One
// iteration — the fixture build alone runs ~30 s, and the mmap/eager
// ratio, not timing variance, is the point (acceptance: mmap >= 5x
// faster, delta dist section >= 2x smaller, both recorded as counters).
BENCHMARK(BM_SnapshotLoadFile)->Args({4096})->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotMmapOpen)->Args({4096})->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildBoundaryTree)
    ->ArgsProduct({{256, 512, 1024, 2048, 4096}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
// Past the all-pairs wall: single-shot large-n points proving the build
// scales to 10^5 obstacles within the Monge-compressed memory budget.
// One iteration each — the n = 65536 build runs minutes, and the
// port_ratio / mem_bytes counters, not the timing variance, are the
// point. CI never repeats these; they live in the committed
// BENCH_build.json trajectory.
BENCHMARK(BM_BuildBoundaryTree)
    ->Args({16384, 1})
    ->Args({65536, 1})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);
BENCHMARK(BM_QueryBoundaryTree)->RangeMultiplier(4)->Range(256, 4096)
    ->Unit(benchmark::kMicrosecond);


}  // namespace rsp

BENCHMARK_MAIN();
