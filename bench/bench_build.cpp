// E2 — data structure construction (paper §5/§6 parallel, §9 sequential).
// Series: build time vs n for (a) the §9 all-pairs V_R builder, (b) the
// pool-parallel driver, (c) the §5 D&C boundary-matrix builder. The paper
// predicts O(n^2)-ish growth for (a)/(b) (we carry an extra log from the
// stabbing trees) and quadratic total work for (c); the PRAM work/depth
// counters accompany (c).

#include <benchmark/benchmark.h>

#include "core/dnc_builder.h"
#include "core/seq_builder.h"
#include "io/gen.h"
#include "pram/parallel.h"

namespace rsp {
namespace {

void BM_BuildSeq(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 7);
  RayShooter shooter(scene);
  Tracer tracer(scene, shooter);
  for (auto _ : state) {
    AllPairsData d = build_all_pairs(scene, shooter, tracer);
    benchmark::DoNotOptimize(d.dist);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["vertices"] = static_cast<double>(4 * n);
}

void BM_BuildPar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 7);
  RayShooter shooter(scene);
  Tracer tracer(scene, shooter);
  ThreadPool pool(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    AllPairsData d = build_all_pairs(pool, scene, shooter, tracer);
    benchmark::DoNotOptimize(d.dist);
  }
  state.counters["threads"] = static_cast<double>(state.range(1));
}

void BM_BuildDnc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen_uniform(n, 7);
  DncStats stats;
  PramCost cost{};
  for (auto _ : state) {
    pram_reset();
    PramCostScope scope;
    DncResult r = build_boundary_structure(scene);
    benchmark::DoNotOptimize(r.root);
    stats = r.stats;
    cost = scope.cost();
  }
  state.counters["pram_work"] = static_cast<double>(cost.work);
  state.counters["pram_depth"] = static_cast<double>(cost.depth);
  state.counters["nodes"] = static_cast<double>(stats.nodes);
  state.counters["depth"] = static_cast<double>(stats.max_depth);
  state.counters["maxB"] = static_cast<double>(stats.max_boundary);
  state.counters["monge_mults"] = static_cast<double>(stats.monge_multiplies);
  state.counters["monge_fallbacks"] =
      static_cast<double>(stats.monge_fallbacks);
}

}  // namespace


BENCHMARK(BM_BuildSeq)->RangeMultiplier(2)->Range(8, 256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildPar)
    ->ArgsProduct({{64}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildDnc)->RangeMultiplier(2)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);


}  // namespace rsp

BENCHMARK_MAIN();
