// E1 — Staircase Separator Theorem (paper §3, Theorem 2).
// Verifies empirically: O(log n)-time-shaped construction cost, O(n)
// segments, and the <= 7n/8 balance, across generators and sizes.
// Counters: worst_ratio (max side / n), segments (separator size).

#include <benchmark/benchmark.h>

#include "core/separator.h"
#include "io/gen.h"

namespace rsp {
namespace {

void BM_Separator(benchmark::State& state, SceneGen gen) {
  const size_t n = static_cast<size_t>(state.range(0));
  Scene scene = gen(n, 42);
  RayShooter shooter(scene);
  Tracer tracer(scene, shooter);
  double worst_ratio = 0;
  size_t segments = 0;
  for (auto _ : state) {
    SeparatorResult r = staircase_separator(scene, tracer);
    benchmark::DoNotOptimize(r.sep);
    worst_ratio = std::max(
        worst_ratio,
        static_cast<double>(std::max(r.above.size(), r.below.size())) /
            static_cast<double>(n));
    segments = r.sep.num_segments();
  }
  state.counters["balance_worst"] = worst_ratio;
  state.counters["balance_bound"] = 7.0 / 8.0;
  state.counters["segments"] = static_cast<double>(segments);
  state.counters["segs_per_n"] = static_cast<double>(segments) /
                                 static_cast<double>(n);
}

}  // namespace


BENCHMARK_CAPTURE(BM_Separator, uniform, gen_uniform)
    ->RangeMultiplier(2)
    ->Range(8, 512);
BENCHMARK_CAPTURE(BM_Separator, grid, gen_grid)
    ->RangeMultiplier(2)
    ->Range(8, 512);
BENCHMARK_CAPTURE(BM_Separator, corridors, gen_corridors)
    ->RangeMultiplier(2)
    ->Range(8, 256);
BENCHMARK_CAPTURE(BM_Separator, clustered, gen_clustered)
    ->RangeMultiplier(2)
    ->Range(8, 512);


}  // namespace rsp

BENCHMARK_MAIN();
