// Track-graph oracle self-checks: the oracle must itself be trustworthy
// (lower bound d1, symmetry, triangle inequality, path validity) before it
// can judge the paper's algorithms.

#include <gtest/gtest.h>

#include "baseline/dijkstra.h"
#include "grid/compress.h"
#include "grid/trackgraph.h"
#include "io/gen.h"

namespace rsp {
namespace {

TEST(CoordIndex, Basics) {
  CoordIndex ci({5, 1, 9, 5, 3});
  EXPECT_EQ(ci.size(), 4u);
  EXPECT_EQ(ci.index(3), 1u);
  EXPECT_TRUE(ci.contains(9));
  EXPECT_FALSE(ci.contains(2));
  EXPECT_EQ(ci.floor_index(4), 1u);
  EXPECT_EQ(ci.floor_index(5), 2u);
}

TEST(TrackGraph, NoObstaclesGivesL1) {
  Scene s = Scene::with_bbox({{100, 100, 101, 101}});  // tiny far obstacle
  std::vector<Point> extra{{0, 0}, {50, 30}};
  TrackGraph g(s.obstacles(), /*container=*/nullptr, extra);
  EXPECT_EQ(g.shortest_length({0, 0}, {50, 30}), 80);
}

TEST(TrackGraph, DetourAroundSingleObstacle) {
  // Obstacle [2,2]x[8,8]; from (5,0) to (5,10): straight is blocked;
  // detour via x=2 or x=8: 10 + 2*3 = 16.
  Scene s = Scene::with_bbox({{2, 2, 8, 8}});
  std::vector<Point> extra{{5, 0}, {5, 10}};
  TrackGraph g(s.obstacles(), &s.container(), extra);
  EXPECT_EQ(g.shortest_length({5, 0}, {5, 10}), 16);
  auto path = g.shortest_path({5, 0}, {5, 10});
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(s.path_free(*path));
  Length len = 0;
  for (size_t i = 0; i + 1 < path->size(); ++i)
    len += dist1((*path)[i], (*path)[i + 1]);
  EXPECT_EQ(len, 16);
}

TEST(TrackGraph, SeamBetweenTouchingObstaclesIsPassable) {
  // Two obstacles sharing the edge x=4. Obstacles are open sets (paths may
  // run along boundaries), so the seam is a legal corridor of width zero
  // and the straight path through it is shortest.
  Scene s = Scene::with_bbox({{0, 0, 4, 6}, {4, 0, 8, 6}});
  std::vector<Point> extra{{4, -2}, {4, 8}};
  TrackGraph g(s.obstacles(), &s.container(), extra);
  EXPECT_EQ(g.shortest_length({4, -2}, {4, 8}), 10);
  // A point strictly inside the union (off the seam) is still blocked.
  Scene s2 = Scene::with_bbox({{0, 0, 4, 6}, {4, 0, 8, 6}});
  std::vector<Point> extra2{{2, -2}, {2, 8}};
  TrackGraph g2(s2.obstacles(), &s2.container(), extra2);
  // From (2,-2) to (2,8): blocked by obstacle 0; nearest way around is the
  // seam at x=4: 2+10+2 = 14, vs x=0: 2+10+2 = 14.
  EXPECT_EQ(g2.shortest_length({2, -2}, {2, 8}), 14);
}

TEST(Oracle, MatchesHandComputedScenes) {
  // Staircase of two blocks.
  Scene s = Scene::with_bbox({{0, 0, 10, 3}, {12, 5, 20, 9}});
  EXPECT_EQ(oracle_length(s, {0, 4}, {13, 4}), 13);   // straight through gap
  EXPECT_EQ(oracle_length(s, {5, 4}, {5, -1}),
            5 + 5 + 5);  // around the first block: down requires x to 0? no:
  // from (5,4) to (5,-1): block [0,10]x[0,3] in the way; detour to x=0 or
  // x=10: 5 + 5 + 5 = 15.
}

TEST(Oracle, LowerBoundSymmetryTriangle) {
  for (const auto& gen : kAllGens) {
    Scene s = gen.fn(12, 3);
    auto pts = random_free_points(s, 6, 11);
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        Length dij = oracle_length(s, pts[i], pts[j]);
        EXPECT_GE(dij, dist1(pts[i], pts[j])) << gen.name;
        EXPECT_EQ(dij, oracle_length(s, pts[j], pts[i])) << gen.name;
      }
    }
    // Triangle inequality through a third point.
    Length d01 = oracle_length(s, pts[0], pts[1]);
    Length d12 = oracle_length(s, pts[1], pts[2]);
    Length d02 = oracle_length(s, pts[0], pts[2]);
    EXPECT_LE(d02, d01 + d12) << gen.name;
  }
}

TEST(Oracle, PathsAreValidAndTight) {
  for (const auto& gen : kAllGens) {
    Scene s = gen.fn(15, 8);
    auto pts = random_free_points(s, 4, 13);
    for (size_t i = 0; i + 1 < pts.size(); ++i) {
      auto path = oracle_path(s, pts[i], pts[i + 1]);
      EXPECT_TRUE(s.path_free(path)) << gen.name;
      EXPECT_EQ(path.front(), pts[i]);
      EXPECT_EQ(path.back(), pts[i + 1]);
      Length len = 0;
      for (size_t k = 0; k + 1 < path.size(); ++k)
        len += dist1(path[k], path[k + 1]);
      EXPECT_EQ(len, oracle_length(s, pts[i], pts[i + 1])) << gen.name;
    }
  }
}

// The vectorized fast-sweeping solver behind single_source() must agree
// *exactly* with its Dijkstra fallback on every generator's geometry —
// it is not an approximation: unconverged sweeps hand off to Dijkstra,
// converged ones are exact fixed points of the same relaxation.
TEST(TrackGraph, SweepMatchesDijkstraAcrossGens) {
  for (const auto& gen : kAllGens) {
    Scene s = gen.fn(24, 11);
    std::vector<Point> extra = random_free_points(s, 6, 5);
    TrackGraph g(s.obstacles(), &s.container(), extra);
    for (const Point& src : extra) {
      EXPECT_EQ(g.single_source(src), g.single_source_dijkstra(src))
          << gen.name << " src=" << src;
    }
  }
}

TEST(RepeatedDijkstra, MatchesPairwiseOracle) {
  Scene s = gen_uniform(8, 17);
  Matrix d = all_pairs_repeated_dijkstra(s);
  const auto& verts = s.obstacle_vertices();
  for (size_t a = 0; a < verts.size(); a += 5) {
    for (size_t b = 0; b < verts.size(); b += 7) {
      EXPECT_EQ(d(a, b), oracle_length(s, verts[a], verts[b]));
    }
  }
}

}  // namespace
}  // namespace rsp
