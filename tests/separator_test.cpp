// The Staircase Separator Theorem (paper §3, Theorem 2): clearance, O(n)
// size, and the 7n/8 balance guarantee, over all generators and many seeds.

#include <gtest/gtest.h>

#include "core/separator.h"
#include "io/gen.h"

namespace rsp {
namespace {

class SeparatorTest : public ::testing::TestWithParam<NamedGen> {};

TEST_P(SeparatorTest, PropertiesHoldOnManyScenes) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    for (size_t n : {2u, 3u, 8u, 20u, 50u}) {
      Scene s = GetParam().fn(n, seed);
      RayShooter shooter(s);
      Tracer tracer(s, shooter);
      SeparatorResult r = staircase_separator(s, tracer);

      // (1) Clear: pierces no obstacle.
      for (const auto& o : s.obstacles()) {
        EXPECT_FALSE(r.sep.pierces(o))
            << GetParam().name << " n=" << n << " seed=" << seed;
      }
      // (2) Balance: each side gets at least ceil(n/8) obstacles, i.e. at
      // most n - ceil(n/8) (the paper's n/8 / 7n/8 split, integer form).
      size_t bound = n - (n + 7) / 8;
      EXPECT_LE(r.above.size(), bound)
          << GetParam().name << " n=" << n << " seed=" << seed;
      EXPECT_LE(r.below.size(), bound)
          << GetParam().name << " n=" << n << " seed=" << seed;
      EXPECT_EQ(r.above.size() + r.below.size(), n);
      // (3) Size O(n): at most 2n+2 segments (paper) + sentinel tails.
      EXPECT_LE(r.sep.num_segments(), 2 * n + 6);
      // (4) Every obstacle is strictly on its assigned side.
      for (int id : r.above) {
        for (const auto& c : s.obstacle(id).vertices()) {
          EXPECT_GE(r.sep.side_of(c), 0);
        }
      }
      for (int id : r.below) {
        for (const auto& c : s.obstacle(id).vertices()) {
          EXPECT_LE(r.sep.side_of(c), 0);
        }
      }
    }
  }
}

TEST_P(SeparatorTest, BalanceBoundTightStatistics) {
  // Across many seeds, record the worst balance ratio; it must never
  // exceed 7/8 (+ rounding slack for small n).
  double worst = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Scene s = GetParam().fn(32, seed);
    RayShooter shooter(s);
    Tracer tracer(s, shooter);
    SeparatorResult r = staircase_separator(s, tracer);
    double ratio =
        static_cast<double>(std::max(r.above.size(), r.below.size())) / 32.0;
    worst = std::max(worst, ratio);
  }
  EXPECT_LE(worst, 7.0 / 8.0 + 1e-9) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllGens, SeparatorTest,
                         ::testing::ValuesIn(kAllGens),
                         [](const auto& info) { return info.param.name; });

TEST(Separator, TwoObstacles) {
  Scene s = Scene::with_bbox({{0, 0, 2, 2}, {10, 10, 12, 13}});
  RayShooter shooter(s);
  Tracer tracer(s, shooter);
  SeparatorResult r = staircase_separator(s, tracer);
  EXPECT_EQ(r.above.size() + r.below.size(), 2u);
  EXPECT_EQ(std::max(r.above.size(), r.below.size()), 1u);
}

}  // namespace
}  // namespace rsp
