// Serving layer (serve/protocol.h + serve/server.h): the protocol parser
// must turn every malformed input — unknown verbs, unparsable or
// out-of-range values, oversized BATCH counts, mid-stream EOF — into an
// error *response*, never a crash; full sessions over in-memory streams
// must answer byte-identically to direct Engine queries, keep request
// order, survive poisoned batches, and report coherent telemetry. The TCP
// front end is exercised over a loopback socket.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "io/gen.h"
#include "loopback_test_util.h"  // defines RSP_TEST_SOCKETS on unix/apple
#include "serve/protocol.h"
#include "serve/server.h"

namespace rsp {
namespace {

// Feeds `lines` to the parser as the continuation-line source.
LineSource source_of(std::vector<std::string> lines) {
  auto rest = std::make_shared<std::vector<std::string>>(std::move(lines));
  auto next = std::make_shared<size_t>(0);
  return [rest, next](std::string& out) {
    if (*next >= rest->size()) return false;
    out = (*rest)[(*next)++];
    return true;
  };
}

LineSource no_more() {
  return [](std::string&) { return false; };
}

// ---------------------------------------------------------------------------
// Parser: positives
// ---------------------------------------------------------------------------

TEST(ProtocolParse, LenAndPath) {
  ParsedRequest pr = parse_request("LEN 1,2 3,4", no_more());
  ASSERT_TRUE(pr.ok) << pr.error;
  EXPECT_EQ(pr.req.verb, Verb::kLen);
  ASSERT_EQ(pr.req.pairs.size(), 1u);
  EXPECT_EQ(pr.req.pairs[0].s, (Point{1, 2}));
  EXPECT_EQ(pr.req.pairs[0].t, (Point{3, 4}));

  pr = parse_request("PATH -5,0 0,-7", no_more());
  ASSERT_TRUE(pr.ok) << pr.error;
  EXPECT_EQ(pr.req.verb, Verb::kPath);
  EXPECT_EQ(pr.req.pairs[0].s, (Point{-5, 0}));
  EXPECT_EQ(pr.req.pairs[0].t, (Point{0, -7}));
}

TEST(ProtocolParse, WhitespaceIsFlexible) {
  ParsedRequest pr = parse_request("  LEN\t1,2   3,4  ", no_more());
  ASSERT_TRUE(pr.ok) << pr.error;
  EXPECT_EQ(pr.req.pairs[0].t, (Point{3, 4}));
}

TEST(ProtocolParse, Batch) {
  ParsedRequest pr =
      parse_request("BATCH 2", source_of({"1,1 2,2", "3,3 4,4"}));
  ASSERT_TRUE(pr.ok) << pr.error;
  EXPECT_EQ(pr.req.verb, Verb::kBatch);
  ASSERT_EQ(pr.req.pairs.size(), 2u);
  EXPECT_EQ(pr.req.pairs[1].s, (Point{3, 3}));
}

TEST(ProtocolParse, StatsAndQuit) {
  EXPECT_TRUE(parse_request("STATS", no_more()).ok);
  EXPECT_TRUE(parse_request("QUIT", no_more()).ok);
  EXPECT_EQ(parse_request("QUIT", no_more()).req.verb, Verb::kQuit);
}

// ---------------------------------------------------------------------------
// Parser: negatives — every one an error result, never a throw.
// ---------------------------------------------------------------------------

TEST(ProtocolParse, MalformedVerbs) {
  for (const char* line :
       {"", "   ", "BOGUS 1,1 2,2", "len 1,1 2,2", "LENGTH 1,1 2,2",
        "LEN\x01 1,1 2,2", "QUERY", "\xff\xfe"}) {
    ParsedRequest pr = parse_request(line, no_more());
    EXPECT_FALSE(pr.ok) << "accepted: '" << line << "'";
    EXPECT_FALSE(pr.error.empty());
  }
}

TEST(ProtocolParse, MalformedArguments) {
  for (const char* line :
       {"LEN", "LEN 1,1", "LEN 1,1 2,2 3,3", "LEN 1 2", "LEN 1,1,1 2,2",
        "LEN a,b 2,2", "LEN 1,1 2,", "LEN 1,1 ,2", "LEN 1.5,0 2,2",
        "LEN 1,1 2,2x", "PATH 1,1", "STATS now", "QUIT 1",
        // Out-of-range: beyond signed 64-bit must be a parse error, not a
        // silent wrap into a valid-looking coordinate.
        "LEN 99999999999999999999,0 1,1", "LEN 1,1 0,-99999999999999999999"}) {
    ParsedRequest pr = parse_request(line, no_more());
    EXPECT_FALSE(pr.ok) << "accepted: '" << line << "'";
  }
}

TEST(ProtocolParse, BatchCountAbuse) {
  for (const char* line :
       {"BATCH", "BATCH 0", "BATCH -3", "BATCH x", "BATCH 2 3",
        "BATCH 99999999999999999999"}) {
    EXPECT_FALSE(parse_request(line, no_more()).ok) << line;
  }
  // Oversized-but-parsable count: rejected up front, before any pair line
  // is consumed and before any proportional allocation.
  std::ostringstream os;
  os << "BATCH " << (kMaxBatchPairs + 1);
  ParsedRequest pr = parse_request(os.str(), no_more());
  EXPECT_FALSE(pr.ok);
  EXPECT_NE(pr.error.find("exceeds"), std::string::npos) << pr.error;
}

TEST(ProtocolParse, BatchEofMidStream) {
  ParsedRequest pr = parse_request("BATCH 3", source_of({"1,1 2,2"}));
  EXPECT_FALSE(pr.ok);
  EXPECT_NE(pr.error.find("end of input"), std::string::npos) << pr.error;
}

TEST(ProtocolParse, BatchMalformedPairLine) {
  ParsedRequest pr =
      parse_request("BATCH 2", source_of({"1,1 2,2", "LEN 1,1 2,2"}));
  EXPECT_FALSE(pr.ok);
  EXPECT_NE(pr.error.find("pair 1"), std::string::npos) << pr.error;
}

// ---------------------------------------------------------------------------
// Formatters
// ---------------------------------------------------------------------------

TEST(ProtocolFormat, Responses) {
  EXPECT_EQ(format_length(42), "OK 42");
  std::vector<Length> lens = {42, 7};
  EXPECT_EQ(format_batch(lens), "OK 2 42 7");
  std::vector<Point> pts = {{0, 1}, {3, 1}};
  EXPECT_EQ(format_path(pts), "OK (0,1) (3,1)");
  EXPECT_EQ(format_error(Status::InvalidQuery("nope")),
            "ERR INVALID_QUERY nope");
  // Response lines must stay single-line even for hostile messages.
  EXPECT_EQ(format_error("BAD_REQUEST", "a\nb\rc"), "ERR BAD_REQUEST a b c");
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, ExactSmallValues) {
  LatencyHistogram h;
  for (uint64_t v : {1, 1, 2, 3}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.max(), 3u);
  EXPECT_EQ(h.percentile(0.5), 1u);
  EXPECT_EQ(h.percentile(1.0), 3u);
}

TEST(LatencyHistogramTest, MedianRanksByCeil) {
  // rank(p) = ceil(p * count): the median of {1, 100, 100} is the 2nd
  // element, not the 1st.
  LatencyHistogram h;
  h.record(1);
  h.record(100);
  h.record(100);
  EXPECT_EQ(h.percentile(0.5), 100u);
}

TEST(LatencyHistogramTest, PercentilesMonotoneAndBounded) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.record(v);
  uint64_t p50 = h.percentile(0.50);
  uint64_t p95 = h.percentile(0.95);
  uint64_t p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  // Geometric buckets: within 2^-3 relative error of the true quantile.
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 5000.0 / 8);
  EXPECT_NEAR(static_cast<double>(p99), 9900.0, 9900.0 / 8);
}

// Property: percentile(p) is monotone non-decreasing in p, for arbitrary
// (seeded) value mixes spanning many octaves. The adaptive coalescing
// window compares p95 against a target, so a non-monotone quantile would
// silently destabilize it.
TEST(LatencyHistogramTest, PercentileMonotoneInP) {
  std::mt19937_64 rng(0xC0FFEEu);
  for (int round = 0; round < 8; ++round) {
    LatencyHistogram h;
    const int n = 1 + static_cast<int>(rng() % 500);
    for (int i = 0; i < n; ++i) {
      // Mix magnitudes: exact range, mid-octaves, and huge values.
      const int shift = static_cast<int>(rng() % 40);
      h.record(rng() % (uint64_t{2} << shift));
    }
    uint64_t prev = 0;
    for (int pc = 0; pc <= 100; ++pc) {
      const uint64_t q = h.percentile(pc / 100.0);
      EXPECT_GE(q, prev) << "p=" << pc << " round=" << round;
      prev = q;
    }
    EXPECT_GE(h.max(), h.percentile(1.0));
    EXPECT_EQ(h.percentile(1.0), h.max());  // top bucket clamps to max
  }
}

// Property: the bucket that answers for a value v overshoots it by at most
// v/8 (one part in 2^3), including right at octave boundaries where the
// bucket width doubles.
TEST(LatencyHistogramTest, RelativeErrorAtOctaveBoundaries) {
  std::vector<uint64_t> probes;
  for (int msb = 4; msb < 40; ++msb) {
    const uint64_t v = uint64_t{1} << msb;
    probes.insert(probes.end(), {v - 1, v, v + 1, v + (v >> 1)});
  }
  for (uint64_t v : probes) {
    LatencyHistogram h;
    h.record(v);
    h.record(v);
    h.record(uint64_t{1} << 50);  // sentinel so max() does not clamp v's
                                  // bucket upper bound
    const uint64_t q = h.percentile(0.5);  // rank 2 of 3 -> v's bucket
    EXPECT_GE(q, v) << v;
    EXPECT_LE((q - v) * 8, v) << "bucket overshoot > 2^-3 at " << v;
  }
  // Below kExact the histogram is exact.
  for (uint64_t v = 0; v < 16; ++v) {
    LatencyHistogram h;
    h.record(v);
    h.record(1u << 20);
    EXPECT_EQ(h.percentile(0.5), v);
  }
}

TEST(LatencyHistogramTest, ResetReturnsToEmpty) {
  LatencyHistogram h;
  for (uint64_t v : {3u, 300u, 30000u}) h.record(v);
  ASSERT_EQ(h.count(), 3u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
  h.record(7);
  EXPECT_EQ(h.percentile(1.0), 7u);  // fully reusable after reset
}

// ---------------------------------------------------------------------------
// End-to-end sessions
// ---------------------------------------------------------------------------

std::vector<std::string> run_session(QueryServer& srv,
                                     const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  srv.serve(in, out);
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) lines.push_back(line);
  return lines;
}

Scene test_scene() { return gen_uniform(12, 41); }

TEST(QueryServerTest, AnswersMatchDirectEngineQueries) {
  Scene s = test_scene();
  Engine ref(Scene{s}, {.backend = Backend::kAllPairsSeq});
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq,
                                    .num_threads = 2}));

  auto pts = random_free_points(s, 8, 7);
  std::ostringstream script;
  std::ostringstream want;
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    script << "LEN " << pts[i].x << ',' << pts[i].y << ' ' << pts[i + 1].x
           << ',' << pts[i + 1].y << "\n";
    want << format_length(*ref.length(pts[i], pts[i + 1])) << "\n";
  }
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    script << "PATH " << pts[i].x << ',' << pts[i].y << ' ' << pts[i + 1].x
           << ',' << pts[i + 1].y << "\n";
    want << format_path(*ref.path(pts[i], pts[i + 1])) << "\n";
  }
  script << "QUIT\n";
  want << "OK bye\n";

  auto lines = run_session(srv, script.str());
  std::ostringstream got;
  for (const auto& l : lines) got << l << "\n";
  EXPECT_EQ(got.str(), want.str());
}

TEST(QueryServerTest, BatchSlicesAreExact) {
  Scene s = test_scene();
  Engine ref(Scene{s}, {.backend = Backend::kAllPairsSeq});
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}));

  auto pts = random_free_points(s, 12, 9);
  std::ostringstream script;
  script << "BATCH 6\n";
  std::vector<Length> want;
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    script << pts[i].x << ',' << pts[i].y << ' ' << pts[i + 1].x << ','
           << pts[i + 1].y << "\n";
    want.push_back(*ref.length(pts[i], pts[i + 1]));
  }
  script << "QUIT\n";

  auto lines = run_session(srv, script.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], format_batch(want));
  EXPECT_EQ(lines[1], "OK bye");

  // One BATCH = one dispatch at full occupancy.
  ServeStats st = srv.stats();
  EXPECT_EQ(st.queries, 6u);
  EXPECT_EQ(st.dispatched_pairs, 6u);
  EXPECT_GE(st.dispatches, 1u);
  EXPECT_GE(st.mean_batch_occupancy(), 1.0);
}

TEST(QueryServerTest, InvalidQueryDegradesOnlyItself) {
  Scene s = test_scene();
  Engine ref(Scene{s}, {.backend = Backend::kAllPairsSeq});
  auto pts = random_free_points(s, 4, 3);

  // A long coalescing window makes it likely the good and bad requests
  // land in one engine dispatch — the fallback must keep them separate.
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}),
                  {.max_batch_pairs = 64, .coalesce_window_us = 5000});
  std::ostringstream script;
  script << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
         << pts[1].y << "\n";
  script << "LEN 123456789,123456789 1,1\n";  // far outside the container
  script << "LEN " << pts[2].x << ',' << pts[2].y << ' ' << pts[3].x << ','
         << pts[3].y << "\n";
  // A BATCH with one poisoned pair fails as a unit (Engine batch
  // semantics) while its neighbors still answer.
  script << "BATCH 2\n"
         << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ',' << pts[1].y
         << "\n123456789,123456789 1,1\nQUIT\n";

  auto lines = run_session(srv, script.str());
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0], format_length(*ref.length(pts[0], pts[1])));
  EXPECT_EQ(lines[1].rfind("ERR INVALID_QUERY", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2], format_length(*ref.length(pts[2], pts[3])));
  EXPECT_EQ(lines[3].rfind("ERR INVALID_QUERY", 0), 0u) << lines[3];
  EXPECT_NE(lines[3].find("pair 1"), std::string::npos) << lines[3];
  EXPECT_EQ(lines[4], "OK bye");
}

TEST(QueryServerTest, ProtocolErrorsAnswerInOrderAndNeverKillTheSession) {
  Scene s = test_scene();
  auto pts = random_free_points(s, 2, 5);
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}));

  std::ostringstream script;
  script << "FROBNICATE\n"
         << "LEN 1,1\n"
         << "# a comment, skipped\n"
         << "\n"
         << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
         << pts[1].y << "\n"
         << "BATCH 999999999999\n"
         << "QUIT\n";
  auto lines = run_session(srv, script.str());
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0].rfind("ERR BAD_REQUEST", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("ERR BAD_REQUEST", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("OK ", 0), 0u) << lines[2];
  EXPECT_EQ(lines[3].rfind("ERR BAD_REQUEST", 0), 0u) << lines[3];
  EXPECT_EQ(lines[4], "OK bye");
}

TEST(QueryServerTest, EofMidBatchProducesErrorNotCrash) {
  Scene s = test_scene();
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}));
  // Session ends inside the BATCH payload: the half-read request must
  // come back as BAD_REQUEST and serve() must return cleanly.
  auto lines = run_session(srv, "BATCH 3\n1,1 2,2\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("ERR BAD_REQUEST", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find("end of input"), std::string::npos) << lines[0];
}

TEST(QueryServerTest, StatsObservesEarlierRequestsAndTelemetryAddsUp) {
  Scene s = test_scene();
  auto pts = random_free_points(s, 2, 11);
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq,
                                    .num_threads = 2}));
  std::ostringstream script;
  for (int i = 0; i < 5; ++i) {
    script << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
           << pts[1].y << "\n";
  }
  script << "STATS\nQUIT\n";
  auto lines = run_session(srv, script.str());
  ASSERT_EQ(lines.size(), 7u);
  // STATS is ordered after every earlier request: all 5 are served.
  EXPECT_EQ(lines[5].rfind("OK served=5 queries=5 errors=0", 0), 0u)
      << lines[5];

  ServeStats st = srv.stats();
  EXPECT_EQ(st.requests, 6u);  // 5 LEN + STATS (QUIT is session-level)
  EXPECT_EQ(st.queries, 5u);
  EXPECT_EQ(st.errors, 0u);
  EXPECT_EQ(st.dispatched_pairs, 5u);
  EXPECT_LE(st.p50_us, st.p95_us);
  EXPECT_LE(st.p95_us, st.p99_us);
  EXPECT_LE(st.p99_us, st.max_us);

  // Engine-side hooks: every dispatched pair went through a batch call.
  EngineMetrics m = srv.engine().metrics();
  EXPECT_GE(m.batches, st.dispatches);
  EXPECT_EQ(m.batch_queries, 5u);

  // The JSON summary carries the same counters.
  std::string json = srv.stats_json();
  EXPECT_NE(json.find("\"queries\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"scheduler\""), std::string::npos) << json;
}

TEST(QueryServerTest, LoadShedCapsTheAdmissionQueue) {
  Scene s = test_scene();
  auto pts = random_free_points(s, 2, 19);
  // Tiny admission cap + a long window: the dispatcher holds the head for
  // the whole window, so a pipelined flood must overflow the queue.
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}),
                  {.coalesce_window_us = 100000, .max_queue_depth = 1});
  std::ostringstream script;
  const int kFlood = 40;
  for (int i = 0; i < kFlood; ++i) {
    script << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
           << pts[1].y << "\n";
  }
  script << "QUIT\n";
  auto lines = run_session(srv, script.str());
  ASSERT_EQ(lines.size(), static_cast<size_t>(kFlood) + 1);

  size_t ok = 0, shed = 0;
  for (int i = 0; i < kFlood; ++i) {
    if (lines[i].rfind("OK ", 0) == 0) {
      ++ok;
    } else {
      // A shed request is answered exactly by the shared formatter — a
      // client can parse on the code, never executes server-side.
      EXPECT_EQ(lines[i].rfind("ERR LOAD_SHED admission queue full", 0), 0u)
          << lines[i];
      ++shed;
    }
  }
  EXPECT_GE(ok, 1u);    // the queued head still answers
  EXPECT_GE(shed, 1u);  // the over-driven session observed backpressure

  ServeStats st = srv.stats();
  EXPECT_EQ(st.requests, static_cast<uint64_t>(kFlood));
  EXPECT_EQ(st.shed, shed);
  EXPECT_GE(st.errors, st.shed);  // shed responses are ERR responses
  EXPECT_EQ(st.queries, ok);      // shed requests never executed
  // The counter is wire-visible: STATS line and the JSON summary.
  EXPECT_NE(srv.stats_line().find(" shed="), std::string::npos)
      << srv.stats_line();
  EXPECT_NE(srv.stats_json().find("\"shed\": " + std::to_string(shed)),
            std::string::npos)
      << srv.stats_json();
}

TEST(QueryServerTest, FairShedEvictsTheHogSessionNeverThePoliteOne) {
  // Regression: a single hog session filling the bounded admission queue
  // used to shed *every other* session's requests — arrival order, not
  // fairness, decided who got backpressure. Admission now tracks per-
  // session in-flight counts: an under-quota arrival evicts the hoggiest
  // over-quota session's newest queued request instead of being shed.
  Scene s = test_scene();
  auto pts = random_free_points(s, 4, 23);
  // Long window so nothing dispatches while both sessions contend for the
  // 6-deep queue; the hog pipelines far past it.
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}),
                  {.coalesce_window_us = 300000, .max_queue_depth = 6});
  auto script_of = [&](int n, const Point& a, const Point& b) {
    std::ostringstream os;
    for (int i = 0; i < n; ++i) {
      os << "LEN " << a.x << ',' << a.y << ' ' << b.x << ',' << b.y << "\n";
    }
    os << "QUIT\n";
    return os.str();
  };
  const std::string hog_script = script_of(40, pts[0], pts[1]);
  const std::string polite_script = script_of(3, pts[2], pts[3]);

  std::vector<std::string> hog_lines;
  std::thread hog([&] { hog_lines = run_session(srv, hog_script); });
  // Let the hog saturate the queue first — the worst case for the polite
  // session under the old first-come shedding.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::vector<std::string> polite_lines =
      run_session(srv, polite_script);
  hog.join();

  // The polite session is under its share (queue/sessions) at every
  // arrival, so none of its requests may ever be shed ("OK bye" is QUIT's).
  ASSERT_EQ(polite_lines.size(), 4u);
  for (const std::string& l : polite_lines) {
    EXPECT_EQ(l.rfind("OK ", 0), 0u) << "polite request shed or failed: " << l;
  }
  // The hog observed the backpressure instead (arrival sheds past its
  // share, plus evictions when the polite session claimed its slots).
  ASSERT_EQ(hog_lines.size(), 41u);
  size_t hog_ok = 0, hog_shed = 0;
  for (size_t i = 0; i + 1 < hog_lines.size(); ++i) {
    const std::string& l = hog_lines[i];
    if (l.rfind("OK ", 0) == 0) {
      ++hog_ok;
    } else {
      EXPECT_EQ(l.rfind("ERR LOAD_SHED", 0), 0u) << l;
      ++hog_shed;
    }
  }
  EXPECT_GE(hog_ok, 1u);    // the hog is throttled, not starved
  EXPECT_GE(hog_shed, 1u);  // and it did absorb the shedding
  EXPECT_EQ(srv.stats().shed, hog_shed);
}

TEST(QueryServerTest, AdaptiveWindowShrinksUnderLoadAndGrowsBackIdle) {
  Scene s = test_scene();
  auto pts = random_free_points(s, 2, 29);
  // The fixture makes the *window wait itself* the latency, so the control
  // loop's behavior is machine-speed independent:
  //  * a session of kUnderfill(20) requests can never fill max_batch_pairs
  //    (40), so its one group waits the full live window — every request's
  //    latency ~ window, which exceeds the target while window > target,
  //  * a session of exactly 40 requests fills the batch, wakes the
  //    dispatcher early, and answers in ~compute time << target.
  // The target is generous (25 ms) so instrumented runs (TSan, parallel
  // ctest) cannot push a healthy epoch's compute-only p95 over it.
  constexpr uint64_t kWindow = 200000;  // configured ceiling, us
  constexpr uint64_t kTarget = 25000;   // p95 target, us
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}),
                  {.max_batch_pairs = 40,
                   .coalesce_window_us = kWindow,
                   .target_p95_us = kTarget});
  EXPECT_EQ(srv.stats().window_us, kWindow);  // starts at the ceiling

  auto herd = [&](int n) {
    std::ostringstream os;
    for (int i = 0; i < n; ++i) {
      os << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
         << pts[1].y << "\n";
    }
    os << "QUIT\n";
    return os.str();
  };

  // Hot phase: under-filled herds pay the whole window (~200 ms >> target)
  // and each session's drained group halves it, until the window itself
  // sinks to the target band.
  for (int i = 0; i < 8; ++i) run_session(srv, herd(20));
  const uint64_t hot = srv.stats().window_us;
  EXPECT_LE(hot, kTarget) << "window did not shrink under load";

  // Healthy phase: batch-filling herds dispatch on the early wake, p95 ~
  // compute << target, and the window doubles back toward the ceiling.
  for (int i = 0; i < 24; ++i) run_session(srv, herd(40));
  const uint64_t grown = srv.stats().window_us;
  EXPECT_GE(grown, 2 * kTarget) << "window did not grow back when healthy";
  EXPECT_LE(grown, kWindow);
  // The live window is wire-visible for operators.
  EXPECT_NE(srv.stats_line().find(" window_us="), std::string::npos);
  EXPECT_NE(srv.stats_json().find("\"window_us\": "), std::string::npos);
}

TEST(QueryServerTest, AcceptBackoffTaintedEpochsAreDiscardedNotAdaptedOn) {
  // Regression: the acceptor's EMFILE retry backoff used to read as idle
  // time to the window adapter — a drained sparse epoch overlapping the
  // backoff would halve the coalescing window exactly when the server was
  // starved of fds. The adapter must skip (and discard) such epochs; the
  // pressure path is driven via note_accept_backoff(), no real fd
  // exhaustion needed.
  Scene s = test_scene();
  auto pts = random_free_points(s, 2, 29);
  constexpr uint64_t kWindow = 200000;  // us; same fixture as the adaptive
  constexpr uint64_t kTarget = 25000;   //   window test above
  const ServeOptions opts{.max_batch_pairs = 40,
                          .coalesce_window_us = kWindow,
                          .target_p95_us = kTarget};
  auto herd = [&](int n) {
    std::ostringstream os;
    for (int i = 0; i < n; ++i) {
      os << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
         << pts[1].y << "\n";
    }
    os << "QUIT\n";
    return os.str();
  };
  // The adaptation step runs on the dispatcher after responses are already
  // fulfilled, so observe it with a bounded poll (never a bare sleep).
  auto poll_until = [&](const std::function<bool()>& pred) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!pred() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
  };

  // Control: one under-filled drained herd halves the window (its p95 is
  // the window itself, far over target).
  QueryServer control(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}),
                      opts);
  run_session(control, herd(20));
  EXPECT_TRUE(poll_until([&] { return control.stats().window_us < kWindow; }))
      << "control epoch never adapted";
  EXPECT_EQ(control.stats().window_skips, 0u);
  EXPECT_EQ(control.stats().accept_backoffs, 0u);

  // Fixture: identical traffic, but the epoch overlaps an accept backoff —
  // the decision must be skipped and the window must NOT move.
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}), opts);
  srv.note_accept_backoff();
  run_session(srv, herd(20));
  ASSERT_TRUE(poll_until([&] { return srv.stats().window_skips >= 1; }))
      << "tainted epoch was never skipped";
  EXPECT_EQ(srv.stats().window_us, kWindow);
  EXPECT_EQ(srv.stats().accept_backoffs, 1u);

  // The pressure is an edge, not a level: with no new backoffs the next
  // drained epoch decides normally again.
  run_session(srv, herd(20));
  EXPECT_TRUE(poll_until([&] { return srv.stats().window_us < kWindow; }))
      << "post-backoff epoch never adapted";

  // Both counters are operator-visible in the JSON summary (the wire
  // stats_line stays fixed — CI transcript diffs depend on its shape).
  const std::string json = srv.stats_json();
  EXPECT_NE(json.find("\"accept_backoffs\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"window_skips\": "), std::string::npos) << json;
  EXPECT_EQ(srv.stats_line().find("window_skips"), std::string::npos);
}

TEST(QueryServerTest, ServeIsReusableAcrossSessions) {
  Scene s = test_scene();
  auto pts = random_free_points(s, 2, 13);
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}));
  std::ostringstream one;
  one << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
      << pts[1].y << "\nQUIT\n";
  auto first = run_session(srv, one.str());
  auto second = run_session(srv, one.str());
  EXPECT_EQ(first, second);
  EXPECT_EQ(srv.stats().queries, 2u);
}

// ---------------------------------------------------------------------------
// TCP front end (loopback)
// ---------------------------------------------------------------------------

#ifdef RSP_TEST_SOCKETS

using testutil::connect_loopback;
using testutil::recv_until_eof;
using testutil::send_all;

TEST(QueryServerTest, TcpSessionOverLoopback) {
  Scene s = test_scene();
  Engine ref(Scene{s}, {.backend = Backend::kAllPairsSeq});
  auto pts = random_free_points(s, 2, 17);
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}));

  std::promise<uint16_t> port_promise;
  std::future<uint16_t> port_future = port_promise.get_future();
  Status result = Status::Ok();
  std::thread server([&] {
    result = srv.serve_port(0, /*max_sessions=*/1,
                            [&](uint16_t p) { port_promise.set_value(p); });
  });
  const uint16_t port = port_future.get();
  ASSERT_NE(port, 0);

  int fd = connect_loopback(port);
  ASSERT_GE(fd, 0);

  std::ostringstream req;
  req << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
      << pts[1].y << "\nQUIT\n";
  ASSERT_TRUE(send_all(fd, req.str()));

  std::string got = recv_until_eof(fd);
  ::close(fd);
  srv.shutdown_port();  // max_sessions caps concurrency now; end the loop
  server.join();

  EXPECT_TRUE(result.ok()) << result;
  EXPECT_EQ(got,
            format_length(*ref.length(pts[0], pts[1])) + "\nOK bye\n");
}

TEST(QueryServerTest, TcpSessionsRunConcurrently) {
  // With the one-at-a-time accept loop this deadlocked: client A holds its
  // session open while client B expects an answer. The reader pool must
  // serve B while A is idle.
  Scene s = test_scene();
  Engine ref(Scene{s}, {.backend = Backend::kAllPairsSeq});
  auto pts = random_free_points(s, 2, 21);
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}));

  std::promise<uint16_t> port_promise;
  std::future<uint16_t> port_future = port_promise.get_future();
  Status result = Status::Ok();
  std::thread server([&] {
    result = srv.serve_port(0, /*max_sessions=*/0,
                            [&](uint16_t p) { port_promise.set_value(p); });
  });
  const uint16_t port = port_future.get();

  int a = connect_loopback(port);
  ASSERT_GE(a, 0);  // A is accepted and idle: no request, no QUIT
  int b = connect_loopback(port);
  ASSERT_GE(b, 0);

  std::ostringstream req;
  req << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
      << pts[1].y << "\nQUIT\n";
  ASSERT_TRUE(send_all(b, req.str()));
  const std::string got_b = recv_until_eof(b);  // answered while A is open
  EXPECT_EQ(got_b, format_length(*ref.length(pts[0], pts[1])) + "\nOK bye\n");
  ::close(b);

  ::close(a);
  srv.shutdown_port();
  server.join();
  EXPECT_TRUE(result.ok()) << result;
}

TEST(QueryServerTest, ShutdownPortDrainsAnInFlightSession) {
  // shutdown_port racing a live session: the accept loop must wake, half-
  // close the in-flight socket so its reader sees EOF, flush the pending
  // response, join the session and return OK — never abort the server.
  Scene s = test_scene();
  Engine ref(Scene{s}, {.backend = Backend::kAllPairsSeq});
  auto pts = random_free_points(s, 2, 23);
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}));

  std::promise<uint16_t> port_promise;
  std::future<uint16_t> port_future = port_promise.get_future();
  Status result = Status::Ok();
  std::thread server([&] {
    result = srv.serve_port(0, /*max_sessions=*/0,
                            [&](uint16_t p) { port_promise.set_value(p); });
  });
  const uint16_t port = port_future.get();

  int fd = connect_loopback(port);
  ASSERT_GE(fd, 0);
  std::ostringstream req;  // no QUIT: the session stays in flight
  req << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
      << pts[1].y << "\n";
  ASSERT_TRUE(send_all(fd, req.str()));

  // Read the one earned response first: the session is now provably live
  // and parked in getline awaiting the next request.
  std::string got;
  char c;
  while (got.find('\n') == std::string::npos && ::recv(fd, &c, 1, 0) == 1) {
    got.push_back(c);
  }
  EXPECT_EQ(got, format_length(*ref.length(pts[0], pts[1])) + "\n");

  srv.shutdown_port();  // races the still-open session
  server.join();        // returns only once the session is drained
  EXPECT_TRUE(result.ok()) << result;
  EXPECT_EQ(recv_until_eof(fd), "");  // clean EOF, no stray bytes
  ::close(fd);
}

TEST(QueryServerTest, ShutdownBeforeServePortIsStickyNotLost) {
  // A SIGINT landing before the listener exists must not be lost:
  // serve_port started afterwards returns OK immediately.
  Scene s = test_scene();
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}));
  srv.shutdown_port();
  Status st = srv.serve_port(0, 0, [](uint16_t) {
    FAIL() << "should never reach the accept loop";
  });
  EXPECT_TRUE(st.ok()) << st;
}

TEST(QueryServerTest, ShutdownPortEndsUnboundedAcceptLoopCleanly) {
  Scene s = test_scene();
  QueryServer srv(Engine(Scene{s}, {.backend = Backend::kAllPairsSeq}));

  std::promise<uint16_t> port_promise;
  std::future<uint16_t> port_future = port_promise.get_future();
  Status result = Status::Ok();
  std::thread server([&] {
    result = srv.serve_port(0, /*max_sessions=*/0,
                            [&](uint16_t p) { port_promise.set_value(p); });
  });
  port_future.get();  // listening — a blocked accept is in flight
  srv.shutdown_port();
  server.join();
  EXPECT_TRUE(result.ok()) << result;  // clean stop, not an accept error
}

#endif  // RSP_TEST_SOCKETS

}  // namespace
}  // namespace rsp
