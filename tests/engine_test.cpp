// The rsp::Engine facade: non-throwing Status/Result boundary, batch entry
// points against the oracle, lazy construction, backend resolution, and
// pairwise cross-validation of all three query backends.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "api/engine.h"
#include "baseline/dijkstra.h"
#include "core/query.h"
#include "io/gen.h"

namespace rsp {
namespace {

Length polyline_len(const std::vector<Point>& p) {
  Length s = 0;
  for (size_t i = 0; i + 1 < p.size(); ++i) s += dist1(p[i], p[i + 1]);
  return s;
}

std::vector<PointPair> make_pairs(const Scene& scene, size_t count,
                                  uint64_t seed) {
  auto pts = random_free_points(scene, 2 * count, seed);
  std::vector<PointPair> pairs;
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    pairs.push_back({pts[i], pts[i + 1]});
  }
  return pairs;
}

// ---------------------------------------------------------------------------
// Batch queries vs oracle, across every scene generator.
// ---------------------------------------------------------------------------

class EngineBatchTest : public ::testing::TestWithParam<NamedGen> {};

TEST_P(EngineBatchTest, BatchLengthsAgreeWithOracle) {
  Scene s = GetParam().fn(12, 17);
  Engine eng(s, {.num_threads = 4});
  auto pairs = make_pairs(s, 10, 31);
  auto lens = eng.lengths(pairs);
  ASSERT_TRUE(lens.ok()) << lens.status();
  ASSERT_EQ(lens->size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*lens)[i], oracle_length(s, pairs[i].s, pairs[i].t))
        << GetParam().name << " pair " << i;
  }
}

TEST_P(EngineBatchTest, BatchMatchesSinglePairBitForBit) {
  Scene s = GetParam().fn(10, 23);
  Engine eng(s, {.num_threads = 4});
  auto pairs = make_pairs(s, 8, 5);
  auto lens = eng.lengths(pairs);
  auto paths = eng.paths(pairs);
  ASSERT_TRUE(lens.ok()) << lens.status();
  ASSERT_TRUE(paths.ok()) << paths.status();
  // Also bit-identical to the implementation layer used directly.
  AllPairsSP sp{Scene{s}};
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*lens)[i], *eng.length(pairs[i].s, pairs[i].t));
    EXPECT_EQ((*lens)[i], sp.length(pairs[i].s, pairs[i].t));
    EXPECT_EQ((*paths)[i], *eng.path(pairs[i].s, pairs[i].t));
    EXPECT_EQ((*paths)[i], sp.path(pairs[i].s, pairs[i].t));
    EXPECT_EQ(polyline_len((*paths)[i]), (*lens)[i]);
    EXPECT_TRUE(s.path_free((*paths)[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(AllGens, EngineBatchTest,
                         ::testing::ValuesIn(kAllGens),
                         [](const auto& info) { return info.param.name; });

TEST(EngineBatch, LazyBuildOverlapsFirstBatch) {
  // With lazy_build, the first call being a batch exercises the path where
  // the deferred build runs as a scheduler task while the batch validates;
  // the answers must match an eager engine's.
  Scene s = gen_uniform(12, 41);
  Engine lazy(s, {.num_threads = 4, .lazy_build = true});
  Engine eager(Scene{s}, {.num_threads = 4});
  EXPECT_FALSE(lazy.built());
  auto pairs = make_pairs(s, 16, 13);
  auto got = lazy.lengths(pairs);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_TRUE(lazy.built());
  auto want = eager.lengths(pairs);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
  // An invalid batch on a fresh lazy engine still reports the validation
  // error (validation wins over whatever the overlapped build does).
  Engine lazy2(Scene{s}, {.num_threads = 4, .lazy_build = true});
  Rect bb = s.container().bbox();
  std::vector<PointPair> bad = {
      {pairs[0].s, {bb.xmin - 100, bb.ymin - 100}}};  // outside container
  auto st = lazy2.lengths(bad);
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidQuery);
  // And the engine still serves valid batches afterwards (the prefetched
  // build the rejected batch kicked off is reused, not corrupted).
  auto ok = lazy2.lengths(pairs);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(*ok, *want);
}

TEST(EngineBatch, ConcurrentBatchesFromUserThreads) {
  // Batch fan-outs used to serialize on a pool lock; the scheduler is
  // reentrant, so concurrent lengths()/paths() from several user threads
  // must interleave safely and return exact results.
  Scene s = gen_uniform(10, 19);
  Engine eng(s, {.num_threads = 4});
  auto pairs = make_pairs(s, 12, 3);
  std::vector<Length> want;
  for (const auto& p : pairs) want.push_back(*eng.length(p.s, p.t));
  constexpr int kUsers = 4;
  std::vector<std::vector<Length>> got(kUsers);
  std::vector<std::thread> users;
  for (int u = 0; u < kUsers; ++u) {
    users.emplace_back([&, u] {
      for (int round = 0; round < 5; ++round) {
        auto r = eng.lengths(pairs);
        ASSERT_TRUE(r.ok());
        got[u] = *r;
      }
    });
  }
  for (auto& t : users) t.join();
  for (int u = 0; u < kUsers; ++u) EXPECT_EQ(got[u], want) << "user " << u;
}

// ---------------------------------------------------------------------------
// Degenerate and invalid queries: documented Status, never a throw.
// ---------------------------------------------------------------------------

TEST(EngineStatus, SourceEqualsTargetIsZero) {
  Scene s = gen_uniform(6, 2);
  Engine eng(s);
  auto pts = random_free_points(s, 4, 9);
  for (const auto& p : pts) {
    EXPECT_EQ(*eng.length(p, p), 0);
    EXPECT_EQ(*eng.path(p, p), std::vector<Point>{p});
  }
}

TEST(EngineStatus, PointOnObstacleEdgeIsValid) {
  Scene s = Scene::with_bbox({{0, 0, 6, 4}, {10, 7, 15, 20}});
  Engine eng(s);
  Point on_edge{3, 4};     // top edge of rect 0 (non-vertex)
  Point corner{10, 7};     // an obstacle vertex
  auto r = eng.length(on_edge, corner);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, oracle_length(s, on_edge, corner));
}

TEST(EngineStatus, PointInsideObstacleIsInvalidQuery) {
  Scene s = Scene::with_bbox({{0, 0, 10, 10}});
  Engine eng(s);
  auto r = eng.length({5, 5}, {-2, -2});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidQuery);
  EXPECT_NE(r.status().message().find("inside an obstacle"),
            std::string::npos);
}

TEST(EngineStatus, PointOutsideContainerIsInvalidQuery) {
  Scene s = Scene::with_bbox({{0, 0, 10, 10}});
  Engine eng(s);
  auto r = eng.path({-2, -2}, {100, 100});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidQuery);
  EXPECT_NE(r.status().message().find("outside the container"),
            std::string::npos);
}

TEST(EngineStatus, EmptySceneIsInvalidQuery) {
  Engine eng{Scene{}};
  auto r = eng.length({0, 0}, {1, 1});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidQuery);
}

TEST(EngineStatus, BatchFailsOnFirstInvalidPairWithIndex) {
  Scene s = Scene::with_bbox({{0, 0, 10, 10}, {20, 0, 30, 10}});
  Engine eng(s);
  auto pairs = make_pairs(s, 4, 7);
  pairs[2].t = Point{5, 5};  // strictly inside obstacle 0
  auto lens = eng.lengths(pairs);
  ASSERT_FALSE(lens.ok());
  EXPECT_EQ(lens.status().code(), StatusCode::kInvalidQuery);
  EXPECT_NE(lens.status().message().find("pair 2"), std::string::npos);
}

TEST(EngineStatus, CreateRejectsInvalidScenes) {
  // Overlapping obstacles.
  auto bad = Engine::Create({{0, 0, 4, 4}, {2, 2, 6, 6}});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidScene);
  // Obstacle outside the container.
  auto poly = RectilinearPolygon::rectangle(Rect{0, 0, 10, 10});
  auto outside = Engine::Create({{8, 8, 12, 12}}, poly);
  ASSERT_FALSE(outside.ok());
  EXPECT_EQ(outside.status().code(), StatusCode::kInvalidScene);
  // No obstacles at all (with_bbox requires one).
  auto empty = Engine::Create({});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidScene);
  // A good scene succeeds and answers queries.
  auto good = Engine::Create({{2, 2, 6, 6}});
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_TRUE(good->length({0, 0}, {8, 8}).ok());
}

// ---------------------------------------------------------------------------
// Construction modes.
// ---------------------------------------------------------------------------

TEST(EngineConfig, AutoResolvesByThreadCount) {
  Scene s = gen_uniform(5, 4);
  Engine seq(Scene{s}, {.backend = Backend::kAuto, .num_threads = 0});
  EXPECT_EQ(seq.backend(), Backend::kAllPairsSeq);
  Engine par(Scene{s}, {.backend = Backend::kAuto, .num_threads = 4});
  EXPECT_EQ(par.backend(), Backend::kAllPairsParallel);
  EXPECT_EQ(par.num_threads(), 4u);
}

TEST(EngineConfig, LazyBuildDefersUntilFirstQuery) {
  Scene s = gen_uniform(8, 6);
  Engine eng(s, {.lazy_build = true});
  EXPECT_FALSE(eng.built());
  auto pts = random_free_points(s, 2, 3);
  auto r = eng.length(pts[0], pts[1]);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(eng.built());
  EXPECT_EQ(*r, oracle_length(s, pts[0], pts[1]));
}

TEST(EngineConfig, WarmupForcesTheBuild) {
  Scene s = gen_uniform(6, 8);
  Engine eng(s, {.lazy_build = true});
  EXPECT_FALSE(eng.built());
  ASSERT_TRUE(eng.warmup().ok());
  EXPECT_TRUE(eng.built());
}

TEST(EngineConfig, DijkstraBackendHasNoStructure) {
  Scene s = gen_uniform(6, 8);
  Engine eng(s, {.backend = Backend::kDijkstraBaseline});
  EXPECT_EQ(eng.all_pairs(), nullptr);
  EXPECT_FALSE(eng.built());
}

TEST(EngineConfig, EngineIsMovable) {
  Scene s = gen_uniform(6, 2);
  auto pts = random_free_points(s, 2, 4);
  Engine a(s);
  Length want = *a.length(pts[0], pts[1]);
  Engine b = std::move(a);
  EXPECT_EQ(*b.length(pts[0], pts[1]), want);
}

// ---------------------------------------------------------------------------
// Backend cross-validation: all three backends agree pairwise on random
// scenes (lengths exactly; paths validated and length-tight per backend).
// ---------------------------------------------------------------------------

TEST(EngineBackends, AllThreeAgreePairwiseOnRandomScenes) {
  const Backend kBackends[] = {Backend::kAllPairsSeq,
                               Backend::kAllPairsParallel,
                               Backend::kDijkstraBaseline};
  for (uint64_t seed : {4u, 19u}) {
    Scene s = gen_uniform(10, seed);
    auto pairs = make_pairs(s, 6, seed + 1);
    std::vector<std::vector<Length>> per_backend;
    for (Backend b : kBackends) {
      Engine eng(Scene{s}, {.backend = b, .num_threads = 4});
      ASSERT_EQ(eng.backend(), b);
      auto lens = eng.lengths(pairs);
      ASSERT_TRUE(lens.ok()) << backend_name(b) << ": " << lens.status();
      per_backend.push_back(*lens);
      auto paths = eng.paths(pairs);
      ASSERT_TRUE(paths.ok()) << backend_name(b) << ": " << paths.status();
      for (size_t i = 0; i < pairs.size(); ++i) {
        EXPECT_TRUE(s.path_free((*paths)[i])) << backend_name(b);
        EXPECT_EQ(polyline_len((*paths)[i]), (*lens)[i]) << backend_name(b);
      }
    }
    for (size_t a = 0; a < per_backend.size(); ++a) {
      for (size_t b = a + 1; b < per_backend.size(); ++b) {
        EXPECT_EQ(per_backend[a], per_backend[b])
            << backend_name(kBackends[a]) << " vs "
            << backend_name(kBackends[b]) << " seed=" << seed;
      }
    }
  }
}

}  // namespace
}  // namespace rsp
