// Tests for the PRAM simulation substrate: the work-stealing scheduler's
// flat fork-join entry, parallel_for, reduce, scan, merge, sort, and the
// work/depth accounting (§2 of the paper uses these primitives as black
// boxes). Scheduler-specific behavior — nesting, stealing, exception
// routing through TaskGroup — is covered by scheduler_test.cpp.

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <thread>

#include "pram/parallel.h"
#include "pram/scheduler.h"

namespace rsp {
namespace {

TEST(SchedulerRun, RunsAllTasksOnce) {
  Scheduler sched(4);
  std::vector<std::atomic<int>> hits(1000);
  sched.run(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SchedulerRun, PropagatesExceptions) {
  Scheduler sched(3);
  EXPECT_THROW(
      sched.run(64,
                [&](size_t i) {
                  if (i == 13) throw std::runtime_error("boom");
                }),
      std::runtime_error);
  // Scheduler remains usable after an exception.
  std::atomic<int> count{0};
  sched.run(16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(SchedulerRun, SingleThreadFallback) {
  Scheduler sched(1);
  std::vector<int> v(100, 0);
  sched.run(100, [&](size_t i) { v[i] = static_cast<int>(i); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(ParallelFor, MatchesSerialLoop) {
  Scheduler sched(4);
  std::vector<long long> v(50000);
  parallel_for(sched, 0, v.size(), [&](size_t i) {
    v[i] = static_cast<long long>(i) * 3 - 7;
  });
  for (size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i], static_cast<long long>(i) * 3 - 7);
  }
}

TEST(ParallelFor, PropagatesExceptionFromCallerLeaf) {
  // The caller's own leaf throws while forked split tasks are still live;
  // unwinding must join them before the recursion lambda is destroyed
  // (regression test for the split/TaskGroup declaration order).
  Scheduler sched(4);
  for (int it = 0; it < 20; ++it) {
    EXPECT_THROW(
        parallel_for(
            sched, 0, 100000,
            [&](size_t i) {
              if (i % 1000 == 7) throw std::runtime_error("leaf boom");
            },
            /*grain=*/16),
        std::runtime_error);
  }
  // Scheduler unharmed.
  std::atomic<int> count{0};
  sched.run(16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ParallelReduce, SumsLikeAccumulate) {
  Scheduler sched(4);
  std::vector<long long> v(31337);
  std::mt19937_64 rng(3);
  for (auto& x : v) x = static_cast<long long>(rng() % 1000) - 500;
  long long expect = std::accumulate(v.begin(), v.end(), 0LL);
  long long got = parallel_reduce<long long>(
      sched, 0, v.size(), 0LL, [](long long a, long long b) { return a + b; },
      [&](size_t i) { return v[i]; });
  EXPECT_EQ(got, expect);
}

TEST(ExclusiveScan, MatchesSerialPrefix) {
  Scheduler sched(4);
  for (size_t n : {0u, 1u, 2u, 1000u, 65536u}) {
    std::vector<long long> v(n), expect(n);
    std::mt19937_64 rng(n);
    for (auto& x : v) x = static_cast<long long>(rng() % 100);
    long long acc = 0;
    for (size_t i = 0; i < n; ++i) {
      expect[i] = acc;
      acc += v[i];
    }
    long long total = exclusive_scan(sched, v);
    EXPECT_EQ(total, acc);
    EXPECT_EQ(v, expect);
  }
}

TEST(ParallelMerge, MatchesStdMerge) {
  Scheduler sched(4);
  std::mt19937_64 rng(5);
  for (int it = 0; it < 30; ++it) {
    size_t na = rng() % 5000, nb = rng() % 5000;
    std::vector<int> a(na), b(nb);
    for (auto& x : a) x = static_cast<int>(rng() % 1000);
    for (auto& x : b) x = static_cast<int>(rng() % 1000);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<int> expect(na + nb), got;
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expect.begin());
    parallel_merge(sched, a, b, got);
    EXPECT_EQ(got, expect);
  }
}

TEST(ParallelSort, MatchesStdSort) {
  Scheduler sched(4);
  std::mt19937_64 rng(9);
  for (size_t n : {0u, 1u, 2u, 100u, 4097u, 100000u}) {
    std::vector<long long> v(n);
    for (auto& x : v) x = static_cast<long long>(rng() % 1000000);
    std::vector<long long> expect = v;
    std::sort(expect.begin(), expect.end());
    parallel_sort(sched, v);
    EXPECT_EQ(v, expect);
  }
}

TEST(PramCost, ScanChargesLinearWorkLogDepth) {
  Scheduler sched(2);
  pram_reset();
  std::vector<long long> v(1 << 16, 1);
  PramCostScope scope;
  exclusive_scan(sched, v);
  PramCost c = scope.cost();
  EXPECT_EQ(c.work, 2u * (1 << 16));
  EXPECT_EQ(c.depth, 2u * 16);
}

TEST(PramCost, SortChargesNLogNWork) {
  Scheduler sched(2);
  pram_reset();
  std::vector<long long> v(1 << 14);
  std::mt19937_64 rng(2);
  for (auto& x : v) x = static_cast<long long>(rng());
  PramCostScope scope;
  parallel_sort(sched, v);
  PramCost c = scope.cost();
  // Work within a small constant of n log n.
  uint64_t n = 1 << 14;
  EXPECT_GE(c.work, n);
  EXPECT_LE(c.work, 4 * n * 14);
}

TEST(PramCost, ScopesNest) {
  pram_reset();
  PramCostScope outer;
  pram_charge(10, 1);
  {
    PramCostScope inner;
    pram_charge(5, 2);
    EXPECT_EQ(inner.cost().work, 5u);
    EXPECT_EQ(inner.cost().depth, 2u);
  }
  EXPECT_EQ(outer.cost().work, 15u);
  EXPECT_EQ(outer.cost().depth, 3u);
}

TEST(PramCost, ConcurrentScopesStayIsolated) {
  // Two threads charge under their own scopes concurrently; each scope
  // tallies only its own thread's charges (the process-global tally keeps
  // the sum). This is the point of scoped accounting: parallel benchmarks
  // can no longer corrupt each other's numbers.
  PramCost seen[2];
  std::thread t0([&] {
    PramCostScope scope;
    for (int i = 0; i < 1000; ++i) pram_charge(3, 1);
    seen[0] = scope.cost();
  });
  std::thread t1([&] {
    PramCostScope scope;
    for (int i = 0; i < 1000; ++i) pram_charge(7, 2);
    seen[1] = scope.cost();
  });
  t0.join();
  t1.join();
  EXPECT_EQ(seen[0].work, 3000u);
  EXPECT_EQ(seen[0].depth, 1000u);
  EXPECT_EQ(seen[1].work, 7000u);
  EXPECT_EQ(seen[1].depth, 2000u);
}

TEST(PramCost, ScopeFollowsForkedTasks) {
  // Charges issued inside scheduler tasks land in the scope that was
  // active when the task was forked, even when a worker thread runs it.
  Scheduler sched(4);
  pram_reset();
  PramCostScope scope;
  sched.run(64, [&](size_t) { pram_charge(2, 1); });
  EXPECT_EQ(scope.cost().work, 128u);
  EXPECT_EQ(scope.cost().depth, 64u);
}

}  // namespace
}  // namespace rsp
