// Tests for forests, level-ancestor (paper §8 / Berkman–Vishkin), and LCA.

#include <gtest/gtest.h>

#include <random>

#include "trees/euler.h"
#include "trees/lca.h"
#include "trees/level_ancestor.h"

namespace rsp {
namespace {

std::vector<int> random_forest(int n, int n_roots, std::mt19937_64& rng) {
  std::vector<int> parent(n, -1);
  for (int v = n_roots; v < n; ++v) {
    parent[v] = static_cast<int>(rng() % static_cast<uint64_t>(v));
  }
  return parent;
}

// A single path (worst case for ladders).
std::vector<int> path_forest(int n) {
  std::vector<int> parent(n, -1);
  for (int v = 1; v < n; ++v) parent[v] = v - 1;
  return parent;
}

// A star (depth 1).
std::vector<int> star_forest(int n) {
  std::vector<int> parent(n, -1);
  for (int v = 1; v < n; ++v) parent[v] = 0;
  return parent;
}

TEST(Forest, DepthRootOrder) {
  Forest f({-1, 0, 0, 1, 1, -1, 5});
  EXPECT_EQ(f.depth(0), 0);
  EXPECT_EQ(f.depth(3), 2);
  EXPECT_EQ(f.root(3), 0);
  EXPECT_EQ(f.root(6), 5);
  EXPECT_EQ(f.height(), 2);
  // Topological order: parents first.
  std::vector<int> pos(f.size());
  for (size_t i = 0; i < f.topological_order().size(); ++i) {
    pos[f.topological_order()[i]] = static_cast<int>(i);
  }
  for (int v = 0; v < f.size(); ++v) {
    if (f.parent(v) >= 0) {
      EXPECT_LT(pos[f.parent(v)], pos[v]);
    }
  }
}

TEST(Forest, RejectsCycle) {
  EXPECT_THROW(Forest({1, 2, 0}), std::logic_error);
}

TEST(Forest, PathToRoot) {
  Forest f({-1, 0, 1, 2, 3});
  auto p = f.path_to_root(4);
  EXPECT_EQ(p, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(LevelAncestor, MatchesNaiveOnRandomForests) {
  std::mt19937_64 rng(31);
  for (int it = 0; it < 25; ++it) {
    int n = 2 + static_cast<int>(rng() % 300);
    Forest f(random_forest(n, 1 + static_cast<int>(rng() % 3), rng));
    LevelAncestor la(f);
    for (int q = 0; q < 200; ++q) {
      int v = static_cast<int>(rng() % n);
      int k = static_cast<int>(rng() % (f.depth(v) + 2));
      int expect = v;
      for (int s = 0; s < k && expect >= 0; ++s) expect = f.parent(expect);
      EXPECT_EQ(la.query(v, k), expect) << "v=" << v << " k=" << k;
    }
  }
}

TEST(LevelAncestor, PathAndStarShapes) {
  for (int n : {2, 3, 64, 1000}) {
    Forest fp(path_forest(n));
    LevelAncestor lap(fp);
    EXPECT_EQ(lap.query(n - 1, n - 1), 0);
    EXPECT_EQ(lap.query(n - 1, 1), n - 2);
    EXPECT_EQ(lap.query(n - 1, n), -1);
    Forest fs(star_forest(n));
    LevelAncestor las(fs);
    EXPECT_EQ(las.query(n - 1, 1), 0);
    EXPECT_EQ(las.query(n - 1, 0), n - 1);
  }
}

TEST(Lca, MatchesNaive) {
  std::mt19937_64 rng(37);
  for (int it = 0; it < 20; ++it) {
    int n = 2 + static_cast<int>(rng() % 200);
    Forest f(random_forest(n, 1 + static_cast<int>(rng() % 2), rng));
    Lca lca(f);
    auto naive = [&](int u, int v) {
      std::vector<int> pu = f.path_to_root(u);
      std::vector<int> pv = f.path_to_root(v);
      if (pu.back() != pv.back()) return -1;
      int a = -1;
      auto iu = pu.rbegin();
      auto iv = pv.rbegin();
      while (iu != pu.rend() && iv != pv.rend() && *iu == *iv) {
        a = *iu;
        ++iu;
        ++iv;
      }
      return a;
    };
    for (int q = 0; q < 200; ++q) {
      int u = static_cast<int>(rng() % n);
      int v = static_cast<int>(rng() % n);
      int expect = naive(u, v);
      EXPECT_EQ(lca.query(u, v), expect);
      if (expect >= 0) {
        EXPECT_EQ(lca.tree_distance(u, v),
                  f.depth(u) + f.depth(v) - 2 * f.depth(expect));
      }
    }
  }
}

}  // namespace
}  // namespace rsp
