// The §5 divide-and-conquer boundary builder against the oracle: D_Q
// correctness, Monge claims (no fallbacks on general-position scenes),
// region splitting, and Lemma 7 queries on the root structure.

#include <gtest/gtest.h>

#include <thread>

#include "baseline/dijkstra.h"
#include "core/dnc_builder.h"
#include "core/region.h"
#include "core/separator.h"
#include "monge/monge.h"
#include "grid/trackgraph.h"
#include "io/gen.h"

namespace rsp {
namespace {

TEST(Region, ClipAndSplitRectangle) {
  auto q = RectilinearPolygon::rectangle(Rect{0, 0, 10, 10});
  Staircase s = Staircase::from_chain({{3, 0}, {3, 4}, {7, 4}, {7, 10}},
                                      StairOrient::Increasing);
  // Extend through the region: sentinels synthesized by from_chain go
  // along the end segments, crossing the bottom and top edges.
  auto clip = clip_staircase(q, s);
  ASSERT_GE(clip.size(), 2u);
  EXPECT_EQ(clip.front(), (Point{3, 0}));
  EXPECT_EQ(clip.back(), (Point{7, 10}));
  auto [above, below] = split_region(q, s, clip);
  // Above = up-left side.
  EXPECT_TRUE(above.contains(Point{0, 10}));
  EXPECT_FALSE(above.contains(Point{10, 0}));
  EXPECT_TRUE(below.contains(Point{10, 0}));
  // The chain belongs to both.
  EXPECT_TRUE(above.on_boundary(Point{3, 2}));
  EXPECT_TRUE(below.on_boundary(Point{3, 2}));
  // Areas partition the square (perimeter sanity instead of area calc).
  EXPECT_TRUE(above.contains(Point{5, 4}));
  EXPECT_TRUE(below.contains(Point{5, 4}));  // on the chain
  EXPECT_FALSE(below.contains(Point{4, 9}));
}

TEST(Region, ArcPositionOrdersBoundary) {
  auto q = RectilinearPolygon::rectangle(Rect{0, 0, 4, 4});
  auto k0 = arc_position(q, {0, 0});
  auto k1 = arc_position(q, {2, 0});
  auto k2 = arc_position(q, {4, 1});
  auto k3 = arc_position(q, {1, 4});
  EXPECT_LT(k0, k1);
  EXPECT_LT(k1, k2);
  EXPECT_LT(k2, k3);
}

TEST(Dnc, SingleObstacleBoundaryMatrix) {
  Scene s = Scene::with_bbox({{4, 4, 8, 8}}, 4);
  DncResult r = build_boundary_structure(s);
  const auto& b = r.root.points();
  ASSERT_GE(b.size(), 4u);
  // Validate the whole matrix against a track-graph oracle.
  TrackGraph g(s.obstacles(), &s.container(), b);
  for (size_t i = 0; i < b.size(); ++i) {
    std::vector<Length> dist = g.single_source(b[i]);
    for (size_t j = 0; j < b.size(); ++j) {
      int node = g.node_at(b[j]);
      ASSERT_GE(node, 0);
      EXPECT_EQ(r.root.matrix()(i, j), dist[node])
          << b[i] << " -> " << b[j];
    }
  }
}

class DncOracleTest
    : public ::testing::TestWithParam<std::tuple<NamedGen, size_t>> {};

TEST_P(DncOracleTest, BoundaryMatrixMatchesOracle) {
  auto [gen, n] = GetParam();
  for (uint64_t seed : {1u, 7u}) {
    Scene s = gen.fn(n, seed);
    DncResult r = build_boundary_structure(s);
    const auto& b = r.root.points();
    TrackGraph g(s.obstacles(), &s.container(), b);
    // Sampled sources (full check is quadratic in |B|).
    for (size_t i = 0; i < b.size(); i += std::max<size_t>(1, b.size() / 12)) {
      std::vector<Length> dist = g.single_source(b[i]);
      for (size_t j = 0; j < b.size(); ++j) {
        int node = g.node_at(b[j]);
        ASSERT_GE(node, 0);
        ASSERT_EQ(r.root.matrix()(i, j), dist[node])
            << gen.name << " n=" << n << " seed=" << seed << " " << b[i]
            << " -> " << b[j];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DncOracleTest,
    ::testing::Combine(::testing::ValuesIn(kAllGens),
                       ::testing::Values(2, 5, 10, 18)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Dnc, MongeMultipliesDominate) {
  // The hub products run the SMAWK fast path whenever the factor through
  // the separator metric is used (always) and the closing factor is a
  // single boundary arc; fallbacks are counted, not hidden.
  for (const auto& gen : kAllGens) {
    Scene s = gen.fn(16, 3);
    DncResult r = build_boundary_structure(s);
    if (s.num_obstacles() > 3) {
      EXPECT_GT(r.stats.monge_multiplies, 0u) << gen.name;
      EXPECT_GE(r.stats.monge_multiplies, r.stats.monge_fallbacks)
          << gen.name;
    }
  }
}

TEST(Dnc, Lemma1ArcToArcSubmatricesAreMonge) {
  // Paper Lemma 1 / Fig. 4(a): for X and Y on disjoint boundary portions of
  // a convex region with clear boundary, M_XY is Monge (X in walk order, Y
  // reversed). Checked on the root structure of every generator.
  for (const auto& gen : kAllGens) {
    Scene s = gen.fn(14, 5);
    DncResult r = build_boundary_structure(s);
    const auto& pts = r.root.points();
    const Matrix& dm = r.root.matrix();
    size_t n = pts.size();
    ASSERT_GE(n, 8u);
    // X = first third of the boundary walk, Y = last third.
    size_t a0 = 0, a1 = n / 3;
    size_t b0 = 2 * n / 3, b1 = n;
    Matrix sub(a1 - a0, b1 - b0);
    for (size_t i = a0; i < a1; ++i)
      for (size_t j = b0; j < b1; ++j)
        sub(i - a0, b1 - 1 - j) = dm(i, j);  // Y reversed (CW order)
    EXPECT_TRUE(is_monge(sub)) << gen.name;
  }
}

TEST(Dnc, RecursionDepthLogarithmic) {
  // Theorem 2's 7/8 balance gives depth <= log_{8/7}(n) + O(1).
  Scene s = gen_uniform(64, 11);
  DncResult r = build_boundary_structure(s);
  double bound = std::log(64.0) / std::log(8.0 / 7.0) + 3;
  EXPECT_LE(static_cast<double>(r.stats.max_depth), bound);
  EXPECT_GE(r.stats.nodes, r.stats.leaves);
}

TEST(Dnc, Lemma7ArbitraryBoundaryQueries) {
  Scene s = gen_uniform(12, 9);
  DncResult r = build_boundary_structure(s);
  const RectilinearPolygon& p = s.container();
  // Arbitrary (non-B) boundary points: walk each container edge midpoints.
  std::vector<Point> qpts;
  for (size_t i = 0; i < p.size(); ++i) {
    Segment e = p.edge(i);
    Point mid{(e.a.x + e.b.x) / 2, (e.a.y + e.b.y) / 2};
    if (p.on_boundary(mid)) qpts.push_back(mid);
  }
  for (size_t i = 0; i < qpts.size(); ++i) {
    for (size_t j = i; j < qpts.size(); ++j) {
      Length got = r.root.query(s, qpts[i], qpts[j]);
      Length expect = oracle_length(s, qpts[i], qpts[j]);
      EXPECT_EQ(got, expect) << qpts[i] << " -> " << qpts[j];
    }
  }
}

TEST(Dnc, LeafSizeDoesNotChangeAnswers) {
  Scene s = gen_clustered(14, 21);
  DncOptions o1, o2;
  o1.leaf_size = 1;
  o2.leaf_size = 6;
  DncResult r1 = build_boundary_structure(s, o1);
  DncResult r2 = build_boundary_structure(s, o2);
  // B sets can differ slightly (different recursion adds different Middle
  // points), so compare on the container vertices present in both.
  for (const auto& a : s.container().vertices()) {
    for (const auto& b : s.container().vertices()) {
      EXPECT_EQ(r1.root.between(a, b), r2.root.between(a, b));
    }
  }
  EXPECT_GT(r1.stats.nodes, r2.stats.nodes);
}

TEST(Dnc, DeterministicAcrossSchedulerWidths) {
  // Sibling subtrees build as parallel tasks, but each child lands in its
  // slot and the conquer is deterministic, so the BoundaryStructure must be
  // bit-identical for every scheduler width (sequential, 2, hardware).
  size_t hw = std::max<size_t>(2, std::thread::hardware_concurrency());
  for (const Scene& s : {gen_grid(12, 5), gen_uniform(16, 9)}) {
    DncResult base = build_boundary_structure(s);  // num_threads = 0
    for (size_t threads : {size_t{2}, hw}) {
      DncOptions op;
      op.num_threads = threads;
      DncResult r = build_boundary_structure(s, op);
      ASSERT_EQ(r.root.points(), base.root.points()) << threads;
      EXPECT_EQ(r.root.matrix(), base.root.matrix()) << threads;
    }
  }
}

TEST(Dnc, SiblingSubtreesBuildInParallel) {
  // The §5 recursion forks separator children as scheduler tasks; with a
  // 4-wide scheduler on a big-enough scene, stolen subtrees must have run
  // on more than one thread (subtree builds are ms-scale while worker
  // wakeup is µs-scale, so this holds even on one hardware core).
  Scene s = gen_uniform(32, 11);
  DncOptions op;
  op.num_threads = 4;
  DncResult r = build_boundary_structure(s, op);
  EXPECT_GE(r.stats.workers_observed, 2u);
  // And the sequential build reports exactly one.
  DncResult rs = build_boundary_structure(s);
  EXPECT_EQ(rs.stats.workers_observed, 1u);
  EXPECT_EQ(r.root.matrix(), rs.root.matrix());
}

}  // namespace
}  // namespace rsp
