#pragma once
// Deterministic fault-injection transport for the router test battery
// (router_test.cpp, router_stress_test.cpp, fuzz_protocol_test.cpp).
//
// The router's transport seam is ShardChannel/ShardConnector
// (serve/router.h). This header provides an in-process implementation
// backed directly by an Engine — no sockets, no server threads — plus a
// fault layer that injects failures at exact, scripted points:
//
//   EngineShardChannel   answers LEN/PATH/BATCH payloads from an Engine,
//                        byte-compatible with a QueryServer response line.
//   FaultScript          a per-shard queue of faults; each exchange's
//                        send() consumes the next one, so "fail once then
//                        recover" vs "fail twice -> SHARD_DOWN" is the
//                        difference between one queued fault and two.
//   FaultChannel         wraps any ShardChannel and applies the consumed
//                        fault: kill before/after send, truncate the
//                        response (connection cut mid-line), corrupt it
//                        (deliver a chosen line instead), or hold it
//                        behind a Gate until the test releases it.
//   Gate                 a one-shot latch; holds let a test choose the
//                        order shard responses *become available* without
//                        a single sleep — release order is the only clock.
//
// Determinism contract: nothing in here sleeps or depends on thread
// timing. The only real-time waits are recv deadlines the router itself
// imposes (RouterOptions::shard_timeout), which the timeout tests bound
// explicitly.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "serve/protocol.h"
#include "serve/router.h"

namespace rsp::testutil {

// A per-process fixture directory name. ctest runs every gtest case as
// its own process, many in parallel — a fixed shared path would let one
// process rewrite a saved shard set while another mounts it. The
// steady-clock tick at first use keeps processes apart without any
// platform pid dependency.
inline std::string unique_fixture_dir(const std::string& base) {
  static const auto tick =
      std::chrono::steady_clock::now().time_since_epoch().count();
  return base + "_" + std::to_string(static_cast<unsigned long long>(tick));
}

// One-shot latch. open() is sticky; wait_for() returns true once open,
// false when the deadline passes first.
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  bool wait_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, timeout, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

enum class FaultKind {
  kNone = 0,
  kHoldResponse,      // deliver the real response only once `gate` opens;
                      //   a never-opened gate is a shard that is up but 10x
                      //   slow — the recv deadline expires first
  kTruncateResponse,  // connection cut mid-response: the response is
                      //   consumed and lost, recv fails, the channel dies
  kCorruptResponse,   // deliver `corrupt_with` instead of the real line
  kKillBeforeSend,    // connection dead before the request ships
  kKillAfterSend,     // request ships, connection dies before the response
};

struct Fault {
  FaultKind kind = FaultKind::kNone;
  Gate* gate = nullptr;      // kHoldResponse
  std::string corrupt_with;  // kCorruptResponse
};

// Per-shard fault queues plus reachability. Shared by every channel the
// connector hands out; internally locked (router sessions may run on many
// threads). Each FaultChannel::send consumes one fault, so queue position
// == exchange attempt: the router's retry (a fresh channel + resend)
// consumes the *next* queued fault.
class FaultScript {
 public:
  void push(size_t shard, Fault f) {
    std::lock_guard<std::mutex> lk(mu_);
    faults_[shard].push_back(std::move(f));
  }
  Fault next(size_t shard) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = faults_.find(shard);
    if (it == faults_.end() || it->second.empty()) return {};
    Fault f = std::move(it->second.front());
    it->second.pop_front();
    return f;
  }

  // An unreachable shard's connector yields nullptr (connect refused).
  void set_unreachable(size_t shard, bool down) {
    std::lock_guard<std::mutex> lk(mu_);
    if (down) {
      down_.insert(shard);
    } else {
      down_.erase(shard);
    }
  }
  bool unreachable(size_t shard) const {
    std::lock_guard<std::mutex> lk(mu_);
    return down_.count(shard) != 0;
  }

  // Connect attempts per shard — lets tests assert a request never touched
  // the transport (e.g. BAD_REQUEST answered locally).
  void note_connect(size_t shard) {
    std::lock_guard<std::mutex> lk(mu_);
    ++connects_[shard];
  }
  uint64_t connects(size_t shard) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = connects_.find(shard);
    return it == connects_.end() ? 0 : it->second;
  }
  uint64_t total_connects() const {
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t n = 0;
    for (const auto& [shard, c] : connects_) n += c;
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::map<size_t, std::deque<Fault>> faults_;
  std::set<size_t> down_;
  std::map<size_t, uint64_t> connects_;
};

// In-process shard server: answers one LEN/PATH/BATCH payload per send()
// from the engine, formatted with the same serve/protocol.h formatters a
// QueryServer session uses — so a router merge over these channels must be
// byte-identical to a direct single-engine transcript.
class EngineShardChannel : public ShardChannel {
 public:
  explicit EngineShardChannel(const Engine* engine) : engine_(engine) {}

  bool send(std::string_view data) override {
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < data.size()) {
      size_t nl = data.find('\n', start);
      if (nl == std::string_view::npos) nl = data.size();
      lines.emplace_back(data.substr(start, nl - start));
      start = nl + 1;
    }
    if (lines.empty()) return false;
    size_t consumed = 0;
    ParsedRequest pr = parse_request(lines[0], [&](std::string& l) {
      if (consumed + 1 >= lines.size()) return false;
      l = lines[++consumed];
      return true;
    });
    if (!pr.ok) {
      pending_.push_back(format_error("BAD_REQUEST", pr.error));
      return true;
    }
    pending_.push_back(answer(pr.req));
    return true;
  }

  bool recv_line(std::string& line, std::chrono::milliseconds) override {
    if (pending_.empty()) return false;  // over-read == EOF
    line = pending_.front();
    pending_.pop_front();
    return true;
  }

 private:
  std::string answer(const Request& req) const {
    switch (req.verb) {
      case Verb::kLen: {
        Result<Length> r = engine_->length(req.pairs[0].s, req.pairs[0].t);
        return r.ok() ? format_length(*r) : format_error(r.status());
      }
      case Verb::kPath: {
        Result<std::vector<Point>> r =
            engine_->path(req.pairs[0].s, req.pairs[0].t);
        return r.ok() ? format_path(*r) : format_error(r.status());
      }
      case Verb::kBatch: {
        Result<std::vector<Length>> r = engine_->lengths(req.pairs);
        return r.ok() ? format_batch(*r) : format_error(r.status());
      }
      default:
        return format_error("BAD_REQUEST", "verb not forwardable");
    }
  }

  const Engine* engine_;
  std::deque<std::string> pending_;
};

// Applies one scripted fault per exchange around any inner channel.
class FaultChannel : public ShardChannel {
 public:
  FaultChannel(std::unique_ptr<ShardChannel> inner, FaultScript* script,
               size_t shard)
      : inner_(std::move(inner)), script_(script), shard_(shard) {}

  bool send(std::string_view data) override {
    if (dead_) return false;
    cur_ = script_->next(shard_);
    if (cur_.kind == FaultKind::kKillBeforeSend) {
      dead_ = true;
      return false;
    }
    if (!inner_->send(data)) {
      dead_ = true;
      return false;
    }
    return true;
  }

  bool recv_line(std::string& line, std::chrono::milliseconds timeout) override {
    if (dead_) return false;
    const Fault f = std::exchange(cur_, Fault{});
    switch (f.kind) {
      case FaultKind::kKillAfterSend:
        dead_ = true;
        return false;
      case FaultKind::kTruncateResponse: {
        std::string lost;
        inner_->recv_line(lost, timeout);  // computed, never delivered
        dead_ = true;
        return false;
      }
      case FaultKind::kCorruptResponse: {
        std::string real;
        if (!inner_->recv_line(real, timeout)) {
          dead_ = true;
          return false;
        }
        line = f.corrupt_with;
        return true;
      }
      case FaultKind::kHoldResponse: {
        if (f.gate == nullptr || !f.gate->wait_for(timeout)) {
          dead_ = true;  // deadline expired: the shard was too slow
          return false;
        }
        if (!inner_->recv_line(line, timeout)) {
          dead_ = true;
          return false;
        }
        return true;
      }
      case FaultKind::kNone:
      case FaultKind::kKillBeforeSend: {  // consumed in send(); unreachable
        if (!inner_->recv_line(line, timeout)) {
          dead_ = true;
          return false;
        }
        return true;
      }
    }
    return false;
  }

 private:
  std::unique_ptr<ShardChannel> inner_;
  FaultScript* script_;
  size_t shard_;
  Fault cur_;
  bool dead_ = false;
};

// Connector wiring it together: every shard is the same engine (the union
// property routers rely on), every channel passes through `script`.
inline ShardConnector fault_connector(const Engine* engine,
                                      FaultScript* script) {
  return [engine, script](size_t shard) -> std::unique_ptr<ShardChannel> {
    script->note_connect(shard);
    if (script->unreachable(shard)) return nullptr;
    return std::make_unique<FaultChannel>(
        std::make_unique<EngineShardChannel>(engine), script, shard);
  };
}

// Fault-free in-process connector (clean-path and benchmark baseline).
inline ShardConnector engine_connector(const Engine* engine) {
  return [engine](size_t) -> std::unique_ptr<ShardChannel> {
    return std::make_unique<EngineShardChannel>(engine);
  };
}

// Per-shard-engine connector: shard i answers from engines[i] — the
// owned-rows fleet topology (MountMode::kOwnedRows), where each engine
// holds only its own rows and refuses the rest with NOT_OWNER
// (EngineShardChannel formats it via format_error, so the wire bytes match
// a real QueryServer). Ownership faults are built by *mis-wiring* this
// vector: a lying shard is an entry mounted with another shard's rows; a
// stale manifest is a Router given slabs that disagree with the mounts.
// Every channel still passes through `script`, so transport faults compose
// with ownership faults.
inline ShardConnector fleet_connector(std::vector<const Engine*> engines,
                                      FaultScript* script) {
  return [engines = std::move(engines),
          script](size_t shard) -> std::unique_ptr<ShardChannel> {
    script->note_connect(shard);
    if (script->unreachable(shard)) return nullptr;
    if (shard >= engines.size()) return nullptr;
    return std::make_unique<FaultChannel>(
        std::make_unique<EngineShardChannel>(engines[shard]), script, shard);
  };
}

}  // namespace rsp::testutil
