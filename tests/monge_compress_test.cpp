// Property tests for the Monge-compressed port matrices
// (monge/compressed.h) and their end-to-end integration: losslessness on
// arbitrary matrices, the Monge <=> negative-deltas characterization on
// the retained tree's ports, bit-identical queries between compressed
// and forced-dense backends, and deterministic v3 snapshot bytes.
//
// The encoding is *generalized* by design — the builder's
// monge_fallbacks counter proves a minority of retained reach matrices
// interleave past exact Monge (B(Q) rows wrap a closed boundary) — so
// the properties split: losslessness holds for every matrix, the
// deltas-are-nonpositive / few-breakpoints structure is asserted only
// where the theory promises it (virtual separator ports, synthetic
// Monge inputs).

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

#include "backend/boundary_tree.h"
#include "core/dnc_builder.h"
#include "io/gen.h"
#include "io/snapshot.h"
#include "monge/compressed.h"
#include "monge/monge.h"

namespace rsp {
namespace {

// Piecewise-linear Monge construction: a_i + b_j + c * max(0, i - j).
// The interaction term has one slope change per column, so the encoding
// spends O(1) breakpoints per column step and must beat dense storage.
Matrix piecewise_linear_monge(size_t rows, size_t cols, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Length> d(0, 1000);
  std::vector<Length> a(rows), b(cols);
  for (auto& x : a) x = d(rng);
  for (auto& x : b) x = d(rng);
  const Length c = 3 + static_cast<Length>(rng() % 5);
  Matrix m(rows, cols, 0);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j)
      m(i, j) = a[i] + b[j] +
                c * std::max<Length>(0, static_cast<Length>(i) -
                                            static_cast<Length>(j));
  return m;
}

void expect_exact(const Matrix& m, const PortMatrix& p) {
  ASSERT_EQ(p.rows(), m.rows());
  ASSERT_EQ(p.cols(), m.cols());
  const Matrix d = p.dense();
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j) {
      ASSERT_EQ(d(i, j), m(i, j)) << "dense() at (" << i << "," << j << ")";
      ASSERT_EQ(p.at(i, j), m(i, j)) << "at(" << i << "," << j << ")";
    }
  if (!p.empty()) {
    PortMatrix::ColumnScan scan(p);
    for (size_t j = 0; j < m.cols(); ++j) {
      if (j > 0) scan.advance();
      ASSERT_EQ(scan.column(), j);
      for (size_t i = 0; i < m.rows(); ++i)
        ASSERT_EQ(scan.data()[i], m(i, j)) << "scan (" << i << "," << j << ")";
    }
  }
}

TEST(PortMatrix, PiecewiseLinearMongeCompresses) {
  const Matrix m = piecewise_linear_monge(60, 45, 17);
  ASSERT_TRUE(is_monge(m));
  const PortMatrix p = PortMatrix::compress(m);
  EXPECT_TRUE(p.compressed());
  EXPECT_LT(p.byte_size(), p.dense_byte_size());
  expect_exact(m, p);
  // Monge <=> every column-difference step is non-increasing in i, i.e.
  // every breakpoint delta is negative.
  for (Length d : p.bp_delta()) EXPECT_LT(d, 0);
}

TEST(PortMatrix, ArbitraryMatrixIsLossless) {
  std::mt19937_64 rng(23);
  std::uniform_int_distribution<Length> d(-5000, 5000);
  for (int round = 0; round < 8; ++round) {
    const size_t rows = 1 + rng() % 24, cols = 1 + rng() % 24;
    Matrix m(rows, cols, 0);
    for (size_t i = 0; i < rows; ++i)
      for (size_t j = 0; j < cols; ++j) m(i, j) = d(rng);
    expect_exact(m, PortMatrix::compress(m));  // fallback or not: exact
  }
}

TEST(PortMatrix, InfEntriesRoundTrip) {
  // kInf marks unreachable pairs; it is an ordinary value to the encoder
  // (exact integer differences), not a special case.
  Matrix m = piecewise_linear_monge(20, 20, 5);
  m(0, 7) = kInf;
  m(13, 0) = kInf;
  m(19, 19) = kInf;
  expect_exact(m, PortMatrix::compress(m));
}

TEST(PortMatrix, DegenerateShapes) {
  EXPECT_TRUE(PortMatrix().empty());
  EXPECT_EQ(PortMatrix().byte_size(), 0u);
  for (auto [r, c] : {std::pair<size_t, size_t>{1, 1}, {1, 9}, {9, 1}}) {
    Matrix m(r, c, 0);
    for (size_t i = 0; i < r; ++i)
      for (size_t j = 0; j < c; ++j)
        m(i, j) = static_cast<Length>(3 * i + 5 * j);
    expect_exact(m, PortMatrix::compress(m));
  }
}

TEST(PortMatrix, FromPartsReassembles) {
  const Matrix m = piecewise_linear_monge(30, 30, 77);
  const PortMatrix p = PortMatrix::compress(m);
  ASSERT_TRUE(p.compressed());
  const PortMatrix q = PortMatrix::from_parts(
      p.rows(), p.cols(), p.row0(), p.col0(), p.bp_start(), p.bp_row(),
      p.bp_delta());
  EXPECT_TRUE(p == q);
  expect_exact(m, q);
}

TEST(PortMatrix, FromPartsRejectsMalformed) {
  const Matrix m = piecewise_linear_monge(10, 10, 3);
  const PortMatrix p = PortMatrix::compress(m);
  ASSERT_TRUE(p.compressed());
  // Zero delta (breakpoints must change the difference).
  {
    auto deltas = p.bp_delta();
    ASSERT_FALSE(deltas.empty());
    deltas[0] = 0;
    EXPECT_THROW(PortMatrix::from_parts(p.rows(), p.cols(), p.row0(),
                                        p.col0(), p.bp_start(), p.bp_row(),
                                        deltas),
                 std::logic_error);
  }
  // Breakpoint at row 0 (row 0 is implicit in row0/col0).
  {
    auto rows = p.bp_row();
    ASSERT_FALSE(rows.empty());
    rows[0] = 0;
    EXPECT_THROW(PortMatrix::from_parts(p.rows(), p.cols(), p.row0(),
                                        p.col0(), p.bp_start(), rows,
                                        p.bp_delta()),
                 std::logic_error);
  }
  // CSR index must start at 0 and be non-decreasing.
  {
    auto start = p.bp_start();
    ASSERT_FALSE(start.empty());
    start[0] = 1;
    EXPECT_THROW(PortMatrix::from_parts(p.rows(), p.cols(), p.row0(),
                                        p.col0(), start, p.bp_row(),
                                        p.bp_delta()),
                 std::logic_error);
  }
  // Shape mismatch.
  EXPECT_THROW(PortMatrix::from_parts(p.rows() + 1, p.cols(), p.row0(),
                                      p.col0(), p.bp_start(), p.bp_row(),
                                      p.bp_delta()),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Retained-tree properties, over every scene generator.
// ---------------------------------------------------------------------------

class RetainedPortsTest : public ::testing::TestWithParam<NamedGen> {};

TEST_P(RetainedPortsTest, PortsAreExactAndVirtualPortsAreMonge) {
  Scene scene = GetParam().fn(48, 29);
  const BoundaryTreeSP sp(scene);
  size_t ports_seen = 0, compressed_bytes = 0, dense_bytes = 0;
  for (const DncNode& node : sp.tree().nodes) {
    for (const DncPort& port : node.ports) {
      if (port.reach.empty()) continue;
      ++ports_seen;
      compressed_bytes += port.reach.byte_size();
      dense_bytes += port.reach.dense_byte_size();
      const Matrix d = port.reach.dense();
      // All three read paths agree (the expensive pairwise check is
      // cheap at this n; ColumnScan is the query-time path).
      PortMatrix::ColumnScan scan(port.reach);
      for (size_t j = 0; j < d.cols(); ++j) {
        if (j > 0) scan.advance();
        for (size_t i = 0; i < d.rows(); ++i) {
          ASSERT_EQ(scan.data()[i], d(i, j));
          ASSERT_EQ(port.reach.at(i, j), d(i, j));
        }
      }
      // Retained reach matrices are *near*-Monge at best: B(Q) rows wrap
      // a closed boundary (even for the virtual port), so exact Monge
      // holds for only a minority of ports. What must hold exactly is
      // the encoder's characterization: M is Monge iff every column
      // difference D_j is non-increasing in i, i.e. iff every breakpoint
      // delta is negative.
      if (port.reach.compressed()) {
        bool all_negative = true;
        for (Length delta : port.reach.bp_delta())
          all_negative = all_negative && delta < 0;
        EXPECT_EQ(is_monge(d), all_negative) << GetParam().name;
      }
    }
  }
  EXPECT_GT(ports_seen, 0u) << GetParam().name;
  // Compression never loses to dense across the whole tree: the
  // per-matrix fallback rule caps each port at its dense cost.
  EXPECT_LE(compressed_bytes, dense_bytes) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllGens, RetainedPortsTest,
                         ::testing::ValuesIn(kAllGens),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// Queries through compressed ports must be bit-identical to the same
// tree with every port forced dense — compression is a storage choice,
// never an answer choice.
TEST(PortMatrix, ForcedDenseBackendAnswersIdentically) {
  Scene scene = gen_uniform(96, 41);
  const BoundaryTreeSP compressed(scene);
  auto forced = std::make_shared<DncTree>(compressed.tree());
  for (DncNode& node : forced->nodes)
    for (DncPort& port : node.ports)
      port.reach = PortMatrix::from_dense(port.reach.dense());
  const BoundaryTreeSP dense(scene, forced);
  const std::vector<Point> pts = random_free_points(scene, 24, 13);
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    EXPECT_EQ(compressed.length(pts[i], pts[i + 1]),
              dense.length(pts[i], pts[i + 1]))
        << pts[i] << " -> " << pts[i + 1];
  }
}

TEST(PortMatrix, SnapshotV3RoundTripIsDeterministic) {
  Scene scene = gen_uniform(64, 7);
  const BoundaryTreeSP sp(scene);

  std::ostringstream os1, os2;
  ASSERT_TRUE(save_snapshot(os1, scene, sp.tree()).ok());
  ASSERT_TRUE(save_snapshot(os2, scene, sp.tree()).ok());
  const std::string bytes = os1.str();
  EXPECT_EQ(bytes, os2.str());  // writer is deterministic
  ASSERT_GT(bytes.size(), 12u);
  EXPECT_EQ(static_cast<uint32_t>(bytes[8]), kSnapshotFormatVersion);

  std::istringstream is(bytes);
  Result<SnapshotPayload> loaded = load_snapshot(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->tree != nullptr);
  ASSERT_EQ(loaded->tree->nodes.size(), sp.tree().nodes.size());
  for (size_t i = 0; i < sp.tree().nodes.size(); ++i) {
    const auto& a = sp.tree().nodes[i].ports;
    const auto& b = loaded->tree->nodes[i].ports;
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k)
      EXPECT_TRUE(a[k].reach == b[k].reach) << "node " << i << " port " << k;
  }
  // Loader reproduces the builder's representation exactly, so a re-save
  // reproduces the bytes.
  std::ostringstream os3;
  ASSERT_TRUE(save_snapshot(os3, loaded->scene, *loaded->tree).ok());
  EXPECT_EQ(bytes, os3.str());
}

// Scheduler width must not leak into the retained tree: the parallel
// leaf fan-out and conquer task pairs fold with order-independent min,
// and the compressor is deterministic, so a 4-worker build serializes
// to the same bytes as the sequential one. Under TSan this is also the
// designated race workload for the new parallel build paths.
TEST(PortMatrix, ParallelBuildSnapshotsBitIdentical) {
  Scene scene = gen_uniform(64, 7);
  const BoundaryTreeSP seq(scene, /*num_threads=*/0);
  const BoundaryTreeSP par(scene, /*num_threads=*/4);
  std::ostringstream os_seq, os_par;
  ASSERT_TRUE(save_snapshot(os_seq, scene, seq.tree()).ok());
  ASSERT_TRUE(save_snapshot(os_par, scene, par.tree()).ok());
  EXPECT_EQ(os_seq.str(), os_par.str());
}

// The headline memory claim, asserted conservatively at a size CI can
// afford: measured port_ratio at gen_sparse n=256 is ~10x (and grows
// with n — 21.9x at n=65536 in BENCH_build.json).
TEST(PortMatrix, CompressionRatioFloorOnSparseScene) {
  Scene scene = gen_sparse(256, 7);
  const BoundaryTreeSP sp(scene);
  const size_t compressed = sp.port_matrix_bytes();
  const size_t dense = sp.port_matrix_dense_bytes();
  ASSERT_GT(compressed, 0u);
  EXPECT_GE(dense, 3 * compressed)
      << "port compression ratio collapsed: " << dense << " / " << compressed;
}

}  // namespace
}  // namespace rsp
