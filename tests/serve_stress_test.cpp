// Multi-client serving stress (serve/server.h): 8+ concurrent TCP sessions
// pipeline mixed LEN/BATCH/PATH/STATS traffic at one QueryServer. Every
// session's transcript is byte-compared against the answers a direct
// Engine gives for that session's requests (STATS lines prefix-checked —
// their counters are globally racy by design), which pins the critical
// invariant of the reader pool: per-session response order is exact even
// though the shared dispatcher freely interleaves and coalesces across
// sessions. Aggregate telemetry must add up: requests == the sum of
// per-session sends, every pair dispatched, nothing shed on an unbounded
// queue — and an over-driven bounded server must shed visibly.
//
// This file is the designated TSan workload: the CI ThreadSanitizer job
// runs it explicitly (as well as via ctest) to race-check the
// acceptor/session/dispatcher/writer mesh.

#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "io/gen.h"
#include "loopback_test_util.h"  // defines RSP_TEST_SOCKETS on unix/apple
#include "serve/protocol.h"
#include "serve/server.h"

#ifdef RSP_TEST_SOCKETS

namespace rsp {
namespace {

using testutil::connect_loopback;
using testutil::recv_until_eof;
using testutil::send_all;

constexpr size_t kClients = 8;
constexpr int kRequestsPerClient = 24;

// One client's scripted session: `script` is sent as one pipelined burst;
// `want` holds one expected line per response, where kStatsMarker means
// "prefix-check a STATS line instead of byte-comparing".
struct ClientPlan {
  std::string script;
  std::vector<std::string> want;
  uint64_t requests = 0;  // protocol requests the server will count
  uint64_t pairs = 0;     // point pairs across LEN/BATCH/PATH
};

const char kStatsMarker[] = "\x01STATS";

ClientPlan plan_session(const Scene& scene, Engine& ref, uint64_t seed) {
  ClientPlan plan;
  auto pts = random_free_points(scene, 2 * kRequestsPerClient + 8, seed);
  std::ostringstream os;
  size_t next = 0;
  auto take = [&] { return pts[next++ % pts.size()]; };
  for (int i = 0; i < kRequestsPerClient; ++i) {
    switch ((seed + static_cast<uint64_t>(i)) % 4) {
      case 0: {
        Point a = take(), b = take();
        os << "LEN " << a.x << ',' << a.y << ' ' << b.x << ',' << b.y << '\n';
        plan.want.push_back(format_length(*ref.length(a, b)));
        ++plan.pairs;
        break;
      }
      case 1: {
        Point a = take(), b = take();
        os << "PATH " << a.x << ',' << a.y << ' ' << b.x << ',' << b.y << '\n';
        plan.want.push_back(format_path(*ref.path(a, b)));
        ++plan.pairs;
        break;
      }
      case 2: {
        const size_t k = 2 + seed % 3;
        os << "BATCH " << k << '\n';
        std::vector<Length> lens;
        for (size_t j = 0; j < k; ++j) {
          Point a = take(), b = take();
          os << a.x << ',' << a.y << ' ' << b.x << ',' << b.y << '\n';
          lens.push_back(*ref.length(a, b));
        }
        plan.want.push_back(format_batch(lens));
        plan.pairs += k;
        break;
      }
      default:
        os << "STATS\n";
        plan.want.push_back(kStatsMarker);
        break;
    }
    ++plan.requests;
  }
  os << "QUIT\n";
  plan.want.push_back("OK bye");
  plan.script = os.str();
  return plan;
}

TEST(ServeStressTest, EightConcurrentSessionsAnswerExactly) {
  Scene scene = gen_uniform(16, 71);
  Engine ref(Scene{scene}, {.backend = Backend::kAllPairsSeq});

  // A real coalescing window so cross-client batching actually happens
  // (the point of the reader pool), a parallel engine underneath.
  QueryServer srv(
      Engine(Scene{scene}, {.backend = Backend::kAuto, .num_threads = 4}),
      {.max_batch_pairs = 64, .coalesce_window_us = 300});

  std::promise<uint16_t> port_promise;
  std::future<uint16_t> port_future = port_promise.get_future();
  Status result = Status::Ok();
  std::thread server([&] {
    result = srv.serve_port(0, /*max_sessions=*/0,
                            [&](uint16_t p) { port_promise.set_value(p); });
  });
  const uint16_t port = port_future.get();
  ASSERT_NE(port, 0);

  std::vector<ClientPlan> plans;
  for (uint64_t c = 0; c < kClients; ++c) {
    plans.push_back(plan_session(scene, ref, 100 + c));
  }

  std::vector<std::string> transcripts(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int fd = connect_loopback(port);
      ASSERT_GE(fd, 0);
      ASSERT_TRUE(send_all(fd, plans[c].script));  // one pipelined burst
      transcripts[c] = recv_until_eof(fd);
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  srv.shutdown_port();
  server.join();
  ASSERT_TRUE(result.ok()) << result;

  // Per-session: exact response count, exact order, exact bytes.
  for (size_t c = 0; c < kClients; ++c) {
    std::vector<std::string> lines;
    std::istringstream split(transcripts[c]);
    std::string line;
    while (std::getline(split, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), plans[c].want.size()) << "client " << c;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (plans[c].want[i] == kStatsMarker) {
        EXPECT_EQ(lines[i].rfind("OK served=", 0), 0u)
            << "client " << c << " line " << i << ": " << lines[i];
      } else {
        EXPECT_EQ(lines[i], plans[c].want[i]) << "client " << c << " line "
                                              << i;
      }
    }
  }

  // Aggregate telemetry adds up across sessions.
  uint64_t want_requests = 0, want_pairs = 0;
  for (const auto& p : plans) {
    want_requests += p.requests;
    want_pairs += p.pairs;
  }
  ServeStats st = srv.stats();
  EXPECT_EQ(st.requests, want_requests);  // requests == sum of sends
  EXPECT_EQ(st.queries, want_pairs);
  EXPECT_EQ(st.dispatched_pairs, want_pairs);
  EXPECT_EQ(st.errors, 0u);
  EXPECT_EQ(st.shed, 0u);  // unbounded queue: shed >= 0 and here exactly 0
  EXPECT_GE(st.dispatches, 1u);
  EXPECT_LE(st.dispatches, st.requests);
  // Engine-side view agrees.
  EngineMetrics m = srv.engine().metrics();
  EXPECT_EQ(m.batch_queries + m.single_queries, want_pairs);
}

TEST(ServeStressTest, OverdrivenBoundedServerShedsVisibly) {
  Scene scene = gen_uniform(12, 73);
  auto pts = random_free_points(scene, 2, 7);
  // Tiny queue + long window: concurrent pipelined floods must overflow
  // admission while the dispatcher holds the head for the window.
  QueryServer srv(Engine(Scene{scene}, {.backend = Backend::kAllPairsSeq}),
                  {.coalesce_window_us = 50000, .max_queue_depth = 2});

  std::promise<uint16_t> port_promise;
  std::future<uint16_t> port_future = port_promise.get_future();
  Status result = Status::Ok();
  std::thread server([&] {
    result = srv.serve_port(0, 0,
                            [&](uint16_t p) { port_promise.set_value(p); });
  });
  const uint16_t port = port_future.get();

  constexpr size_t kFloodClients = 4;
  constexpr int kFloodRequests = 32;
  std::ostringstream flood;
  for (int i = 0; i < kFloodRequests; ++i) {
    flood << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
          << pts[1].y << '\n';
  }
  flood << "QUIT\n";
  const std::string script = flood.str();

  std::vector<std::string> transcripts(kFloodClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kFloodClients; ++c) {
    clients.emplace_back([&, c] {
      int fd = connect_loopback(port);
      ASSERT_GE(fd, 0);
      ASSERT_TRUE(send_all(fd, script));
      transcripts[c] = recv_until_eof(fd);
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  srv.shutdown_port();
  server.join();
  ASSERT_TRUE(result.ok()) << result;

  size_t shed_lines = 0;
  for (const auto& t : transcripts) {
    std::istringstream split(t);
    std::string line;
    while (std::getline(split, line)) {
      if (line.rfind("ERR LOAD_SHED", 0) == 0) ++shed_lines;
    }
  }
  ServeStats st = srv.stats();
  EXPECT_GE(shed_lines, 1u) << "over-driven herd never observed LOAD_SHED";
  EXPECT_EQ(st.shed, shed_lines);  // counter == responses on the wire
  EXPECT_EQ(st.requests, kFloodClients * static_cast<uint64_t>(kFloodRequests));
  EXPECT_NE(srv.stats_line().find(" shed="), std::string::npos);
  EXPECT_NE(srv.stats_json().find("\"shed\": "), std::string::npos);
}

// A client that floods requests and vanishes without reading a byte must
// cost the server exactly its own session: the writer's flush fails with
// EPIPE (MSG_NOSIGNAL — never a process-killing SIGPIPE) and every other
// session keeps answering.
TEST(ServeStressTest, ClientDisconnectingMidResponseOnlyKillsItsSession) {
  Scene scene = gen_uniform(12, 83);
  Engine ref(Scene{scene}, {.backend = Backend::kAllPairsSeq});
  auto pts = random_free_points(scene, 2, 31);
  QueryServer srv(Engine(Scene{scene}, {.backend = Backend::kAllPairsSeq}));

  std::promise<uint16_t> port_promise;
  std::future<uint16_t> port_future = port_promise.get_future();
  Status result = Status::Ok();
  std::thread server([&] {
    result = srv.serve_port(0, 0,
                            [&](uint16_t p) { port_promise.set_value(p); });
  });
  const uint16_t port = port_future.get();

  std::ostringstream req;
  req << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
      << pts[1].y << "\nQUIT\n";
  const std::string want =
      format_length(*ref.length(pts[0], pts[1])) + "\nOK bye\n";

  for (int round = 0; round < 3; ++round) {
    // The rude client: a big pipelined flood, then hang up unread. The
    // response volume exceeds any socket buffer, so the session writer
    // provably hits the closed peer.
    int rude = connect_loopback(port);
    ASSERT_GE(rude, 0);
    std::ostringstream flood;
    for (int i = 0; i < 2000; ++i) {
      flood << "PATH " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x
            << ',' << pts[1].y << "\n";
    }
    ASSERT_TRUE(send_all(rude, flood.str()));
    ::close(rude);

    // A polite client right behind it is served exactly.
    int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(send_all(fd, req.str()));
    EXPECT_EQ(recv_until_eof(fd), want) << "round " << round;
    ::close(fd);
  }
  srv.shutdown_port();
  server.join();
  EXPECT_TRUE(result.ok()) << result;
}

// A peer that floods requests and then stops *reading* (socket open, zero
// recv) wedges its session writer in send() once the socket buffers fill.
// shutdown_port must still complete: the drain's SHUT_RD wakes the reader,
// and after the grace period the SHUT_RDWR escalation breaks the blocked
// send — one stalled client cannot hang shutdown for everyone. If the
// escalation regresses, this test hangs and ctest's timeout fails it.
TEST(ServeStressTest, ShutdownCannotBeHungByAStalledReader) {
  Scene scene = gen_uniform(12, 89);
  auto pts = random_free_points(scene, 2, 37);
  QueryServer srv(Engine(Scene{scene}, {.backend = Backend::kAllPairsSeq}));

  std::promise<uint16_t> port_promise;
  std::future<uint16_t> port_future = port_promise.get_future();
  Status result = Status::Ok();
  std::thread server([&] {
    result = srv.serve_port(0, 0,
                            [&](uint16_t p) { port_promise.set_value(p); });
  });
  const uint16_t port = port_future.get();

  // A tiny client-side receive buffer shrinks the advertised window, so
  // the response flood reliably out-sizes what the kernel will buffer.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  std::ostringstream flood;  // ~8000 responses, never read by the client
  for (int i = 0; i < 8000; ++i) {
    flood << "PATH " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
          << pts[1].y << "\n";
  }
  ASSERT_TRUE(send_all(fd, flood.str()));
  // Give the writer time to wedge against the full socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  srv.shutdown_port();
  server.join();  // must return despite the wedged writer (1s grace + RDWR)
  EXPECT_TRUE(result.ok()) << result;
  ::close(fd);
}

// The concurrency cap: with max_sessions=1 a second client must queue in
// the TCP backlog until the first session ends — never be refused, never
// run concurrently. (The stress above runs uncapped; this pins the knob.)
TEST(ServeStressTest, MaxSessionsCapsConcurrencyNotTotal) {
  Scene scene = gen_uniform(12, 79);
  Engine ref(Scene{scene}, {.backend = Backend::kAllPairsSeq});
  auto pts = random_free_points(scene, 2, 9);
  QueryServer srv(Engine(Scene{scene}, {.backend = Backend::kAllPairsSeq}));

  std::promise<uint16_t> port_promise;
  std::future<uint16_t> port_future = port_promise.get_future();
  Status result = Status::Ok();
  std::thread server([&] {
    result = srv.serve_port(0, /*max_sessions=*/1,
                            [&](uint16_t p) { port_promise.set_value(p); });
  });
  const uint16_t port = port_future.get();

  std::ostringstream req;
  req << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
      << pts[1].y << "\nQUIT\n";
  const std::string want =
      format_length(*ref.length(pts[0], pts[1])) + "\nOK bye\n";

  // Three sequential-ish clients through a width-1 pool: all answered.
  for (int round = 0; round < 3; ++round) {
    int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(send_all(fd, req.str()));
    EXPECT_EQ(recv_until_eof(fd), want) << "round " << round;
    ::close(fd);
  }
  srv.shutdown_port();
  server.join();
  EXPECT_TRUE(result.ok()) << result;
  EXPECT_EQ(srv.stats().queries, 3u);
}

}  // namespace
}  // namespace rsp

#endif  // RSP_TEST_SOCKETS
