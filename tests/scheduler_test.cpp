// Tests for the work-stealing scheduler itself: nested fork-join deeper
// than the pool is wide, exception propagation out of nested tasks,
// oversubscription, reentrancy of parallel_for, multi-worker participation,
// and sharing one scheduler across external user threads. Correctness of
// the algorithms running on top is covered by the builder/dnc/engine
// suites; determinism of the D&C build across scheduler widths lives in
// dnc_test.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "pram/parallel.h"
#include "pram/scheduler.h"

namespace rsp {
namespace {

// Recursive fork-join tree sum: sum of [lo, hi) by splitting in two tasks
// per level until singletons. Depth log2(n) with two live joins per level —
// far more simultaneous joins than workers, so this deadlocks unless
// waiting threads help execute pending tasks.
long long tree_sum(Scheduler& sched, const std::vector<int>& v, size_t lo,
                   size_t hi) {
  if (hi - lo == 1) return v[lo];
  size_t mid = lo + (hi - lo) / 2;
  long long left = 0, right = 0;
  TaskGroup g(sched);
  g.run([&] { left = tree_sum(sched, v, lo, mid); });
  right = tree_sum(sched, v, mid, hi);
  g.wait();
  return left + right;
}

TEST(Scheduler, NestedForkJoinDeeperThanPoolWidth) {
  Scheduler sched(2);  // 1 worker + caller; recursion depth will be ~12
  std::vector<int> v(4096);
  long long expect = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<int>(i % 97) - 48;
    expect += v[i];
  }
  EXPECT_EQ(tree_sum(sched, v, 0, v.size()), expect);
}

TEST(Scheduler, ExceptionPropagatesFromNestedTasks) {
  Scheduler sched(3);
  auto nested = [&] {
    TaskGroup outer(sched);
    outer.run([&] {
      TaskGroup inner(sched);
      inner.run([] { throw std::runtime_error("inner boom"); });
      inner.wait();  // rethrows here, inside the outer task...
    });
    outer.wait();    // ...and surfaces from the outer join.
  };
  EXPECT_THROW(nested(), std::runtime_error);
  // Scheduler remains usable afterwards.
  std::atomic<int> count{0};
  sched.run(32, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(Scheduler, OversubscriptionRunsEveryTaskExactlyOnce) {
  Scheduler sched(2);
  constexpr size_t kTasks = 20000;  // far more tasks than workers
  std::vector<std::atomic<uint8_t>> hits(kTasks);
  TaskGroup g(sched);
  for (size_t i = 0; i < kTasks; ++i) {
    g.run([&hits, i] { hits[i].fetch_add(1); });
  }
  g.wait();
  for (size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "task " << i;
  }
}

TEST(Scheduler, ParallelForNestsInsideParallelFor) {
  Scheduler sched(4);
  constexpr size_t kRows = 64, kCols = 512;
  std::vector<int> grid(kRows * kCols, 0);
  parallel_for(sched, 0, kRows, [&](size_t r) {
    parallel_for(sched, 0, kCols, [&](size_t c) {
      grid[r * kCols + c] = static_cast<int>(r * kCols + c);
    }, /*grain=*/16);
  }, /*grain=*/1);
  for (size_t i = 0; i < grid.size(); ++i) {
    ASSERT_EQ(grid[i], static_cast<int>(i));
  }
}

TEST(Scheduler, MultipleWorkersParticipate) {
  // Tasks that genuinely block (sleep) force distribution across threads:
  // the caller can only run one at a time, so sleeping workers must wake
  // and steal the rest — even on a single hardware core.
  Scheduler sched(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  sched.run(8, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::lock_guard<std::mutex> lk(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(Scheduler, SharedAcrossExternalThreads) {
  // Several user threads drive fan-outs on one scheduler concurrently (the
  // Engine's serving pattern). Each fan-out must see exactly its own
  // updates; the old ThreadPool forbade this without external locking.
  Scheduler sched(4);
  constexpr int kUsers = 4;
  constexpr size_t kN = 2000;
  std::vector<std::vector<int>> results(kUsers, std::vector<int>(kN, -1));
  std::vector<std::thread> users;
  users.reserve(kUsers);
  for (int u = 0; u < kUsers; ++u) {
    users.emplace_back([&, u] {
      parallel_for(sched, 0, kN, [&, u](size_t i) {
        results[u][i] = static_cast<int>(i) + u;
      }, /*grain=*/8);
    });
  }
  for (auto& t : users) t.join();
  for (int u = 0; u < kUsers; ++u) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(results[u][i], static_cast<int>(i) + u) << "user " << u;
    }
  }
}

TEST(Scheduler, TaskGroupReusableAfterWait) {
  Scheduler sched(2);
  TaskGroup g(sched);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) g.run([&] { count.fetch_add(1); });
    g.wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(Scheduler, DestructorJoinsUnwaitedGroup) {
  Scheduler sched(2);
  std::atomic<int> count{0};
  {
    TaskGroup g(sched);
    for (int i = 0; i < 50; ++i) g.run([&] { count.fetch_add(1); });
    // No wait(): the destructor must join before the captures go away.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(Scheduler, HelpOnceReportsIdle) {
  Scheduler sched(2);
  EXPECT_FALSE(sched.help_once());  // nothing submitted
}

// Re-reads sched.stats() until `pred` accepts it or ~2 s elapses, then
// returns the last snapshot. The counters are relaxed per-worker atomics
// aggregated on read; under heavy machine load a worker that just finished
// its task may not have published its counter bump by the time run()
// unblocks the submitter, so a one-shot read can come up short. The totals
// are monotone — polling until they reach the expected floor is exact, not
// a tolerance.
template <typename Pred>
SchedulerStats settled_stats(Scheduler& sched, Pred pred) {
  SchedulerStats st = sched.stats();
  for (int i = 0; i < 200 && !pred(st); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    st = sched.stats();
  }
  return st;
}

TEST(Scheduler, StatsCountExecutionAndInjection) {
  // External (non-worker) submissions go through the injection queue, and
  // every forked task is executed exactly once — the queue instrumentation
  // must agree (threshold + retry: see settled_stats).
  Scheduler sched(4);
  std::atomic<int> count{0};
  sched.run(100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
  SchedulerStats st = settled_stats(sched, [](const SchedulerStats& s) {
    return s.tasks_executed >= 100 && s.injected >= 100;
  });
  EXPECT_GE(st.tasks_executed, 100u);
  EXPECT_GE(st.injected, 100u);  // this thread is not a pool worker
  EXPECT_LE(st.steals, st.tasks_executed);
}

TEST(Scheduler, StatsOnInlineSchedulerSeeNoQueues) {
  // Width 1: no workers, forks execute inline — nothing is ever injected
  // or stolen, but execution is still counted. Inline execution happens on
  // this very thread, yet the counter store is still relaxed, so give it
  // the same settle treatment as the pooled test.
  Scheduler sched(1);
  TaskGroup g(sched);
  for (int i = 0; i < 5; ++i) g.run([] {});
  g.wait();
  SchedulerStats st = settled_stats(
      sched, [](const SchedulerStats& s) { return s.tasks_executed >= 5; });
  EXPECT_GE(st.tasks_executed, 5u);
  EXPECT_EQ(st.injected, 0u);
  EXPECT_EQ(st.steals, 0u);
}

}  // namespace
}  // namespace rsp
