// Tests for SMAWK row minima and Monge (min,+) products (paper §2,
// Lemmas 1, 3-5).

#include <gtest/gtest.h>

#include <random>

#include "monge/monge.h"
#include "monge/smawk.h"
#include "pram/scheduler.h"

namespace rsp {
namespace {

// Random Monge matrix: M(i,j) = f(i) + g(j) + c * (i - j)^2-style convex
// interaction — here via cumulative nonnegative "density" construction:
// start from an arbitrary matrix row/col borders and enforce the Monge
// condition by prefix sums of a nonnegative density.
Matrix random_monge(size_t rows, size_t cols, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Length> d(0, 20);
  // density[i][j] >= 0; M(i,j) = -sum_{i'<=i, j'>=j} density — a classic
  // construction whose adjacent 2x2 sums satisfy Monge with equality iff
  // density is 0. Add separable terms to vary magnitudes.
  std::vector<std::vector<Length>> dens(rows, std::vector<Length>(cols));
  for (auto& row : dens)
    for (auto& x : row) x = d(rng);
  Matrix m(rows, cols, 0);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = cols; j-- > 0;) {
      Length acc = dens[i][j];
      if (i > 0) acc += m(i - 1, j);
      if (j + 1 < cols) acc += m(i, j + 1);
      if (i > 0 && j + 1 < cols) acc -= m(i - 1, j + 1);
      m(i, j) = acc;
    }
  }
  // The prefix-in-i / suffix-in-j construction is Monge (the column
  // partial sums grow with i). Separable shifts preserve Monge and vary
  // the magnitudes.
  std::uniform_int_distribution<Length> sep(0, 50);
  std::vector<Length> fr(rows), gc(cols);
  for (auto& x : fr) x = sep(rng);
  for (auto& x : gc) x = sep(rng);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) m(i, j) += fr[i] + gc[j];
  return m;
}

TEST(IsMonge, DetectsViolations) {
  Matrix m(2, 2, 0);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 2;
  m(1, 1) = 2;  // 1+2 <= 2+2 ok
  EXPECT_TRUE(is_monge(m));
  m(1, 1) = 5;  // 1+5 > 2+2
  EXPECT_FALSE(is_monge(m));
}

TEST(IsMonge, RandomConstructionIsMonge) {
  for (uint64_t s = 0; s < 20; ++s) {
    Matrix m = random_monge(5 + s % 7, 4 + s % 5, s);
    EXPECT_TRUE(is_monge(m)) << "seed " << s;
  }
}

TEST(Smawk, RowMinimaMatchBruteForce) {
  std::mt19937_64 rng(11);
  for (int it = 0; it < 40; ++it) {
    size_t rows = 1 + rng() % 40, cols = 1 + rng() % 40;
    Matrix m = random_monge(rows, cols, rng());
    auto arg = smawk(rows, cols,
                     [&](size_t i, size_t j) { return m(i, j); });
    for (size_t i = 0; i < rows; ++i) {
      Length best = kInf;
      size_t bj = 0;
      for (size_t j = 0; j < cols; ++j) {
        if (m(i, j) < best) {
          best = m(i, j);
          bj = j;
        }
      }
      EXPECT_EQ(m(i, arg[i]), best);
      EXPECT_EQ(arg[i], bj) << "leftmost minimum expected";
    }
  }
}

TEST(MinplusNaive, IdentityAndSmallCase) {
  // Identity in (min,+): 0 on diagonal, +inf off.
  Matrix id(3, 3, kInf);
  for (size_t i = 0; i < 3; ++i) id(i, i) = 0;
  Matrix a(3, 3, 0);
  Length vals[3][3] = {{1, 5, 2}, {7, 0, 3}, {4, 9, 6}};
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 3; ++j) a(i, j) = vals[i][j];
  EXPECT_EQ(minplus_naive(a, id), a);
  EXPECT_EQ(minplus_naive(id, a), a);
}

TEST(MinplusMonge, MatchesNaiveOnMongeInputs) {
  std::mt19937_64 rng(13);
  for (int it = 0; it < 30; ++it) {
    size_t a = 1 + rng() % 30, z = 1 + rng() % 30, b = 1 + rng() % 30;
    Matrix m1 = random_monge(a, z, rng());
    Matrix m2 = random_monge(z, b, rng());
    Matrix expect = minplus_naive(m1, m2);
    Matrix got = minplus_monge(m1, m2);
    EXPECT_EQ(got, expect);
    EXPECT_TRUE(is_monge(got)) << "product of Monge matrices must be Monge";
  }
}

TEST(MinplusMonge, ParallelMatchesSequential) {
  Scheduler sched(4);
  std::mt19937_64 rng(17);
  for (int it = 0; it < 10; ++it) {
    size_t a = 1 + rng() % 60, z = 1 + rng() % 60, b = 1 + rng() % 60;
    Matrix m1 = random_monge(a, z, rng());
    Matrix m2 = random_monge(z, b, rng());
    EXPECT_EQ(minplus_monge(sched, m1, m2), minplus_monge(m1, m2));
  }
}

TEST(MinplusMonge, HandlesInfPadding) {
  // Lemma 4: padding with +inf rows/cols preserves the product.
  std::mt19937_64 rng(19);
  Matrix m1 = random_monge(6, 5, rng());
  Matrix m2 = random_monge(5, 7, rng());
  Matrix p1(8, 5, kInf), p2(5, 9, kInf);
  for (size_t i = 0; i < 6; ++i)
    for (size_t j = 0; j < 5; ++j) p1(i, j) = m1(i, j);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 7; ++j) p2(i, j) = m2(i, j);
  Matrix expect = minplus_naive(p1, p2);
  Matrix got = minplus_monge(p1, p2);
  EXPECT_EQ(got, expect);
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3, 0);
  m(0, 0) = 1;
  m(0, 2) = 5;
  m(1, 1) = 7;
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 0), 5);
  EXPECT_EQ(t(1, 1), 7);
}

}  // namespace
}  // namespace rsp
