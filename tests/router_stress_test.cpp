// Router under concurrency (serve/router.h): many client sessions at
// once, with and without a shard dying mid-stress. Per-session channel
// sets mean sessions share only the locked per-shard health stats, so
// every surviving session's transcript must still be byte-identical to
// the single-engine oracle — and once a shard goes down, every line is
// either the exact oracle line or a SHARD_DOWN error, never a torn or
// cross-session response. This is the TSan target for the fleet layer
// (CI runs it under -fsanitize=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "fault_injection_util.h"
#include "io/gen.h"
#include "io/manifest.h"
#include "loopback_test_util.h"  // defines RSP_TEST_SOCKETS on unix/apple
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"

namespace rsp {
namespace {

using testutil::FaultScript;

struct Fleet {
  std::string man_path;
  ShardManifest man;
  Engine engine;
};

Fleet& fleet() {
  static Fleet* f = [] {
    Scene s = gen_uniform(12, 19);
    Engine eng(Scene{s}, {.backend = Backend::kAllPairsSeq});
    std::string dir = testutil::unique_fixture_dir(::testing::TempDir() +
                                                   "/rsp_router_stress");
    std::filesystem::create_directories(dir);
    std::string path = dir + "/fleet.man";
    Status st = eng.save(path, {.shards = 3});
    RSP_CHECK_MSG(st.ok(), "fixture sharded save: " + st.to_string());
    Result<ShardManifest> man = load_manifest(path);
    RSP_CHECK_MSG(man.ok(), "fixture manifest: " + man.status().to_string());
    return new Fleet{path, std::move(*man), std::move(eng)};
  }();
  return *f;
}

// Session script `c`: a per-client mix of LEN and BATCH requests, sources
// spread over the whole container so every shard is exercised.
std::string client_script(size_t c, size_t requests) {
  auto pts = random_free_points(fleet().engine.scene(), 2 * requests + 8,
                                100 + c);
  std::ostringstream os;
  for (size_t i = 0; i < requests; ++i) {
    const Point& a = pts[2 * i];
    const Point& b = pts[2 * i + 1];
    if (i % 5 == 4) {
      os << "BATCH 2\n"
         << a.x << ',' << a.y << ' ' << b.x << ',' << b.y << '\n'
         << b.x << ',' << b.y << ' ' << a.x << ',' << a.y << '\n';
    } else {
      os << "LEN " << a.x << ',' << a.y << ' ' << b.x << ',' << b.y << '\n';
    }
  }
  os << "QUIT\n";
  return os.str();
}

// The oracle transcript of a script, computed once per script on a
// QueryServer mounted from the same manifest.
std::string oracle_transcript(const std::string& script) {
  Result<Engine> eng = Engine::open(fleet().man_path, {});
  RSP_CHECK_MSG(eng.ok(), "oracle mount: " + eng.status().to_string());
  QueryServer srv(std::move(*eng), {.coalesce_window_us = 0});
  std::istringstream in(script);
  std::ostringstream out;
  srv.serve(in, out);
  return out.str();
}

TEST(RouterStressTest, ConcurrentSessionsAreByteExactAndIsolated) {
  auto& f = fleet();
  constexpr size_t kClients = 8;
  constexpr size_t kRequests = 40;
  Router router(f.man, testutil::engine_connector(&f.engine));

  std::vector<std::string> scripts, expected;
  for (size_t c = 0; c < kClients; ++c) {
    scripts.push_back(client_script(c, kRequests));
    expected.push_back(oracle_transcript(scripts.back()));
  }

  std::vector<std::string> got(kClients);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::istringstream in(scripts[c]);
      std::ostringstream out;
      router.serve(in, out);
      got[c] = out.str();
    });
  }
  for (auto& t : threads) t.join();

  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], expected[c]) << "client " << c << " transcript diverged";
  }
  RouterStats s = router.stats();
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.shard_down, 0u);
  // QUIT's "OK bye" is a counted response line too.
  EXPECT_EQ(s.requests, kClients * (kRequests + 1));
}

TEST(RouterStressTest, MidStressShardKillDegradesOnlyAffectedLines) {
  auto& f = fleet();
  constexpr size_t kClients = 6;
  constexpr size_t kRequests = 60;
  FaultScript faults;
  Router router(f.man, testutil::fault_connector(&f.engine, &faults),
                {.shard_retries = 0});

  std::vector<std::string> scripts, expected;
  for (size_t c = 0; c < kClients; ++c) {
    scripts.push_back(client_script(c, kRequests));
    expected.push_back(oracle_transcript(scripts.back()));
  }

  // Half the clients start; shard 1 dies; the rest start. No timing
  // dependence: whether an individual exchange lands before or after the
  // kill, its response must be the oracle line or SHARD_DOWN.
  std::vector<std::string> got(kClients);
  auto run_client = [&](size_t c) {
    std::istringstream in(scripts[c]);
    std::ostringstream out;
    router.serve(in, out);
    got[c] = out.str();
  };
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients / 2; ++c) threads.emplace_back(run_client, c);
  faults.set_unreachable(1, true);
  for (size_t c = kClients / 2; c < kClients; ++c) {
    threads.emplace_back(run_client, c);
  }
  for (auto& t : threads) t.join();

  size_t down_lines = 0;
  for (size_t c = 0; c < kClients; ++c) {
    std::istringstream gi(got[c]), ei(expected[c]);
    std::string gl, el;
    size_t lineno = 0;
    while (std::getline(ei, el)) {
      ASSERT_TRUE(std::getline(gi, gl))
          << "client " << c << " transcript short at line " << lineno;
      if (gl != el) {
        EXPECT_EQ(gl.rfind("ERR SHARD_DOWN shard 1 ", 0), 0u)
            << "client " << c << " line " << lineno
            << " is neither the oracle line nor SHARD_DOWN: " << gl;
        ++down_lines;
      }
      ++lineno;
    }
    EXPECT_FALSE(std::getline(gi, gl))
        << "client " << c << " transcript has extra lines";
  }
  // The kill landed before at least the late half started: some lines
  // must actually have degraded (the assertion above is not vacuous).
  EXPECT_GT(down_lines, 0u);
  RouterStats s = router.stats();
  EXPECT_EQ(s.shard_down, down_lines);
  EXPECT_GE(s.shards[1].failures, down_lines);
}

// The NOT_OWNER re-route path under concurrency: an owned-rows fleet whose
// engine wiring is rotated against the manifest, so a large fraction of
// exchanges refuse and re-route through the candidate walk — while many
// sessions hammer the shared misroute counters and per-shard health stats.
// Transcripts must stay byte-exact; this is the TSan coverage for the
// ownership-fault machinery.
TEST(RouterStressTest, ConcurrentRerouteSessionsAreByteExact) {
  auto& f = fleet();
  constexpr size_t kClients = 6;
  constexpr size_t kRequests = 30;
  std::vector<Engine> owned;
  for (size_t i = 0; i < f.man.shards.size(); ++i) {
    Result<Engine> sh = Engine::open(
        f.man_path, {.mount = MountMode::kOwnedRows, .shard = i});
    ASSERT_TRUE(sh.ok()) << "shard " << i << ": " << sh.status();
    owned.push_back(std::move(*sh));
  }
  // Rotate: the manifest's shard i is actually serving shard (i+1)'s rows.
  std::vector<const Engine*> rotated;
  for (size_t i = 0; i < owned.size(); ++i) {
    rotated.push_back(&owned[(i + 1) % owned.size()]);
  }
  FaultScript faults;
  Router router(f.man, testutil::fleet_connector(rotated, &faults));

  std::vector<std::string> scripts, expected;
  for (size_t c = 0; c < kClients; ++c) {
    scripts.push_back(client_script(200 + c, kRequests));
    expected.push_back(oracle_transcript(scripts.back()));
  }
  std::vector<std::string> got(kClients);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::istringstream in(scripts[c]);
      std::ostringstream out;
      router.serve(in, out);
      got[c] = out.str();
    });
  }
  for (auto& t : threads) t.join();

  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], expected[c])
        << "client " << c << " transcript diverged across re-routes";
  }
  RouterStats s = router.stats();
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.shard_down, 0u);
  uint64_t misroutes = 0;
  for (const auto& sh : s.shards) misroutes += sh.misroutes;
  EXPECT_GT(misroutes, 0u) << "rotated fleet never exercised a re-route";
}

#ifdef RSP_TEST_SOCKETS

// The same property over real sockets: concurrent TCP clients against the
// router's serve_port, each byte-compared to the oracle.
TEST(RouterStressTest, TcpClientsConcurrentlyMatchOracle) {
  auto& f = fleet();
  constexpr size_t kClients = 4;
  constexpr size_t kRequests = 24;
  Result<Engine> shard_eng = Engine::open(f.man_path, {});
  ASSERT_TRUE(shard_eng.ok());
  QueryServer shard(std::move(*shard_eng));
  std::promise<uint16_t> shard_ready;
  auto shard_port_fut = shard_ready.get_future();
  std::thread shard_th([&] {
    shard.serve_port(0, 0, [&](uint16_t p) { shard_ready.set_value(p); });
  });
  const uint16_t shard_port = shard_port_fut.get();

  Router router(f.man, tcp_connector({{"127.0.0.1", shard_port},
                                      {"127.0.0.1", shard_port},
                                      {"127.0.0.1", shard_port}}),
                {.shard_timeout = std::chrono::milliseconds(10000)});
  std::promise<uint16_t> ready;
  auto port_fut = ready.get_future();
  std::thread router_th(
      [&] { router.serve_port(0, [&](uint16_t p) { ready.set_value(p); }); });
  const uint16_t port = port_fut.get();

  std::vector<std::string> scripts, expected, got(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    scripts.push_back(client_script(50 + c, kRequests));
    expected.push_back(oracle_transcript(scripts.back()));
  }
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int fd = testutil::connect_loopback(port);
      ASSERT_GE(fd, 0);
      ASSERT_TRUE(testutil::send_all(fd, scripts[c]));
      got[c] = testutil::recv_until_eof(fd);
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], expected[c]) << "TCP client " << c;
  }

  router.shutdown_port();
  router_th.join();
  shard.shutdown_port();
  shard_th.join();
}

#endif  // RSP_TEST_SOCKETS

}  // namespace
}  // namespace rsp
