// Unit and property tests for the geometry substrate: points, rects,
// segments, staircases (paper §2, Fig. 1), envelopes (Fig. 2), polygons.

#include <gtest/gtest.h>

#include <random>

#include "geom/envelope.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/rect.h"
#include "geom/segment.h"
#include "geom/staircase.h"

namespace rsp {
namespace {

TEST(Point, Dist1IsL1Metric) {
  EXPECT_EQ(dist1({0, 0}, {3, 4}), 7);
  EXPECT_EQ(dist1({-2, 5}, {-2, 5}), 0);
  EXPECT_EQ(dist1({-3, -4}, {3, 4}), 14);
  // Symmetry + triangle inequality on random triples.
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<Coord> d(-1000, 1000);
  for (int i = 0; i < 200; ++i) {
    Point a{d(rng), d(rng)}, b{d(rng), d(rng)}, c{d(rng), d(rng)};
    EXPECT_EQ(dist1(a, b), dist1(b, a));
    EXPECT_LE(dist1(a, c), dist1(a, b) + dist1(b, c));
  }
}

TEST(Rect, ContainsAndIntersects) {
  Rect r{0, 0, 10, 5};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{10, 5}));
  EXPECT_FALSE(r.contains_strict(Point{10, 5}));
  EXPECT_TRUE(r.contains_strict(Point{5, 2}));
  EXPECT_TRUE(r.intersects(Rect{10, 5, 12, 8}));          // corner touch
  EXPECT_FALSE(r.interior_intersects(Rect{10, 0, 12, 5}));  // edge touch
  EXPECT_TRUE(r.interior_intersects(Rect{9, 4, 12, 8}));
}

TEST(Segment, PiercesOnlyThroughInterior) {
  Rect r{2, 2, 6, 6};
  EXPECT_TRUE((Segment{{0, 4}, {10, 4}}.pierces(r)));
  EXPECT_FALSE((Segment{{0, 2}, {10, 2}}.pierces(r)));  // along bottom edge
  EXPECT_FALSE((Segment{{0, 8}, {10, 8}}.pierces(r)));
  EXPECT_TRUE((Segment{{4, 0}, {4, 10}}.pierces(r)));
  EXPECT_FALSE((Segment{{2, 0}, {2, 10}}.pierces(r)));  // along left edge
  EXPECT_FALSE((Segment{{4, 0}, {4, 2}}.pierces(r)));   // stops at boundary
}

TEST(ParetoMaxima, AllQuadrants) {
  std::vector<Point> pts{{0, 0}, {2, 3}, {3, 2}, {1, 1}, {4, 0}, {0, 4}};
  auto ne = pareto_maxima(pts, Quadrant::NE);
  // NE maxima: (0,4), (2,3), (3,2), (4,0).
  ASSERT_EQ(ne.size(), 4u);
  EXPECT_EQ(ne[0], (Point{0, 4}));
  EXPECT_EQ(ne[3], (Point{4, 0}));
  auto sw = pareto_maxima(pts, Quadrant::SW);
  // SW maxima: (0,0) dominates everything except... (0,0) only.
  ASSERT_EQ(sw.size(), 1u);
  EXPECT_EQ(sw[0], (Point{0, 0}));
}

TEST(ParetoMaxima, NoMaximumDominated) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<Coord> d(0, 50);
  for (int it = 0; it < 50; ++it) {
    std::vector<Point> pts;
    for (int i = 0; i < 30; ++i) pts.push_back({d(rng), d(rng)});
    for (Quadrant q :
         {Quadrant::NE, Quadrant::NW, Quadrant::SE, Quadrant::SW}) {
      auto mx = pareto_maxima(pts, q);
      for (const auto& m : mx) {
        for (const auto& p : pts) {
          if (p != m) {
            EXPECT_FALSE(dominates(q, p, m) && !dominates(q, m, p))
                << "maximum dominated";
          }
        }
      }
    }
  }
}

TEST(Staircase, MaxStaircaseAboveAllRects) {
  std::vector<Rect> rects{{0, 0, 4, 6}, {6, 2, 9, 4}, {11, 1, 13, 8}};
  Staircase ne = Staircase::max_staircase(rects, Quadrant::NE);
  EXPECT_FALSE(ne.increasing());
  for (const auto& r : rects) {
    EXPECT_FALSE(ne.pierces(r));
    // Every rect corner is on or below the staircase.
    for (const auto& v : r.vertices()) EXPECT_LE(ne.side_of(v), 0);
  }
  // It passes through the NE-maximal corners (lowest-leftmost property);
  // here (13,8) dominates every other corner, so it is the only maximum.
  EXPECT_EQ(ne.side_of(Point{13, 8}), 0);
  EXPECT_EQ(ne.side_of(Point{0, 8}), 0);    // flat top at y=8 to the left
  EXPECT_EQ(ne.side_of(Point{13, -3}), 0);  // vertical drop at x=13
  EXPECT_EQ(ne.side_of(Point{4, 9}), +1);
  EXPECT_EQ(ne.side_of(Point{4, 6}), -1);   // dominated corner sits below
}

TEST(Staircase, SideOfBasic) {
  // Increasing staircase through (0,0) -> (0,2) -> (3,2) -> (3,5).
  Staircase s = Staircase::from_chain({{0, 0}, {0, 2}, {3, 2}, {3, 5}},
                                      StairOrient::Increasing);
  EXPECT_EQ(s.side_of(Point{-5, 0}), +1);   // up-left region
  EXPECT_EQ(s.side_of(Point{1, 3}), +1);
  EXPECT_EQ(s.side_of(Point{1, 1}), -1);    // down-right region
  EXPECT_EQ(s.side_of(Point{5, 4}), -1);
  EXPECT_EQ(s.side_of(Point{0, 1}), 0);     // on vertical segment
  EXPECT_EQ(s.side_of(Point{2, 2}), 0);     // on horizontal segment
}

TEST(Staircase, YIntervalAndXInterval) {
  Staircase s = Staircase::from_chain({{0, 0}, {0, 2}, {3, 2}, {3, 5}},
                                      StairOrient::Increasing);
  auto [lo, hi] = s.y_interval_at(0);
  EXPECT_EQ(lo, -Staircase::kBig);  // sentinel tail below
  EXPECT_EQ(hi, 2);
  auto [l2, h2] = s.y_interval_at(2);
  EXPECT_EQ(l2, 2);
  EXPECT_EQ(h2, 2);
  auto [xl, xh] = s.x_interval_at(2);
  EXPECT_EQ(xl, 0);
  EXPECT_EQ(xh, 3);
  auto [xl2, xh2] = s.x_interval_at(4);
  EXPECT_EQ(xl2, 3);
  EXPECT_EQ(xh2, 3);
}

TEST(Staircase, CrossPoint) {
  Staircase inc = Staircase::from_chain({{0, 0}, {0, 4}, {6, 4}, {6, 9}},
                                        StairOrient::Increasing);
  Staircase dec = Staircase::from_chain({{-2, 7}, {3, 7}, {3, 1}, {8, 1}},
                                        StairOrient::Decreasing);
  ASSERT_TRUE(Staircase::chains_intersect(inc, dec));
  Point c = Staircase::cross_point(inc, dec);
  EXPECT_EQ(inc.side_of(c), 0);
  EXPECT_EQ(dec.side_of(c), 0);
}

TEST(Staircase, PiercesRect) {
  Staircase s = Staircase::from_chain({{0, 0}, {0, 5}, {8, 5}, {8, 10}},
                                      StairOrient::Increasing);
  EXPECT_TRUE(s.pierces(Rect{2, 3, 5, 7}));    // horizontal run crosses
  EXPECT_FALSE(s.pierces(Rect{2, 5, 5, 7}));   // touches edge only
  EXPECT_FALSE(s.pierces(Rect{10, 0, 12, 4}));
  EXPECT_TRUE(s.pierces(Rect{-2, 1, 2, 3}));   // vertical sentinel-side run
}

TEST(Envelope, SingleRectIsItself) {
  std::vector<Rect> rects{{2, 3, 7, 9}};
  Envelope env = Envelope::compute(rects);
  EXPECT_TRUE(env.hull_exists);
  ASSERT_EQ(env.boundary.size(), 4u);
  EXPECT_TRUE(env.contains(Point{2, 3}));
  EXPECT_TRUE(env.contains(Point{5, 5}));
  EXPECT_FALSE(env.contains(Point{1, 5}));
  EXPECT_FALSE(env.contains(Point{8, 10}));
}

TEST(Envelope, HullOfTwoOverlappingSpansContainsBoth) {
  std::vector<Rect> rects{{0, 0, 4, 3}, {2, 5, 8, 7}};
  Envelope env = Envelope::compute(rects);
  EXPECT_TRUE(env.hull_exists);
  for (const auto& r : rects) {
    for (const auto& v : r.vertices()) {
      EXPECT_TRUE(env.contains(v)) << v;
    }
  }
  // A point in the "staircase notch" outside the hull.
  EXPECT_FALSE(env.contains(Point{7, 0}));
}

TEST(Envelope, DegenerateDiagonalPair) {
  // Two far-apart diagonal rects: MAX_NE and MAX_SW intersect, no hull.
  std::vector<Rect> rects{{0, 0, 2, 2}, {10, 10, 12, 12}};
  Envelope env = Envelope::compute(rects);
  EXPECT_FALSE(env.hull_exists);
  EXPECT_TRUE(env.contains(Point{1, 1}));
  EXPECT_TRUE(env.contains(Point{11, 11}));
  // The bridge (finite part of MAX_NE) is included per the paper.
  EXPECT_TRUE(env.contains(Point{2, 12}) || env.contains(Point{12, 2}) ||
              env.contains(Point{2, 10}) || env.contains(Point{10, 2}));
}

TEST(Envelope, ContainmentMatchesBruteForceOnRandomScenes) {
  std::mt19937_64 rng(21);
  std::uniform_int_distribution<Coord> d(0, 40);
  for (int it = 0; it < 20; ++it) {
    std::vector<Rect> rects;
    for (int i = 0; i < 6; ++i) {
      Coord x = d(rng), y = d(rng);
      rects.push_back(Rect{x, y, x + 1 + d(rng) % 6, y + 1 + d(rng) % 6});
    }
    Envelope env = Envelope::compute(rects);
    if (!env.hull_exists) continue;
    // Hull contains every rect point; hull region is rectilinearly convex:
    // sample pairs of contained points and check axis segments stay inside
    // (via midpoints).
    for (const auto& r : rects) {
      EXPECT_TRUE(env.contains(r.ll()) && env.contains(r.ur()));
    }
    for (int s = 0; s < 50; ++s) {
      Point a{d(rng), d(rng)}, b{a.x, d(rng)};
      if (env.contains(a) && env.contains(b)) {
        Point mid{a.x, (a.y + b.y) / 2};
        EXPECT_TRUE(env.contains(mid)) << "vertical convexity violated";
      }
    }
  }
}

TEST(Polygon, RectangleBasics) {
  auto poly = RectilinearPolygon::rectangle(Rect{0, 0, 10, 6});
  EXPECT_EQ(poly.size(), 4u);
  EXPECT_EQ(poly.perimeter(), 32);
  EXPECT_TRUE(poly.contains(Point{0, 0}));
  EXPECT_TRUE(poly.contains(Point{5, 6}));
  EXPECT_FALSE(poly.contains(Point{11, 3}));
  EXPECT_TRUE(poly.on_boundary(Point{0, 3}));
  EXPECT_FALSE(poly.on_boundary(Point{5, 3}));
}

TEST(Polygon, LShapeIsOrthogonallyConvex) {
  // An L-shape (one notch) IS rectilinearly convex: every axis-parallel
  // line meets it in one interval.
  std::vector<Point> l{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}};
  auto poly = RectilinearPolygon::from_vertices(l);
  EXPECT_TRUE(poly.contains(Point{1, 3}));
  EXPECT_FALSE(poly.contains(Point{3, 3}));  // the notch
}

TEST(Polygon, PlusShapeAccepted) {
  // Perhaps surprisingly, a plus shape IS rectilinearly convex: every
  // axis-parallel line meets it in a single interval.
  std::vector<Point> plus{{2, 0}, {4, 0}, {4, 2}, {6, 2}, {6, 4}, {4, 4},
                          {4, 6}, {2, 6}, {2, 4}, {0, 4}, {0, 2}, {2, 2}};
  auto poly = RectilinearPolygon::from_vertices(plus);
  EXPECT_TRUE(poly.contains(Point{3, 3}));
  EXPECT_FALSE(poly.contains(Point{1, 1}));  // cut corner
  EXPECT_FALSE(poly.contains(Point{5, 5}));
}

TEST(Polygon, UShapeRejected) {
  // A U shape is not rectilinearly convex: a horizontal line through the
  // two arms meets it in two intervals.
  std::vector<Point> u{{0, 0}, {6, 0}, {6, 4}, {4, 4},
                       {4, 2}, {2, 2}, {2, 4}, {0, 4}};
  EXPECT_THROW(RectilinearPolygon::from_vertices(u), std::logic_error);
}

TEST(Polygon, ChamferedOctagon) {
  std::vector<Point> v{{2, 0}, {8, 0}, {10, 2}, {10, 8},
                       {8, 10}, {2, 10}, {0, 8}, {0, 2}};
  // Diagonal corners are not axis-parallel -> invalid.
  EXPECT_THROW(RectilinearPolygon::from_vertices(v), std::logic_error);
  // Staircase-cut corners are fine.
  std::vector<Point> w{{2, 0}, {8, 0}, {8, 1}, {10, 1}, {10, 8}, {9, 8},
                       {9, 10}, {2, 10}, {0, 10}, {0, 2}, {2, 2}};
  auto poly = RectilinearPolygon::from_vertices(w);
  EXPECT_TRUE(poly.contains(Point{5, 5}));
  EXPECT_FALSE(poly.contains(Point{9, 0}));   // cut-away corner
  EXPECT_TRUE(poly.contains(Point{1, 9}));    // kept corner region
}

TEST(Polygon, YRangeAndXRange) {
  std::vector<Point> w{{2, 0}, {8, 0}, {8, 1}, {10, 1}, {10, 8}, {9, 8},
                       {9, 10}, {2, 10}, {0, 10}, {0, 2}, {2, 2}};
  auto poly = RectilinearPolygon::from_vertices(w);
  auto [lo, hi] = poly.y_range_at(9);
  EXPECT_EQ(lo, 1);  // x=9 sits over the SE corner cut, bottom edge at y=1
  EXPECT_EQ(hi, 10);
  // Cross-validate y_range against contains() along the column.
  for (Coord x = 0; x <= 10; ++x) {
    auto [l2, h2] = poly.y_range_at(x);
    for (Coord y = -1; y <= 11; ++y) {
      EXPECT_EQ(poly.contains(Point{x, y}), y >= l2 && y <= h2)
          << "x=" << x << " y=" << y;
    }
  }
  for (Coord y = 0; y <= 10; ++y) {
    auto [l2, h2] = poly.x_range_at(y);
    for (Coord x = -1; x <= 11; ++x) {
      EXPECT_EQ(poly.contains(Point{x, y}), x >= l2 && x <= h2)
          << "x=" << x << " y=" << y;
    }
  }
  (void)lo;
  (void)hi;
}

}  // namespace
}  // namespace rsp
