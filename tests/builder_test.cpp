// The all-pairs builder (paper §9 + the parallel driver) against the
// track-graph Dijkstra oracle — the library's central correctness test.

#include <gtest/gtest.h>

#include "baseline/dijkstra.h"
#include "core/seq_builder.h"
#include "io/gen.h"
#include "pram/scheduler.h"

namespace rsp {
namespace {

struct Built {
  explicit Built(Scene sc)
      : scene(std::move(sc)), shooter(scene), tracer(scene, shooter),
        data(build_all_pairs(scene, shooter, tracer)) {}
  Scene scene;
  RayShooter shooter;
  Tracer tracer;
  AllPairsData data;
};

TEST(Builder, SingleObstacleByHand) {
  Built b(Scene::with_bbox({{0, 0, 4, 6}}));
  // Around one rectangle: between ll(0) and ur(2): via lr or ul: 4+6=10.
  EXPECT_EQ(b.data.dist(0, 2), 10);
  EXPECT_EQ(b.data.dist(0, 1), 4);   // ll-lr along bottom
  EXPECT_EQ(b.data.dist(1, 3), 10);  // lr-ul
  EXPECT_EQ(b.data.dist(2, 3), 4);   // ur-ul
  EXPECT_EQ(b.data.dist(0, 0), 0);
}

TEST(Builder, TwoObstaclesDetour) {
  // Tall wall between two short blocks forces detours.
  Built b(Scene::with_bbox({{0, 0, 2, 3}, {5, -10, 7, 10}}));
  const auto& v = b.scene.obstacle_vertices();
  // From lr of rect0 (2,0) to ll of... vertex ids: rect1 ll=4 at (5,-10).
  EXPECT_EQ(b.data.dist(1, 4), oracle_length(b.scene, v[1], v[4]));
  // Across the wall: rect0 ur (2,3) id 2 to rect1 ur (7,10) id 6.
  EXPECT_EQ(b.data.dist(2, 6), oracle_length(b.scene, v[2], v[6]));
}

class BuilderOracleTest
    : public ::testing::TestWithParam<std::tuple<NamedGen, size_t>> {};

TEST_P(BuilderOracleTest, MatchesOracleOnAllPairs) {
  auto [gen, n] = GetParam();
  for (uint64_t seed : {1u, 5u, 9u}) {
    Built b(gen.fn(n, seed));
    Matrix expect = all_pairs_repeated_dijkstra(b.scene);
    const size_t m = b.data.m;
    for (size_t a = 0; a < m; ++a) {
      for (size_t w = 0; w < m; ++w) {
        ASSERT_EQ(b.data.dist(a, w), expect(a, w))
            << gen.name << " n=" << n << " seed=" << seed << " pair ("
            << b.scene.vertex(a) << " -> " << b.scene.vertex(w) << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuilderOracleTest,
    ::testing::Combine(::testing::ValuesIn(kAllGens),
                       ::testing::Values(1, 2, 4, 9, 16, 28)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Builder, MatrixIsSymmetricAndFinite) {
  for (const auto& gen : kAllGens) {
    Built b(gen.fn(18, 21));
    const size_t m = b.data.m;
    for (size_t a = 0; a < m; ++a) {
      EXPECT_EQ(b.data.dist(a, a), 0);
      for (size_t w = a + 1; w < m; ++w) {
        EXPECT_LT(b.data.dist(a, w), kInf)
            << gen.name << ": free space must be connected";
        EXPECT_EQ(b.data.dist(a, w), b.data.dist(w, a)) << gen.name;
        EXPECT_GE(b.data.dist(a, w),
                  dist1(b.scene.vertex(a), b.scene.vertex(w)));
      }
    }
  }
}

TEST(Builder, ParallelDriverMatchesSequential) {
  Scheduler sched(4);
  for (const auto& gen : kAllGens) {
    Scene s1 = gen.fn(15, 33);
    Scene s2 = gen.fn(15, 33);
    RayShooter sh1(s1), sh2(s2);
    Tracer tr1(s1, sh1), tr2(s2, sh2);
    AllPairsData seq = build_all_pairs(s1, sh1, tr1);
    AllPairsData par = build_all_pairs(sched, s2, sh2, tr2);
    EXPECT_EQ(seq.dist, par.dist) << gen.name;
  }
}

TEST(Builder, PredecessorChainsTerminate) {
  Built b(gen_uniform(20, 2));
  const size_t m = b.data.m;
  for (size_t a = 0; a < m; ++a) {
    for (size_t w = 0; w < m; ++w) {
      size_t steps = 0;
      int cur = static_cast<int>(w);
      while (cur >= 0 && static_cast<size_t>(cur) != a) {
        cur = b.data.pred_of(a, static_cast<size_t>(cur));
        ASSERT_LE(++steps, m) << "pred cycle";
      }
    }
  }
}

TEST(Builder, TriangleInequalityOverVertices) {
  Built b(gen_clustered(16, 6));
  const size_t m = b.data.m;
  for (size_t a = 0; a < m; a += 3) {
    for (size_t c = 0; c < m; c += 5) {
      for (size_t k = 0; k < m; k += 7) {
        EXPECT_LE(b.data.dist(a, c),
                  b.data.dist(a, k) + b.data.dist(k, c));
      }
    }
  }
}

}  // namespace
}  // namespace rsp
