// Fleet router (serve/router.h): a router fronting a shard set must be
// indistinguishable from a single engine server on every surviving
// response — byte-identical transcripts, exact request order — no matter
// how shard responses arrive, and every injected transport failure (kill,
// truncation, corruption, a 10x-slow shard, refused connections) must
// surface as a documented ERR or a transparent retry, never a hang, a
// crash, or a mis-merged value. The fault battery runs on the in-process
// scripted transport (fault_injection_util.h); the real-socket path runs a
// 3-server loopback fleet and SIGKILL-equivalent shard loss.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "fault_injection_util.h"
#include "io/gen.h"
#include "io/manifest.h"
#include "loopback_test_util.h"  // defines RSP_TEST_SOCKETS on unix/apple
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"

namespace rsp {
namespace {

using testutil::EngineShardChannel;
using testutil::Fault;
using testutil::FaultChannel;
using testutil::FaultKind;
using testutil::FaultScript;
using testutil::Gate;

// One shard set for the whole battery: a 16-obstacle scene saved as 3
// shards plus its manifest, an engine over the same scene as the oracle,
// and free points bucketed by routing slab so tests can aim requests at a
// chosen shard.
struct Fleet {
  std::string man_path;
  ShardManifest man;
  Engine engine;                              // oracle (same tables)
  std::map<size_t, std::vector<Point>> by_shard;  // free points per slab
};

Fleet& fleet() {
  static Fleet* f = [] {
    Scene s = gen_uniform(16, 7);
    Engine eng(Scene{s}, {.backend = Backend::kAllPairsSeq});
    std::string dir = testutil::unique_fixture_dir(::testing::TempDir() +
                                                   "/rsp_router_fleet");
    std::filesystem::create_directories(dir);
    std::string path = dir + "/fleet.man";
    Status st = eng.save(path, {.shards = 3});
    RSP_CHECK_MSG(st.ok(), "fixture sharded save: " + st.to_string());
    Result<ShardManifest> man = load_manifest(path);
    RSP_CHECK_MSG(man.ok(), "fixture load_manifest: " + man.status().to_string());
    auto* fx = new Fleet{path, std::move(*man), std::move(eng), {}};
    for (const Point& p : random_free_points(s, 128, 21)) {
      fx->by_shard[route_by_x(fx->man, p.x)].push_back(p);
    }
    RSP_CHECK_MSG(fx->by_shard.size() == 3,
                  "fixture: free points missed a routing slab");
    return fx;
  }();
  return *f;
}

// A free point whose source slab routes to `shard`.
Point point_in_shard(size_t shard, size_t idx = 0) {
  const auto& v = fleet().by_shard.at(shard);
  return v[idx % v.size()];
}

std::string len_line(const Point& s, const Point& t) {
  std::ostringstream os;
  os << "LEN " << s.x << ',' << s.y << ' ' << t.x << ',' << t.y << '\n';
  return os.str();
}

std::string route_session(Router& r, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  r.serve(in, out);
  return out.str();
}

// The oracle transcript: the same script against one QueryServer mounted
// from the very manifest the router serves (coalescing disabled — response
// *content* is what is compared, and it is window-independent).
std::string direct_session(const std::string& script) {
  Result<Engine> eng = Engine::open(fleet().man_path, {});
  RSP_CHECK_MSG(eng.ok(), "oracle mount: " + eng.status().to_string());
  QueryServer srv(std::move(*eng), {.coalesce_window_us = 0});
  std::istringstream in(script);
  std::ostringstream out;
  srv.serve(in, out);
  return out.str();
}

// A script whose requests cross every shard: LEN and PATH per slab plus a
// BATCH whose sources span all three slabs.
std::string spread_script() {
  auto& f = fleet();
  std::ostringstream os;
  for (size_t sh = 0; sh < 3; ++sh) {
    Point a = point_in_shard(sh, 0), b = point_in_shard((sh + 1) % 3, 1);
    os << "LEN " << a.x << ',' << a.y << ' ' << b.x << ',' << b.y << '\n';
    os << "PATH " << a.x << ',' << a.y << ' ' << b.x << ',' << b.y << '\n';
  }
  os << "BATCH 6\n";
  for (size_t i = 0; i < 6; ++i) {
    Point a = point_in_shard(i % 3, i), b = point_in_shard((i + 1) % 3, i + 2);
    os << a.x << ',' << a.y << ' ' << b.x << ',' << b.y << '\n';
  }
  (void)f;
  os << "QUIT\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Clean path: the router is transparent
// ---------------------------------------------------------------------------

TEST(RouterTest, TranscriptMatchesDirectEngineOracle) {
  auto& f = fleet();
  const std::string script = spread_script();
  Router r(f.man, testutil::engine_connector(&f.engine));
  EXPECT_EQ(route_session(r, script), direct_session(script));

  RouterStats s = r.stats();
  EXPECT_EQ(s.requests, 8u);  // 3 LEN + 3 PATH + 1 BATCH + QUIT's "OK bye"
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.shard_down, 0u);
}

TEST(RouterTest, RoutingFollowsManifestSlabsAndSpreadsWork) {
  auto& f = fleet();
  for (size_t sh = 0; sh < 3; ++sh) {
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(f.man.shards.size(), 3u);
      EXPECT_EQ(route_by_x(f.man, point_in_shard(sh, i).x), sh);
    }
  }
  Router r(f.man, testutil::engine_connector(&f.engine));
  EXPECT_EQ(r.route(point_in_shard(1)), 1u);
  route_session(r, spread_script());
  RouterStats s = r.stats();
  ASSERT_EQ(s.shards.size(), 3u);
  for (size_t sh = 0; sh < 3; ++sh) {
    EXPECT_GT(s.shards[sh].requests, 0u)
        << "shard " << sh << " never saw an exchange";
  }
}

TEST(RouterTest, SessionsAreReusableAndIndependent) {
  auto& f = fleet();
  Router r(f.man, testutil::engine_connector(&f.engine));
  const std::string script = spread_script();
  const std::string first = route_session(r, script);
  EXPECT_EQ(route_session(r, script), first);
  EXPECT_EQ(route_session(r, "QUIT\n"), "OK bye\n");
}

TEST(RouterTest, BadRequestIsAnsweredLocallyWithoutTouchingShards) {
  auto& f = fleet();
  FaultScript faults;
  Router r(f.man, testutil::fault_connector(&f.engine, &faults));
  const std::string script = "LEN banana\nFROB 1,2 3,4\nQUIT\n";
  const std::string got = route_session(r, script);
  EXPECT_EQ(got, direct_session(script));  // same parser, same ERR text
  EXPECT_EQ(faults.total_connects(), 0u);
  EXPECT_EQ(r.stats().errors, 2u);
}

TEST(RouterTest, RelayedQueryErrorIsByteIdenticalAndNotAShardFailure) {
  auto& f = fleet();
  // A source inside an obstacle: the shard answers ERR INVALID_QUERY; the
  // router must relay it verbatim and not count the shard as down.
  const Rect& ob = f.engine.scene().obstacles()[0];
  Point inside{(ob.xmin + ob.xmax) / 2, (ob.ymin + ob.ymax) / 2};
  Point free_pt = point_in_shard(0);
  const std::string script = len_line(inside, free_pt) + "QUIT\n";
  Router r(f.man, testutil::engine_connector(&f.engine));
  const std::string got = route_session(r, script);
  EXPECT_EQ(got, direct_session(script));
  EXPECT_EQ(got.rfind("ERR INVALID_QUERY", 0), 0u) << got;
  RouterStats s = r.stats();
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.shard_down, 0u);
  for (const auto& sh : s.shards) EXPECT_EQ(sh.failures, 0u);
}

// ---------------------------------------------------------------------------
// Merge ordering (satellite): arrival order never changes the transcript
// ---------------------------------------------------------------------------

TEST(RouterMergeOrderTest, AllArrivalPermutationsYieldIdenticalTranscripts) {
  auto& f = fleet();
  const std::string script = spread_script();
  const std::string expect = direct_session(script);

  std::array<std::array<size_t, 3>, 6> perms = {{{0, 1, 2},
                                                 {0, 2, 1},
                                                 {1, 0, 2},
                                                 {1, 2, 0},
                                                 {2, 0, 1},
                                                 {2, 1, 0}}};
  for (const auto& perm : perms) {
    FaultScript faults;
    std::array<Gate, 3> gates;
    // Hold only the BATCH sub-responses: the script's six leading
    // singles run clean (queue order is consumption order, so push the
    // clean exchanges first).
    for (size_t sh = 0; sh < 3; ++sh) {
      faults.push(sh, {});  // LEN
      faults.push(sh, {});  // PATH
      faults.push(sh, {FaultKind::kHoldResponse, &gates[sh], {}});
    }
    Router r(f.man, testutil::fault_connector(&f.engine, &faults),
             {.shard_timeout = std::chrono::milliseconds(10000)});
    // Responses become available strictly in `perm` order; no sleeps —
    // gate releases are the only clock.
    std::thread releaser([&] {
      for (size_t sh : perm) gates[sh].open();
    });
    const std::string got = route_session(r, script);
    releaser.join();
    EXPECT_EQ(got, expect) << "arrival order " << perm[0] << perm[1]
                           << perm[2] << " changed the merged transcript";
  }
}

// ---------------------------------------------------------------------------
// Fault battery: kill / truncate / corrupt / slow / unreachable
// ---------------------------------------------------------------------------

TEST(RouterFaultTest, KillAfterSendRetriesTransparently) {
  auto& f = fleet();
  Point a = point_in_shard(1), b = point_in_shard(2);
  const std::string script = len_line(a, b) + "QUIT\n";
  FaultScript faults;
  faults.push(1, {FaultKind::kKillAfterSend, nullptr, {}});
  Router r(f.man, testutil::fault_connector(&f.engine, &faults));
  EXPECT_EQ(route_session(r, script), direct_session(script));
  RouterStats s = r.stats();
  EXPECT_EQ(s.shards[1].retries, 1u);
  EXPECT_EQ(s.shards[1].failures, 0u);
  EXPECT_EQ(s.shard_down, 0u);
}

TEST(RouterFaultTest, KillBeforeSendRetriesTransparently) {
  auto& f = fleet();
  Point a = point_in_shard(0), b = point_in_shard(2);
  const std::string script = len_line(a, b) + "QUIT\n";
  FaultScript faults;
  faults.push(0, {FaultKind::kKillBeforeSend, nullptr, {}});
  Router r(f.man, testutil::fault_connector(&f.engine, &faults));
  EXPECT_EQ(route_session(r, script), direct_session(script));
  EXPECT_EQ(r.stats().shards[0].retries, 1u);
}

TEST(RouterFaultTest, RepeatedKillExhaustsRetriesToShardDownNotAHang) {
  auto& f = fleet();
  Point a = point_in_shard(2), b = point_in_shard(0);
  FaultScript faults;
  faults.push(2, {FaultKind::kKillAfterSend, nullptr, {}});
  faults.push(2, {FaultKind::kKillAfterSend, nullptr, {}});
  Router r(f.man, testutil::fault_connector(&f.engine, &faults));
  // The session must keep serving after the failure: the next request
  // reconnects and succeeds.
  const std::string script = len_line(a, b) + len_line(a, b) + "QUIT\n";
  const std::string got = route_session(r, script);
  std::istringstream is(got);
  std::string l1, l2, l3;
  std::getline(is, l1);
  std::getline(is, l2);
  std::getline(is, l3);
  EXPECT_EQ(l1, "ERR SHARD_DOWN shard 2 unreachable after 2 attempt(s); "
                "the request was not answered");
  EXPECT_EQ(l2 + "\n" + "OK bye\n",
            direct_session(len_line(a, b) + "QUIT\n"));
  EXPECT_EQ(l3, "OK bye");
  RouterStats s = r.stats();
  EXPECT_EQ(s.shard_down, 1u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.shards[2].failures, 1u);
}

TEST(RouterFaultTest, TruncatedResponseCostsTheChannelAndRetriesClean) {
  auto& f = fleet();
  Point a = point_in_shard(1), b = point_in_shard(1, 3);
  const std::string script =
      len_line(a, b) + len_line(b, a) + "QUIT\n";
  FaultScript faults;
  faults.push(1, {FaultKind::kTruncateResponse, nullptr, {}});
  Router r(f.man, testutil::fault_connector(&f.engine, &faults));
  // First request survives via retry; the second runs on the *fresh*
  // channel and must not read any leftover of the truncated response.
  EXPECT_EQ(route_session(r, script), direct_session(script));
  EXPECT_EQ(r.stats().shards[1].retries, 1u);
}

TEST(RouterFaultTest, CorruptResponseIsRejectedRetriedAndNeverDelivered) {
  auto& f = fleet();
  Point a = point_in_shard(0), b = point_in_shard(1);
  const std::string script = len_line(a, b) + "QUIT\n";
  for (const char* junk :
       {"OK banana", "ERR", "O", "", "OK 1 2 3", "LEN 1,1 2,2"}) {
    FaultScript faults;
    faults.push(0, {FaultKind::kCorruptResponse, nullptr, junk});
    Router r(f.man, testutil::fault_connector(&f.engine, &faults));
    EXPECT_EQ(route_session(r, script), direct_session(script))
        << "junk line " << '"' << junk << '"' << " leaked or desynced";
    EXPECT_EQ(r.stats().shards[0].retries, 1u);
  }
}

TEST(RouterFaultTest, DoublyCorruptExchangeBecomesShardDown) {
  auto& f = fleet();
  Point a = point_in_shard(0), b = point_in_shard(1);
  FaultScript faults;
  faults.push(0, {FaultKind::kCorruptResponse, nullptr, "OK not a number"});
  faults.push(0, {FaultKind::kCorruptResponse, nullptr, "OK 1 2"});
  Router r(f.man, testutil::fault_connector(&f.engine, &faults));
  const std::string got = route_session(r, len_line(a, b) + "QUIT\n");
  EXPECT_EQ(got.rfind("ERR SHARD_DOWN shard 0 ", 0), 0u) << got;
  EXPECT_EQ(r.stats().shards[0].failures, 1u);
}

TEST(RouterFaultTest, CorruptSubBatchNeverMisMergesAcrossShards) {
  auto& f = fleet();
  // A BATCH spanning all 3 shards; shard 1's sub-response claims the wrong
  // count twice -> the whole BATCH answers SHARD_DOWN naming shard the
  // smallest affected index routes to; shards 0/2 values must never be
  // scattered into a partial OK.
  const std::string script = spread_script();
  FaultScript faults;
  for (int i = 0; i < 2; ++i) {
    // Sub-batch to shard 1 has 2 pairs; "OK 1 7" is well-formed but wrong
    // count — framing validation must reject it.
    faults.push(1, {FaultKind::kCorruptResponse, nullptr, "OK 1 7"});
  }
  // Singles to shard 1 run clean first (consumption order).
  FaultScript ordered;
  ordered.push(1, {});  // LEN
  ordered.push(1, {});  // PATH
  ordered.push(1, {FaultKind::kCorruptResponse, nullptr, "OK 1 7"});
  ordered.push(1, {FaultKind::kCorruptResponse, nullptr, "OK 1 7"});
  Router r(f.man, testutil::fault_connector(&f.engine, &ordered));
  const std::string got = route_session(r, script);
  const std::string expect = direct_session(script);
  // Line-by-line: everything matches the oracle except the BATCH line,
  // which is SHARD_DOWN — never "OK 6 ..." with mixed-in wrong values.
  std::istringstream gi(got), ei(expect);
  std::string gl, el;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(std::getline(gi, gl) && std::getline(ei, el));
    EXPECT_EQ(gl, el) << "single " << i;
  }
  ASSERT_TRUE(std::getline(gi, gl));
  EXPECT_EQ(gl.rfind("ERR SHARD_DOWN shard 1 ", 0), 0u) << gl;
  ASSERT_TRUE(std::getline(gi, gl));
  EXPECT_EQ(gl, "OK bye");
}

TEST(RouterFaultTest, SlowShardDegradesToShardDownWithinTheDeadline) {
  auto& f = fleet();
  Point a = point_in_shard(1), b = point_in_shard(0);
  FaultScript faults;
  Gate never_a, never_b;  // never opened: a shard 10x slower than the budget
  faults.push(1, {FaultKind::kHoldResponse, &never_a, {}});
  faults.push(1, {FaultKind::kHoldResponse, &never_b, {}});
  Router r(f.man, testutil::fault_connector(&f.engine, &faults),
           {.shard_timeout = std::chrono::milliseconds(50)});
  const auto t0 = std::chrono::steady_clock::now();
  const std::string got = route_session(r, len_line(a, b) + "QUIT\n");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(got.rfind("ERR SHARD_DOWN shard 1 ", 0), 0u) << got;
  // Both attempts waited their full deadline (the gates never opened) —
  // and nothing waited longer than the configured budget allows.
  EXPECT_GE(elapsed, std::chrono::milliseconds(100));
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

TEST(RouterFaultTest, UnreachableShardIsShardDownThenRecoversWhenItReturns) {
  auto& f = fleet();
  Point a = point_in_shard(2), b = point_in_shard(1);
  const std::string script = len_line(a, b) + "QUIT\n";
  FaultScript faults;
  faults.set_unreachable(2, true);
  Router r(f.man, testutil::fault_connector(&f.engine, &faults));
  EXPECT_EQ(route_session(r, script).rfind("ERR SHARD_DOWN shard 2 ", 0), 0u);
  // The shard comes back; a new session reconnects and serves.
  faults.set_unreachable(2, false);
  EXPECT_EQ(route_session(r, script), direct_session(script));
  RouterStats s = r.stats();
  EXPECT_EQ(s.shard_down, 1u);
  EXPECT_EQ(s.shards[2].failures, 1u);
  EXPECT_TRUE(s.shards[2].last_ok);
}

// ---------------------------------------------------------------------------
// Ownership battery: owned-rows mounts, NOT_OWNER re-routing
// (MountMode::kOwnedRows — each shard server holds only its manifest rows)
// ---------------------------------------------------------------------------

// A 4-shard owned-rows fleet: one engine per shard mounted with
// MountMode::kOwnedRows, plus the union mount as the oracle. Free points
// are bucketed by routing slab as in Fleet.
struct OwnedFleet {
  std::string man_path;
  ShardManifest man;
  Engine oracle;              // union mount (all rows)
  std::vector<Engine> owned;  // owned[i] holds only shard i's rows
  std::map<size_t, std::vector<Point>> by_shard;
};

OwnedFleet& owned_fleet() {
  static OwnedFleet* f = [] {
    Scene s = gen_uniform(64, 11);
    Engine build(Scene{s}, {.backend = Backend::kAllPairsSeq});
    std::string dir = testutil::unique_fixture_dir(::testing::TempDir() +
                                                   "/rsp_router_owned");
    std::filesystem::create_directories(dir);
    std::string path = dir + "/fleet.man";
    Status st = build.save(path, {.shards = 4});
    RSP_CHECK_MSG(st.ok(), "owned fixture save: " + st.to_string());
    Result<ShardManifest> man = load_manifest(path);
    RSP_CHECK_MSG(man.ok(), "owned fixture manifest: " + man.status().to_string());
    Result<Engine> oracle = Engine::open(path, {});
    RSP_CHECK_MSG(oracle.ok(), "owned fixture union: " + oracle.status().to_string());
    auto* fx = new OwnedFleet{path, std::move(*man), std::move(*oracle), {}, {}};
    for (size_t i = 0; i < fx->man.shards.size(); ++i) {
      Result<Engine> sh =
          Engine::open(path, {.mount = MountMode::kOwnedRows, .shard = i});
      RSP_CHECK_MSG(sh.ok(), "owned fixture shard mount: " + sh.status().to_string());
      fx->owned.push_back(std::move(*sh));
    }
    for (const Point& p : random_free_points(s, 128, 33)) {
      fx->by_shard[route_by_x(fx->man, p.x)].push_back(p);
    }
    RSP_CHECK_MSG(fx->by_shard.size() >= 2,
                  "owned fixture: free points missed every slab but one");
    return fx;
  }();
  return *f;
}

std::vector<const Engine*> owned_engines() {
  std::vector<const Engine*> v;
  for (const Engine& e : owned_fleet().owned) v.push_back(&e);
  return v;
}

// The oracle transcript for the owned fleet: the same script against one
// QueryServer over the union mount.
std::string owned_oracle_session(const std::string& script) {
  Result<Engine> eng = Engine::open(owned_fleet().man_path, {});
  RSP_CHECK_MSG(eng.ok(), "owned oracle mount: " + eng.status().to_string());
  QueryServer srv(std::move(*eng), {.coalesce_window_us = 0});
  std::istringstream in(script);
  std::ostringstream out;
  srv.serve(in, out);
  return out.str();
}

// LEN + PATH per populated slab, then a BATCH whose sources cross slabs.
std::string owned_spread_script() {
  auto& f = owned_fleet();
  std::vector<const std::vector<Point>*> buckets;
  for (const auto& [sh, v] : f.by_shard) buckets.push_back(&v);
  const size_t nb = buckets.size();
  const auto pt = [&](size_t b, size_t i) {
    const std::vector<Point>& v = *buckets[b % nb];
    return v[i % v.size()];
  };
  std::ostringstream os;
  for (size_t b = 0; b < nb; ++b) {
    Point a = pt(b, 0), c = pt(b + 1, 1);
    os << "LEN " << a.x << ',' << a.y << ' ' << c.x << ',' << c.y << '\n';
    os << "PATH " << a.x << ',' << a.y << ' ' << c.x << ',' << c.y << '\n';
  }
  os << "BATCH 8\n";
  for (size_t i = 0; i < 8; ++i) {
    Point a = pt(i, i), c = pt(i + 1, i + 3);
    os << a.x << ',' << a.y << ' ' << c.x << ',' << c.y << '\n';
  }
  os << "QUIT\n";
  return os.str();
}

uint64_t total_misroutes(const RouterStats& s) {
  uint64_t n = 0;
  for (const auto& sh : s.shards) n += sh.misroutes;
  return n;
}

// A free-point pair whose §6.4 source rows shard `j` owns — probed against
// the owned mount itself (deterministic: fixed scene, fixed point set).
// With `refused_by` set, the pair must additionally NOT be owned by that
// shard (its mount answers kNotOwner).
PointPair pair_owned_by(size_t j, size_t refused_by = SIZE_MAX) {
  auto& f = owned_fleet();
  std::vector<Point> pts;
  for (const auto& [sh, v] : f.by_shard) pts.insert(pts.end(), v.begin(), v.end());
  for (size_t a = 0; a < pts.size(); ++a) {
    for (size_t b = 0; b < pts.size(); ++b) {
      if (pts[a].x == pts[b].x && pts[a].y == pts[b].y) continue;
      if (!f.owned[j].length(pts[a], pts[b]).ok()) continue;
      if (refused_by != SIZE_MAX &&
          f.owned[refused_by].length(pts[a], pts[b]).status().code() !=
              StatusCode::kNotOwner) {
        continue;
      }
      return {pts[a], pts[b]};
    }
  }
  RSP_CHECK_MSG(false, "no probed pair owned by the requested shard");
  return {};
}

TEST(RouterOwnedRowsTest, OwnedMountAnswersNotOwnerOnTheWireDirectly) {
  auto& f = owned_fleet();
  // Talking to an owned shard *without* a router: the refusal itself is
  // the wire contract — exactly format_not_owner(row_lo, row_hi).
  const PointPair pp = pair_owned_by(0, /*refused_by=*/1);
  Result<Engine> shard1 =
      Engine::open(f.man_path, {.mount = MountMode::kOwnedRows, .shard = 1});
  ASSERT_TRUE(shard1.ok()) << shard1.status();
  const std::pair<size_t, size_t> window = shard1->owned_rows();
  EXPECT_EQ(window.first, f.man.shards[1].row_lo);
  EXPECT_EQ(window.second, f.man.shards[1].row_hi);
  QueryServer srv(std::move(*shard1), {.coalesce_window_us = 0});
  std::istringstream in(len_line(pp.s, pp.t) + "STATS\nQUIT\n");
  std::ostringstream out;
  srv.serve(in, out);
  std::istringstream is(out.str());
  std::string refusal, stats;
  std::getline(is, refusal);
  std::getline(is, stats);
  EXPECT_EQ(refusal, format_not_owner(window.first, window.second));
  // STATS reports the owned window so fleet dashboards can see partial
  // mounts: "owned_rows=<count>/<total>".
  const std::string frag = " owned_rows=" +
                           std::to_string(window.second - window.first) + "/" +
                           std::to_string(f.man.m);
  EXPECT_NE(stats.find(frag), std::string::npos) << stats;
}

TEST(RouterOwnedRowsTest, TranscriptMatchesUnionOracleByteForByte) {
  auto& f = owned_fleet();
  const std::string script = owned_spread_script();
  FaultScript faults;
  Router r(f.man, testutil::fleet_connector(owned_engines(), &faults));
  EXPECT_EQ(route_session(r, script), owned_oracle_session(script));
  RouterStats s = r.stats();
  EXPECT_EQ(s.shard_down, 0u);
  EXPECT_EQ(s.errors, 0u);
}

TEST(RouterOwnedRowsTest, StaleManifestReroutesViaNotOwnerAndStaysExact) {
  auto& f = owned_fleet();
  // Stale manifest: the router's slab map says shard i owns what shard
  // (i+1) % k actually mounted. Every first-try exchange that needs the
  // rotated rows comes back NOT_OWNER; the candidate walk must find the
  // true owner and keep the transcript byte-identical to the oracle.
  const size_t k = f.man.shards.size();
  std::vector<const Engine*> rotated;
  for (size_t i = 0; i < k; ++i) rotated.push_back(&f.owned[(i + 1) % k]);
  const std::string script = owned_spread_script();
  FaultScript faults;
  Router r(f.man, testutil::fleet_connector(rotated, &faults));
  EXPECT_EQ(route_session(r, script), owned_oracle_session(script));
  RouterStats s = r.stats();
  EXPECT_EQ(s.shard_down, 0u);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_GT(total_misroutes(s), 0u) << "rotation never tripped a re-route";
}

TEST(RouterOwnedRowsTest, RerouteComposesWithTheTransportRetryLadder) {
  auto& f = owned_fleet();
  const size_t k = f.man.shards.size();
  std::vector<const Engine*> rotated;
  for (size_t i = 0; i < k; ++i) rotated.push_back(&f.owned[(i + 1) % k]);
  // The pair's true owner (post-rotation position of shard 0's rows) eats
  // one kill first: NOT_OWNER re-route lands on it, the in-exchange retry
  // ladder reconnects, and the client still sees the oracle's bytes.
  const PointPair pp = pair_owned_by(0, /*refused_by=*/1);
  size_t owner_pos = SIZE_MAX;
  for (size_t i = 0; i < k; ++i) {
    if (rotated[i] == &f.owned[0]) owner_pos = i;
  }
  ASSERT_NE(owner_pos, SIZE_MAX);
  FaultScript faults;
  faults.push(owner_pos, {FaultKind::kKillAfterSend, nullptr, {}});
  Router r(f.man, testutil::fleet_connector(rotated, &faults));
  const std::string script = len_line(pp.s, pp.t) + "QUIT\n";
  EXPECT_EQ(route_session(r, script), owned_oracle_session(script));
  RouterStats s = r.stats();
  EXPECT_EQ(s.shard_down, 0u);
  EXPECT_GE(s.shards[owner_pos].retries, 1u);
}

TEST(RouterOwnedRowsTest, LyingFleetDegradesToShardDownNeverAWrongAnswer) {
  auto& f = owned_fleet();
  // Every endpoint lies: they all mounted shard 0's rows, whatever the
  // manifest says they own. Queries shard 0's rows can answer still come
  // back byte-exact (any liar holds the right data); queries needing any
  // other shard's rows must degrade to SHARD_DOWN — never a wrong answer,
  // never a relayed NOT_OWNER.
  const size_t k = f.man.shards.size();
  std::vector<const Engine*> liars(k, &f.owned[0]);
  FaultScript faults;
  Router r(f.man, testutil::fleet_connector(liars, &faults));

  const PointPair good = pair_owned_by(0);
  const std::string ok_script = len_line(good.s, good.t) + "QUIT\n";
  EXPECT_EQ(route_session(r, ok_script), owned_oracle_session(ok_script));

  const PointPair orphan = pair_owned_by(2, /*refused_by=*/0);
  const std::string got =
      route_session(r, len_line(orphan.s, orphan.t) + "QUIT\n");
  std::istringstream is(got);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line,
            "ERR SHARD_DOWN no shard owns the source rows for this request; "
            "the request was not answered");
  RouterStats s = r.stats();
  EXPECT_EQ(s.shard_down, 1u);
  EXPECT_EQ(total_misroutes(s), k) << "every liar should have refused once";
}

TEST(RouterOwnedRowsTest, OwnedMountsUseAFractionOfTheUnionMemory) {
  auto& f = owned_fleet();
  const size_t k = f.man.shards.size();
  const Engine::MemoryBreakdown un = f.oracle.memory_breakdown();
  ASSERT_GT(un.total_bytes, 0u);
  EXPECT_EQ(un.owned_rows, un.total_rows);
  for (size_t i = 0; i < k; ++i) {
    const Engine::MemoryBreakdown mb = f.owned[i].memory_breakdown();
    EXPECT_EQ(mb.owned_rows,
              f.man.shards[i].row_hi - f.man.shards[i].row_lo);
    EXPECT_EQ(mb.total_rows, f.man.m);
    // ~(1/k + eps): the owned tables are exactly rows/m of the union's,
    // plus per-engine fixed overhead (scene, port matrices) that does not
    // scale with the mount — grant it union/8 of slack.
    EXPECT_LE(mb.total_bytes, un.total_bytes / k + un.total_bytes / 8)
        << "shard " << i << " resident bytes not fractional";
  }
}

// Routing-slab boundary ties (satellite): route_by_x is deterministic and
// total — x == x_hi[i] belongs to shard i+1 (half-open slabs), ends clamp.
TEST(RouterRoutingTest, SlabBoundaryCoordinatesRouteDeterministically) {
  ShardManifest man;
  man.num_obstacles = 6;
  man.m = 24;
  man.shards = {{"s0", SnapshotPayloadKind::kAllPairsShard, 0, 8, 0, 10, 1},
                {"s1", SnapshotPayloadKind::kAllPairsShard, 8, 16, 10, 20, 2},
                {"s2", SnapshotPayloadKind::kAllPairsShard, 16, 24, 20, 30, 3}};
  ASSERT_TRUE(validate_manifest(man).ok());
  EXPECT_EQ(route_by_x(man, 9), 0u);
  EXPECT_EQ(route_by_x(man, 10), 1u);  // x == x_hi[0]: the tie goes right
  EXPECT_EQ(route_by_x(man, 19), 1u);
  EXPECT_EQ(route_by_x(man, 20), 2u);  // x == x_hi[1]
  EXPECT_EQ(route_by_x(man, -100), 0u);  // left of every slab: clamp
  EXPECT_EQ(route_by_x(man, 29), 2u);
  EXPECT_EQ(route_by_x(man, 30), 2u);   // x == x_hi[last]: clamp
  EXPECT_EQ(route_by_x(man, 1000), 2u);

  // The saved fixture's slabs obey the same tie rule at every interior
  // boundary (skipping empty slabs, which own no coordinate at all).
  auto& f = owned_fleet();
  for (size_t i = 0; i + 1 < f.man.shards.size(); ++i) {
    const Coord edge = f.man.shards[i].x_hi;
    const size_t got = route_by_x(f.man, edge);
    EXPECT_GT(got, i) << "boundary coordinate " << edge
                      << " routed back into a closed slab";
    EXPECT_EQ(f.man.shards[got].x_lo <= edge && edge < f.man.shards[got].x_hi,
              true)
        << "boundary coordinate " << edge << " routed to shard " << got
        << " whose slab does not contain it";
  }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

TEST(RouterStatsTest, StatsLineAndJsonExposeShardHealth) {
  auto& f = fleet();
  FaultScript faults;
  faults.push(0, {FaultKind::kKillAfterSend, nullptr, {}});
  faults.push(0, {FaultKind::kKillAfterSend, nullptr, {}});
  Router r(f.man, testutil::fault_connector(&f.engine, &faults));
  Point a = point_in_shard(0), b = point_in_shard(1);
  // In-session STATS is answered locally and counts earlier requests.
  const std::string got =
      route_session(r, len_line(a, b) + len_line(b, a) + "STATS\nQUIT\n");
  std::istringstream is(got);
  std::string down_line, ok_line, stats_line;
  std::getline(is, down_line);
  std::getline(is, ok_line);
  std::getline(is, stats_line);
  EXPECT_EQ(down_line.rfind("ERR SHARD_DOWN", 0), 0u);
  EXPECT_EQ(ok_line.rfind("OK ", 0), 0u);
  // "OK router" prefix: fleet transcripts stay diffable against
  // single-engine ones by filtering this one prefix.
  EXPECT_EQ(stats_line.rfind("OK router shards=3 requests=2 errors=1 "
                             "shard_down=1 shard0=down:",
                             0),
            0u)
      << stats_line;
  EXPECT_NE(stats_line.find("shard1=up:"), std::string::npos);

  const std::string json = r.stats_json();
  EXPECT_NE(json.find("\"shard_health\""), std::string::npos);
  EXPECT_NE(json.find("\"shard_down\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"timeout_ms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Real sockets: a loopback fleet with a killed shard server
// ---------------------------------------------------------------------------

#ifdef RSP_TEST_SOCKETS

struct LiveServer {
  std::unique_ptr<QueryServer> srv;
  std::thread th;
  uint16_t port = 0;

  explicit LiveServer(Engine eng) : srv(new QueryServer(std::move(eng))) {
    std::promise<uint16_t> ready;
    auto fut = ready.get_future();
    th = std::thread([this, &ready] {
      srv->serve_port(0, 0, [&ready](uint16_t p) { ready.set_value(p); });
    });
    port = fut.get();
  }
  void kill() {
    if (th.joinable()) {
      srv->shutdown_port();
      th.join();
    }
  }
  ~LiveServer() { kill(); }
};

TEST(RouterTcpTest, LoopbackFleetServesAndSurvivesAShardKill) {
  auto& f = fleet();
  // Three real shard servers, each mounting the union from the manifest.
  std::vector<std::unique_ptr<LiveServer>> servers;
  std::vector<ShardEndpoint> eps;
  for (int i = 0; i < 3; ++i) {
    Result<Engine> eng = Engine::open(f.man_path, {});
    ASSERT_TRUE(eng.ok()) << eng.status();
    servers.push_back(std::make_unique<LiveServer>(std::move(*eng)));
    eps.push_back({"127.0.0.1", servers.back()->port});
  }
  Router router(f.man, tcp_connector(eps),
                {.shard_timeout = std::chrono::milliseconds(5000)});

  const std::string script = spread_script();
  EXPECT_EQ(route_session(router, script), direct_session(script));

  // SIGKILL-equivalent: shard 1's server goes away (listener closed, every
  // session torn down). A fresh session must answer SHARD_DOWN for slab-1
  // sources and stay byte-exact for everything else.
  servers[1]->kill();
  Point in1 = point_in_shard(1), in0 = point_in_shard(0);
  Point in2 = point_in_shard(2, 1);
  const std::string mixed =
      len_line(in0, in2) + len_line(in1, in0) + len_line(in2, in0) + "QUIT\n";
  const std::string got = route_session(router, mixed);
  std::istringstream gi(got);
  std::string l0, l1, l2, bye;
  std::getline(gi, l0);
  std::getline(gi, l1);
  std::getline(gi, l2);
  std::getline(gi, bye);
  EXPECT_EQ(l0 + "\n" + "OK bye\n", direct_session(len_line(in0, in2) + "QUIT\n"));
  EXPECT_EQ(l1.rfind("ERR SHARD_DOWN shard 1 ", 0), 0u) << l1;
  EXPECT_EQ(l2 + "\n" + "OK bye\n", direct_session(len_line(in2, in0) + "QUIT\n"));
  EXPECT_EQ(bye, "OK bye");
  RouterStats s = router.stats();
  EXPECT_GE(s.shards[1].failures, 1u);
  EXPECT_FALSE(s.shards[1].last_ok);
}

TEST(RouterTcpTest, RouterServePortSpeaksTheWireProtocol) {
  auto& f = fleet();
  LiveServer shard(*Engine::open(f.man_path, {}));
  // A 1-shard manifest view pointing at the live server: the router's own
  // TCP front end must carry a full session (ephemeral port, rendezvous,
  // clean shutdown) just like QueryServer::serve_port.
  Router router(f.man,
                tcp_connector({{"127.0.0.1", shard.port},
                               {"127.0.0.1", shard.port},
                               {"127.0.0.1", shard.port}}));
  std::promise<uint16_t> ready;
  auto fut = ready.get_future();
  std::thread rt([&] {
    router.serve_port(0, [&ready](uint16_t p) { ready.set_value(p); });
  });
  const uint16_t port = fut.get();

  const std::string script = spread_script();
  int fd = testutil::connect_loopback(port);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(testutil::send_all(fd, script));
  const std::string got = testutil::recv_until_eof(fd);
  ::close(fd);
  EXPECT_EQ(got, direct_session(script));

  router.shutdown_port();
  rt.join();
}

#endif  // RSP_TEST_SOCKETS

}  // namespace
}  // namespace rsp
