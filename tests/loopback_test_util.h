#pragma once
// Shared loopback-socket helpers for the serve-layer tests
// (serve_test.cpp, serve_stress_test.cpp). Test-only: blocking I/O, no
// timeouts — ctest's per-test timeout is the watchdog.

#if defined(__unix__) || defined(__APPLE__)
#define RSP_TEST_SOCKETS 1

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

namespace rsp::testutil {

// Connects to 127.0.0.1:port; returns the fd or -1.
inline int connect_loopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

inline bool send_all(int fd, const std::string& s) {
  size_t off = 0;
  while (off < s.size()) {
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd, s.data() + off, s.size() - off, MSG_NOSIGNAL);
#else
    ssize_t n = ::send(fd, s.data() + off, s.size() - off, 0);
#endif
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

inline std::string recv_until_eof(int fd) {
  std::string got;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) got.append(buf, n);
  return got;
}

}  // namespace rsp::testutil

#endif  // unix/apple
