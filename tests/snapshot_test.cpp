// Snapshot persistence (io/snapshot.h + Engine::save/open): round-trips
// over every generator asserting bit-identical query results against the
// engine the snapshot was saved from, plus negative tests — truncation,
// bad magic, wrong version, corrupted payload, backend/payload mismatch —
// each rejected with the precise StatusCode and no UB.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/engine.h"
#include "core/query.h"
#include "io/gen.h"
#include "io/manifest.h"
#include "io/snapshot.h"

namespace rsp {
namespace {

std::vector<PointPair> make_pairs(const Scene& scene, size_t count,
                                  uint64_t seed) {
  auto pts = random_free_points(scene, 2 * count, seed);
  std::vector<PointPair> pairs;
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    pairs.push_back({pts[i], pts[i + 1]});
  }
  return pairs;
}

std::string snapshot_bytes(const Engine& eng) {
  std::ostringstream os;
  Status st = eng.save(os, {});
  EXPECT_TRUE(st.ok()) << st;
  return os.str();
}

// ---------------------------------------------------------------------------
// Round-trip over every generator: the loaded engine is indistinguishable
// from the one it was saved from.
// ---------------------------------------------------------------------------

class SnapshotRoundTripTest : public ::testing::TestWithParam<NamedGen> {};

TEST_P(SnapshotRoundTripTest, LengthsAndPathsBitIdentical) {
  Scene s = GetParam().fn(14, 41);
  Engine built(s, {.backend = Backend::kAllPairsSeq});
  std::string bytes = snapshot_bytes(built);

  std::istringstream is(bytes);
  Result<Engine> loaded = Engine::open(is, {.engine = {.backend = Backend::kAllPairsSeq}});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->built());
  EXPECT_EQ(loaded->scene().num_obstacles(), s.num_obstacles());

  // Vertex-to-vertex: the full V_R matrix must match entry for entry.
  const AllPairsSP* a = built.all_pairs();
  const AllPairsSP* b = loaded->all_pairs();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->num_vertices(), b->num_vertices());
  EXPECT_TRUE(a->data().dist == b->data().dist) << GetParam().name;
  EXPECT_EQ(a->data().pred, b->data().pred) << GetParam().name;
  EXPECT_EQ(a->data().pass, b->data().pass) << GetParam().name;

  // Arbitrary-point queries, straight through the facade.
  auto pairs = make_pairs(s, 12, 7);
  auto lens0 = built.lengths(pairs);
  auto lens1 = loaded->lengths(pairs);
  ASSERT_TRUE(lens0.ok()) << lens0.status();
  ASSERT_TRUE(lens1.ok()) << lens1.status();
  EXPECT_EQ(*lens0, *lens1) << GetParam().name;

  auto paths0 = built.paths(pairs);
  auto paths1 = loaded->paths(pairs);
  ASSERT_TRUE(paths0.ok()) << paths0.status();
  ASSERT_TRUE(paths1.ok()) << paths1.status();
  EXPECT_EQ(*paths0, *paths1) << GetParam().name;
}

TEST_P(SnapshotRoundTripTest, LoadedEngineServesBatchOverScheduler) {
  Scene s = GetParam().fn(10, 3);
  Engine built(s, {.backend = Backend::kAllPairsSeq});
  std::string bytes = snapshot_bytes(built);

  std::istringstream is(bytes);
  Result<Engine> loaded = Engine::open(is, {.engine = {.num_threads = 4}});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_threads(), 4u);

  auto pairs = make_pairs(s, 16, 11);
  auto lens0 = built.lengths(pairs);
  auto lens1 = loaded->lengths(pairs);
  ASSERT_TRUE(lens1.ok()) << lens1.status();
  EXPECT_EQ(*lens0, *lens1);
}

INSTANTIATE_TEST_SUITE_P(AllGens, SnapshotRoundTripTest,
                         ::testing::ValuesIn(kAllGens),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------------
// File-path round trip and IO errors.
// ---------------------------------------------------------------------------

TEST(SnapshotFileTest, SaveOpenThroughFilesystem) {
  Scene s = gen_uniform(8, 9);
  Engine built(s, {});
  std::string path = ::testing::TempDir() + "/rsp_snapshot_test.rsnap";
  ASSERT_TRUE(built.save(path, {}).ok());

  Result<Engine> loaded = Engine::open(path, {});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto pairs = make_pairs(s, 4, 2);
  EXPECT_EQ(*built.lengths(pairs), *loaded->lengths(pairs));
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, MissingFileIsIoError) {
  Result<Engine> r = Engine::open("/nonexistent/dir/x.rsnap", {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(SnapshotFileTest, UnwritablePathIsIoError) {
  Engine eng(gen_uniform(6, 1), {});
  Status st = eng.save("/nonexistent/dir/x.rsnap", {});
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Malformed input. Every case must return the precise StatusCode; none may
// crash, throw, or return a usable engine.
// ---------------------------------------------------------------------------

class SnapshotNegativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine eng(gen_uniform(6, 13), {});
    bytes_ = snapshot_bytes(eng);
  }

  StatusCode open_code(const std::string& bytes) {
    std::istringstream is(bytes);
    Result<Engine> r = Engine::open(is, {});
    EXPECT_FALSE(r.ok());
    return r.ok() ? StatusCode::kOk : r.status().code();
  }

  std::string bytes_;
};

TEST_F(SnapshotNegativeTest, TruncatedAtEveryRegionIsCorrupt) {
  // Cut inside the magic, the header, the scene section, the tables, and
  // the checksum — every prefix must come back kCorruptSnapshot.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{13}, size_t{40},
                     bytes_.size() / 2, bytes_.size() - 9, bytes_.size() - 1}) {
    ASSERT_LT(cut, bytes_.size());
    EXPECT_EQ(open_code(bytes_.substr(0, cut)), StatusCode::kCorruptSnapshot)
        << "cut at " << cut;
  }
}

TEST_F(SnapshotNegativeTest, BadMagicIsCorrupt) {
  std::string b = bytes_;
  b[0] = 'X';
  EXPECT_EQ(open_code(b), StatusCode::kCorruptSnapshot);
}

TEST_F(SnapshotNegativeTest, WrongVersionIsVersionMismatch) {
  std::string b = bytes_;
  b[8] = static_cast<char>(kSnapshotFormatVersion + 1);  // version u32 LSB
  EXPECT_EQ(open_code(b), StatusCode::kVersionMismatch);
}

TEST_F(SnapshotNegativeTest, UnknownPayloadKindIsCorrupt) {
  std::string b = bytes_;
  b[12] = 7;  // payload kind byte
  EXPECT_EQ(open_code(b), StatusCode::kCorruptSnapshot);
}

TEST_F(SnapshotNegativeTest, FlippedPayloadByteIsCorrupt) {
  // Deep inside the dist matrix: the table decodes fine, the checksum
  // catches the damage.
  std::string b = bytes_;
  b[b.size() / 2] ^= 0x5a;
  EXPECT_EQ(open_code(b), StatusCode::kCorruptSnapshot);
}

TEST_F(SnapshotNegativeTest, FlippedChecksumIsCorrupt) {
  std::string b = bytes_;
  b[b.size() - 1] ^= 0x01;
  EXPECT_EQ(open_code(b), StatusCode::kCorruptSnapshot);
}

TEST_F(SnapshotNegativeTest, GarbageIsCorruptNotUB) {
  std::string b(1024, '\x7f');
  EXPECT_EQ(open_code(b), StatusCode::kCorruptSnapshot);
}

// ---------------------------------------------------------------------------
// Backend/payload mismatch.
// ---------------------------------------------------------------------------

TEST(SnapshotMismatchTest, SceneOnlySnapshotRejectsAllPairsBackend) {
  // A structure-free engine saves a scene-only snapshot...
  Engine dij(gen_uniform(6, 13), {.backend = Backend::kDijkstraBaseline});
  std::string bytes;
  {
    std::ostringstream os;
    ASSERT_TRUE(dij.save(os, {}).ok());
    bytes = os.str();
  }
  {
    std::istringstream is(bytes);
    Result<SnapshotInfo> info = read_snapshot_info(is);
    ASSERT_TRUE(info.ok()) << info.status();
    EXPECT_EQ(info->kind, SnapshotPayloadKind::kSceneOnly);
  }
  // ...which cannot serve an all-pairs backend without a rebuild...
  {
    std::istringstream is(bytes);
    Result<Engine> r = Engine::open(is, {.engine = {.backend = Backend::kAllPairsSeq}});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kSnapshotMismatch);
  }
  // ...but reopens fine as the baseline it was saved from.
  {
    std::istringstream is(bytes);
    Result<Engine> r =
        Engine::open(is, {.engine = {.backend = Backend::kDijkstraBaseline}});
    ASSERT_TRUE(r.ok()) << r.status();
    auto pairs = make_pairs(r->scene(), 2, 5);
    auto d = r->lengths(pairs);
    ASSERT_TRUE(d.ok()) << d.status();
  }
}

TEST(SnapshotMismatchTest, AllPairsSnapshotServesDijkstraToo) {
  // The scene section alone is enough for the structure-free backend.
  Engine built(gen_uniform(6, 13), {});
  std::string bytes = snapshot_bytes(built);
  std::istringstream is(bytes);
  Result<Engine> r = Engine::open(is, {.engine = {.backend = Backend::kDijkstraBaseline}});
  ASSERT_TRUE(r.ok()) << r.status();
  auto pairs = make_pairs(built.scene(), 4, 19);
  EXPECT_EQ(*built.lengths(pairs), *r->lengths(pairs));
}

// ---------------------------------------------------------------------------
// Introspection and save() edge cases.
// ---------------------------------------------------------------------------

TEST(SnapshotInfoTest, ReportsSizesWithoutLoadingTables) {
  Engine eng(gen_grid(9, 5), {});
  std::string bytes = snapshot_bytes(eng);
  std::istringstream is(bytes);
  Result<SnapshotInfo> info = read_snapshot_info(is);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->format_version, kSnapshotFormatVersion);
  EXPECT_EQ(info->kind, SnapshotPayloadKind::kAllPairs);
  EXPECT_EQ(info->num_obstacles, eng.scene().num_obstacles());
  EXPECT_EQ(info->num_vertices, 4 * eng.scene().num_obstacles());
}

TEST(SnapshotSaveTest, LazyEngineSaveForcesTheBuild) {
  Engine eng(gen_uniform(8, 21), {.lazy_build = true});
  EXPECT_FALSE(eng.built());
  std::string bytes = snapshot_bytes(eng);  // save() must warm up first
  EXPECT_TRUE(eng.built());
  std::istringstream is(bytes);
  Result<Engine> r = Engine::open(is, {});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->built());
}

TEST(SnapshotStreamTest, InfoThenLoadOnOneStreamComposes) {
  // read_snapshot_info is a pure peek on a seekable stream: the same
  // stream then loads from the snapshot's start without rewinding by hand.
  Engine eng(gen_uniform(6, 13), {});
  std::stringstream ss;
  ASSERT_TRUE(eng.save(ss, {}).ok());
  Result<SnapshotInfo> info = read_snapshot_info(ss);
  ASSERT_TRUE(info.ok()) << info.status();
  Result<Engine> r = Engine::open(ss, {});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->scene().num_obstacles(), info->num_obstacles);
}

TEST(SnapshotStreamTest, BackToBackSnapshotsInOneStreamCompose) {
  // load_snapshot must leave a seekable stream just past the footer, not
  // wherever its read-ahead buffer stopped.
  Engine a(gen_uniform(6, 13), {});
  Engine b(gen_grid(9, 5), {});
  std::stringstream ss;
  ASSERT_TRUE(a.save(ss, {}).ok());
  ASSERT_TRUE(b.save(ss, {}).ok());
  Result<Engine> ra = Engine::open(ss, {});
  ASSERT_TRUE(ra.ok()) << ra.status();
  Result<Engine> rb = Engine::open(ss, {});
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(ra->scene().num_obstacles(), a.scene().num_obstacles());
  EXPECT_EQ(rb->scene().num_obstacles(), b.scene().num_obstacles());
}

TEST(SnapshotNegativeCraftedTest, CyclicPredTableIsCorruptNotAHang) {
  // A crafted snapshot can carry a valid (non-cryptographic) checksum yet
  // hold a pred cycle that would hang the §8 path walk. The loader must
  // reject it, not hand it to SpTrees.
  Scene s = gen_uniform(6, 13);
  AllPairsSP sp(s);
  AllPairsData data = sp.data();
  data.pred[0 * data.m + 1] = 2;  // row 0: 1 -> 2 -> 1
  data.pred[0 * data.m + 2] = 1;
  std::stringstream ss;
  ASSERT_TRUE(save_snapshot(ss, s, &data).ok());
  Result<SnapshotPayload> p = load_snapshot(ss);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kCorruptSnapshot);
}

TEST(SnapshotSaveTest, MismatchedDataIsRejectedBySaver) {
  Scene a = gen_uniform(6, 13);
  Scene b = gen_uniform(8, 13);
  AllPairsSP sp(b);  // tables for b...
  std::ostringstream os;
  Status st = save_snapshot(os, a, &sp.data());  // ...claimed to be a's
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Sharded persistence (Engine::save with .shards + io/manifest.h): round-trips,
// then the negative battery — every way a shard set can be wrong must map
// to a precise StatusCode, and a failed mount never yields a partial
// engine (Result is all-or-nothing by construction).
// ---------------------------------------------------------------------------

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void put_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << bytes;
  ASSERT_TRUE(os.good()) << path;
}

// A fresh directory holding a saved k-shard set of `scene`; returns the
// manifest path.
std::string saved_shard_set(const std::string& name, const Scene& scene,
                            size_t k, size_t threads = 0) {
  std::string dir = ::testing::TempDir() + "/rsp_shardset_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Engine eng(Scene{scene}, {.backend = threads > 0 ? Backend::kAllPairsParallel
                                                   : Backend::kAllPairsSeq,
                            .num_threads = threads});
  std::string path = dir + "/set.man";
  Status st = eng.save(path, {.shards = k});
  EXPECT_TRUE(st.ok()) << st;
  return path;
}

TEST(ShardedSnapshotTest, MountedUnionIsQueryIdenticalForEveryShardCount) {
  Scene s = gen_uniform(6, 13);
  Engine direct(Scene{s}, {.backend = Backend::kAllPairsSeq});
  auto pairs = make_pairs(s, 24, 5);
  Result<std::vector<Length>> want = direct.lengths(pairs);
  ASSERT_TRUE(want.ok());
  for (size_t k : {size_t{1}, size_t{2}, size_t{3}, size_t{7}}) {
    std::string path = saved_shard_set("k" + std::to_string(k), s, k);
    Result<Engine> mounted = Engine::open(path, {});
    ASSERT_TRUE(mounted.ok()) << "k=" << k << ": " << mounted.status();
    Result<std::vector<Length>> got = mounted->lengths(pairs);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, *want) << "k=" << k;
    // Paths agree too (pred tables survived the row partition).
    Result<std::vector<Point>> p0 = mounted->path(pairs[0].s, pairs[0].t);
    Result<std::vector<Point>> p1 = direct.path(pairs[0].s, pairs[0].t);
    ASSERT_TRUE(p0.ok() && p1.ok());
    EXPECT_EQ(*p0, *p1);
  }
}

TEST(ShardedSnapshotTest, ShardCountClampsToRowsAndZeroIsMonolithic) {
  Scene s = gen_uniform(2, 13);  // m = 8 source rows
  Engine eng(Scene{s}, {.backend = Backend::kAllPairsSeq});
  std::string dir = ::testing::TempDir() + "/rsp_shardset_clamp";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  // .shards = 0 writes one monolithic snapshot, not a shard set.
  ASSERT_TRUE(eng.save(dir + "/mono.rsnap", {.shards = 0}).ok());
  EXPECT_FALSE(is_manifest_file(dir + "/mono.rsnap"));
  EXPECT_TRUE(Engine::open(dir + "/mono.rsnap", {}).ok());
  // A sharded save writes multiple files: meaningless on a stream.
  std::ostringstream os;
  EXPECT_EQ(eng.save(os, {.shards = 2}).code(), StatusCode::kInvalidQuery);
  ASSERT_TRUE(eng.save(dir + "/set.man", {.shards = 64}).ok());
  Result<ShardManifest> man = load_manifest(dir + "/set.man");
  ASSERT_TRUE(man.ok()) << man.status();
  // Clamped to one shard per *obstacle*, not per row: boundaries stay
  // 4-aligned so both candidate rows of any arbitrary-point query (two
  // corners of one obstacle, core/query.h) live on a single shard — the
  // invariant MountMode::kOwnedRows serving depends on.
  EXPECT_EQ(man->shards.size(), 2u);
  for (const ShardEntry& sh : man->shards) {
    EXPECT_EQ(sh.row_lo % 4, 0u) << sh.file;
    EXPECT_EQ(sh.row_hi % 4, 0u) << sh.file;
  }
  EXPECT_TRUE(Engine::open(dir + "/set.man", {}).ok());
}

TEST(ShardedSnapshotTest, BoundaryTreeEngineCannotShard) {
  Engine bt(gen_uniform(6, 13), {.backend = Backend::kBoundaryTree});
  std::string dir = ::testing::TempDir();
  EXPECT_EQ(bt.save(dir + "/rsp_bt.man", {.shards = 2}).code(),
            StatusCode::kSnapshotMismatch);
}

TEST(ShardedSnapshotTest, ParallelAndSerialShardWritesAreByteIdentical) {
  Scene s = gen_uniform(6, 13);
  std::string serial = saved_shard_set("serial", s, 3, 0);
  std::string parallel = saved_shard_set("parallel", s, 3, 4);
  EXPECT_EQ(file_bytes(serial), file_bytes(parallel));
  Result<ShardManifest> man = load_manifest(serial);
  ASSERT_TRUE(man.ok());
  for (const ShardEntry& sh : man->shards) {
    EXPECT_EQ(file_bytes(shard_file_path(serial, sh)),
              file_bytes(shard_file_path(parallel, sh)))
        << sh.file;
  }
}

TEST(ShardedSnapshotTest, MissingShardFileIsIoError) {
  Scene s = gen_uniform(6, 13);
  std::string path = saved_shard_set("missing", s, 3);
  Result<ShardManifest> man = load_manifest(path);
  ASSERT_TRUE(man.ok());
  std::filesystem::remove(shard_file_path(path, man->shards[1]));
  Result<Engine> r = Engine::open(path, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_NE(r.status().message().find("shard 1"), std::string::npos)
      << r.status();
}

TEST(ShardedSnapshotTest, TamperedShardPayloadIsCorrupt) {
  Scene s = gen_uniform(6, 13);
  std::string path = saved_shard_set("tampered", s, 3);
  Result<ShardManifest> man = load_manifest(path);
  ASSERT_TRUE(man.ok());
  std::string shard2 = shard_file_path(path, man->shards[2]);
  std::string bytes = file_bytes(shard2);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  put_file(shard2, bytes);
  Result<Engine> r = Engine::open(path, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptSnapshot);
}

TEST(ShardedSnapshotTest, SwappedButInternallyValidShardFailsTheManifestChecksum) {
  // The hard case: shard 0 replaced by a *self-consistent* shard file from
  // a different build. Its own checksum verifies; only the manifest's
  // recorded checksum can catch the swap.
  Scene a = gen_uniform(6, 13);
  Scene b = gen_uniform(6, 99);
  std::string pa = saved_shard_set("swap_a", a, 3);
  std::string pb = saved_shard_set("swap_b", b, 3);
  Result<ShardManifest> ma = load_manifest(pa);
  Result<ShardManifest> mb = load_manifest(pb);
  ASSERT_TRUE(ma.ok() && mb.ok());
  put_file(shard_file_path(pa, ma->shards[0]),
           file_bytes(shard_file_path(pb, mb->shards[0])));
  Result<Engine> r = Engine::open(pa, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptSnapshot);
  EXPECT_NE(r.status().message().find("shard 0"), std::string::npos)
      << r.status();
}

TEST(ShardedManifestTest, RowOverlapGapAndMixedKindsAreRejected) {
  ShardManifest man;
  man.num_obstacles = 6;
  man.m = 24;
  man.shards = {{"s0", SnapshotPayloadKind::kAllPairsShard, 0, 8, 0, 10, 1},
                {"s1", SnapshotPayloadKind::kAllPairsShard, 8, 16, 10, 20, 2},
                {"s2", SnapshotPayloadKind::kAllPairsShard, 16, 24, 20, 30, 3}};
  EXPECT_TRUE(validate_manifest(man).ok());

  ShardManifest overlap = man;
  overlap.shards[1].row_lo = 6;  // rows [6,16) overlap shard 0's [0,8)
  EXPECT_EQ(validate_manifest(overlap).code(), StatusCode::kCorruptSnapshot);

  ShardManifest gap = man;
  gap.shards[1].row_lo = 10;  // rows 8,9 owned by nobody
  EXPECT_EQ(validate_manifest(gap).code(), StatusCode::kCorruptSnapshot);

  ShardManifest short_cover = man;
  short_cover.shards[2].row_hi = 20;  // rows 20..23 never covered
  EXPECT_EQ(validate_manifest(short_cover).code(),
            StatusCode::kCorruptSnapshot);

  ShardManifest mixed = man;
  mixed.shards[1].kind = SnapshotPayloadKind::kAllPairs;
  EXPECT_EQ(validate_manifest(mixed).code(), StatusCode::kSnapshotMismatch);

  ShardManifest bad_slab = man;
  bad_slab.shards[1].x_lo = 25;  // slabs out of order
  bad_slab.shards[1].x_hi = 5;
  EXPECT_EQ(validate_manifest(bad_slab).code(), StatusCode::kCorruptSnapshot);

  // Slabs must tile contiguously: a gap leaves source coordinates owned by
  // no shard (route_by_x would silently skip them — load-bearing under
  // MountMode::kOwnedRows), an overlap routes one coordinate two ways.
  ShardManifest slab_gap = man;
  slab_gap.shards[1].x_lo = 12;  // x in [10,12) routes nowhere
  EXPECT_EQ(validate_manifest(slab_gap).code(), StatusCode::kCorruptSnapshot);

  ShardManifest slab_overlap = man;
  slab_overlap.shards[1].x_lo = 8;  // x in [8,10) claimed by shards 0 and 1
  EXPECT_EQ(validate_manifest(slab_overlap).code(),
            StatusCode::kCorruptSnapshot);

  // Empty slabs stay legal (k shards over a tiny x-span): contiguity, not
  // non-emptiness, is the requirement.
  ShardManifest empty_slab = man;
  empty_slab.shards[1].x_lo = 10;
  empty_slab.shards[1].x_hi = 10;
  empty_slab.shards[2].x_lo = 10;
  EXPECT_TRUE(validate_manifest(empty_slab).ok());
}

TEST(ShardedManifestTest, TextNegativesMapToPreciseCodes) {
  Scene s = gen_uniform(6, 13);
  std::string path = saved_shard_set("textneg", s, 3);
  const std::string good = file_bytes(path);

  {  // future format version
    std::istringstream is("RSPMANIFEST 2\n" + good.substr(good.find('\n') + 1));
    Result<ShardManifest> r = load_manifest(is);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kVersionMismatch);
  }
  {  // wrong magic
    std::istringstream is("RSPWRONG 1\nobstacles 6\n");
    EXPECT_EQ(load_manifest(is).status().code(), StatusCode::kCorruptSnapshot);
  }
  {  // a shard line whose kind this manifest version does not admit
    std::string txt = good;
    size_t at = txt.find(" all-pairs-shard ");
    ASSERT_NE(at, std::string::npos);
    txt.replace(at, std::string(" all-pairs-shard ").size(), " all-pairs ");
    std::istringstream is(txt);
    EXPECT_EQ(load_manifest(is).status().code(), StatusCode::kSnapshotMismatch);
  }
  {  // truncated: manifest promises 3 shard lines, delivers 2
    std::string txt = good.substr(0, good.rfind("shard 2"));
    std::istringstream is(txt);
    EXPECT_EQ(load_manifest(is).status().code(), StatusCode::kCorruptSnapshot);
  }
  {  // checksum text altered: mount must fail on the mismatch, and the
     // edited manifest must name the right shard
    std::string txt = good;
    size_t line_at = txt.find("shard 1 ");
    ASSERT_NE(line_at, std::string::npos);
    size_t eol = txt.find('\n', line_at);
    std::string line = txt.substr(line_at, eol - line_at);
    size_t sp = line.rfind(' ');
    std::string digits = line.substr(sp + 1);
    digits[0] = digits[0] == 'f' ? '0' : 'f';
    txt.replace(line_at, eol - line_at, line.substr(0, sp + 1) + digits);
    put_file(path, txt);
    Result<Engine> r = Engine::open(path, {});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruptSnapshot);
    EXPECT_NE(r.status().message().find("shard 1"), std::string::npos)
        << r.status();
  }
}

TEST(ShardedSnapshotTest, BareShardFileRefusesDirectOpen) {
  Scene s = gen_uniform(6, 13);
  std::string path = saved_shard_set("bare", s, 3);
  Result<ShardManifest> man = load_manifest(path);
  ASSERT_TRUE(man.ok());
  const std::string shard0 = shard_file_path(path, man->shards[0]);
  Result<Engine> by_path = Engine::open(shard0, {});
  ASSERT_FALSE(by_path.ok());
  EXPECT_EQ(by_path.status().code(), StatusCode::kSnapshotMismatch);
  std::ifstream is(shard0, std::ios::binary);
  Result<Engine> by_stream = Engine::open(is, {});
  ASSERT_FALSE(by_stream.ok());
  EXPECT_EQ(by_stream.status().code(), StatusCode::kSnapshotMismatch);
  EXPECT_NE(by_stream.status().message().find("manifest"), std::string::npos)
      << by_stream.status();
}

TEST(ShardedSnapshotTest, OwnedRowsMountAdoptsOneShardAndRefusesTheRest) {
  Scene s = gen_uniform(8, 13);
  std::string path = saved_shard_set("owned", s, 4);
  Result<ShardManifest> man = load_manifest(path);
  ASSERT_TRUE(man.ok());
  Engine direct(Scene{s}, {.backend = Backend::kAllPairsSeq});
  auto pairs = make_pairs(s, 24, 9);

  // Out-of-range shard index is a usage error, not a corrupt file.
  EXPECT_EQ(Engine::open(path, {.mount = MountMode::kOwnedRows,
                                .shard = man->shards.size()})
                .status()
                .code(),
            StatusCode::kInvalidQuery);

  for (size_t i = 0; i < man->shards.size(); ++i) {
    for (MapMode map : {MapMode::kEager, MapMode::kMmap}) {
      Result<Engine> own = Engine::open(
          path, {.map = map, .mount = MountMode::kOwnedRows, .shard = i});
      ASSERT_TRUE(own.ok()) << "shard " << i << ": " << own.status();
      const auto window = own->owned_rows();
      EXPECT_EQ(window.first, man->shards[i].row_lo);
      EXPECT_EQ(window.second, man->shards[i].row_hi);
      // Every pair either matches the oracle exactly or refuses with
      // kNotOwner naming the owned window — never a wrong value.
      size_t answered = 0;
      for (const PointPair& pp : pairs) {
        Result<Length> got = own->length(pp.s, pp.t);
        Result<Length> want = direct.length(pp.s, pp.t);
        if (got.ok()) {
          ASSERT_TRUE(want.ok());
          EXPECT_EQ(*got, *want);
          ++answered;
        } else {
          EXPECT_EQ(got.status().code(), StatusCode::kNotOwner)
              << got.status();
          EXPECT_EQ(got.status().message(),
                    std::to_string(window.first) + " " +
                        std::to_string(window.second));
        }
      }
      // The partition is real: this shard answers some pairs, not all.
      EXPECT_GT(answered, 0u) << "shard " << i << " (" << (map == MapMode::kMmap ? "mmap" : "eager") << ")";
      EXPECT_LT(answered, pairs.size());
      // A partial engine must refuse to save: a snapshot of a window would
      // silently masquerade as the full table.
      std::ostringstream os;
      EXPECT_EQ(own->save(os, {}).code(), StatusCode::kSnapshotMismatch);
    }
  }
}

TEST(ShardedSnapshotTest, ManifestMountRejectsNonRowPartitionableBackends) {
  Scene s = gen_uniform(6, 13);
  std::string path = saved_shard_set("backend", s, 3);
  EXPECT_EQ(Engine::open(path, {.engine = {.backend = Backend::kBoundaryTree}})
                .status()
                .code(),
            StatusCode::kSnapshotMismatch);
  EXPECT_EQ(Engine::open(path, {.engine = {.backend = Backend::kDijkstraBaseline}})
                .status()
                .code(),
            StatusCode::kSnapshotMismatch);
  // The all-pairs backends (and kAuto) all mount.
  EXPECT_TRUE(Engine::open(path, {.engine = {.backend = Backend::kAllPairsSeq}}).ok());
  EXPECT_TRUE(
      Engine::open(path, {.engine = {.backend = Backend::kAllPairsParallel, .num_threads = 2}})
          .ok());
}

}  // namespace
}  // namespace rsp
