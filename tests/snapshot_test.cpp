// Snapshot persistence (io/snapshot.h + Engine::save/open): round-trips
// over every generator asserting bit-identical query results against the
// engine the snapshot was saved from, plus negative tests — truncation,
// bad magic, wrong version, corrupted payload, backend/payload mismatch —
// each rejected with the precise StatusCode and no UB.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/engine.h"
#include "core/query.h"
#include "io/gen.h"
#include "io/snapshot.h"

namespace rsp {
namespace {

std::vector<PointPair> make_pairs(const Scene& scene, size_t count,
                                  uint64_t seed) {
  auto pts = random_free_points(scene, 2 * count, seed);
  std::vector<PointPair> pairs;
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    pairs.push_back({pts[i], pts[i + 1]});
  }
  return pairs;
}

std::string snapshot_bytes(const Engine& eng) {
  std::ostringstream os;
  Status st = eng.save(os);
  EXPECT_TRUE(st.ok()) << st;
  return os.str();
}

// ---------------------------------------------------------------------------
// Round-trip over every generator: the loaded engine is indistinguishable
// from the one it was saved from.
// ---------------------------------------------------------------------------

class SnapshotRoundTripTest : public ::testing::TestWithParam<NamedGen> {};

TEST_P(SnapshotRoundTripTest, LengthsAndPathsBitIdentical) {
  Scene s = GetParam().fn(14, 41);
  Engine built(s, {.backend = Backend::kAllPairsSeq});
  std::string bytes = snapshot_bytes(built);

  std::istringstream is(bytes);
  Result<Engine> loaded = Engine::open(is, {.backend = Backend::kAllPairsSeq});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->built());
  EXPECT_EQ(loaded->scene().num_obstacles(), s.num_obstacles());

  // Vertex-to-vertex: the full V_R matrix must match entry for entry.
  const AllPairsSP* a = built.all_pairs();
  const AllPairsSP* b = loaded->all_pairs();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->num_vertices(), b->num_vertices());
  EXPECT_TRUE(a->data().dist == b->data().dist) << GetParam().name;
  EXPECT_EQ(a->data().pred, b->data().pred) << GetParam().name;
  EXPECT_EQ(a->data().pass, b->data().pass) << GetParam().name;

  // Arbitrary-point queries, straight through the facade.
  auto pairs = make_pairs(s, 12, 7);
  auto lens0 = built.lengths(pairs);
  auto lens1 = loaded->lengths(pairs);
  ASSERT_TRUE(lens0.ok()) << lens0.status();
  ASSERT_TRUE(lens1.ok()) << lens1.status();
  EXPECT_EQ(*lens0, *lens1) << GetParam().name;

  auto paths0 = built.paths(pairs);
  auto paths1 = loaded->paths(pairs);
  ASSERT_TRUE(paths0.ok()) << paths0.status();
  ASSERT_TRUE(paths1.ok()) << paths1.status();
  EXPECT_EQ(*paths0, *paths1) << GetParam().name;
}

TEST_P(SnapshotRoundTripTest, LoadedEngineServesBatchOverScheduler) {
  Scene s = GetParam().fn(10, 3);
  Engine built(s, {.backend = Backend::kAllPairsSeq});
  std::string bytes = snapshot_bytes(built);

  std::istringstream is(bytes);
  Result<Engine> loaded = Engine::open(is, {.num_threads = 4});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_threads(), 4u);

  auto pairs = make_pairs(s, 16, 11);
  auto lens0 = built.lengths(pairs);
  auto lens1 = loaded->lengths(pairs);
  ASSERT_TRUE(lens1.ok()) << lens1.status();
  EXPECT_EQ(*lens0, *lens1);
}

INSTANTIATE_TEST_SUITE_P(AllGens, SnapshotRoundTripTest,
                         ::testing::ValuesIn(kAllGens),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------------
// File-path round trip and IO errors.
// ---------------------------------------------------------------------------

TEST(SnapshotFileTest, SaveOpenThroughFilesystem) {
  Scene s = gen_uniform(8, 9);
  Engine built(s, {});
  std::string path = ::testing::TempDir() + "/rsp_snapshot_test.rsnap";
  ASSERT_TRUE(built.save(path).ok());

  Result<Engine> loaded = Engine::open(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto pairs = make_pairs(s, 4, 2);
  EXPECT_EQ(*built.lengths(pairs), *loaded->lengths(pairs));
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, MissingFileIsIoError) {
  Result<Engine> r = Engine::open("/nonexistent/dir/x.rsnap");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(SnapshotFileTest, UnwritablePathIsIoError) {
  Engine eng(gen_uniform(6, 1), {});
  Status st = eng.save("/nonexistent/dir/x.rsnap");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Malformed input. Every case must return the precise StatusCode; none may
// crash, throw, or return a usable engine.
// ---------------------------------------------------------------------------

class SnapshotNegativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine eng(gen_uniform(6, 13), {});
    bytes_ = snapshot_bytes(eng);
  }

  StatusCode open_code(const std::string& bytes) {
    std::istringstream is(bytes);
    Result<Engine> r = Engine::open(is);
    EXPECT_FALSE(r.ok());
    return r.ok() ? StatusCode::kOk : r.status().code();
  }

  std::string bytes_;
};

TEST_F(SnapshotNegativeTest, TruncatedAtEveryRegionIsCorrupt) {
  // Cut inside the magic, the header, the scene section, the tables, and
  // the checksum — every prefix must come back kCorruptSnapshot.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{13}, size_t{40},
                     bytes_.size() / 2, bytes_.size() - 9, bytes_.size() - 1}) {
    ASSERT_LT(cut, bytes_.size());
    EXPECT_EQ(open_code(bytes_.substr(0, cut)), StatusCode::kCorruptSnapshot)
        << "cut at " << cut;
  }
}

TEST_F(SnapshotNegativeTest, BadMagicIsCorrupt) {
  std::string b = bytes_;
  b[0] = 'X';
  EXPECT_EQ(open_code(b), StatusCode::kCorruptSnapshot);
}

TEST_F(SnapshotNegativeTest, WrongVersionIsVersionMismatch) {
  std::string b = bytes_;
  b[8] = static_cast<char>(kSnapshotFormatVersion + 1);  // version u32 LSB
  EXPECT_EQ(open_code(b), StatusCode::kVersionMismatch);
}

TEST_F(SnapshotNegativeTest, UnknownPayloadKindIsCorrupt) {
  std::string b = bytes_;
  b[12] = 7;  // payload kind byte
  EXPECT_EQ(open_code(b), StatusCode::kCorruptSnapshot);
}

TEST_F(SnapshotNegativeTest, FlippedPayloadByteIsCorrupt) {
  // Deep inside the dist matrix: the table decodes fine, the checksum
  // catches the damage.
  std::string b = bytes_;
  b[b.size() / 2] ^= 0x5a;
  EXPECT_EQ(open_code(b), StatusCode::kCorruptSnapshot);
}

TEST_F(SnapshotNegativeTest, FlippedChecksumIsCorrupt) {
  std::string b = bytes_;
  b[b.size() - 1] ^= 0x01;
  EXPECT_EQ(open_code(b), StatusCode::kCorruptSnapshot);
}

TEST_F(SnapshotNegativeTest, GarbageIsCorruptNotUB) {
  std::string b(1024, '\x7f');
  EXPECT_EQ(open_code(b), StatusCode::kCorruptSnapshot);
}

// ---------------------------------------------------------------------------
// Backend/payload mismatch.
// ---------------------------------------------------------------------------

TEST(SnapshotMismatchTest, SceneOnlySnapshotRejectsAllPairsBackend) {
  // A structure-free engine saves a scene-only snapshot...
  Engine dij(gen_uniform(6, 13), {.backend = Backend::kDijkstraBaseline});
  std::string bytes;
  {
    std::ostringstream os;
    ASSERT_TRUE(dij.save(os).ok());
    bytes = os.str();
  }
  {
    std::istringstream is(bytes);
    Result<SnapshotInfo> info = read_snapshot_info(is);
    ASSERT_TRUE(info.ok()) << info.status();
    EXPECT_EQ(info->kind, SnapshotPayloadKind::kSceneOnly);
  }
  // ...which cannot serve an all-pairs backend without a rebuild...
  {
    std::istringstream is(bytes);
    Result<Engine> r = Engine::open(is, {.backend = Backend::kAllPairsSeq});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kSnapshotMismatch);
  }
  // ...but reopens fine as the baseline it was saved from.
  {
    std::istringstream is(bytes);
    Result<Engine> r =
        Engine::open(is, {.backend = Backend::kDijkstraBaseline});
    ASSERT_TRUE(r.ok()) << r.status();
    auto pairs = make_pairs(r->scene(), 2, 5);
    auto d = r->lengths(pairs);
    ASSERT_TRUE(d.ok()) << d.status();
  }
}

TEST(SnapshotMismatchTest, AllPairsSnapshotServesDijkstraToo) {
  // The scene section alone is enough for the structure-free backend.
  Engine built(gen_uniform(6, 13), {});
  std::string bytes = snapshot_bytes(built);
  std::istringstream is(bytes);
  Result<Engine> r = Engine::open(is, {.backend = Backend::kDijkstraBaseline});
  ASSERT_TRUE(r.ok()) << r.status();
  auto pairs = make_pairs(built.scene(), 4, 19);
  EXPECT_EQ(*built.lengths(pairs), *r->lengths(pairs));
}

// ---------------------------------------------------------------------------
// Introspection and save() edge cases.
// ---------------------------------------------------------------------------

TEST(SnapshotInfoTest, ReportsSizesWithoutLoadingTables) {
  Engine eng(gen_grid(9, 5), {});
  std::string bytes = snapshot_bytes(eng);
  std::istringstream is(bytes);
  Result<SnapshotInfo> info = read_snapshot_info(is);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->format_version, kSnapshotFormatVersion);
  EXPECT_EQ(info->kind, SnapshotPayloadKind::kAllPairs);
  EXPECT_EQ(info->num_obstacles, eng.scene().num_obstacles());
  EXPECT_EQ(info->num_vertices, 4 * eng.scene().num_obstacles());
}

TEST(SnapshotSaveTest, LazyEngineSaveForcesTheBuild) {
  Engine eng(gen_uniform(8, 21), {.lazy_build = true});
  EXPECT_FALSE(eng.built());
  std::string bytes = snapshot_bytes(eng);  // save() must warm up first
  EXPECT_TRUE(eng.built());
  std::istringstream is(bytes);
  Result<Engine> r = Engine::open(is);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->built());
}

TEST(SnapshotStreamTest, InfoThenLoadOnOneStreamComposes) {
  // read_snapshot_info is a pure peek on a seekable stream: the same
  // stream then loads from the snapshot's start without rewinding by hand.
  Engine eng(gen_uniform(6, 13), {});
  std::stringstream ss;
  ASSERT_TRUE(eng.save(ss).ok());
  Result<SnapshotInfo> info = read_snapshot_info(ss);
  ASSERT_TRUE(info.ok()) << info.status();
  Result<Engine> r = Engine::open(ss);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->scene().num_obstacles(), info->num_obstacles);
}

TEST(SnapshotStreamTest, BackToBackSnapshotsInOneStreamCompose) {
  // load_snapshot must leave a seekable stream just past the footer, not
  // wherever its read-ahead buffer stopped.
  Engine a(gen_uniform(6, 13), {});
  Engine b(gen_grid(9, 5), {});
  std::stringstream ss;
  ASSERT_TRUE(a.save(ss).ok());
  ASSERT_TRUE(b.save(ss).ok());
  Result<Engine> ra = Engine::open(ss);
  ASSERT_TRUE(ra.ok()) << ra.status();
  Result<Engine> rb = Engine::open(ss);
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(ra->scene().num_obstacles(), a.scene().num_obstacles());
  EXPECT_EQ(rb->scene().num_obstacles(), b.scene().num_obstacles());
}

TEST(SnapshotNegativeCraftedTest, CyclicPredTableIsCorruptNotAHang) {
  // A crafted snapshot can carry a valid (non-cryptographic) checksum yet
  // hold a pred cycle that would hang the §8 path walk. The loader must
  // reject it, not hand it to SpTrees.
  Scene s = gen_uniform(6, 13);
  AllPairsSP sp(s);
  AllPairsData data = sp.data();
  data.pred[0 * data.m + 1] = 2;  // row 0: 1 -> 2 -> 1
  data.pred[0 * data.m + 2] = 1;
  std::stringstream ss;
  ASSERT_TRUE(save_snapshot(ss, s, &data).ok());
  Result<SnapshotPayload> p = load_snapshot(ss);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kCorruptSnapshot);
}

TEST(SnapshotSaveTest, MismatchedDataIsRejectedBySaver) {
  Scene a = gen_uniform(6, 13);
  Scene b = gen_uniform(8, 13);
  AllPairsSP sp(b);  // tables for b...
  std::ostringstream os;
  Status st = save_snapshot(os, a, &sp.data());  // ...claimed to be a's
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace rsp
