// Arbitrary-point queries (paper §6.4): length() and path() through the
// two-level reduction, against the oracle — driven through the rsp::Engine
// facade (backend cross-validation lives in engine_test.cpp).

#include <gtest/gtest.h>

#include "api/engine.h"
#include "baseline/dijkstra.h"
#include "core/query.h"
#include "io/gen.h"

namespace rsp {
namespace {

Length polyline_len(const std::vector<Point>& p) {
  Length s = 0;
  for (size_t i = 0; i + 1 < p.size(); ++i) s += dist1(p[i], p[i + 1]);
  return s;
}

TEST(Query, VertexPairsMatchMatrix) {
  Scene s = gen_uniform(12, 4);
  Engine eng(s);
  const AllPairsSP* sp = eng.all_pairs();
  ASSERT_NE(sp, nullptr);
  const auto& v = s.obstacle_vertices();
  for (size_t a = 0; a < v.size(); a += 3) {
    for (size_t b = 0; b < v.size(); b += 5) {
      EXPECT_EQ(*eng.length(v[a], v[b]), sp->vertex_length(a, b));
    }
  }
}

class QueryOracleTest : public ::testing::TestWithParam<NamedGen> {};

TEST_P(QueryOracleTest, ArbitraryPointLengthsMatchOracle) {
  for (uint64_t seed : {2u, 8u}) {
    Scene s = GetParam().fn(14, seed);
    Engine eng(s);
    auto pts = random_free_points(s, 12, seed + 100);
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        auto got = eng.length(pts[i], pts[j]);
        ASSERT_TRUE(got.ok()) << got.status();
        ASSERT_EQ(*got, oracle_length(s, pts[i], pts[j]))
            << GetParam().name << " seed=" << seed << " " << pts[i] << " -> "
            << pts[j];
      }
    }
  }
}

TEST_P(QueryOracleTest, MixedVertexArbitraryMatchOracle) {
  Scene s = GetParam().fn(10, 3);
  Engine eng(s);
  auto pts = random_free_points(s, 6, 77);
  const auto& verts = s.obstacle_vertices();
  for (size_t a = 0; a < verts.size(); a += 4) {
    for (const auto& p : pts) {
      ASSERT_EQ(*eng.length(verts[a], p), oracle_length(s, verts[a], p))
          << GetParam().name;
      ASSERT_EQ(*eng.length(p, verts[a]), oracle_length(s, p, verts[a]))
          << GetParam().name;
    }
  }
}

TEST_P(QueryOracleTest, PathsAreValidTightAndEndToEnd) {
  Scene s = GetParam().fn(12, 6);
  Engine eng(s);
  auto pts = random_free_points(s, 8, 5);
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const Point& a = pts[i];
    const Point& b = pts[i + 1];
    auto path = eng.path(a, b);
    ASSERT_TRUE(path.ok()) << path.status();
    ASSERT_GE(path->size(), 1u);
    EXPECT_EQ(path->front(), a) << GetParam().name;
    EXPECT_EQ(path->back(), b) << GetParam().name;
    EXPECT_TRUE(s.path_free(*path)) << GetParam().name;
    EXPECT_EQ(polyline_len(*path), *eng.length(a, b)) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGens, QueryOracleTest,
                         ::testing::ValuesIn(kAllGens),
                         [](const auto& info) { return info.param.name; });

TEST(Query, SamePointIsZero) {
  Scene s = gen_uniform(5, 1);
  Engine eng(s);
  auto pts = random_free_points(s, 3, 2);
  for (const auto& p : pts) {
    EXPECT_EQ(*eng.length(p, p), 0);
    EXPECT_EQ(*eng.path(p, p), std::vector<Point>{p});
  }
}

TEST(Query, RejectsBlockedPoints) {
  Scene s = Scene::with_bbox({{0, 0, 10, 10}});
  Engine eng(s);
  auto r = eng.length({5, 5}, {20, 20});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidQuery);
}

TEST(Query, SymmetryOnArbitraryPairs) {
  Scene s = gen_clustered(12, 9);
  Engine eng(s);
  auto pts = random_free_points(s, 10, 3);
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    EXPECT_EQ(*eng.length(pts[i], pts[i + 1]), *eng.length(pts[i + 1], pts[i]));
  }
}

TEST(Query, PointsOnObstacleEdgesWork) {
  // Boundary (non-vertex) points on obstacle edges are valid query points.
  Scene s = Scene::with_bbox({{0, 0, 6, 4}, {10, 7, 15, 20}});
  Engine eng(s);
  Point on_edge{3, 4};    // top edge of rect 0
  Point on_edge2{10, 9};  // left edge of rect 1
  EXPECT_EQ(*eng.length(on_edge, on_edge2),
            oracle_length(s, on_edge, on_edge2));
  auto path = eng.path(on_edge, on_edge2);
  ASSERT_TRUE(path.ok()) << path.status();
  EXPECT_TRUE(s.path_free(*path));
  EXPECT_EQ(polyline_len(*path), *eng.length(on_edge, on_edge2));
}

// The implementation layer stays exercised directly: an internally-built
// parallel pool (Options::num_threads) matches the sequential build.
TEST(Query, AllPairsSPInternalPoolMatchesSequential) {
  Scene s = gen_uniform(10, 12);
  AllPairsSP seq{Scene{s}};
  AllPairsSP par(Scene{s}, AllPairsSP::Options{.num_threads = 4});
  for (size_t a = 0; a < seq.num_vertices(); a += 3) {
    for (size_t b = 0; b < seq.num_vertices(); b += 2) {
      EXPECT_EQ(seq.vertex_length(a, b), par.vertex_length(a, b));
    }
  }
}

}  // namespace
}  // namespace rsp
