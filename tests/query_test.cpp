// Arbitrary-point queries (paper §6.4): length() and path() through the
// two-level reduction, against the oracle.

#include <gtest/gtest.h>

#include "baseline/dijkstra.h"
#include "core/query.h"
#include "io/gen.h"

namespace rsp {
namespace {

Length polyline_len(const std::vector<Point>& p) {
  Length s = 0;
  for (size_t i = 0; i + 1 < p.size(); ++i) s += dist1(p[i], p[i + 1]);
  return s;
}

TEST(Query, VertexPairsMatchMatrix) {
  Scene s = gen_uniform(12, 4);
  AllPairsSP sp(s);
  const auto& v = s.obstacle_vertices();
  for (size_t a = 0; a < v.size(); a += 3) {
    for (size_t b = 0; b < v.size(); b += 5) {
      EXPECT_EQ(sp.length(v[a], v[b]), sp.vertex_length(a, b));
    }
  }
}

class QueryOracleTest : public ::testing::TestWithParam<NamedGen> {};

TEST_P(QueryOracleTest, ArbitraryPointLengthsMatchOracle) {
  for (uint64_t seed : {2u, 8u}) {
    Scene s = GetParam().fn(14, seed);
    AllPairsSP sp(s);
    auto pts = random_free_points(s, 12, seed + 100);
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        ASSERT_EQ(sp.length(pts[i], pts[j]),
                  oracle_length(s, pts[i], pts[j]))
            << GetParam().name << " seed=" << seed << " " << pts[i] << " -> "
            << pts[j];
      }
    }
  }
}

TEST_P(QueryOracleTest, MixedVertexArbitraryMatchOracle) {
  Scene s = GetParam().fn(10, 3);
  AllPairsSP sp(s);
  auto pts = random_free_points(s, 6, 77);
  const auto& verts = s.obstacle_vertices();
  for (size_t a = 0; a < verts.size(); a += 4) {
    for (const auto& p : pts) {
      ASSERT_EQ(sp.length(verts[a], p), oracle_length(s, verts[a], p))
          << GetParam().name;
      ASSERT_EQ(sp.length(p, verts[a]), oracle_length(s, p, verts[a]))
          << GetParam().name;
    }
  }
}

TEST_P(QueryOracleTest, PathsAreValidTightAndEndToEnd) {
  Scene s = GetParam().fn(12, 6);
  AllPairsSP sp(s);
  auto pts = random_free_points(s, 8, 5);
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const Point& a = pts[i];
    const Point& b = pts[i + 1];
    auto path = sp.path(a, b);
    ASSERT_GE(path.size(), 1u);
    EXPECT_EQ(path.front(), a) << GetParam().name;
    EXPECT_EQ(path.back(), b) << GetParam().name;
    EXPECT_TRUE(s.path_free(path)) << GetParam().name;
    EXPECT_EQ(polyline_len(path), sp.length(a, b)) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGens, QueryOracleTest,
                         ::testing::ValuesIn(kAllGens),
                         [](const auto& info) { return info.param.name; });

TEST(Query, SamePointIsZero) {
  Scene s = gen_uniform(5, 1);
  AllPairsSP sp(s);
  auto pts = random_free_points(s, 3, 2);
  for (const auto& p : pts) {
    EXPECT_EQ(sp.length(p, p), 0);
    EXPECT_EQ(sp.path(p, p), std::vector<Point>{p});
  }
}

TEST(Query, RejectsBlockedPoints) {
  Scene s = Scene::with_bbox({{0, 0, 10, 10}});
  AllPairsSP sp(s);
  EXPECT_THROW(sp.length({5, 5}, {20, 20}), std::logic_error);
}

TEST(Query, SymmetryOnArbitraryPairs) {
  Scene s = gen_clustered(12, 9);
  AllPairsSP sp(s);
  auto pts = random_free_points(s, 10, 3);
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    EXPECT_EQ(sp.length(pts[i], pts[i + 1]), sp.length(pts[i + 1], pts[i]));
  }
}

TEST(Query, PointsOnObstacleEdgesWork) {
  // Boundary (non-vertex) points on obstacle edges are valid query points.
  Scene s = Scene::with_bbox({{0, 0, 6, 4}, {10, 7, 15, 20}});
  AllPairsSP sp(s);
  Point on_edge{3, 4};   // top edge of rect 0
  Point on_edge2{10, 9};  // left edge of rect 1
  EXPECT_EQ(sp.length(on_edge, on_edge2), oracle_length(s, on_edge, on_edge2));
  auto path = sp.path(on_edge, on_edge2);
  EXPECT_TRUE(s.path_free(path));
  EXPECT_EQ(polyline_len(path), sp.length(on_edge, on_edge2));
}

}  // namespace
}  // namespace rsp
