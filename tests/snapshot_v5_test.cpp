// Snapshot format v5 (io/snapshot.h): the mmap fast path and the
// cross-version compatibility matrix.
//
//  - fixtures written at every format version v1..v5 (the writer can pin
//    format_version) load and answer identically to the engine they were
//    saved from, through both the eager decoder and load_snapshot_mapped
//    (which falls back to eager decode for pre-v5 files);
//  - an mmap-opened engine is query-for-query identical to an eager open
//    over every generator, and reports its adopted tables as mapped bytes;
//  - the delta dist encoding round-trips exactly, including kInf rows;
//  - truncated and tampered v5 files are rejected with kCorruptSnapshot
//    before any adopted table is served.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "backend/boundary_tree.h"
#include "common.h"
#include "core/query.h"
#include "io/gen.h"
#include "io/snapshot.h"

namespace rsp {
namespace {

std::vector<PointPair> make_pairs(const Scene& scene, size_t count,
                                  uint64_t seed) {
  auto pts = random_free_points(scene, 2 * count, seed);
  std::vector<PointPair> pairs;
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    pairs.push_back({pts[i], pts[i + 1]});
  }
  return pairs;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/rsp_v5_" + name;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

// ---------------------------------------------------------------------------
// Cross-version load matrix: every version this build can write must load
// through every read path and answer identically.
// ---------------------------------------------------------------------------

TEST(SnapshotV5Test, AllPairsFixturesLoadAtEveryVersion) {
  Scene s = gen_uniform(10, 23);
  Engine built(Scene{s}, {.backend = Backend::kAllPairsSeq});
  const AllPairsSP* sp = built.all_pairs();
  ASSERT_NE(sp, nullptr);
  auto pairs = make_pairs(s, 10, 5);
  auto want = built.lengths(pairs);
  ASSERT_TRUE(want.ok());

  struct Fixture {
    uint32_t version;
    bool delta;
  };
  for (const Fixture f : {Fixture{1, true}, Fixture{2, true}, Fixture{3, true},
                          Fixture{4, true}, Fixture{5, true},
                          Fixture{5, false}}) {
    SCOPED_TRACE("v" + std::to_string(f.version) +
                 (f.delta ? "/delta" : "/raw"));
    std::ostringstream os;
    ASSERT_TRUE(save_snapshot(os, s, &sp->data(),
                              SnapshotSaveOptions{.delta_encode = f.delta,
                                                  .format_version = f.version})
                    .ok());
    const std::string bytes = os.str();
    ASSERT_EQ(static_cast<uint8_t>(bytes[8]), f.version);

    // Stream (eager) open.
    std::istringstream is(bytes);
    Result<Engine> eager = Engine::open(is, {});
    ASSERT_TRUE(eager.ok()) << eager.status();
    EXPECT_EQ(*eager->lengths(pairs), *want);

    // Path open, eager and mapped (pre-v5 maps fall back to eager decode).
    const std::string path =
        temp_path("matrix_v" + std::to_string(f.version) +
                  (f.delta ? "d" : "r") + ".rsnap");
    write_file(path, bytes);
    for (MapMode mode : {MapMode::kEager, MapMode::kMmap}) {
      Result<Engine> r = Engine::open(path, {.map = mode});
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(*r->lengths(pairs), *want);
      EXPECT_EQ(*r->paths(pairs), *built.paths(pairs));
    }
    std::remove(path.c_str());
  }
}

TEST(SnapshotV5Test, BoundaryTreeFixturesLoadAtEveryVersion) {
  Scene s = gen_uniform(12, 31);
  Engine built(Scene{s}, {.backend = Backend::kBoundaryTree});
  const BoundaryTreeSP* bt = built.boundary_tree();
  ASSERT_NE(bt, nullptr);
  auto pairs = make_pairs(s, 8, 9);
  auto want = built.lengths(pairs);
  ASSERT_TRUE(want.ok());

  // v2 writes dense port matrices, v3/v4 the Monge-compressed parts, v5
  // the indexed layout; the tree blob has no flat tables, so the mapped
  // open decodes eagerly from the mapping for every version.
  for (uint32_t version : {2u, 3u, 4u, 5u}) {
    SCOPED_TRACE("v" + std::to_string(version));
    std::ostringstream os;
    ASSERT_TRUE(save_snapshot(os, s, bt->tree(),
                              SnapshotSaveOptions{.format_version = version})
                    .ok());
    const std::string path =
        temp_path("tree_v" + std::to_string(version) + ".rsnap");
    write_file(path, os.str());
    for (MapMode mode : {MapMode::kEager, MapMode::kMmap}) {
      Result<Engine> r =
          Engine::open(path, {.engine = {.backend = Backend::kBoundaryTree},
                              .map = mode});
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(*r->lengths(pairs), *want);
    }
    std::remove(path.c_str());
  }
}

TEST(SnapshotV5Test, ShardFixtureAtV4MatchesV5) {
  Scene s = gen_uniform(4, 7);
  Engine built(Scene{s}, {.backend = Backend::kAllPairsSeq});
  const AllPairsData& data = built.all_pairs()->data();
  const size_t m = data.m;
  AllPairsShardView v;
  v.m = m;
  v.row_lo = 2;
  v.row_hi = 10;
  v.dist = data.dist.data() + v.row_lo * m;
  v.pred = data.pred_data() + v.row_lo * m;
  v.pass = data.pass_data() + v.row_lo * m;

  std::optional<AllPairsShardData> got[2];
  uint32_t versions[2] = {4, 5};
  for (int i = 0; i < 2; ++i) {
    std::ostringstream os;
    ASSERT_TRUE(save_snapshot(os, s, v, nullptr,
                              SnapshotSaveOptions{.format_version =
                                                      versions[i]})
                    .ok());
    std::istringstream is(os.str());
    Result<SnapshotPayload> p = load_snapshot(is);
    ASSERT_TRUE(p.ok()) << "v" << versions[i] << ": " << p.status();
    ASSERT_TRUE(p->shard.has_value());
    got[i] = std::move(*p->shard);
  }
  ASSERT_EQ(got[0]->rows(), got[1]->rows());
  const size_t cnt = got[0]->rows() * m;
  EXPECT_TRUE(std::equal(got[0]->dist_data(), got[0]->dist_data() + cnt,
                         got[1]->dist_data()));
  EXPECT_TRUE(std::equal(got[0]->pred_data(), got[0]->pred_data() + cnt,
                         got[1]->pred_data()));
  EXPECT_TRUE(std::equal(got[0]->pass_data(), got[0]->pass_data() + cnt,
                         got[1]->pass_data()));
}

TEST(SnapshotV5Test, WriterRejectsVersionsBelowAKindsIntroduction) {
  Scene s = gen_uniform(4, 7);
  Engine ap(Scene{s}, {.backend = Backend::kAllPairsSeq});
  Engine bt(Scene{s}, {.backend = Backend::kBoundaryTree});
  std::ostringstream os;
  EXPECT_FALSE(save_snapshot(os, s, bt.boundary_tree()->tree(),
                             SnapshotSaveOptions{.format_version = 1})
                   .ok());
  const AllPairsData& data = ap.all_pairs()->data();
  AllPairsShardView v;
  v.m = data.m;
  v.row_lo = 0;
  v.row_hi = data.m;
  v.dist = data.dist.data();
  v.pred = data.pred_data();
  v.pass = data.pass_data();
  EXPECT_FALSE(save_snapshot(os, s, v, nullptr,
                             SnapshotSaveOptions{.format_version = 3})
                   .ok());
}

// ---------------------------------------------------------------------------
// Mapped open == eager open, over every generator.
// ---------------------------------------------------------------------------

class MmapVsEagerTest : public ::testing::TestWithParam<NamedGen> {};

TEST_P(MmapVsEagerTest, QueriesAndTablesAreIdentical) {
  Scene s = GetParam().fn(12, 17);
  Engine built(Scene{s}, {.backend = Backend::kAllPairsSeq});
  const std::string path =
      temp_path(std::string("gen_") + GetParam().name + ".rsnap");
  ASSERT_TRUE(built.save(path, {}).ok());

  Result<Engine> eager = Engine::open(path, {});
  Result<Engine> mapped = Engine::open(path, {.map = MapMode::kMmap});
  ASSERT_TRUE(eager.ok()) << eager.status();
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  // The adopted tables are bit-identical to the decoded ones.
  const AllPairsData& de = eager->all_pairs()->data();
  const AllPairsData& dm = mapped->all_pairs()->data();
  ASSERT_EQ(de.m, dm.m);
  EXPECT_TRUE(de.dist == dm.dist);
  const size_t mm = de.m * de.m;
  EXPECT_TRUE(std::equal(de.pred_data(), de.pred_data() + mm, dm.pred_data()));
  EXPECT_TRUE(std::equal(de.pass_data(), de.pass_data() + mm, dm.pass_data()));

  // Queries through the facade agree, lengths and full polylines.
  auto pairs = make_pairs(s, 12, 3);
  EXPECT_EQ(*eager->lengths(pairs), *mapped->lengths(pairs));
  EXPECT_EQ(*eager->paths(pairs), *mapped->paths(pairs));

  // The delta-encoded default adopts pred + pass in place (dist decodes
  // into owned storage); the eager engine maps nothing.
  EXPECT_EQ(eager->memory_breakdown().mapped_bytes, 0u);
  EXPECT_EQ(mapped->memory_breakdown().mapped_bytes,
            mm * (sizeof(int32_t) + sizeof(int8_t)));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllGens, MmapVsEagerTest, ::testing::ValuesIn(kAllGens),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(SnapshotV5Test, RawSnapshotAdoptsAllThreeTables) {
  Scene s = gen_uniform(8, 11);
  Engine built(Scene{s}, {});
  const std::string path = temp_path("raw_adopt.rsnap");
  ASSERT_TRUE(built.save(path, {.delta_encode = false}).ok());
  Result<Engine> mapped = Engine::open(path, {.map = MapMode::kMmap});
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  const size_t m = mapped->all_pairs()->data().m;
  EXPECT_EQ(mapped->memory_breakdown().mapped_bytes,
            m * m * (sizeof(Length) + sizeof(int32_t) + sizeof(int8_t)));
  auto pairs = make_pairs(s, 6, 2);
  EXPECT_EQ(*built.lengths(pairs), *mapped->lengths(pairs));
  std::remove(path.c_str());
}

TEST(SnapshotV5Test, UnionMmapMountSumsMappedBytesAcrossShards) {
  // Regression: a manifest union mount that mmaps each shard file used to
  // report only the *last* shard's mapping in memory_breakdown() — the
  // per-shard sums were overwritten, not accumulated, so a 3-shard fleet
  // looked 3x cheaper than it was in STATS and the stats JSON.
  Scene s = gen_uniform(9, 31);
  Engine built(Scene{s}, {.backend = Backend::kAllPairsSeq});
  const std::string dir = temp_path("union_mmap_set");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/set.man";
  ASSERT_TRUE(built.save(path, {.shards = 3}).ok());

  Result<Engine> eager = Engine::open(path, {});
  Result<Engine> mapped = Engine::open(path, {.map = MapMode::kMmap});
  ASSERT_TRUE(eager.ok()) << eager.status();
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(eager->memory_breakdown().mapped_bytes, 0u);

  // Delta-encoded shards adopt pred + pass in place (dist decodes into
  // owned storage): the union must map every shard's rows, all m of them —
  // not just the rows of whichever shard loaded last.
  const size_t m = 4 * s.num_obstacles();
  EXPECT_EQ(mapped->memory_breakdown().mapped_bytes,
            m * m * (sizeof(int32_t) + sizeof(int8_t)));

  auto pairs = make_pairs(s, 12, 7);
  EXPECT_EQ(*eager->lengths(pairs), *mapped->lengths(pairs));
  EXPECT_EQ(*eager->paths(pairs), *mapped->paths(pairs));
  std::filesystem::remove_all(dir);
}

TEST(SnapshotV5Test, MmapOnAStreamIsInvalidQuery) {
  Engine eng(gen_uniform(4, 3), {});
  std::ostringstream os;
  ASSERT_TRUE(eng.save(os, {}).ok());
  std::istringstream is(os.str());
  Result<Engine> r = Engine::open(is, {.map = MapMode::kMmap});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidQuery);
}

// An mmap-opened engine serving parallel batches from several user threads
// (the replica deployment shape). TSan builds of the suite exercise the
// adopted-table reads for races against the shared mapping.
TEST(SnapshotV5Test, MmapEngineServesConcurrentBatches) {
  Scene s = gen_uniform(10, 29);
  Engine built(Scene{s}, {.backend = Backend::kAllPairsSeq});
  const std::string path = temp_path("concurrent.rsnap");
  ASSERT_TRUE(built.save(path, {}).ok());
  Result<Engine> mapped =
      Engine::open(path, {.engine = {.num_threads = 4}, .map = MapMode::kMmap});
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  auto pairs = make_pairs(s, 24, 13);
  auto want = built.lengths(pairs);
  ASSERT_TRUE(want.ok());
  std::vector<std::thread> threads;
  std::vector<int> ok(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 8; ++round) {
        auto got = mapped->lengths(pairs);
        if (!got.ok() || *got != *want) return;
      }
      ok[t] = 1;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok, std::vector<int>({1, 1, 1, 1}));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Delta codec: exact round trip, including saturated (kInf) rows.
// ---------------------------------------------------------------------------

TEST(SnapshotV5Test, DeltaRoundTripIsExactIncludingInfRows) {
  Scene s = gen_uniform(6, 19);
  Engine built(Scene{s}, {.backend = Backend::kAllPairsSeq});
  AllPairsData data = built.all_pairs()->data();  // owned copy
  const size_t m = data.m;
  // Forge a disconnected source row: saturated distances, no predecessors.
  // The residuals against the L1 lower bound are then huge (≈ kInf), the
  // worst case for the varint encoder.
  for (size_t b = 1; b < m; ++b) {
    data.dist(0, b) = kInf;
    data.pred[b] = -1;
    data.pass[b] = -1;
  }

  std::ostringstream os;
  ASSERT_TRUE(save_snapshot(os, s, &data, SnapshotSaveOptions{}).ok());
  const std::string bytes = os.str();

  // Eager decode.
  std::istringstream is(bytes);
  Result<SnapshotPayload> eager = load_snapshot(is);
  ASSERT_TRUE(eager.ok()) << eager.status();
  ASSERT_TRUE(eager->data.has_value());
  EXPECT_TRUE(eager->data->dist == data.dist);

  // Mapped decode (delta dist decodes into owned storage; views elsewhere).
  const std::string path = temp_path("inf_rows.rsnap");
  write_file(path, bytes);
  Result<SnapshotPayload> mapped = load_snapshot_mapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_TRUE(mapped->data.has_value());
  EXPECT_TRUE(mapped->data->dist == data.dist);
  const size_t mm = m * m;
  EXPECT_TRUE(std::equal(data.pred_data(), data.pred_data() + mm,
                         mapped->data->pred_data()));
  EXPECT_TRUE(std::equal(data.pass_data(), data.pass_data() + mm,
                         mapped->data->pass_data()));
  std::remove(path.c_str());
}

TEST(SnapshotV5Test, DeltaDistSectionIsSmallerThanRaw) {
  Scene s = gen_uniform(12, 5);
  Engine eng(Scene{s}, {});
  std::ostringstream delta_os, raw_os;
  ASSERT_TRUE(eng.save(delta_os, {}).ok());
  ASSERT_TRUE(eng.save(raw_os, {.delta_encode = false}).ok());
  std::istringstream is(delta_os.str());
  Result<SnapshotInfo> info = read_snapshot_info(is);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_TRUE(info->dist_delta_encoded);
  const uint64_t raw_bytes =
      static_cast<uint64_t>(info->num_vertices) * info->num_vertices *
      sizeof(Length);
  EXPECT_GT(info->dist_section_bytes, 0u);
  // The acceptance bar is 2x; honest scenes land far beyond it.
  EXPECT_LT(info->dist_section_bytes * 2, raw_bytes);
  EXPECT_LT(delta_os.str().size(), raw_os.str().size());
}

// ---------------------------------------------------------------------------
// Tampered v5 files: the mapped open must reject before serving anything.
// ---------------------------------------------------------------------------

class MappedNegativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine eng(gen_uniform(6, 13), {});
    std::ostringstream os;
    ASSERT_TRUE(eng.save(os, {}).ok());
    bytes_ = os.str();
    path_ = temp_path("tamper.rsnap");
  }
  void TearDown() override { std::remove(path_.c_str()); }

  StatusCode mapped_code(const std::string& bytes) {
    write_file(path_, bytes);
    Result<SnapshotPayload> r = load_snapshot_mapped(path_);
    EXPECT_FALSE(r.ok());
    return r.ok() ? StatusCode::kOk : r.status().code();
  }

  std::string bytes_;
  std::string path_;
};

TEST_F(MappedNegativeTest, TruncationAtEveryRegionIsCorrupt) {
  // Inside the header, the section index, a table, and the footer. The
  // index is bounds-checked against the real file size before the hash
  // pass, so a cut never dereferences past the mapping.
  for (size_t cut : {size_t{5}, size_t{20}, size_t{70}, bytes_.size() / 2,
                     bytes_.size() - 9, bytes_.size() - 1}) {
    ASSERT_LT(cut, bytes_.size());
    EXPECT_EQ(mapped_code(bytes_.substr(0, cut)), StatusCode::kCorruptSnapshot)
        << "cut at " << cut;
  }
}

TEST_F(MappedNegativeTest, EmptyFileIsCorrupt) {
  EXPECT_EQ(mapped_code(""), StatusCode::kCorruptSnapshot);
}

TEST_F(MappedNegativeTest, FlippedTableByteIsCorrupt) {
  std::string b = bytes_;
  b[b.size() / 2] ^= 0x5a;
  EXPECT_EQ(mapped_code(b), StatusCode::kCorruptSnapshot);
}

TEST_F(MappedNegativeTest, FlippedFooterIsCorrupt) {
  std::string b = bytes_;
  b[b.size() - 1] ^= 0x01;
  EXPECT_EQ(mapped_code(b), StatusCode::kCorruptSnapshot);
}

TEST_F(MappedNegativeTest, ForgedSectionOffsetIsCorrupt) {
  // Entry 0 of the index lives at byte 24 (after count + flags); its
  // offset field at +8. Point it past the end of the file: the canonical-
  // layout check must reject before anything is adopted.
  std::string b = bytes_;
  ASSERT_GT(b.size(), 48u);
  for (int i = 0; i < 8; ++i) b[24 + 8 + i] = '\x7f';
  EXPECT_EQ(mapped_code(b), StatusCode::kCorruptSnapshot);
}

TEST_F(MappedNegativeTest, WrongVersionIsVersionMismatch) {
  std::string b = bytes_;
  b[8] = static_cast<char>(kSnapshotFormatVersion + 1);
  EXPECT_EQ(mapped_code(b), StatusCode::kVersionMismatch);
}

TEST_F(MappedNegativeTest, MissingFileIsIoError) {
  Result<SnapshotPayload> r = load_snapshot_mapped("/nonexistent/x.rsnap");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace rsp
