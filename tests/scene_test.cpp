// Scene model validation and workload generator properties (general
// position, disjointness, containment).

#include <gtest/gtest.h>

#include <set>

#include "api/engine.h"
#include "core/scene.h"
#include "io/gen.h"

namespace rsp {
namespace {

TEST(Scene, RejectsOverlappingObstacles) {
  EXPECT_THROW(Scene::with_bbox({{0, 0, 4, 4}, {2, 2, 6, 6}}),
               std::logic_error);
}

TEST(Scene, AcceptsTouchingObstacles) {
  Scene s = Scene::with_bbox({{0, 0, 4, 4}, {4, 0, 8, 4}});
  EXPECT_EQ(s.num_obstacles(), 2u);
}

TEST(Scene, RejectsObstacleOutsideContainer) {
  auto poly = RectilinearPolygon::rectangle(Rect{0, 0, 10, 10});
  EXPECT_THROW(Scene({{8, 8, 12, 12}}, poly), std::logic_error);
}

// The facade's non-throwing counterparts of the two rejection tests above:
// Engine::Create turns Scene validation throws into kInvalidScene.
TEST(Scene, EngineCreateReportsValidationAsStatus) {
  auto overlap = Engine::Create({{0, 0, 4, 4}, {2, 2, 6, 6}});
  ASSERT_FALSE(overlap.ok());
  EXPECT_EQ(overlap.status().code(), StatusCode::kInvalidScene);
  EXPECT_NE(overlap.status().message().find("interior-disjoint"),
            std::string::npos);

  auto poly = RectilinearPolygon::rectangle(Rect{0, 0, 10, 10});
  auto outside = Engine::Create({{8, 8, 12, 12}}, poly);
  ASSERT_FALSE(outside.ok());
  EXPECT_EQ(outside.status().code(), StatusCode::kInvalidScene);

  auto touching = Engine::Create({{0, 0, 4, 4}, {4, 0, 8, 4}});
  ASSERT_TRUE(touching.ok()) << touching.status();
  EXPECT_EQ(touching->scene().num_obstacles(), 2u);
}

TEST(Scene, VertexIdsFollowCornerOrder) {
  Scene s = Scene::with_bbox({{1, 2, 5, 7}});
  ASSERT_EQ(s.obstacle_vertices().size(), 4u);
  EXPECT_EQ(s.vertex(0), (Point{1, 2}));  // ll
  EXPECT_EQ(s.vertex(1), (Point{5, 2}));  // lr
  EXPECT_EQ(s.vertex(2), (Point{5, 7}));  // ur
  EXPECT_EQ(s.vertex(3), (Point{1, 7}));  // ul
}

TEST(Scene, PointAndSegmentFreedom) {
  Scene s = Scene::with_bbox({{2, 2, 6, 6}});
  EXPECT_TRUE(s.point_free(Point{0, 0}));
  EXPECT_TRUE(s.point_free(Point{2, 4}));   // on boundary
  EXPECT_FALSE(s.point_free(Point{4, 4}));  // strictly inside
  EXPECT_TRUE(s.segment_free(Point{0, 2}, Point{8, 2}));   // along edge
  EXPECT_FALSE(s.segment_free(Point{0, 4}, Point{8, 4}));  // pierces
  EXPECT_FALSE(s.segment_free(Point{0, 0}, Point{3, 3}));  // diagonal
}

class GeneratorTest : public ::testing::TestWithParam<NamedGen> {};

TEST_P(GeneratorTest, ProducesValidGeneralPositionScenes) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (size_t n : {1u, 2u, 5u, 17u, 40u}) {
      Scene s = GetParam().fn(n, seed);
      EXPECT_EQ(s.num_obstacles(), n);
      // General position: all edge coordinates distinct per axis.
      std::set<Coord> xs, ys;
      for (const auto& r : s.obstacles()) {
        xs.insert(r.xmin);
        xs.insert(r.xmax);
        ys.insert(r.ymin);
        ys.insert(r.ymax);
      }
      EXPECT_EQ(xs.size(), 2 * n) << GetParam().name << " n=" << n;
      EXPECT_EQ(ys.size(), 2 * n) << GetParam().name << " n=" << n;
    }
  }
}

TEST_P(GeneratorTest, Deterministic) {
  Scene a = GetParam().fn(12, 99);
  Scene b = GetParam().fn(12, 99);
  EXPECT_EQ(a.obstacles(), b.obstacles());
}

INSTANTIATE_TEST_SUITE_P(AllGens, GeneratorTest,
                         ::testing::ValuesIn(kAllGens),
                         [](const auto& info) { return info.param.name; });

TEST(RandomFreePoints, AreFreeAndDistinct) {
  Scene s = gen_uniform(20, 5);
  auto pts = random_free_points(s, 50, 7);
  ASSERT_EQ(pts.size(), 50u);
  std::set<Point> uniq(pts.begin(), pts.end());
  EXPECT_EQ(uniq.size(), 50u);
  for (const auto& p : pts) EXPECT_TRUE(s.point_free(p));
}

}  // namespace
}  // namespace rsp
