// Shortest path trees and path reporting (paper §8): tree structure,
// reported-path validity/tightness, monotonicity property, and the
// chunked level-ancestor emission.

#include <gtest/gtest.h>

#include "baseline/dijkstra.h"
#include "core/query.h"
#include "core/sptree.h"
#include "io/gen.h"

namespace rsp {
namespace {

Length polyline_len(const std::vector<Point>& p) {
  Length s = 0;
  for (size_t i = 0; i + 1 < p.size(); ++i) s += dist1(p[i], p[i + 1]);
  return s;
}

bool monotone_axis(const std::vector<Point>& p) {
  bool x_up = true, x_dn = true, y_up = true, y_dn = true;
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    if (p[i + 1].x < p[i].x) x_up = false;
    if (p[i + 1].x > p[i].x) x_dn = false;
    if (p[i + 1].y < p[i].y) y_up = false;
    if (p[i + 1].y > p[i].y) y_dn = false;
  }
  return x_up || x_dn || y_up || y_dn;
}

class SpTreeTest : public ::testing::TestWithParam<NamedGen> {};

TEST_P(SpTreeTest, VertexPathsValidTightMonotone) {
  for (uint64_t seed : {4u, 16u}) {
    Scene s = GetParam().fn(14, seed);
    AllPairsSP sp(s);
    const size_t m = sp.num_vertices();
    for (size_t a = 0; a < m; a += 3) {
      for (size_t b = 0; b < m; b += 4) {
        auto path = sp.vertex_path(a, b);
        ASSERT_GE(path.size(), 1u);
        EXPECT_EQ(path.front(), s.vertex(a));
        EXPECT_EQ(path.back(), s.vertex(b));
        EXPECT_TRUE(s.path_free(path))
            << GetParam().name << " " << s.vertex(a) << "->" << s.vertex(b);
        EXPECT_EQ(polyline_len(path), sp.vertex_length(a, b))
            << GetParam().name;
        // De Rezende–Lee–Wu: some shortest path is monotone in >= 1 axis;
        // ours is constructed from a monotone pass, so it must be.
        EXPECT_TRUE(monotone_axis(path)) << GetParam().name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGens, SpTreeTest, ::testing::ValuesIn(kAllGens),
                         [](const auto& info) { return info.param.name; });

TEST(SpTrees, TreeDepthsBoundHops) {
  Scene s = gen_corridors(12, 3);
  AllPairsSP sp(s);
  SpTrees trees(s, sp.tracer(), sp.data());
  const size_t m = sp.num_vertices();
  const Forest& t = trees.tree(0);
  EXPECT_EQ(t.size(), static_cast<int>(m));
  for (size_t b = 0; b < m; ++b) {
    EXPECT_EQ(trees.hops(0, b), t.depth(static_cast<int>(b)));
  }
}

TEST(SpTrees, ChunkedChainConcatenatesToFullChain) {
  Scene s = gen_corridors(16, 8);  // long predecessor chains
  AllPairsSP sp(s);
  SpTrees trees(s, sp.tracer(), sp.data());
  const size_t m = sp.num_vertices();
  // Find the deepest (a, b) pair for a strenuous case.
  size_t best_a = 0, best_b = 0;
  int best_d = -1;
  for (size_t a = 0; a < m; a += 5) {
    for (size_t b = 0; b < m; ++b) {
      int d = trees.hops(a, b);
      if (d > best_d) {
        best_d = d;
        best_a = a;
        best_b = b;
      }
    }
  }
  ASSERT_GT(best_d, 2) << "corridor scene should give deep chains";
  for (int chunk : {1, 2, 3, 8, 64}) {
    auto pieces = trees.chunked_chain(best_a, best_b, chunk);
    // Expected piece count: ceil((depth+1)/chunk) — the paper's ⌈k/log n⌉
    // piece structure.
    EXPECT_EQ(pieces.size(),
              static_cast<size_t>((best_d + 1 + chunk - 1) / chunk));
    std::vector<int> flat;
    for (const auto& p : pieces) flat.insert(flat.end(), p.begin(), p.end());
    // Flat chain must equal the naive parent walk.
    std::vector<int> expect;
    for (int cur = static_cast<int>(best_b); cur >= 0;
         cur = trees.tree(best_a).parent(cur)) {
      expect.push_back(cur);
    }
    EXPECT_EQ(flat, expect);
  }
}

TEST(SpTrees, PathSegmentCountIsLinearInHops) {
  Scene s = gen_corridors(20, 5);
  AllPairsSP sp(s);
  SpTrees trees(s, sp.tracer(), sp.data());
  const size_t m = sp.num_vertices();
  for (size_t b = 0; b < m; b += 6) {
    auto path = trees.path(0, b);
    int hops = trees.hops(0, b);
    // Each hop contributes at most 2 segments; the curve head is O(bends).
    EXPECT_LE(static_cast<int>(path.size()),
              2 * hops + 2 * static_cast<int>(s.num_obstacles()) + 4);
  }
}

TEST(SpTrees, CorridorPathsHaveManySegments) {
  // The serpentine scene forces Theta(n)-segment shortest paths — the
  // k >> log n regime that motivates the paper's chunked reporting.
  Scene s = gen_corridors(24, 2);
  AllPairsSP sp(s);
  // Bottom-left vertex to a top vertex.
  const auto& verts = s.obstacle_vertices();
  size_t lo = 0, hi = 0;
  for (size_t i = 0; i < verts.size(); ++i) {
    if (verts[i].y < verts[lo].y) lo = i;
    if (verts[i].y > verts[hi].y) hi = i;
  }
  auto path = sp.vertex_path(lo, hi);
  EXPECT_GE(path.size(), 24u) << "serpentine path should zigzag";
  EXPECT_EQ(polyline_len(path), sp.vertex_length(lo, hi));
  EXPECT_TRUE(s.path_free(path));
}

}  // namespace
}  // namespace rsp
