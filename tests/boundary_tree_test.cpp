// The boundary-tree backend (src/backend/boundary_tree.h + its Engine and
// snapshot surfaces): cross-backend equivalence against the all-pairs
// structure and the Dijkstra oracle over the full generator corpus
// (lengths bit-identical; paths exact-length and obstacle-free — distinct
// optimal polylines are legal), the §6.4 arbitrary-point and §7
// large-container cases, kAuto backend selection by scene size, and the
// kBoundaryTree snapshot payload: round-trip, v1 back-compat, and the
// truncation / version / kind-mismatch negatives.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "backend/boundary_tree.h"
#include "io/gen.h"
#include "io/snapshot.h"
#include "serve/server.h"

namespace rsp {
namespace {

Length polyline_len(const std::vector<Point>& p) {
  Length t = 0;
  for (size_t i = 1; i < p.size(); ++i) t += dist1(p[i - 1], p[i]);
  return t;
}

std::vector<PointPair> make_pairs(const Scene& scene, size_t count,
                                  uint64_t seed) {
  auto pts = random_free_points(scene, 2 * count, seed);
  std::vector<PointPair> pairs;
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    pairs.push_back({pts[i], pts[i + 1]});
  }
  return pairs;
}

// Lengths from all three backends must agree bit for bit; paths from the
// boundary tree must realize exactly the claimed length without touching
// an obstacle.
void expect_equivalent(const Scene& scene, std::span<const PointPair> pairs) {
  Engine bt(scene, {.backend = Backend::kBoundaryTree});
  Engine ap(scene, {.backend = Backend::kAllPairsSeq});
  Engine dj(scene, {.backend = Backend::kDijkstraBaseline});

  Result<std::vector<Length>> lbt = bt.lengths(pairs);
  Result<std::vector<Length>> lap = ap.lengths(pairs);
  Result<std::vector<Length>> ldj = dj.lengths(pairs);
  ASSERT_TRUE(lbt.ok()) << lbt.status();
  ASSERT_TRUE(lap.ok()) << lap.status();
  ASSERT_TRUE(ldj.ok()) << ldj.status();
  EXPECT_EQ(*lbt, *lap);
  EXPECT_EQ(*lbt, *ldj);

  Result<std::vector<std::vector<Point>>> paths = bt.paths(pairs);
  ASSERT_TRUE(paths.ok()) << paths.status();
  for (size_t i = 0; i < pairs.size(); ++i) {
    const std::vector<Point>& p = (*paths)[i];
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.front(), pairs[i].s);
    EXPECT_EQ(p.back(), pairs[i].t);
    EXPECT_EQ(polyline_len(p), (*lbt)[i]) << "pair " << i;
    EXPECT_TRUE(scene.path_free(p)) << "pair " << i;
  }
}

class BoundaryTreeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<NamedGen, size_t>> {};

TEST_P(BoundaryTreeEquivalenceTest, MatchesAllPairsAndOracle) {
  const auto& [gen, n] = GetParam();
  Scene scene = gen.fn(n, 29);
  // §6.4 arbitrary points: interior, not boundary-discretization vertices.
  expect_equivalent(scene, make_pairs(scene, 8, 71));
}

INSTANTIATE_TEST_SUITE_P(
    AllGens, BoundaryTreeEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(kAllGens),
                       ::testing::Values(size_t{6}, size_t{22})),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(BoundaryTreeEquivalence, LargeContainerFarFromObstacles) {
  // §7 regime: the container dwarfs the obstacle cluster, so most query
  // points live in open space far outside every separator's obstacle set.
  Scene tight = gen_uniform(16, 5);
  const Rect& bb = tight.container().bbox();
  const Coord w = bb.width(), h = bb.height();
  Scene scene(std::vector<Rect>(tight.obstacles().begin(),
                                tight.obstacles().end()),
              RectilinearPolygon::from_vertices(
                  {{bb.xmin - 10 * w, bb.ymin - 10 * h},
                   {bb.xmax + 10 * w, bb.ymin - 10 * h},
                   {bb.xmax + 10 * w, bb.ymax + 10 * h},
                   {bb.xmin - 10 * w, bb.ymax + 10 * h}}));
  expect_equivalent(scene, make_pairs(scene, 8, 17));
}

TEST(BoundaryTreeEquivalence, QueryPointsOnObstacleCorners) {
  // Obstacle vertices are the boundary discretization's own seeds — the
  // lift must handle query points that coincide with B points.
  Scene scene = gen_grid(12, 3);
  std::vector<PointPair> pairs;
  auto verts = scene.obstacle_vertices();
  for (size_t i = 0; i + 5 < verts.size(); i += 5) {
    pairs.push_back({verts[i], verts[i + 5]});
  }
  expect_equivalent(scene, pairs);
}

TEST(BoundaryTreeBackend, AutoSelectsBySceneSize) {
  Scene small = gen_uniform(12, 7);
  EXPECT_EQ(Engine(small, {}).backend(), Backend::kAllPairsSeq);
  EXPECT_EQ(Engine(small, {.num_threads = 4}).backend(),
            Backend::kAllPairsParallel);
  // Above kAutoBoundaryTreeThreshold the quadratic tables lose to the
  // tree. (Build is the sublinear D&C, so this stays cheap enough here.)
  Scene big = gen_uniform(kAutoBoundaryTreeThreshold + 64, 7);
  Engine eng(big, {.num_threads = 4});
  EXPECT_EQ(eng.backend(), Backend::kBoundaryTree);
  EXPECT_TRUE(eng.built());
  EXPECT_GT(eng.memory_usage(), 0u);
  EXPECT_EQ(eng.all_pairs(), nullptr);
  ASSERT_NE(eng.boundary_tree(), nullptr);
}

TEST(BoundaryTreeBackend, MemoryStaysFarBelowAllPairs) {
  Scene scene = gen_uniform(128, 11);
  Engine bt(scene, {.backend = Backend::kBoundaryTree});
  Engine ap(scene, {.backend = Backend::kAllPairsSeq});
  ASSERT_GT(bt.memory_usage(), 0u);
  // The all-pairs tables are m^2 * 13 bytes with m = 4n, the tree is
  // near-linear: already ~2.6x smaller at n = 128 and the gap widens
  // quadratically (>= 10x by n = 512; the bench gates the n = 4096 ratio).
  // Both accountings are deterministic for a fixed scene.
  EXPECT_LT(bt.memory_usage() * 2, ap.memory_usage());
}

TEST(BoundaryTreeBackend, DeterministicAcrossSchedulerWidths) {
  // The retained tree is renumbered to a deterministic preorder, so the
  // snapshot bytes cannot depend on build parallelism.
  Scene scene = gen_clustered(48, 19);
  std::ostringstream seq, par;
  ASSERT_TRUE(
      Engine(scene, {.backend = Backend::kBoundaryTree}).save(seq, {}).ok());
  ASSERT_TRUE(Engine(scene, {.backend = Backend::kBoundaryTree,
                             .num_threads = 4})
                  .save(par, {})
                  .ok());
  EXPECT_EQ(seq.str(), par.str());
}

TEST(BoundaryTreeBackend, LazyBuildDefersAndBatchForcesIt) {
  Scene scene = gen_uniform(24, 23);
  Engine eng(scene,
             {.backend = Backend::kBoundaryTree, .lazy_build = true});
  EXPECT_FALSE(eng.built());
  EXPECT_EQ(eng.memory_usage(), 0u);  // must not force the build
  auto pairs = make_pairs(scene, 3, 5);
  ASSERT_TRUE(eng.lengths(pairs).ok());
  EXPECT_TRUE(eng.built());
  EXPECT_GT(eng.memory_usage(), 0u);
}

// ---------------------------------------------------------------------------
// Snapshot: round-trip, back-compat, negatives.
// ---------------------------------------------------------------------------

std::string bt_snapshot_bytes(const Scene& scene) {
  Engine eng(scene, {.backend = Backend::kBoundaryTree});
  std::ostringstream os;
  Status st = eng.save(os, {});
  EXPECT_TRUE(st.ok()) << st;
  return os.str();
}

StatusCode open_code(const std::string& bytes, EngineOptions opt = {}) {
  std::istringstream is(bytes);
  Result<Engine> r = Engine::open(is, {.engine = opt});
  EXPECT_FALSE(r.ok());
  return r.ok() ? StatusCode::kOk : r.status().code();
}

class BoundaryTreeSnapshotTest : public ::testing::TestWithParam<NamedGen> {};

TEST_P(BoundaryTreeSnapshotTest, RoundTripBitIdenticalLengths) {
  Scene scene = GetParam().fn(20, 37);
  Engine built(scene, {.backend = Backend::kBoundaryTree});
  std::ostringstream os;
  ASSERT_TRUE(built.save(os, {}).ok());
  const std::string bytes = os.str();

  {
    std::istringstream is(bytes);
    Result<SnapshotInfo> info = read_snapshot_info(is);
    ASSERT_TRUE(info.ok()) << info.status();
    EXPECT_EQ(info->kind, SnapshotPayloadKind::kBoundaryTree);
    EXPECT_EQ(info->format_version, kSnapshotFormatVersion);
    EXPECT_EQ(info->num_obstacles, scene.num_obstacles());
    EXPECT_GT(info->num_tree_nodes, 0u);
  }

  std::istringstream is(bytes);
  Result<Engine> loaded = Engine::open(is, {});  // kAuto adopts the payload
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->backend(), Backend::kBoundaryTree);
  EXPECT_TRUE(loaded->built());

  auto pairs = make_pairs(scene, 6, 3);
  Result<std::vector<Length>> a = built.lengths(pairs);
  Result<std::vector<Length>> b = loaded->lengths(pairs);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  // And a loaded engine reconstructs paths, not just lengths.
  Result<std::vector<Point>> p = loaded->path(pairs[0].s, pairs[0].t);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(polyline_len(*p), (*a)[0]);

  // A re-save of the loaded engine is byte-identical: nothing is lost or
  // reordered by the round trip.
  std::ostringstream os2;
  ASSERT_TRUE(loaded->save(os2, {}).ok());
  EXPECT_EQ(bytes, os2.str());
}

INSTANTIATE_TEST_SUITE_P(AllGens, BoundaryTreeSnapshotTest,
                         ::testing::ValuesIn(kAllGens),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(BoundaryTreeSnapshot, V1SceneOnlySnapshotStillLoads) {
  // The writer can pin the legacy format, producing exactly the bytes a
  // v1 build would have — and they must still open.
  Scene s = gen_uniform(8, 13);
  std::ostringstream os;
  ASSERT_TRUE(
      save_snapshot(os, s, nullptr, SnapshotSaveOptions{.format_version = 1})
          .ok());
  std::string bytes = os.str();
  ASSERT_EQ(bytes[8], 1);  // version u32 LSB
  std::istringstream is(bytes);
  Result<Engine> r =
      Engine::open(is, {.engine = {.backend = Backend::kDijkstraBaseline}});
  ASSERT_TRUE(r.ok()) << r.status();
  std::istringstream is2(bytes);
  Result<SnapshotInfo> info = read_snapshot_info(is2);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->format_version, 1u);
}

TEST(BoundaryTreeSnapshot, BoundaryTreeKindInV1HeaderIsCorrupt) {
  // Kind 2 did not exist in format v1: a header claiming both is invalid
  // input, not a back-compat case.
  std::string bytes = bt_snapshot_bytes(gen_uniform(10, 3));
  bytes[8] = 1;
  EXPECT_EQ(open_code(bytes), StatusCode::kCorruptSnapshot);
}

TEST(BoundaryTreeSnapshot, TruncationIsCorruptEverywhere) {
  const std::string bytes = bt_snapshot_bytes(gen_uniform(10, 3));
  for (size_t cut : {size_t{0}, size_t{13}, size_t{40}, bytes.size() / 3,
                     bytes.size() / 2, bytes.size() - 9, bytes.size() - 1}) {
    ASSERT_LT(cut, bytes.size());
    EXPECT_EQ(open_code(bytes.substr(0, cut)), StatusCode::kCorruptSnapshot)
        << "cut at " << cut;
  }
}

TEST(BoundaryTreeSnapshot, FlippedPayloadByteIsCorrupt) {
  std::string bytes = bt_snapshot_bytes(gen_uniform(10, 3));
  bytes[bytes.size() / 2] ^= 0x5a;
  EXPECT_EQ(open_code(bytes), StatusCode::kCorruptSnapshot);
}

TEST(BoundaryTreeSnapshot, FutureVersionIsVersionMismatch) {
  std::string bytes = bt_snapshot_bytes(gen_uniform(10, 3));
  bytes[8] = static_cast<char>(kSnapshotFormatVersion + 1);
  EXPECT_EQ(open_code(bytes), StatusCode::kVersionMismatch);
}

TEST(BoundaryTreeSnapshot, KindMismatchBothDirections) {
  Scene scene = gen_uniform(10, 3);
  const std::string tree_bytes = bt_snapshot_bytes(scene);
  Engine ap(scene, {.backend = Backend::kAllPairsSeq});
  std::ostringstream os;
  ASSERT_TRUE(ap.save(os, {}).ok());
  const std::string ap_bytes = os.str();

  // Explicit all-pairs backend over a boundary-tree payload, and vice
  // versa: kSnapshotMismatch, not a silent rebuild.
  EXPECT_EQ(open_code(tree_bytes, {.backend = Backend::kAllPairsSeq}),
            StatusCode::kSnapshotMismatch);
  EXPECT_EQ(open_code(ap_bytes, {.backend = Backend::kBoundaryTree}),
            StatusCode::kSnapshotMismatch);
  // The structure-free baseline serves either payload.
  std::istringstream is(tree_bytes);
  Result<Engine> dij =
      Engine::open(is, {.engine = {.backend = Backend::kDijkstraBaseline}});
  ASSERT_TRUE(dij.ok()) << dij.status();
  // And a kAuto open of an all-pairs payload adopts all-pairs even above
  // the size threshold (the snapshot's structure wins over the heuristic).
  std::istringstream is2(ap_bytes);
  Result<Engine> auto_ap = Engine::open(is2, {});
  ASSERT_TRUE(auto_ap.ok()) << auto_ap.status();
  EXPECT_EQ(auto_ap->backend(), Backend::kAllPairsSeq);
}

TEST(BoundaryTreeSnapshot, CraftedChildCycleIsCorruptNotAHang) {
  // Hand-build a snapshot whose node 1 claims node 1 as its child (the
  // checksum is recomputed so only the structural validation can reject
  // it). The reader's preorder invariant (child id > own id) must fire.
  std::string bytes = bt_snapshot_bytes(gen_uniform(10, 3));
  // Find the root's children array: root is node 0 and its first child is
  // id 1 encoded as u32 little-endian inside the first children list.
  // Rather than parse offsets, corrupt via the public writer: build a tree
  // by hand.
  Scene scene = gen_uniform(4, 3);
  Engine eng(scene, {.backend = Backend::kBoundaryTree});
  const BoundaryTreeSP* bt = eng.boundary_tree();
  ASSERT_NE(bt, nullptr);
  DncTree forged = bt->tree();  // copy
  if (forged.nodes.size() > 1 && !forged.nodes[1].children.empty()) {
    forged.nodes[1].children[0] = 1;  // self-loop
  } else if (!forged.nodes[0].children.empty()) {
    forged.nodes[0].children[0] = 0;  // root self-loop
  }
  std::ostringstream os;
  ASSERT_TRUE(save_snapshot(os, scene, forged).ok());
  EXPECT_EQ(open_code(os.str()), StatusCode::kCorruptSnapshot);
}

// ---------------------------------------------------------------------------
// Serve-layer reporting.
// ---------------------------------------------------------------------------

TEST(BoundaryTreeServe, StatsReportBackendPayloadAndMemory) {
  Scene scene = gen_uniform(20, 7);
  Engine eng(scene, {.backend = Backend::kBoundaryTree});
  QueryServer srv(std::move(eng), {});
  const std::string line = srv.stats_line();
  EXPECT_NE(line.find(" backend=boundary-tree"), std::string::npos) << line;
  EXPECT_NE(line.find(" payload=boundary-tree"), std::string::npos) << line;
  EXPECT_NE(line.find(" mem_bytes="), std::string::npos) << line;
  const std::string json = srv.stats_json();
  EXPECT_NE(json.find("\"payload\": \"boundary-tree\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"memory_bytes\": "), std::string::npos) << json;
}

}  // namespace
}  // namespace rsp
