// §7 implicit representation (|P| >> n): chunk transfer sets answer
// boundary-to-vertex length queries exactly, with O(n^2) storage
// independent of |P|.

#include <gtest/gtest.h>

#include "core/implicit.h"
#include "io/gen.h"

namespace rsp {
namespace {

TEST(Implicit, MatchesExactQueriesOnBigContainer) {
  // Obstacles clustered in the middle of a much larger container.
  Scene base = gen_uniform(12, 5);
  Rect bb = base.container().bbox();
  Coord w = bb.xmax - bb.xmin;
  Scene big(std::vector<Rect>(base.obstacles()),
            RectilinearPolygon::rectangle(bb.expanded(4 * w)));
  AllPairsSP sp{std::move(big)};
  ImplicitBoundaryLengths impl(sp);
  EXPECT_GT(impl.transfer_points(), 0u);
  EXPECT_LE(impl.transfer_points(), 4 * 4 * sp.scene().num_obstacles());

  // Points all around the container boundary and in the chunks.
  const Rect& obb = sp.scene().container().bbox();
  std::vector<Point> probes{
      {obb.xmin, obb.ymin}, {obb.xmax, obb.ymax},
      {obb.xmin + 3, obb.ymax}, {obb.xmax, obb.ymin + 7},
      {(obb.xmin + obb.xmax) / 2, obb.ymax},
      {obb.xmax, (obb.ymin + obb.ymax) / 2},
      {(obb.xmin + obb.xmax) / 2, obb.ymin},
      {obb.xmin, (obb.ymin + obb.ymax) / 2}};
  for (const auto& p : probes) {
    for (size_t v = 0; v < sp.num_vertices(); v += 3) {
      ASSERT_EQ(impl.to_vertex(p, v), sp.length(p, sp.scene().vertex(v)))
          << p << " -> vertex " << v;
    }
  }
}

TEST(Implicit, FallbackBesideEnvelopeIsExact) {
  Scene base = gen_clustered(10, 9);
  Rect bb = base.container().bbox();
  Scene big(std::vector<Rect>(base.obstacles()),
            RectilinearPolygon::rectangle(bb.expanded(50)));
  AllPairsSP sp{std::move(big)};
  ImplicitBoundaryLengths impl(sp);
  // Points level with the envelope (in no chunk) fall back to §6.4.
  auto pts = random_free_points(sp.scene(), 20, 3);
  for (const auto& p : pts) {
    for (size_t v = 0; v < sp.num_vertices(); v += 5) {
      ASSERT_EQ(impl.to_vertex(p, v), sp.length(p, sp.scene().vertex(v)));
    }
  }
}

TEST(Implicit, StorageIndependentOfContainerSize) {
  Scene base = gen_grid(9, 2);
  Rect bb = base.container().bbox();
  size_t prev = 0;
  for (Coord grow : {10, 1000, 100000}) {
    Scene big(std::vector<Rect>(base.obstacles()),
              RectilinearPolygon::rectangle(bb.expanded(grow)));
    AllPairsSP sp{std::move(big)};
    ImplicitBoundaryLengths impl(sp);
    if (prev != 0) {
      EXPECT_EQ(impl.transfer_points(), prev);
    }
    prev = impl.transfer_points();
  }
}

}  // namespace
}  // namespace rsp
