// Path tracing (paper §3 Lemma 6, Fig. 5): the eight escape paths, their
// forests, monotonicity, clearance, and Lemma 12 (a traced path crosses a
// clear staircase at most once).

#include <gtest/gtest.h>

#include "baseline/dijkstra.h"
#include "core/rayshoot.h"
#include "core/trace.h"
#include "io/gen.h"

namespace rsp {
namespace {

struct Fixture {
  explicit Fixture(Scene sc) : scene(std::move(sc)), shooter(scene),
                               tracer(scene, shooter) {}
  Scene scene;
  RayShooter shooter;
  Tracer tracer;
};

TEST(RayShoot, SingleObstacle) {
  Fixture f(Scene::with_bbox({{2, 2, 8, 8}}));
  // North from below the obstacle.
  auto hit = f.shooter.shoot_obstacle({5, 0}, Dir::North);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->hit, (Point{5, 2}));
  EXPECT_EQ(hit->rect, 0);
  // Grazing along the left edge does not block.
  EXPECT_FALSE(f.shooter.shoot_obstacle({2, 0}, Dir::North).has_value());
  // East from the left.
  hit = f.shooter.shoot_obstacle({0, 5}, Dir::East);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->hit, (Point{2, 5}));
  // From the top edge, shooting north escapes.
  EXPECT_FALSE(f.shooter.shoot_obstacle({5, 8}, Dir::North).has_value());
  // Container-aware shoot reports the boundary.
  RayHit bh = f.shooter.shoot({5, 0}, Dir::South);
  EXPECT_EQ(bh.rect, -1);
  EXPECT_EQ(bh.hit, (Point{5, -2}));  // bbox margin 4 below ymin=2
}

TEST(RayShoot, MatchesBruteForceOnRandomScenes) {
  for (const auto& gen : kAllGens) {
    Scene s = gen.fn(25, 42);
    RayShooter shooter(s);
    auto pts = random_free_points(s, 40, 9);
    for (const auto& p : pts) {
      // Brute force north shoot.
      for (Dir d : {Dir::North, Dir::South, Dir::East, Dir::West}) {
        int best_rect = -1;
        Length best = kInf;
        for (size_t r = 0; r < s.num_obstacles(); ++r) {
          const Rect& o = s.obstacle(r);
          Length c = kInf;
          if (d == Dir::North && o.xmin < p.x && p.x < o.xmax &&
              o.ymin >= p.y) c = o.ymin - p.y;
          if (d == Dir::South && o.xmin < p.x && p.x < o.xmax &&
              o.ymax <= p.y) c = p.y - o.ymax;
          if (d == Dir::East && o.ymin < p.y && p.y < o.ymax &&
              o.xmin >= p.x) c = o.xmin - p.x;
          if (d == Dir::West && o.ymin < p.y && p.y < o.ymax &&
              o.xmax <= p.x) c = p.x - o.xmax;
          if (c < best) {
            best = c;
            best_rect = static_cast<int>(r);
          }
        }
        auto got = shooter.shoot_obstacle(p, d);
        if (best_rect < 0) {
          EXPECT_FALSE(got.has_value()) << gen.name;
        } else {
          ASSERT_TRUE(got.has_value()) << gen.name;
          EXPECT_EQ(got->rect, best_rect) << gen.name;
        }
      }
    }
  }
}

TEST(Trace, SingleObstacleDetours) {
  Fixture f(Scene::with_bbox({{2, 2, 8, 8}}));
  // NE from below: north to (5,2), east to lr (8,2), escapes north.
  auto path = f.tracer.trace({5, 0}, TraceKind::NE);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], (Point{5, 0}));
  EXPECT_EQ(path[1], (Point{5, 2}));
  EXPECT_EQ(path[2], (Point{8, 2}));
  // NW mirrors to ll.
  path = f.tracer.trace({5, 0}, TraceKind::NW);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[2], (Point{2, 2}));
  // EN from the left: east to (2,5), north to ul (2,8), escapes east.
  path = f.tracer.trace({0, 5}, TraceKind::EN);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], (Point{2, 5}));
  EXPECT_EQ(path[2], (Point{2, 8}));
}

class TraceKindTest
    : public ::testing::TestWithParam<std::tuple<NamedGen, TraceKind>> {};

TEST_P(TraceKindTest, TracedPathsAreClearMonotoneStaircases) {
  auto [gen, kind] = GetParam();
  Scene s = gen.fn(20, 77);
  RayShooter shooter(s);
  Tracer tracer(s, shooter);
  auto pts = random_free_points(s, 15, 3);
  for (const auto& p : pts) {
    auto path = tracer.trace(p, kind);
    // Clear: no segment pierces an obstacle.
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      Segment seg{path[i], path[i + 1]};
      EXPECT_TRUE(seg.a.x == seg.b.x || seg.a.y == seg.b.y);
      for (const auto& r : s.obstacles()) {
        EXPECT_FALSE(seg.pierces(r)) << "trace pierces obstacle";
      }
    }
    // Staircase form validates monotonicity internally.
    Staircase st = tracer.trace_staircase(p, kind);
    EXPECT_EQ(st.side_of(p), 0) << "origin must lie on its own trace";
  }
}

std::string kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::NE: return "NE";
    case TraceKind::NW: return "NW";
    case TraceKind::SE: return "SE";
    case TraceKind::SW: return "SW";
    case TraceKind::EN: return "EN";
    case TraceKind::ES: return "ES";
    case TraceKind::WN: return "WN";
    case TraceKind::WS: return "WS";
  }
  return "?";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TraceKindTest,
    ::testing::Combine(::testing::ValuesIn(kAllGens),
                       ::testing::Values(TraceKind::NE, TraceKind::NW,
                                         TraceKind::SE, TraceKind::SW,
                                         TraceKind::EN, TraceKind::ES,
                                         TraceKind::WN, TraceKind::WS)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             kind_name(std::get<1>(info.param));
    });

TEST(Trace, ForestsAgreeWithStepwiseTraces) {
  Scene s = gen_uniform(30, 5);
  RayShooter shooter(s);
  Tracer tracer(s, shooter);
  // The forest parent of r must be the obstacle hit by re-shooting from
  // the detour corner (definitional consistency check across all kinds).
  for (TraceKind k : kAllTraceKinds) {
    const Forest& f = tracer.forest(k);
    EXPECT_EQ(f.size(), static_cast<int>(s.num_obstacles()));
    for (int r = 0; r < f.size(); ++r) {
      int p = f.parent(r);
      if (p >= 0) {
        EXPECT_NE(p, r);
      }
    }
  }
}

TEST(Trace, Lemma12CrossesClearStaircaseAtMostOnce) {
  Scene s = gen_uniform(25, 123);
  RayShooter shooter(s);
  Tracer tracer(s, shooter);
  auto pts = random_free_points(s, 8, 4);
  // Clear staircase: any traced staircase is clear; test crossings of
  // traced pairs with opposite orientations via side changes along bends.
  for (size_t i = 0; i + 1 < pts.size(); i += 2) {
    Staircase c = tracer.trace_staircase(pts[i], TraceKind::NE);
    for (TraceKind k : kAllTraceKinds) {
      auto path = tracer.trace(pts[i + 1], k);
      int sign_changes = 0;
      int last = 0;
      for (const auto& q : path) {
        int sd = c.side_of(q);
        if (sd != 0 && sd != last) {
          if (last != 0) ++sign_changes;
          last = sd;
        }
      }
      EXPECT_LE(sign_changes, 1) << "traced path crosses clear staircase "
                                    "more than once (Lemma 12 violated)";
    }
  }
}

}  // namespace
}  // namespace rsp
