// Seeded deterministic protocol fuzzing (serve/protocol.h + serve/server.h).
//
// Valid scripted sessions are mutated — byte flips, truncations, random
// insertions (embedded NULs, high bytes), deleted ranges, duplicated
// chunks, and oversized BATCH counts — and every mutant is driven through
// BOTH the bare parser and a live QueryServer session. The contract under
// attack:
//
//   * parse_request never throws and never crashes; !ok always carries a
//     non-empty error,
//   * a live session answers every request line with exactly one
//     "OK ..."/"ERR ..." line — mutants cannot crash the server, hang the
//     writer, or desynchronize the one-request/one-response framing,
//   * the server stays fully serviceable after the whole corpus (a final
//     known-good session must answer byte-identically to a direct Engine).
//
// Everything is seeded (std::mt19937_64): a failure reproduces exactly.

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "fault_injection_util.h"
#include "io/gen.h"
#include "io/manifest.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"

namespace rsp {
namespace {

// A small scene keeps the engine build negligible; the fuzz target is the
// protocol/session layer, not the all-pairs structure.
Scene fuzz_scene() { return gen_uniform(10, 97); }

// A valid pipelined session mixing every verb (the mutation baseline).
std::string valid_script(const Scene& scene, uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pts = random_free_points(scene, 8, seed);
  std::ostringstream os;
  auto point = [&](size_t i) {
    os << pts[i % pts.size()].x << ',' << pts[i % pts.size()].y;
  };
  for (int i = 0; i < 12; ++i) {
    switch (rng() % 4) {
      case 0:
        os << "LEN ";
        point(rng());
        os << ' ';
        point(rng());
        os << '\n';
        break;
      case 1:
        os << "PATH ";
        point(rng());
        os << ' ';
        point(rng());
        os << '\n';
        break;
      case 2: {
        const int k = 1 + static_cast<int>(rng() % 3);
        os << "BATCH " << k << '\n';
        for (int j = 0; j < k; ++j) {
          point(rng());
          os << ' ';
          point(rng());
          os << '\n';
        }
        break;
      }
      default:
        os << "STATS\n";
        break;
    }
  }
  os << "QUIT\n";
  return os.str();
}

// One deterministic mutation of `s` drawn from `rng`.
std::string mutate(std::string s, std::mt19937_64& rng) {
  if (s.empty()) return s;
  switch (rng() % 6) {
    case 0: {  // byte flip (NUL and high bytes included)
      s[rng() % s.size()] = static_cast<char>(rng() % 256);
      break;
    }
    case 1: {  // truncation (possibly mid-BATCH, possibly losing QUIT)
      s.resize(rng() % s.size());
      break;
    }
    case 2: {  // insert a hostile byte
      static constexpr char kBytes[] = {'\0', '\t', ' ', ',', '-', '\xff',
                                        '9',  'L',  '\n'};
      s.insert(rng() % s.size(), 1, kBytes[rng() % sizeof(kBytes)]);
      break;
    }
    case 3: {  // delete a range
      const size_t at = rng() % s.size();
      s.erase(at, 1 + rng() % 16);
      break;
    }
    case 4: {  // duplicate a chunk elsewhere (desync generator)
      const size_t at = rng() % s.size();
      const std::string chunk = s.substr(at, 1 + rng() % 24);
      s.insert(rng() % s.size(), chunk);
      break;
    }
    default: {  // blow up a number: oversized k / out-of-range coordinate
      const size_t at = s.find_first_of("0123456789");
      if (at != std::string::npos) {
        s.insert(at, "99999999999999999999");
      }
      break;
    }
  }
  return s;
}

size_t count_lines(const std::string& s) {
  size_t n = 0;
  for (char c : s) n += c == '\n';
  if (!s.empty() && s.back() != '\n') ++n;  // trailing partial line
  return n;
}

// ---------------------------------------------------------------------------
// Parser-level: every mutated line parses to ok or to a non-empty error.
// ---------------------------------------------------------------------------

TEST(ProtocolFuzz, ParserNeverCrashesOnMutatedLines) {
  Scene scene = fuzz_scene();
  size_t parsed = 0, rejected = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull);
    std::string script = valid_script(scene, seed);
    const int rounds = 1 + static_cast<int>(rng() % 4);
    for (int r = 0; r < rounds; ++r) script = mutate(std::move(script), rng);

    // Feed the mutant line-by-line exactly as a session would: the first
    // line is the request, the rest are the continuation-line source.
    std::istringstream in(script);
    std::string line;
    while (std::getline(in, line)) {
      ParsedRequest pr = parse_request(line, [&](std::string& next) {
        return static_cast<bool>(std::getline(in, next));
      });
      if (pr.ok) {
        ++parsed;
        EXPECT_TRUE(pr.req.verb == Verb::kStats || pr.req.verb == Verb::kQuit ||
                    !pr.req.pairs.empty());
      } else {
        ++rejected;
        EXPECT_FALSE(pr.error.empty());
      }
    }
  }
  // The corpus genuinely exercises both sides of the parser (≥1 of each
  // per script on average — mutations leave most lines intact).
  EXPECT_GT(parsed, 40u);
  EXPECT_GT(rejected, 40u);
}

// ---------------------------------------------------------------------------
// Server-level: the same corpus through live sessions.
// ---------------------------------------------------------------------------

TEST(ProtocolFuzz, LiveSessionsSurviveMutatedScripts) {
  Scene scene = fuzz_scene();
  Engine ref(Scene{scene}, {.backend = Backend::kAllPairsSeq});
  QueryServer srv(
      Engine(Scene{scene}, {.backend = Backend::kAllPairsSeq, .num_threads = 2}),
      {.max_batch_pairs = 8, .coalesce_window_us = 50});

  for (uint64_t seed = 1; seed <= 60; ++seed) {
    std::mt19937_64 rng(seed * 0xBF58476D1CE4E5B9ull);
    std::string script = valid_script(scene, seed);
    const int rounds = 1 + static_cast<int>(rng() % 4);
    for (int r = 0; r < rounds; ++r) script = mutate(std::move(script), rng);

    std::istringstream in(script);
    std::ostringstream out;
    srv.serve(in, out);  // returning at all proves no hung writer

    // Framing invariants: one line per answered request, every line OK/ERR,
    // and never more responses than input lines (BATCH consumes extras).
    std::istringstream split(out.str());
    std::string line;
    size_t responses = 0;
    while (std::getline(split, line)) {
      ++responses;
      EXPECT_TRUE(line.rfind("OK", 0) == 0 || line.rfind("ERR", 0) == 0)
          << "seed " << seed << ": bad response line '" << line << "'";
      // The formatter contract: responses stay printable single lines even
      // when the request embedded NULs or escape bytes.
      for (char c : line) {
        EXPECT_GE(static_cast<unsigned char>(c), 0x20)
            << "seed " << seed << ": control byte in response";
      }
    }
    EXPECT_LE(responses, count_lines(script)) << "seed " << seed;
  }

  // The server is still fully serviceable: a clean session answers
  // byte-identically to the reference engine.
  auto pts = random_free_points(scene, 4, 5);
  std::ostringstream script, want;
  script << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
         << pts[1].y << "\n"
         << "PATH " << pts[2].x << ',' << pts[2].y << ' ' << pts[3].x << ','
         << pts[3].y << "\nQUIT\n";
  want << format_length(*ref.length(pts[0], pts[1])) << '\n'
       << format_path(*ref.path(pts[2], pts[3])) << '\n'
       << "OK bye\n";
  std::istringstream in(script.str());
  std::ostringstream out;
  srv.serve(in, out);
  EXPECT_EQ(out.str(), want.str());
  EXPECT_EQ(srv.stats().shed, 0u);  // unbounded queue: fuzzing never sheds
}

// Embedded NULs specifically: a NUL inside a verb, a coordinate, and a
// BATCH pair line — each must come back as a single printable error line.
TEST(ProtocolFuzz, EmbeddedNulBytesAreHandledAndAnswered) {
  Scene scene = fuzz_scene();
  QueryServer srv(Engine(Scene{scene}, {.backend = Backend::kAllPairsSeq}));

  std::string script;
  script += std::string("LE\0N 1,1 2,2\n", 13);
  script += std::string("LEN 1,\0 2,2\n", 12);
  script += std::string("BATCH 1\n1,1 \0,2\n", 16);
  script += "QUIT\n";
  std::istringstream in(script);
  std::ostringstream out;
  srv.serve(in, out);

  std::istringstream split(out.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(split, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u) << out.str();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(lines[i].rfind("ERR BAD_REQUEST", 0), 0u) << lines[i];
    EXPECT_EQ(lines[i].find('\0'), std::string::npos);
  }
  EXPECT_EQ(lines[3], "OK bye");
}

// ---------------------------------------------------------------------------
// Router framing fuzz (serve/router.h): shard responses are mutated with
// structure-breaking edits before the router sees them. The contract: a
// mutated sub-batch response surfaces as a retry or a SHARD_DOWN error —
// never a crash, never a hang, and never a mis-merge (a partial OK mixing
// healthy shards' values with garbage). Scripts use LEN and BATCH only:
// those responses carry their own arity ("OK <n> v1..vn", strict
// two-token LEN), so *any* token-structure edit is detectable. PATH's
// grammar is open-ended (no vertex count on the wire), so a dropped
// interior vertex is wire-indistinguishable — routing still validates its
// shape, but the fuzz oracle would be ambiguous.
// ---------------------------------------------------------------------------

struct RouterFuzzFixture {
  std::string man_path;
  ShardManifest man;
  Engine engine;
};

RouterFuzzFixture& router_fuzz() {
  static RouterFuzzFixture* f = [] {
    Scene s = fuzz_scene();
    Engine eng(Scene{s}, {.backend = Backend::kAllPairsSeq});
    std::string dir =
        testutil::unique_fixture_dir(::testing::TempDir() + "/rsp_router_fuzz");
    std::filesystem::create_directories(dir);
    std::string path = dir + "/fuzz.man";
    Status st = eng.save(path, {.shards = 3});
    RSP_CHECK_MSG(st.ok(), st.to_string());
    Result<ShardManifest> man = load_manifest(path);
    RSP_CHECK_MSG(man.ok(), man.status().to_string());
    return new RouterFuzzFixture{path, std::move(*man), std::move(eng)};
  }();
  return *f;
}

// Structure-breaking edit of one response line: changes the token shape,
// never just a digit (a digit edit is wire-undetectable by design — the
// protocol has no response checksum).
std::string break_framing(std::string line, std::mt19937_64& rng) {
  auto tokens = [&] {
    std::vector<std::string> t;
    std::istringstream is(line);
    std::string w;
    while (is >> w) t.push_back(w);
    return t;
  }();
  switch (rng() % 6) {
    case 0: {  // drop a token
      if (tokens.empty()) return "";
      tokens.erase(tokens.begin() + static_cast<long>(rng() % tokens.size()));
      break;
    }
    case 1: {  // duplicate a token
      if (tokens.empty()) return "x";
      size_t at = rng() % tokens.size();
      tokens.insert(tokens.begin() + static_cast<long>(at), tokens[at]);
      break;
    }
    case 2:  // leading garbage (an "OK"/"ERR" prefix no more)
      tokens.insert(tokens.begin(), "garbage");
      break;
    case 3: {  // control byte mid-line
      line.insert(line.empty() ? 0 : rng() % line.size(), 1, '\x01');
      return line;
    }
    case 4:  // emptied line (connection glitch swallowing the payload)
      return "";
    default: {  // a numeric token turns non-numeric
      for (size_t i = 1; i < tokens.size(); ++i) {
        if (!tokens[i].empty() &&
            (std::isdigit(static_cast<unsigned char>(tokens[i][0])) ||
             tokens[i][0] == '-')) {
          tokens[i] = "not-a-number";
          break;
        }
      }
      break;
    }
  }
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i) out += ' ';
    out += tokens[i];
  }
  return out;
}

// Wraps the in-process engine channel; `mutate_this_incarnation` decides
// whether every response on this channel is broken before delivery.
class MutatingChannel : public ShardChannel {
 public:
  MutatingChannel(std::unique_ptr<ShardChannel> inner, std::mt19937_64* rng,
                  bool mutate, size_t* mutations)
      : inner_(std::move(inner)),
        rng_(rng),
        mutate_(mutate),
        mutations_(mutations) {}
  bool send(std::string_view data) override { return inner_->send(data); }
  bool recv_line(std::string& line, std::chrono::milliseconds t) override {
    if (!inner_->recv_line(line, t)) return false;
    if (mutate_) {
      line = break_framing(std::move(line), *rng_);
      ++*mutations_;
    }
    return true;
  }

 private:
  std::unique_ptr<ShardChannel> inner_;
  std::mt19937_64* rng_;
  bool mutate_;
  size_t* mutations_;
};

// A LEN/BATCH-only script with sources spread over the container.
std::string router_fuzz_script(uint64_t seed, size_t requests) {
  auto pts = random_free_points(router_fuzz().engine.scene(),
                                2 * requests + 8, seed);
  std::mt19937_64 rng(seed ^ 0xD1B54A32D192ED03ull);
  std::ostringstream os;
  for (size_t i = 0; i < requests; ++i) {
    const Point& a = pts[2 * i];
    const Point& b = pts[2 * i + 1];
    if (rng() % 3 == 0) {
      const size_t k = 2 + rng() % 3;
      os << "BATCH " << k << '\n';
      for (size_t j = 0; j < k; ++j) {
        const Point& u = pts[(2 * i + j) % pts.size()];
        const Point& v = pts[(2 * i + j + 3) % pts.size()];
        os << u.x << ',' << u.y << ' ' << v.x << ',' << v.y << '\n';
      }
    } else {
      os << "LEN " << a.x << ',' << a.y << ' ' << b.x << ',' << b.y << '\n';
    }
  }
  os << "QUIT\n";
  return os.str();
}

std::string router_oracle(const std::string& script) {
  Result<Engine> eng = Engine::open(router_fuzz().man_path, {});
  RSP_CHECK_MSG(eng.ok(), eng.status().to_string());
  QueryServer srv(std::move(*eng), {.coalesce_window_us = 0});
  std::istringstream in(script);
  std::ostringstream out;
  srv.serve(in, out);
  return out.str();
}

// Every exchange's first delivery is broken, every retry runs clean (odd
// connect incarnations mutate): with one retry the router must absorb the
// whole corpus *transparently* — final transcripts byte-identical to the
// oracle, one retry per failed exchange, zero SHARD_DOWN.
TEST(RouterFramingFuzz, BrokenFramingIsAlwaysRetriedNeverDelivered) {
  auto& f = router_fuzz();
  size_t total_mutations = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    std::mt19937_64 rng(seed * 0x2545F4914F6CDD1Dull);
    std::vector<size_t> incarnation(3, 0);
    ShardConnector connect = [&](size_t shard) {
      const bool mutate = (++incarnation[shard] % 2) == 1;
      return std::make_unique<MutatingChannel>(
          std::make_unique<testutil::EngineShardChannel>(&f.engine), &rng,
          mutate, &total_mutations);
    };
    Router router(f.man, connect);  // shard_retries = 1 (default)
    const std::string script = router_fuzz_script(seed, 10);
    std::istringstream in(script);
    std::ostringstream out;
    router.serve(in, out);
    EXPECT_EQ(out.str(), router_oracle(script)) << "seed " << seed;
    RouterStats s = router.stats();
    EXPECT_EQ(s.shard_down, 0u) << "seed " << seed;
    uint64_t retries = 0;
    for (const auto& sh : s.shards) retries += sh.retries;
    EXPECT_GT(retries, 0u) << "seed " << seed;
  }
  // One mutation per touched shard per session (the mutating incarnation
  // dies on its first rejected response) — the corpus was not vacuous.
  EXPECT_GT(total_mutations, 10u);
}

// No retries, random 50% mutation: every response line is either the
// exact oracle line or ERR SHARD_DOWN — the one-line-per-request framing
// holds and healthy shards' values never merge with garbage.
TEST(RouterFramingFuzz, MutantsDegradeToShardDownNeverMisMerge) {
  auto& f = router_fuzz();
  size_t total_mutations = 0, down_lines = 0, exact_lines = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull);
    ShardConnector connect = [&](size_t) {
      return std::make_unique<MutatingChannel>(
          std::make_unique<testutil::EngineShardChannel>(&f.engine), &rng,
          rng() % 2 == 0, &total_mutations);
    };
    Router router(f.man, connect, {.shard_retries = 0});
    const std::string script = router_fuzz_script(seed, 10);
    std::istringstream in(script);
    std::ostringstream out;
    router.serve(in, out);

    std::istringstream gi(out.str()), ei(router_oracle(script));
    std::string gl, el;
    size_t lineno = 0;
    while (std::getline(ei, el)) {
      ASSERT_TRUE(std::getline(gi, gl))
          << "seed " << seed << ": transcript short at line " << lineno;
      if (gl == el) {
        ++exact_lines;
      } else {
        ++down_lines;
        EXPECT_EQ(gl.rfind("ERR SHARD_DOWN shard ", 0), 0u)
            << "seed " << seed << " line " << lineno
            << ": neither oracle nor SHARD_DOWN: '" << gl << "'";
      }
      for (char c : gl) {
        EXPECT_GE(static_cast<unsigned char>(c), 0x20)
            << "seed " << seed << ": control byte leaked to the client";
      }
      ++lineno;
    }
    EXPECT_FALSE(std::getline(gi, gl)) << "seed " << seed << ": extra lines";
  }
  EXPECT_GT(total_mutations, 30u);
  EXPECT_GT(down_lines, 0u);   // mutants really degraded some lines...
  EXPECT_GT(exact_lines, 0u);  // ...and clean exchanges stayed exact
}

}  // namespace
}  // namespace rsp
