// Seeded deterministic protocol fuzzing (serve/protocol.h + serve/server.h).
//
// Valid scripted sessions are mutated — byte flips, truncations, random
// insertions (embedded NULs, high bytes), deleted ranges, duplicated
// chunks, and oversized BATCH counts — and every mutant is driven through
// BOTH the bare parser and a live QueryServer session. The contract under
// attack:
//
//   * parse_request never throws and never crashes; !ok always carries a
//     non-empty error,
//   * a live session answers every request line with exactly one
//     "OK ..."/"ERR ..." line — mutants cannot crash the server, hang the
//     writer, or desynchronize the one-request/one-response framing,
//   * the server stays fully serviceable after the whole corpus (a final
//     known-good session must answer byte-identically to a direct Engine).
//
// Everything is seeded (std::mt19937_64): a failure reproduces exactly.

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "io/gen.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace rsp {
namespace {

// A small scene keeps the engine build negligible; the fuzz target is the
// protocol/session layer, not the all-pairs structure.
Scene fuzz_scene() { return gen_uniform(10, 97); }

// A valid pipelined session mixing every verb (the mutation baseline).
std::string valid_script(const Scene& scene, uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pts = random_free_points(scene, 8, seed);
  std::ostringstream os;
  auto point = [&](size_t i) {
    os << pts[i % pts.size()].x << ',' << pts[i % pts.size()].y;
  };
  for (int i = 0; i < 12; ++i) {
    switch (rng() % 4) {
      case 0:
        os << "LEN ";
        point(rng());
        os << ' ';
        point(rng());
        os << '\n';
        break;
      case 1:
        os << "PATH ";
        point(rng());
        os << ' ';
        point(rng());
        os << '\n';
        break;
      case 2: {
        const int k = 1 + static_cast<int>(rng() % 3);
        os << "BATCH " << k << '\n';
        for (int j = 0; j < k; ++j) {
          point(rng());
          os << ' ';
          point(rng());
          os << '\n';
        }
        break;
      }
      default:
        os << "STATS\n";
        break;
    }
  }
  os << "QUIT\n";
  return os.str();
}

// One deterministic mutation of `s` drawn from `rng`.
std::string mutate(std::string s, std::mt19937_64& rng) {
  if (s.empty()) return s;
  switch (rng() % 6) {
    case 0: {  // byte flip (NUL and high bytes included)
      s[rng() % s.size()] = static_cast<char>(rng() % 256);
      break;
    }
    case 1: {  // truncation (possibly mid-BATCH, possibly losing QUIT)
      s.resize(rng() % s.size());
      break;
    }
    case 2: {  // insert a hostile byte
      static constexpr char kBytes[] = {'\0', '\t', ' ', ',', '-', '\xff',
                                        '9',  'L',  '\n'};
      s.insert(rng() % s.size(), 1, kBytes[rng() % sizeof(kBytes)]);
      break;
    }
    case 3: {  // delete a range
      const size_t at = rng() % s.size();
      s.erase(at, 1 + rng() % 16);
      break;
    }
    case 4: {  // duplicate a chunk elsewhere (desync generator)
      const size_t at = rng() % s.size();
      const std::string chunk = s.substr(at, 1 + rng() % 24);
      s.insert(rng() % s.size(), chunk);
      break;
    }
    default: {  // blow up a number: oversized k / out-of-range coordinate
      const size_t at = s.find_first_of("0123456789");
      if (at != std::string::npos) {
        s.insert(at, "99999999999999999999");
      }
      break;
    }
  }
  return s;
}

size_t count_lines(const std::string& s) {
  size_t n = 0;
  for (char c : s) n += c == '\n';
  if (!s.empty() && s.back() != '\n') ++n;  // trailing partial line
  return n;
}

// ---------------------------------------------------------------------------
// Parser-level: every mutated line parses to ok or to a non-empty error.
// ---------------------------------------------------------------------------

TEST(ProtocolFuzz, ParserNeverCrashesOnMutatedLines) {
  Scene scene = fuzz_scene();
  size_t parsed = 0, rejected = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull);
    std::string script = valid_script(scene, seed);
    const int rounds = 1 + static_cast<int>(rng() % 4);
    for (int r = 0; r < rounds; ++r) script = mutate(std::move(script), rng);

    // Feed the mutant line-by-line exactly as a session would: the first
    // line is the request, the rest are the continuation-line source.
    std::istringstream in(script);
    std::string line;
    while (std::getline(in, line)) {
      ParsedRequest pr = parse_request(line, [&](std::string& next) {
        return static_cast<bool>(std::getline(in, next));
      });
      if (pr.ok) {
        ++parsed;
        EXPECT_TRUE(pr.req.verb == Verb::kStats || pr.req.verb == Verb::kQuit ||
                    !pr.req.pairs.empty());
      } else {
        ++rejected;
        EXPECT_FALSE(pr.error.empty());
      }
    }
  }
  // The corpus genuinely exercises both sides of the parser (≥1 of each
  // per script on average — mutations leave most lines intact).
  EXPECT_GT(parsed, 40u);
  EXPECT_GT(rejected, 40u);
}

// ---------------------------------------------------------------------------
// Server-level: the same corpus through live sessions.
// ---------------------------------------------------------------------------

TEST(ProtocolFuzz, LiveSessionsSurviveMutatedScripts) {
  Scene scene = fuzz_scene();
  Engine ref(Scene{scene}, {.backend = Backend::kAllPairsSeq});
  QueryServer srv(
      Engine(Scene{scene}, {.backend = Backend::kAllPairsSeq, .num_threads = 2}),
      {.max_batch_pairs = 8, .coalesce_window_us = 50});

  for (uint64_t seed = 1; seed <= 60; ++seed) {
    std::mt19937_64 rng(seed * 0xBF58476D1CE4E5B9ull);
    std::string script = valid_script(scene, seed);
    const int rounds = 1 + static_cast<int>(rng() % 4);
    for (int r = 0; r < rounds; ++r) script = mutate(std::move(script), rng);

    std::istringstream in(script);
    std::ostringstream out;
    srv.serve(in, out);  // returning at all proves no hung writer

    // Framing invariants: one line per answered request, every line OK/ERR,
    // and never more responses than input lines (BATCH consumes extras).
    std::istringstream split(out.str());
    std::string line;
    size_t responses = 0;
    while (std::getline(split, line)) {
      ++responses;
      EXPECT_TRUE(line.rfind("OK", 0) == 0 || line.rfind("ERR", 0) == 0)
          << "seed " << seed << ": bad response line '" << line << "'";
      // The formatter contract: responses stay printable single lines even
      // when the request embedded NULs or escape bytes.
      for (char c : line) {
        EXPECT_GE(static_cast<unsigned char>(c), 0x20)
            << "seed " << seed << ": control byte in response";
      }
    }
    EXPECT_LE(responses, count_lines(script)) << "seed " << seed;
  }

  // The server is still fully serviceable: a clean session answers
  // byte-identically to the reference engine.
  auto pts = random_free_points(scene, 4, 5);
  std::ostringstream script, want;
  script << "LEN " << pts[0].x << ',' << pts[0].y << ' ' << pts[1].x << ','
         << pts[1].y << "\n"
         << "PATH " << pts[2].x << ',' << pts[2].y << ' ' << pts[3].x << ','
         << pts[3].y << "\nQUIT\n";
  want << format_length(*ref.length(pts[0], pts[1])) << '\n'
       << format_path(*ref.path(pts[2], pts[3])) << '\n'
       << "OK bye\n";
  std::istringstream in(script.str());
  std::ostringstream out;
  srv.serve(in, out);
  EXPECT_EQ(out.str(), want.str());
  EXPECT_EQ(srv.stats().shed, 0u);  // unbounded queue: fuzzing never sheds
}

// Embedded NULs specifically: a NUL inside a verb, a coordinate, and a
// BATCH pair line — each must come back as a single printable error line.
TEST(ProtocolFuzz, EmbeddedNulBytesAreHandledAndAnswered) {
  Scene scene = fuzz_scene();
  QueryServer srv(Engine(Scene{scene}, {.backend = Backend::kAllPairsSeq}));

  std::string script;
  script += std::string("LE\0N 1,1 2,2\n", 13);
  script += std::string("LEN 1,\0 2,2\n", 12);
  script += std::string("BATCH 1\n1,1 \0,2\n", 16);
  script += "QUIT\n";
  std::istringstream in(script);
  std::ostringstream out;
  srv.serve(in, out);

  std::istringstream split(out.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(split, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u) << out.str();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(lines[i].rfind("ERR BAD_REQUEST", 0), 0u) << lines[i];
    EXPECT_EQ(lines[i].find('\0'), std::string::npos);
  }
  EXPECT_EQ(lines[3], "OK bye");
}

}  // namespace
}  // namespace rsp
