#pragma once
// Baselines and the test oracle.
//
// oracle_length / oracle_path: Dijkstra on the Hanan track graph — the
// ground truth every algorithm in this library is tested against.
//
// repeated-Dijkstra all-pairs: the naive comparator the paper's data
// structure is measured against in bench_baseline (the paper's intro
// positions the structure against repeated single-source/single-pair
// computations such as [11] run n times, or Guha–Stout/ElGindy–Mitra
// single-pair runs per query).

#include "core/scene.h"
#include "grid/trackgraph.h"
#include "monge/matrix.h"

namespace rsp {

// Ground-truth shortest path length between two free points (container
// constrained). O(n^2 log n) per call — test oracle, not a fast path.
Length oracle_length(const Scene& scene, const Point& s, const Point& t);

// Ground-truth path polyline.
std::vector<Point> oracle_path(const Scene& scene, const Point& s,
                               const Point& t);

// All-pairs V_R-to-V_R by repeated Dijkstra on one shared track graph.
// The baseline for bench_baseline (E5).
Matrix all_pairs_repeated_dijkstra(const Scene& scene);

}  // namespace rsp
