#include "baseline/dijkstra.h"

namespace rsp {

Length oracle_length(const Scene& scene, const Point& s, const Point& t) {
  std::vector<Point> extra{s, t};
  TrackGraph g(scene.obstacles(), &scene.container(), extra);
  return g.shortest_length(s, t);
}

std::vector<Point> oracle_path(const Scene& scene, const Point& s,
                               const Point& t) {
  std::vector<Point> extra{s, t};
  TrackGraph g(scene.obstacles(), &scene.container(), extra);
  auto p = g.shortest_path(s, t);
  RSP_CHECK_MSG(p.has_value(), "oracle: query points disconnected");
  return *p;
}

Matrix all_pairs_repeated_dijkstra(const Scene& scene) {
  TrackGraph g(scene.obstacles(), &scene.container());
  const auto& verts = scene.obstacle_vertices();
  const size_t m = verts.size();
  Matrix d(m, m, kInf);
  for (size_t a = 0; a < m; ++a) {
    std::vector<Length> dist = g.single_source(verts[a]);
    for (size_t b = 0; b < m; ++b) {
      int node = g.node_at(verts[b]);
      RSP_CHECK(node >= 0);
      d(a, b) = dist[static_cast<size_t>(node)];
    }
  }
  return d;
}

}  // namespace rsp
