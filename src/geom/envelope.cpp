#include "geom/envelope.h"

#include <algorithm>

namespace rsp {

namespace {

// Expand a list of Pareto-maximal points into the hull boundary chain
// between consecutive maxima. `bend(a, b)` supplies the intermediate corner.
template <typename BendFn>
std::vector<Point> expand_chain(const std::vector<Point>& maxima,
                                BendFn bend) {
  std::vector<Point> chain;
  chain.reserve(maxima.size() * 2);
  for (size_t i = 0; i < maxima.size(); ++i) {
    chain.push_back(maxima[i]);
    if (i + 1 < maxima.size()) chain.push_back(bend(maxima[i], maxima[i + 1]));
  }
  return chain;
}

void append_walk(std::vector<Point>& boundary, const std::vector<Point>& walk) {
  for (const auto& p : walk) {
    if (!boundary.empty() && boundary.back() == p) continue;
    boundary.push_back(p);
  }
}

}  // namespace

Envelope Envelope::compute(std::span<const Rect> rects) {
  RSP_CHECK_MSG(!rects.empty(), "envelope of empty set");
  Envelope env;
  env.ne = Staircase::max_staircase(rects, Quadrant::NE);
  env.nw = Staircase::max_staircase(rects, Quadrant::NW);
  env.se = Staircase::max_staircase(rects, Quadrant::SE);
  env.sw = Staircase::max_staircase(rects, Quadrant::SW);

  // Hull existence (paper: fails iff MAX_NE ∩ MAX_SW or MAX_NW ∩ MAX_SE
  // properly cross, pinching the region). Operationally: sweep the hull's
  // x-extent; the hull exists iff every column's [L(x), U(x)] interval is
  // nonempty and consecutive columns' intervals overlap, where
  // U = min(top of NE, top of NW) and L = max(bottom of SE, bottom of SW).
  Rect bb = bounding_box(rects.begin(), rects.end());
  std::vector<Coord> xs;
  for (const auto& r : rects) {
    xs.push_back(r.xmin);
    xs.push_back(r.xmax);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::vector<Coord> cols;
  for (size_t i = 0; i < xs.size(); ++i) {
    cols.push_back(xs[i]);
    if (i + 1 < xs.size() && xs[i] + 1 < xs[i + 1]) {
      cols.push_back(xs[i] + (xs[i + 1] - xs[i]) / 2);
    }
  }
  auto column = [&](Coord x) -> std::pair<Coord, Coord> {
    Coord hi = std::min(env.ne.y_interval_at(x).second,
                        env.nw.y_interval_at(x).second);
    Coord lo = std::max(env.se.y_interval_at(x).first,
                        env.sw.y_interval_at(x).first);
    // Sentinel tails leak past the hull's y-extent; the true boundary at
    // the extreme columns coincides with the bounding box.
    return {std::max(lo, bb.ymin), std::min(hi, bb.ymax)};
  };
  env.hull_exists = true;
  std::pair<Coord, Coord> prev{0, 0};
  for (size_t i = 0; i < cols.size(); ++i) {
    Coord x = cols[i];
    auto cur = column(x);
    if (cur.first > cur.second) env.hull_exists = false;
    if (i > 0 && env.hull_exists &&
        (cur.first > prev.second || prev.first > cur.second)) {
      env.hull_exists = false;  // diagonal disconnect between columns
    }
    // Classify which staircase pair pinches (for the degenerate bridge).
    Coord hi_ne = std::min(env.ne.y_interval_at(x).second, bb.ymax);
    Coord lo_sw = std::max(env.sw.y_interval_at(x).first, bb.ymin);
    if (hi_ne < lo_sw) env.bridge_ne = true;
    prev = cur;
  }
  if (!env.hull_exists) return env;

  std::vector<Point> corners;
  corners.reserve(rects.size() * 4);
  for (const auto& r : rects)
    for (const auto& v : r.vertices()) corners.push_back(v);

  // The four maximal chains, each sorted by ascending x:
  //   NW: leftmost(top) -> topmost(left);  NE: topmost(right) -> rightmost(top)
  //   SW: leftmost(bottom) -> bottommost;  SE: bottommost -> rightmost(bottom)
  auto nw_m = pareto_maxima(corners, Quadrant::NW);
  auto ne_m = pareto_maxima(corners, Quadrant::NE);
  auto se_m = pareto_maxima(corners, Quadrant::SE);
  auto sw_m = pareto_maxima(corners, Quadrant::SW);

  // Clockwise walk W -> N -> E -> S (reversed to CCW at the end). Bend
  // shapes follow the lowest-rightmost / lowest-leftmost / ... rules of the
  // MAX staircases (see Fig. 1/2 of the paper), so each boundary piece is
  // exactly the clipped MAX staircase and the walk agrees with contains().
  std::vector<Point>& b = env.boundary;
  // NW chain, walked from leftmost to topmost: horizontal then vertical.
  append_walk(b, expand_chain(nw_m, [](const Point& a, const Point& c) {
                return Point{c.x, a.y};
              }));
  // NE chain from topmost to rightmost: vertical drop, then horizontal.
  append_walk(b, expand_chain(ne_m, [](const Point& a, const Point& c) {
                return Point{a.x, c.y};
              }));
  // SE chain from rightmost down to bottommost: reverse of ascending-x walk.
  {
    auto walk = expand_chain(se_m, [](const Point& a, const Point& c) {
      return Point{a.x, c.y};
    });
    std::reverse(walk.begin(), walk.end());
    append_walk(b, walk);
  }
  // SW chain from bottommost back to leftmost: reverse of ascending-x walk.
  {
    auto walk = expand_chain(sw_m, [](const Point& a, const Point& c) {
      return Point{c.x, a.y};
    });
    std::reverse(walk.begin(), walk.end());
    append_walk(b, walk);
  }
  if (b.size() > 1 && b.front() == b.back()) b.pop_back();
  std::reverse(b.begin(), b.end());
  return env;
}

bool Envelope::contains(const Point& p) const {
  bool in_region = ne.side_of(p) <= 0 && nw.side_of(p) <= 0 &&
                   se.side_of(p) >= 0 && sw.side_of(p) >= 0;
  if (in_region || hull_exists) return in_region;
  // Degenerate cases: the envelope additionally includes the finite bridge
  // segments of MAX_NE (case i: NE and SW pinch) or MAX_NW (case ii).
  const Staircase& bridge = bridge_ne ? ne : nw;
  return bridge.side_of(p) == 0 && std::llabs(p.x) < Staircase::kBig &&
         std::llabs(p.y) < Staircase::kBig;
}

}  // namespace rsp
