#pragma once
// Axis-parallel segments. All paths in the library are chains of these.

#include <ostream>

#include "geom/point.h"
#include "geom/rect.h"

namespace rsp {

struct Segment {
  Point a, b;

  Segment() = default;
  Segment(Point a_, Point b_) : a(a_), b(b_) {
    RSP_CHECK_MSG(a.x == b.x || a.y == b.y, "segment must be axis-parallel");
  }

  friend bool operator==(const Segment&, const Segment&) = default;

  bool horizontal() const { return a.y == b.y && a.x != b.x; }
  bool vertical() const { return a.x == b.x && a.y != b.y; }
  bool degenerate() const { return a == b; }

  Length length() const { return dist1(a, b); }

  Coord lo_x() const { return std::min(a.x, b.x); }
  Coord hi_x() const { return std::max(a.x, b.x); }
  Coord lo_y() const { return std::min(a.y, b.y); }
  Coord hi_y() const { return std::max(a.y, b.y); }

  bool contains(const Point& p) const {
    return lo_x() <= p.x && p.x <= hi_x() && lo_y() <= p.y && p.y <= hi_y() &&
           (a.x == b.x ? p.x == a.x : p.y == a.y);
  }

  // True iff this segment's interior intersects the rectangle's interior
  // (i.e. the segment actually penetrates the obstacle; sliding along a
  // boundary edge is allowed).
  bool pierces(const Rect& r) const {
    if (degenerate()) return r.contains_strict(a);
    if (horizontal()) {
      return a.y > r.ymin && a.y < r.ymax && lo_x() < r.xmax &&
             hi_x() > r.xmin;
    }
    return a.x > r.xmin && a.x < r.xmax && lo_y() < r.ymax && hi_y() > r.ymin;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Segment& s) {
  return os << s.a << "->" << s.b;
}

}  // namespace rsp
