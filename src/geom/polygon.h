#pragma once
// Rectilinear convex polygons (the paper's container polygon P, §2).
//
// Stored as a closed CCW vertex cycle with axis-parallel edges. Convexity
// (in the rectilinear sense: intersection with every axis-parallel line is
// contiguous) is validated on construction by decomposing the boundary at
// the four extreme vertices into four monotone staircase chains; those
// chains also power O(log V) containment tests.

#include <span>
#include <vector>

#include "geom/rect.h"
#include "geom/staircase.h"

namespace rsp {

class RectilinearPolygon {
 public:
  RectilinearPolygon() = default;

  // `verts` is the CCW cycle (last vertex implicitly connects to the first).
  // Checks axis-parallel edges and rectilinear convexity.
  static RectilinearPolygon from_vertices(std::vector<Point> verts);

  static RectilinearPolygon rectangle(const Rect& r);

  const std::vector<Point>& vertices() const { return verts_; }
  size_t size() const { return verts_.size(); }

  Segment edge(size_t i) const {
    return {verts_[i], verts_[(i + 1) % verts_.size()]};
  }

  const Rect& bbox() const { return bbox_; }
  Length perimeter() const;

  // The contiguous y-interval of the polygon on the vertical line at x
  // (convexity makes it contiguous). x must be within [bbox.xmin, bbox.xmax].
  std::pair<Coord, Coord> y_range_at(Coord x) const;
  // Symmetric: the x-interval on the horizontal line at y.
  std::pair<Coord, Coord> x_range_at(Coord y) const;

  // Boundary-inclusive containment, O(log V).
  bool contains(const Point& p) const;
  bool contains(const Rect& r) const {
    return contains(r.ll()) && contains(r.ur()) && contains(r.lr()) &&
           contains(r.ul());
  }
  bool on_boundary(const Point& p) const;

  // The four monotone boundary chains as unbounded staircases (the interior
  // lies above ws/se and below ne/wn):
  //   ws: leftmost -> bottommost (decreasing)   se: bottommost -> rightmost
  //   ne: topmost  -> rightmost (decreasing)    wn: leftmost -> topmost
  const Staircase& chain_ws() const { return ws_; }
  const Staircase& chain_se() const { return se_; }
  const Staircase& chain_ne() const { return ne_; }
  const Staircase& chain_wn() const { return wn_; }

 private:
  std::vector<Point> verts_;
  Rect bbox_;
  Staircase ws_, se_, ne_, wn_;
  // Chain split vertices: A leftmost(-top), B bottommost(-right),
  // C rightmost(-top), D topmost(-left).
  Point a_, b_, c_, d_;
};

}  // namespace rsp
