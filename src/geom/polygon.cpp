#include "geom/polygon.h"

#include <algorithm>

namespace rsp {

namespace {

// Signed area (shoelace); positive for CCW cycles.
long long signed_area2(const std::vector<Point>& v) {
  long long a = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    const Point& p = v[i];
    const Point& q = v[(i + 1) % v.size()];
    a += p.x * q.y - q.x * p.y;
  }
  return a;
}

// Cyclic slice v[i..j] inclusive.
std::vector<Point> portion(const std::vector<Point>& v, size_t i, size_t j) {
  std::vector<Point> out;
  for (size_t k = i;; k = (k + 1) % v.size()) {
    out.push_back(v[k]);
    if (k == j) break;
  }
  return out;
}

bool monotone(const std::vector<Point>& c, int sx, int sy) {
  for (size_t i = 0; i + 1 < c.size(); ++i) {
    Coord dx = c[i + 1].x - c[i].x, dy = c[i + 1].y - c[i].y;
    if (sx * dx < 0 || sy * dy < 0) return false;
  }
  return true;
}

}  // namespace

RectilinearPolygon RectilinearPolygon::from_vertices(std::vector<Point> v) {
  RSP_CHECK_MSG(v.size() >= 4, "polygon needs at least 4 vertices");
  // Normalize to CCW.
  if (signed_area2(v) < 0) std::reverse(v.begin(), v.end());
  RSP_CHECK_MSG(signed_area2(v) > 0, "degenerate polygon");
  // Merge collinear runs (cyclically) and reject duplicate vertices.
  std::vector<Point> w;
  for (size_t i = 0; i < v.size(); ++i) {
    const Point& prev = v[(i + v.size() - 1) % v.size()];
    const Point& cur = v[i];
    const Point& next = v[(i + 1) % v.size()];
    RSP_CHECK_MSG(cur != next, "duplicate polygon vertex");
    RSP_CHECK_MSG(cur.x == next.x || cur.y == next.y,
                  "polygon edge not axis-parallel");
    bool collinear = (prev.x == cur.x && cur.x == next.x) ||
                     (prev.y == cur.y && cur.y == next.y);
    if (!collinear) w.push_back(cur);
  }
  v = std::move(w);
  RSP_CHECK(v.size() >= 4);

  RectilinearPolygon poly;
  poly.verts_ = v;
  poly.bbox_ = Rect{v[0].x, v[0].y, v[0].x, v[0].y};
  for (const auto& p : v) {
    poly.bbox_.xmin = std::min(poly.bbox_.xmin, p.x);
    poly.bbox_.xmax = std::max(poly.bbox_.xmax, p.x);
    poly.bbox_.ymin = std::min(poly.bbox_.ymin, p.y);
    poly.bbox_.ymax = std::max(poly.bbox_.ymax, p.y);
  }

  // Extreme vertices splitting the boundary into four monotone chains:
  //   A: min x (tie: max y)   B: min y (tie: max x)
  //   C: max x (tie: max y)   D: max y (tie: min x)
  auto find_idx = [&](auto better) {
    size_t best = 0;
    for (size_t i = 1; i < v.size(); ++i)
      if (better(v[i], v[best])) best = i;
    return best;
  };
  size_t ia = find_idx([](const Point& p, const Point& q) {
    return p.x != q.x ? p.x < q.x : p.y > q.y;
  });
  size_t ib = find_idx([](const Point& p, const Point& q) {
    return p.y != q.y ? p.y < q.y : p.x > q.x;
  });
  size_t ic = find_idx([](const Point& p, const Point& q) {
    return p.x != q.x ? p.x > q.x : p.y > q.y;
  });
  size_t id = find_idx([](const Point& p, const Point& q) {
    return p.y != q.y ? p.y > q.y : p.x < q.x;
  });

  // CCW walk visits A (leftmost-top), B (bottommost-right), C
  // (rightmost-top), D (topmost-left) in that cyclic order. Each portion
  // must be a monotone staircase; that is exactly rectilinear convexity.
  poly.a_ = v[ia];
  poly.b_ = v[ib];
  poly.c_ = v[ic];
  poly.d_ = v[id];
  auto ws = portion(v, ia, ib);  // x+, y-
  auto se = portion(v, ib, ic);  // x+, y+
  auto nc = portion(v, ic, id);  // x-, y+   (reversed: decreasing chain D->C)
  auto wn = portion(v, id, ia);  // x-, y-   (reversed: increasing chain A->D)
  RSP_CHECK_MSG(monotone(ws, +1, -1) && monotone(se, +1, +1) &&
                    monotone(nc, -1, +1) && monotone(wn, -1, -1),
                "polygon is not rectilinearly convex");
  std::reverse(nc.begin(), nc.end());
  std::reverse(wn.begin(), wn.end());
  if (ws.size() >= 2)
    poly.ws_ = Staircase::from_chain(std::move(ws), StairOrient::Decreasing);
  if (se.size() >= 2)
    poly.se_ = Staircase::from_chain(std::move(se), StairOrient::Increasing);
  if (nc.size() >= 2)
    poly.ne_ = Staircase::from_chain(std::move(nc), StairOrient::Decreasing);
  if (wn.size() >= 2)
    poly.wn_ = Staircase::from_chain(std::move(wn), StairOrient::Increasing);
  return poly;
}

RectilinearPolygon RectilinearPolygon::rectangle(const Rect& r) {
  RSP_CHECK(r.width() > 0 && r.height() > 0);
  return from_vertices({r.ll(), r.lr(), r.ur(), r.ul()});
}

Length RectilinearPolygon::perimeter() const {
  Length sum = 0;
  for (size_t i = 0; i < verts_.size(); ++i) sum += edge(i).length();
  return sum;
}

std::pair<Coord, Coord> RectilinearPolygon::y_range_at(Coord x) const {
  RSP_CHECK(x >= bbox_.xmin && x <= bbox_.xmax);
  auto present = [](const Staircase& s) { return !s.points().empty(); };
  // Upper boundary: wn chain over [A.x, D.x], ne chain over [D.x, C.x].
  Coord hi = bbox_.ymin;
  if (present(wn_) && x >= a_.x && x <= d_.x)
    hi = std::max(hi, wn_.y_interval_at(x).second);
  if (present(ne_) && x >= d_.x && x <= c_.x)
    hi = std::max(hi, ne_.y_interval_at(x).second);
  if (!present(wn_) && !present(ne_)) hi = bbox_.ymax;
  // Lower boundary: ws chain over [A.x, B.x], se chain over [B.x, C.x].
  Coord lo = bbox_.ymax;
  if (present(ws_) && x >= a_.x && x <= b_.x)
    lo = std::min(lo, ws_.y_interval_at(x).first);
  if (present(se_) && x >= b_.x && x <= c_.x)
    lo = std::min(lo, se_.y_interval_at(x).first);
  if (!present(ws_) && !present(se_)) lo = bbox_.ymin;
  // Chain sentinel tails can leak ±kBig at the extreme columns; the true
  // boundary there coincides with the bbox, so clamping is exact.
  lo = std::max(lo, bbox_.ymin);
  hi = std::min(hi, bbox_.ymax);
  RSP_CHECK(lo <= hi);
  return {lo, hi};
}

std::pair<Coord, Coord> RectilinearPolygon::x_range_at(Coord y) const {
  RSP_CHECK(y >= bbox_.ymin && y <= bbox_.ymax);
  auto present = [](const Staircase& s) { return !s.points().empty(); };
  // Right boundary: se chain over y in [B.y, C.y], ne over [C.y, D.y].
  Coord hi = bbox_.xmin;
  if (present(se_) && y >= b_.y && y <= c_.y)
    hi = std::max(hi, se_.x_interval_at(y).second);
  if (present(ne_) && y >= c_.y && y <= d_.y)
    hi = std::max(hi, ne_.x_interval_at(y).second);
  if (!present(se_) && !present(ne_)) hi = bbox_.xmax;
  // Left boundary: ws chain over [B.y, A.y], wn over [A.y, D.y].
  Coord lo = bbox_.xmax;
  if (present(ws_) && y >= b_.y && y <= a_.y)
    lo = std::min(lo, ws_.x_interval_at(y).first);
  if (present(wn_) && y >= a_.y && y <= d_.y)
    lo = std::min(lo, wn_.x_interval_at(y).first);
  if (!present(ws_) && !present(wn_)) lo = bbox_.xmin;
  lo = std::max(lo, bbox_.xmin);
  hi = std::min(hi, bbox_.xmax);
  RSP_CHECK(lo <= hi);
  return {lo, hi};
}

bool RectilinearPolygon::contains(const Point& p) const {
  if (!bbox_.contains(p)) return false;
  auto present = [](const Staircase& s) { return !s.points().empty(); };
  if (present(ws_) && ws_.side_of(p) < 0) return false;
  if (present(se_) && se_.side_of(p) < 0) return false;
  if (present(ne_) && ne_.side_of(p) > 0) return false;
  if (present(wn_) && wn_.side_of(p) > 0) return false;
  return true;
}

bool RectilinearPolygon::on_boundary(const Point& p) const {
  if (!contains(p)) return false;
  auto present = [](const Staircase& s) { return !s.points().empty(); };
  // A contained point is on the boundary iff some chain passes through it.
  // Chain sentinels extend outside the bbox, so the earlier bbox/containment
  // filter removes false positives from the extensions.
  return (present(ws_) && ws_.side_of(p) == 0) ||
         (present(se_) && se_.side_of(p) == 0) ||
         (present(ne_) && ne_.side_of(p) == 0) ||
         (present(wn_) && wn_.side_of(p) == 0);
}

}  // namespace rsp
