#pragma once
// Points in the plane with integer coordinates and the L1 metric.

#include <compare>
#include <cstdlib>
#include <functional>
#include <ostream>

#include "common.h"

namespace rsp {

struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  // Lexicographic (x, then y); the natural order for sweeps.
  friend auto operator<=>(const Point&, const Point&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

// L1 (rectilinear) distance. Every obstacle-free staircase between p and q
// realizes exactly this length (paper §2).
inline Length dist1(const Point& p, const Point& q) {
  return std::llabs(p.x - q.x) + std::llabs(p.y - q.y);
}

// True if p dominates q in the given quadrant sense.
// NE: p.x>=q.x && p.y>=q.y, etc. Used by the Pareto-maxima staircases.
enum class Quadrant { NE, NW, SE, SW };

inline bool dominates(Quadrant q, const Point& a, const Point& b) {
  switch (q) {
    case Quadrant::NE: return a.x >= b.x && a.y >= b.y;
    case Quadrant::NW: return a.x <= b.x && a.y >= b.y;
    case Quadrant::SE: return a.x >= b.x && a.y <= b.y;
    case Quadrant::SW: return a.x <= b.x && a.y <= b.y;
  }
  return false;
}

struct PointHash {
  size_t operator()(const Point& p) const {
    uint64_t h = static_cast<uint64_t>(p.x) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(p.y) + 0x9E3779B97F4A7C15ull + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace rsp
