#pragma once
// Unbounded monotone staircases (the paper's "convex paths", §2).
//
// A staircase is an x-monotone, y-monotone chain of axis-parallel segments.
// Increasing staircases rise from southwest to northeast; decreasing ones
// fall from northwest to southeast. Unbounded staircases start and end with
// semi-infinite segments; we materialize those with sentinel coordinates at
// ±kBig, which keeps every operation a plain finite-polyline computation.
//
// The four MAX staircases of a rectangle set (MAX_NE, MAX_NW, MAX_SE,
// MAX_SW — Fig. 1 of the paper) are built from Pareto-maximal corners.

#include <span>
#include <utility>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "geom/segment.h"

namespace rsp {

enum class StairOrient { Increasing, Decreasing };

// Pareto-maximal elements of a point set for the given quadrant sense
// (e.g. NE: p is maximal iff no other point q has q.x>=p.x and q.y>=p.y).
// Returned sorted by x ascending. O(m log m).
std::vector<Point> pareto_maxima(std::span<const Point> pts, Quadrant q);

class Staircase {
 public:
  // Sentinel magnitude for the semi-infinite end segments. All real
  // coordinates handled by the library must be < kBig/2 in magnitude.
  static constexpr Coord kBig = 1'000'000'000'000'000LL;  // 1e15

  Staircase() = default;

  // Build from explicit bend points (sentinels included or not; if the
  // first/last points are finite, semi-infinite ends are synthesized by
  // extending the first/last segment direction). Consecutive points must be
  // axis-aligned; the chain must be x- and y-monotone. Collinear runs are
  // merged.
  static Staircase from_chain(std::vector<Point> bends, StairOrient orient);

  // The MAX_X staircase (paper Fig. 1) of a set of rectangles:
  //   NE: lowest-leftmost decreasing staircase above all rectangles
  //   NW: lowest-rightmost increasing staircase above all rectangles
  //   SE: highest-leftmost increasing staircase below all rectangles
  //   SW: highest-rightmost decreasing staircase below all rectangles
  static Staircase max_staircase(std::span<const Rect> rects, Quadrant q);
  // Same, but over an arbitrary point set.
  static Staircase max_staircase(std::span<const Point> pts, Quadrant q);

  StairOrient orient() const { return orient_; }
  bool increasing() const { return orient_ == StairOrient::Increasing; }

  // Bend points, sentinels included, ordered by ascending x.
  const std::vector<Point>& points() const { return pts_; }
  size_t num_segments() const { return pts_.size() - 1; }
  Segment segment(size_t i) const { return {pts_[i], pts_[i + 1]}; }

  // The (closed) interval of y-values the staircase occupies at abscissa x.
  // x must lie in [-kBig, kBig].
  std::pair<Coord, Coord> y_interval_at(Coord x) const;
  // Symmetric: interval of x-values at ordinate y.
  std::pair<Coord, Coord> x_interval_at(Coord y) const;

  // +1 if p is strictly above the staircase (larger y at p's abscissa),
  //  0 if p lies on it, -1 if strictly below.
  int side_of(const Point& p) const;

  // True iff the staircase penetrates the rectangle's interior. A clear
  // staircase (paper §2) pierces no obstacle.
  bool pierces(const Rect& r) const;

  // First point (smallest x, then smallest y) at which this staircase
  // intersects the closed rectangle boundary-or-interior; nullopt-like
  // behaviour via bool. Used for clipping.
  bool intersects(const Rect& r) const;

  // The point where an increasing and a decreasing staircase cross. The two
  // staircases must actually cross (checked). By Lemma 12-style reasoning a
  // monotone pair crosses in one contiguous component; we return the
  // lexicographically smallest crossing point.
  static Point cross_point(const Staircase& s1, const Staircase& s2);

  // Whether the two chains share at least one point.
  static bool chains_intersect(const Staircase& s1, const Staircase& s2);

  // Total number of bends that are real (non-sentinel) points.
  size_t num_real_bends() const;

  // Validation used by tests: monotonicity + axis-parallel steps.
  void check_valid() const;

 private:
  std::vector<Point> pts_;
  StairOrient orient_ = StairOrient::Increasing;
};

}  // namespace rsp
