#pragma once
// Envelopes Env(R') of rectangle sets (paper §2, Fig. 2).
//
// The rectilinear convex hull of a set of rectangles may not exist; the
// paper's envelope generalizes it. We compute the four MAX staircases, test
// hull existence (hull fails iff MAX_NE ∩ MAX_SW ≠ ∅ or MAX_NW ∩ MAX_SE ≠ ∅),
// and — when the hull exists — produce an explicit closed CCW boundary
// polygon. In the degenerate case the containment predicate still follows
// the paper's definition (convex region union the finite bridge segments of
// the intersecting staircase), but no simple boundary polygon exists, so
// `boundary` is left empty.

#include <span>
#include <vector>

#include "geom/rect.h"
#include "geom/staircase.h"

namespace rsp {

struct Envelope {
  Staircase ne, nw, se, sw;   // MAX_NE, MAX_NW, MAX_SE, MAX_SW
  bool hull_exists = false;
  // In the degenerate case: true for the paper's case (i) (MAX_NE and
  // MAX_SW pinch; the bridge is MAX_NE's finite part), false for case (ii).
  bool bridge_ne = false;
  // Closed CCW boundary walk (first vertex not repeated at the end);
  // non-empty only when hull_exists.
  std::vector<Point> boundary;

  static Envelope compute(std::span<const Rect> rects);

  // Paper-faithful containment: the convex region below NE/NW and above
  // SE/SW, union (in the degenerate cases) the finite segments of MAX_NE
  // (case i) or MAX_NW (case ii).
  bool contains(const Point& p) const;
};

}  // namespace rsp
