#include "geom/staircase.h"

#include <algorithm>
#include <optional>

namespace rsp {

namespace {

// Reflection helpers: fold every quadrant onto NE, compute there, unfold.
Point reflect(Point p, Quadrant q) {
  switch (q) {
    case Quadrant::NE: return p;
    case Quadrant::NW: return {-p.x, p.y};
    case Quadrant::SE: return {p.x, -p.y};
    case Quadrant::SW: return {-p.x, -p.y};
  }
  return p;
}

bool flips_x(Quadrant q) { return q == Quadrant::NW || q == Quadrant::SW; }
bool flips_y(Quadrant q) { return q == Quadrant::SE || q == Quadrant::SW; }

}  // namespace

std::vector<Point> pareto_maxima(std::span<const Point> pts, Quadrant q) {
  std::vector<Point> v(pts.begin(), pts.end());
  for (auto& p : v) p = reflect(p, q);
  // NE maxima: sweep by x descending, keep points whose y exceeds the max
  // seen so far.
  std::sort(v.begin(), v.end(), [](const Point& a, const Point& b) {
    return a.x != b.x ? a.x > b.x : a.y > b.y;
  });
  std::vector<Point> out;
  Coord best_y = -Staircase::kBig * 2;
  for (const auto& p : v) {
    if (p.y > best_y) {
      out.push_back(p);
      best_y = p.y;
    }
  }
  for (auto& p : out) p = reflect(p, q);
  std::sort(out.begin(), out.end(),
            [](const Point& a, const Point& b) { return a.x < b.x; });
  return out;
}

Staircase Staircase::from_chain(std::vector<Point> bends, StairOrient orient) {
  RSP_CHECK_MSG(bends.size() >= 2, "staircase needs at least two points");
  // Drop exact duplicates.
  bends.erase(std::unique(bends.begin(), bends.end()), bends.end());
  RSP_CHECK(bends.size() >= 2);

  // Synthesize semi-infinite sentinel ends by extending the first and last
  // segment directions, unless the ends are already at sentinel magnitude.
  auto at_sentinel = [](const Point& p) {
    return std::llabs(p.x) >= kBig || std::llabs(p.y) >= kBig;
  };
  if (!at_sentinel(bends.front())) {
    Point a = bends[0], b = bends[1];
    if (a.y == b.y) {  // first segment horizontal: extend to x = -kBig
      bends.insert(bends.begin(), Point{-kBig, a.y});
    } else {  // vertical: extend away from b
      Coord dir = (b.y > a.y) ? -1 : +1;
      bends.insert(bends.begin(), Point{a.x, dir * kBig});
    }
  }
  if (!at_sentinel(bends.back())) {
    Point a = bends[bends.size() - 2], b = bends.back();
    if (a.y == b.y) {
      bends.push_back(Point{kBig, b.y});
    } else {
      Coord dir = (b.y > a.y) ? +1 : -1;
      bends.push_back(Point{b.x, dir * kBig});
    }
  }

  // Merge collinear runs.
  std::vector<Point> merged;
  merged.reserve(bends.size());
  for (const auto& p : bends) {
    while (merged.size() >= 2) {
      const Point& a = merged[merged.size() - 2];
      const Point& b = merged.back();
      if ((a.x == b.x && b.x == p.x) || (a.y == b.y && b.y == p.y)) {
        merged.pop_back();
      } else {
        break;
      }
    }
    merged.push_back(p);
  }

  Staircase s;
  s.pts_ = std::move(merged);
  s.orient_ = orient;
  s.check_valid();
  return s;
}

Staircase Staircase::max_staircase(std::span<const Rect> rects, Quadrant q) {
  std::vector<Point> corners;
  corners.reserve(rects.size() * 4);
  for (const auto& r : rects)
    for (const auto& v : r.vertices()) corners.push_back(v);
  return max_staircase(corners, q);
}

Staircase Staircase::max_staircase(std::span<const Point> pts, Quadrant q) {
  RSP_CHECK_MSG(!pts.empty(), "max staircase of empty set");
  std::vector<Point> mx = pareto_maxima(pts, q);
  // Build the NE-frame chain (decreasing step function through the maxima),
  // then reflect back.
  std::vector<Point> ne;
  ne.reserve(mx.size());
  for (const auto& p : mx) ne.push_back(reflect(p, q));
  std::sort(ne.begin(), ne.end(),
            [](const Point& a, const Point& b) { return a.x < b.x; });
  // In the NE frame the maxima have strictly increasing x and strictly
  // decreasing y.
  std::vector<Point> chain;
  chain.push_back({-kBig, ne.front().y});
  for (size_t i = 0; i < ne.size(); ++i) {
    chain.push_back(ne[i]);
    if (i + 1 < ne.size()) chain.push_back({ne[i].x, ne[i + 1].y});
  }
  chain.push_back({ne.back().x, -kBig});

  for (auto& p : chain) p = reflect(p, q);
  if (flips_x(q)) std::reverse(chain.begin(), chain.end());
  // NE and SW maxima staircases are decreasing; NW and SE are increasing.
  StairOrient orient = (flips_x(q) != flips_y(q)) ? StairOrient::Increasing
                                                  : StairOrient::Decreasing;
  return from_chain(std::move(chain), orient);
}

std::pair<Coord, Coord> Staircase::y_interval_at(Coord x) const {
  RSP_CHECK(x >= pts_.front().x && x <= pts_.back().x);
  auto it = std::lower_bound(
      pts_.begin(), pts_.end(), x,
      [](const Point& p, Coord xv) { return p.x < xv; });
  RSP_CHECK(it != pts_.end());
  if (it->x > x) {
    // Strictly inside a horizontal segment.
    RSP_CHECK(it != pts_.begin());
    return {std::prev(it)->y, std::prev(it)->y};
  }
  Coord lo = it->y, hi = it->y;
  for (auto jt = it; jt != pts_.end() && jt->x == x; ++jt) {
    lo = std::min(lo, jt->y);
    hi = std::max(hi, jt->y);
  }
  return {lo, hi};
}

std::pair<Coord, Coord> Staircase::x_interval_at(Coord y) const {
  // The chain's y is monotone along ascending x: non-decreasing for
  // increasing staircases, non-increasing for decreasing ones.
  const bool inc = increasing();
  RSP_CHECK(y >= std::min(pts_.front().y, pts_.back().y) &&
            y <= std::max(pts_.front().y, pts_.back().y));
  auto first_reaching = std::partition_point(
      pts_.begin(), pts_.end(), [&](const Point& p) {
        return inc ? p.y < y : p.y > y;
      });
  RSP_CHECK(first_reaching != pts_.end());
  if (first_reaching->y != y) {
    // y is strictly inside a vertical segment.
    return {first_reaching->x, first_reaching->x};
  }
  Coord lo = first_reaching->x, hi = first_reaching->x;
  for (auto jt = first_reaching; jt != pts_.end() && jt->y == y; ++jt) {
    lo = std::min(lo, jt->x);
    hi = std::max(hi, jt->x);
  }
  return {lo, hi};
}

int Staircase::side_of(const Point& p) const {
  if (p.x < pts_.front().x) {
    // Left of a vertical sentinel start: the up-left region for increasing
    // staircases, the down-left region for decreasing ones.
    return increasing() ? +1 : -1;
  }
  if (p.x > pts_.back().x) {
    return increasing() ? -1 : +1;
  }
  auto [lo, hi] = y_interval_at(p.x);
  if (p.y > hi) return +1;
  if (p.y < lo) return -1;
  return 0;
}

bool Staircase::pierces(const Rect& r) const {
  for (size_t i = 0; i + 1 < pts_.size(); ++i) {
    if (Segment{pts_[i], pts_[i + 1]}.pierces(r)) return true;
  }
  return false;
}

bool Staircase::intersects(const Rect& r) const {
  for (size_t i = 0; i + 1 < pts_.size(); ++i) {
    Segment s{pts_[i], pts_[i + 1]};
    if (s.lo_x() <= r.xmax && s.hi_x() >= r.xmin && s.lo_y() <= r.ymax &&
        s.hi_y() >= r.ymin) {
      return true;
    }
  }
  return false;
}

namespace {

// Shared sweep for cross_point / chains_intersect: scan the union of bend
// abscissae; between consecutive bend abscissae both chains are horizontal,
// so a first intersection can only appear at a bend abscissa.
std::optional<Point> first_common_point(const Staircase& s1,
                                        const Staircase& s2) {
  std::vector<Coord> xs;
  xs.reserve(s1.points().size() + s2.points().size());
  Coord lo = std::max(s1.points().front().x, s2.points().front().x);
  Coord hi = std::min(s1.points().back().x, s2.points().back().x);
  for (const auto& p : s1.points())
    if (p.x >= lo && p.x <= hi) xs.push_back(p.x);
  for (const auto& p : s2.points())
    if (p.x >= lo && p.x <= hi) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  for (Coord x : xs) {
    auto [l1, h1] = s1.y_interval_at(x);
    auto [l2, h2] = s2.y_interval_at(x);
    Coord olo = std::max(l1, l2), ohi = std::min(h1, h2);
    if (olo <= ohi) return Point{x, olo};
  }
  return std::nullopt;
}

}  // namespace

Point Staircase::cross_point(const Staircase& s1, const Staircase& s2) {
  auto p = first_common_point(s1, s2);
  RSP_CHECK_MSG(p.has_value(), "staircases do not intersect");
  return *p;
}

bool Staircase::chains_intersect(const Staircase& s1, const Staircase& s2) {
  return first_common_point(s1, s2).has_value();
}

size_t Staircase::num_real_bends() const {
  size_t c = 0;
  for (const auto& p : pts_) {
    if (std::llabs(p.x) < kBig && std::llabs(p.y) < kBig) ++c;
  }
  return c;
}

void Staircase::check_valid() const {
  RSP_CHECK(pts_.size() >= 2);
  for (size_t i = 0; i + 1 < pts_.size(); ++i) {
    const Point& a = pts_[i];
    const Point& b = pts_[i + 1];
    RSP_CHECK_MSG(a.x == b.x || a.y == b.y, "bend not axis-aligned");
    RSP_CHECK_MSG(a != b, "duplicate bend");
    RSP_CHECK_MSG(a.x <= b.x, "chain not x-monotone");
    if (increasing()) {
      RSP_CHECK_MSG(a.y <= b.y, "increasing chain not y-monotone");
    } else {
      RSP_CHECK_MSG(a.y >= b.y, "decreasing chain not y-monotone");
    }
  }
}

}  // namespace rsp
