#pragma once
// Axis-parallel rectangles (the obstacles of the paper).

#include <algorithm>
#include <array>
#include <ostream>

#include "geom/point.h"

namespace rsp {

struct Rect {
  Coord xmin = 0, ymin = 0, xmax = 0, ymax = 0;

  Rect() = default;
  Rect(Coord x0, Coord y0, Coord x1, Coord y1)
      : xmin(x0), ymin(y0), xmax(x1), ymax(y1) {
    RSP_CHECK_MSG(xmin <= xmax && ymin <= ymax, "degenerate rectangle");
  }

  friend bool operator==(const Rect&, const Rect&) = default;

  Point ll() const { return {xmin, ymin}; }  // lower-left
  Point lr() const { return {xmax, ymin}; }  // lower-right
  Point ul() const { return {xmin, ymax}; }  // upper-left
  Point ur() const { return {xmax, ymax}; }  // upper-right

  // Vertices in counterclockwise order starting at the lower-left.
  std::array<Point, 4> vertices() const { return {ll(), lr(), ur(), ul()}; }

  Coord width() const { return xmax - xmin; }
  Coord height() const { return ymax - ymin; }

  bool contains(const Point& p) const {
    return xmin <= p.x && p.x <= xmax && ymin <= p.y && p.y <= ymax;
  }
  bool contains_strict(const Point& p) const {
    return xmin < p.x && p.x < xmax && ymin < p.y && p.y < ymax;
  }
  bool contains(const Rect& r) const {
    return xmin <= r.xmin && r.xmax <= xmax && ymin <= r.ymin &&
           r.ymax <= ymax;
  }

  // Closed-set intersection test (shared edges count as intersecting).
  bool intersects(const Rect& r) const {
    return xmin <= r.xmax && r.xmin <= xmax && ymin <= r.ymax &&
           r.ymin <= ymax;
  }
  // Open-set (interior) intersection test: true iff the interiors overlap.
  // Obstacles touching along edges are still "pairwise disjoint" for the
  // paper's purposes, so this is the disjointness predicate that matters.
  bool interior_intersects(const Rect& r) const {
    return xmin < r.xmax && r.xmin < xmax && ymin < r.ymax && r.ymin < ymax;
  }

  Rect united(const Rect& r) const {
    return Rect{std::min(xmin, r.xmin), std::min(ymin, r.ymin),
                std::max(xmax, r.xmax), std::max(ymax, r.ymax)};
  }
  Rect expanded(Coord margin) const {
    return Rect{xmin - margin, ymin - margin, xmax + margin, ymax + margin};
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.xmin << ',' << r.ymin << " .. " << r.xmax << ','
            << r.ymax << "]";
}

// Bounding box of a range of rectangles. Range must be non-empty.
template <typename It>
Rect bounding_box(It first, It last) {
  RSP_CHECK(first != last);
  Rect bb = *first;
  for (It it = std::next(first); it != last; ++it) bb = bb.united(*it);
  return bb;
}

}  // namespace rsp
