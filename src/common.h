#pragma once
// Common scalar types, the infinity sentinel, and the fail-fast check macro
// used across the rsp library.
//
// Coordinates are 64-bit integers: every length produced by the algorithms
// is a sum of coordinate differences, so integer arithmetic keeps all
// results exact (no epsilon tuning anywhere in the library).

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rsp {

using Coord = long long;
using Length = long long;

// Additive-safe infinity: kInf + kInf does not overflow signed 64-bit.
inline constexpr Length kInf = std::numeric_limits<Length>::max() / 4;

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "RSP_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

// Fail-fast invariant check. Active in all build types: the algorithms in
// this library are subtle enough that silent corruption is far worse than
// the branch cost.
#define RSP_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) ::rsp::detail::check_fail(#cond, __FILE__, __LINE__, \
                                           std::string{});            \
  } while (0)

#define RSP_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::rsp::detail::check_fail(#cond, __FILE__, __LINE__, \
                                           (msg));                    \
  } while (0)

// Saturating (min,+) addition: kInf absorbs.
inline Length add_len(Length a, Length b) {
  if (a >= kInf || b >= kInf) return kInf;
  return a + b;
}

}  // namespace rsp
