#pragma once
// Level-ancestor queries (paper §8, Berkman–Vishkin [5,6]).
//
// Given a rooted forest, query(v, k) returns the k-th ancestor of v in O(1)
// after near-linear preprocessing. We use the classic ladder decomposition
// + jump-pointer scheme: jump 2^⌊log k⌋ steps with a jump pointer, then the
// remaining < 2^⌊log k⌋ steps are covered by the landing node's ladder
// (each ladder extends a longest path upward to twice its length, and a
// node reached by a 2^j jump lies on a ladder of length >= 2^j).
//
// This substitutes for Berkman–Vishkin's O(1)-query structure with the same
// query interface and cost; preprocessing is O(n log n) instead of O(n)
// (documented in DESIGN.md).

#include <vector>

#include "trees/euler.h"

namespace rsp {

class LevelAncestor {
 public:
  explicit LevelAncestor(const Forest& forest);

  // The k-th ancestor of v (k=0 is v itself); -1 if k > depth(v).
  int query(int v, int k) const;

 private:
  const Forest* forest_;
  int log_ = 1;
  std::vector<std::vector<int>> jump_;   // jump_[j][v]: 2^j-th ancestor
  std::vector<int> ladder_id_;           // ladder containing v
  std::vector<int> ladder_pos_;          // v's index within its ladder
  std::vector<std::vector<int>> ladders_;  // bottom -> top node lists
};

}  // namespace rsp
