#include "trees/lca.h"

#include <algorithm>
#include <bit>

namespace rsp {

Lca::Lca(const Forest& forest) : forest_(&forest) {
  const int n = forest.size();
  log_ = std::max<int>(1, std::bit_width(static_cast<unsigned>(
                              std::max(1, forest.height()))));
  up_.assign(log_ + 1, std::vector<int>(n, -1));
  for (int v = 0; v < n; ++v) up_[0][v] = forest.parent(v);
  for (int j = 1; j <= log_; ++j) {
    for (int v = 0; v < n; ++v) {
      int u = up_[j - 1][v];
      up_[j][v] = u < 0 ? -1 : up_[j - 1][u];
    }
  }
}

int Lca::query(int u, int v) const {
  RSP_CHECK(u >= 0 && u < forest_->size() && v >= 0 && v < forest_->size());
  if (forest_->root(u) != forest_->root(v)) return -1;
  if (forest_->depth(u) < forest_->depth(v)) std::swap(u, v);
  int diff = forest_->depth(u) - forest_->depth(v);
  for (int j = 0; j <= log_; ++j) {
    if (diff & (1 << j)) u = up_[j][u];
  }
  if (u == v) return u;
  for (int j = log_; j >= 0; --j) {
    if (up_[j][u] != up_[j][v]) {
      u = up_[j][u];
      v = up_[j][v];
    }
  }
  return up_[0][u];
}

int Lca::tree_distance(int u, int v) const {
  int a = query(u, v);
  if (a < 0) return -1;
  return forest_->depth(u) + forest_->depth(v) - 2 * forest_->depth(a);
}

}  // namespace rsp
