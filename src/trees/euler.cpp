#include "trees/euler.h"

#include <algorithm>

namespace rsp {

Forest::Forest(std::vector<int> parent) : parent_(std::move(parent)) {
  const int n = size();
  depth_.assign(n, -1);
  root_.assign(n, -1);
  order_.reserve(n);

  // Children adjacency.
  std::vector<int> head(n, -1), next(n, -1);
  std::vector<int> roots;
  for (int v = 0; v < n; ++v) {
    int p = parent_[v];
    if (p < 0) {
      roots.push_back(v);
    } else {
      RSP_CHECK_MSG(p < n && p != v, "bad parent pointer");
      next[v] = head[p];
      head[p] = v;
    }
  }
  // BFS/DFS from roots establishes depths and detects cycles (unreached
  // nodes at the end mean a cycle existed).
  std::vector<int> stack = roots;
  for (int r : roots) {
    depth_[r] = 0;
    root_[r] = r;
  }
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    order_.push_back(v);
    height_ = std::max(height_, depth_[v]);
    for (int c = head[v]; c >= 0; c = next[c]) {
      depth_[c] = depth_[v] + 1;
      root_[c] = root_[v];
      stack.push_back(c);
    }
  }
  RSP_CHECK_MSG(static_cast<int>(order_.size()) == n,
                "parent pointers contain a cycle");
}

std::vector<int> Forest::path_to_root(int v) const {
  RSP_CHECK(v >= 0 && v < size());
  std::vector<int> path;
  path.reserve(depth_[v] + 1);
  for (int u = v; u >= 0; u = parent_[u]) path.push_back(u);
  return path;
}

}  // namespace rsp
