#pragma once
// Rooted forests over integer node ids.
//
// The paper uses the Euler-tour technique [36] for two jobs: finding the
// path from a node to its root (path tracing, Lemma 6) and computing node
// depths (path reporting, §8). This module provides those queries on a
// parent-pointer forest; construction is a linear pass, and the derived
// arrays (depth, root, topological order) are what the Euler tour would
// deliver on the PRAM.

#include <vector>

#include "common.h"

namespace rsp {

class Forest {
 public:
  // parent[v] is v's parent, or -1 for roots. Cycles are rejected.
  explicit Forest(std::vector<int> parent);

  int size() const { return static_cast<int>(parent_.size()); }
  int parent(int v) const { return parent_[v]; }
  int depth(int v) const { return depth_[v]; }
  int root(int v) const { return root_[v]; }
  int height() const { return height_; }

  // Nodes ordered parents-before-children.
  const std::vector<int>& topological_order() const { return order_; }
  const std::vector<int>& parents() const { return parent_; }

  // The v -> root(v) path, inclusive on both ends. O(path length).
  std::vector<int> path_to_root(int v) const;

 private:
  std::vector<int> parent_;
  std::vector<int> depth_;
  std::vector<int> root_;
  std::vector<int> order_;
  int height_ = 0;
};

}  // namespace rsp
