#pragma once
// Lowest common ancestors by binary lifting. Used for recursion-tree
// bookkeeping (paper §6.3 reasons about lca(u,v) in the recursion tree T)
// and validated against brute force in tests.

#include <vector>

#include "trees/euler.h"

namespace rsp {

class Lca {
 public:
  explicit Lca(const Forest& forest);

  // Lowest common ancestor, or -1 if u and v are in different trees.
  int query(int u, int v) const;

  // Tree distance l(u,v): edges on the u-v path (paper §6.3), -1 if
  // disconnected.
  int tree_distance(int u, int v) const;

 private:
  const Forest* forest_;
  int log_ = 1;
  std::vector<std::vector<int>> up_;
};

}  // namespace rsp
