#include "trees/level_ancestor.h"

#include <algorithm>
#include <bit>

namespace rsp {

LevelAncestor::LevelAncestor(const Forest& forest) : forest_(&forest) {
  const int n = forest.size();
  log_ = std::max<int>(1, std::bit_width(static_cast<unsigned>(
                              std::max(1, forest.height()))));

  // Jump pointers.
  jump_.assign(log_ + 1, std::vector<int>(n, -1));
  for (int v = 0; v < n; ++v) jump_[0][v] = forest.parent(v);
  for (int j = 1; j <= log_; ++j) {
    for (int v = 0; v < n; ++v) {
      int u = jump_[j - 1][v];
      jump_[j][v] = u < 0 ? -1 : jump_[j - 1][u];
    }
  }

  // Longest-path decomposition: every node's "long child" is a child of
  // maximal subtree height; paths of long edges partition the forest.
  std::vector<int> subtree_height(n, 0);
  std::vector<int> long_child(n, -1);
  const auto& order = forest.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int v = *it;
    int p = forest.parent(v);
    if (p >= 0 && subtree_height[v] + 1 > subtree_height[p]) {
      subtree_height[p] = subtree_height[v] + 1;
      long_child[p] = v;
    }
  }

  // Each path-top spawns one ladder: the path, then extended upward by the
  // path's length (the "doubling" that makes jump+ladder O(1)).
  ladder_id_.assign(n, -1);
  ladder_pos_.assign(n, -1);
  for (int v : order) {
    int p = forest.parent(v);
    bool path_top = (p < 0) || (long_child[p] != v);
    if (!path_top) continue;
    std::vector<int> path;
    for (int u = v; u >= 0; u = long_child[u]) path.push_back(u);
    // Bottom -> top ordering, then extend above the top by |path| nodes.
    std::reverse(path.begin(), path.end());
    size_t base_len = path.size();
    int up = forest.parent(path.back());
    for (size_t i = 0; i < base_len && up >= 0; ++i) {
      path.push_back(up);
      up = forest.parent(up);
    }
    int id = static_cast<int>(ladders_.size());
    // Only the original path's nodes point at this ladder; extension nodes
    // keep their own ladder assignment.
    for (size_t i = 0; i < base_len; ++i) {
      ladder_id_[path[base_len - 1 - i]] = id;
      ladder_pos_[path[base_len - 1 - i]] = static_cast<int>(base_len - 1 - i);
    }
    ladders_.push_back(std::move(path));
  }
  for (int v = 0; v < n; ++v) RSP_CHECK(ladder_id_[v] >= 0);
}

int LevelAncestor::query(int v, int k) const {
  RSP_CHECK(v >= 0 && v < forest_->size() && k >= 0);
  if (k == 0) return v;
  if (k > forest_->depth(v)) return -1;
  // Jump the largest power of two <= k, then finish within one ladder.
  int j = std::bit_width(static_cast<unsigned>(k)) - 1;
  int u = jump_[j][v];
  int rem = k - (1 << j);
  if (rem == 0) return u;
  // u heads a subtree of height >= 2^j - 1 >= rem, so u's ladder (length
  // >= its path >= height) extends at least rem nodes above u.
  const auto& lad = ladders_[ladder_id_[u]];
  int pos = ladder_pos_[u] + rem;
  RSP_CHECK_MSG(pos < static_cast<int>(lad.size()),
                "ladder too short: level-ancestor invariant broken");
  return lad[pos];
}

}  // namespace rsp
