#include "monge/smawk.h"

namespace rsp {

std::vector<size_t> smawk(
    size_t nrows, size_t ncols,
    const std::function<Length(size_t, size_t)>& value) {
  SmawkScratch scratch;
  std::vector<size_t> argmin;
  smawk_into(nrows, ncols, value, argmin, scratch);
  return argmin;
}

}  // namespace rsp
