#include "monge/smawk.h"

namespace rsp {

namespace {

// Core recursion on explicit row/column index lists.
void smawk_rec(const std::vector<size_t>& rows, std::vector<size_t> cols,
               const std::function<Length(size_t, size_t)>& value,
               std::vector<size_t>& argmin) {
  if (rows.empty()) return;

  // REDUCE: prune columns that cannot hold any row's minimum, keeping at
  // most |rows| candidates. Invariant (total monotonicity): if
  // value(rows[r], stack[r]) > value(rows[r], c) then stack[r] loses for all
  // rows >= r.
  std::vector<size_t> stack;
  stack.reserve(rows.size());
  for (size_t c : cols) {
    while (!stack.empty()) {
      size_t r = stack.size() - 1;
      if (value(rows[r], stack.back()) > value(rows[r], c)) {
        stack.pop_back();
      } else {
        break;
      }
    }
    if (stack.size() < rows.size()) stack.push_back(c);
  }
  cols = std::move(stack);

  // Solve odd rows recursively.
  std::vector<size_t> odd_rows;
  for (size_t i = 1; i < rows.size(); i += 2) odd_rows.push_back(rows[i]);
  smawk_rec(odd_rows, cols, value, argmin);

  // INTERPOLATE: even rows' minima lie between the neighbouring odd rows'
  // argmin columns.
  size_t ci = 0;
  for (size_t i = 0; i < rows.size(); i += 2) {
    size_t row = rows[i];
    size_t hi_col = (i + 1 < rows.size()) ? argmin[rows[i + 1]] : cols.back();
    size_t best_col = cols[ci];
    Length best = value(row, cols[ci]);
    while (cols[ci] != hi_col) {
      ++ci;
      Length v = value(row, cols[ci]);
      if (v < best) {
        best = v;
        best_col = cols[ci];
      }
    }
    argmin[row] = best_col;
    // The next even row may share hi_col's position; back up is never
    // needed because argmin columns are nondecreasing, but ci currently
    // points at hi_col which is also the lower bound for the next row.
  }
}

}  // namespace

std::vector<size_t> smawk(
    size_t nrows, size_t ncols,
    const std::function<Length(size_t, size_t)>& value) {
  RSP_CHECK(ncols > 0);
  std::vector<size_t> rows(nrows), cols(ncols);
  for (size_t i = 0; i < nrows; ++i) rows[i] = i;
  for (size_t j = 0; j < ncols; ++j) cols[j] = j;
  std::vector<size_t> argmin(nrows, 0);
  smawk_rec(rows, cols, value, argmin);
  return argmin;
}

}  // namespace rsp
