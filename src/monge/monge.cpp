#include "monge/monge.h"

#include "monge/smawk.h"
#include "pram/parallel.h"

namespace rsp {

bool is_monge(const Matrix& m) {
  for (size_t i = 0; i + 1 < m.rows(); ++i) {
    for (size_t j = 0; j + 1 < m.cols(); ++j) {
      Length lhs = add_len(m(i, j), m(i + 1, j + 1));
      Length rhs = add_len(m(i, j + 1), m(i + 1, j));
      if (lhs > rhs) return false;
    }
  }
  return true;
}

Matrix minplus_naive(const Matrix& a, const Matrix& b) {
  RSP_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols(), kInf);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      Length aik = a(i, k);
      if (aik >= kInf) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        Length v = add_len(aik, b(k, j));
        if (v < c(i, j)) c(i, j) = v;
      }
    }
  }
  return c;
}

namespace {

// One output row i of the Monge product: column minima of the Monge matrix
// D(k,j) = A(i,k) + B(k,j), i.e. row minima of its transpose, via SMAWK.
//
// Additions are deliberately NOT saturating: clamping +inf sums to a common
// value collapses ties on all-infinite rows and breaks the leftmost-argmin
// monotonicity SMAWK relies on. Entries are <= kInf, so a two-term sum is
// <= 2*kInf and cannot overflow; the output is clamped back to kInf.
void product_row(const Matrix& a, const Matrix& b, size_t i, Matrix& c) {
  const size_t z = a.cols();
  auto value = [&](size_t j, size_t k) { return a(i, k) + b(k, j); };
  std::vector<size_t> arg = smawk(b.cols(), z, value);
  for (size_t j = 0; j < b.cols(); ++j) {
    c(i, j) = std::min(kInf, a(i, arg[j]) + b(arg[j], j));
  }
}

}  // namespace

Matrix minplus_monge(const Matrix& a, const Matrix& b) {
  RSP_CHECK(a.cols() == b.rows());
#ifdef RSP_MONGE_VERIFY
  RSP_CHECK_MSG(is_monge(a) && is_monge(b), "inputs to minplus_monge");
#endif
  Matrix c(a.rows(), b.cols(), kInf);
  if (a.rows() == 0 || b.cols() == 0 || a.cols() == 0) return c;
  pram_charge(a.rows() * (b.cols() + a.cols()),
              pram_detail::log2_ceil(a.cols()));
  for (size_t i = 0; i < a.rows(); ++i) product_row(a, b, i, c);
  return c;
}

Matrix minplus_monge(Scheduler& sched, const Matrix& a, const Matrix& b) {
  RSP_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols(), kInf);
  if (a.rows() == 0 || b.cols() == 0 || a.cols() == 0) return c;
  pram_charge(a.rows() * (b.cols() + a.cols()),
              pram_detail::log2_ceil(a.cols()));
  parallel_for(sched, 0, a.rows(), [&](size_t i) { product_row(a, b, i, c); },
               /*grain=*/1);
  return c;
}

}  // namespace rsp
