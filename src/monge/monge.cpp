#include "monge/monge.h"

#include "monge/smawk.h"
#include "pram/parallel.h"

namespace rsp {

bool is_monge(const Matrix& m) {
  for (size_t i = 0; i + 1 < m.rows(); ++i) {
    for (size_t j = 0; j + 1 < m.cols(); ++j) {
      Length lhs = add_len(m(i, j), m(i + 1, j + 1));
      Length rhs = add_len(m(i, j + 1), m(i + 1, j));
      if (lhs > rhs) return false;
    }
  }
  return true;
}

Matrix minplus_naive(const Matrix& a, const Matrix& b) {
  RSP_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols(), kInf);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      Length aik = a(i, k);
      if (aik >= kInf) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        Length v = add_len(aik, b(k, j));
        if (v < c(i, j)) c(i, j) = v;
      }
    }
  }
  return c;
}

namespace {

// Output rows [r0, r1) of the Monge product. Each row i is the column
// minima of the Monge matrix D(k,j) = A(i,k) + B(k,j), i.e. row minima of
// its transpose, via SMAWK. One scratch + argmin buffer serve the whole
// block, and smawk_into inlines the evaluator — the per-row std::function
// indirection and index-list allocations were most of the old runtime for
// the small matrices the D&C conquer feeds through here.
//
// Additions are deliberately NOT saturating: clamping +inf sums to a common
// value collapses ties on all-infinite rows and breaks the leftmost-argmin
// monotonicity SMAWK relies on. Entries are <= kInf, so a two-term sum is
// <= 2*kInf and cannot overflow; the output is clamped back to kInf.
void product_rows(const Matrix& a, const Matrix& b, size_t r0, size_t r1,
                  Matrix& c) {
  const size_t z = a.cols();
  SmawkScratch scratch;
  std::vector<size_t> arg;
  for (size_t i = r0; i < r1; ++i) {
    auto value = [&a, &b, i](size_t j, size_t k) { return a(i, k) + b(k, j); };
    smawk_into(b.cols(), z, value, arg, scratch);
    for (size_t j = 0; j < b.cols(); ++j) {
      c(i, j) = std::min(kInf, a(i, arg[j]) + b(arg[j], j));
    }
  }
}

// Row-block grain for the parallel product: each task should amortize its
// fork + scratch setup over roughly kMinTaskEvals entry evaluations; one
// row costs ~(cols + inner) of them (SMAWK is linear). Small conquer
// matrices thus run as a handful of tasks instead of one task per row.
size_t row_grain(const Matrix& a, const Matrix& b) {
  constexpr size_t kMinTaskEvals = 4096;
  const size_t per_row = b.cols() + a.cols() + 1;
  return std::max<size_t>(1, kMinTaskEvals / per_row);
}

}  // namespace

Matrix minplus_monge(const Matrix& a, const Matrix& b) {
  RSP_CHECK(a.cols() == b.rows());
#ifdef RSP_MONGE_VERIFY
  RSP_CHECK_MSG(is_monge(a) && is_monge(b), "inputs to minplus_monge");
#endif
  Matrix c(a.rows(), b.cols(), kInf);
  if (a.rows() == 0 || b.cols() == 0 || a.cols() == 0) return c;
  pram_charge(a.rows() * (b.cols() + a.cols()),
              pram_detail::log2_ceil(a.cols()));
  product_rows(a, b, 0, a.rows(), c);
  return c;
}

Matrix minplus_monge(Scheduler& sched, const Matrix& a, const Matrix& b) {
  RSP_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols(), kInf);
  if (a.rows() == 0 || b.cols() == 0 || a.cols() == 0) return c;
  pram_charge(a.rows() * (b.cols() + a.cols()),
              pram_detail::log2_ceil(a.cols()));
  parallel_for_blocked(
      sched, 0, a.rows(),
      [&](size_t lo, size_t hi) { product_rows(a, b, lo, hi, c); },
      row_grain(a, b));
  return c;
}

}  // namespace rsp
