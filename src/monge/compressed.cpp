#include "monge/compressed.h"

#include <utility>

namespace rsp {

namespace {

// Bytes the compressed parts occupy (elements, not capacity — the
// fallback decision must not depend on allocator growth policy).
size_t parts_bytes(size_t rows, size_t cols, size_t nbp) {
  return (rows + cols + nbp) * sizeof(Length) +
         (cols + nbp) * sizeof(uint32_t);
}

}  // namespace

PortMatrix PortMatrix::compress(const Matrix& m) {
  PortMatrix out;
  out.rows_ = m.rows();
  out.cols_ = m.cols();
  if (out.rows_ == 0 || out.cols_ == 0) return out;

  out.row0_.resize(out.cols_);
  for (size_t j = 0; j < out.cols_; ++j) out.row0_[j] = m(0, j);
  out.col0_.resize(out.rows_);
  for (size_t i = 0; i < out.rows_; ++i) out.col0_[i] = m(i, 0);
  out.bp_start_.assign(out.cols_, 0);
  for (size_t j = 1; j < out.cols_; ++j) {
    // D_j(i) = M(i, j) - M(i, j-1); emit a breakpoint wherever it moves.
    Length prev = out.row0_[j] - out.row0_[j - 1];
    for (size_t i = 1; i < out.rows_; ++i) {
      const Length d = m(i, j) - m(i, j - 1);
      if (d != prev) {
        out.bp_row_.push_back(static_cast<uint32_t>(i));
        out.bp_delta_.push_back(d - prev);
        prev = d;
      }
    }
    out.bp_start_[j] = static_cast<uint32_t>(out.bp_row_.size());
  }

  if (parts_bytes(out.rows_, out.cols_, out.bp_row_.size()) >=
      out.dense_byte_size()) {
    out.fallback_ = true;
    out.dense_ = m;
    out.row0_.clear();
    out.row0_.shrink_to_fit();
    out.col0_.clear();
    out.col0_.shrink_to_fit();
    out.bp_start_.clear();
    out.bp_start_.shrink_to_fit();
    out.bp_row_.clear();
    out.bp_row_.shrink_to_fit();
    out.bp_delta_.clear();
    out.bp_delta_.shrink_to_fit();
  } else {
    out.bp_row_.shrink_to_fit();
    out.bp_delta_.shrink_to_fit();
  }
  return out;
}

PortMatrix PortMatrix::from_dense(Matrix m) {
  PortMatrix out;
  out.rows_ = m.rows();
  out.cols_ = m.cols();
  if (out.rows_ == 0 || out.cols_ == 0) return out;
  out.fallback_ = true;
  out.dense_ = std::move(m);
  return out;
}

PortMatrix PortMatrix::from_parts(size_t rows, size_t cols,
                                  std::vector<Length> row0,
                                  std::vector<Length> col0,
                                  std::vector<uint32_t> bp_start,
                                  std::vector<uint32_t> bp_row,
                                  std::vector<Length> bp_delta) {
  RSP_CHECK(rows > 0 && cols > 0);
  RSP_CHECK(row0.size() == cols && col0.size() == rows);
  RSP_CHECK(bp_start.size() == cols && bp_start[0] == 0);
  RSP_CHECK(bp_row.size() == bp_delta.size());
  RSP_CHECK(bp_start[cols - 1] == bp_row.size());
  RSP_CHECK(row0[0] == col0[0]);
  for (size_t j = 1; j < cols; ++j) {
    RSP_CHECK(bp_start[j - 1] <= bp_start[j]);
    uint32_t prev_row = 0;  // rows start at 1, so > covers the first too
    for (uint32_t t = bp_start[j - 1]; t < bp_start[j]; ++t) {
      RSP_CHECK(bp_row[t] > prev_row);
      RSP_CHECK(bp_row[t] < rows);
      RSP_CHECK(bp_delta[t] != 0);
      prev_row = bp_row[t];
    }
  }
  PortMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row0_ = std::move(row0);
  out.col0_ = std::move(col0);
  out.bp_start_ = std::move(bp_start);
  out.bp_row_ = std::move(bp_row);
  out.bp_delta_ = std::move(bp_delta);
  return out;
}

Length PortMatrix::at(size_t i, size_t j) const {
  RSP_CHECK(i < rows_ && j < cols_);
  if (fallback_) return dense_(i, j);
  Length v = col0_[i];
  for (size_t jj = 1; jj <= j; ++jj) {
    Length d = row0_[jj] - row0_[jj - 1];
    for (uint32_t t = bp_start_[jj - 1]; t < bp_start_[jj]; ++t) {
      if (bp_row_[t] > i) break;
      d += bp_delta_[t];
    }
    v += d;
  }
  return v;
}

Matrix PortMatrix::dense() const {
  if (rows_ == 0 || cols_ == 0) return Matrix(rows_, cols_);
  if (fallback_) return dense_;
  Matrix m(rows_, cols_);
  ColumnScan scan(*this);
  for (size_t j = 0;; ++j) {
    const Length* col = scan.data();
    for (size_t i = 0; i < rows_; ++i) m(i, j) = col[i];
    if (j + 1 == cols_) break;
    scan.advance();
  }
  return m;
}

size_t PortMatrix::byte_size() const {
  if (fallback_) return dense_.storage().capacity() * sizeof(Length);
  return row0_.capacity() * sizeof(Length) +
         col0_.capacity() * sizeof(Length) +
         bp_start_.capacity() * sizeof(uint32_t) +
         bp_row_.capacity() * sizeof(uint32_t) +
         bp_delta_.capacity() * sizeof(Length);
}

PortMatrix::ColumnScan::ColumnScan(const PortMatrix& m) : m_(m) {
  RSP_CHECK(!m.empty());
  cur_.resize(m.rows_);
  if (m.fallback_) {
    for (size_t i = 0; i < m.rows_; ++i) cur_[i] = m.dense_(i, 0);
  } else {
    cur_ = m.col0_;
  }
}

void PortMatrix::ColumnScan::advance() {
  ++j_;
  RSP_CHECK(j_ < m_.cols_);
  if (m_.fallback_) {
    for (size_t i = 0; i < m_.rows_; ++i) cur_[i] = m_.dense_(i, j_);
    return;
  }
  Length d = m_.row0_[j_] - m_.row0_[j_ - 1];
  const uint32_t end = m_.bp_start_[j_];
  uint32_t t = m_.bp_start_[j_ - 1];
  const size_t n = cur_.size();
  for (size_t i = 0; i < n; ++i) {
    while (t < end && m_.bp_row_[t] == i) d += m_.bp_delta_[t++];
    cur_[i] += d;
  }
}

}  // namespace rsp
