#pragma once
// Dense (min,+) length matrices.

#include <algorithm>
#include <memory>
#include <vector>

#include "common.h"

namespace rsp {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, Length fill = kInf)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  // Adopts row-major storage (io/snapshot.cpp bulk restore); data.size()
  // must equal rows * cols.
  Matrix(size_t rows, size_t cols, std::vector<Length> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    RSP_CHECK(data_.size() == rows_ * cols_);
  }
  // Borrows external row-major storage (mmap-adopted snapshot tables);
  // keepalive owns the backing bytes for the matrix's lifetime. Borrowed
  // matrices are read-only.
  Matrix(size_t rows, size_t cols, const Length* view,
         std::shared_ptr<const void> keepalive)
      : rows_(rows), cols_(cols), view_(view), keep_(std::move(keepalive)) {
    RSP_CHECK(view_ != nullptr || rows_ * cols_ == 0);
  }

  // Row-major backing store (serialization of owned matrices; treat as an
  // implementation detail elsewhere). Borrowed matrices have no vector to
  // expose — use data().
  const std::vector<Length>& storage() const {
    RSP_CHECK(view_ == nullptr);
    return data_;
  }

  // Row-major element pointer, valid in both owned and borrowed mode.
  const Length* data() const { return view_ ? view_ : data_.data(); }
  bool borrowed() const { return view_ != nullptr; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ * cols_ == 0; }

  Length& operator()(size_t i, size_t j) {
    RSP_CHECK(view_ == nullptr);
    return data_[i * cols_ + j];
  }
  Length operator()(size_t i, size_t j) const {
    return data()[i * cols_ + j];
  }

  Length at(size_t i, size_t j) const {
    RSP_CHECK(i < rows_ && j < cols_);
    return data()[i * cols_ + j];
  }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
      for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           std::equal(a.data(), a.data() + a.rows_ * a.cols_, b.data());
  }

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<Length> data_;
  const Length* view_ = nullptr;
  std::shared_ptr<const void> keep_;
};

}  // namespace rsp
