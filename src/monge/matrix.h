#pragma once
// Dense (min,+) length matrices.

#include <vector>

#include "common.h"

namespace rsp {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, Length fill = kInf)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  // Adopts row-major storage (io/snapshot.cpp bulk restore); data.size()
  // must equal rows * cols.
  Matrix(size_t rows, size_t cols, std::vector<Length> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    RSP_CHECK(data_.size() == rows_ * cols_);
  }

  // Row-major backing store (serialization; treat as an implementation
  // detail elsewhere).
  const std::vector<Length>& storage() const { return data_; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  Length& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  Length operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  Length at(size_t i, size_t j) const {
    RSP_CHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
      for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<Length> data_;
};

}  // namespace rsp
