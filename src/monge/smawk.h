#pragma once
// SMAWK: row minima of an implicit totally monotone matrix in O(rows+cols)
// evaluations. Monge matrices (paper §2, [1]) are totally monotone, so this
// is the engine behind the Monge (min,+) multiplication of Lemma 3.
//
// Two entry points:
//  - smawk(): the original std::function interface, one-shot.
//  - smawk_into<F>(): templated on the evaluator with a caller-owned
//    SmawkScratch, so a row-block task of the Monge product (monge.cpp)
//    pays the recursion's index-list allocations once per block instead of
//    once per output row, and entry evaluation inlines instead of going
//    through std::function's indirect call.

#include <cstddef>
#include <functional>
#include <vector>

#include "common.h"

namespace rsp {

// Reusable buffers for smawk_into. The recursion acquires index lists from
// a pool addressed by *index* — a buffer reference would dangle when the
// pool's backing vector grows, so callers re-fetch via buf() after any
// acquire. Not thread-safe: one scratch per worker/task.
class SmawkScratch {
 public:
  size_t acquire() {
    if (next_ == bufs_.size()) bufs_.emplace_back();
    bufs_[next_].clear();
    return next_++;
  }
  void release_to(size_t mark) { next_ = mark; }
  size_t mark() const { return next_; }
  std::vector<size_t>& buf(size_t i) { return bufs_[i]; }

 private:
  std::vector<std::vector<size_t>> bufs_;
  size_t next_ = 0;
};

namespace smawk_detail {

// Core recursion on index lists held in the scratch pool. rows_i/cols_i are
// pool indices; the lists they name are consumed (cols is reduced in
// place's stead via a fresh buffer).
template <typename F>
void rec(SmawkScratch& s, size_t rows_i, size_t cols_i, const F& value,
         std::vector<size_t>& argmin) {
  if (s.buf(rows_i).empty()) return;
  const size_t mark = s.mark();

  // REDUCE: prune columns that cannot hold any row's minimum, keeping at
  // most |rows| candidates. Invariant (total monotonicity): if
  // value(rows[r], stack[r]) > value(rows[r], c) then stack[r] loses for
  // all rows >= r.
  const size_t red_i = s.acquire();
  {
    std::vector<size_t>& rows = s.buf(rows_i);
    std::vector<size_t>& stack = s.buf(red_i);
    stack.reserve(rows.size());
    for (size_t c : s.buf(cols_i)) {
      while (!stack.empty()) {
        size_t r = stack.size() - 1;
        if (value(rows[r], stack.back()) > value(rows[r], c)) {
          stack.pop_back();
        } else {
          break;
        }
      }
      if (stack.size() < rows.size()) stack.push_back(c);
    }
  }

  // Solve odd rows recursively.
  const size_t odd_i = s.acquire();
  {
    std::vector<size_t>& rows = s.buf(rows_i);
    std::vector<size_t>& odd = s.buf(odd_i);
    odd.reserve(rows.size() / 2);
    for (size_t i = 1; i < rows.size(); i += 2) odd.push_back(rows[i]);
  }
  rec(s, odd_i, red_i, value, argmin);

  // INTERPOLATE: even rows' minima lie between the neighbouring odd rows'
  // argmin columns.
  {
    std::vector<size_t>& rows = s.buf(rows_i);
    std::vector<size_t>& cols = s.buf(red_i);
    size_t ci = 0;
    for (size_t i = 0; i < rows.size(); i += 2) {
      size_t row = rows[i];
      size_t hi_col = (i + 1 < rows.size()) ? argmin[rows[i + 1]] : cols.back();
      size_t best_col = cols[ci];
      Length best = value(row, cols[ci]);
      while (cols[ci] != hi_col) {
        ++ci;
        Length v = value(row, cols[ci]);
        if (v < best) {
          best = v;
          best_col = cols[ci];
        }
      }
      argmin[row] = best_col;
      // No back-up needed: argmin columns are nondecreasing, and ci now
      // sits on hi_col, the lower bound for the next even row.
    }
  }
  s.release_to(mark);
}

}  // namespace smawk_detail

// Writes into argmin, for each row i in [0, nrows), the column index of the
// leftmost minimum of row i. `value(i, j)` evaluates the matrix entry.
template <typename F>
void smawk_into(size_t nrows, size_t ncols, const F& value,
                std::vector<size_t>& argmin, SmawkScratch& scratch) {
  RSP_CHECK(ncols > 0);
  argmin.assign(nrows, 0);
  if (nrows == 0) return;
  const size_t mark = scratch.mark();
  const size_t rows_i = scratch.acquire();
  {
    std::vector<size_t>& rows = scratch.buf(rows_i);
    rows.resize(nrows);
    for (size_t i = 0; i < nrows; ++i) rows[i] = i;
  }
  const size_t cols_i = scratch.acquire();
  {
    std::vector<size_t>& cols = scratch.buf(cols_i);
    cols.resize(ncols);
    for (size_t j = 0; j < ncols; ++j) cols[j] = j;
  }
  smawk_detail::rec(scratch, rows_i, cols_i, value, argmin);
  scratch.release_to(mark);
}

// One-shot convenience wrapper (tests, callers without a hot loop).
std::vector<size_t> smawk(
    size_t nrows, size_t ncols,
    const std::function<Length(size_t, size_t)>& value);

}  // namespace rsp
