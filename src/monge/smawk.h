#pragma once
// SMAWK: row minima of an implicit totally monotone matrix in O(rows+cols)
// evaluations. Monge matrices (paper §2, [1]) are totally monotone, so this
// is the engine behind the Monge (min,+) multiplication of Lemma 3.

#include <cstddef>
#include <functional>
#include <vector>

#include "common.h"

namespace rsp {

// Returns, for each row i in [0, nrows), the column index of the leftmost
// minimum of row i. `value(i, j)` evaluates the matrix entry.
std::vector<size_t> smawk(
    size_t nrows, size_t ncols,
    const std::function<Length(size_t, size_t)>& value);

}  // namespace rsp
