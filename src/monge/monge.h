#pragma once
// Monge-matrix predicates and (min,+) products (paper §2, Lemmas 3–5).
//
// All products are in the (min,+) closed semi-ring:
//   (A * B)(i,j) = min_k { A(i,k) + B(k,j) }.
// When A and B are Monge the product is Monge and computable in O(ab) work
// (vs O(abc) naively) — that is the paper's key to a quadratic-work conquer
// step (§10(iii)). Our Monge multiply runs one SMAWK per output row; rows
// are independent, so the parallel variant is a parallel_for over rows,
// matching Lemma 3's O(log z) time / O(ab) work shape.

#include "monge/matrix.h"
#include "pram/scheduler.h"

namespace rsp {

// Checks the Monge condition on every adjacent 2x2 submatrix:
//   M(i,j) + M(i+1,j+1) <= M(i,j+1) + M(i+1,j).
// Entries >= kInf are treated as +infinity (saturating adds).
bool is_monge(const Matrix& m);

// Reference O(a*c*b) product; the ablation baseline and correctness oracle.
Matrix minplus_naive(const Matrix& a, const Matrix& b);

// Monge product via per-row SMAWK column minima. Both inputs should be
// Monge; with RSP_MONGE_VERIFY defined the property is checked eagerly.
// Sequential: O(rows * (cols + inner)) evaluations.
Matrix minplus_monge(const Matrix& a, const Matrix& b);

// Parallel variant: independent rows fanned out over the scheduler as
// row-block tasks (grain tuned so each task amortizes its fork over a few
// thousand entry evaluations and reuses one SMAWK scratch per block).
// Nest-safe: callable from inside scheduler tasks (the §5 conquer runs it
// within subtree tasks that are themselves forked in parallel).
Matrix minplus_monge(Scheduler& sched, const Matrix& a, const Matrix& b);

}  // namespace rsp
