#pragma once
// Monge-structured compression of retained port ("reach") matrices.
//
// The D&C conquer (paper §5, Lemma 3) routes through distance matrices
// whose rows and columns walk two curves in order; for such matrices the
// Monge property makes every column difference
//
//   D_j(i) = M(i, j) - M(i, j-1)
//
// non-increasing in i — a step function with few breakpoints. PortMatrix
// stores exactly that: the first row, the first column, and, per column
// step, the (row, delta) breakpoints where D_j changes. This is an *exact*
// encoding (telescoping integer differences, no rounding), so it is
// lossless for every matrix, Monge or not: Monge guarantees the deltas are
// negative and scarce, near-Monge ports (the build's monge_fallbacks
// counter proves a minority exist — B(Q) rows wrap a closed boundary and
// can interleave) merely spend a few more breakpoints. When the encoding
// would not beat dense row-major storage (tiny or adversarial matrices),
// compress() keeps the dense form behind the same interface.
//
// Access patterns, matched to the query lift (backend/boundary_tree.cpp):
// the hot loop scans every column of a port in order, so ColumnScan
// streams columns left-to-right in O(rows + breakpoints-in-step) per
// column — the same O(rows) the dense strided read paid, minus the cache
// misses. Random access at() costs O(cols) on the compressed form and is
// for tests/validation only.
//
// Thread safety: immutable after construction; each ColumnScan owns its
// cursor state, so concurrent scans over one PortMatrix are safe.

#include <cstdint>
#include <vector>

#include "monge/matrix.h"

namespace rsp {

class PortMatrix {
 public:
  PortMatrix() = default;

  // Encodes `m`. Deterministic: equal matrices yield equal representations
  // (snapshot bytes stay identical across scheduler widths). Falls back to
  // adopting the dense form when the encoding would not be smaller.
  static PortMatrix compress(const Matrix& m);
  // Forces the dense representation (compression-mode equivalence tests).
  static PortMatrix from_dense(Matrix m);
  // Reassembles a compressed representation from its serialized parts
  // (io/snapshot.cpp). Validates shape invariants via RSP_CHECK; entry
  // *range* validation is the loader's job (stream a ColumnScan).
  static PortMatrix from_parts(size_t rows, size_t cols,
                               std::vector<Length> row0,
                               std::vector<Length> col0,
                               std::vector<uint32_t> bp_start,
                               std::vector<uint32_t> bp_row,
                               std::vector<Length> bp_delta);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  // False when this instance stores the dense fallback form.
  bool compressed() const { return !fallback_; }

  // O(cols) on the compressed form — tests and spot checks only.
  Length at(size_t i, size_t j) const;
  // Full decode (exact inverse of compress()).
  Matrix dense() const;

  // Resident bytes of this representation vs what dense storage costs.
  size_t byte_size() const;
  size_t dense_byte_size() const { return rows_ * cols_ * sizeof(Length); }

  // Serialization accessors (meaningful only for the matching form).
  const Matrix& dense_form() const { return dense_; }
  const std::vector<Length>& row0() const { return row0_; }
  const std::vector<Length>& col0() const { return col0_; }
  const std::vector<uint32_t>& bp_start() const { return bp_start_; }
  const std::vector<uint32_t>& bp_row() const { return bp_row_; }
  const std::vector<Length>& bp_delta() const { return bp_delta_; }

  friend bool operator==(const PortMatrix& a, const PortMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.fallback_ == b.fallback_ && a.dense_ == b.dense_ &&
           a.row0_ == b.row0_ && a.col0_ == b.col0_ &&
           a.bp_start_ == b.bp_start_ && a.bp_row_ == b.bp_row_ &&
           a.bp_delta_ == b.bp_delta_;
  }

  // Streams columns 0, 1, ..., cols()-1; advance() moves one column right
  // by applying that step's breakpoints (never past the last column).
  class ColumnScan {
   public:
    explicit ColumnScan(const PortMatrix& m);
    // The current column's rows() values, indexed by row.
    const Length* data() const { return cur_.data(); }
    size_t column() const { return j_; }
    void advance();

   private:
    const PortMatrix& m_;
    size_t j_ = 0;
    std::vector<Length> cur_;
  };

 private:
  size_t rows_ = 0, cols_ = 0;
  bool fallback_ = false;
  Matrix dense_;  // engaged iff fallback_

  // Compressed form. bp_start_ has cols_ entries and is the CSR index of
  // the column steps: step j (the transition from column j-1 to j, j >= 1)
  // owns breakpoints [bp_start_[j-1], bp_start_[j]). bp_start_[0] == 0.
  // Breakpoint t says: at row bp_row_[t] (>= 1, strictly increasing within
  // a step), D_j changes by bp_delta_[t] (!= 0) from its value at the row
  // above. D_j(0) is implicit: row0_[j] - row0_[j-1].
  std::vector<Length> row0_;       // cols_ entries: M(0, j)
  std::vector<Length> col0_;       // rows_ entries: M(i, 0)
  std::vector<uint32_t> bp_start_;
  std::vector<uint32_t> bp_row_;
  std::vector<Length> bp_delta_;
};

}  // namespace rsp
