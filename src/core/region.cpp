#include "core/region.h"

#include <algorithm>

namespace rsp {

std::vector<Point> clip_staircase(const RectilinearPolygon& q,
                                  const Staircase& s) {
  // Clip each chain segment against the region; convexity makes the union
  // of clipped pieces one contiguous polyline.
  std::vector<Point> out;
  auto push = [&](const Point& p) {
    if (out.empty() || out.back() != p) out.push_back(p);
  };
  const Rect& bb = q.bbox();
  const auto& pts = s.points();
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    Point a = pts[i], b = pts[i + 1];
    if (a.x == b.x) {  // vertical
      if (a.x < bb.xmin || a.x > bb.xmax) continue;
      auto [lo, hi] = q.y_range_at(a.x);
      Coord y0 = std::max(lo, std::min(a.y, b.y));
      Coord y1 = std::min(hi, std::max(a.y, b.y));
      if (y0 > y1) continue;
      if (a.y <= b.y) {
        push({a.x, y0});
        push({a.x, y1});
      } else {
        push({a.x, y1});
        push({a.x, y0});
      }
    } else {  // horizontal
      if (a.y < bb.ymin || a.y > bb.ymax) continue;
      auto [lo, hi] = q.x_range_at(a.y);
      Coord x0 = std::max(lo, std::min(a.x, b.x));
      Coord x1 = std::min(hi, std::max(a.x, b.x));
      if (x0 > x1) continue;
      push({x0, a.y});  // chains run with ascending x
      push({x1, a.y});
    }
  }
  RSP_CHECK_MSG(out.size() >= 2, "staircase does not cross the region");
  RSP_CHECK_MSG(q.on_boundary(out.front()) && q.on_boundary(out.back()),
                "clipped chain must start and end on the region boundary");
  return out;
}

std::vector<RectilinearPolygon> side_components(const RectilinearPolygon& q,
                                                const Staircase& s,
                                                int side) {
  RSP_CHECK(side == +1 || side == -1);
  const Rect& bb = q.bbox();
  // Sweep strips: zero-width columns at every breakpoint abscissa and open
  // strips between consecutive ones. Within an open strip both the region
  // boundary and the staircase are horizontal, so the side interval is
  // constant there; unimodality of the convex region's boundaries lets us
  // evaluate open-strip values from the closed values at the two borders.
  std::vector<Coord> xs{bb.xmin, bb.xmax};
  for (const auto& v : q.vertices()) xs.push_back(v.x);
  for (const auto& p : s.points()) {
    if (p.x >= bb.xmin && p.x <= bb.xmax) xs.push_back(p.x);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  struct Strip {
    Coord xa, xb;   // closed [xa, xb]; xa == xb for border columns
    Coord lo, hi;   // side interval; empty iff lo > hi
    bool breaker = false;  // interval collapsed onto the staircase: such a
                           // pinch joins blobs only along the separator, so
                           // it separates components (hub routing covers it)
  };
  const Coord chain_lo_x = s.points().front().x;
  const Coord chain_hi_x = s.points().back().x;
  // Side of the half-plane beyond the chain's x-range.
  const int left_side = s.increasing() ? +1 : -1;
  const int right_side = -left_side;

  std::vector<Strip> strips;
  // occ: the staircase's y-occupancy over the strip, or nullopt when the
  // strip lies beyond the chain's x-range (then `full_side` says which side
  // the whole column belongs to).
  auto add_strip = [&](Coord xa, Coord xb, Coord qlo, Coord qhi,
                       std::optional<std::pair<Coord, Coord>> occ,
                       int full_side) {
    Coord lo = qlo, hi = qhi;
    bool breaker = false;
    if (!occ) {
      if (full_side != side) hi = lo - 1;  // empty
    } else if (side == +1) {
      lo = std::max(qlo, occ->second);  // y >= top of occupancy
      breaker = (lo == hi && lo == occ->second && qlo != qhi);
    } else {
      hi = std::min(qhi, occ->first);   // y <= bottom of occupancy
      breaker = (lo == hi && hi == occ->first && qlo != qhi);
    }
    strips.push_back({xa, xb, lo, hi, breaker});
  };
  for (size_t i = 0; i < xs.size(); ++i) {
    {  // border column [x, x]
      Coord x = xs[i];
      auto [qlo, qhi] = q.y_range_at(x);
      if (x < chain_lo_x) {
        add_strip(x, x, qlo, qhi, std::nullopt, left_side);
      } else if (x > chain_hi_x) {
        add_strip(x, x, qlo, qhi, std::nullopt, right_side);
      } else {
        add_strip(x, x, qlo, qhi, s.y_interval_at(x), 0);
      }
    }
    if (i + 1 < xs.size() && xs[i] < xs[i + 1]) {  // open strip (a, b)
      Coord a = xs[i], bx = xs[i + 1];
      auto ra = q.y_range_at(a);
      auto rb = q.y_range_at(bx);
      Coord qlo = std::max(ra.first, rb.first);    // lower bd unimodal (V)
      Coord qhi = std::min(ra.second, rb.second);  // upper bd unimodal (Λ)
      if (bx <= chain_lo_x) {
        add_strip(a, bx, qlo, qhi, std::nullopt, left_side);
      } else if (a >= chain_hi_x) {
        add_strip(a, bx, qlo, qhi, std::nullopt, right_side);
      } else {
        // The chain is horizontal on the open strip at height h; h is both
        // the top of the occupancy at `a` and the bottom at `b` (for either
        // orientation the min/max below collapse to h).
        auto oa = s.y_interval_at(a);
        auto ob = s.y_interval_at(bx);
        Coord h_top = std::min(oa.second, ob.second);
        Coord h_bot = std::max(oa.first, ob.first);
        add_strip(a, bx, qlo, qhi, std::make_pair(h_bot, h_top), 0);
      }
    }
  }

  // Group maximal runs of nonempty, non-breaker strips whose intervals
  // chain-overlap.
  std::vector<RectilinearPolygon> out;
  size_t i = 0;
  while (i < strips.size()) {
    if (strips[i].lo > strips[i].hi || strips[i].breaker) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j + 1 < strips.size() && strips[j + 1].lo <= strips[j + 1].hi &&
           !strips[j + 1].breaker &&
           std::max(strips[j].lo, strips[j + 1].lo) <=
               std::min(strips[j].hi, strips[j + 1].hi)) {
      ++j;
    }
    // Assemble the component polygon from strips [i..j].
    std::vector<Point> bottom, top;
    bool has_area = false;
    for (size_t k = i; k <= j; ++k) {
      const Strip& st = strips[k];
      bottom.push_back({st.xa, st.lo});
      bottom.push_back({st.xb, st.lo});
      top.push_back({st.xa, st.hi});
      top.push_back({st.xb, st.hi});
      if (st.xa < st.xb && st.lo < st.hi) has_area = true;
    }
    if (has_area) {
      std::vector<Point> cycle = bottom;
      std::reverse(top.begin(), top.end());
      cycle.insert(cycle.end(), top.begin(), top.end());
      // Drop consecutive duplicates before validation.
      cycle.erase(std::unique(cycle.begin(), cycle.end()), cycle.end());
      while (cycle.size() > 1 && cycle.front() == cycle.back()) {
        cycle.pop_back();
      }
      out.push_back(RectilinearPolygon::from_vertices(std::move(cycle)));
    }
    i = j + 1;
  }
  return out;
}

std::pair<size_t, Length> arc_position(const RectilinearPolygon& q,
                                       const Point& p) {
  for (size_t i = 0; i < q.size(); ++i) {
    Segment e = q.edge(i);
    if (e.contains(p)) return {i, dist1(e.a, p)};
  }
  RSP_CHECK_MSG(false, "point is not on the region boundary");
  return {};
}

std::pair<RectilinearPolygon, RectilinearPolygon> split_region(
    const RectilinearPolygon& q, const Staircase& s,
    const std::vector<Point>& clip) {
  const Point c0 = clip.front();
  const Point c1 = clip.back();
  RSP_CHECK(c0 != c1);

  // Boundary cycle with c0 and c1 inserted on their edges.
  std::vector<Point> cycle;
  for (size_t i = 0; i < q.size(); ++i) {
    Segment e = q.edge(i);
    cycle.push_back(e.a);
    // Insert whichever of c0/c1 lie strictly inside this edge, nearest
    // first.
    std::vector<Point> ins;
    if (e.contains(c0) && c0 != e.a && c0 != e.b) ins.push_back(c0);
    if (e.contains(c1) && c1 != e.a && c1 != e.b) ins.push_back(c1);
    if (ins.size() == 2 && dist1(e.a, ins[0]) > dist1(e.a, ins[1])) {
      std::swap(ins[0], ins[1]);
    }
    for (const auto& p : ins) cycle.push_back(p);
  }

  auto find_pt = [&](const Point& p) {
    auto it = std::find(cycle.begin(), cycle.end(), p);
    RSP_CHECK_MSG(it != cycle.end(), "split point missing from cycle");
    return static_cast<size_t>(it - cycle.begin());
  };
  size_t i0 = find_pt(c0);
  size_t i1 = find_pt(c1);

  // Two boundary arcs (CCW): c0 -> c1 and c1 -> c0.
  auto arc = [&](size_t from, size_t to) {
    std::vector<Point> out;
    for (size_t k = from;; k = (k + 1) % cycle.size()) {
      out.push_back(cycle[k]);
      if (k == to) break;
    }
    return out;
  };
  std::vector<Point> arc01 = arc(i0, i1);
  std::vector<Point> arc10 = arc(i1, i0);

  // Close each arc with the separator chain (reversed as needed).
  auto close_with_chain = [&](std::vector<Point> boundary_arc,
                              bool chain_forward) {
    std::vector<Point> cycle_pts = std::move(boundary_arc);
    std::vector<Point> ch = clip;
    if (!chain_forward) std::reverse(ch.begin(), ch.end());
    // ch now runs from the arc's end back to its start.
    cycle_pts.insert(cycle_pts.end(), ch.begin() + 1, ch.end() - 1);
    return RectilinearPolygon::from_vertices(std::move(cycle_pts));
  };
  // arc01 runs c0 -> c1 CCW; the closing chain must run c1 -> c0, i.e. the
  // clip reversed. arc10 closes with the forward clip (c0 -> c1)... it runs
  // c1 -> c0, so the chain runs c0 -> c1: forward.
  RectilinearPolygon polyA = close_with_chain(arc01, /*chain_forward=*/false);
  RectilinearPolygon polyB = close_with_chain(arc10, /*chain_forward=*/true);

  // Decide which polygon is on the separator's positive side: test any
  // cycle vertex that is strictly off the chain.
  auto side_of_poly = [&](const RectilinearPolygon& poly) {
    for (const auto& p : poly.vertices()) {
      int sd = s.side_of(p);
      if (sd != 0) return sd;
    }
    return 0;
  };
  int sa = side_of_poly(polyA);
  int sb = side_of_poly(polyB);
  RSP_CHECK_MSG(sa * sb <= 0 && (sa != 0 || sb != 0),
                "split sides are ambiguous");
  if (sa > 0 || sb < 0) return {std::move(polyA), std::move(polyB)};
  return {std::move(polyB), std::move(polyA)};
}

}  // namespace rsp
