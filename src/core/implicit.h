#pragma once
// §7 of the paper: path lengths when |P| >> |R|.
//
// When the container polygon has N >> n vertices, materializing
// B(P)-to-V_R lengths costs Θ(N·n). The paper avoids the N term by
// partitioning Bound(P) into at most eight chunks with the four axis lines
// through the extreme edges of Env(R); each chunk gets an O(n)-point
// transfer set K on its line (projections of the envelope's boundary
// discretization), and every nontrivial path from the chunk deforms
// through K without growing. Lengths to K implicitly represent all
// chunk-to-vertex lengths; a query is a binary search plus O(1) lookups.
//
// This module implements the dominant (top/bottom/left/right) chunks —
// every boundary point beyond an extreme line belongs to one of them; the
// four corner chunks of the paper arise only for containers that wrap
// around Env(R) diagonally and reduce to the same transfer-set idea. For
// boundary points between the lines (beside the envelope), queries fall
// back to the exact arbitrary-point reduction of §6.4.
//
// Thread safety: immutable after construction; queries are safe to call
// concurrently (the §6.4 fallback inherits AllPairsSP's guarantees). The
// referenced AllPairsSP must outlive this structure.

#include <memory>

#include "core/query.h"

namespace rsp {

class ImplicitBoundaryLengths {
 public:
  // Builds the transfer sets and their length tables from an existing
  // all-pairs structure. O(n^2) work and memory — independent of |P|.
  explicit ImplicitBoundaryLengths(const AllPairsSP& sp);

  // Length of a shortest path from a point on (or beyond) one of the four
  // chunk lines to an obstacle vertex. p must be free and inside the
  // container. O(log n) when p is in a chunk, §6.4 fallback otherwise.
  Length to_vertex(const Point& p, size_t vertex_id) const;

  // Number of transfer points per chunk (diagnostics; O(n)).
  size_t transfer_points() const;

 private:
  struct Chunk {
    bool horizontal;  // transfer line is horizontal (top/bottom chunks)
    Coord line;       // the line's coordinate
    int side;         // +1: points with coord >= line belong to the chunk
    std::vector<Coord> ks;  // transfer point positions along the line
    Matrix to_vertex;       // |ks| x 4n lengths
    // prefix_lo(k, v) = min_{k' <= k} to_vertex(k', v) - pos(k')
    // prefix_hi(k, v) = min_{k' >= k} to_vertex(k', v) + pos(k')
    Matrix prefix_lo, prefix_hi;
  };

  const AllPairsSP* sp_;
  std::vector<Chunk> chunks_;
};

}  // namespace rsp
