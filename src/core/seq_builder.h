#pragma once
// All-pairs V_R-to-V_R shortest path lengths (paper §9; parallel driver per
// DESIGN.md's documented substitution for §6.3).
//
// For each source vertex v, four monotone-DAG relaxations — one per case of
// the de Rezende–Lee–Wu monotonicity property [11]:
//   E: x-monotone paths, v the left endpoint  (targets right of NE(v)∪SE(v))
//   W: x-monotone paths, v the right endpoint (targets left of NW(v)∪SW(v))
//   N: y-monotone paths, v the lower endpoint (targets above NE(v)∪NW(v))
//   S: y-monotone paths, v the upper endpoint (targets below SE(v)∪SW(v))
// In each case, a target w either sees the source's escape-path pair with an
// unobstructed backward ray (then dist = d(v,w)) or its backward ray hits an
// obstacle edge e, and the shortest path enters w through one of e's two
// endpoints (the DAG edges). Processing targets in coordinate order makes a
// single relaxation sweep exact.
//
// Distances are computed in the infinite plane; by the Containment Lemma
// (paper Lemma 10) they equal the inside-P distances for points inside P.
//
// The same sweep records predecessor pointers: the union over targets is
// precisely the shortest path tree rooted at v that §8 builds, which is how
// actual paths are reported.
//
// Thread safety: the builders are pure functions of their (const) inputs
// (the scheduler overload writes per-source results by index — no shared
// mutable state); AllPairsData is immutable once returned and safe to
// read concurrently. It is also the unit of persistence: io/snapshot.h
// serializes exactly (scene, AllPairsData) and restores engines without
// rebuilding.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/trace.h"
#include "monge/matrix.h"
#include "pram/scheduler.h"

namespace rsp {

struct AllPairsData {
  // dist(a, b): length of a shortest obstacle-avoiding path between
  // obstacle vertices a and b (ids as in Scene::obstacle_vertices()).
  Matrix dist;
  // pred[a*m + b]: vertex preceding b on a shortest a-to-b path, or -1 when
  // the path reaches b directly off a's escape-path pair ("via curve").
  std::vector<int32_t> pred;
  // pass[a*m + b]: which monotone case realized the minimum
  // (0=E, 1=W, 2=N, 3=S, -1 for b==a or untouched).
  std::vector<int8_t> pass;

  // Borrowed-table mode (mmap-adopted snapshots): when set, pred/pass live
  // in the mapping owned by `arena` and the vectors above stay empty. All
  // readers go through pred_data()/pass_data() or pred_of()/pass_of().
  const int32_t* pred_view = nullptr;
  const int8_t* pass_view = nullptr;
  std::shared_ptr<const void> arena;

  size_t m = 0;  // number of vertices (4n)

  const int32_t* pred_data() const { return pred_view ? pred_view : pred.data(); }
  const int8_t* pass_data() const { return pass_view ? pass_view : pass.data(); }

  int32_t pred_of(size_t a, size_t b) const { return pred_data()[a * m + b]; }
  int8_t pass_of(size_t a, size_t b) const { return pass_data()[a * m + b]; }
};

// Geometry of one monotone case, shared with path reconstruction (§8).
struct PassGeometry {
  TraceKind curve_hi;  // escape path for targets with cross-coord >= source
  TraceKind curve_lo;
  bool x_monotone;     // x-monotone case (else y-monotone)
  bool ascending;      // sweep order along the monotone axis
};
PassGeometry pass_geometry(int pass);

// Sequential builder (paper §9): O(n^2 log n) with our ray-shooting
// structures (the paper's O(n^2) uses precomputed Hit(e) sets; the log is
// the stabbing-tree query).
AllPairsData build_all_pairs(const Scene& scene, const RayShooter& shooter,
                             const Tracer& tracer);

// Parallel driver: the n sources are independent after the shared
// pre-processing, so they fan out over the scheduler (documented
// substitution for the paper's §6.3 flow pipeline: same O(n^2) work, linear
// span). Nest-safe: callable from inside a scheduler task, e.g. an Engine
// lazy build running as a task while the caller validates a batch.
AllPairsData build_all_pairs(Scheduler& sched, const Scene& scene,
                             const RayShooter& shooter, const Tracer& tracer);

}  // namespace rsp
