#pragma once
// All-pairs V_R-to-V_R shortest path lengths (paper §9; parallel driver per
// DESIGN.md's documented substitution for §6.3).
//
// For each source vertex v, four monotone-DAG relaxations — one per case of
// the de Rezende–Lee–Wu monotonicity property [11]:
//   E: x-monotone paths, v the left endpoint  (targets right of NE(v)∪SE(v))
//   W: x-monotone paths, v the right endpoint (targets left of NW(v)∪SW(v))
//   N: y-monotone paths, v the lower endpoint (targets above NE(v)∪NW(v))
//   S: y-monotone paths, v the upper endpoint (targets below SE(v)∪SW(v))
// In each case, a target w either sees the source's escape-path pair with an
// unobstructed backward ray (then dist = d(v,w)) or its backward ray hits an
// obstacle edge e, and the shortest path enters w through one of e's two
// endpoints (the DAG edges). Processing targets in coordinate order makes a
// single relaxation sweep exact.
//
// Distances are computed in the infinite plane; by the Containment Lemma
// (paper Lemma 10) they equal the inside-P distances for points inside P.
//
// The same sweep records predecessor pointers: the union over targets is
// precisely the shortest path tree rooted at v that §8 builds, which is how
// actual paths are reported.
//
// Thread safety: the builders are pure functions of their (const) inputs
// (the scheduler overload writes per-source results by index — no shared
// mutable state); AllPairsData is immutable once returned and safe to
// read concurrently. It is also the unit of persistence: io/snapshot.h
// serializes exactly (scene, AllPairsData) and restores engines without
// rebuilding.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/trace.h"
#include "monge/matrix.h"
#include "pram/scheduler.h"

namespace rsp {

// Thrown by table accessors when a partial mount (MountMode::kOwnedRows)
// is asked for a source row outside its [row_lo, row_hi) window. The
// Engine facade converts it to StatusCode::kNotOwner; it never escapes
// the public API.
struct NotOwnerError : std::runtime_error {
  NotOwnerError(size_t lo, size_t hi)
      : std::runtime_error("source row outside owned range"),
        row_lo(lo),
        row_hi(hi) {}
  size_t row_lo, row_hi;
};

struct AllPairsData {
  // dist(a, b): length of a shortest obstacle-avoiding path between
  // obstacle vertices a and b (ids as in Scene::obstacle_vertices()).
  // In partial/segmented modes only the stored rows are present; always
  // read through dist_of().
  Matrix dist;
  // pred[a*m + b]: vertex preceding b on a shortest a-to-b path, or -1 when
  // the path reaches b directly off a's escape-path pair ("via curve").
  std::vector<int32_t> pred;
  // pass[a*m + b]: which monotone case realized the minimum
  // (0=E, 1=W, 2=N, 3=S, -1 for b==a or untouched).
  std::vector<int8_t> pass;

  // Borrowed-table mode (mmap-adopted snapshots): when set, pred/pass live
  // in the mapping owned by `arena` and the vectors above stay empty. All
  // readers go through pred_data()/pass_data() or pred_of()/pass_of().
  const int32_t* pred_view = nullptr;
  const int8_t* pass_view = nullptr;
  std::shared_ptr<const void> arena;

  // Partial-mount mode (MountMode::kOwnedRows): the tables hold only
  // source rows [row_lo, row_hi) — row_hi == 0 means all of [0, m).
  // Accessors rebase `a` and throw NotOwnerError outside the window.
  size_t row_lo = 0, row_hi = 0;

  // Segmented mode (union mount over k mmapped shard files): one pointer
  // per source row into whichever shard mapping holds it, every arena kept
  // alive in `arenas`. A single flat view cannot span k mappings, so the
  // per-row indirection is what makes the union zero-copy. Empty in every
  // other mode. mapped_table_bytes records the bytes resident in those
  // mappings for memory_breakdown().
  std::vector<const Length*> dist_rows;
  std::vector<const int32_t*> pred_rows;
  std::vector<const int8_t*> pass_rows;
  std::vector<std::shared_ptr<const void>> arenas;
  size_t mapped_table_bytes = 0;

  size_t m = 0;  // number of vertices (4n)

  bool segmented() const { return !dist_rows.empty(); }
  bool partial() const { return row_hi != 0; }
  size_t first_row() const { return partial() ? row_lo : 0; }
  size_t rows() const { return partial() ? row_hi - row_lo : m; }
  bool owns_row(size_t a) const {
    return !partial() || (a >= row_lo && a < row_hi);
  }
  void check_row(size_t a) const {
    if (!owns_row(a)) throw NotOwnerError(row_lo, row_hi);
  }

  const int32_t* pred_data() const { return pred_view ? pred_view : pred.data(); }
  const int8_t* pass_data() const { return pass_view ? pass_view : pass.data(); }

  Length dist_of(size_t a, size_t b) const {
    if (segmented()) return dist_rows[a][b];
    check_row(a);
    return dist(a - first_row(), b);
  }
  int32_t pred_of(size_t a, size_t b) const {
    if (segmented()) return pred_rows[a][b];
    check_row(a);
    return pred_data()[(a - first_row()) * m + b];
  }
  int8_t pass_of(size_t a, size_t b) const {
    if (segmented()) return pass_rows[a][b];
    check_row(a);
    return pass_data()[(a - first_row()) * m + b];
  }
};

// Geometry of one monotone case, shared with path reconstruction (§8).
struct PassGeometry {
  TraceKind curve_hi;  // escape path for targets with cross-coord >= source
  TraceKind curve_lo;
  bool x_monotone;     // x-monotone case (else y-monotone)
  bool ascending;      // sweep order along the monotone axis
};
PassGeometry pass_geometry(int pass);

// Sequential builder (paper §9): O(n^2 log n) with our ray-shooting
// structures (the paper's O(n^2) uses precomputed Hit(e) sets; the log is
// the stabbing-tree query).
AllPairsData build_all_pairs(const Scene& scene, const RayShooter& shooter,
                             const Tracer& tracer);

// Parallel driver: the n sources are independent after the shared
// pre-processing, so they fan out over the scheduler (documented
// substitution for the paper's §6.3 flow pipeline: same O(n^2) work, linear
// span). Nest-safe: callable from inside a scheduler task, e.g. an Engine
// lazy build running as a task while the caller validates a batch.
AllPairsData build_all_pairs(Scheduler& sched, const Scene& scene,
                             const RayShooter& shooter, const Tracer& tracer);

}  // namespace rsp
