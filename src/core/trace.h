#pragma once
// The eight escape paths X(p) of the paper (§3, Fig. 5; pre-processing of
// §6.1): NE(p) goes north whenever it can and detours east around blocking
// obstacles; EN(p) goes east and detours north; etc. Each is an unbounded
// monotone staircase in the plane (the paper's setting — by the Containment
// Lemma these plane paths give the right distances for points inside P).
//
// The paper computes these via trapezoidal decomposition + Euler-tour
// forest walks (Lemma 6). We build the same per-obstacle parent forests
// (one per kind, n ray shots each); a path is then one ray shot plus a
// forest walk at O(1) per bend.
//
// Requires the paper's general-position assumption (no two distinct edges
// collinear); generators in io/gen.h enforce it.
//
// Thread safety: immutable after construction; trace()/forest() are safe
// to call concurrently. The referenced Scene and RayShooter must outlive
// the Tracer.

#include <vector>

#include "core/rayshoot.h"
#include "core/scene.h"
#include "geom/staircase.h"
#include "trees/euler.h"

namespace rsp {

enum class TraceKind { NE, NW, SE, SW, EN, ES, WN, WS };
inline constexpr TraceKind kAllTraceKinds[] = {
    TraceKind::NE, TraceKind::NW, TraceKind::SE, TraceKind::SW,
    TraceKind::EN, TraceKind::ES, TraceKind::WN, TraceKind::WS};

class Tracer {
 public:
  Tracer(const Scene& scene, const RayShooter& shooter);

  // The traced path from p: explicit bend points only (p first); the path
  // continues to infinity in the primary direction after the last bend.
  // p must not lie strictly inside an obstacle.
  std::vector<Point> trace(const Point& p, TraceKind k) const;

  // As trace(), with the unbounded tail materialized as a final sentinel
  // point in the primary direction.
  std::vector<Point> trace_with_tail(const Point& p, TraceKind k) const;

  // Same path as an unbounded staircase (sentinel tails materialized).
  Staircase trace_staircase(const Point& p, TraceKind k) const;

  // Parent forest over obstacle ids for kind k: parent(r) is the obstacle
  // the trace runs into after detouring around r, or -1 if it escapes
  // (paper Lemma 6's forest).
  const Forest& forest(TraceKind k) const {
    return forests_[static_cast<size_t>(k)];
  }

  static StairOrient orient_of(TraceKind k);

 private:
  const Scene* scene_;
  const RayShooter* shooter_;
  std::vector<Forest> forests_;
};

}  // namespace rsp
