#include "core/rayshoot.h"

#include <algorithm>
#include <climits>

namespace rsp {

// ---------------------------------------------------------------------------
// StabbingTree
// ---------------------------------------------------------------------------

RayShooter::StabbingTree::StabbingTree(size_t n_positions) {
  while (leaves_ < std::max<size_t>(1, n_positions)) leaves_ *= 2;
  nodes_.resize(2 * leaves_);
}

void RayShooter::StabbingTree::add(size_t lo, size_t hi, Length key, int id) {
  if (lo > hi) return;
  // Canonical segment-tree decomposition of [lo, hi].
  size_t l = lo + leaves_, r = hi + leaves_ + 1;
  while (l < r) {
    if (l & 1) nodes_[l++].push_back({key, id});
    if (r & 1) nodes_[--r].push_back({key, id});
    l /= 2;
    r /= 2;
  }
}

void RayShooter::StabbingTree::build() {
  for (auto& v : nodes_) std::sort(v.begin(), v.end());
}

std::optional<std::pair<Length, int>>
RayShooter::StabbingTree::min_key_at_least(size_t pos, Length q) const {
  std::optional<std::pair<Length, int>> best;
  for (size_t v = pos + leaves_; v >= 1; v /= 2) {
    const auto& list = nodes_[v];
    auto it = std::lower_bound(list.begin(), list.end(),
                               std::make_pair(q, INT_MIN));
    if (it != list.end() && (!best || *it < *best)) best = *it;
  }
  return best;
}

std::optional<std::pair<Length, int>>
RayShooter::StabbingTree::max_key_at_most(size_t pos, Length q) const {
  std::optional<std::pair<Length, int>> best;
  for (size_t v = pos + leaves_; v >= 1; v /= 2) {
    const auto& list = nodes_[v];
    auto it = std::upper_bound(list.begin(), list.end(),
                               std::make_pair(q, INT_MAX));
    if (it != list.begin()) {
      --it;
      if (!best || it->first > best->first) best = *it;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// RayShooter
// ---------------------------------------------------------------------------

namespace {

std::vector<Coord> collect(const Scene& s, bool x_axis) {
  std::vector<Coord> v;
  v.reserve(2 * s.num_obstacles());
  for (const auto& r : s.obstacles()) {
    v.push_back(x_axis ? r.xmin : r.ymin);
    v.push_back(x_axis ? r.xmax : r.ymax);
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

// Position of coordinate c among 2M-1 slots: even = exact value, odd = gap.
// Values outside the coordinate range clamp to the end gaps (no obstacle
// covers those, so queries correctly find nothing).
size_t position_of(const std::vector<Coord>& coords, Coord c) {
  if (coords.empty() || c < coords.front()) return 0;
  if (c > coords.back()) return 2 * coords.size() - 2;
  auto it = std::lower_bound(coords.begin(), coords.end(), c);
  size_t i = static_cast<size_t>(it - coords.begin());
  if (*it == c) return 2 * i;
  return 2 * i - 1;  // gap below *it
}

}  // namespace

RayShooter::RayShooter(const Scene& scene)
    : scene_(&scene),
      xcoords_(collect(scene, true)),
      ycoords_(collect(scene, false)),
      north_(std::max<size_t>(1, 2 * xcoords_.size())),
      south_(std::max<size_t>(1, 2 * xcoords_.size())),
      east_(std::max<size_t>(1, 2 * ycoords_.size())),
      west_(std::max<size_t>(1, 2 * ycoords_.size())) {
  for (size_t i = 0; i < scene.num_obstacles(); ++i) {
    const Rect& r = scene.obstacle(i);
    int id = static_cast<int>(i);
    // Open x-interval (xmin, xmax) -> positions strictly between the two
    // even slots.
    size_t xa = 2 * (std::lower_bound(xcoords_.begin(), xcoords_.end(),
                                      r.xmin) -
                     xcoords_.begin());
    size_t xb = 2 * (std::lower_bound(xcoords_.begin(), xcoords_.end(),
                                      r.xmax) -
                     xcoords_.begin());
    if (xa + 1 <= xb - 1) {
      north_.add(xa + 1, xb - 1, r.ymin, id);  // bottom edge blocks N rays
      south_.add(xa + 1, xb - 1, r.ymax, id);  // top edge blocks S rays
    }
    size_t ya = 2 * (std::lower_bound(ycoords_.begin(), ycoords_.end(),
                                      r.ymin) -
                     ycoords_.begin());
    size_t yb = 2 * (std::lower_bound(ycoords_.begin(), ycoords_.end(),
                                      r.ymax) -
                     ycoords_.begin());
    if (ya + 1 <= yb - 1) {
      east_.add(ya + 1, yb - 1, r.xmin, id);  // left edge blocks E rays
      west_.add(ya + 1, yb - 1, r.xmax, id);  // right edge blocks W rays
    }
  }
  north_.build();
  south_.build();
  east_.build();
  west_.build();
}

size_t RayShooter::xpos(Coord x) const { return position_of(xcoords_, x); }
size_t RayShooter::ypos(Coord y) const { return position_of(ycoords_, y); }

std::optional<RayHit> RayShooter::shoot_obstacle(const Point& p,
                                                 Dir d) const {
  std::optional<std::pair<Length, int>> found;
  switch (d) {
    case Dir::North:
      found = north_.min_key_at_least(xpos(p.x), p.y);
      if (found) return RayHit{{p.x, found->first}, found->second};
      break;
    case Dir::South:
      found = south_.max_key_at_most(xpos(p.x), p.y);
      if (found) return RayHit{{p.x, found->first}, found->second};
      break;
    case Dir::East:
      found = east_.min_key_at_least(ypos(p.y), p.x);
      if (found) return RayHit{{found->first, p.y}, found->second};
      break;
    case Dir::West:
      found = west_.max_key_at_most(ypos(p.y), p.x);
      if (found) return RayHit{{found->first, p.y}, found->second};
      break;
  }
  return std::nullopt;
}

RayHit RayShooter::shoot(const Point& p, Dir d) const {
  const RectilinearPolygon& poly = scene_->container();
  RSP_CHECK_MSG(poly.contains(p), "ray origin outside container");
  Point boundary_hit;
  switch (d) {
    case Dir::North:
      boundary_hit = {p.x, poly.y_range_at(p.x).second};
      break;
    case Dir::South:
      boundary_hit = {p.x, poly.y_range_at(p.x).first};
      break;
    case Dir::East:
      boundary_hit = {poly.x_range_at(p.y).second, p.y};
      break;
    case Dir::West:
      boundary_hit = {poly.x_range_at(p.y).first, p.y};
      break;
  }
  auto obs = shoot_obstacle(p, d);
  if (obs) {
    // The obstacle hit wins iff it is not past the container boundary.
    bool closer = false;
    switch (d) {
      case Dir::North: closer = obs->hit.y <= boundary_hit.y; break;
      case Dir::South: closer = obs->hit.y >= boundary_hit.y; break;
      case Dir::East: closer = obs->hit.x <= boundary_hit.x; break;
      case Dir::West: closer = obs->hit.x >= boundary_hit.x; break;
    }
    if (closer) return *obs;
  }
  return RayHit{boundary_hit, -1};
}

}  // namespace rsp
