#include "core/trace.h"

#include <algorithm>

namespace rsp {

namespace {

Dir primary_of(TraceKind k) {
  switch (k) {
    case TraceKind::NE:
    case TraceKind::NW: return Dir::North;
    case TraceKind::SE:
    case TraceKind::SW: return Dir::South;
    case TraceKind::EN:
    case TraceKind::ES: return Dir::East;
    case TraceKind::WN:
    case TraceKind::WS: return Dir::West;
  }
  return Dir::North;
}

// The corner of the blocking obstacle where the detour ends and the primary
// direction resumes.
Point detour_corner(const Rect& r, TraceKind k) {
  switch (k) {
    case TraceKind::NE: return r.lr();  // north blocked by bottom, go east
    case TraceKind::NW: return r.ll();
    case TraceKind::SE: return r.ur();  // south blocked by top, go east
    case TraceKind::SW: return r.ul();
    case TraceKind::EN: return r.ul();  // east blocked by left, go north
    case TraceKind::ES: return r.ll();
    case TraceKind::WN: return r.ur();  // west blocked by right, go north
    case TraceKind::WS: return r.lr();
  }
  return r.ll();
}

// Where the primary ray from `from` lands on obstacle r's blocking edge.
Point edge_hit(const Rect& r, TraceKind k, const Point& from) {
  switch (primary_of(k)) {
    case Dir::North: return {from.x, r.ymin};
    case Dir::South: return {from.x, r.ymax};
    case Dir::East: return {r.xmin, from.y};
    case Dir::West: return {r.xmax, from.y};
  }
  return from;
}

}  // namespace

StairOrient Tracer::orient_of(TraceKind k) {
  switch (k) {
    case TraceKind::NE:
    case TraceKind::SW:
    case TraceKind::EN:
    case TraceKind::WS: return StairOrient::Increasing;
    case TraceKind::NW:
    case TraceKind::SE:
    case TraceKind::ES:
    case TraceKind::WN: return StairOrient::Decreasing;
  }
  return StairOrient::Increasing;
}

Tracer::Tracer(const Scene& scene, const RayShooter& shooter)
    : scene_(&scene), shooter_(&shooter) {
  // Per-kind parent forests: parent(r) = obstacle hit when resuming the
  // primary direction from r's detour corner.
  forests_.reserve(8);
  const int n = static_cast<int>(scene.num_obstacles());
  for (TraceKind k : kAllTraceKinds) {
    std::vector<int> parent(n, -1);
    for (int r = 0; r < n; ++r) {
      Point corner = detour_corner(scene.obstacle(r), k);
      auto hit = shooter.shoot_obstacle(corner, primary_of(k));
      if (hit) parent[r] = hit->rect;
    }
    forests_.emplace_back(std::move(parent));
  }
}

std::vector<Point> Tracer::trace(const Point& p, TraceKind k) const {
  std::vector<Point> path{p};
  auto push = [&](const Point& q) {
    if (q != path.back()) path.push_back(q);
  };
  auto first = shooter_->shoot_obstacle(p, primary_of(k));
  if (!first) return path;
  push(first->hit);
  const Forest& f = forest(k);
  for (int r = first->rect; r >= 0;) {
    Point corner = detour_corner(scene_->obstacle(r), k);
    push(corner);
    int pr = f.parent(r);
    if (pr >= 0) push(edge_hit(scene_->obstacle(pr), k, corner));
    r = pr;
  }
  return path;
}

std::vector<Point> Tracer::trace_with_tail(const Point& p,
                                           TraceKind k) const {
  std::vector<Point> path = trace(p, k);
  Point tail = path.back();
  switch (primary_of(k)) {
    case Dir::North: tail.y = Staircase::kBig; break;
    case Dir::South: tail.y = -Staircase::kBig; break;
    case Dir::East: tail.x = Staircase::kBig; break;
    case Dir::West: tail.x = -Staircase::kBig; break;
  }
  path.push_back(tail);
  return path;
}

Staircase Tracer::trace_staircase(const Point& p, TraceKind k) const {
  std::vector<Point> path = trace_with_tail(p, k);
  StairOrient orient = orient_of(k);
  if (path.front().x > path.back().x ||
      (path.front().x == path.back().x &&
       ((orient == StairOrient::Increasing && path.front().y > path.back().y) ||
        (orient == StairOrient::Decreasing &&
         path.front().y < path.back().y)))) {
    std::reverse(path.begin(), path.end());
  }
  return Staircase::from_chain(std::move(path), orient);
}

}  // namespace rsp
