#pragma once
// Convex-region operations for the §5 divide-and-conquer: clipping a
// staircase separator to a region and splitting the region along it.
//
// Regions are rectilinear convex polygons throughout (the root is the
// container P; splitting a convex region along a monotone staircase yields
// two convex regions, see §2 of the paper).
//
// Thread safety: pure functions of their (const) inputs; concurrent calls
// are safe.

#include <optional>
#include <utility>
#include <vector>

#include "geom/polygon.h"
#include "geom/staircase.h"

namespace rsp {

// The contiguous portion of staircase `s` inside region `q`, as an ordered
// polyline (first and last points lie on Bound(q)). Requires the staircase
// to cross the region in one connected piece (use side_components for the
// general case).
std::vector<Point> clip_staircase(const RectilinearPolygon& q,
                                  const Staircase& s);

// Splits `q` along the clipped separator chain. Returns {above, below}:
// the sub-region on the staircase's positive side (side_of == +1) and the
// one on its negative side. The chain becomes part of both boundaries.
// Requires both sides connected; see side_components for the general case.
std::pair<RectilinearPolygon, RectilinearPolygon> split_region(
    const RectilinearPolygon& q, const Staircase& s,
    const std::vector<Point>& clip);

// General splitting: the connected components of one side of `q` relative
// to the staircase (side=+1: the region where side_of >= 0; side=-1:
// side_of <= 0). A separator traced around only this region's obstacles
// may leave and re-enter the region, so a side can have several
// components; each component is itself a rectilinear convex polygon whose
// boundary consists of pieces of Bound(q) and pieces of the staircase.
// Components of zero area (the staircase running along the boundary) are
// omitted.
std::vector<RectilinearPolygon> side_components(const RectilinearPolygon& q,
                                                const Staircase& s,
                                                int side);

// Position of p along the CCW boundary walk of q: (edge index, offset
// along that edge). p must lie on the boundary.
std::pair<size_t, Length> arc_position(const RectilinearPolygon& q,
                                       const Point& p);

}  // namespace rsp
