#include "core/sptree.h"

#include <algorithm>

namespace rsp {

SpTrees::SpTrees(const Scene& scene, const Tracer& tracer,
                 const AllPairsData& data)
    : scene_(&scene), tracer_(&tracer), data_(&data) {}

SpTrees::RootData& SpTrees::root_data(size_t a) const {
  // RootData is immutable once built and unordered_map references stay
  // valid across later insertions, so a hit needs only the shared lock —
  // concurrent batch path queries scale instead of serializing. A miss
  // re-checks under the exclusive lock (another thread may have built the
  // same root between the two lock acquisitions).
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    auto it = cache_.find(a);
    if (it != cache_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = cache_.find(a);
  if (it != cache_.end()) return it->second;
  const size_t m = data_->m;
  std::vector<int> parent(m, -1);
  for (size_t b = 0; b < m; ++b) {
    parent[b] = data_->pred_of(a, b);
  }
  RootData rd;
  rd.forest = std::make_unique<Forest>(std::move(parent));
  rd.la = std::make_unique<LevelAncestor>(*rd.forest);
  return cache_.emplace(a, std::move(rd)).first->second;
}

const Forest& SpTrees::tree(size_t a) const { return *root_data(a).forest; }

int SpTrees::hops(size_t a, size_t b) const {
  return root_data(a).forest->depth(static_cast<int>(b));
}

namespace {

// Appends q to out, merging collinear runs and dropping duplicates.
void emit(std::vector<Point>& out, const Point& q) {
  if (!out.empty() && out.back() == q) return;
  while (out.size() >= 2) {
    const Point& x = out[out.size() - 2];
    const Point& y = out.back();
    if ((x.x == y.x && y.x == q.x) || (x.y == y.y && y.y == q.y)) {
      out.pop_back();
    } else {
      break;
    }
  }
  out.push_back(q);
}

}  // namespace

std::vector<Point> SpTrees::path(size_t a, size_t b) const {
  const auto& verts = scene_->obstacle_vertices();
  const size_t m = data_->m;
  RSP_CHECK(a < m && b < m);
  std::vector<Point> out;
  if (a == b) return {verts[a]};

  // Collect the pred chain b -> ... -> u0 (pred(u0) == -1 or u0 == a). A
  // valid pred table strictly descends in dist, so the chain has at most m
  // nodes; the explicit bound turns a cyclic table (possible only through
  // an mmap-adopted snapshot, whose load skips the O(m^2) descent recheck)
  // into a fail-fast error instead of an unbounded walk.
  std::vector<size_t> chain;
  for (int cur = static_cast<int>(b); cur >= 0;
       cur = data_->pred_of(a, static_cast<size_t>(cur))) {
    RSP_CHECK_MSG(chain.size() <= m, "pred chain exceeds vertex count (cycle)");
    chain.push_back(static_cast<size_t>(cur));
    if (static_cast<size_t>(cur) == a) break;
  }
  size_t u0 = chain.back();

  // Head of the path: from a to u0. If u0 != a it is "direct via curve":
  // ride a's escape path of u0's winning pass to the backward-ray crossing
  // point, then straight to u0.
  emit(out, verts[a]);
  if (u0 != a) {
    int pi = data_->pass_of(a, u0);
    RSP_CHECK_MSG(pi >= 0, "vertices disconnected in pred structure");
    PassGeometry g = pass_geometry(pi);
    const Point pa = verts[a];
    const Point pu = verts[u0];
    TraceKind kind;
    if (g.x_monotone) {
      kind = (pu.y >= pa.y) ? g.curve_hi : g.curve_lo;
    } else {
      kind = (pu.x >= pa.x) ? g.curve_hi : g.curve_lo;
    }
    Staircase curve = tracer_->trace_staircase(pa, kind);
    Point cross;
    if (g.x_monotone) {
      auto iv = curve.x_interval_at(pu.y);
      cross = {g.ascending ? iv.second : iv.first, pu.y};
    } else {
      auto iv = curve.y_interval_at(pu.x);
      cross = {pu.x, g.ascending ? iv.second : iv.first};
    }
    // Walk the explicit trace from a until the bend beyond the crossing,
    // then cut at the crossing point.
    std::vector<Point> bends = tracer_->trace(pa, kind);
    for (size_t i = 0; i < bends.size(); ++i) {
      emit(out, bends[i]);
      if (i + 1 < bends.size() &&
          Segment{bends[i], bends[i + 1]}.contains(cross)) {
        break;
      }
    }
    emit(out, cross);
    emit(out, pu);
  }

  // Expand each hop u -> w with its L-shaped leg; hop geometry follows w's
  // winning pass (x-monotone: corner shares u's x; y-monotone: u's y).
  for (size_t i = chain.size() - 1; i > 0; --i) {
    size_t u = chain[i];
    size_t w = chain[i - 1];
    int pi = data_->pass_of(a, w);
    RSP_CHECK(pi >= 0);
    PassGeometry g = pass_geometry(pi);
    Point corner = g.x_monotone ? Point{verts[u].x, verts[w].y}
                                : Point{verts[w].x, verts[u].y};
    emit(out, verts[u]);
    emit(out, corner);
    emit(out, verts[w]);
  }
  emit(out, verts[b]);
  return out;
}

std::vector<std::vector<int>> SpTrees::chunked_chain(size_t a, size_t b,
                                                     int chunk) const {
  RSP_CHECK(chunk >= 1);
  RootData& rd = root_data(a);
  int depth = rd.forest->depth(static_cast<int>(b));
  int total = depth + 1;  // nodes on the chain
  int pieces = (total + chunk - 1) / chunk;
  std::vector<std::vector<int>> out(pieces);
  for (int p = 0; p < pieces; ++p) {
    // Piece p covers chain offsets [p*chunk, min(total, (p+1)*chunk)).
    int lo = p * chunk;
    int hi = std::min(total, lo + chunk);
    int node = rd.la->query(static_cast<int>(b), lo);  // O(1) locate
    for (int off = lo; off < hi; ++off) {
      out[p].push_back(node);
      node = rd.forest->parent(node);
    }
  }
  return out;
}

}  // namespace rsp
