#pragma once
// The problem instance (paper §2): a rectilinear convex polygon P containing
// n pairwise-disjoint axis-parallel rectangular obstacles R.
//
// Thread safety: immutable after construction; all const members are safe
// to call concurrently. Construction validates and throws (RSP_CHECK) on
// invalid input — use Engine::Create for the non-throwing path.

#include <span>
#include <vector>

#include "geom/polygon.h"
#include "geom/rect.h"

namespace rsp {

class Scene {
 public:
  Scene() = default;

  // Validates: obstacles interior-disjoint, all inside the container.
  // If `container` is empty, a bounding rectangle with margin is used.
  Scene(std::vector<Rect> obstacles, RectilinearPolygon container);
  static Scene with_bbox(std::vector<Rect> obstacles, Coord margin = 4);

  size_t num_obstacles() const { return obstacles_.size(); }
  const std::vector<Rect>& obstacles() const { return obstacles_; }
  const Rect& obstacle(size_t i) const { return obstacles_[i]; }
  const RectilinearPolygon& container() const { return container_; }

  // V_R: the 4n obstacle vertices, in obstacle order (ll, lr, ur, ul per
  // obstacle). vertex_id = 4*rect + corner.
  const std::vector<Point>& obstacle_vertices() const { return verts_; }
  Point vertex(size_t id) const { return verts_[id]; }
  size_t rect_of_vertex(size_t id) const { return id / 4; }

  // True iff p avoids all obstacle interiors and lies in the container.
  bool point_free(const Point& p) const;
  // True iff the axis-parallel segment a-b avoids all obstacle interiors
  // and stays in the container. O(n) — for validation, not hot paths.
  bool segment_free(const Point& a, const Point& b) const;
  // Validates an entire polyline path (also checks axis-parallelism).
  bool path_free(std::span<const Point> path) const;

 private:
  std::vector<Rect> obstacles_;
  RectilinearPolygon container_;
  std::vector<Point> verts_;
};

}  // namespace rsp
