#include "core/seq_builder.h"

#include <algorithm>

#include "pram/parallel.h"

namespace rsp {

namespace {

struct PassConfig {
  TraceKind curve_hi;  // escape path used for targets with coord >= source's
  TraceKind curve_lo;  // escape path for the other half
  Dir back;            // backward ray direction from the target
  bool x_monotone;     // sweep axis
  bool ascending;      // topological processing order along the sweep axis
};

constexpr PassConfig kPasses[4] = {
    // E: right of NE(v) ∪ SE(v); backward ray west; process x ascending.
    {TraceKind::NE, TraceKind::SE, Dir::West, true, true},
    // W: left of NW(v) ∪ SW(v); backward ray east; process x descending.
    {TraceKind::NW, TraceKind::SW, Dir::East, true, false},
    // N: above NE(v) ∪ NW(v); backward ray south; process y ascending.
    {TraceKind::NE, TraceKind::NW, Dir::South, false, true},
    // S: below SE(v) ∪ SW(v); backward ray north; process y descending.
    {TraceKind::SE, TraceKind::SW, Dir::North, false, false},
};

// Membership of w in the pass's target region (on-boundary included).
bool in_region(int pass, const Staircase& hi, const Staircase& lo,
               const Point& w) {
  switch (pass) {
    case 0: return hi.side_of(w) <= 0 && lo.side_of(w) >= 0;  // E
    case 1: return hi.side_of(w) <= 0 && lo.side_of(w) >= 0;  // W
    case 2: return hi.side_of(w) >= 0 && lo.side_of(w) >= 0;  // N
    case 3: return hi.side_of(w) <= 0 && lo.side_of(w) <= 0;  // S
  }
  return false;
}

// The two vertex ids of the obstacle edge blocking w's backward ray.
// Vertex ids follow Scene: 4*rect + {0:ll, 1:lr, 2:ur, 3:ul}.
std::pair<int, int> edge_vertices(int rect, Dir back) {
  switch (back) {
    case Dir::West: return {4 * rect + 1, 4 * rect + 2};   // lr, ur
    case Dir::East: return {4 * rect + 0, 4 * rect + 3};   // ll, ul
    case Dir::South: return {4 * rect + 3, 4 * rect + 2};  // ul, ur
    case Dir::North: return {4 * rect + 0, 4 * rect + 1};  // ll, lr
  }
  return {-1, -1};
}

struct SourceScratch {
  std::vector<Length> dist;  // per-pass distances
  std::vector<int32_t> pred;
  const std::vector<size_t>* order = nullptr;  // sweep order for this pass
};

// One monotone-DAG sweep for source vertex id `src` and pass `pi`.
// `hits[d][w]` are the precomputed backward-ray results per direction.
void run_pass(const Scene& scene, const Tracer& tracer, size_t src, int pi,
              const std::vector<std::optional<RayHit>>* hits,
              SourceScratch& scr, AllPairsData& out) {
  const PassConfig& cfg = kPasses[pi];
  const auto& verts = scene.obstacle_vertices();
  const size_t m = verts.size();
  const Point pv = verts[src];

  Staircase hi = tracer.trace_staircase(pv, cfg.curve_hi);
  Staircase lo = tracer.trace_staircase(pv, cfg.curve_lo);

  std::fill(scr.dist.begin(), scr.dist.end(), kInf);
  std::fill(scr.pred.begin(), scr.pred.end(), -1);
  scr.dist[src] = 0;

  // Topological order: coordinate order along the monotone axis
  // (precomputed once per pass direction by the caller).
  const auto& back_hits = hits[static_cast<size_t>(cfg.back)];

  for (size_t w : *scr.order) {
    if (w == src) continue;
    const Point pw = verts[w];
    if (!in_region(pi, hi, lo, pw)) continue;
    const auto& hit = back_hits[w];

    // Where the backward ray from w first meets the escape-path pair.
    // Pick the curve covering w's cross-axis coordinate.
    Length cross;
    if (cfg.x_monotone) {
      const Staircase& c = (pw.y >= pv.y) ? hi : lo;
      auto iv = c.x_interval_at(pw.y);
      cross = cfg.ascending ? iv.second : iv.first;
    } else {
      const Staircase& c = (pw.x >= pv.x) ? hi : lo;
      auto iv = c.y_interval_at(pw.x);
      cross = cfg.ascending ? iv.second : iv.first;
    }

    bool direct;
    if (!hit) {
      direct = true;  // ray to infinity always crosses the unbounded pair
    } else {
      Length hit_coord = cfg.x_monotone ? hit->hit.x : hit->hit.y;
      direct = cfg.ascending ? (cross >= hit_coord) : (cross <= hit_coord);
    }
    if (direct) {
      scr.dist[w] = dist1(pv, pw);
      scr.pred[w] = -1;
      continue;
    }
    auto [u1, u2] = edge_vertices(hit->rect, cfg.back);
    Length c1 = add_len(scr.dist[u1], dist1(verts[u1], pw));
    Length c2 = add_len(scr.dist[u2], dist1(verts[u2], pw));
    if (c1 <= c2) {
      scr.dist[w] = c1;
      scr.pred[w] = u1;
    } else {
      scr.dist[w] = c2;
      scr.pred[w] = u2;
    }
  }

  // Fold into the output row. Branch-free selects over the contiguous
  // row slices: every element rewrites all three outputs from one
  // comparison mask, so the compiler can vectorize the scan instead of
  // branching (and scattering) per element.
  Length* od = &out.dist(src, 0);
  int32_t* op = out.pred.data() + src * m;
  int8_t* oq = out.pass.data() + src * m;
  const Length* sd = scr.dist.data();
  const int32_t* sp = scr.pred.data();
  const int8_t pass_tag = static_cast<int8_t>(pi);
  for (size_t w = 0; w < m; ++w) {
    const bool better = sd[w] < od[w];
    od[w] = better ? sd[w] : od[w];
    op[w] = better ? sp[w] : op[w];
    oq[w] = better ? pass_tag : oq[w];
  }
}

// Shared pre-processing: backward-ray hits for all vertices and directions
// (independent of the source — the paper's Hit(e) sets, §9 item (6)).
std::vector<std::vector<std::optional<RayHit>>> precompute_hits(
    const Scene& scene, const RayShooter& shooter) {
  const auto& verts = scene.obstacle_vertices();
  std::vector<std::vector<std::optional<RayHit>>> hits(
      4, std::vector<std::optional<RayHit>>(verts.size()));
  for (Dir d : {Dir::North, Dir::South, Dir::East, Dir::West}) {
    auto& row = hits[static_cast<size_t>(d)];
    for (size_t w = 0; w < verts.size(); ++w) {
      row[w] = shooter.shoot_obstacle(verts[w], d);
    }
  }
  return hits;
}

// Sweep orders shared by all sources: ids sorted by x asc, x desc, y asc,
// y desc (matching kPasses).
std::vector<std::vector<size_t>> sweep_orders(const Scene& scene) {
  const auto& verts = scene.obstacle_vertices();
  std::vector<size_t> base(verts.size());
  for (size_t i = 0; i < base.size(); ++i) base[i] = i;
  std::vector<std::vector<size_t>> orders(4, base);
  std::sort(orders[0].begin(), orders[0].end(), [&](size_t a, size_t b) {
    return verts[a].x != verts[b].x ? verts[a].x < verts[b].x : a < b;
  });
  orders[1] = orders[0];
  std::reverse(orders[1].begin(), orders[1].end());
  std::sort(orders[2].begin(), orders[2].end(), [&](size_t a, size_t b) {
    return verts[a].y != verts[b].y ? verts[a].y < verts[b].y : a < b;
  });
  orders[3] = orders[2];
  std::reverse(orders[3].begin(), orders[3].end());
  return orders;
}

AllPairsData build_impl(Scheduler* sched, const Scene& scene,
                        const RayShooter& shooter, const Tracer& tracer) {
  const size_t m = scene.obstacle_vertices().size();
  AllPairsData out;
  out.m = m;
  out.dist = Matrix(m, m, kInf);
  out.pred.assign(m * m, -1);
  out.pass.assign(m * m, -1);

  auto hits = precompute_hits(scene, shooter);
  auto orders = sweep_orders(scene);

  auto do_source = [&](size_t src) {
    SourceScratch scr;
    scr.dist.resize(m);
    scr.pred.resize(m);
    out.dist(src, src) = 0;
    for (int pi = 0; pi < 4; ++pi) {
      scr.order = &orders[pi];
      run_pass(scene, tracer, src, pi, hits.data(), scr, out);
    }
  };

  if (sched != nullptr) {
    parallel_for(*sched, 0, m, do_source, /*grain=*/1);
  } else {
    for (size_t src = 0; src < m; ++src) do_source(src);
  }
  return out;
}

}  // namespace

PassGeometry pass_geometry(int pass) {
  RSP_CHECK(pass >= 0 && pass < 4);
  const PassConfig& c = kPasses[pass];
  return {c.curve_hi, c.curve_lo, c.x_monotone, c.ascending};
}

AllPairsData build_all_pairs(const Scene& scene, const RayShooter& shooter,
                             const Tracer& tracer) {
  return build_impl(nullptr, scene, shooter, tracer);
}

AllPairsData build_all_pairs(Scheduler& sched, const Scene& scene,
                             const RayShooter& shooter,
                             const Tracer& tracer) {
  return build_impl(&sched, scene, shooter, tracer);
}

}  // namespace rsp
