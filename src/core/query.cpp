#include "core/query.h"

#include <algorithm>

namespace rsp {

namespace {

void emit(std::vector<Point>& out, const Point& q) {
  if (!out.empty() && out.back() == q) return;
  while (out.size() >= 2) {
    const Point& x = out[out.size() - 2];
    const Point& y = out.back();
    if ((x.x == y.x && y.x == q.x) || (x.y == y.y && y.y == q.y)) {
      out.pop_back();
    } else {
      break;
    }
  }
  out.push_back(q);
}

}  // namespace

AllPairsSP::AllPairsSP(Scene scene, const Options& opt)
    : AllPairsSP(std::move(scene),
                 opt.num_threads >= 2
                     ? std::make_unique<Scheduler>(opt.num_threads)
                     : nullptr) {}

AllPairsSP::AllPairsSP(Scene scene,
                       std::unique_ptr<Scheduler> transient_sched)
    : AllPairsSP(std::move(scene), transient_sched.get()) {}

AllPairsSP::AllPairsSP(Scene scene, Scheduler* build_sched)
    : scene_(std::move(scene)),
      shooter_(scene_),
      tracer_(scene_, shooter_),
      data_(build_sched != nullptr
                ? build_all_pairs(*build_sched, scene_, shooter_, tracer_)
                : build_all_pairs(scene_, shooter_, tracer_)),
      trees_(scene_, tracer_, data_) {
  init_vertex_ids();
}

AllPairsSP::AllPairsSP(Scene scene, AllPairsData data)
    : scene_(std::move(scene)),
      shooter_(scene_),
      tracer_(scene_, shooter_),
      data_(std::move(data)),
      trees_(scene_, tracer_, data_) {
  RSP_CHECK_MSG(data_.m == 4 * scene_.num_obstacles(),
                "restored AllPairsData does not belong to this scene");
  if (data_.segmented()) {
    RSP_CHECK_MSG(data_.dist_rows.size() == data_.m &&
                      data_.pred_rows.size() == data_.m &&
                      data_.pass_rows.size() == data_.m,
                  "segmented AllPairsData must carry one pointer per row");
  } else {
    RSP_CHECK_MSG(!data_.partial() ||
                      (data_.row_lo < data_.row_hi && data_.row_hi <= data_.m),
                  "restored AllPairsData owned-row window is malformed");
    const size_t sz = data_.rows() * data_.m;
    const bool pred_sized =
        data_.pred_view != nullptr ? true : data_.pred.size() == sz;
    const bool pass_sized =
        data_.pass_view != nullptr ? true : data_.pass.size() == sz;
    RSP_CHECK_MSG(pred_sized && pass_sized &&
                      data_.dist.rows() == data_.rows() &&
                      data_.dist.cols() == data_.m,
                  "restored AllPairsData tables have inconsistent sizes");
  }
  init_vertex_ids();
}

void AllPairsSP::init_vertex_ids() {
  const auto& verts = scene_.obstacle_vertices();
  vertex_ids_.reserve(verts.size());
  for (size_t i = 0; i < verts.size(); ++i) vertex_ids_.emplace(verts[i], i);
}

std::optional<size_t> AllPairsSP::vertex_id(const Point& p) const {
  auto it = vertex_ids_.find(p);
  if (it == vertex_ids_.end()) return std::nullopt;
  return it->second;
}

AllPairsSP::Resolution AllPairsSP::resolve(const Point& src,
                                           const Point& tgt) const {
  // The four escape curves of the source (paper §6.4 uses NE(q) etc.).
  Staircase ne = tracer_.trace_staircase(src, TraceKind::NE);
  Staircase nw = tracer_.trace_staircase(src, TraceKind::NW);
  Staircase se = tracer_.trace_staircase(src, TraceKind::SE);
  Staircase sw = tracer_.trace_staircase(src, TraceKind::SW);

  // Classify tgt into one of the four escape-path regions. Prefer a region
  // containing tgt strictly: side 0 can come from a curve's sentinel
  // extension (e.g. the vertical line below src for NE/NW), and treating
  // such phantom boundary contact as region membership triggers false
  // "direct" answers. A weak match is only trusted when no strict region
  // exists — then tgt genuinely lies on a real curve and the direct
  // geometry is exact.
  int sne = ne.side_of(tgt), snw = nw.side_of(tgt);
  int sse = se.side_of(tgt), ssw = sw.side_of(tgt);
  int pass = -1;
  if (sne < 0 && sse > 0) pass = 0;       // E, strict
  else if (snw < 0 && ssw > 0) pass = 1;  // W, strict
  else if (sne > 0 && snw > 0) pass = 2;  // N, strict
  else if (sse < 0 && ssw < 0) pass = 3;  // S, strict
  else if (sne <= 0 && sse >= 0) pass = 0;
  else if (snw <= 0 && ssw >= 0) pass = 1;
  else if (sne >= 0 && snw >= 0) pass = 2;
  else if (sse <= 0 && ssw <= 0) pass = 3;
  RSP_CHECK_MSG(pass >= 0, "escape-path regions failed to cover target");

  PassGeometry g = pass_geometry(pass);
  const Staircase* hi = nullptr;
  const Staircase* lo = nullptr;
  switch (pass) {
    case 0: hi = &ne; lo = &se; break;
    case 1: hi = &nw; lo = &sw; break;
    case 2: hi = &ne; lo = &nw; break;
    case 3: hi = &se; lo = &sw; break;
  }

  Resolution r;
  r.pass = pass;
  Dir back;
  if (g.x_monotone) {
    back = g.ascending ? Dir::West : Dir::East;
  } else {
    back = g.ascending ? Dir::South : Dir::North;
  }
  const Staircase* curve;
  if (g.x_monotone) {
    curve = (tgt.y >= src.y) ? hi : lo;
    r.kind = (tgt.y >= src.y) ? g.curve_hi : g.curve_lo;
    auto iv = curve->x_interval_at(tgt.y);
    r.cross = {g.ascending ? iv.second : iv.first, tgt.y};
  } else {
    curve = (tgt.x >= src.x) ? hi : lo;
    r.kind = (tgt.x >= src.x) ? g.curve_hi : g.curve_lo;
    auto iv = curve->y_interval_at(tgt.x);
    r.cross = {tgt.x, g.ascending ? iv.second : iv.first};
  }

  auto hit = shooter_.shoot_obstacle(tgt, back);
  if (!hit) {
    r.direct = true;
    return r;
  }
  Length cross_c = g.x_monotone ? r.cross.x : r.cross.y;
  Length hit_c = g.x_monotone ? hit->hit.x : hit->hit.y;
  r.direct = g.ascending ? (cross_c >= hit_c) : (cross_c <= hit_c);
  if (!r.direct) {
    r.hit = hit->hit;
    int rect = hit->rect;
    switch (back) {
      case Dir::West: r.u1 = 4 * rect + 1; r.u2 = 4 * rect + 2; break;
      case Dir::East: r.u1 = 4 * rect + 0; r.u2 = 4 * rect + 3; break;
      case Dir::South: r.u1 = 4 * rect + 3; r.u2 = 4 * rect + 2; break;
      case Dir::North: r.u1 = 4 * rect + 0; r.u2 = 4 * rect + 1; break;
    }
  }
  return r;
}

Length AllPairsSP::from_vertex(size_t v, const Point& tgt,
                               std::vector<Point>* out_path) const {
  const auto& verts = scene_.obstacle_vertices();
  const Point pv = verts[v];
  if (tgt == pv) {
    if (out_path) *out_path = {pv};
    return 0;
  }
  if (auto id = vertex_id(tgt)) {
    if (out_path) *out_path = trees_.path(v, *id);
    return data_.dist_of(v, *id);
  }
  Resolution r = resolve(pv, tgt);
  if (r.direct) {
    if (out_path) emit_direct(pv, r, tgt, *out_path);
    return dist1(pv, tgt);
  }
  Length c1 = add_len(data_.dist_of(v, static_cast<size_t>(r.u1)),
                      dist1(verts[r.u1], tgt));
  Length c2 = add_len(data_.dist_of(v, static_cast<size_t>(r.u2)),
                      dist1(verts[r.u2], tgt));
  size_t u = c1 <= c2 ? r.u1 : r.u2;
  if (out_path) {
    *out_path = trees_.path(v, u);
    emit(*out_path, r.hit);
    emit(*out_path, tgt);
  }
  return std::min(c1, c2);
}

void AllPairsSP::emit_direct(const Point& src, const Resolution& r,
                             const Point& tgt, std::vector<Point>& out) const {
  std::vector<Point> bends = tracer_.trace(src, r.kind);
  for (size_t i = 0; i < bends.size(); ++i) {
    emit(out, bends[i]);
    if (i + 1 < bends.size() &&
        Segment{bends[i], bends[i + 1]}.contains(r.cross)) {
      break;
    }
  }
  emit(out, r.cross);
  emit(out, tgt);
}

Length AllPairsSP::length(const Point& s, const Point& t) const {
  RSP_CHECK_MSG(scene_.point_free(s) && scene_.point_free(t),
                "query points must be free and inside the container");
  if (s == t) return 0;
  auto sid = vertex_id(s);
  auto tid = vertex_id(t);
  if (sid && tid) return data_.dist_of(*sid, *tid);
  if (sid) return from_vertex(*sid, t, nullptr);
  if (tid) return from_vertex(*tid, s, nullptr);
  // Both arbitrary: reduce t's side first (paper §6.4, two levels).
  Resolution r = resolve(s, t);
  if (r.direct) return dist1(s, t);
  const auto& verts = scene_.obstacle_vertices();
  Length c1 = add_len(from_vertex(static_cast<size_t>(r.u1), s, nullptr),
                      dist1(verts[r.u1], t));
  Length c2 = add_len(from_vertex(static_cast<size_t>(r.u2), s, nullptr),
                      dist1(verts[r.u2], t));
  return std::min(c1, c2);
}

std::vector<Point> AllPairsSP::vertex_path(size_t a, size_t b) const {
  return trees_.path(a, b);
}

std::vector<Point> AllPairsSP::path(const Point& s, const Point& t) const {
  RSP_CHECK_MSG(scene_.point_free(s) && scene_.point_free(t),
                "query points must be free and inside the container");
  std::vector<Point> out;
  if (s == t) return {s};
  auto sid = vertex_id(s);
  auto tid = vertex_id(t);
  if (sid && tid) return trees_.path(*sid, *tid);
  if (sid) {
    from_vertex(*sid, t, &out);
    return out;
  }
  if (tid) {
    from_vertex(*tid, s, &out);
    std::reverse(out.begin(), out.end());
    return out;
  }
  Resolution r = resolve(s, t);
  if (r.direct) {
    emit_direct(s, r, t, out);
    return out;
  }
  const auto& verts = scene_.obstacle_vertices();
  Length c1 = add_len(from_vertex(static_cast<size_t>(r.u1), s, nullptr),
                      dist1(verts[r.u1], t));
  Length c2 = add_len(from_vertex(static_cast<size_t>(r.u2), s, nullptr),
                      dist1(verts[r.u2], t));
  size_t u = c1 <= c2 ? r.u1 : r.u2;
  from_vertex(u, s, &out);        // path u -> s
  std::reverse(out.begin(), out.end());  // s -> u
  emit(out, r.hit);
  emit(out, t);
  return out;
}

}  // namespace rsp
