#include "core/implicit.h"

#include <algorithm>

namespace rsp {

ImplicitBoundaryLengths::ImplicitBoundaryLengths(const AllPairsSP& sp)
    : sp_(&sp) {
  const Scene& scene = sp.scene();
  const auto& verts = scene.obstacle_vertices();
  RSP_CHECK(!verts.empty());
  Rect env = bounding_box(scene.obstacles().begin(), scene.obstacles().end());
  const Rect& bb = scene.container().bbox();

  // Candidate transfer positions: obstacle vertex coordinates (the
  // projections of B(Env(R)) onto the lines use exactly these).
  std::vector<Coord> xs, ys;
  for (const auto& v : verts) {
    xs.push_back(v.x);
    ys.push_back(v.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  struct Spec {
    bool horizontal;
    Coord line;
    int side;
  };
  std::vector<Spec> specs;
  if (env.ymax < bb.ymax) specs.push_back({true, env.ymax, +1});   // top
  if (env.ymin > bb.ymin) specs.push_back({true, env.ymin, -1});   // bottom
  if (env.xmax < bb.xmax) specs.push_back({false, env.xmax, +1});  // right
  if (env.xmin > bb.xmin) specs.push_back({false, env.xmin, -1});  // left

  for (const Spec& s : specs) {
    Chunk c;
    c.horizontal = s.horizontal;
    c.line = s.line;
    c.side = s.side;
    const auto& pos = s.horizontal ? xs : ys;
    for (Coord t : pos) {
      Point k = s.horizontal ? Point{t, s.line} : Point{s.line, t};
      if (scene.point_free(k)) c.ks.push_back(t);
    }
    if (c.ks.empty()) continue;
    const size_t m = verts.size();
    c.to_vertex = Matrix(c.ks.size(), m, kInf);
    for (size_t i = 0; i < c.ks.size(); ++i) {
      Point k = s.horizontal ? Point{c.ks[i], s.line}
                             : Point{s.line, c.ks[i]};
      for (size_t v = 0; v < m; ++v) {
        c.to_vertex(i, v) = sp.length(k, verts[v]);
      }
    }
    // Prefix structures for O(log) queries:
    //   query(p, v) = min_i |pos(p) - ks[i]| + to_vertex(i, v)
    //              = min( pos(p) + prefix_lo over ks <= pos(p),
    //                     prefix_hi over ks >= pos(p) - pos(p) ).
    c.prefix_lo = Matrix(c.ks.size(), m, kInf);
    c.prefix_hi = Matrix(c.ks.size(), m, kInf);
    for (size_t v = 0; v < m; ++v) {
      Length run = kInf;
      for (size_t i = 0; i < c.ks.size(); ++i) {
        run = std::min(run, c.to_vertex(i, v) - c.ks[i]);
        c.prefix_lo(i, v) = run;
      }
      run = kInf;
      for (size_t i = c.ks.size(); i-- > 0;) {
        run = std::min(run, c.to_vertex(i, v) + c.ks[i]);
        c.prefix_hi(i, v) = run;
      }
    }
    chunks_.push_back(std::move(c));
  }
}

size_t ImplicitBoundaryLengths::transfer_points() const {
  size_t total = 0;
  for (const auto& c : chunks_) total += c.ks.size();
  return total;
}

Length ImplicitBoundaryLengths::to_vertex(const Point& p,
                                          size_t vertex_id) const {
  const auto& verts = sp_->scene().obstacle_vertices();
  RSP_CHECK(vertex_id < verts.size());
  for (const auto& c : chunks_) {
    Coord along = c.horizontal ? p.x : p.y;
    Coord across = c.horizontal ? p.y : p.x;
    bool in_chunk = c.side > 0 ? across >= c.line : across <= c.line;
    if (!in_chunk) continue;
    // Any path from p to the vertex crosses the chunk line; the region
    // beyond the line is obstacle-free, so it can be deformed through a
    // transfer point without growing. Cost = |across - line| to reach the
    // line plus the 1-D transfer minimum.
    Length cross = std::llabs(across - c.line);
    auto it = std::upper_bound(c.ks.begin(), c.ks.end(), along);
    Length best = kInf;
    if (it != c.ks.begin()) {
      size_t i = static_cast<size_t>(it - c.ks.begin()) - 1;
      best = std::min(best, add_len(c.prefix_lo(i, vertex_id), along));
    }
    if (it != c.ks.end()) {
      size_t i = static_cast<size_t>(it - c.ks.begin());
      best = std::min(best, add_len(c.prefix_hi(i, vertex_id), -along));
    }
    return add_len(cross, best);
  }
  // Beside the envelope: exact §6.4 reduction.
  return sp_->length(p, verts[vertex_id]);
}

}  // namespace rsp
