#pragma once
// Shortest path trees and actual-path reporting (paper §8).
//
// The predecessor pointers recorded by the builder form, for each source
// vertex v, a shortest path tree over V_R (the paper builds the same trees
// from the lengths matrix plus ray shooting). Reporting a path walks the
// tree and expands each hop into its L-shaped leg; the terminal hop rides
// the source's escape path to the crossing point. The paper's parallel
// reporting — ⌈k/log n⌉ processors each emitting an O(log n) piece located
// by a level-ancestor query — is exposed as chunked_chain().
//
// Thread safety: all query members are safe to call concurrently. The
// per-root tree cache is guarded by a shared_mutex — hits (the steady
// state of batch path fan-outs) take it shared, only a miss upgrades to
// exclusive to build and insert. The referenced Scene/Tracer/AllPairsData
// must outlive the SpTrees.

#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/seq_builder.h"
#include "trees/level_ancestor.h"

namespace rsp {

class SpTrees {
 public:
  SpTrees(const Scene& scene, const Tracer& tracer, const AllPairsData& data);

  // Polyline of a shortest path from vertex a to vertex b (ids as in
  // Scene::obstacle_vertices()); its L1 length equals data.dist(a, b).
  std::vector<Point> path(size_t a, size_t b) const;

  // Number of tree hops from b up to its direct ancestor in a's tree.
  int hops(size_t a, size_t b) const;

  // §8 chunked emission: the predecessor chain from b toward a's tree
  // roots, cut into ⌈len/chunk⌉ pieces, each located with one O(1)
  // level-ancestor query and emitted independently (here: sequentially;
  // pieces concatenate to the full chain).
  std::vector<std::vector<int>> chunked_chain(size_t a, size_t b,
                                              int chunk) const;

  // The shortest path tree rooted at a (parents are pred pointers; direct
  // nodes and a itself are roots). Built once per requested root, cached.
  const Forest& tree(size_t a) const;

 private:
  struct RootData {
    std::unique_ptr<Forest> forest;
    std::unique_ptr<LevelAncestor> la;
  };
  RootData& root_data(size_t a) const;

  const Scene* scene_;
  const Tracer* tracer_;
  const AllPairsData* data_;
  // Guards cache_. Hits (the steady state of batch path fan-outs) take the
  // lock shared so concurrent queries proceed in parallel; only a miss
  // upgrades to exclusive to build and insert the root's trees.
  mutable std::shared_mutex mu_;
  mutable std::unordered_map<size_t, RootData> cache_;
};

}  // namespace rsp
