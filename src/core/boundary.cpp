#include "core/boundary.h"

#include <algorithm>

#include "core/region.h"

namespace rsp {

namespace {

// The boundary point reached by shooting from `v` in direction `d` inside
// the region, or nothing if an obstacle blocks first.
std::optional<Point> project_to_boundary(const RectilinearPolygon& region,
                                         const RayShooter& shooter,
                                         const Point& v, Dir d) {
  Point target;
  switch (d) {
    case Dir::North: target = {v.x, region.y_range_at(v.x).second}; break;
    case Dir::South: target = {v.x, region.y_range_at(v.x).first}; break;
    case Dir::East: target = {region.x_range_at(v.y).second, v.y}; break;
    case Dir::West: target = {region.x_range_at(v.y).first, v.y}; break;
  }
  auto hit = shooter.shoot_obstacle(v, d);
  if (hit) {
    bool blocked = false;
    switch (d) {
      case Dir::North: blocked = hit->hit.y < target.y; break;
      case Dir::South: blocked = hit->hit.y > target.y; break;
      case Dir::East: blocked = hit->hit.x < target.x; break;
      case Dir::West: blocked = hit->hit.x > target.x; break;
    }
    if (blocked) return std::nullopt;
  }
  return target;
}

}  // namespace

std::vector<Point> discretize_boundary(const Scene& scene,
                                       const RayShooter& shooter) {
  const RectilinearPolygon& region = scene.container();
  std::vector<Point> pts = region.vertices();
  std::vector<Point> sources = scene.obstacle_vertices();
  for (const auto& v : region.vertices()) sources.push_back(v);
  for (const auto& v : sources) {
    for (Dir d : {Dir::North, Dir::South, Dir::East, Dir::West}) {
      if (auto p = project_to_boundary(region, shooter, v, d)) {
        pts.push_back(*p);
      }
    }
  }
  // Order along the CCW boundary walk and deduplicate.
  std::vector<std::pair<std::pair<size_t, Length>, Point>> keyed;
  keyed.reserve(pts.size());
  for (const auto& p : pts) keyed.push_back({arc_position(region, p), p});
  std::sort(keyed.begin(), keyed.end());
  std::vector<Point> out;
  for (const auto& [k, p] : keyed) {
    if (out.empty() || out.back() != p) out.push_back(p);
  }
  return out;
}

BoundaryStructure::BoundaryStructure(RectilinearPolygon region,
                                     std::vector<Point> pts, Matrix d)
    : region_(std::move(region)), pts_(std::move(pts)), d_(std::move(d)) {
  RSP_CHECK(d_.rows() == pts_.size() && d_.cols() == pts_.size());
  arc_.reserve(pts_.size());
  for (size_t i = 0; i < pts_.size(); ++i) {
    arc_.push_back(arc_position(region_, pts_[i]));
    index_.emplace(pts_[i], static_cast<int>(i));
  }
  RSP_CHECK_MSG(std::is_sorted(arc_.begin(), arc_.end()),
                "B(Q) must be in CCW boundary order");
}

int BoundaryStructure::index_of(const Point& p) const {
  auto it = index_.find(p);
  return it == index_.end() ? -1 : it->second;
}

std::pair<size_t, size_t> BoundaryStructure::bracket(const Point& p) const {
  int idx = index_of(p);
  if (idx >= 0) return {static_cast<size_t>(idx), static_cast<size_t>(idx)};
  auto key = arc_position(region_, p);
  auto it = std::lower_bound(arc_.begin(), arc_.end(), key);
  size_t after = (it == arc_.end()) ? 0 : static_cast<size_t>(it - arc_.begin());
  size_t before = (after + pts_.size() - 1) % pts_.size();
  return {before, after};
}

Length BoundaryStructure::query(const Scene& scene, const Point& b1,
                                const Point& b2) const {
  RSP_CHECK_MSG(region_.on_boundary(b1) && region_.on_boundary(b2),
                "Lemma 7 query points must be on the region boundary");
  if (b1 == b2) return 0;
  auto [v1, w1] = bracket(b1);
  auto [v2, w2] = bracket(b2);

  // Trivial case (paper: b2 within Horiz/Vert of b1's interval, or vice
  // versa): equivalent to a free L-shaped connection, whose first leg runs
  // along the straight boundary interval. Either L realizes d1, the global
  // minimum; if neither is free, Lemma 7's four candidates are exact.
  Point l1{b1.x, b2.y};
  Point l2{b2.x, b1.y};
  if ((scene.segment_free(b1, l1) && scene.segment_free(l1, b2)) ||
      (scene.segment_free(b1, l2) && scene.segment_free(l2, b2))) {
    return dist1(b1, b2);
  }

  // Four candidates (Lemma 7); legs to the bracketing B points run along
  // the straight boundary interval, so they cost their L1 distance.
  Length best = kInf;
  for (size_t u : {v1, w1}) {
    for (size_t x : {v2, w2}) {
      Length cand = add_len(
          add_len(dist1(b1, pts_[u]), d_(u, x)), dist1(pts_[x], b2));
      best = std::min(best, cand);
    }
  }
  return best;
}

}  // namespace rsp
