#pragma once
// The Staircase Separator Theorem (paper §3, Theorem 2): an unbounded clear
// staircase of O(n) segments with at most 7n/8 obstacles on either side,
// found in O(log n) PRAM time with O(n) processors.
//
// Algorithm (paper-faithful): median vertical line V; if >= n/4 obstacles
// cross it, split them evenly around a free point p on V and return
// NE(p) ∪ SW(p). Else the median horizontal line H likewise. Else p = V∩H
// (nudged to an obstacle edge if p falls inside one); with R_NW or R_SE the
// largest quadrant the separator is NE(p) ∪ WS(p); with R_NE or R_SW it is
// the mirrored NW(p) ∪ ES(p). The counting argument in the paper then
// guarantees >= n/8 obstacles on each side.
//
// Thread safety: a pure function of its (const) inputs with no hidden
// state; concurrent calls are safe (the D&C builder invokes it from
// sibling subtree tasks).

#include <vector>

#include "core/trace.h"

namespace rsp {

struct SeparatorResult {
  Staircase sep;             // clear unbounded staircase
  Point pivot;               // the point p the two traces started from
  std::vector<int> above;    // obstacle ids with sep.side_of == +1 side
  std::vector<int> below;
};

// Requires n >= 2 obstacles. The returned staircase never pierces an
// obstacle; every obstacle is classified onto exactly one side (obstacles
// touched by the separator go to the side containing their interior).
SeparatorResult staircase_separator(const Scene& scene, const Tracer& tracer);

}  // namespace rsp
