#include "core/dnc_builder.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "core/region.h"
#include "core/separator.h"
#include "grid/trackgraph.h"
#include "monge/monge.h"
#include "pram/parallel.h"

namespace rsp {

// Where a ray from v in direction d first meets the separator, if it does
// so inside `region` and before any obstacle. Generates the separator's
// discretization ("Middle"): the paper's staircase-extension Cross points.
// Exported: the boundary-tree query backend shoots the same rays from
// arbitrary interior points (§6.4 escape candidates).
std::optional<Point> separator_crossing(const Staircase& sep,
                                        const RectilinearPolygon& region,
                                        const RayShooter& shooter,
                                        const Point& v, Dir d) {
  const auto& pts = sep.points();
  Point cross;
  switch (d) {
    case Dir::North:
    case Dir::South: {
      if (v.x < pts.front().x || v.x > pts.back().x) return std::nullopt;
      auto [lo, hi] = sep.y_interval_at(v.x);
      if (d == Dir::North) {
        if (lo < v.y) return std::nullopt;
        cross = {v.x, lo};
      } else {
        if (hi > v.y) return std::nullopt;
        cross = {v.x, hi};
      }
      break;
    }
    case Dir::East:
    case Dir::West: {
      Coord ymin = std::min(pts.front().y, pts.back().y);
      Coord ymax = std::max(pts.front().y, pts.back().y);
      if (v.y < ymin || v.y > ymax) return std::nullopt;
      auto [lo, hi] = sep.x_interval_at(v.y);
      if (d == Dir::East) {
        if (lo < v.x) return std::nullopt;
        cross = {lo, v.y};
      } else {
        if (hi > v.x) return std::nullopt;
        cross = {hi, v.y};
      }
      break;
    }
  }
  if (!region.contains(cross)) return std::nullopt;
  auto hit = shooter.shoot_obstacle(v, d);
  if (hit) {
    bool blocked = false;
    switch (d) {
      case Dir::North: blocked = hit->hit.y < cross.y; break;
      case Dir::South: blocked = hit->hit.y > cross.y; break;
      case Dir::East: blocked = hit->hit.x < cross.x; break;
      case Dir::West: blocked = hit->hit.x > cross.x; break;
    }
    if (blocked) return std::nullopt;
  }
  return cross;
}

namespace {

// Orders points along a monotone staircase (ascending x; y per orientation).
void sort_along(std::vector<Point>& v, const Staircase& s) {
  bool inc = s.increasing();
  std::sort(v.begin(), v.end(), [inc](const Point& a, const Point& b) {
    if (a.x != b.x) return a.x < b.x;
    return inc ? a.y < b.y : a.y > b.y;
  });
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

struct Builder {
  const DncOptions& opt;
  Scheduler* sched = nullptr;  // derived from opt.num_threads, build-scoped
  DncStats stats;
  // solve() runs concurrently on sibling subtrees; the tallies (and the
  // thread-id census behind workers_observed) share one low-traffic mutex.
  std::mutex stats_mu;
  std::set<std::thread::id> worker_ids;
  // Retained-tree slots (DncOptions::retain_tree). Slot ids are handed out
  // under tree_mu in whatever order the parallel recursion reaches nodes;
  // build_boundary_structure renumbers them into deterministic preorder at
  // the end. Nodes are assembled on the solver's stack and moved into
  // their slot in one locked assignment — no reference into the vector is
  // ever held across a concurrent emplace_back.
  std::mutex tree_mu;
  std::vector<DncNode> tree_nodes;

  uint32_t alloc_node() {
    std::lock_guard<std::mutex> lk(tree_mu);
    uint32_t id = static_cast<uint32_t>(tree_nodes.size());
    tree_nodes.emplace_back();
    return id;
  }
  void store_node(uint32_t id, DncNode node) {
    std::lock_guard<std::mutex> lk(tree_mu);
    tree_nodes[id] = std::move(node);
  }

  BoundaryStructure solve(RectilinearPolygon region, std::vector<Rect> rects,
                          std::vector<Point> required, size_t depth,
                          uint32_t* out_id) {
    {
      std::lock_guard<std::mutex> lk(stats_mu);
      ++stats.nodes;
      stats.max_depth = std::max(stats.max_depth, depth);
      worker_ids.insert(std::this_thread::get_id());
    }
    uint32_t node_id = 0;
    if (opt.retain_tree) {
      node_id = alloc_node();
      if (out_id != nullptr) *out_id = node_id;
    }

    Scene scene(std::move(rects), std::move(region));
    RayShooter shooter(scene);

    // B(Q): own discretization plus points required by the parent.
    std::vector<Point> b = discretize_boundary(scene, shooter);
    for (const auto& p : required) {
      RSP_CHECK_MSG(scene.container().on_boundary(p),
                    "required boundary point off the region boundary");
      b.push_back(p);
    }
    {
      std::vector<std::pair<std::pair<size_t, Length>, Point>> keyed;
      keyed.reserve(b.size());
      for (const auto& p : b)
        keyed.push_back({arc_position(scene.container(), p), p});
      std::sort(keyed.begin(), keyed.end());
      b.clear();
      for (const auto& [k, p] : keyed) {
        if (b.empty() || b.back() != p) b.push_back(p);
      }
    }
    {
      std::lock_guard<std::mutex> lk(stats_mu);
      stats.max_boundary = std::max(stats.max_boundary, b.size());
    }

    auto emit_leaf = [&]() {
      BoundaryStructure out = leaf(scene, std::move(b));
      if (opt.retain_tree) {
        DncNode node;
        node.region = scene.container();
        node.b = out.points();
        node.rects = scene.obstacles();
        store_node(node_id, std::move(node));
      }
      return out;
    };
    if (scene.num_obstacles() <= opt.leaf_size) return emit_leaf();

    Tracer tracer(scene, shooter);
    SeparatorResult sep = staircase_separator(scene, tracer);

    // Components of each side (a separator traced around this node's
    // obstacles may leave and re-enter the region).
    std::vector<RectilinearPolygon> comps = side_components(
        scene.container(), sep.sep, +1);
    {
      auto lower = side_components(scene.container(), sep.sep, -1);
      for (auto& c : lower) comps.push_back(std::move(c));
    }
    RSP_CHECK_MSG(!comps.empty(), "separator produced no components");

    // Assign each obstacle to the unique component containing it.
    std::vector<std::vector<Rect>> comp_rects(comps.size());
    for (const auto& r : scene.obstacles()) {
      int owner = -1;
      for (size_t c = 0; c < comps.size(); ++c) {
        if (comps[c].contains(r)) {
          // Prefer the component containing the interior (a corner may
          // touch a neighbouring component's boundary on the separator).
          Point probe{r.xmin, r.ymin};
          int sd = sep.sep.side_of(probe);
          int cd = 0;
          for (const auto& v : comps[c].vertices()) {
            int s2 = sep.sep.side_of(v);
            if (s2 != 0) {
              cd = s2;
              break;
            }
          }
          if (owner < 0 || (sd != 0 && sd == cd)) owner = static_cast<int>(c);
        }
      }
      RSP_CHECK_MSG(owner >= 0, "obstacle not contained in any component");
      comp_rects[owner].push_back(r);
    }

    // A separator can fail to split the obstacle set: on degenerate
    // configurations the pivot's escape paths trace along the region
    // boundary and every obstacle lands in one component, so the
    // recursion would never shrink (and never terminate). Solve such a
    // node directly instead — the track-graph leaf is correct at any
    // size, and down every remaining path the obstacle count now
    // strictly decreases.
    {
      size_t largest = 0;
      for (const auto& cr : comp_rects) largest = std::max(largest, cr.size());
      if (largest == scene.num_obstacles()) return emit_leaf();
    }

    // Per-component required points: parent B on its boundary, plus the
    // projections of those points / obstacle corners / component vertices
    // onto the separator within the component (Middle, a.k.a. the
    // staircase-extension Cross points).
    std::vector<std::vector<Point>> reqs(comps.size());
    for (size_t c = 0; c < comps.size(); ++c) {
      std::vector<Point>& req = reqs[c];
      std::vector<Point> sources;
      for (const auto& p : b) {
        if (comps[c].on_boundary(p)) {
          req.push_back(p);
          sources.push_back(p);
        }
      }
      for (const auto& r : comp_rects[c])
        for (const auto& v : r.vertices()) sources.push_back(v);
      for (const auto& v : comps[c].vertices()) sources.push_back(v);
      for (const auto& v : sources) {
        for (Dir d : {Dir::North, Dir::South, Dir::East, Dir::West}) {
          if (auto x = separator_crossing(sep.sep, comps[c], shooter, v, d)) {
            req.push_back(*x);
          }
        }
      }
    }

    // Recurse: the separator children are independent subproblems, so they
    // build as parallel tasks (true tree parallelism — siblings steal
    // across workers, not just rows within one level). Landing each result
    // in children[c] keeps the conquer deterministic: the matrices are
    // bit-identical for every scheduler width.
    std::vector<BoundaryStructure> children(comps.size());
    std::vector<uint32_t> child_ids(comps.size(), 0);
    if (sched != nullptr && comps.size() > 1) {
      TaskGroup group(*sched);
      for (size_t c = 1; c < comps.size(); ++c) {
        group.run([this, &comps, &comp_rects, &reqs, &children, &child_ids, c,
                   depth] {
          children[c] = solve(comps[c], comp_rects[c], std::move(reqs[c]),
                              depth + 1, &child_ids[c]);
        });
      }
      // The calling task takes the first subtree itself, then helps with
      // (or waits on) the stolen siblings.
      children[0] = solve(comps[0], comp_rects[0], std::move(reqs[0]),
                          depth + 1, &child_ids[0]);
      group.wait();
    } else {
      for (size_t c = 0; c < comps.size(); ++c) {
        children[c] = solve(comps[c], comp_rects[c], std::move(reqs[c]),
                            depth + 1, &child_ids[c]);
      }
    }

    DncNode keep;
    BoundaryStructure out = conquer(scene, std::move(b), sep.sep, children,
                                    opt.retain_tree ? &keep : nullptr);
    if (opt.validate_nodes) validate(scene, out);
    if (opt.retain_tree) {
      keep.region = scene.container();
      keep.b = out.points();
      keep.children = std::move(child_ids);
      keep.sep = sep.sep.points();
      keep.sep_increasing = sep.sep.increasing();
      store_node(node_id, std::move(keep));
    }
    return out;
  }

  BoundaryStructure leaf(const Scene& scene, std::vector<Point> b) {
    {
      std::lock_guard<std::mutex> lk(stats_mu);
      ++stats.leaves;
    }
    TrackGraph g(scene.obstacles(), &scene.container(), b);
    Matrix d(b.size(), b.size(), kInf);
    pram_charge(b.size() * g.num_nodes(), b.size());
    // Sources are independent full-grid solves writing disjoint rows; fan
    // them out when a scheduler is around (grain 1: each solve is already
    // far heavier than a fork).
    auto source_row = [&](size_t i) {
      std::vector<Length> dist = g.single_source(b[i]);
      for (size_t j = 0; j < b.size(); ++j) {
        int node = g.node_at(b[j]);
        RSP_CHECK(node >= 0);
        d(i, j) = dist[static_cast<size_t>(node)];
      }
    };
    if (sched != nullptr && b.size() > 1) {
      parallel_for(*sched, 0, b.size(), source_row, /*grain=*/1);
    } else {
      for (size_t i = 0; i < b.size(); ++i) source_row(i);
    }
    return BoundaryStructure(scene.container(), std::move(b), std::move(d));
  }

  // Theorem 3, generalized to component lists: same-component pairs come
  // from the children (single-intersection lemma); everything else routes
  // through the separator hub, where the along-separator distance between
  // two of its points inside Q is exactly their L1 distance (the staircase
  // is a monotone geodesic; Containment Lemma deforms it into Q).
  BoundaryStructure conquer(const Scene& scene, std::vector<Point> b,
                            const Staircase& sep,
                            const std::vector<BoundaryStructure>& children,
                            DncNode* keep) {
    const size_t m = b.size();
    Matrix d(m, m, kInf);
    for (size_t i = 0; i < m; ++i) d(i, i) = 0;

    // Per-"port" data: for every child c, Lc = parent points on c's
    // boundary, Midc = c's boundary points on the separator. An extra
    // virtual component represents the separator itself: its ports are the
    // parent points lying on the separator (pure L1 rows).
    struct Port {
      std::vector<size_t> rows;  // indices into b
      std::vector<Point> mids;   // hub points, ordered along the separator
      Matrix reach;              // rows x mids
    };
    std::vector<Port> ports;

    for (size_t c = 0; c < children.size(); ++c) {
      const BoundaryStructure& child = children[c];
      Port port;
      std::vector<int> row_idx;
      for (size_t i = 0; i < m; ++i) {
        int ci = child.index_of(b[i]);
        if (ci >= 0) {
          port.rows.push_back(i);
          row_idx.push_back(ci);
        }
      }
      for (const auto& p : child.points()) {
        if (sep.side_of(p) == 0) port.mids.push_back(p);
      }
      sort_along(port.mids, sep);
      std::vector<int> mid_idx(port.mids.size());
      for (size_t k = 0; k < port.mids.size(); ++k) {
        mid_idx[k] = child.index_of(port.mids[k]);
      }
      // Same-component pairs straight from the child.
      for (size_t a = 0; a < port.rows.size(); ++a) {
        for (size_t c2 = 0; c2 < port.rows.size(); ++c2) {
          Length v = child.matrix()(row_idx[a], row_idx[c2]);
          if (v < d(port.rows[a], port.rows[c2])) {
            d(port.rows[a], port.rows[c2]) = v;
          }
        }
      }
      const bool routable = !port.mids.empty() && !port.rows.empty();
      if (routable) {
        port.reach = Matrix(port.rows.size(), port.mids.size());
        for (size_t a = 0; a < port.rows.size(); ++a) {
          for (size_t k = 0; k < port.mids.size(); ++k) {
            port.reach(a, k) = child.matrix()(row_idx[a], mid_idx[k]);
          }
        }
      }
      if (keep != nullptr) {
        // Retain the transfer set even when one side is empty: the query
        // lift needs the row mapping without mids (direct candidates) and
        // the mids without rows (hub access from inside the child).
        DncPort kp;
        kp.child = static_cast<int32_t>(c);
        kp.rows.assign(port.rows.begin(), port.rows.end());
        kp.child_rows.assign(row_idx.begin(), row_idx.end());
        kp.mids = port.mids;
        kp.mid_child.assign(mid_idx.begin(), mid_idx.end());
        kp.reach = PortMatrix::compress(port.reach);
        keep->ports.push_back(std::move(kp));
      }
      if (!routable) continue;
      ports.push_back(std::move(port));
    }
    {
      // Virtual separator component.
      Port port;
      for (size_t i = 0; i < m; ++i) {
        if (sep.side_of(b[i]) == 0) {
          port.rows.push_back(i);
          port.mids.push_back(b[i]);
        }
      }
      sort_along(port.mids, sep);
      if (!port.rows.empty()) {
        port.reach = Matrix(port.rows.size(), port.mids.size());
        for (size_t a = 0; a < port.rows.size(); ++a)
          for (size_t k = 0; k < port.mids.size(); ++k)
            port.reach(a, k) = dist1(b[port.rows[a]], port.mids[k]);
        if (keep != nullptr) {
          DncPort kp;
          kp.child = -1;
          kp.rows.assign(port.rows.begin(), port.rows.end());
          kp.mids = port.mids;
          kp.reach = PortMatrix::compress(port.reach);
          keep->ports.push_back(std::move(kp));
        }
        ports.push_back(std::move(port));
      }
    }

    // Coverage check: every parent point is on some child boundary or on
    // the separator.
    {
      std::vector<char> covered(m, 0);
      for (const auto& port : ports)
        for (size_t r : port.rows) covered[r] = 1;
      for (size_t i = 0; i < m; ++i) {
        RSP_CHECK_MSG(covered[i], "parent boundary point uncovered");
      }
    }

    // Hub routing: for each ordered port pair, Pi ⊗ H ⊗ Pj^T where
    // H(m1,m2) = dist1 (Monge along the separator order). The pairs are
    // independent Monge-product chains, so they run as scheduler tasks —
    // this is what keeps a level busy when one unbalanced separator leaves
    // only a couple of big children — and the row-block fan-out of
    // minplus_monge nests inside each pair's task.
    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t pi = 0; pi < ports.size(); ++pi) {
      for (size_t pj = 0; pj < ports.size(); ++pj) {
        const Port& a = ports[pi];
        const Port& c = ports[pj];
        if (a.rows.empty() || c.rows.empty() || a.mids.empty() ||
            c.mids.empty()) {
          continue;
        }
        pairs.emplace_back(pi, pj);
      }
    }
    std::mutex fold_mu;
    auto route_pair = [&](size_t idx) {
      const Port& a = ports[pairs[idx].first];
      const Port& c = ports[pairs[idx].second];
      Matrix h(a.mids.size(), c.mids.size());
      for (size_t x = 0; x < a.mids.size(); ++x)
        for (size_t y = 0; y < c.mids.size(); ++y)
          h(x, y) = dist1(a.mids[x], c.mids[y]);
      // reach ⊗ H: the second factor is Monge, so the SMAWK row path
      // always applies; the final ⊗ reach^T is checked (and counted).
      bump(&DncStats::monge_multiplies);
      Matrix s1 = sched != nullptr ? minplus_monge(*sched, a.reach, h)
                                   : minplus_monge(a.reach, h);
      Matrix ct = c.reach.transposed();
      Matrix t;
      if (is_monge(ct)) {
        bump(&DncStats::monge_multiplies);
        t = sched != nullptr ? minplus_monge(*sched, s1, ct)
                             : minplus_monge(s1, ct);
      } else {
        bump(&DncStats::monge_fallbacks);
        t = minplus_naive(s1, ct);
      }
      // Min-fold under the lock: min is commutative and associative, so
      // the task completion order cannot change the folded result — the
      // deterministic-across-widths guarantee survives.
      std::lock_guard<std::mutex> lk(fold_mu);
      for (size_t x = 0; x < a.rows.size(); ++x) {
        for (size_t y = 0; y < c.rows.size(); ++y) {
          if (t(x, y) < d(a.rows[x], c.rows[y])) {
            d(a.rows[x], c.rows[y]) = t(x, y);
          }
        }
      }
    };
    if (sched != nullptr && pairs.size() > 1) {
      TaskGroup group(*sched);
      for (size_t idx = 1; idx < pairs.size(); ++idx) {
        group.run([&route_pair, idx] { route_pair(idx); });
      }
      route_pair(0);
      group.wait();
    } else {
      for (size_t idx = 0; idx < pairs.size(); ++idx) route_pair(idx);
    }
    return BoundaryStructure(scene.container(), std::move(b), std::move(d));
  }

  void bump(size_t DncStats::* counter) {
    std::lock_guard<std::mutex> lk(stats_mu);
    ++(stats.*counter);
  }

  void validate(const Scene& scene, const BoundaryStructure& st) {
    const auto& b = st.points();
    TrackGraph g(scene.obstacles(), &scene.container(), b);
    for (size_t i = 0; i < b.size(); ++i) {
      std::vector<Length> dist = g.single_source(b[i]);
      for (size_t j = 0; j < b.size(); ++j) {
        int node = g.node_at(b[j]);
        RSP_CHECK(node >= 0);
        if (st.matrix()(i, j) != dist[node]) {
          std::ostringstream os;
          os << "D&C node mismatch at |R|=" << scene.num_obstacles()
             << " pair " << b[i] << " -> " << b[j] << ": got "
             << st.matrix()(i, j) << " want " << dist[node];
          throw std::logic_error(os.str());
        }
      }
    }
  }
};

}  // namespace

size_t DncTree::memory_bytes() const {
  auto points = [](const std::vector<Point>& v) {
    return v.capacity() * sizeof(Point);
  };
  size_t total = sizeof(DncTree) + nodes.capacity() * sizeof(DncNode);
  for (const DncNode& n : nodes) {
    total += points(n.region.vertices()) + points(n.b) + points(n.sep);
    total += n.rects.capacity() * sizeof(Rect);
    total += n.children.capacity() * sizeof(uint32_t);
    total += n.ports.capacity() * sizeof(DncPort);
    for (const DncPort& p : n.ports) {
      total += (p.rows.capacity() + p.child_rows.capacity() +
                p.mid_child.capacity()) * sizeof(uint32_t);
      total += points(p.mids);
      total += p.reach.byte_size();
    }
  }
  return total;
}

size_t DncTree::port_matrix_bytes() const {
  size_t total = 0;
  for (const DncNode& n : nodes)
    for (const DncPort& p : n.ports) total += p.reach.byte_size();
  return total;
}

size_t DncTree::port_matrix_dense_bytes() const {
  size_t total = 0;
  for (const DncNode& n : nodes)
    for (const DncPort& p : n.ports) total += p.reach.dense_byte_size();
  return total;
}

DncResult build_boundary_structure(const Scene& scene,
                                   const DncOptions& opt) {
  std::unique_ptr<Scheduler> owned_sched =
      opt.num_threads >= 2 ? std::make_unique<Scheduler>(opt.num_threads)
                           : nullptr;
  Builder builder{opt, owned_sched.get()};
  std::vector<Rect> rects = scene.obstacles();
  uint32_t root_id = 0;
  BoundaryStructure root =
      builder.solve(scene.container(), std::move(rects), {}, 0, &root_id);
  builder.stats.workers_observed = builder.worker_ids.size();
  if (owned_sched != nullptr) {
    const SchedulerStats ss = owned_sched->stats();
    builder.stats.sched_tasks = ss.tasks_executed;
    builder.stats.sched_steals = ss.steals;
  }

  std::shared_ptr<DncTree> tree;
  if (opt.retain_tree) {
    // Parallel recursion hands out slot ids nondeterministically; renumber
    // into preorder (children in component order) so the retained tree —
    // and therefore its snapshot bytes — is identical for every scheduler
    // width, matching the matrices' determinism guarantee.
    std::vector<DncNode>& raw = builder.tree_nodes;
    std::vector<uint32_t> order;
    order.reserve(raw.size());
    std::vector<uint32_t> remap(raw.size(), 0);
    std::vector<uint32_t> stack{root_id};
    while (!stack.empty()) {
      uint32_t id = stack.back();
      stack.pop_back();
      remap[id] = static_cast<uint32_t>(order.size());
      order.push_back(id);
      const std::vector<uint32_t>& kids = raw[id].children;
      for (size_t i = kids.size(); i > 0; --i) stack.push_back(kids[i - 1]);
    }
    RSP_CHECK_MSG(order.size() == raw.size(),
                  "retained tree has unreachable nodes");
    tree = std::make_shared<DncTree>();
    tree->nodes.resize(order.size());
    for (size_t k = 0; k < order.size(); ++k) {
      DncNode n = std::move(raw[order[k]]);
      for (uint32_t& c : n.children) c = remap[c];
      tree->nodes[k] = std::move(n);
    }
  }
  return {std::move(root), builder.stats, std::move(tree)};
}

}  // namespace rsp
