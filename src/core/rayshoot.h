#pragma once
// Orthogonal ray shooting among rectangular obstacles (paper §6.4, §8).
//
// The paper preprocesses two planar subdivisions H1/H2 (trapezoidal edges +
// obstacle boundaries) for O(log n) point-location-based ray shooting. We
// provide the same query interface — "which obstacle does a horizontal or
// vertical ray from p hit first?" — with a segment tree over the coordinate
// strips whose nodes hold sorted edge keys: O(log^2 n) per query, O(n log n)
// space. Every consumer in the library (path tracing, the sequential
// builder's Hit(e) sets, arbitrary-point queries, shortest path trees) goes
// through this structure.
//
// Thread safety: immutable after construction; shoot()/shoot_obstacle()
// are safe to call concurrently (the parallel builder fans per-source
// sweeps over one shared shooter). The referenced Scene must outlive it.

#include <optional>
#include <vector>

#include "core/scene.h"

namespace rsp {

enum class Dir { North, South, East, West };

struct RayHit {
  Point hit;      // first point of the blocking edge / container boundary
  int rect = -1;  // blocking obstacle id, or -1 for the container boundary
};

class RayShooter {
 public:
  explicit RayShooter(const Scene& scene);

  // First obstacle edge or container boundary hit by the ray from p in
  // direction d. p must lie in the container and outside all obstacle
  // interiors; grazing contact (ray along an obstacle edge) does not block.
  RayHit shoot(const Point& p, Dir d) const;

  // Obstacle-only variant: nullopt if the ray escapes to the boundary.
  std::optional<RayHit> shoot_obstacle(const Point& p, Dir d) const;

 private:
  // A stabbing structure over 2M-1 positions (coordinate values and the
  // gaps between them); intervals carry a key and an id; queries ask for
  // the min key >= q (or max key <= q) over intervals covering a position.
  class StabbingTree {
   public:
    explicit StabbingTree(size_t n_positions);
    void add(size_t lo, size_t hi, Length key, int id);  // inclusive range
    void build();
    std::optional<std::pair<Length, int>> min_key_at_least(size_t pos,
                                                           Length q) const;
    std::optional<std::pair<Length, int>> max_key_at_most(size_t pos,
                                                          Length q) const;

   private:
    size_t leaves_ = 1;
    std::vector<std::vector<std::pair<Length, int>>> nodes_;
  };

  const Scene* scene_;
  // Positions: even = coordinate index*2, odd = gap. xpos for vertical rays
  // (N/S), ypos for horizontal rays (E/W).
  std::vector<Coord> xcoords_, ycoords_;
  size_t xpos(Coord x) const;
  size_t ypos(Coord y) const;

  StabbingTree north_, south_, east_, west_;
};

}  // namespace rsp
