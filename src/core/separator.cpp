#include "core/separator.h"

#include <algorithm>

namespace rsp {

namespace {

// Median coordinate of the 4n obstacle vertices along one axis.
Coord median_coord(const Scene& scene, bool x_axis) {
  std::vector<Coord> v;
  v.reserve(4 * scene.num_obstacles());
  for (const auto& p : scene.obstacle_vertices())
    v.push_back(x_axis ? p.x : p.y);
  auto mid = v.begin() + v.size() / 2;
  std::nth_element(v.begin(), mid, v.end());
  return *mid;
}

// Obstacles properly crossed by the axis line at c.
std::vector<int> crossers(const Scene& scene, bool x_axis, Coord c) {
  std::vector<int> out;
  for (size_t i = 0; i < scene.num_obstacles(); ++i) {
    const Rect& r = scene.obstacle(i);
    bool crosses = x_axis ? (r.xmin < c && c < r.xmax)
                          : (r.ymin < c && c < r.ymax);
    if (crosses) out.push_back(static_cast<int>(i));
  }
  return out;
}

// Builds the separator staircase as trace(p, k1) reversed + trace(p, k2),
// both with their unbounded sentinel tails.
Staircase join_traces(const Tracer& tracer, const Point& p, TraceKind down,
                      TraceKind up) {
  std::vector<Point> a = tracer.trace_with_tail(p, down);  // to smaller x
  std::vector<Point> b = tracer.trace_with_tail(p, up);    // to larger x
  std::reverse(a.begin(), a.end());
  a.insert(a.end(), b.begin() + 1, b.end());  // both start at p
  return Staircase::from_chain(std::move(a), Tracer::orient_of(up));
}

// Builds the full separator through `pivot` and classifies every obstacle
// onto a side.
SeparatorResult build_and_classify(const Scene& scene, const Tracer& tracer,
                                   const Point& pivot, TraceKind kind_down,
                                   TraceKind kind_up) {
  SeparatorResult res;
  res.pivot = pivot;
  res.sep = join_traces(tracer, pivot, kind_down, kind_up);

  for (size_t i = 0; i < scene.num_obstacles(); ++i) {
    const Rect& r = scene.obstacle(i);
    int pos = 0, neg = 0;
    for (const auto& c : r.vertices()) {
      int s = res.sep.side_of(c);
      pos += (s > 0);
      neg += (s < 0);
    }
    RSP_CHECK_MSG(!(pos > 0 && neg > 0), "separator pierces an obstacle");
    if (pos > 0) {
      res.above.push_back(static_cast<int>(i));
    } else if (neg > 0) {
      res.below.push_back(static_cast<int>(i));
    } else {
      // All four corners on the separator cannot happen for a full
      // rectangle crossed by a monotone chain; defensively place above.
      res.above.push_back(static_cast<int>(i));
    }
  }
  return res;
}

}  // namespace

SeparatorResult staircase_separator(const Scene& scene,
                                    const Tracer& tracer) {
  const size_t n = scene.num_obstacles();
  RSP_CHECK_MSG(n >= 2, "separator needs at least two obstacles");

  Coord vx = median_coord(scene, true);
  std::vector<int> vcross = crossers(scene, true, vx);

  auto mid_free_point = [&](const std::vector<int>& ids, bool x_axis,
                            Coord c) {
    // The crossers' intervals on the line are pairwise disjoint; pick a
    // point between the two middle ones.
    std::vector<std::pair<Coord, Coord>> spans;
    spans.reserve(ids.size());
    for (int id : ids) {
      const Rect& r = scene.obstacle(id);
      spans.push_back(x_axis ? std::make_pair(r.ymin, r.ymax)
                             : std::make_pair(r.xmin, r.xmax));
    }
    std::sort(spans.begin(), spans.end());
    size_t k = spans.size() / 2;
    Coord lo = spans[k - 1].second;
    Coord hi = spans[k].first;
    RSP_CHECK_MSG(lo <= hi, "crossing obstacles overlap");
    Coord m = lo + (hi - lo) / 2;
    return x_axis ? Point{c, m} : Point{m, c};
  };

  if (vcross.size() >= std::max<size_t>(1, n / 4) && vcross.size() >= 2) {
    return build_and_classify(scene, tracer, mid_free_point(vcross, true, vx),
                              TraceKind::SW, TraceKind::NE);
  }

  Coord hy = median_coord(scene, false);
  std::vector<int> hcross = crossers(scene, false, hy);
  if (hcross.size() >= std::max<size_t>(1, n / 4) && hcross.size() >= 2) {
    return build_and_classify(scene, tracer, mid_free_point(hcross, false, hy),
                              TraceKind::SW, TraceKind::NE);
  }

  Point p{vx, hy};
  // Each median is inside the container's projection on its own axis,
  // but their corner combination can fall outside a non-rectangular
  // convex container (the staircase sub-regions of the D&C recursion):
  // clamp y into the container's interval on the line x = vx. The line
  // meets the container — some obstacle inside it has an edge at vx.
  {
    auto [ylo, yhi] = scene.container().y_range_at(p.x);
    p.y = std::clamp(p.y, ylo, yhi);
  }
  // Candidate pivots. When p is inside an obstacle, nudge to either of
  // its horizontal edges (paper: "easily modified") — each stays in the
  // container, since its endpoints are in it and rectilinear convexity
  // makes the segment between them so. Large obstacles make the two
  // choices balance very differently (a tall one eats most of the
  // y-median's slack), and quadrant counting cannot tell them apart
  // because the straddling obstacle is invisible to it — so build every
  // candidate separator and keep the best measured split.
  std::vector<Point> pivots;
  bool inside = false;
  for (const auto& r : scene.obstacles()) {
    if (r.contains_strict(p)) {
      inside = true;
      pivots.push_back({p.x, r.ymax});
      pivots.push_back({p.x, r.ymin});
      break;
    }
  }
  if (!inside) pivots.push_back(p);

  SeparatorResult best;
  size_t best_side = n + 1;
  for (const auto& q : pivots) {
    RSP_CHECK(scene.container().contains(q));
    for (auto [down, up] :
         {std::pair{TraceKind::WS, TraceKind::NE},    // increasing chain
          std::pair{TraceKind::NW, TraceKind::ES}}) { // decreasing chain
      SeparatorResult r = build_and_classify(scene, tracer, q, down, up);
      size_t side = std::max(r.above.size(), r.below.size());
      if (side < best_side) {
        best_side = side;
        best = std::move(r);
      }
    }
  }
  return best;
}

}  // namespace rsp
