#pragma once
// Implementation layer: the all-pairs shortest-path data structure of the
// paper. New code should go through the rsp::Engine facade (api/engine.h),
// which fronts this class (and the Dijkstra baseline) behind a pluggable
// backend, owns the thread pool, batches queries, and reports invalid
// inputs as Status instead of throwing.
//
//   AllPairsSP sp(scene);
//   sp.vertex_length(a, b);          // O(1), obstacle vertices
//   sp.length(p, q);                 // arbitrary points (§6.4 reduction)
//   sp.path(p, q);                   // actual shortest path polyline (§8)
//
// Arbitrary-point queries follow the paper's two-step reduction: shoot the
// backward ray from the query point; either it crosses the other point's
// escape-path pair first (then the distance is the plain L1 distance), or
// it hits an obstacle edge and the answer goes through one of that edge's
// two endpoints — reducing, after at most two levels, to the V_R-to-V_R
// matrix.
//
// Thread safety: queries are safe to call concurrently after construction
// (the only mutation, SpTrees' per-root cache, synchronizes internally);
// the Engine batch entry points rely on this for their parallel fan-out.

#include <memory>
#include <optional>
#include <unordered_map>

#include "core/scene.h"
#include "core/seq_builder.h"
#include "core/sptree.h"

namespace rsp {

class AllPairsSP {
 public:
  struct Options {
    // Fan the independent per-source computations over an internally-owned
    // scheduler of this many threads, alive only for the build (0 or 1:
    // sequential §9 build). No externally-owned scheduler to dangle.
    size_t num_threads = 0;
  };

  explicit AllPairsSP(Scene scene) : AllPairsSP(std::move(scene), Options{}) {}
  AllPairsSP(Scene scene, const Options& opt);
  // Shares a caller-owned scheduler (e.g. the Engine's) for the build only;
  // it is not retained past construction. nullptr: sequential build.
  AllPairsSP(Scene scene, Scheduler* build_sched);
  // Restore path (io/snapshot.h): adopts precomputed all-pairs tables
  // instead of running the O(n^2) build; only the cheap derived structures
  // (ray shooter, escape-path forests) are reconstructed. `data` must
  // belong to `scene` (data.m == 4 * scene.num_obstacles(); tables sized
  // for its full, partial [row_lo, row_hi) or segmented mode) — checked,
  // RSP_CHECK on violation. Partial data answers only queries whose
  // reduction stays inside the owned rows; others throw NotOwnerError.
  AllPairsSP(Scene scene, AllPairsData data);

  const Scene& scene() const { return scene_; }
  const AllPairsData& data() const { return data_; }
  const Tracer& tracer() const { return tracer_; }
  const RayShooter& shooter() const { return shooter_; }
  size_t num_vertices() const { return data_.m; }

  // O(1): length between obstacle vertices (ids per obstacle_vertices()).
  // Partial mounts throw NotOwnerError when row `a` is outside the owned
  // window (the Engine facade maps it to StatusCode::kNotOwner).
  Length vertex_length(size_t a, size_t b) const { return data_.dist_of(a, b); }

  // Vertex id of a point, if it is an obstacle vertex.
  std::optional<size_t> vertex_id(const Point& p) const;

  // Length between arbitrary free points inside the container.
  Length length(const Point& s, const Point& t) const;

  // Actual shortest path between obstacle vertices / arbitrary points.
  // The polyline's L1 length always equals the corresponding length().
  std::vector<Point> vertex_path(size_t a, size_t b) const;
  std::vector<Point> path(const Point& s, const Point& t) const;

 private:
  // Delegation step keeping a transient build scheduler alive through the
  // member-initializer build.
  AllPairsSP(Scene scene, std::unique_ptr<Scheduler> transient_sched);

  void init_vertex_ids();

  // Outcome of one §6.4 reduction level for (source, target).
  struct Resolution {
    bool direct = false;
    int pass = -1;
    TraceKind kind = TraceKind::NE;  // source escape curve used
    Point cross;                     // backward-ray crossing (direct case)
    int u1 = -1, u2 = -1;            // candidate edge vertices (else)
    Point hit;                       // backward-ray hit point (else)
  };
  Resolution resolve(const Point& src, const Point& tgt) const;

  // Length from an obstacle vertex to an arbitrary point; optionally also
  // reconstructs the polyline from vertex v to tgt.
  Length from_vertex(size_t v, const Point& tgt,
                     std::vector<Point>* out_path) const;

  // Appends the direct-case geometry: src's curve to `cross`, then to tgt.
  void emit_direct(const Point& src, const Resolution& r, const Point& tgt,
                   std::vector<Point>& out) const;

  Scene scene_;
  RayShooter shooter_;
  Tracer tracer_;
  AllPairsData data_;
  SpTrees trees_;
  std::unordered_map<Point, size_t, PointHash> vertex_ids_;
};

}  // namespace rsp
