#pragma once
// The §5 divide-and-conquer builder: computes the matrix D_Q of shortest
// path lengths between all pairs of B(Q) points on the boundary of the
// container, recursing on staircase separators (Theorem 2) and conquering
// with Monge (min,+) multiplications through the separator's discretization
// points ("Middle", Theorem 3).
//
// Faithfulness notes:
//  * separator, B(Q), Middle, single-intersection conquer and the Monge
//    products are the paper's; child boundary sets are synchronized by
//    computing the separator projections at the parent (instead of Lemma 7
//    re-queries at conquer time) — same points, simpler indexing.
//  * leaves (<= leaf_size obstacles) use a local track-graph Dijkstra,
//    playing the role of the paper's trivial base case.
//  * conquer verifies the Monge property of both factor matrices (a paper
//    claim) and falls back to the naive product if it ever fails; the
//    statistics expose how often each path ran (bench E7 reports them).
//
// Thread safety: build_boundary_structure is reentrant and may run
// concurrently from many threads; each call owns its scheduler
// (DncOptions::num_threads) and its results. The returned structure is
// immutable and safe to query concurrently.

#include <memory>

#include "core/boundary.h"
#include "core/scene.h"
#include "pram/scheduler.h"

namespace rsp {

struct DncOptions {
  size_t leaf_size = 3;    // max obstacles solved by the base case
  // Width of the builder-owned work-stealing scheduler, alive only for the
  // build (0 or 1: sequential). The scheduler gives true tree parallelism:
  // the two-plus separator children of every node build as parallel tasks
  // (sibling subtrees steal across workers), and the conquer's Monge row
  // fan-out nests inside those tasks. Results are bit-identical for every
  // width: children land in index order and the conquer is deterministic.
  size_t num_threads = 0;
  // Debug/test hook: re-derive every internal node's matrix with a local
  // track-graph Dijkstra and fail fast on the first mismatch. Quadratic
  // slowdown; off by default.
  bool validate_nodes = false;
};

struct DncStats {
  size_t nodes = 0;
  size_t leaves = 0;
  size_t max_depth = 0;
  size_t monge_multiplies = 0;
  size_t monge_fallbacks = 0;  // conquer pairs that failed the Monge check
  size_t max_boundary = 0;     // largest |B(Q)| seen
  // Distinct threads that executed recursion nodes; > 1 proves sibling
  // subtrees actually built in parallel (tests assert this).
  size_t workers_observed = 0;
};

struct DncResult {
  BoundaryStructure root;
  DncStats stats;
};

// Computes D_P for scene.container(). The resulting structure answers
// boundary-to-boundary length queries: B(P) pairs by index, arbitrary
// boundary pairs via Lemma 7 (BoundaryStructure::query).
DncResult build_boundary_structure(const Scene& scene,
                                   const DncOptions& opt = {});

}  // namespace rsp
