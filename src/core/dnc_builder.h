#pragma once
// The §5 divide-and-conquer builder: computes the matrix D_Q of shortest
// path lengths between all pairs of B(Q) points on the boundary of the
// container, recursing on staircase separators (Theorem 2) and conquering
// with Monge (min,+) multiplications through the separator's discretization
// points ("Middle", Theorem 3).
//
// Faithfulness notes:
//  * separator, B(Q), Middle, single-intersection conquer and the Monge
//    products are the paper's; child boundary sets are synchronized by
//    computing the separator projections at the parent (instead of Lemma 7
//    re-queries at conquer time) — same points, simpler indexing.
//  * leaves (<= leaf_size obstacles) use a local track-graph Dijkstra,
//    playing the role of the paper's trivial base case.
//  * conquer verifies the Monge property of both factor matrices (a paper
//    claim) and falls back to the naive product if it ever fails; the
//    statistics expose how often each path ran (bench E7 reports them).
//
// Thread safety: build_boundary_structure is reentrant and may run
// concurrently from many threads; each call owns its scheduler
// (DncOptions::num_threads) and its results. The returned structure is
// immutable and safe to query concurrently.

#include <memory>
#include <optional>

#include "core/boundary.h"
#include "core/scene.h"
#include "monge/compressed.h"
#include "pram/scheduler.h"

namespace rsp {

struct DncOptions {
  size_t leaf_size = 3;    // max obstacles solved by the base case
  // Keep the recursion tree (regions, leaf sub-scenes, B(Q) lists and the
  // conquer's transfer sets) alive in DncResult::tree for the
  // sublinear-space query backend (src/backend/boundary_tree.h). The full
  // per-node D_Q matrices are still consumed by the parent conquer and
  // dropped — retaining costs far less than any single level's matrices.
  bool retain_tree = false;
  // Width of the builder-owned work-stealing scheduler, alive only for the
  // build (0 or 1: sequential). The scheduler gives true tree parallelism:
  // the two-plus separator children of every node build as parallel tasks
  // (sibling subtrees steal across workers), and the conquer's Monge row
  // fan-out nests inside those tasks. Results are bit-identical for every
  // width: children land in index order and the conquer is deterministic.
  size_t num_threads = 0;
  // Debug/test hook: re-derive every internal node's matrix with a local
  // track-graph Dijkstra and fail fast on the first mismatch. Quadratic
  // slowdown; off by default.
  bool validate_nodes = false;
};

struct DncStats {
  size_t nodes = 0;
  size_t leaves = 0;
  size_t max_depth = 0;
  size_t monge_multiplies = 0;
  size_t monge_fallbacks = 0;  // conquer pairs that failed the Monge check
  size_t max_boundary = 0;     // largest |B(Q)| seen
  // Distinct threads that executed recursion nodes; > 1 proves sibling
  // subtrees actually built in parallel (tests assert this).
  size_t workers_observed = 0;
  // Telemetry from the build-owned scheduler (zero for sequential builds):
  // total tasks executed and cross-worker steals. Steals > 0 proves load
  // actually migrated between workers (bench_build records both).
  uint64_t sched_tasks = 0;
  uint64_t sched_steals = 0;
};

// ---- The retained recursion tree (DncOptions::retain_tree) ----
//
// One "port" of a conquer node: the transfer set between the parent's
// boundary discretization B(Q) and one child (or the separator itself).
// `rows` are the parent B(Q) points lying on the child's boundary,
// `child_rows` the same points as indices into the child's own B; `mids`
// are the child's hub points on the separator (separator order) with
// `mid_child` their indices into the child's B. `reach` holds the
// within-child distances rows x mids, stored Monge-compressed (these
// geodesic matrices shrink ~an order of magnitude; see monge/compressed.h)
// — the dominant memory of the retained tree. For the virtual separator
// port (child == -1) the rows themselves lie on the separator, reach is
// plain L1 along it, and the child-index vectors are empty.
struct DncPort {
  int32_t child = -1;               // ordinal into DncNode::children
  std::vector<uint32_t> rows;       // indices into the parent's B(Q)
  std::vector<uint32_t> child_rows; // |rows| indices into the child's B
  std::vector<Point> mids;          // hub points, ordered along the separator
  std::vector<uint32_t> mid_child;  // |mids| indices into the child's B
  PortMatrix reach;                 // |rows| x |mids|; empty if either is
};

// One recursion node. Leaves (children empty) keep their sub-scene
// (region + obstacle rects) so queries can run the track-graph base case;
// internal nodes keep the separator polyline and one DncPort per child
// plus, when parent points lie on the separator, the virtual port.
struct DncNode {
  RectilinearPolygon region;
  std::vector<Point> b;             // B(Q), CCW boundary order
  std::vector<Rect> rects;          // leaf only: the sub-scene's obstacles
  std::vector<uint32_t> children;   // node ids (preorder: always > own id)
  std::vector<DncPort> ports;       // internal only
  std::vector<Point> sep;           // internal only: separator bend points
  bool sep_increasing = true;       //   (sentinels included, ascending x)
};

// Nodes in deterministic preorder (nodes[0] is the root; identical for
// every scheduler width). Immutable once built; safe to share.
struct DncTree {
  std::vector<DncNode> nodes;
  size_t memory_bytes() const;  // resident heap footprint of the tree
  // Resident bytes of all port reach matrices vs what the same matrices
  // would cost stored dense — the compression win rspcli info / serve
  // STATS report.
  size_t port_matrix_bytes() const;
  size_t port_matrix_dense_bytes() const;
};

struct DncResult {
  BoundaryStructure root;
  DncStats stats;
  std::shared_ptr<const DncTree> tree;  // set iff DncOptions::retain_tree
};

// Where a ray from v in direction d first meets the separator, if it does
// so inside `region` and before any obstacle known to `shooter`. This is
// the separator-discretization ("Middle" / Cross point) primitive of the
// conquer; the boundary-tree backend reuses it at query time for the §6.4
// escape candidates of an arbitrary interior point.
std::optional<Point> separator_crossing(const Staircase& sep,
                                        const RectilinearPolygon& region,
                                        const RayShooter& shooter,
                                        const Point& v, Dir d);

// Computes D_P for scene.container(). The resulting structure answers
// boundary-to-boundary length queries: B(P) pairs by index, arbitrary
// boundary pairs via Lemma 7 (BoundaryStructure::query).
DncResult build_boundary_structure(const Scene& scene,
                                   const DncOptions& opt = {});

}  // namespace rsp
