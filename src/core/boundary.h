#pragma once
// Boundary discretization B(Q) (paper Definition 1, Fig. 3) and the
// Discretization Lemma (Lemma 7) query structure.
//
// B(Q) holds, in CCW boundary order: the region's vertices, plus every
// boundary point horizontally or vertically visible from an obstacle
// vertex or a region vertex. Between two adjacent B(Q) points the boundary
// is a straight uniform interval (no visibility event), which is what makes
// the four-candidate query of Lemma 7 exact and the conquer matrices Monge
// after the paper's partitioning.
//
// Thread safety: discretize_boundary is a pure function; BoundaryStructure
// instances are immutable after construction and safe to query
// concurrently.

#include <unordered_map>
#include <vector>

#include "core/rayshoot.h"
#include "core/scene.h"
#include "geom/polygon.h"
#include "monge/matrix.h"

namespace rsp {

// All boundary points of `region` visible from an obstacle vertex or a
// region vertex within the sub-scene (obstacles given by `scene`, which
// must use `region` as its container). Returned CCW-ordered, deduplicated,
// region vertices included.
std::vector<Point> discretize_boundary(const Scene& scene,
                                       const RayShooter& shooter);

// The per-node result of the §5 divide-and-conquer, and the query side of
// Lemma 7.
class BoundaryStructure {
 public:
  BoundaryStructure() = default;
  BoundaryStructure(RectilinearPolygon region, std::vector<Point> pts,
                    Matrix d);

  const RectilinearPolygon& region() const { return region_; }
  const std::vector<Point>& points() const { return pts_; }
  const Matrix& matrix() const { return d_; }

  // Index of a B(Q) point; -1 if absent.
  int index_of(const Point& p) const;
  Length between(const Point& a, const Point& b) const {
    int ia = index_of(a), ib = index_of(b);
    RSP_CHECK(ia >= 0 && ib >= 0);
    return d_(ia, ib);
  }

  // Lemma 7: shortest-path length (within the region) between two
  // arbitrary boundary points, in O(log |B|) plus one visibility test.
  // `scene` must be the sub-scene this structure was built for.
  Length query(const Scene& scene, const Point& b1, const Point& b2) const;

 private:
  // Neighbouring B indices bracketing a boundary point (equal if p ∈ B).
  std::pair<size_t, size_t> bracket(const Point& p) const;

  RectilinearPolygon region_;
  std::vector<Point> pts_;                 // CCW boundary order
  std::vector<std::pair<size_t, Length>> arc_;  // arc key per point
  Matrix d_;
  std::unordered_map<Point, int, PointHash> index_;
};

}  // namespace rsp
