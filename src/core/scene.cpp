#include "core/scene.h"

#include <algorithm>

namespace rsp {

Scene::Scene(std::vector<Rect> obstacles, RectilinearPolygon container)
    : obstacles_(std::move(obstacles)), container_(std::move(container)) {
  // O(n log n) disjointness check by sweeping x.
  std::vector<size_t> order(obstacles_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return obstacles_[a].xmin < obstacles_[b].xmin;
  });
  // Simple sweep with active list (obstacle counts are moderate; an
  // interval tree would be overkill here).
  std::vector<size_t> active;
  for (size_t idx : order) {
    const Rect& r = obstacles_[idx];
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](size_t a) {
                                  return obstacles_[a].xmax <= r.xmin;
                                }),
                 active.end());
    for (size_t a : active) {
      RSP_CHECK_MSG(!obstacles_[a].interior_intersects(r),
                    "obstacles must be interior-disjoint");
    }
    active.push_back(idx);
  }
  for (const auto& r : obstacles_) {
    RSP_CHECK_MSG(container_.contains(r), "obstacle outside container");
    verts_.push_back(r.ll());
    verts_.push_back(r.lr());
    verts_.push_back(r.ur());
    verts_.push_back(r.ul());
  }
}

Scene Scene::with_bbox(std::vector<Rect> obstacles, Coord margin) {
  RSP_CHECK_MSG(!obstacles.empty(), "scene needs at least one obstacle");
  Rect bb = bounding_box(obstacles.begin(), obstacles.end());
  return Scene(std::move(obstacles),
               RectilinearPolygon::rectangle(bb.expanded(margin)));
}

bool Scene::point_free(const Point& p) const {
  if (!container_.contains(p)) return false;
  for (const auto& r : obstacles_) {
    if (r.contains_strict(p)) return false;
  }
  return true;
}

bool Scene::segment_free(const Point& a, const Point& b) const {
  if (a.x != b.x && a.y != b.y) return false;
  if (!container_.contains(a) || !container_.contains(b)) return false;
  Segment s{a, b};
  for (const auto& r : obstacles_) {
    if (s.pierces(r)) return false;
  }
  return true;
}

bool Scene::path_free(std::span<const Point> path) const {
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    if (!segment_free(path[i], path[i + 1])) return false;
  }
  return true;
}

}  // namespace rsp
