#include "serve/router.h"

#include <cstdlib>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>

#include "serve/protocol.h"

#if defined(__unix__) || defined(__APPLE__)
#define RSP_HAVE_SOCKETS 1
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace rsp {

namespace {

using Clock = std::chrono::steady_clock;

std::string trim_cr(std::string s) {
  if (!s.empty() && s.back() == '\r') s.pop_back();
  return s;
}

bool skippable(const std::string& line) {
  size_t i = line.find_first_not_of(" \t");
  return i == std::string::npos || line[i] == '#';
}

// A response line a router may relay: printable, single-line. Control
// bytes mean a corrupted or binary-confused shard stream — relaying them
// could split into extra client lines and desynchronize the session.
bool control_free(const std::string& s) {
  for (char c : s) {
    if (static_cast<unsigned char>(c) < 0x20) return false;
  }
  return true;
}

bool parse_i64_tok(const std::string& tok, int64_t& out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  out = v;
  return true;
}

// "(x,y)" with signed 64-bit decimal coordinates.
bool parse_point_tok(const std::string& tok) {
  if (tok.size() < 5 || tok.front() != '(' || tok.back() != ')') return false;
  const size_t comma = tok.find(',');
  if (comma == std::string::npos) return false;
  int64_t x = 0, y = 0;
  return parse_i64_tok(tok.substr(1, comma - 1), x) &&
         parse_i64_tok(tok.substr(comma + 1, tok.size() - comma - 2), y);
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> toks;
  std::string t;
  while (is >> t) toks.push_back(std::move(t));
  return toks;
}

// "ERR <CODE> ..." — a shard's own error is a *valid* response the router
// relays verbatim (e.g. an invalid-query diagnosis belongs to the client).
bool err_line(const std::string& line) {
  if (line.rfind("ERR ", 0) != 0) return false;
  return line.size() > 4 && line[4] != ' ';
}

// An owned-rows shard refusing a query it cannot answer
// ("ERR NOT_OWNER <row_lo> <row_hi>", serve/protocol.h). Valid as a wire
// response (the stream stays synchronized), but never relayed to a client:
// the router treats it as a routing fault and walks the other shards.
bool not_owner_line(const std::string& line) {
  return line == "ERR NOT_OWNER" || line.rfind("ERR NOT_OWNER ", 0) == 0;
}

bool valid_len_response(const std::string& line) {
  if (!control_free(line)) return false;
  if (err_line(line)) return true;
  const std::vector<std::string> t = tokens_of(line);
  int64_t v = 0;
  return t.size() == 2 && t[0] == "OK" && parse_i64_tok(t[1], v);
}

bool valid_path_response(const std::string& line) {
  if (!control_free(line)) return false;
  if (err_line(line)) return true;
  const std::vector<std::string> t = tokens_of(line);
  if (t.size() < 2 || t[0] != "OK") return false;
  for (size_t i = 1; i < t.size(); ++i) {
    if (!parse_point_tok(t[i])) return false;
  }
  return true;
}

// Strict "OK <n> v1 .. vn" with n == expect — a short row, a duplicated
// value, or a count lie from a corrupted shard must never scatter into the
// merged response.
bool valid_batch_response(const std::string& line, size_t expect) {
  if (!control_free(line)) return false;
  if (err_line(line)) return true;
  const std::vector<std::string> t = tokens_of(line);
  if (t.size() < 2 || t[0] != "OK") return false;
  int64_t n = 0;
  if (!parse_i64_tok(t[1], n) || n < 0 ||
      static_cast<uint64_t>(n) != expect || t.size() != 2 + expect) {
    return false;
  }
  for (size_t i = 2; i < t.size(); ++i) {
    int64_t v = 0;
    if (!parse_i64_tok(t[i], v)) return false;
  }
  return true;
}

void append_pair(std::ostringstream& os, const PointPair& pp) {
  os << pp.s.x << ',' << pp.s.y << ' ' << pp.t.x << ',' << pp.t.y;
}

}  // namespace

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

struct Router::ShardState {
  std::mutex mu;
  uint64_t requests = 0;   // guarded by mu
  uint64_t failures = 0;   // guarded by mu
  uint64_t retries = 0;    // guarded by mu
  uint64_t misroutes = 0;  // guarded by mu; NOT_OWNER refusals
  bool last_ok = true;     // guarded by mu
  LatencyHistogram latency;  // guarded by mu; successful exchanges only
};

Router::Router(ShardManifest man, ShardConnector connect, RouterOptions opt)
    : man_(std::move(man)), connect_(std::move(connect)), opt_(opt) {
  shards_.reserve(man_.shards.size());
  for (size_t i = 0; i < man_.shards.size(); ++i) {
    shards_.push_back(std::make_unique<ShardState>());
  }
}

Router::~Router() = default;

size_t Router::route(const Point& s) const { return route_by_x(man_, s.x); }

std::string Router::shard_down_line(size_t shard) const {
  std::ostringstream os;
  os << "shard " << shard << " unreachable after " << (1 + opt_.shard_retries)
     << " attempt(s); the request was not answered";
  return format_error("SHARD_DOWN", os.str());
}

std::string Router::no_owner_line() const {
  // Every reachable shard answered NOT_OWNER: the manifest's slabs and the
  // fleet's actual row ownership disagree (stale manifest, mis-mounted
  // shard). Same degradation class as an unreachable shard — the request
  // was not answered and the client should treat the fleet as unhealthy.
  return format_error("SHARD_DOWN",
                      "no shard owns the source rows for this request; the "
                      "request was not answered");
}

std::optional<std::string> Router::exchange(
    Channels& chans, size_t shard, const std::string& payload,
    const std::function<bool(const std::string&)>& valid, bool already_sent) {
  ShardState& st = *shards_[shard];
  {
    std::lock_guard<std::mutex> lk(st.mu);
    ++st.requests;
  }
  const size_t attempts = 1 + opt_.shard_retries;
  for (size_t a = 0; a < attempts; ++a) {
    if (a > 0) {
      std::lock_guard<std::mutex> lk(st.mu);
      ++st.retries;
    }
    std::unique_ptr<ShardChannel>& ch = chans[shard];
    if (!ch && connect_) ch = connect_(shard);
    if (!ch) continue;
    if (!(a == 0 && already_sent)) {
      if (!ch->send(payload)) {
        ch.reset();
        continue;
      }
    }
    const Clock::time_point t0 = Clock::now();
    std::string line;
    if (!ch->recv_line(line, opt_.shard_timeout)) {
      ch.reset();
      continue;
    }
    if (!valid(line)) {
      // A malformed line means the stream may be desynchronized (e.g. a
      // truncated response whose tail would prefix the next one): the
      // channel is unusable, retry on a fresh connection.
      ch.reset();
      continue;
    }
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - t0);
    {
      std::lock_guard<std::mutex> lk(st.mu);
      st.last_ok = true;
      st.latency.record(us.count() < 0 ? 0 : static_cast<uint64_t>(us.count()));
    }
    return line;
  }
  {
    std::lock_guard<std::mutex> lk(st.mu);
    ++st.failures;
    st.last_ok = false;
  }
  return std::nullopt;
}

std::optional<std::string> Router::route_exchange(
    Channels& chans, const PointPair& pp, const std::string& payload,
    const std::function<bool(const std::string&)>& valid, size_t& fail_shard) {
  // Candidate order mirrors where the query's §6.4 source rows can live:
  // the backward ray from t hits one obstacle, whose corners sit near s's
  // or t's slab in a well-partitioned scene — so source slab, target slab,
  // then everything else ascending. Under kUnion the first candidate
  // always answers, so this loop degenerates to the old single exchange.
  std::vector<size_t> cands;
  cands.reserve(man_.shards.size());
  const auto add = [&cands](size_t sh) {
    for (size_t c : cands) {
      if (c == sh) return;
    }
    cands.push_back(sh);
  };
  add(route_by_x(man_, pp.s.x));
  add(route_by_x(man_, pp.t.x));
  for (size_t sh = 0; sh < man_.shards.size(); ++sh) add(sh);

  for (size_t cand : cands) {
    std::optional<std::string> line =
        exchange(chans, cand, payload, valid, /*already_sent=*/false);
    if (!line) {
      // This candidate may be the true owner; without its answer the
      // request cannot be served correctly, so degrade rather than guess.
      fail_shard = cand;
      return std::nullopt;
    }
    if (not_owner_line(*line)) {
      ShardState& st = *shards_[cand];
      std::lock_guard<std::mutex> lk(st.mu);
      ++st.misroutes;
      continue;
    }
    return line;
  }
  fail_shard = SIZE_MAX;
  return std::nullopt;
}

std::string Router::handle_single(const Request& req, Channels& chans) {
  const PointPair& pp = req.pairs[0];
  // Canonical regeneration, not raw-line relay: the shard sees exactly the
  // grammar the parser accepted, never the client's whitespace quirks.
  std::ostringstream os;
  os << (req.verb == Verb::kLen ? "LEN " : "PATH ");
  append_pair(os, pp);
  os << '\n';
  const auto valid = req.verb == Verb::kLen ? valid_len_response
                                            : valid_path_response;
  size_t fail_shard = SIZE_MAX;
  std::optional<std::string> line =
      route_exchange(chans, pp, os.str(), valid, fail_shard);
  if (line) return *line;
  return fail_shard == SIZE_MAX ? no_owner_line() : shard_down_line(fail_shard);
}

std::string Router::handle_batch(const Request& req, Channels& chans) {
  // Split by source slab; each original index lands in exactly one
  // sub-batch, order preserved within it.
  std::vector<std::vector<size_t>> owned(man_.shards.size());
  for (size_t i = 0; i < req.pairs.size(); ++i) {
    owned[route_by_x(man_, req.pairs[i].s.x)].push_back(i);
  }

  struct Sub {
    size_t shard = 0;
    std::string payload;
    bool sent = false;
    std::optional<std::string> line;
  };
  std::vector<Sub> subs;
  for (size_t sh = 0; sh < owned.size(); ++sh) {
    if (owned[sh].empty()) continue;
    Sub s;
    s.shard = sh;
    std::ostringstream os;
    os << "BATCH " << owned[sh].size() << '\n';
    for (size_t idx : owned[sh]) {
      append_pair(os, req.pairs[idx]);
      os << '\n';
    }
    s.payload = os.str();
    subs.push_back(std::move(s));
  }
  if (subs.empty()) return format_batch(std::span<const Length>{});

  // Send phase first: every involved shard starts computing before we
  // block on the first response, so sub-batches overlap across the fleet.
  // A failed send just leaves sent=false — the exchange retry ladder
  // reconnects and resends.
  for (Sub& s : subs) {
    std::unique_ptr<ShardChannel>& ch = chans[s.shard];
    if (!ch && connect_) ch = connect_(s.shard);
    if (!ch) continue;
    if (ch->send(s.payload)) {
      s.sent = true;
    } else {
      ch.reset();
    }
  }

  // Collect in shard order (each channel is serial: one request in flight
  // per channel, so order within a channel is trivially the send order).
  for (Sub& s : subs) {
    const size_t expect = owned[s.shard].size();
    s.line = exchange(
        chans, s.shard, s.payload,
        [expect](const std::string& l) {
          return valid_batch_response(l, expect);
        },
        s.sent);
  }

  // Merge rule: any down shard -> SHARD_DOWN (the failed shard owning the
  // smallest original pair index); else any shard ERR -> relay the ERR
  // owning the smallest original index; else scatter and merge. A
  // NOT_OWNER sub-response is neither relayed nor fatal: the engine
  // refuses a whole sub-batch when it lacks *any* pair's source rows, so
  // each of that sub's pairs is re-routed individually through the
  // candidate walk (the refusing shard included — it may own most of
  // them). The merge stays all-or-nothing: one fully merged OK line, or a
  // single ERR and no partial values.
  size_t down_shard = SIZE_MAX, down_idx = SIZE_MAX;
  std::string err_best;
  size_t err_idx = SIZE_MAX;
  std::vector<std::string> values(req.pairs.size());
  for (Sub& s : subs) {
    const size_t first = owned[s.shard].front();
    if (!s.line) {
      if (first < down_idx) {
        down_idx = first;
        down_shard = s.shard;
      }
      continue;
    }
    if (not_owner_line(*s.line)) {
      {
        ShardState& st = *shards_[s.shard];
        std::lock_guard<std::mutex> lk(st.mu);
        ++st.misroutes;
      }
      for (size_t idx : owned[s.shard]) {
        std::ostringstream ro;
        ro << "BATCH 1\n";
        append_pair(ro, req.pairs[idx]);
        ro << '\n';
        size_t fail_shard = SIZE_MAX;
        std::optional<std::string> rl = route_exchange(
            chans, req.pairs[idx], ro.str(),
            [](const std::string& l) { return valid_batch_response(l, 1); },
            fail_shard);
        if (!rl) {
          if (idx < down_idx) {
            down_idx = idx;
            down_shard = fail_shard;  // SIZE_MAX when every shard refused
          }
        } else if (err_line(*rl)) {
          if (idx < err_idx) {
            err_idx = idx;
            err_best = *rl;
          }
        } else {
          values[idx] = tokens_of(*rl)[2];  // "OK 1 v"
        }
      }
      continue;
    }
    if (err_line(*s.line)) {
      if (first < err_idx) {
        err_idx = first;
        err_best = *s.line;
      }
      continue;
    }
    const std::vector<std::string> t = tokens_of(*s.line);  // "OK n v1..vn"
    const std::vector<size_t>& idx = owned[s.shard];
    for (size_t j = 0; j < idx.size(); ++j) values[idx[j]] = t[2 + j];
  }
  if (down_idx != SIZE_MAX) {
    return down_shard == SIZE_MAX ? no_owner_line()
                                  : shard_down_line(down_shard);
  }
  if (err_idx != SIZE_MAX) return err_best;

  std::ostringstream os;
  os << "OK " << values.size();
  for (const std::string& v : values) os << ' ' << v;
  return os.str();
}

void Router::count_response(const std::string& line) {
  const bool is_err = line.rfind("ERR", 0) == 0;
  const bool is_down = line.rfind("ERR SHARD_DOWN", 0) == 0;
  std::lock_guard<std::mutex> lk(stats_mu_);
  ++requests_;
  if (is_err) ++errors_;
  if (is_down) ++shard_down_;
}

void Router::serve(std::istream& in, std::ostream& out) {
  // Per-session channel set, lazily connected: a session's requests are
  // processed serially, so each channel carries at most one exchange at a
  // time and per-session response order is the request order by
  // construction — no cross-session locking, no reordering window.
  Channels chans(man_.shards.size());
  std::string line;
  while (std::getline(in, line)) {
    line = trim_cr(std::move(line));
    if (skippable(line)) continue;
    ParsedRequest pr = parse_request(line, [&](std::string& next) {
      if (!std::getline(in, next)) return false;
      next = trim_cr(std::move(next));
      return true;
    });
    std::string resp;
    if (!pr.ok) {
      resp = format_error("BAD_REQUEST", pr.error);
    } else if (pr.req.verb == Verb::kQuit) {
      count_response("OK bye");
      out << "OK bye\n";
      out.flush();
      break;
    } else if (pr.req.verb == Verb::kStats) {
      resp = stats_line();
    } else if (pr.req.verb == Verb::kBatch) {
      resp = handle_batch(pr.req, chans);
    } else {
      resp = handle_single(pr.req, chans);
    }
    count_response(resp);
    out << resp << '\n';
    out.flush();
  }
}

Status Router::serve_port(uint16_t port,
                          const std::function<void(uint16_t)>& on_listening) {
  return listener_.run(
      port, opt_.max_sessions, on_listening,
      [this](std::istream& in, std::ostream& out) { serve(in, out); });
}

void Router::shutdown_port() { listener_.shutdown(); }

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

RouterStats Router::stats() const {
  RouterStats s;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s.requests = requests_;
    s.errors = errors_;
    s.shard_down = shard_down_;
  }
  s.shards.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardState& st = *shards_[i];
    std::lock_guard<std::mutex> lk(st.mu);
    s.shards[i].requests = st.requests;
    s.shards[i].failures = st.failures;
    s.shards[i].retries = st.retries;
    s.shards[i].misroutes = st.misroutes;
    s.shards[i].last_ok = st.last_ok;
    s.shards[i].p50_us = st.latency.percentile(0.50);
    s.shards[i].p95_us = st.latency.percentile(0.95);
    s.shards[i].max_us = st.latency.max();
  }
  return s;
}

std::string Router::stats_line() const {
  RouterStats s = stats();
  std::ostringstream os;
  os << "OK router shards=" << s.shards.size() << " requests=" << s.requests
     << " errors=" << s.errors << " shard_down=" << s.shard_down;
  for (size_t i = 0; i < s.shards.size(); ++i) {
    const RouterShardStats& sh = s.shards[i];
    os << " shard" << i << '=' << (sh.last_ok ? "up" : "down")
       << ":req=" << sh.requests << ",fail=" << sh.failures
       << ",retry=" << sh.retries << ",misroute=" << sh.misroutes
       << ",p95_us=" << sh.p95_us;
  }
  return os.str();
}

std::string Router::stats_json() const {
  RouterStats s = stats();
  std::ostringstream os;
  os << "{\n"
     << "  \"router\": {\n"
     << "    \"shards\": " << s.shards.size() << ",\n"
     << "    \"requests\": " << s.requests << ",\n"
     << "    \"errors\": " << s.errors << ",\n"
     << "    \"shard_down\": " << s.shard_down << ",\n"
     << "    \"timeout_ms\": " << opt_.shard_timeout.count() << ",\n"
     << "    \"retries\": " << opt_.shard_retries << "\n"
     << "  },\n"
     << "  \"shard_health\": [\n";
  for (size_t i = 0; i < s.shards.size(); ++i) {
    const RouterShardStats& sh = s.shards[i];
    os << "    {\"shard\": " << i << ", \"up\": " << (sh.last_ok ? "true" : "false")
       << ", \"requests\": " << sh.requests << ", \"failures\": " << sh.failures
       << ", \"retries\": " << sh.retries << ", \"misroutes\": " << sh.misroutes
       << ", \"latency_us\": {\"p50\": "
       << sh.p50_us << ", \"p95\": " << sh.p95_us << ", \"max\": " << sh.max_us
       << "}}" << (i + 1 < s.shards.size() ? "," : "") << "\n";
  }
  os << "  ]\n"
     << "}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// TCP connector
// ---------------------------------------------------------------------------

#ifdef RSP_HAVE_SOCKETS

namespace {

class TcpShardChannel final : public ShardChannel {
 public:
  explicit TcpShardChannel(int fd) : fd_(fd) {}
  ~TcpShardChannel() override { ::close(fd_); }

  bool send(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
#ifdef MSG_NOSIGNAL
      ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
#else
      ssize_t n = ::write(fd_, p, left);
#endif
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return true;
  }

  bool recv_line(std::string& line,
                 std::chrono::milliseconds timeout) override {
    const Clock::time_point deadline = Clock::now() + timeout;
    for (;;) {
      const size_t pos = buf_.find('\n');
      if (pos != std::string::npos) {
        line.assign(buf_, 0, pos);
        buf_.erase(0, pos + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return true;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return false;
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (pr == 0) return false;  // deadline expired
      char chunk[4096];
      ssize_t n;
      do {
        n = ::recv(fd_, chunk, sizeof(chunk), 0);
      } while (n < 0 && errno == EINTR);
      if (n <= 0) return false;  // EOF or hard error
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;  // received bytes not yet delivered as a line
};

}  // namespace

ShardConnector tcp_connector(std::vector<ShardEndpoint> endpoints) {
  return [endpoints = std::move(endpoints)](
             size_t shard) -> std::unique_ptr<ShardChannel> {
    if (shard >= endpoints.size()) return nullptr;
    const ShardEndpoint& ep = endpoints[shard];
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port = std::to_string(ep.port);
    if (::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &res) != 0) {
      return nullptr;
    }
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      // Insurance against a peer that accepts but never drains: a send
      // into a full socket buffer fails after 10 s instead of blocking the
      // session forever (the per-exchange response deadline is the primary
      // timeout; this guards the send side, which poll-based recv cannot).
      timeval tv{10, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) return nullptr;
    return std::make_unique<TcpShardChannel>(fd);
  };
}

#else  // !RSP_HAVE_SOCKETS

ShardConnector tcp_connector(std::vector<ShardEndpoint>) {
  return [](size_t) -> std::unique_ptr<ShardChannel> { return nullptr; };
}

#endif

}  // namespace rsp
