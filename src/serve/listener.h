#pragma once
// TcpSessionLoop — the reusable session-per-connection TCP acceptor.
//
// Owns one listening socket and runs one session thread per accepted
// connection; the caller supplies the session body as a callable over a
// connected istream/ostream pair (separate read and write streams over the
// one socket, so a session may read and write from different threads).
// Both QueryServer::serve_port (shard/engine serving) and Router::serve_port
// (fleet fan-out) front their session loops with this class — one acceptor
// implementation, one shutdown discipline, one backoff policy.
//
// Semantics (inherited verbatim from the original QueryServer acceptor):
//  - port 0 binds an ephemeral port; on_listening (when set) fires with the
//    bound port after listen() succeeds and before the first accept — the
//    safe rendezvous for callers that connect from another thread.
//  - max_sessions caps *concurrent* sessions; at the cap the acceptor parks
//    and excess clients wait in the TCP backlog instead of being dropped.
//  - Transient accept failures (EINTR, ECONNABORTED) are retried; resource
//    exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) backs off 10 ms and retries,
//    invoking on_backoff first so the owner can exclude the pause from any
//    idle-time accounting (see QueryServer::note_accept_backoff).
//  - shutdown() is async-signal-safe (atomics + shutdown(2)) and sticky:
//    a call landing before run() creates the listener makes the next run()
//    return OK immediately instead of being lost. On shutdown, in-flight
//    sessions are half-closed (readers see EOF, pending responses still
//    flush), hard-closed after a 1 s grace if a peer stopped reading, and
//    joined before run() returns — also on the error path.
//
// Platforms without BSD sockets: run() returns kIoError, shutdown() is a
// no-op (same contract the serve layer always had).

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>

#include "api/status.h"

namespace rsp {

class TcpSessionLoop {
 public:
  // The per-connection session body. Returning ends the session; the loop
  // closes the socket afterwards.
  using SessionFn = std::function<void(std::istream& in, std::ostream& out)>;

  // Runs the accept loop until shutdown() or a hard listener error. Not
  // reentrant: one run() at a time per loop instance.
  Status run(uint16_t port, size_t max_sessions,
             const std::function<void(uint16_t)>& on_listening,
             const SessionFn& session,
             const std::function<void()>& on_backoff = {});

  // Ends a running run() loop cleanly; async-signal-safe and sticky.
  void shutdown();

 private:
  std::atomic<int> listener_fd_{-1};    // valid while run() owns a listener
  std::atomic<bool> shutdown_{false};   // sticky, set by shutdown()
};

}  // namespace rsp
