#pragma once
// Router — the fleet front end of sharded serving (io/manifest.h).
//
// One router owns client sessions and a manifest; behind it, one shard
// server per manifest entry (each a plain QueryServer speaking the
// serve/protocol.h grammar, usually mounted from the same manifest). The
// router speaks the *identical* grammar to its clients — a client cannot
// tell a router from a single engine server except through STATS — and
// forwards work by the manifest's source-x routing slabs:
//
//   LEN/PATH  route whole to the shard owning the source's slab.
//   BATCH     splits by source slab into per-shard sub-batches, ships them
//             to every involved shard (send phase first, so shards compute
//             concurrently), then collects and scatters the per-shard
//             results back into wire order and answers one merged line.
//   STATS     answered locally ("OK router ..." — shard health + latency),
//             never forwarded.
//   QUIT      answered locally ("OK bye").
//
// What routing means depends on how the shard servers mounted the
// manifest (api/engine.h MountMode):
//  - kUnion: every shard server holds all rows, so any routing function is
//    correct; the slabs just keep a source's queries on one shard's warm
//    cache, and the first-try shard always answers.
//  - kOwnedRows: each shard holds only its [row_lo, row_hi) rows and
//    refuses a query whose source rows it lacks with
//    "ERR NOT_OWNER <row_lo> <row_hi>". The router treats that refusal as
//    a routing fault, never a client error: it walks the candidate shards
//    (source slab, then target slab, then the rest ascending) until one
//    accepts, counting a misroute per refusal. Clients never see
//    NOT_OWNER through a router.
// Either way the fault-injection battery's contract holds: a router
// transcript must be byte-identical to a direct single-engine transcript
// no matter how responses interleave or how many re-routes happen.
//
// Failure semantics (the hard contract, tests/router_test.cpp):
//  - Every client request gets exactly one response line, in request
//    order. Never a hang, never reordering, never a crossed response.
//  - A shard exchange that times out (RouterOptions::shard_timeout), hits
//    EOF/connect failure, or returns a malformed line costs the channel
//    (it may be desynchronized — mid-line truncation would otherwise
//    misalign every later response) and is retried once on a fresh
//    connection (RouterOptions::shard_retries). Exhausted retries answer
//    "ERR SHARD_DOWN shard <i> ..." for the requests that needed it.
//  - A NOT_OWNER refusal advances the candidate walk. The walk degrades to
//    SHARD_DOWN only when a candidate that may still own the rows is
//    unreachable, or when every shard refused (a stale manifest whose
//    slabs disagree with the fleet's actual row ownership).
//  - A merged BATCH answers SHARD_DOWN if any involved shard was down
//    (named: the failed shard owning the smallest original pair index);
//    otherwise relays a shard's own ERR verbatim (the one owning the
//    smallest original pair index); otherwise merges the OK values. A
//    NOT_OWNER sub-response re-routes each of its pairs individually
//    (the engine refuses whole sub-batches, so some pairs may still
//    belong to the refusing shard); the merge stays all-or-nothing.
//
// Transport is abstracted behind ShardChannel/ShardConnector so the fault
// battery can interpose deterministic delay/truncation/corruption/kill
// (tests/fault_injection_util.h) without a real socket; production uses
// tcp_connector().

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.h"
#include "io/manifest.h"
#include "serve/listener.h"
#include "serve/server.h"

namespace rsp {

// One connected request/response channel to a shard server. send() ships a
// complete request payload (one LEN/PATH line, or a BATCH header plus its
// pair lines — always '\n'-terminated); recv_line() delivers the next
// response line without its terminator. Both return false on transport
// failure (EOF, error, or — for recv_line — deadline expiry); after a
// false the channel is dead and the router discards it.
class ShardChannel {
 public:
  virtual ~ShardChannel() = default;
  virtual bool send(std::string_view data) = 0;
  virtual bool recv_line(std::string& line,
                         std::chrono::milliseconds timeout) = 0;
};

// Produces a fresh channel to shard `shard`, or nullptr when it is
// unreachable. Called lazily (first request touching the shard in a
// session) and again on retry after a failed exchange. Must be callable
// from many session threads concurrently.
using ShardConnector =
    std::function<std::unique_ptr<ShardChannel>(size_t shard)>;

struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;
};

// Real-TCP connector, one endpoint per manifest shard (index-aligned).
// Connect or name-resolution failure yields nullptr (the router's retry
// ladder handles it). On platforms without BSD sockets every connect
// yields nullptr.
ShardConnector tcp_connector(std::vector<ShardEndpoint> endpoints);

struct RouterOptions {
  // Per-exchange response deadline. An exchange that misses it costs the
  // channel and a retry — a slow shard degrades to SHARD_DOWN, never to a
  // hung client session.
  std::chrono::milliseconds shard_timeout{2000};
  // Reconnect-and-resend attempts after a failed exchange (0 = fail fast).
  size_t shard_retries = 1;
  // Concurrent client session cap for serve_port (0 = uncapped).
  size_t max_sessions = 0;
};

// Per-shard health snapshot (see Router::stats).
struct RouterShardStats {
  uint64_t requests = 0;   // exchanges attempted against this shard
  uint64_t failures = 0;   // exchanges exhausted (became SHARD_DOWN)
  uint64_t retries = 0;    // reconnect-and-resend attempts
  uint64_t misroutes = 0;  // NOT_OWNER refusals (owned-rows re-routes)
  bool last_ok = true;     // most recent exchange outcome
  uint64_t p50_us = 0;    // successful-exchange latency percentiles
  uint64_t p95_us = 0;
  uint64_t max_us = 0;
};

struct RouterStats {
  uint64_t requests = 0;    // client requests answered, including errors
  uint64_t errors = 0;      // ERR responses (protocol + shard + relayed)
  uint64_t shard_down = 0;  // ERR SHARD_DOWN responses
  std::vector<RouterShardStats> shards;
};

class Router {
 public:
  // The manifest provides shard count and routing slabs; the connector
  // provides transport. The manifest must validate (validate_manifest).
  Router(ShardManifest man, ShardConnector connect, RouterOptions opt = {});
  ~Router();  // out-of-line: ShardState is private to router.cpp

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Runs one client session: one response line per request, in request
  // order. Reentrant — serve_port runs one per connection; sessions share
  // only the per-shard health stats (internally locked), never channels.
  void serve(std::istream& in, std::ostream& out);

  // TCP front end over the shared acceptor (serve/listener.h); same
  // ephemeral-port / on_listening / shutdown semantics as
  // QueryServer::serve_port.
  Status serve_port(uint16_t port,
                    const std::function<void(uint16_t)>& on_listening = {});
  void shutdown_port();

  // The shard whose slab owns source point `s` (route_by_x).
  size_t route(const Point& s) const;

  const ShardManifest& manifest() const { return man_; }
  const RouterOptions& options() const { return opt_; }

  RouterStats stats() const;
  // The STATS wire response: "OK router shards=<k> requests=... " plus one
  // "shard<i>=up|down:req=..,fail=..,retry=..,misroute=..,p95_us=.." field
  // per shard.
  // Prefixed "OK router" so fleet transcripts can be diffed against
  // single-engine ones with STATS lines filtered by prefix.
  std::string stats_line() const;
  // Full JSON: router counters + per-shard health array. Written by
  // `rspcli serve --router` on shutdown.
  std::string stats_json() const;

 private:
  struct ShardState;
  // Channels of one client session, lazily connected, index == shard.
  using Channels = std::vector<std::unique_ptr<ShardChannel>>;

  // One request/one response exchange against a shard, with the retry
  // ladder. `already_sent` marks a payload shipped by a BATCH send phase
  // on the current channel (the first attempt skips its send). Returns the
  // validated response line, or nullopt once attempts are exhausted (the
  // caller formats SHARD_DOWN). `valid` rejecting a *received* line also
  // costs the channel: a malformed response means the stream may be
  // desynchronized, and the next exchange must not read its leftovers.
  std::optional<std::string> exchange(
      Channels& chans, size_t shard, const std::string& payload,
      const std::function<bool(const std::string&)>& valid,
      bool already_sent);

  // Candidate-walk exchange for one pair: source-slab shard first (under
  // kUnion that is the only shard ever asked), then the target-slab shard,
  // then every remaining shard ascending, deduplicated. A NOT_OWNER
  // refusal counts a misroute and advances the walk; any other response is
  // definitive and returned as-is (never NOT_OWNER). Returns nullopt when
  // a candidate that may still own the rows is unreachable (`fail_shard`
  // names it; the caller answers SHARD_DOWN) or when every shard refused
  // (`fail_shard` == SIZE_MAX: manifest and fleet ownership disagree).
  std::optional<std::string> route_exchange(
      Channels& chans, const PointPair& pp, const std::string& payload,
      const std::function<bool(const std::string&)>& valid,
      size_t& fail_shard);

  std::string handle_single(const Request& req, Channels& chans);
  std::string handle_batch(const Request& req, Channels& chans);
  std::string shard_down_line(size_t shard) const;
  std::string no_owner_line() const;
  void count_response(const std::string& line);

  ShardManifest man_;
  ShardConnector connect_;
  RouterOptions opt_;
  TcpSessionLoop listener_;

  mutable std::mutex stats_mu_;
  uint64_t requests_ = 0;    // guarded by stats_mu_
  uint64_t errors_ = 0;      // guarded by stats_mu_
  uint64_t shard_down_ = 0;  // guarded by stats_mu_

  // unique_ptr: ShardState holds a mutex and must not move when the
  // vector is sized at construction.
  std::vector<std::unique_ptr<ShardState>> shards_;
};

}  // namespace rsp
