#include "serve/server.h"

#include <bit>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "io/snapshot.h"

namespace rsp {

namespace {

using Clock = std::chrono::steady_clock;

// The payload kind a save() of this engine would write — what STATS calls
// the "resident structure" (derived from the resolved backend; never
// forces a deferred build).
const char* engine_payload_kind(const Engine& eng) {
  switch (eng.backend()) {
    case Backend::kBoundaryTree:
      return payload_kind_name(SnapshotPayloadKind::kBoundaryTree);
    case Backend::kDijkstraBaseline:
      return payload_kind_name(SnapshotPayloadKind::kSceneOnly);
    default:
      return payload_kind_name(SnapshotPayloadKind::kAllPairs);
  }
}

uint64_t us_between(Clock::time_point a, Clock::time_point b) {
  auto d = std::chrono::duration_cast<std::chrono::microseconds>(b - a);
  return d.count() < 0 ? 0 : static_cast<uint64_t>(d.count());
}

// LEN and BATCH are both length-valued and coalesce into one
// Engine::lengths() dispatch; PATH runs coalesce into Engine::paths().
// STATS dispatches alone (it must observe every earlier request answered).
enum class Kind { kLengths, kPaths, kStats };

Kind kind_of(Verb v) {
  switch (v) {
    case Verb::kLen:
    case Verb::kBatch:
      return Kind::kLengths;
    case Verb::kPath:
      return Kind::kPaths;
    default:
      return Kind::kStats;
  }
}

std::string trim_cr(std::string s) {
  if (!s.empty() && s.back() == '\r') s.pop_back();
  return s;
}

bool skippable(const std::string& line) {
  size_t i = line.find_first_not_of(" \t");
  return i == std::string::npos || line[i] == '#';
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

size_t LatencyHistogram::bucket_of(uint64_t us) {
  if (us < kExact) return static_cast<size_t>(us);
  const int msb = 63 - std::countl_zero(us);  // >= 4
  const size_t sub = (us >> (msb - 3)) & (kSub - 1);
  return kExact + static_cast<size_t>(msb - 4) * kSub + sub;
}

uint64_t LatencyHistogram::bucket_upper(size_t idx) {
  if (idx < kExact) return idx;
  const int msb = static_cast<int>((idx - kExact) / kSub) + 4;
  const uint64_t sub = (idx - kExact) % kSub;
  const uint64_t low = (uint64_t{1} << msb) | (sub << (msb - 3));
  return low + (uint64_t{1} << (msb - 3)) - 1;
}

void LatencyHistogram::record(uint64_t us) {
  ++buckets_[bucket_of(us)];
  ++count_;
  if (us > max_) max_ = us;
}

void LatencyHistogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  max_ = 0;
}

uint64_t LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the quantile element, 1-based: ceil(p * count), at least 1.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

// ---------------------------------------------------------------------------
// QueryServer — admission and dispatch
// ---------------------------------------------------------------------------

QueryServer::QueryServer(Engine engine, ServeOptions opt)
    : engine_(std::move(engine)), opt_(opt) {
  if (opt_.max_batch_pairs == 0) opt_.max_batch_pairs = 1;
  window_us_.store(opt_.coalesce_window_us, std::memory_order_relaxed);
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

QueryServer::~QueryServer() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void QueryServer::dec_inflight_locked(uint64_t session) {
  auto it = inflight_.find(session);
  if (it != inflight_.end() && --it->second == 0) inflight_.erase(it);
}

std::future<std::string> QueryServer::submit(Request req, uint64_t session) {
  auto p = std::make_unique<Pending>();
  p->req = std::move(req);
  p->session = session;
  p->admitted = Clock::now();
  std::future<std::string> fut = p->response.get_future();
  size_t pending = 0;
  std::unique_ptr<Pending> evicted;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (opt_.max_queue_depth > 0 && queue_.size() >= opt_.max_queue_depth) {
      pending = queue_.size();
      // Fair shedding. A full queue used to refuse whichever request
      // arrived next — so one hog session keeping the queue full shed
      // every *other* session's requests while its own backlog executed.
      // Instead: a session already at or over its fair share of the queue
      // sheds its own arrival; a session within its share is admitted by
      // evicting the newest queued request of the hoggiest over-quota
      // session.
      size_t mine = 0;
      if (auto it = inflight_.find(session); it != inflight_.end()) {
        mine = it->second;
      }
      const size_t sessions = inflight_.size() + (mine == 0 ? 1 : 0);
      const size_t share =
          std::max<size_t>(1, opt_.max_queue_depth / std::max<size_t>(1, sessions));
      if (mine < share) {
        uint64_t hog = session;
        size_t hog_count = mine;
        for (const auto& [sid, cnt] : inflight_) {
          if (cnt > hog_count) {
            hog = sid;
            hog_count = cnt;
          }
        }
        if (hog != session && hog_count > share) {
          // Newest-first eviction: the hog's oldest requests keep their
          // place (they waited longest), its most recent burst pays.
          for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
            if ((*it)->session == hog) {
              evicted = std::move(*it);
              queue_.erase(std::next(it).base());
              break;
            }
          }
          if (evicted) {
            dec_inflight_locked(hog);
            ++inflight_[session];
            queue_.push_back(std::move(p));
          }
        }
      }
      // else: p survives the block and is shed below.
    } else {
      ++inflight_[session];
      queue_.push_back(std::move(p));
    }
  }
  Pending* shed = p ? p.get() : evicted.get();
  if (shed != nullptr) {
    // Bounded admission: the shed request never executes; its client gets
    // an immediate LOAD_SHED line (in order, via its future). Deliberately
    // not recorded in the latency histograms — a shed answer is
    // near-instant, and folding it in would drag the adaptive p95 down
    // exactly when the server is hottest.
    {
      std::lock_guard<std::mutex> slk(stats_mu_);
      ++requests_;
      ++errors_;
      ++shed_;
    }
    shed->response.set_value(format_load_shed(pending));
    if (p) return fut;  // the arrival was shed; nothing was enqueued
  }
  queue_cv_.notify_all();
  return fut;
}

void QueryServer::dispatcher_main() {
  std::unique_lock<std::mutex> lk(queue_mu_);
  for (;;) {
    queue_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained: requests admitted before stop_ are
      continue;           // answered, the session writer never hangs
    }
    dispatch_group(lk);
  }
}

void QueryServer::dispatch_group(std::unique_lock<std::mutex>& lk) {
  const Kind head_kind = kind_of(queue_.front()->req.verb);

  // Count pairs in the maximal head-kind prefix (what a dispatch right now
  // would carry).
  auto prefix_pairs = [&] {
    size_t pairs = 0;
    for (const auto& p : queue_) {
      if (kind_of(p->req.verb) != head_kind) break;
      pairs += p->req.pairs.size();
      if (pairs >= opt_.max_batch_pairs) break;
    }
    return pairs;
  };

  // Coalescing window: give the pipeline a beat to fill the batch. Wakes
  // early when full (or shutting down); STATS never waits. The window is
  // the *live* (possibly adapted) one, not the configured ceiling.
  const uint64_t window = window_us_.load(std::memory_order_relaxed);
  if (head_kind != Kind::kStats && window > 0 &&
      prefix_pairs() < opt_.max_batch_pairs) {
    // The head is pinned for the whole wait: this thread is the only
    // consumer, producers only append. Wake early when the batch fills
    // (or on shutdown), else dispatch whatever arrived by the deadline.
    queue_cv_.wait_for(lk, std::chrono::microseconds(window),
                       [&] {
                         return stop_ ||
                                prefix_pairs() >= opt_.max_batch_pairs;
                       });
  }

  // Pop the maximal same-kind prefix within the pair budget. The head is
  // always taken, even when one BATCH alone exceeds max_batch_pairs —
  // otherwise it could never dispatch.
  std::vector<std::unique_ptr<Pending>> group;
  size_t pairs = 0;
  const Kind kind = kind_of(queue_.front()->req.verb);
  while (!queue_.empty() && kind_of(queue_.front()->req.verb) == kind) {
    size_t next = queue_.front()->req.pairs.size();
    if (!group.empty() && pairs + next > opt_.max_batch_pairs) break;
    pairs += next;
    group.push_back(std::move(queue_.front()));
    queue_.pop_front();
    dec_inflight_locked(group.back()->session);
    if (kind == Kind::kStats) break;  // STATS dispatches alone
  }

  lk.unlock();

  if (kind == Kind::kStats) {
    finish(*group[0], stats_line());
    lk.lock();
    return;
  }

  // Flatten the group into one engine batch; each request owns the slice
  // [offset, offset + size) of the results.
  std::vector<PointPair> batch;
  batch.reserve(pairs);
  std::vector<size_t> offset(group.size());
  for (size_t g = 0; g < group.size(); ++g) {
    offset[g] = batch.size();
    batch.insert(batch.end(), group[g]->req.pairs.begin(),
                 group[g]->req.pairs.end());
  }

  // Count the dispatch before any promise is fulfilled: a session that
  // returns the moment its last response lands must already observe it.
  {
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++dispatches_;
    dispatched_pairs_ += pairs;
  }

  if (kind == Kind::kLengths) {
    Result<std::vector<Length>> lens = engine_.lengths(batch);
    for (size_t g = 0; g < group.size(); ++g) {
      Pending& p = *group[g];
      if (lens.ok()) {
        std::span<const Length> slice(lens->data() + offset[g],
                                      p.req.pairs.size());
        finish(p, p.req.verb == Verb::kBatch ? format_batch(slice)
                                             : format_length(slice[0]));
        continue;
      }
      // One invalid pair fails a whole Engine batch; re-run this request
      // alone so only the offending request degrades.
      if (p.req.verb == Verb::kLen) {
        Result<Length> one = engine_.length(p.req.pairs[0].s,
                                            p.req.pairs[0].t);
        finish(p, one.ok() ? format_length(*one) : format_error(one.status()));
      } else {
        Result<std::vector<Length>> own = engine_.lengths(p.req.pairs);
        finish(p, own.ok() ? format_batch(*own) : format_error(own.status()));
      }
    }
  } else {
    Result<std::vector<std::vector<Point>>> paths = engine_.paths(batch);
    for (size_t g = 0; g < group.size(); ++g) {
      Pending& p = *group[g];
      if (paths.ok()) {
        finish(p, format_path((*paths)[offset[g]]));
        continue;
      }
      Result<std::vector<Point>> one = engine_.path(p.req.pairs[0].s,
                                                    p.req.pairs[0].t);
      finish(p, one.ok() ? format_path(*one) : format_error(one.status()));
    }
  }

  lk.lock();
  // Lock order queue_mu_ -> stats_mu_ (finish/stats take stats_mu_ alone,
  // never the reverse). `drained` = nothing arrived while computing.
  maybe_adapt_window(queue_.empty());
}

void QueryServer::maybe_adapt_window(bool drained) {
  if (opt_.target_p95_us == 0 || opt_.coalesce_window_us == 0) return;
  // Busy regime: enough samples that one slow outlier cannot whipsaw the
  // window, few enough that adaptation reacts within a couple of herd
  // batches.
  constexpr uint64_t kMinEpochSamples = 32;
  const uint64_t cur = window_us_.load(std::memory_order_relaxed);
  const uint64_t grown = std::min<uint64_t>(opt_.coalesce_window_us,
                                            std::max<uint64_t>(1, cur * 2));
  uint64_t next = cur;
  const uint64_t backoffs = accept_backoffs_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    // The acceptor slept on fd exhaustion since the last round. That pause
    // is pressure, not idle traffic: it thins admissions (the epoch drains
    // early on a trickle) and stretches request spacing, so a sparse-regime
    // decision taken over it reads like "lone requests paying the window"
    // and halves — exactly when the right move is to keep coalescing so
    // live sessions finish and release fds.
    const bool fd_pressure = backoffs != backoffs_seen_;
    backoffs_seen_ = backoffs;
    // Decide once the epoch fills (busy regime), or — when the queue fully
    // drained — on whatever the epoch holds (sparse regime: at low traffic
    // waiting for 32 samples would mean never reacting, and a lone request
    // mostly pays the window itself, which is exactly the signal). Every
    // decision starts a fresh epoch so a past load regime cannot haunt the
    // current one.
    if (epoch_latency_.count() >= kMinEpochSamples) {
      // A full epoch carries enough samples to out-vote the backoff skew;
      // the busy-regime decision proceeds regardless of fd pressure.
      next = epoch_latency_.percentile(0.95) > opt_.target_p95_us ? cur / 2
                                                                  : grown;
      epoch_latency_.reset();
    } else if (drained && epoch_latency_.count() > 0) {
      if (fd_pressure) {
        // Skip the round AND discard the samples: they were gathered while
        // the acceptor was sleeping, so they must not seed the next
        // drained-early decision either.
        ++window_skips_;
        epoch_latency_.reset();
      } else {
        next = epoch_latency_.percentile(0.95) > opt_.target_p95_us ? cur / 2
                                                                    : grown;
        epoch_latency_.reset();
      }
    }
  }
  if (next != cur) window_us_.store(next, std::memory_order_relaxed);
}

void QueryServer::note_accept_backoff() {
  accept_backoffs_.fetch_add(1, std::memory_order_relaxed);
}

void QueryServer::finish(Pending& p, std::string response) {
  const bool is_error = response.rfind("ERR", 0) == 0;
  const uint64_t us = us_between(p.admitted, Clock::now());
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++requests_;
    if (is_error) {
      ++errors_;
    } else if (p.req.verb != Verb::kStats) {
      queries_ += p.req.pairs.size();
    }
    latency_.record(us);
    if (opt_.target_p95_us > 0) epoch_latency_.record(us);
  }
  p.response.set_value(std::move(response));
}

void QueryServer::count_protocol_error() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  ++requests_;
  ++errors_;
}

// ---------------------------------------------------------------------------
// Session loop
// ---------------------------------------------------------------------------

void QueryServer::serve(std::istream& in, std::ostream& out) {
  // Session identity for fair admission: every serve() call is one
  // session, and the fair-shedding logic in submit() charges queued
  // requests to it.
  const uint64_t session = next_session_.fetch_add(1, std::memory_order_relaxed);
  // Responses leave in request order: the reader appends one future per
  // request, the writer drains them FIFO. Computation overlaps input —
  // that pipelining is what gives the dispatcher batches to coalesce.
  std::mutex fifo_mu;
  std::condition_variable fifo_cv;
  std::deque<std::future<std::string>> fifo;
  bool done = false;

  std::thread writer([&] {
    for (;;) {
      std::future<std::string> f;
      {
        std::unique_lock<std::mutex> lk(fifo_mu);
        fifo_cv.wait(lk, [&] { return done || !fifo.empty(); });
        if (fifo.empty()) return;
        f = std::move(fifo.front());
        fifo.pop_front();
      }
      out << f.get() << '\n';
      out.flush();
    }
  });

  auto push = [&](std::future<std::string> f) {
    {
      std::lock_guard<std::mutex> lk(fifo_mu);
      fifo.push_back(std::move(f));
    }
    fifo_cv.notify_one();
  };
  auto push_ready = [&](std::string s) {
    std::promise<std::string> p;
    p.set_value(std::move(s));
    push(p.get_future());
  };

  std::string line;
  while (std::getline(in, line)) {
    line = trim_cr(std::move(line));
    if (skippable(line)) continue;
    ParsedRequest pr = parse_request(line, [&](std::string& next) {
      if (!std::getline(in, next)) return false;
      next = trim_cr(std::move(next));
      return true;
    });
    if (!pr.ok) {
      count_protocol_error();
      push_ready(format_error("BAD_REQUEST", pr.error));
      continue;
    }
    if (pr.req.verb == Verb::kQuit) {
      push_ready("OK bye");
      break;
    }
    push(submit(std::move(pr.req), session));
  }

  {
    std::lock_guard<std::mutex> lk(fifo_mu);
    done = true;
  }
  fifo_cv.notify_all();
  writer.join();
}

// ---------------------------------------------------------------------------
// TCP front end — the acceptor itself lives in serve/listener.cpp
// (TcpSessionLoop); this class contributes only the session body and the
// fd-pressure bookkeeping.
// ---------------------------------------------------------------------------

Status QueryServer::serve_port(
    uint16_t port, size_t max_sessions,
    const std::function<void(uint16_t)>& on_listening) {
  return listener_.run(
      port, max_sessions, on_listening,
      [this](std::istream& in, std::ostream& out) { serve(in, out); },
      [this] { note_accept_backoff(); });
}

void QueryServer::shutdown_port() { listener_.shutdown(); }

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

ServeStats QueryServer::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  ServeStats s;
  s.requests = requests_;
  s.queries = queries_;
  s.errors = errors_;
  s.shed = shed_;
  s.dispatches = dispatches_;
  s.dispatched_pairs = dispatched_pairs_;
  s.window_us = window_us_.load(std::memory_order_relaxed);
  s.accept_backoffs = accept_backoffs_.load(std::memory_order_relaxed);
  s.window_skips = window_skips_;
  s.p50_us = latency_.percentile(0.50);
  s.p95_us = latency_.percentile(0.95);
  s.p99_us = latency_.percentile(0.99);
  s.max_us = latency_.max();
  return s;
}

std::string QueryServer::stats_line() const {
  ServeStats s = stats();
  std::ostringstream os;
  os << "OK served=" << s.requests << " queries=" << s.queries
     << " errors=" << s.errors << " shed=" << s.shed
     << " dispatches=" << s.dispatches
     << " mean_batch=" << s.mean_batch_occupancy()
     << " window_us=" << s.window_us << " p50_us=" << s.p50_us
     << " p95_us=" << s.p95_us << " p99_us=" << s.p99_us
     << " max_us=" << s.max_us
     << " backend=" << backend_name(engine_.backend())
     << " payload=" << engine_payload_kind(engine_)
     << " mem_bytes=" << engine_.memory_usage();
  const Engine::MemoryBreakdown mb = engine_.memory_breakdown();
  os << " owned_rows=" << mb.owned_rows << "/" << mb.total_rows;
  if (mb.mapped_bytes > 0) {
    // mmap-opened engine: mem_bytes minus this is the true resident cost.
    os << " mapped_bytes=" << mb.mapped_bytes;
  }
  if (mb.port_matrix_dense_bytes > 0) {
    os << " port_bytes=" << mb.port_matrix_bytes
       << " port_dense_bytes=" << mb.port_matrix_dense_bytes;
  }
  return os.str();
}

std::string QueryServer::stats_json() const {
  ServeStats s = stats();
  EngineMetrics m = engine_.metrics();
  const Engine::MemoryBreakdown mb = engine_.memory_breakdown();
  std::ostringstream os;
  os << "{\n"
     << "  \"serve\": {\n"
     << "    \"requests\": " << s.requests << ",\n"
     << "    \"queries\": " << s.queries << ",\n"
     << "    \"errors\": " << s.errors << ",\n"
     << "    \"shed\": " << s.shed << ",\n"
     << "    \"dispatches\": " << s.dispatches << ",\n"
     << "    \"dispatched_pairs\": " << s.dispatched_pairs << ",\n"
     << "    \"mean_batch_occupancy\": " << s.mean_batch_occupancy() << ",\n"
     << "    \"window_us\": " << s.window_us << ",\n"
     << "    \"accept_backoffs\": " << s.accept_backoffs << ",\n"
     << "    \"window_skips\": " << s.window_skips << ",\n"
     << "    \"latency_us\": {\"p50\": " << s.p50_us
     << ", \"p95\": " << s.p95_us << ", \"p99\": " << s.p99_us
     << ", \"max\": " << s.max_us << "}\n"
     << "  },\n"
     << "  \"engine\": {\n"
     << "    \"backend\": \"" << backend_name(engine_.backend()) << "\",\n"
     << "    \"payload\": \"" << engine_payload_kind(engine_) << "\",\n"
     << "    \"memory_bytes\": " << engine_.memory_usage() << ",\n"
     << "    \"mapped_bytes\": " << mb.mapped_bytes << ",\n"
     << "    \"owned_rows\": " << mb.owned_rows << ",\n"
     << "    \"total_rows\": " << mb.total_rows << ",\n"
     << "    \"port_matrix_bytes\": " << mb.port_matrix_bytes << ",\n"
     << "    \"port_matrix_dense_bytes\": " << mb.port_matrix_dense_bytes
     << ",\n"
     << "    \"threads\": " << engine_.num_threads() << ",\n"
     << "    \"batches\": " << m.batches << ",\n"
     << "    \"batch_queries\": " << m.batch_queries << ",\n"
     << "    \"single_queries\": " << m.single_queries << "\n"
     << "  },\n"
     << "  \"scheduler\": {\n"
     << "    \"tasks_executed\": " << m.sched_tasks_executed << ",\n"
     << "    \"steals\": " << m.sched_steals << ",\n"
     << "    \"injected\": " << m.sched_injected << "\n"
     << "  }\n"
     << "}\n";
  return os.str();
}

}  // namespace rsp
