#include "serve/server.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <istream>
#include <list>
#include <ostream>
#include <sstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define RSP_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "io/snapshot.h"

namespace rsp {

namespace {

using Clock = std::chrono::steady_clock;

// The payload kind a save() of this engine would write — what STATS calls
// the "resident structure" (derived from the resolved backend; never
// forces a deferred build).
const char* engine_payload_kind(const Engine& eng) {
  switch (eng.backend()) {
    case Backend::kBoundaryTree:
      return payload_kind_name(SnapshotPayloadKind::kBoundaryTree);
    case Backend::kDijkstraBaseline:
      return payload_kind_name(SnapshotPayloadKind::kSceneOnly);
    default:
      return payload_kind_name(SnapshotPayloadKind::kAllPairs);
  }
}

uint64_t us_between(Clock::time_point a, Clock::time_point b) {
  auto d = std::chrono::duration_cast<std::chrono::microseconds>(b - a);
  return d.count() < 0 ? 0 : static_cast<uint64_t>(d.count());
}

// LEN and BATCH are both length-valued and coalesce into one
// Engine::lengths() dispatch; PATH runs coalesce into Engine::paths().
// STATS dispatches alone (it must observe every earlier request answered).
enum class Kind { kLengths, kPaths, kStats };

Kind kind_of(Verb v) {
  switch (v) {
    case Verb::kLen:
    case Verb::kBatch:
      return Kind::kLengths;
    case Verb::kPath:
      return Kind::kPaths;
    default:
      return Kind::kStats;
  }
}

std::string trim_cr(std::string s) {
  if (!s.empty() && s.back() == '\r') s.pop_back();
  return s;
}

bool skippable(const std::string& line) {
  size_t i = line.find_first_not_of(" \t");
  return i == std::string::npos || line[i] == '#';
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

size_t LatencyHistogram::bucket_of(uint64_t us) {
  if (us < kExact) return static_cast<size_t>(us);
  const int msb = 63 - std::countl_zero(us);  // >= 4
  const size_t sub = (us >> (msb - 3)) & (kSub - 1);
  return kExact + static_cast<size_t>(msb - 4) * kSub + sub;
}

uint64_t LatencyHistogram::bucket_upper(size_t idx) {
  if (idx < kExact) return idx;
  const int msb = static_cast<int>((idx - kExact) / kSub) + 4;
  const uint64_t sub = (idx - kExact) % kSub;
  const uint64_t low = (uint64_t{1} << msb) | (sub << (msb - 3));
  return low + (uint64_t{1} << (msb - 3)) - 1;
}

void LatencyHistogram::record(uint64_t us) {
  ++buckets_[bucket_of(us)];
  ++count_;
  if (us > max_) max_ = us;
}

void LatencyHistogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  max_ = 0;
}

uint64_t LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the quantile element, 1-based: ceil(p * count), at least 1.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

// ---------------------------------------------------------------------------
// QueryServer — admission and dispatch
// ---------------------------------------------------------------------------

QueryServer::QueryServer(Engine engine, ServeOptions opt)
    : engine_(std::move(engine)), opt_(opt) {
  if (opt_.max_batch_pairs == 0) opt_.max_batch_pairs = 1;
  window_us_.store(opt_.coalesce_window_us, std::memory_order_relaxed);
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

QueryServer::~QueryServer() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<std::string> QueryServer::submit(Request req) {
  auto p = std::make_unique<Pending>();
  p->req = std::move(req);
  p->admitted = Clock::now();
  std::future<std::string> fut = p->response.get_future();
  size_t pending = 0;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (opt_.max_queue_depth > 0 && queue_.size() >= opt_.max_queue_depth) {
      pending = queue_.size();  // full: shed below, outside the lock
    } else {
      queue_.push_back(std::move(p));
    }
  }
  if (p) {
    // Bounded admission: the request never queues and never executes; the
    // client gets an immediate LOAD_SHED line (in order, via its future).
    // Deliberately not recorded in the latency histograms — a shed answer
    // is near-instant, and folding it in would drag the adaptive p95 down
    // exactly when the server is hottest.
    {
      std::lock_guard<std::mutex> slk(stats_mu_);
      ++requests_;
      ++errors_;
      ++shed_;
    }
    p->response.set_value(format_load_shed(pending));
    return fut;
  }
  queue_cv_.notify_all();
  return fut;
}

void QueryServer::dispatcher_main() {
  std::unique_lock<std::mutex> lk(queue_mu_);
  for (;;) {
    queue_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained: requests admitted before stop_ are
      continue;           // answered, the session writer never hangs
    }
    dispatch_group(lk);
  }
}

void QueryServer::dispatch_group(std::unique_lock<std::mutex>& lk) {
  const Kind head_kind = kind_of(queue_.front()->req.verb);

  // Count pairs in the maximal head-kind prefix (what a dispatch right now
  // would carry).
  auto prefix_pairs = [&] {
    size_t pairs = 0;
    for (const auto& p : queue_) {
      if (kind_of(p->req.verb) != head_kind) break;
      pairs += p->req.pairs.size();
      if (pairs >= opt_.max_batch_pairs) break;
    }
    return pairs;
  };

  // Coalescing window: give the pipeline a beat to fill the batch. Wakes
  // early when full (or shutting down); STATS never waits. The window is
  // the *live* (possibly adapted) one, not the configured ceiling.
  const uint64_t window = window_us_.load(std::memory_order_relaxed);
  if (head_kind != Kind::kStats && window > 0 &&
      prefix_pairs() < opt_.max_batch_pairs) {
    // The head is pinned for the whole wait: this thread is the only
    // consumer, producers only append. Wake early when the batch fills
    // (or on shutdown), else dispatch whatever arrived by the deadline.
    queue_cv_.wait_for(lk, std::chrono::microseconds(window),
                       [&] {
                         return stop_ ||
                                prefix_pairs() >= opt_.max_batch_pairs;
                       });
  }

  // Pop the maximal same-kind prefix within the pair budget. The head is
  // always taken, even when one BATCH alone exceeds max_batch_pairs —
  // otherwise it could never dispatch.
  std::vector<std::unique_ptr<Pending>> group;
  size_t pairs = 0;
  const Kind kind = kind_of(queue_.front()->req.verb);
  while (!queue_.empty() && kind_of(queue_.front()->req.verb) == kind) {
    size_t next = queue_.front()->req.pairs.size();
    if (!group.empty() && pairs + next > opt_.max_batch_pairs) break;
    pairs += next;
    group.push_back(std::move(queue_.front()));
    queue_.pop_front();
    if (kind == Kind::kStats) break;  // STATS dispatches alone
  }

  lk.unlock();

  if (kind == Kind::kStats) {
    finish(*group[0], stats_line());
    lk.lock();
    return;
  }

  // Flatten the group into one engine batch; each request owns the slice
  // [offset, offset + size) of the results.
  std::vector<PointPair> batch;
  batch.reserve(pairs);
  std::vector<size_t> offset(group.size());
  for (size_t g = 0; g < group.size(); ++g) {
    offset[g] = batch.size();
    batch.insert(batch.end(), group[g]->req.pairs.begin(),
                 group[g]->req.pairs.end());
  }

  // Count the dispatch before any promise is fulfilled: a session that
  // returns the moment its last response lands must already observe it.
  {
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++dispatches_;
    dispatched_pairs_ += pairs;
  }

  if (kind == Kind::kLengths) {
    Result<std::vector<Length>> lens = engine_.lengths(batch);
    for (size_t g = 0; g < group.size(); ++g) {
      Pending& p = *group[g];
      if (lens.ok()) {
        std::span<const Length> slice(lens->data() + offset[g],
                                      p.req.pairs.size());
        finish(p, p.req.verb == Verb::kBatch ? format_batch(slice)
                                             : format_length(slice[0]));
        continue;
      }
      // One invalid pair fails a whole Engine batch; re-run this request
      // alone so only the offending request degrades.
      if (p.req.verb == Verb::kLen) {
        Result<Length> one = engine_.length(p.req.pairs[0].s,
                                            p.req.pairs[0].t);
        finish(p, one.ok() ? format_length(*one) : format_error(one.status()));
      } else {
        Result<std::vector<Length>> own = engine_.lengths(p.req.pairs);
        finish(p, own.ok() ? format_batch(*own) : format_error(own.status()));
      }
    }
  } else {
    Result<std::vector<std::vector<Point>>> paths = engine_.paths(batch);
    for (size_t g = 0; g < group.size(); ++g) {
      Pending& p = *group[g];
      if (paths.ok()) {
        finish(p, format_path((*paths)[offset[g]]));
        continue;
      }
      Result<std::vector<Point>> one = engine_.path(p.req.pairs[0].s,
                                                    p.req.pairs[0].t);
      finish(p, one.ok() ? format_path(*one) : format_error(one.status()));
    }
  }

  lk.lock();
  // Lock order queue_mu_ -> stats_mu_ (finish/stats take stats_mu_ alone,
  // never the reverse). `drained` = nothing arrived while computing.
  maybe_adapt_window(queue_.empty());
}

void QueryServer::maybe_adapt_window(bool drained) {
  if (opt_.target_p95_us == 0 || opt_.coalesce_window_us == 0) return;
  // Busy regime: enough samples that one slow outlier cannot whipsaw the
  // window, few enough that adaptation reacts within a couple of herd
  // batches.
  constexpr uint64_t kMinEpochSamples = 32;
  const uint64_t cur = window_us_.load(std::memory_order_relaxed);
  const uint64_t grown = std::min<uint64_t>(opt_.coalesce_window_us,
                                            std::max<uint64_t>(1, cur * 2));
  uint64_t next = cur;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    // Decide once the epoch fills (busy regime), or — when the queue fully
    // drained — on whatever the epoch holds (sparse regime: at low traffic
    // waiting for 32 samples would mean never reacting, and a lone request
    // mostly pays the window itself, which is exactly the signal). Every
    // decision starts a fresh epoch so a past load regime cannot haunt the
    // current one.
    if (epoch_latency_.count() >= kMinEpochSamples ||
        (drained && epoch_latency_.count() > 0)) {
      // Hot epoch: halve toward 0 (requests dispatch the moment they
      // arrive). Healthy epoch: double back toward the configured ceiling.
      next = epoch_latency_.percentile(0.95) > opt_.target_p95_us ? cur / 2
                                                                  : grown;
      epoch_latency_.reset();
    }
  }
  if (next != cur) window_us_.store(next, std::memory_order_relaxed);
}

void QueryServer::finish(Pending& p, std::string response) {
  const bool is_error = response.rfind("ERR", 0) == 0;
  const uint64_t us = us_between(p.admitted, Clock::now());
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++requests_;
    if (is_error) {
      ++errors_;
    } else if (p.req.verb != Verb::kStats) {
      queries_ += p.req.pairs.size();
    }
    latency_.record(us);
    if (opt_.target_p95_us > 0) epoch_latency_.record(us);
  }
  p.response.set_value(std::move(response));
}

void QueryServer::count_protocol_error() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  ++requests_;
  ++errors_;
}

// ---------------------------------------------------------------------------
// Session loop
// ---------------------------------------------------------------------------

void QueryServer::serve(std::istream& in, std::ostream& out) {
  // Responses leave in request order: the reader appends one future per
  // request, the writer drains them FIFO. Computation overlaps input —
  // that pipelining is what gives the dispatcher batches to coalesce.
  std::mutex fifo_mu;
  std::condition_variable fifo_cv;
  std::deque<std::future<std::string>> fifo;
  bool done = false;

  std::thread writer([&] {
    for (;;) {
      std::future<std::string> f;
      {
        std::unique_lock<std::mutex> lk(fifo_mu);
        fifo_cv.wait(lk, [&] { return done || !fifo.empty(); });
        if (fifo.empty()) return;
        f = std::move(fifo.front());
        fifo.pop_front();
      }
      out << f.get() << '\n';
      out.flush();
    }
  });

  auto push = [&](std::future<std::string> f) {
    {
      std::lock_guard<std::mutex> lk(fifo_mu);
      fifo.push_back(std::move(f));
    }
    fifo_cv.notify_one();
  };
  auto push_ready = [&](std::string s) {
    std::promise<std::string> p;
    p.set_value(std::move(s));
    push(p.get_future());
  };

  std::string line;
  while (std::getline(in, line)) {
    line = trim_cr(std::move(line));
    if (skippable(line)) continue;
    ParsedRequest pr = parse_request(line, [&](std::string& next) {
      if (!std::getline(in, next)) return false;
      next = trim_cr(std::move(next));
      return true;
    });
    if (!pr.ok) {
      count_protocol_error();
      push_ready(format_error("BAD_REQUEST", pr.error));
      continue;
    }
    if (pr.req.verb == Verb::kQuit) {
      push_ready("OK bye");
      break;
    }
    push(submit(std::move(pr.req)));
  }

  {
    std::lock_guard<std::mutex> lk(fifo_mu);
    done = true;
  }
  fifo_cv.notify_all();
  writer.join();
}

// ---------------------------------------------------------------------------
// TCP front end
// ---------------------------------------------------------------------------

#ifdef RSP_HAVE_SOCKETS

namespace {

// Buffered std::streambuf over a connected socket; read()/write() only.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
#if !defined(MSG_NOSIGNAL) && defined(SO_NOSIGPIPE)
    // No per-send flag on this platform (macOS): suppress SIGPIPE on the
    // socket itself instead.
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
  }
  ~FdStreamBuf() override { sync(); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, rbuf_, sizeof(rbuf_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_write() < 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_write(); }

 private:
  int flush_write() {
    const char* p = pbase();
    while (p < pptr()) {
      // send + MSG_NOSIGNAL, not write: a client that disconnected before
      // reading its responses must surface as EPIPE (the stream goes bad
      // and the session winds down), never as a process-killing SIGPIPE —
      // one vanished client cannot take down every other session.
#ifdef MSG_NOSIGNAL
      ssize_t n = ::send(fd_, p, static_cast<size_t>(pptr() - p),
                         MSG_NOSIGNAL);
#else
      ssize_t n = ::write(fd_, p, static_cast<size_t>(pptr() - p));
#endif
      if (n < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      p += n;
    }
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
    return 0;
  }

  int fd_;
  char rbuf_[1 << 16];
  char wbuf_[1 << 16];
};

}  // namespace

Status QueryServer::serve_port(uint16_t port, size_t max_sessions,
                               const std::function<void(uint16_t)>& on_listening) {
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  // Publish the fd immediately, then re-check the sticky shutdown flag: a
  // shutdown_port() racing with startup either saw fd == -1 and set only
  // the flag (caught by this check) or saw the fd and shut it down
  // (bind/listen/accept fail, routed to the flag checks below). Either
  // way the request is never lost — critical for SIGINT handlers.
  listener_fd_.store(listener, std::memory_order_release);
  if (port_shutdown_.load(std::memory_order_acquire)) {
    listener_fd_.store(-1, std::memory_order_release);
    ::close(listener);
    return Status::Ok();
  }
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IoError(std::string("bind: ") + std::strerror(errno));
    listener_fd_.store(-1, std::memory_order_release);
    ::close(listener);
    return st;
  }
  if (::listen(listener, 16) < 0) {
    if (port_shutdown_.load(std::memory_order_acquire)) {
      listener_fd_.store(-1, std::memory_order_release);
      ::close(listener);
      return Status::Ok();  // a startup-racing shutdown broke the socket
    }
    Status st = Status::IoError(std::string("listen: ") + std::strerror(errno));
    listener_fd_.store(-1, std::memory_order_release);
    ::close(listener);
    return st;
  }
  if (on_listening) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    uint16_t actual = port;
    if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      actual = ntohs(bound.sin_port);
    }
    on_listening(actual);
  }
  // Session-per-connection reader pool: every accepted socket gets its own
  // thread running serve() (reader + in-order writer), all feeding the one
  // shared dispatcher — which is what lets the coalescer batch *across*
  // clients. max_sessions caps concurrency; at the cap the acceptor parks
  // and excess clients wait in the TCP backlog.
  struct Session {
    std::thread th;
    int fd = -1;       // guarded by mu; -1 once the session reclaimed it
    bool done = false;  // guarded by mu
  };
  std::mutex mu;               // guards sessions' fd/done, active
  std::condition_variable cv;  // signaled when a session ends
  std::list<Session> sessions;  // touched only by this (acceptor) thread
  size_t active = 0;

  // Joins finished sessions. Called with `lk` held; releases it around the
  // join (the session thread needs mu to mark itself done before exiting).
  auto reap = [&](std::unique_lock<std::mutex>& lk) {
    for (auto it = sessions.begin(); it != sessions.end();) {
      if (!it->done) {
        ++it;
        continue;
      }
      std::thread th = std::move(it->th);
      it = sessions.erase(it);
      lk.unlock();
      th.join();
      lk.lock();
    }
  };

  Status result = Status::Ok();
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu);
      reap(lk);
      // Parked at the concurrency cap we must still notice shutdown_port()
      // (async-signal-safe, so it cannot notify this cv): poll the sticky
      // flag on a coarse tick. Off the cap this costs nothing.
      while (max_sessions != 0 && active >= max_sessions &&
             !port_shutdown_.load(std::memory_order_acquire)) {
        cv.wait_for(lk, std::chrono::milliseconds(50));
      }
    }
    if (port_shutdown_.load(std::memory_order_acquire)) break;
    int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      // shutdown_port() (e.g. from a SIGINT handler) wakes the accept;
      // that is a clean stop, not an error.
      if (port_shutdown_.load(std::memory_order_acquire)) break;
      // Transient failures must not take down a server with live sessions:
      // EINTR is a signal, ECONNABORTED a client that hung up while queued
      // in the backlog. Everything else is a hard listener error.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Resource exhaustion (fd table full under a connection flood, or a
      // memory/buffer spike) is transient too: back off a beat — letting
      // live sessions finish and release fds — and keep serving rather
      // than dropping every connected client.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      result = Status::IoError(std::string("accept: ") + std::strerror(errno));
      break;
    }
    std::lock_guard<std::mutex> lk(mu);
    ++active;
    sessions.emplace_back();
    Session& s = sessions.back();  // stable address (std::list)
    s.fd = conn;
    // The lambda body cannot run until this lock_guard releases mu, so
    // s.th is assigned before the session can mark itself done.
    s.th = std::thread([this, conn, &s, &mu, &cv, &active] {
      {
        // Separate read and write streams over the one socket: serve()
        // runs the reader and the writer on different threads, and two
        // streams sharing a basic_ios would race on its iostate (eofbit
        // from a client hangup vs the writer's sentry checks).
        FdStreamBuf rbuf(conn);
        FdStreamBuf wbuf(conn);
        std::istream in(&rbuf);
        std::ostream out(&wbuf);
        serve(in, out);
      }
      {
        std::lock_guard<std::mutex> slk(mu);
        s.fd = -1;  // reclaim before close: the drain below only
                    // shutdown(2)s fds still owned by a live session
        s.done = true;
        --active;
      }
      ::close(conn);
      cv.notify_all();
    });
  }

  // Stop accepting before draining: no new session may sneak in.
  listener_fd_.store(-1, std::memory_order_release);
  ::close(listener);

  // Drain in-flight sessions: half-close their sockets (the reader sees
  // EOF and winds down; the write side stays open so pending responses
  // still flush), then wait for and join them all — also on the error
  // path, so no session thread ever outlives serve_port.
  {
    std::unique_lock<std::mutex> lk(mu);
    for (Session& s : sessions) {
      if (!s.done && s.fd >= 0) ::shutdown(s.fd, SHUT_RD);
    }
    // A peer that stopped *reading* can leave a session writer blocked in
    // send() with a full socket buffer — SHUT_RD cannot wake that. After a
    // grace period for the polite case, hard-close the write side too: the
    // blocked send fails (EPIPE, no SIGPIPE — MSG_NOSIGNAL) and the
    // session exits without the final flush. One stalled client must not
    // hang shutdown for everyone.
    if (!cv.wait_for(lk, std::chrono::seconds(1),
                     [&] { return active == 0; })) {
      for (Session& s : sessions) {
        if (!s.done && s.fd >= 0) ::shutdown(s.fd, SHUT_RDWR);
      }
    }
    cv.wait(lk, [&] { return active == 0; });
    reap(lk);
  }
  return result;
}

void QueryServer::shutdown_port() {
  port_shutdown_.store(true, std::memory_order_release);
  int fd = listener_fd_.load(std::memory_order_acquire);
  // shutdown() on a listening socket wakes a blocked accept() (EINVAL);
  // the fd itself is closed by serve_port on its way out.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

#else  // !RSP_HAVE_SOCKETS

Status QueryServer::serve_port(uint16_t, size_t,
                               const std::function<void(uint16_t)>&) {
  return Status::IoError("TCP serving is not supported on this platform");
}

void QueryServer::shutdown_port() {}

#endif

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

ServeStats QueryServer::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  ServeStats s;
  s.requests = requests_;
  s.queries = queries_;
  s.errors = errors_;
  s.shed = shed_;
  s.dispatches = dispatches_;
  s.dispatched_pairs = dispatched_pairs_;
  s.window_us = window_us_.load(std::memory_order_relaxed);
  s.p50_us = latency_.percentile(0.50);
  s.p95_us = latency_.percentile(0.95);
  s.p99_us = latency_.percentile(0.99);
  s.max_us = latency_.max();
  return s;
}

std::string QueryServer::stats_line() const {
  ServeStats s = stats();
  std::ostringstream os;
  os << "OK served=" << s.requests << " queries=" << s.queries
     << " errors=" << s.errors << " shed=" << s.shed
     << " dispatches=" << s.dispatches
     << " mean_batch=" << s.mean_batch_occupancy()
     << " window_us=" << s.window_us << " p50_us=" << s.p50_us
     << " p95_us=" << s.p95_us << " p99_us=" << s.p99_us
     << " max_us=" << s.max_us
     << " backend=" << backend_name(engine_.backend())
     << " payload=" << engine_payload_kind(engine_)
     << " mem_bytes=" << engine_.memory_usage();
  const Engine::MemoryBreakdown mb = engine_.memory_breakdown();
  if (mb.port_matrix_dense_bytes > 0) {
    os << " port_bytes=" << mb.port_matrix_bytes
       << " port_dense_bytes=" << mb.port_matrix_dense_bytes;
  }
  return os.str();
}

std::string QueryServer::stats_json() const {
  ServeStats s = stats();
  EngineMetrics m = engine_.metrics();
  const Engine::MemoryBreakdown mb = engine_.memory_breakdown();
  std::ostringstream os;
  os << "{\n"
     << "  \"serve\": {\n"
     << "    \"requests\": " << s.requests << ",\n"
     << "    \"queries\": " << s.queries << ",\n"
     << "    \"errors\": " << s.errors << ",\n"
     << "    \"shed\": " << s.shed << ",\n"
     << "    \"dispatches\": " << s.dispatches << ",\n"
     << "    \"dispatched_pairs\": " << s.dispatched_pairs << ",\n"
     << "    \"mean_batch_occupancy\": " << s.mean_batch_occupancy() << ",\n"
     << "    \"window_us\": " << s.window_us << ",\n"
     << "    \"latency_us\": {\"p50\": " << s.p50_us
     << ", \"p95\": " << s.p95_us << ", \"p99\": " << s.p99_us
     << ", \"max\": " << s.max_us << "}\n"
     << "  },\n"
     << "  \"engine\": {\n"
     << "    \"backend\": \"" << backend_name(engine_.backend()) << "\",\n"
     << "    \"payload\": \"" << engine_payload_kind(engine_) << "\",\n"
     << "    \"memory_bytes\": " << engine_.memory_usage() << ",\n"
     << "    \"port_matrix_bytes\": " << mb.port_matrix_bytes << ",\n"
     << "    \"port_matrix_dense_bytes\": " << mb.port_matrix_dense_bytes
     << ",\n"
     << "    \"threads\": " << engine_.num_threads() << ",\n"
     << "    \"batches\": " << m.batches << ",\n"
     << "    \"batch_queries\": " << m.batch_queries << ",\n"
     << "    \"single_queries\": " << m.single_queries << "\n"
     << "  },\n"
     << "  \"scheduler\": {\n"
     << "    \"tasks_executed\": " << m.sched_tasks_executed << ",\n"
     << "    \"steals\": " << m.sched_steals << ",\n"
     << "    \"injected\": " << m.sched_injected << "\n"
     << "  }\n"
     << "}\n";
  return os.str();
}

}  // namespace rsp
