#include "serve/server.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define RSP_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace rsp {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t us_between(Clock::time_point a, Clock::time_point b) {
  auto d = std::chrono::duration_cast<std::chrono::microseconds>(b - a);
  return d.count() < 0 ? 0 : static_cast<uint64_t>(d.count());
}

// LEN and BATCH are both length-valued and coalesce into one
// Engine::lengths() dispatch; PATH runs coalesce into Engine::paths().
// STATS dispatches alone (it must observe every earlier request answered).
enum class Kind { kLengths, kPaths, kStats };

Kind kind_of(Verb v) {
  switch (v) {
    case Verb::kLen:
    case Verb::kBatch:
      return Kind::kLengths;
    case Verb::kPath:
      return Kind::kPaths;
    default:
      return Kind::kStats;
  }
}

std::string trim_cr(std::string s) {
  if (!s.empty() && s.back() == '\r') s.pop_back();
  return s;
}

bool skippable(const std::string& line) {
  size_t i = line.find_first_not_of(" \t");
  return i == std::string::npos || line[i] == '#';
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

size_t LatencyHistogram::bucket_of(uint64_t us) {
  if (us < kExact) return static_cast<size_t>(us);
  const int msb = 63 - std::countl_zero(us);  // >= 4
  const size_t sub = (us >> (msb - 3)) & (kSub - 1);
  return kExact + static_cast<size_t>(msb - 4) * kSub + sub;
}

uint64_t LatencyHistogram::bucket_upper(size_t idx) {
  if (idx < kExact) return idx;
  const int msb = static_cast<int>((idx - kExact) / kSub) + 4;
  const uint64_t sub = (idx - kExact) % kSub;
  const uint64_t low = (uint64_t{1} << msb) | (sub << (msb - 3));
  return low + (uint64_t{1} << (msb - 3)) - 1;
}

void LatencyHistogram::record(uint64_t us) {
  ++buckets_[bucket_of(us)];
  ++count_;
  if (us > max_) max_ = us;
}

uint64_t LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the quantile element, 1-based: ceil(p * count), at least 1.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

// ---------------------------------------------------------------------------
// QueryServer — admission and dispatch
// ---------------------------------------------------------------------------

QueryServer::QueryServer(Engine engine, ServeOptions opt)
    : engine_(std::move(engine)), opt_(opt) {
  if (opt_.max_batch_pairs == 0) opt_.max_batch_pairs = 1;
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

QueryServer::~QueryServer() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<std::string> QueryServer::submit(Request req) {
  auto p = std::make_unique<Pending>();
  p->req = std::move(req);
  p->admitted = Clock::now();
  std::future<std::string> fut = p->response.get_future();
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    queue_.push_back(std::move(p));
  }
  queue_cv_.notify_all();
  return fut;
}

void QueryServer::dispatcher_main() {
  std::unique_lock<std::mutex> lk(queue_mu_);
  for (;;) {
    queue_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained: requests admitted before stop_ are
      continue;           // answered, the session writer never hangs
    }
    dispatch_group(lk);
  }
}

void QueryServer::dispatch_group(std::unique_lock<std::mutex>& lk) {
  const Kind head_kind = kind_of(queue_.front()->req.verb);

  // Count pairs in the maximal head-kind prefix (what a dispatch right now
  // would carry).
  auto prefix_pairs = [&] {
    size_t pairs = 0;
    for (const auto& p : queue_) {
      if (kind_of(p->req.verb) != head_kind) break;
      pairs += p->req.pairs.size();
      if (pairs >= opt_.max_batch_pairs) break;
    }
    return pairs;
  };

  // Coalescing window: give the pipeline a beat to fill the batch. Wakes
  // early when full (or shutting down); STATS never waits.
  if (head_kind != Kind::kStats && opt_.coalesce_window_us > 0 &&
      prefix_pairs() < opt_.max_batch_pairs) {
    // The head is pinned for the whole wait: this thread is the only
    // consumer, producers only append. Wake early when the batch fills
    // (or on shutdown), else dispatch whatever arrived by the deadline.
    queue_cv_.wait_for(lk, std::chrono::microseconds(opt_.coalesce_window_us),
                       [&] {
                         return stop_ ||
                                prefix_pairs() >= opt_.max_batch_pairs;
                       });
  }

  // Pop the maximal same-kind prefix within the pair budget. The head is
  // always taken, even when one BATCH alone exceeds max_batch_pairs —
  // otherwise it could never dispatch.
  std::vector<std::unique_ptr<Pending>> group;
  size_t pairs = 0;
  const Kind kind = kind_of(queue_.front()->req.verb);
  while (!queue_.empty() && kind_of(queue_.front()->req.verb) == kind) {
    size_t next = queue_.front()->req.pairs.size();
    if (!group.empty() && pairs + next > opt_.max_batch_pairs) break;
    pairs += next;
    group.push_back(std::move(queue_.front()));
    queue_.pop_front();
    if (kind == Kind::kStats) break;  // STATS dispatches alone
  }

  lk.unlock();

  if (kind == Kind::kStats) {
    finish(*group[0], stats_line());
    lk.lock();
    return;
  }

  // Flatten the group into one engine batch; each request owns the slice
  // [offset, offset + size) of the results.
  std::vector<PointPair> batch;
  batch.reserve(pairs);
  std::vector<size_t> offset(group.size());
  for (size_t g = 0; g < group.size(); ++g) {
    offset[g] = batch.size();
    batch.insert(batch.end(), group[g]->req.pairs.begin(),
                 group[g]->req.pairs.end());
  }

  // Count the dispatch before any promise is fulfilled: a session that
  // returns the moment its last response lands must already observe it.
  {
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++dispatches_;
    dispatched_pairs_ += pairs;
  }

  if (kind == Kind::kLengths) {
    Result<std::vector<Length>> lens = engine_.lengths(batch);
    for (size_t g = 0; g < group.size(); ++g) {
      Pending& p = *group[g];
      if (lens.ok()) {
        std::span<const Length> slice(lens->data() + offset[g],
                                      p.req.pairs.size());
        finish(p, p.req.verb == Verb::kBatch ? format_batch(slice)
                                             : format_length(slice[0]));
        continue;
      }
      // One invalid pair fails a whole Engine batch; re-run this request
      // alone so only the offending request degrades.
      if (p.req.verb == Verb::kLen) {
        Result<Length> one = engine_.length(p.req.pairs[0].s,
                                            p.req.pairs[0].t);
        finish(p, one.ok() ? format_length(*one) : format_error(one.status()));
      } else {
        Result<std::vector<Length>> own = engine_.lengths(p.req.pairs);
        finish(p, own.ok() ? format_batch(*own) : format_error(own.status()));
      }
    }
  } else {
    Result<std::vector<std::vector<Point>>> paths = engine_.paths(batch);
    for (size_t g = 0; g < group.size(); ++g) {
      Pending& p = *group[g];
      if (paths.ok()) {
        finish(p, format_path((*paths)[offset[g]]));
        continue;
      }
      Result<std::vector<Point>> one = engine_.path(p.req.pairs[0].s,
                                                    p.req.pairs[0].t);
      finish(p, one.ok() ? format_path(*one) : format_error(one.status()));
    }
  }

  lk.lock();
}

void QueryServer::finish(Pending& p, std::string response) {
  const bool is_error = response.rfind("ERR", 0) == 0;
  const uint64_t us = us_between(p.admitted, Clock::now());
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++requests_;
    if (is_error) {
      ++errors_;
    } else if (p.req.verb != Verb::kStats) {
      queries_ += p.req.pairs.size();
    }
    latency_.record(us);
  }
  p.response.set_value(std::move(response));
}

void QueryServer::count_protocol_error() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  ++requests_;
  ++errors_;
}

// ---------------------------------------------------------------------------
// Session loop
// ---------------------------------------------------------------------------

void QueryServer::serve(std::istream& in, std::ostream& out) {
  // Responses leave in request order: the reader appends one future per
  // request, the writer drains them FIFO. Computation overlaps input —
  // that pipelining is what gives the dispatcher batches to coalesce.
  std::mutex fifo_mu;
  std::condition_variable fifo_cv;
  std::deque<std::future<std::string>> fifo;
  bool done = false;

  std::thread writer([&] {
    for (;;) {
      std::future<std::string> f;
      {
        std::unique_lock<std::mutex> lk(fifo_mu);
        fifo_cv.wait(lk, [&] { return done || !fifo.empty(); });
        if (fifo.empty()) return;
        f = std::move(fifo.front());
        fifo.pop_front();
      }
      out << f.get() << '\n';
      out.flush();
    }
  });

  auto push = [&](std::future<std::string> f) {
    {
      std::lock_guard<std::mutex> lk(fifo_mu);
      fifo.push_back(std::move(f));
    }
    fifo_cv.notify_one();
  };
  auto push_ready = [&](std::string s) {
    std::promise<std::string> p;
    p.set_value(std::move(s));
    push(p.get_future());
  };

  std::string line;
  while (std::getline(in, line)) {
    line = trim_cr(std::move(line));
    if (skippable(line)) continue;
    ParsedRequest pr = parse_request(line, [&](std::string& next) {
      if (!std::getline(in, next)) return false;
      next = trim_cr(std::move(next));
      return true;
    });
    if (!pr.ok) {
      count_protocol_error();
      push_ready(format_error("BAD_REQUEST", pr.error));
      continue;
    }
    if (pr.req.verb == Verb::kQuit) {
      push_ready("OK bye");
      break;
    }
    push(submit(std::move(pr.req)));
  }

  {
    std::lock_guard<std::mutex> lk(fifo_mu);
    done = true;
  }
  fifo_cv.notify_all();
  writer.join();
}

// ---------------------------------------------------------------------------
// TCP front end
// ---------------------------------------------------------------------------

#ifdef RSP_HAVE_SOCKETS

namespace {

// Buffered std::streambuf over a connected socket; read()/write() only.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
  }
  ~FdStreamBuf() override { sync(); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, rbuf_, sizeof(rbuf_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_write() < 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_write(); }

 private:
  int flush_write() {
    const char* p = pbase();
    while (p < pptr()) {
      ssize_t n = ::write(fd_, p, static_cast<size_t>(pptr() - p));
      if (n < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      p += n;
    }
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
    return 0;
  }

  int fd_;
  char rbuf_[1 << 16];
  char wbuf_[1 << 16];
};

}  // namespace

Status QueryServer::serve_port(uint16_t port, size_t max_sessions,
                               const std::function<void(uint16_t)>& on_listening) {
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  // Publish the fd immediately, then re-check the sticky shutdown flag: a
  // shutdown_port() racing with startup either saw fd == -1 and set only
  // the flag (caught by this check) or saw the fd and shut it down
  // (bind/listen/accept fail, routed to the flag checks below). Either
  // way the request is never lost — critical for SIGINT handlers.
  listener_fd_.store(listener, std::memory_order_release);
  if (port_shutdown_.load(std::memory_order_acquire)) {
    listener_fd_.store(-1, std::memory_order_release);
    ::close(listener);
    return Status::Ok();
  }
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IoError(std::string("bind: ") + std::strerror(errno));
    listener_fd_.store(-1, std::memory_order_release);
    ::close(listener);
    return st;
  }
  if (::listen(listener, 16) < 0) {
    if (port_shutdown_.load(std::memory_order_acquire)) {
      listener_fd_.store(-1, std::memory_order_release);
      ::close(listener);
      return Status::Ok();  // a startup-racing shutdown broke the socket
    }
    Status st = Status::IoError(std::string("listen: ") + std::strerror(errno));
    listener_fd_.store(-1, std::memory_order_release);
    ::close(listener);
    return st;
  }
  if (on_listening) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    uint16_t actual = port;
    if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      actual = ntohs(bound.sin_port);
    }
    on_listening(actual);
  }
  // One session at a time, by design (ISSUE 4): the interesting
  // concurrency lives in the dispatcher/engine below, not in the accept
  // loop. A rejected-while-busy client simply queues in the TCP backlog.
  size_t sessions = 0;
  for (;;) {
    if (port_shutdown_.load(std::memory_order_acquire)) break;
    int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      // shutdown_port() (e.g. from a SIGINT handler) wakes the accept;
      // that is a clean stop, not an error.
      if (port_shutdown_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      Status st =
          Status::IoError(std::string("accept: ") + std::strerror(errno));
      listener_fd_.store(-1, std::memory_order_release);
      ::close(listener);
      return st;
    }
    {
      // Separate read and write streams over the one socket: serve() runs
      // the reader and the writer on different threads, and two streams
      // sharing a basic_ios would race on its iostate (eofbit from a
      // client hangup vs the writer's sentry checks).
      FdStreamBuf rbuf(conn);
      FdStreamBuf wbuf(conn);
      std::istream in(&rbuf);
      std::ostream out(&wbuf);
      serve(in, out);
    }
    ::close(conn);
    if (max_sessions != 0 && ++sessions >= max_sessions) break;
  }
  listener_fd_.store(-1, std::memory_order_release);
  ::close(listener);
  return Status::Ok();
}

void QueryServer::shutdown_port() {
  port_shutdown_.store(true, std::memory_order_release);
  int fd = listener_fd_.load(std::memory_order_acquire);
  // shutdown() on a listening socket wakes a blocked accept() (EINVAL);
  // the fd itself is closed by serve_port on its way out.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

#else  // !RSP_HAVE_SOCKETS

Status QueryServer::serve_port(uint16_t, size_t,
                               const std::function<void(uint16_t)>&) {
  return Status::IoError("TCP serving is not supported on this platform");
}

void QueryServer::shutdown_port() {}

#endif

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

ServeStats QueryServer::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  ServeStats s;
  s.requests = requests_;
  s.queries = queries_;
  s.errors = errors_;
  s.dispatches = dispatches_;
  s.dispatched_pairs = dispatched_pairs_;
  s.p50_us = latency_.percentile(0.50);
  s.p95_us = latency_.percentile(0.95);
  s.p99_us = latency_.percentile(0.99);
  s.max_us = latency_.max();
  return s;
}

std::string QueryServer::stats_line() const {
  ServeStats s = stats();
  std::ostringstream os;
  os << "OK served=" << s.requests << " queries=" << s.queries
     << " errors=" << s.errors << " dispatches=" << s.dispatches
     << " mean_batch=" << s.mean_batch_occupancy() << " p50_us=" << s.p50_us
     << " p95_us=" << s.p95_us << " p99_us=" << s.p99_us
     << " max_us=" << s.max_us;
  return os.str();
}

std::string QueryServer::stats_json() const {
  ServeStats s = stats();
  EngineMetrics m = engine_.metrics();
  std::ostringstream os;
  os << "{\n"
     << "  \"serve\": {\n"
     << "    \"requests\": " << s.requests << ",\n"
     << "    \"queries\": " << s.queries << ",\n"
     << "    \"errors\": " << s.errors << ",\n"
     << "    \"dispatches\": " << s.dispatches << ",\n"
     << "    \"dispatched_pairs\": " << s.dispatched_pairs << ",\n"
     << "    \"mean_batch_occupancy\": " << s.mean_batch_occupancy() << ",\n"
     << "    \"latency_us\": {\"p50\": " << s.p50_us
     << ", \"p95\": " << s.p95_us << ", \"p99\": " << s.p99_us
     << ", \"max\": " << s.max_us << "}\n"
     << "  },\n"
     << "  \"engine\": {\n"
     << "    \"backend\": \"" << backend_name(engine_.backend()) << "\",\n"
     << "    \"threads\": " << engine_.num_threads() << ",\n"
     << "    \"batches\": " << m.batches << ",\n"
     << "    \"batch_queries\": " << m.batch_queries << ",\n"
     << "    \"single_queries\": " << m.single_queries << "\n"
     << "  },\n"
     << "  \"scheduler\": {\n"
     << "    \"tasks_executed\": " << m.sched_tasks_executed << ",\n"
     << "    \"steals\": " << m.sched_steals << ",\n"
     << "    \"injected\": " << m.sched_injected << "\n"
     << "  }\n"
     << "}\n";
  return os.str();
}

}  // namespace rsp
