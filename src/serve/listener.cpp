#include "serve/listener.h"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <istream>
#include <list>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define RSP_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace rsp {

#ifdef RSP_HAVE_SOCKETS

namespace {

// Buffered std::streambuf over a connected socket; read()/write() only.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
#if !defined(MSG_NOSIGNAL) && defined(SO_NOSIGPIPE)
    // No per-send flag on this platform (macOS): suppress SIGPIPE on the
    // socket itself instead.
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
  }
  ~FdStreamBuf() override { sync(); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, rbuf_, sizeof(rbuf_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_write() < 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_write(); }

 private:
  int flush_write() {
    const char* p = pbase();
    while (p < pptr()) {
      // send + MSG_NOSIGNAL, not write: a client that disconnected before
      // reading its responses must surface as EPIPE (the stream goes bad
      // and the session winds down), never as a process-killing SIGPIPE —
      // one vanished client cannot take down every other session.
#ifdef MSG_NOSIGNAL
      ssize_t n = ::send(fd_, p, static_cast<size_t>(pptr() - p),
                         MSG_NOSIGNAL);
#else
      ssize_t n = ::write(fd_, p, static_cast<size_t>(pptr() - p));
#endif
      if (n < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      p += n;
    }
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
    return 0;
  }

  int fd_;
  char rbuf_[1 << 16];
  char wbuf_[1 << 16];
};

}  // namespace

Status TcpSessionLoop::run(uint16_t port, size_t max_sessions,
                           const std::function<void(uint16_t)>& on_listening,
                           const SessionFn& session,
                           const std::function<void()>& on_backoff) {
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  // Publish the fd immediately, then re-check the sticky shutdown flag: a
  // shutdown() racing with startup either saw fd == -1 and set only the
  // flag (caught by this check) or saw the fd and shut it down
  // (bind/listen/accept fail, routed to the flag checks below). Either way
  // the request is never lost — critical for SIGINT handlers.
  listener_fd_.store(listener, std::memory_order_release);
  if (shutdown_.load(std::memory_order_acquire)) {
    listener_fd_.store(-1, std::memory_order_release);
    ::close(listener);
    return Status::Ok();
  }
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IoError(std::string("bind: ") + std::strerror(errno));
    listener_fd_.store(-1, std::memory_order_release);
    ::close(listener);
    return st;
  }
  if (::listen(listener, 16) < 0) {
    if (shutdown_.load(std::memory_order_acquire)) {
      listener_fd_.store(-1, std::memory_order_release);
      ::close(listener);
      return Status::Ok();  // a startup-racing shutdown broke the socket
    }
    Status st = Status::IoError(std::string("listen: ") + std::strerror(errno));
    listener_fd_.store(-1, std::memory_order_release);
    ::close(listener);
    return st;
  }
  if (on_listening) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    uint16_t actual = port;
    if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      actual = ntohs(bound.sin_port);
    }
    on_listening(actual);
  }
  // Session-per-connection pool: every accepted socket gets its own thread
  // running the session body. max_sessions caps concurrency; at the cap the
  // acceptor parks and excess clients wait in the TCP backlog.
  struct Session {
    std::thread th;
    int fd = -1;        // guarded by mu; -1 once the session reclaimed it
    bool done = false;  // guarded by mu
  };
  std::mutex mu;                // guards sessions' fd/done, active
  std::condition_variable cv;   // signaled when a session ends
  std::list<Session> sessions;  // touched only by this (acceptor) thread
  size_t active = 0;

  // Joins finished sessions. Called with `lk` held; releases it around the
  // join (the session thread needs mu to mark itself done before exiting).
  auto reap = [&](std::unique_lock<std::mutex>& lk) {
    for (auto it = sessions.begin(); it != sessions.end();) {
      if (!it->done) {
        ++it;
        continue;
      }
      std::thread th = std::move(it->th);
      it = sessions.erase(it);
      lk.unlock();
      th.join();
      lk.lock();
    }
  };

  Status result = Status::Ok();
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu);
      reap(lk);
      // Parked at the concurrency cap we must still notice shutdown()
      // (async-signal-safe, so it cannot notify this cv): poll the sticky
      // flag on a coarse tick. Off the cap this costs nothing.
      while (max_sessions != 0 && active >= max_sessions &&
             !shutdown_.load(std::memory_order_acquire)) {
        cv.wait_for(lk, std::chrono::milliseconds(50));
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) break;
    int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      // shutdown() (e.g. from a SIGINT handler) wakes the accept; that is
      // a clean stop, not an error.
      if (shutdown_.load(std::memory_order_acquire)) break;
      // Transient failures must not take down a server with live sessions:
      // EINTR is a signal, ECONNABORTED a client that hung up while queued
      // in the backlog. Everything else is a hard listener error.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Resource exhaustion (fd table full under a connection flood, or a
      // memory/buffer spike) is transient too: back off a beat — letting
      // live sessions finish and release fds — and keep serving rather
      // than dropping every connected client. on_backoff fires first so
      // the owner can mark the pause as fd pressure, not idle time.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        if (on_backoff) on_backoff();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      result = Status::IoError(std::string("accept: ") + std::strerror(errno));
      break;
    }
    std::lock_guard<std::mutex> lk(mu);
    ++active;
    sessions.emplace_back();
    Session& s = sessions.back();  // stable address (std::list)
    s.fd = conn;
    // The lambda body cannot run until this lock_guard releases mu, so
    // s.th is assigned before the session can mark itself done.
    s.th = std::thread([conn, &s, &mu, &cv, &active, &session] {
      {
        // Separate read and write streams over the one socket: a session
        // may run its reader and writer on different threads, and two
        // streams sharing a basic_ios would race on its iostate (eofbit
        // from a client hangup vs the writer's sentry checks).
        FdStreamBuf rbuf(conn);
        FdStreamBuf wbuf(conn);
        std::istream in(&rbuf);
        std::ostream out(&wbuf);
        session(in, out);
      }
      {
        std::lock_guard<std::mutex> slk(mu);
        s.fd = -1;  // reclaim before close: the drain below only
                    // shutdown(2)s fds still owned by a live session
        s.done = true;
        --active;
      }
      ::close(conn);
      cv.notify_all();
    });
  }

  // Stop accepting before draining: no new session may sneak in.
  listener_fd_.store(-1, std::memory_order_release);
  ::close(listener);

  // Drain in-flight sessions: half-close their sockets (the reader sees
  // EOF and winds down; the write side stays open so pending responses
  // still flush), then wait for and join them all — also on the error
  // path, so no session thread ever outlives run().
  {
    std::unique_lock<std::mutex> lk(mu);
    for (Session& s : sessions) {
      if (!s.done && s.fd >= 0) ::shutdown(s.fd, SHUT_RD);
    }
    // A peer that stopped *reading* can leave a session writer blocked in
    // send() with a full socket buffer — SHUT_RD cannot wake that. After a
    // grace period for the polite case, hard-close the write side too: the
    // blocked send fails (EPIPE, no SIGPIPE — MSG_NOSIGNAL) and the
    // session exits without the final flush. One stalled client must not
    // hang shutdown for everyone.
    if (!cv.wait_for(lk, std::chrono::seconds(1),
                     [&] { return active == 0; })) {
      for (Session& s : sessions) {
        if (!s.done && s.fd >= 0) ::shutdown(s.fd, SHUT_RDWR);
      }
    }
    cv.wait(lk, [&] { return active == 0; });
    reap(lk);
  }
  return result;
}

void TcpSessionLoop::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  int fd = listener_fd_.load(std::memory_order_acquire);
  // shutdown() on a listening socket wakes a blocked accept() (EINVAL);
  // the fd itself is closed by run() on its way out.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

#else  // !RSP_HAVE_SOCKETS

Status TcpSessionLoop::run(uint16_t, size_t,
                           const std::function<void(uint16_t)>&,
                           const SessionFn&, const std::function<void()>&) {
  return Status::IoError("TCP serving is not supported on this platform");
}

void TcpSessionLoop::shutdown() {}

#endif

}  // namespace rsp
