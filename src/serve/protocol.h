#pragma once
// Wire protocol for the resident query server (serve/server.h).
//
// Line-oriented, transport-independent: the same grammar is spoken over
// stdin/stdout (`rspcli serve --stdio`) and over a TCP session
// (`rspcli serve --port N`), and the parser here never touches a socket or
// a stream — it consumes one request line plus, for BATCH, continuation
// lines pulled through a caller-supplied LineSource. That split is what
// makes the parser unit-testable against malformed input without standing
// up a server.
//
// Grammar (one request per line; fields separated by spaces or tabs):
//
//   request  = "LEN"   point point        ; shortest-path length
//            | "PATH"  point point        ; shortest-path polyline
//            | "BATCH" count              ; count pair lines follow,
//                                         ;   each "point point"
//            | "STATS"                    ; server telemetry snapshot
//            | "QUIT"                     ; end the session
//   point    = x "," y                    ; signed 64-bit decimal integers
//
// Every request produces exactly one response line:
//
//   "OK"  ...payload...                   ; see the formatters below
//   "ERR" code SP message                 ; code is BAD_REQUEST for
//                                         ;   protocol violations,
//                                         ;   LOAD_SHED when the admission
//                                         ;   queue is full (server-side
//                                         ;   backpressure; retry later),
//                                         ;   SHARD_DOWN when a fleet
//                                         ;   router exhausted its retries
//                                         ;   against a shard server
//                                         ;   (serve/router.h),
//                                         ;   NOT_OWNER when an owned-rows
//                                         ;   shard (MountMode::kOwnedRows)
//                                         ;   lacks the query's source rows
//                                         ;   — the message is exactly
//                                         ;   "<row_lo> <row_hi>" (the
//                                         ;   shard's owned window) and the
//                                         ;   router re-routes instead of
//                                         ;   relaying it (clients only see
//                                         ;   it when talking to a shard
//                                         ;   directly),
//                                         ;   else a StatusCode name
//                                         ;   (api/status.h)
//
// Blank lines and lines starting with '#' are skipped by the session layer
// (handy for scripted herds); they are not part of the grammar.
//
// Robustness contract (tests/serve_test.cpp): malformed verbs, unparsable
// coordinates, out-of-range values, oversized BATCH counts and mid-stream
// EOF all come back as ERR BAD_REQUEST — parsing never throws and never
// crashes. A malformed BATCH header consumes no continuation lines, so the
// remainder of a desynchronized session surfaces as further parse errors
// rather than silently mis-paired queries.

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/engine.h"
#include "api/status.h"

namespace rsp {

// Upper bound on BATCH count: large enough for any realistic coalesced
// herd, small enough that a hostile count cannot make the server reserve
// unbounded memory before the pair lines arrive.
inline constexpr uint64_t kMaxBatchPairs = 1u << 20;

enum class Verb {
  kLen = 0,
  kPath,
  kBatch,
  kStats,
  kQuit,
};

const char* verb_name(Verb v);

struct Request {
  Verb verb = Verb::kLen;
  // LEN/PATH: pairs.size() == 1. BATCH: the k continuation pairs, in wire
  // order. STATS/QUIT: empty.
  std::vector<PointPair> pairs;
};

// Pulls the next raw line of the session (BATCH continuation lines).
// Returns false at end of input.
using LineSource = std::function<bool(std::string&)>;

struct ParsedRequest {
  bool ok = false;
  Request req;
  std::string error;  // BAD_REQUEST detail when !ok
};

// Parses one request from `line`, reading BATCH payload lines from
// `next_line`. Never throws.
ParsedRequest parse_request(std::string_view line, const LineSource& next_line);

// Response formatters — the single source of truth for the wire format
// (the CI smoke diff and serve_test both compare against these).
std::string format_length(Length len);                       // "OK 42"
std::string format_batch(std::span<const Length> lens);      // "OK 2 42 7"
std::string format_path(std::span<const Point> pts);         // "OK (0,1) (3,1)"
std::string format_error(const Status& st);                  // "ERR CODE msg"
std::string format_error(std::string_view code, std::string_view message);
// "ERR LOAD_SHED admission queue full (N pending)" — the bounded-admission
// response (ServeOptions::max_queue_depth). The request was NOT executed;
// the client should back off and retry.
std::string format_load_shed(size_t pending);
// "ERR NOT_OWNER <row_lo> <row_hi>" — an owned-rows shard refusing a query
// whose source rows live on another shard. Identical to
// format_error(Status::NotOwner(...)) because the engine encodes its owned
// window as the status message; this formatter pins the wire form the
// router's re-route parser (serve/router.cpp) depends on.
std::string format_not_owner(size_t row_lo, size_t row_hi);

}  // namespace rsp
