#pragma once
// QueryServer — the resident half of build-once/serve-many.
//
// One server owns one Engine (usually restored from a snapshot) and
// answers protocol requests (serve/protocol.h) for the lifetime of the
// process, amortizing the expensive build across millions of queries.
//
// Request flow:
//
//   session thread          dispatcher thread          engine scheduler
//   --------------          -----------------          ----------------
//   getline + parse   --->  admission queue
//   (order recorded)        coalesce same-kind    ---> lengths()/paths()
//                           prefix into a batch   <--- (work-stealing
//   writer thread     <---  fulfill per-request         fan-out)
//   (responses in           promises, record
//    request order)         latency telemetry
//
// Admission-queued requests are coalesced: consecutive length-valued
// requests (LEN, BATCH) merge into one Engine::lengths() dispatch, PATH
// runs merge into one Engine::paths() dispatch — each request owns a
// contiguous slice of the batch, so responses are exact per request. The
// dispatcher waits up to ServeOptions::coalesce_window_us after the first
// pending request for the batch to fill (bounded by max_batch_pairs);
// pipelined clients therefore ride the PR-2 work-stealing scheduler at
// full batch occupancy while a lone interactive request pays at most the
// window.
//
// A coalesced dispatch whose Engine batch fails (one invalid pair poisons
// an Engine batch by design) falls back to per-request execution, so one
// bad query degrades only its own response, never its batch neighbors'.
//
// Telemetry: per-request latency (admission -> response fulfillment) in a
// geometric histogram (p50/p95/p99/max within ~13%), queries served,
// dispatch count and batch occupancy, plus the Engine's own batch-dispatch
// and scheduler counters (EngineMetrics). STATS answers inline with a
// one-line snapshot ordered after every earlier request; stats_json()
// renders the full summary (written on shutdown by `rspcli serve`).
//
// Thread safety: serve()/serve_port() run one session at a time (the
// session reader and the response writer are the server's own two
// threads); stats()/stats_json() may be called from any thread.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "api/engine.h"
#include "serve/protocol.h"

namespace rsp {

struct ServeOptions {
  // Maximum point pairs coalesced into one engine dispatch. A single BATCH
  // request larger than this still dispatches (alone, in one batch).
  size_t max_batch_pairs = 256;
  // How long the dispatcher waits after the first pending request for the
  // batch to fill before dispatching what is there. 0 = dispatch
  // immediately (lowest latency, smallest batches).
  uint64_t coalesce_window_us = 200;
};

// Point-in-time telemetry snapshot (all counters since server start).
struct ServeStats {
  uint64_t requests = 0;    // protocol requests answered, including errors
  uint64_t queries = 0;     // point pairs answered (BATCH counts its k)
  uint64_t errors = 0;      // ERR responses (protocol + query errors)
  uint64_t dispatches = 0;  // engine batch dispatches
  uint64_t dispatched_pairs = 0;  // pairs across those dispatches
  uint64_t p50_us = 0;      // request latency percentiles, admission ->
  uint64_t p95_us = 0;      //   response fulfillment
  uint64_t p99_us = 0;
  uint64_t max_us = 0;

  double mean_batch_occupancy() const {
    return dispatches == 0 ? 0.0
                           : static_cast<double>(dispatched_pairs) /
                                 static_cast<double>(dispatches);
  }
};

// Geometric latency histogram: exact below 16 us, then 8 sub-buckets per
// power of two (relative error <= 2^-3). Fixed footprint, O(1) record —
// safe for millions of requests.
class LatencyHistogram {
 public:
  void record(uint64_t us);
  uint64_t count() const { return count_; }
  uint64_t max() const { return max_; }
  // Upper bound of the bucket holding the p-quantile (p in [0, 1]).
  uint64_t percentile(double p) const;

 private:
  static constexpr size_t kExact = 16;
  static constexpr size_t kSub = 8;  // sub-buckets per octave
  static constexpr size_t kBuckets = kExact + (64 - 4) * kSub;
  static size_t bucket_of(uint64_t us);
  static uint64_t bucket_upper(size_t idx);

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t max_ = 0;
};

class QueryServer {
 public:
  // Takes ownership of the engine. The dispatcher thread starts here.
  explicit QueryServer(Engine engine, ServeOptions opt = {});
  // Drains the admission queue, stops the dispatcher.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Runs one session: reads requests from `in`, writes one response line
  // per request to `out` in request order. Returns on QUIT or end of
  // input. Responses are pipelined: the reader keeps admitting requests
  // while earlier ones compute, so a piped herd coalesces into batches.
  void serve(std::istream& in, std::ostream& out);

  // Minimal blocking TCP front end: accepts one connection at a time and
  // runs serve() over it. port 0 binds an ephemeral port; on_listening
  // (when set) is invoked with the bound port after listen() succeeds and
  // before the first accept — the safe rendezvous for callers that need to
  // connect from another thread. max_sessions 0 = loop until accept fails.
  // Returns non-OK on socket/bind/listen failure.
  Status serve_port(uint16_t port, size_t max_sessions = 0,
                    const std::function<void(uint16_t)>& on_listening = {});

  // Ends a running serve_port() loop cleanly: a blocked accept wakes and
  // serve_port returns OK (an in-flight session finishes first). Async-
  // signal-safe (atomics + shutdown(2)) — callable from a SIGINT handler,
  // which is how `rspcli serve --port` makes its shutdown telemetry
  // reachable. The request is sticky and race-free against serve_port
  // startup: a call landing before the listener exists makes the next
  // serve_port return OK immediately instead of being lost.
  void shutdown_port();

  const Engine& engine() const { return engine_; }
  const ServeOptions& options() const { return opt_; }

  ServeStats stats() const;
  // One-line STATS payload (also the wire response), e.g.
  // "OK served=12 queries=40 errors=0 dispatches=3 mean_batch=13.3 ...".
  std::string stats_line() const;
  // Full JSON summary: serve counters + latency percentiles + engine and
  // scheduler telemetry. Written by `rspcli serve` on shutdown.
  std::string stats_json() const;

 private:
  struct Pending {
    Request req;
    std::chrono::steady_clock::time_point admitted;
    std::promise<std::string> response;
  };

  // Admits a parsed request; the future resolves to its response line.
  std::future<std::string> submit(Request req);
  void dispatcher_main();
  // Pops a maximal same-kind prefix (bounded by max_batch_pairs) and
  // answers it. Called with queue_mu_ held; releases it while computing.
  void dispatch_group(std::unique_lock<std::mutex>& lk);
  void finish(Pending& p, std::string response);
  void count_protocol_error();  // session-side BAD_REQUEST bookkeeping

  Engine engine_;
  ServeOptions opt_;

  std::atomic<int> listener_fd_{-1};        // valid while serve_port runs
  std::atomic<bool> port_shutdown_{false};  // set by shutdown_port()

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;  // guarded by queue_mu_
  bool stop_ = false;                           // guarded by queue_mu_

  mutable std::mutex stats_mu_;
  uint64_t requests_ = 0;          // guarded by stats_mu_
  uint64_t queries_ = 0;           // guarded by stats_mu_
  uint64_t errors_ = 0;            // guarded by stats_mu_
  uint64_t dispatches_ = 0;        // guarded by stats_mu_
  uint64_t dispatched_pairs_ = 0;  // guarded by stats_mu_
  LatencyHistogram latency_;       // guarded by stats_mu_

  std::thread dispatcher_;  // last member: joins before state is torn down
};

}  // namespace rsp
