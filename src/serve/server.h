#pragma once
// QueryServer — the resident half of build-once/serve-many.
//
// One server owns one Engine (usually restored from a snapshot) and
// answers protocol requests (serve/protocol.h) for the lifetime of the
// process, amortizing the expensive build across millions of queries.
//
// Request flow (any number of concurrent sessions):
//
//   session threads         dispatcher thread          engine scheduler
//   ---------------         -----------------          ----------------
//   getline + parse   --->  bounded admission queue
//   getline + parse   --->  coalesce same-kind    ---> lengths()/paths()
//   ...                     prefix into a batch   <--- (work-stealing
//   per-session writer <--- fulfill per-request         fan-out)
//   (responses in           promises, record
//    request order)         latency telemetry,
//                           adapt coalescing window
//
// Each session gets its own reader (the session thread) plus an in-order
// writer thread; all sessions feed the one shared dispatcher, so the batch
// coalescer sees cross-client herds — the workload the build-once/
// serve-many structure amortizes best. Per-session response order is exact
// (each session drains its own promise FIFO) even though global dispatch
// freely interleaves sessions.
//
// Admission-queued requests are coalesced: consecutive length-valued
// requests (LEN, BATCH) merge into one Engine::lengths() dispatch, PATH
// runs merge into one Engine::paths() dispatch — each request owns a
// contiguous slice of the batch, so responses are exact per request. The
// dispatcher waits up to ServeOptions::coalesce_window_us after the first
// pending request for the batch to fill (bounded by max_batch_pairs);
// pipelined clients therefore ride the PR-2 work-stealing scheduler at
// full batch occupancy while a lone interactive request pays at most the
// window.
//
// A coalesced dispatch whose Engine batch fails (one invalid pair poisons
// an Engine batch by design) falls back to per-request execution, so one
// bad query degrades only its own response, never its batch neighbors'.
//
// Admission is bounded (ServeOptions::max_queue_depth) and *fair across
// sessions*: the server tracks per-session queued counts, and when the
// queue is full it sheds from whichever session is over its fair share
// (max_queue_depth / active sessions). A request from a session within its
// share evicts the newest queued request of the hoggiest over-quota
// session instead of being refused — so one client flooding the queue
// sheds only its own requests, never a polite client's. Every shed answer
// is an immediate "ERR LOAD_SHED ..." line (the request never executes)
// and ticks the STATS/JSON-visible `shed` counter. Backpressure therefore
// costs one response line, not unbounded memory — and not another
// session's throughput.
//
// The coalescing window is adaptive (ServeOptions::target_p95_us): the
// dispatcher keeps an epoch latency histogram and, every few dozen
// requests, halves the live window when the epoch p95 exceeds the target
// (shedding wait-time toward 0) or doubles it back toward the configured
// coalesce_window_us when latency is healthy. A fully drained queue
// forces a decision on the partial epoch (sparse traffic must not wait
// dozens of requests to adapt) — it grows the window only when the
// sparse p95 is under target, since a lone request mostly pays the
// window itself.
//
// Telemetry: per-request latency (admission -> response fulfillment) in a
// geometric histogram (p50/p95/p99/max within ~13%), queries served,
// dispatch count and batch occupancy, plus the Engine's own batch-dispatch
// and scheduler counters (EngineMetrics). STATS answers inline with a
// one-line snapshot ordered after every earlier request; stats_json()
// renders the full summary (written on shutdown by `rspcli serve`).
//
// Thread safety: serve() is reentrant — serve_port() runs one session
// thread (reader + writer pair) per live connection, all multiplexed onto
// the single dispatcher; stats()/stats_json() may be called from any
// thread; shutdown_port() is async-signal-safe.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "api/engine.h"
#include "serve/listener.h"
#include "serve/protocol.h"

namespace rsp {

struct ServeOptions {
  // Maximum point pairs coalesced into one engine dispatch. A single BATCH
  // request larger than this still dispatches (alone, in one batch).
  size_t max_batch_pairs = 256;
  // How long the dispatcher waits after the first pending request for the
  // batch to fill before dispatching what is there. 0 = dispatch
  // immediately (lowest latency, smallest batches). With target_p95_us set
  // this is the *ceiling* the adaptive window grows back toward.
  uint64_t coalesce_window_us = 200;
  // Admission cap: requests arriving while this many are already pending
  // are answered ERR LOAD_SHED instead of queuing (and tick the `shed`
  // counter). 0 = unbounded (the pre-cap behavior).
  size_t max_queue_depth = 0;
  // Latency target driving the adaptive coalescing window: when the epoch
  // p95 exceeds this, the live window halves (toward 0 = no coalescing
  // wait); when latency is healthy it doubles back toward
  // coalesce_window_us. A drained queue forces the decision early on the
  // partial epoch. 0 = fixed window (no adaptation).
  uint64_t target_p95_us = 0;
};

// Point-in-time telemetry snapshot (all counters since server start).
struct ServeStats {
  uint64_t requests = 0;    // protocol requests answered, including errors
  uint64_t queries = 0;     // point pairs answered (BATCH counts its k)
  uint64_t errors = 0;      // ERR responses (protocol + query errors)
  uint64_t shed = 0;        // ERR LOAD_SHED responses (admission cap hits)
  uint64_t dispatches = 0;  // engine batch dispatches
  uint64_t dispatched_pairs = 0;  // pairs across those dispatches
  uint64_t window_us = 0;   // live coalescing window (== the configured
                            //   value unless target_p95_us is adapting it)
  uint64_t accept_backoffs = 0;  // acceptor fd-pressure backoff ticks
                                 //   (EMFILE/ENFILE/ENOBUFS/ENOMEM retries)
  uint64_t window_skips = 0;     // adaptation rounds skipped because the
                                 //   epoch overlapped an accept backoff
  uint64_t p50_us = 0;      // request latency percentiles, admission ->
  uint64_t p95_us = 0;      //   response fulfillment
  uint64_t p99_us = 0;
  uint64_t max_us = 0;

  double mean_batch_occupancy() const {
    return dispatches == 0 ? 0.0
                           : static_cast<double>(dispatched_pairs) /
                                 static_cast<double>(dispatches);
  }
};

// Geometric latency histogram: exact below 16 us, then 8 sub-buckets per
// power of two (relative error <= 2^-3). Fixed footprint, O(1) record —
// safe for millions of requests.
class LatencyHistogram {
 public:
  void record(uint64_t us);
  uint64_t count() const { return count_; }
  uint64_t max() const { return max_; }
  // Upper bound of the bucket holding the p-quantile (p in [0, 1]).
  uint64_t percentile(double p) const;
  // Back to the freshly-constructed state (epoch histograms reuse one
  // instance across adaptation rounds).
  void reset();

 private:
  static constexpr size_t kExact = 16;
  static constexpr size_t kSub = 8;  // sub-buckets per octave
  static constexpr size_t kBuckets = kExact + (64 - 4) * kSub;
  static size_t bucket_of(uint64_t us);
  static uint64_t bucket_upper(size_t idx);

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t max_ = 0;
};

class QueryServer {
 public:
  // Takes ownership of the engine. The dispatcher thread starts here.
  explicit QueryServer(Engine engine, ServeOptions opt = {});
  // Drains the admission queue, stops the dispatcher.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Runs one session: reads requests from `in`, writes one response line
  // per request to `out` in request order. Returns on QUIT or end of
  // input. Responses are pipelined: the reader keeps admitting requests
  // while earlier ones compute, so a piped herd coalesces into batches.
  // Reentrant: many sessions may run concurrently (serve_port does this);
  // they share the dispatcher and the engine, never each other's streams.
  void serve(std::istream& in, std::ostream& out);

  // Concurrent TCP front end: every accepted connection gets its own
  // session thread running serve(), all feeding the shared dispatcher.
  // max_sessions caps how many sessions run *concurrently* (0 = no cap);
  // at the cap the acceptor parks until a session ends, so excess clients
  // wait in the TCP backlog instead of being dropped. port 0 binds an
  // ephemeral port; on_listening (when set) is invoked with the bound port
  // after listen() succeeds and before the first accept — the safe
  // rendezvous for callers that need to connect from another thread.
  // Transient accept failures (EINTR, ECONNABORTED) are retried; only
  // socket/bind/listen/accept hard failures return non-OK, and even then
  // every in-flight session is drained and joined first.
  Status serve_port(uint16_t port, size_t max_sessions = 0,
                    const std::function<void(uint16_t)>& on_listening = {});

  // Ends a running serve_port() loop cleanly: a blocked accept wakes, the
  // acceptor half-closes every in-flight session socket (readers see EOF,
  // pending responses still flush), joins them, and serve_port returns OK.
  // Async-signal-safe (atomics + shutdown(2)) — callable from a SIGINT
  // handler, which is how `rspcli serve --port` makes its shutdown
  // telemetry reachable. The request is sticky and race-free against
  // serve_port startup: a call landing before the listener exists makes
  // the next serve_port return OK immediately instead of being lost.
  void shutdown_port();

  const Engine& engine() const { return engine_; }
  const ServeOptions& options() const { return opt_; }

  // Marks an acceptor fd-pressure backoff (EMFILE and friends). The TCP
  // front end wires this into the listener's backoff hook; the window
  // adapter then discards any drained-early epoch overlapping the backoff —
  // the acceptor sleeping on fd exhaustion is not idle traffic, and a
  // sparse-regime decision taken on it would halve the coalescing window
  // exactly when the server is starved of file descriptors. Public so the
  // pressure path is testable without exhausting the real fd table.
  void note_accept_backoff();

  ServeStats stats() const;
  // One-line STATS payload (also the wire response), e.g.
  // "OK served=12 queries=40 errors=0 dispatches=3 mean_batch=13.3 ...".
  std::string stats_line() const;
  // Full JSON summary: serve counters + latency percentiles + engine and
  // scheduler telemetry. Written by `rspcli serve` on shutdown.
  std::string stats_json() const;

 private:
  struct Pending {
    Request req;
    uint64_t session = 0;  // which serve() session admitted it
    std::chrono::steady_clock::time_point admitted;
    std::promise<std::string> response;
  };

  // Admits a parsed request from `session`; the future resolves to its
  // response line. A full admission queue sheds fairly: the arrival when
  // its session is over its share, else the hoggiest session's newest
  // queued request (see the class comment).
  std::future<std::string> submit(Request req, uint64_t session);
  // Drops `session`'s queued count by one. Caller holds queue_mu_.
  void dec_inflight_locked(uint64_t session);
  void dispatcher_main();
  // Pops a maximal same-kind prefix (bounded by max_batch_pairs) and
  // answers it. Called with queue_mu_ held; releases it while computing.
  void dispatch_group(std::unique_lock<std::mutex>& lk);
  void finish(Pending& p, std::string response);
  void count_protocol_error();  // session-side BAD_REQUEST bookkeeping
  // One adaptation step of the live coalescing window (no-op unless
  // target_p95_us is set). Called by the dispatcher after each group;
  // `drained` = the admission queue was empty when the group finished.
  void maybe_adapt_window(bool drained);

  Engine engine_;
  ServeOptions opt_;

  // TCP front end (serve/listener.h): owns the listening socket and the
  // session-per-connection pool; shutdown_port() delegates to it.
  TcpSessionLoop listener_;
  // Ticked by note_accept_backoff (any thread); read by the window adapter.
  std::atomic<uint64_t> accept_backoffs_{0};

  // Live coalescing window; equals opt_.coalesce_window_us until adaptation
  // moves it. Relaxed atomic: the dispatcher is the only writer, readers
  // (stats) tolerate staleness.
  std::atomic<uint64_t> window_us_{0};

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;  // guarded by queue_mu_
  bool stop_ = false;                           // guarded by queue_mu_
  // Per-session queued-request counts (entries erased at zero, so size ==
  // sessions with pending work); drives fair shedding. Guarded by
  // queue_mu_.
  std::unordered_map<uint64_t, size_t> inflight_;
  std::atomic<uint64_t> next_session_{1};  // serve() session ids

  mutable std::mutex stats_mu_;
  uint64_t requests_ = 0;          // guarded by stats_mu_
  uint64_t queries_ = 0;           // guarded by stats_mu_
  uint64_t errors_ = 0;            // guarded by stats_mu_
  uint64_t shed_ = 0;              // guarded by stats_mu_
  uint64_t dispatches_ = 0;        // guarded by stats_mu_
  uint64_t dispatched_pairs_ = 0;  // guarded by stats_mu_
  LatencyHistogram latency_;       // guarded by stats_mu_
  LatencyHistogram epoch_latency_;  // guarded by stats_mu_; reset each
                                    //   window-adaptation round
  uint64_t backoffs_seen_ = 0;  // guarded by stats_mu_; accept_backoffs_
                                //   value at the last adaptation round
  uint64_t window_skips_ = 0;   // guarded by stats_mu_

  std::thread dispatcher_;  // last member: joins before state is torn down
};

}  // namespace rsp
