#include "serve/protocol.h"

#include <charconv>
#include <sstream>

namespace rsp {

namespace {

// Splits on runs of spaces/tabs; no escaping (coordinates and verbs never
// contain whitespace).
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

// Strict signed-decimal parse: the whole token must be consumed, so "12x",
// "1e3" and values outside int64 are all rejected (std::from_chars never
// throws and never reads locale state).
bool parse_coord(std::string_view tok, Coord& out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool parse_point(std::string_view tok, Point& out) {
  size_t comma = tok.find(',');
  if (comma == std::string_view::npos ||
      tok.find(',', comma + 1) != std::string_view::npos) {
    return false;
  }
  return parse_coord(tok.substr(0, comma), out.x) &&
         parse_coord(tok.substr(comma + 1), out.y);
}

ParsedRequest bad(std::string msg) {
  ParsedRequest pr;
  pr.error = std::move(msg);
  return pr;
}

ParsedRequest parse_pair_request(Verb verb,
                                 std::span<const std::string_view> toks) {
  if (toks.size() != 3) {
    return bad(std::string(verb_name(verb)) +
               " wants exactly two points: " + verb_name(verb) +
               " X1,Y1 X2,Y2");
  }
  PointPair pair;
  if (!parse_point(toks[1], pair.s) || !parse_point(toks[2], pair.t)) {
    return bad("unparsable point (want X,Y with 64-bit decimal coordinates)");
  }
  ParsedRequest pr;
  pr.ok = true;
  pr.req.verb = verb;
  pr.req.pairs.push_back(pair);
  return pr;
}

ParsedRequest parse_batch(std::span<const std::string_view> toks,
                          const LineSource& next_line) {
  if (toks.size() != 2) return bad("BATCH wants a count: BATCH K");
  uint64_t count = 0;
  {
    const char* first = toks[1].data();
    const char* last = toks[1].data() + toks[1].size();
    auto [ptr, ec] = std::from_chars(first, last, count);
    if (ec != std::errc() || ptr != last) {
      return bad("unparsable BATCH count '" + std::string(toks[1]) + "'");
    }
  }
  if (count == 0) return bad("BATCH count must be >= 1");
  if (count > kMaxBatchPairs) {
    std::ostringstream os;
    os << "BATCH count " << count << " exceeds the limit of "
       << kMaxBatchPairs;
    return bad(os.str());
  }
  ParsedRequest pr;
  pr.req.verb = Verb::kBatch;
  pr.req.pairs.reserve(static_cast<size_t>(count));
  std::string line;
  for (uint64_t i = 0; i < count; ++i) {
    if (!next_line(line)) {
      std::ostringstream os;
      os << "end of input inside BATCH: got " << i << " of " << count
         << " pairs";
      return bad(os.str());
    }
    auto pair_toks = tokenize(line);
    PointPair pair;
    if (pair_toks.size() != 2 || !parse_point(pair_toks[0], pair.s) ||
        !parse_point(pair_toks[1], pair.t)) {
      std::ostringstream os;
      os << "unparsable BATCH pair " << i << " (want X1,Y1 X2,Y2)";
      return bad(os.str());
    }
    pr.req.pairs.push_back(pair);
  }
  pr.ok = true;
  return pr;
}

// Strips anything a response line must not contain: Status messages are
// single-line today, but the invariant "one request, one response line"
// should not depend on that. Error messages can echo client bytes (the
// unknown-verb path), so every control byte — embedded NULs, escape
// sequences, stray CR/LF from a fuzzed request — is flattened to a space,
// keeping the wire format line-framed and printable.
std::string one_line(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) c = ' ';
  }
  return out;
}

}  // namespace

const char* verb_name(Verb v) {
  switch (v) {
    case Verb::kLen: return "LEN";
    case Verb::kPath: return "PATH";
    case Verb::kBatch: return "BATCH";
    case Verb::kStats: return "STATS";
    case Verb::kQuit: return "QUIT";
  }
  return "?";
}

ParsedRequest parse_request(std::string_view line,
                            const LineSource& next_line) {
  auto toks = tokenize(line);
  if (toks.empty()) return bad("empty request");
  std::string_view verb = toks[0];
  if (verb == "LEN") return parse_pair_request(Verb::kLen, toks);
  if (verb == "PATH") return parse_pair_request(Verb::kPath, toks);
  if (verb == "BATCH") return parse_batch(toks, next_line);
  if (verb == "STATS" || verb == "QUIT") {
    if (toks.size() != 1) {
      return bad(std::string(verb) + " takes no arguments");
    }
    ParsedRequest pr;
    pr.ok = true;
    pr.req.verb = verb == "STATS" ? Verb::kStats : Verb::kQuit;
    return pr;
  }
  return bad("unknown verb '" + one_line(verb) +
             "' (want LEN, PATH, BATCH, STATS or QUIT)");
}

std::string format_length(Length len) {
  return "OK " + std::to_string(len);
}

std::string format_batch(std::span<const Length> lens) {
  std::string out = "OK " + std::to_string(lens.size());
  for (Length l : lens) {
    out += ' ';
    out += std::to_string(l);
  }
  return out;
}

std::string format_path(std::span<const Point> pts) {
  std::ostringstream os;
  os << "OK";
  for (const Point& p : pts) os << ' ' << p;
  return os.str();
}

std::string format_error(const Status& st) {
  return format_error(status_code_name(st.code()), st.message());
}

std::string format_error(std::string_view code, std::string_view message) {
  std::string out = "ERR ";
  out += code;
  if (!message.empty()) {
    out += ' ';
    out += one_line(message);
  }
  return out;
}

std::string format_load_shed(size_t pending) {
  return format_error("LOAD_SHED", "admission queue full (" +
                                       std::to_string(pending) + " pending)");
}

std::string format_not_owner(size_t row_lo, size_t row_hi) {
  return format_error("NOT_OWNER", std::to_string(row_lo) + " " +
                                       std::to_string(row_hi));
}

}  // namespace rsp
