#include "pram/thread_pool.h"

#include <atomic>
#include <exception>

#include "common.h"

namespace rsp {

struct ThreadPool::Batch {
  size_t n_tasks = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  const std::function<void(size_t)>* fn = nullptr;
  std::exception_ptr error;  // first error wins
  std::mutex mu;
  std::condition_variable done_cv;

  // Pull tasks until the index space is exhausted.
  void work() {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= n_tasks) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == n_tasks) {
        std::lock_guard<std::mutex> lk(mu);
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(size_t num_threads) {
  size_t extra = num_threads > 0 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> b;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      b = batch_;  // may be null if the batch was already retired
    }
    if (b) b->work();
  }
}

void ThreadPool::run(size_t n_tasks, const std::function<void(size_t)>& fn) {
  if (n_tasks == 0) return;
  if (workers_.empty() || n_tasks == 1) {
    for (size_t i = 0; i < n_tasks; ++i) fn(i);
    return;
  }
  auto b = std::make_shared<Batch>();
  b->n_tasks = n_tasks;
  b->fn = &fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    RSP_CHECK_MSG(batch_ == nullptr, "nested ThreadPool::run on same pool");
    batch_ = b;
    ++generation_;
  }
  cv_.notify_all();
  b->work();  // caller participates
  {
    std::unique_lock<std::mutex> lk(b->mu);
    b->done_cv.wait(lk, [&] { return b->done.load() >= b->n_tasks; });
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch_ = nullptr;
    ++generation_;
  }
  cv_.notify_all();
  // `fn` must outlive all workers' use of it: workers only touch fn inside
  // work(), and done==n_tasks implies every fn(i) call has returned.
  if (b->error) std::rethrow_exception(b->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace rsp
