#include "pram/scheduler.h"

#include <chrono>
#include <functional>

namespace rsp {

namespace {

// Which scheduler (if any) the current thread is a worker of, and its
// worker index there. External threads keep sched == nullptr and route
// submissions through the injection queue.
struct ThreadState {
  Scheduler* sched = nullptr;
  size_t index = 0;
};
thread_local ThreadState tl_state;

// Per-thread xorshift for steal-victim randomization (no shared RNG state).
size_t next_victim(size_t n) {
  static thread_local uint64_t seed =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
  seed ^= seed << 13;
  seed ^= seed >> 7;
  seed ^= seed << 17;
  return static_cast<size_t>(seed % n);
}

}  // namespace

namespace sched_detail {

Deque::Buf* Deque::grow(Buf* a, int64_t t, int64_t b) {
  Buf* bigger = new Buf(a->cap * 2);
  for (int64_t i = t; i < b; ++i) bigger->put(i, a->get(i));
  retired_.emplace_back(a);  // lagging thieves may still read the old array
  buf_.store(bigger, std::memory_order_release);
  return bigger;
}

}  // namespace sched_detail

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

TaskGroup::~TaskGroup() {
  if (state_->pending.load(std::memory_order_acquire) == 0) return;
  try {
    wait();
  } catch (...) {
    // An unjoined group is only destroyed during unwinding; the task
    // exception already lost to the one propagating.
  }
}

void TaskGroup::run(std::function<void()> fn) {
  auto* t = new sched_detail::Task{std::move(fn), state_,
                                   pram_scope_current()};
  state_->pending.fetch_add(1, std::memory_order_acq_rel);
  if (sched_->workers_.empty()) {
    sched_->execute(t);  // inline: no workers to hand it to
    return;
  }
  sched_->submit(t);
}

void TaskGroup::wait() {
  using namespace std::chrono_literals;
  sched_detail::GroupState& st = *state_;
  while (st.pending.load(std::memory_order_acquire) != 0) {
    // Caller participates. Workers help with any task (mandatory for
    // nested-join progress); external callers take only this group's
    // injected tasks, so a small join can't swallow an unrelated long one.
    if (sched_detail::Task* t = sched_->acquire(&st)) {
      sched_->execute(t);
      continue;
    }
    // Nothing runnable here: other threads own the remaining tasks. Block
    // until the group drains (the timeout bounds how long we stop helping
    // when a task becomes acquirable only after the scan above).
    std::unique_lock<std::mutex> lk(st.mu);
    st.cv.wait_for(lk, 1ms, [&] {
      return st.pending.load(std::memory_order_relaxed) == 0;
    });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    err = st.error;
    st.error = nullptr;  // group is reusable after wait()
  }
  if (err) std::rethrow_exception(err);
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

Scheduler::Scheduler(size_t num_threads) {
  size_t extra = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (size_t i = 0; i < extra; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Spawn only after workers_ is fully built: steals scan the whole vector.
  for (size_t i = 0; i < extra; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  for (sched_detail::Task* t : inject_) delete t;  // fork/join leaves none
}

void Scheduler::submit(sched_detail::Task* t) {
  if (tl_state.sched == this) {
    workers_[tl_state.index]->deque.push(t);
  } else {
    stat_injected_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(inject_mu_);
    inject_.push_back(t);
    inject_size_.store(inject_.size(), std::memory_order_release);
  }
  wake();
}

sched_detail::Task* Scheduler::acquire(
    const sched_detail::GroupState* only_group) {
  const bool is_worker = tl_state.sched == this;
  if (is_worker) {
    only_group = nullptr;  // workers must help with anything
    if (sched_detail::Task* t = workers_[tl_state.index]->deque.pop()) {
      return t;
    }
  }
  if (inject_size_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lk(inject_mu_);
    auto it = inject_.begin();
    if (only_group != nullptr) {
      while (it != inject_.end() && (*it)->group.get() != only_group) ++it;
    }
    if (it != inject_.end()) {
      sched_detail::Task* t = *it;
      inject_.erase(it);
      inject_size_.store(inject_.size(), std::memory_order_release);
      return t;
    }
  }
  if (only_group != nullptr) {
    // An external joiner cannot steal: a stolen task's group is unknowable
    // before the CAS commits, and running a foreign task would hold this
    // group's join hostage to that task's latency.
    return nullptr;
  }
  const size_t n = workers_.size();
  if (n == 0) return nullptr;
  const size_t self = is_worker ? tl_state.index : n;
  const size_t start = next_victim(n);
  for (size_t i = 0; i < n; ++i) {
    size_t v = (start + i) % n;
    if (v == self) continue;
    if (sched_detail::Task* t = workers_[v]->deque.steal()) {
      stat_steals_.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return nullptr;
}

void Scheduler::execute(sched_detail::Task* t) {
  // Keep the group alive past `delete t`: the final notify below may run
  // after the joiner returned and destroyed its TaskGroup.
  std::shared_ptr<sched_detail::GroupState> g = t->group;
  PramCostScope* saved = pram_scope_current();
  pram_scope_set(t->cost_scope);  // charges land in the forker's scope
  try {
    t->fn();
  } catch (...) {
    std::lock_guard<std::mutex> lk(g->mu);
    if (!g->error) g->error = std::current_exception();
  }
  pram_scope_set(saved);
  stat_executed_.fetch_add(1, std::memory_order_relaxed);
  delete t;
  if (g->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task out: wake the joiner. Notify under the group mutex so the
    // waiter cannot check the predicate and sleep between our decrement and
    // this notification.
    std::lock_guard<std::mutex> lk(g->mu);
    g->cv.notify_all();
  }
}

bool Scheduler::help_once() {
  sched_detail::Task* t = acquire(nullptr);
  if (t == nullptr) return false;
  execute(t);
  return true;
}

void Scheduler::run(size_t n_tasks, const std::function<void(size_t)>& fn) {
  if (n_tasks == 0) return;
  if (workers_.empty() || n_tasks == 1) {
    for (size_t i = 0; i < n_tasks; ++i) fn(i);
    return;
  }
  TaskGroup g(*this);
  for (size_t i = 0; i < n_tasks; ++i) {
    g.run([&fn, i] { fn(i); });
  }
  g.wait();
}

void Scheduler::wake() {
  // Rendezvous with the sleep path below, fence-free: the seq_cst total
  // order guarantees that if a worker's final epoch check missed this
  // increment, its sleepers_ increment (issued before that check) is
  // visible to our load — so we always take the slow notify path when a
  // worker could be committing to sleep. Idle workers therefore block
  // indefinitely with no polling.
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    sleep_cv_.notify_all();
  }
}

void Scheduler::worker_main(size_t index) {
  tl_state = {this, index};
  uint64_t seen = epoch_.load(std::memory_order_acquire);
  for (;;) {
    if (sched_detail::Task* t = acquire(nullptr)) {
      execute(t);
      seen = epoch_.load(std::memory_order_acquire);
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_mu_);
    if (stop_) return;
    // Publish the intent to sleep *before* the final epoch check (see
    // wake()): either we observe the new epoch here and rescan, or wake()
    // observes sleepers_ > 0 and notifies under the mutex we hold.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (epoch_.load(std::memory_order_seq_cst) != seen) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      seen = epoch_.load(std::memory_order_acquire);
      continue;  // work arrived while scanning: rescan before sleeping
    }
    sleep_cv_.wait(lk);
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    seen = epoch_.load(std::memory_order_acquire);
  }
}

SchedulerStats Scheduler::stats() const {
  return {stat_executed_.load(std::memory_order_relaxed),
          stat_steals_.load(std::memory_order_relaxed),
          stat_injected_.load(std::memory_order_relaxed)};
}

Scheduler& Scheduler::global() {
  static Scheduler sched(std::max(1u, std::thread::hardware_concurrency()));
  return sched;
}

}  // namespace rsp
