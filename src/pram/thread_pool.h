#pragma once
// Minimal fixed-size thread pool used to simulate the CREW-PRAM.
//
// The paper's model is a synchronous shared-memory PRAM. We simulate each
// parallel step with a fork-join over a fixed worker pool: concurrent reads
// are naturally allowed; the algorithms never issue concurrent writes to the
// same location (that is the CREW discipline the original algorithms obey).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rsp {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size() + 1; }  // + caller

  // Fork-join: runs fn(i) for i in [0, n_tasks); returns when all complete.
  // The calling thread participates. Exceptions from tasks are rethrown
  // (first one wins). Not reentrant on the same pool.
  void run(size_t n_tasks, const std::function<void(size_t)>& fn);

  // Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& global();

 private:
  struct Batch;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  uint64_t generation_ = 0;             // bumped when batch_ changes
  std::shared_ptr<Batch> batch_;        // current fork-join batch
};

}  // namespace rsp
