#include "pram/parallel.h"

namespace rsp {

void pram_reset() {
  pram_detail::g_work.store(0, std::memory_order_relaxed);
  pram_detail::g_depth.store(0, std::memory_order_relaxed);
}

}  // namespace rsp
