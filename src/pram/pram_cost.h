#pragma once
// PRAM cost-model accounting (paper §2: work/depth of the parallel-prefix,
// merging and sorting black boxes).
//
// Every primitive charges its textbook work and depth once per invocation.
// Charges land in two places:
//
//  * a process-global tally (pram_cost_now / pram_reset) — the historical
//    interface, still useful for whole-process accounting;
//  * every PramCostScope active on the charging thread — scoped RAII
//    accounting, so concurrent benchmarks and tests each read their own
//    tally instead of diffing (and corrupting) the shared one.
//
// Scopes form a per-thread chain. The scheduler propagates the chain across
// task boundaries: a forked task inherits the forking thread's innermost
// scope, so charges issued by stolen tasks still land in the scope that
// forked them (the fork/join discipline guarantees the scope outlives the
// join). pram_reset() clears only the process-global tally.

#include <atomic>
#include <bit>
#include <cstdint>

namespace rsp {

struct PramCost {
  uint64_t work = 0;   // total operations
  uint64_t depth = 0;  // parallel time with unbounded processors

  PramCost operator-(const PramCost& o) const {
    return {work - o.work, depth - o.depth};
  }
};

class PramCostScope;

namespace pram_detail {
inline std::atomic<uint64_t> g_work{0};
inline std::atomic<uint64_t> g_depth{0};
inline thread_local PramCostScope* tl_scope = nullptr;

inline uint64_t log2_ceil(uint64_t n) {
  return n <= 1 ? 1 : std::bit_width(n - 1);
}
}  // namespace pram_detail

// Measures the PRAM cost charged while the scope is alive by this thread
// and by every task (transitively) forked under it.
class PramCostScope {
 public:
  PramCostScope() : parent_(pram_detail::tl_scope) {
    pram_detail::tl_scope = this;
  }
  ~PramCostScope() { pram_detail::tl_scope = parent_; }

  PramCostScope(const PramCostScope&) = delete;
  PramCostScope& operator=(const PramCostScope&) = delete;

  PramCost cost() const {
    return {work_.load(std::memory_order_relaxed),
            depth_.load(std::memory_order_relaxed)};
  }

  void add(uint64_t work, uint64_t depth) {
    work_.fetch_add(work, std::memory_order_relaxed);
    depth_.fetch_add(depth, std::memory_order_relaxed);
  }

  PramCostScope* parent() const { return parent_; }

 private:
  PramCostScope* parent_;
  std::atomic<uint64_t> work_{0};
  std::atomic<uint64_t> depth_{0};
};

// Charges `work` operations executed in `depth` synchronous steps.
// Primitives call this once per invocation (sequential composition model:
// depth adds across calls issued from the coordinating thread).
inline void pram_charge(uint64_t work, uint64_t depth) {
  pram_detail::g_work.fetch_add(work, std::memory_order_relaxed);
  pram_detail::g_depth.fetch_add(depth, std::memory_order_relaxed);
  for (PramCostScope* s = pram_detail::tl_scope; s != nullptr;
       s = s->parent()) {
    s->add(work, depth);
  }
}

inline PramCost pram_cost_now() {
  return {pram_detail::g_work.load(std::memory_order_relaxed),
          pram_detail::g_depth.load(std::memory_order_relaxed)};
}

// Resets the process-global tally (benchmark setup). Active scopes are
// unaffected: they accumulate deltas, not snapshots.
inline void pram_reset() {
  pram_detail::g_work.store(0, std::memory_order_relaxed);
  pram_detail::g_depth.store(0, std::memory_order_relaxed);
}

// Scheduler hooks: save/restore the innermost scope across task execution
// so charges from stolen tasks land in the forking scope's tally.
inline PramCostScope* pram_scope_current() { return pram_detail::tl_scope; }
inline void pram_scope_set(PramCostScope* s) { pram_detail::tl_scope = s; }

}  // namespace rsp
