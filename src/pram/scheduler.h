#pragma once
// Work-stealing task scheduler simulating the CREW-PRAM.
//
// Replaces the flat, non-reentrant fork-join ThreadPool. Each worker owns a
// Chase–Lev-style deque (lock-free owner push/pop at the bottom, CAS steal
// at the top); threads that are not workers of this scheduler submit into a
// mutex-guarded injection queue. Joins are helping: the waiting thread
// executes pending tasks — its own deque first, then the injection queue,
// then steals — so the caller always participates and a task may fork and
// join its own TaskGroup without deadlock. That reentrancy is what lets the
// §5 divide-and-conquer build sibling separator subtrees as parallel tasks
// (true tree parallelism) instead of only fanning out rows one level at a
// time, and lets Engine batch fan-outs nest inside arbitrary user threads.
//
// Concurrency discipline matches the paper's CREW model: tasks may read
// shared state concurrently but never write the same location; the
// scheduler itself adds no other sharing. Exceptions thrown by tasks are
// captured per TaskGroup and the first one is rethrown from wait().
//
// PRAM cost accounting (pram_cost.h) crosses task boundaries: a forked task
// inherits the forking thread's innermost PramCostScope.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pram/pram_cost.h"

namespace rsp {

class Scheduler;

namespace sched_detail {

struct GroupState {
  std::atomic<size_t> pending{0};
  std::mutex mu;                // guards error; rendezvous for cv
  std::condition_variable cv;   // signaled when pending reaches zero
  std::exception_ptr error;     // first task exception wins
};

struct Task {
  std::function<void()> fn;
  // Shared so the completing thread can still notify after the joiner has
  // observed pending == 0 and destroyed its TaskGroup.
  std::shared_ptr<GroupState> group;
  PramCostScope* cost_scope = nullptr;  // forker's scope, inherited
};

// Chase–Lev work-stealing deque of Task*. The owner pushes and pops at the
// bottom without locks; thieves race a CAS on the top index. This follows
// the formulation of Lê et al., "Correct and Efficient Work-Stealing for
// Weak Memory Models" (PPoPP'13), with seq_cst ordering on the owner/thief
// rendezvous instead of standalone fences (ThreadSanitizer models atomic
// operations, not fences). Retired buffers are kept until destruction so a
// lagging thief can always dereference the array it loaded.
class Deque {
 public:
  Deque() : buf_(new Buf(kInitialCap)) {}
  ~Deque() { delete buf_.load(std::memory_order_relaxed); }

  Deque(const Deque&) = delete;
  Deque& operator=(const Deque&) = delete;

  // Owner only.
  void push(Task* t) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t top = top_.load(std::memory_order_acquire);
    Buf* a = buf_.load(std::memory_order_relaxed);
    if (b - top > static_cast<int64_t>(a->cap) - 1) a = grow(a, top, b);
    a->put(b, t);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  // Owner only. Returns nullptr when empty (or lost the last item to a
  // thief).
  Task* pop() {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buf* a = buf_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: undo
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* x = a->get(b);
    if (t == b) {  // last item: race thieves for it
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        x = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return x;
  }

  // Any thread. Returns nullptr when empty or on CAS contention (the
  // caller's scan loop simply moves on).
  Task* steal() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buf* a = buf_.load(std::memory_order_acquire);
    Task* x = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return x;
  }

 private:
  static constexpr size_t kInitialCap = 256;  // power of two

  struct Buf {
    explicit Buf(size_t c)
        : cap(c), mask(c - 1), slots(new std::atomic<Task*>[c]) {}
    size_t cap;
    size_t mask;
    std::unique_ptr<std::atomic<Task*>[]> slots;

    Task* get(int64_t i) const {
      return slots[static_cast<size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(int64_t i, Task* t) {
      slots[static_cast<size_t>(i) & mask].store(t,
                                                 std::memory_order_relaxed);
    }
  };

  Buf* grow(Buf* a, int64_t t, int64_t b);

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buf*> buf_;
  std::vector<std::unique_ptr<Buf>> retired_;  // owner-only; thief safety
};

}  // namespace sched_detail

// Fork/join handle: fork tasks with run(), join with wait(). The waiting
// thread helps execute pending work (any scheduler task, not only this
// group's), so nesting a TaskGroup inside a task cannot deadlock even when
// the recursion is deeper than the pool is wide. The destructor joins
// (swallowing task exceptions) if wait() was never called.
class TaskGroup {
 public:
  explicit TaskGroup(Scheduler& sched)
      : sched_(&sched),
        state_(std::make_shared<sched_detail::GroupState>()) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Forks fn as a task. On a scheduler with no spawned workers the task
  // still runs at wait() (or earlier, inline) — semantics are identical,
  // only the interleaving differs.
  void run(std::function<void()> fn);

  // Joins: returns when every forked task has finished; rethrows the first
  // task exception. The caller executes pending tasks while it waits.
  void wait();

 private:
  Scheduler* sched_;
  std::shared_ptr<sched_detail::GroupState> state_;
};

// Queue instrumentation, cumulative since scheduler construction. Relaxed
// counters — cheap enough to stay on in production, precise enough to spot
// imbalance (steals ≈ tasks means the deques never hold local work) and
// external pressure (injected = submissions from non-worker threads, e.g.
// serve-layer batch fan-outs).
struct SchedulerStats {
  uint64_t tasks_executed = 0;  // tasks run to completion (any thread)
  uint64_t steals = 0;          // tasks acquired from another worker's deque
  uint64_t injected = 0;        // submissions through the injection queue
};

class Scheduler {
 public:
  // A scheduler of width num_threads: num_threads - 1 spawned workers plus
  // the caller, which participates during joins (same convention as the old
  // ThreadPool). Width 0 or 1 spawns nothing and runs everything inline.
  explicit Scheduler(size_t num_threads);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  size_t num_threads() const { return workers_.size() + 1; }  // + caller

  // Flat fork-join: runs fn(i) for i in [0, n_tasks); returns when all
  // complete. The calling thread participates; the first task exception is
  // rethrown. Fully reentrant — tasks may call run()/parallel_for on the
  // same scheduler (this is what the old ThreadPool::run forbade).
  void run(size_t n_tasks, const std::function<void(size_t)>& fn);

  // Executes at most one pending task on the calling thread. Returns false
  // when no task could be acquired. Used by joins; exposed for tests.
  bool help_once();

  // Queue-instrumentation snapshot (see SchedulerStats). Any thread.
  SchedulerStats stats() const;

  // Process-wide scheduler sized to the hardware; created on first use.
  static Scheduler& global();

 private:
  friend class TaskGroup;

  struct Worker {
    sched_detail::Deque deque;
    std::thread thread;
  };

  void submit(sched_detail::Task* t);
  // Acquires one runnable task: local deque -> injection queue -> steal.
  // Worker threads of this scheduler ignore `only_group` — they must help
  // with anything or nested joins could starve each other. External
  // threads with `only_group` set take only that group's injected tasks
  // and never steal: an external joiner participates in its own batch but
  // cannot get stuck executing another request's long task inline.
  sched_detail::Task* acquire(const sched_detail::GroupState* only_group);
  void execute(sched_detail::Task* t);  // run + group bookkeeping
  void worker_main(size_t index);
  void wake();

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex inject_mu_;
  std::deque<sched_detail::Task*> inject_;  // external submissions
  std::atomic<size_t> inject_size_{0};      // lock-free emptiness gate

  // SchedulerStats counters (relaxed; see stats()).
  std::atomic<uint64_t> stat_executed_{0};
  std::atomic<uint64_t> stat_steals_{0};
  std::atomic<uint64_t> stat_injected_{0};

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<uint64_t> epoch_{0};   // bumped on every submit
  std::atomic<int> sleepers_{0};
  bool stop_ = false;  // guarded by sleep_mu_
};

}  // namespace rsp
