#pragma once
// CREW-PRAM primitive toolkit: parallel for / reduce / scan / merge / sort,
// plus the PRAM cost-model instrumentation used by the benchmarks.
//
// The paper states all bounds as (time, processors) pairs on a CREW-PRAM and
// composes parallel-prefix [18,19], parallel merging [35], and parallel
// sorting [10] as black boxes. We provide those boxes on a thread pool and
// additionally *account* their idealized PRAM cost: every primitive adds its
// textbook work and depth to a global PramCost tally. Wall-clock speedup on
// this container is meaningless (one core), so the benchmarks report the
// tally: work should track the paper's processor×time products and depth the
// paper's time bounds.

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "common.h"
#include "pram/thread_pool.h"

namespace rsp {

// ---------------------------------------------------------------------------
// PRAM cost model accounting.
// ---------------------------------------------------------------------------

struct PramCost {
  uint64_t work = 0;   // total operations
  uint64_t depth = 0;  // parallel time with unbounded processors

  PramCost operator-(const PramCost& o) const {
    return {work - o.work, depth - o.depth};
  }
};

namespace pram_detail {
inline std::atomic<uint64_t> g_work{0};
inline std::atomic<uint64_t> g_depth{0};

inline uint64_t log2_ceil(uint64_t n) {
  return n <= 1 ? 1 : std::bit_width(n - 1);
}
}  // namespace pram_detail

// Charges `work` operations executed in `depth` synchronous steps.
// Primitives call this once per invocation (sequential composition model:
// depth adds across calls issued from the coordinating thread).
inline void pram_charge(uint64_t work, uint64_t depth) {
  pram_detail::g_work.fetch_add(work, std::memory_order_relaxed);
  pram_detail::g_depth.fetch_add(depth, std::memory_order_relaxed);
}

inline PramCost pram_cost_now() {
  return {pram_detail::g_work.load(std::memory_order_relaxed),
          pram_detail::g_depth.load(std::memory_order_relaxed)};
}

// Resets the global tally (benchmark setup).
void pram_reset();

// Measures the PRAM cost charged while the scope is alive.
class PramCostScope {
 public:
  PramCostScope() : start_(pram_cost_now()) {}
  PramCost cost() const { return pram_cost_now() - start_; }

 private:
  PramCost start_;
};

// ---------------------------------------------------------------------------
// parallel_for
// ---------------------------------------------------------------------------

// Runs fn(i) for i in [begin, end). PRAM cost: work = n, depth = 1.
template <typename Fn>
void parallel_for(ThreadPool& pool, size_t begin, size_t end, Fn&& fn,
                  size_t grain = 1024) {
  if (begin >= end) return;
  size_t n = end - begin;
  pram_charge(n, 1);
  size_t chunks = std::min(pool.num_threads() * 4, (n + grain - 1) / grain);
  if (chunks <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  size_t per = (n + chunks - 1) / chunks;
  pool.run(chunks, [&](size_t c) {
    size_t lo = begin + c * per;
    size_t hi = std::min(end, lo + per);
    for (size_t i = lo; i < hi; ++i) fn(i);
  });
}

template <typename Fn>
void parallel_for(size_t begin, size_t end, Fn&& fn, size_t grain = 1024) {
  parallel_for(ThreadPool::global(), begin, end, std::forward<Fn>(fn), grain);
}

// ---------------------------------------------------------------------------
// reduce
// ---------------------------------------------------------------------------

// Tree reduction. PRAM cost: work = n, depth = ceil(log2 n).
template <typename T, typename Fn>
T parallel_reduce(ThreadPool& pool, size_t begin, size_t end, T identity,
                  Fn&& combine, const std::function<T(size_t)>& item,
                  size_t grain = 2048) {
  if (begin >= end) return identity;
  size_t n = end - begin;
  pram_charge(n, pram_detail::log2_ceil(n));
  size_t chunks = std::min(pool.num_threads() * 4, (n + grain - 1) / grain);
  if (chunks <= 1) {
    T acc = identity;
    for (size_t i = begin; i < end; ++i) acc = combine(acc, item(i));
    return acc;
  }
  size_t per = (n + chunks - 1) / chunks;
  std::vector<T> partial(chunks, identity);
  pool.run(chunks, [&](size_t c) {
    size_t lo = begin + c * per;
    size_t hi = std::min(end, lo + per);
    T acc = identity;
    for (size_t i = lo; i < hi; ++i) acc = combine(acc, item(i));
    partial[c] = acc;
  });
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

// ---------------------------------------------------------------------------
// scan (parallel prefix, [18,19])
// ---------------------------------------------------------------------------

// Exclusive prefix sums of v under +. Returns the total.
// PRAM cost: work = 2n, depth = 2 ceil(log2 n).
template <typename T>
T exclusive_scan(ThreadPool& pool, std::vector<T>& v, T identity = T{}) {
  size_t n = v.size();
  if (n == 0) return identity;
  pram_charge(2 * n, 2 * pram_detail::log2_ceil(n));
  size_t chunks = std::min(pool.num_threads() * 4, (n + 2047) / 2048);
  if (chunks <= 1) {
    T acc = identity;
    for (size_t i = 0; i < n; ++i) {
      T next = acc + v[i];
      v[i] = acc;
      acc = next;
    }
    return acc;
  }
  size_t per = (n + chunks - 1) / chunks;
  std::vector<T> sums(chunks, identity);
  pool.run(chunks, [&](size_t c) {
    size_t lo = c * per, hi = std::min(n, lo + per);
    T acc = identity;
    for (size_t i = lo; i < hi; ++i) acc = acc + v[i];
    sums[c] = acc;
  });
  T total = identity;
  for (size_t c = 0; c < chunks; ++c) {
    T next = total + sums[c];
    sums[c] = total;
    total = next;
  }
  pool.run(chunks, [&](size_t c) {
    size_t lo = c * per, hi = std::min(n, lo + per);
    T acc = sums[c];
    for (size_t i = lo; i < hi; ++i) {
      T next = acc + v[i];
      v[i] = acc;
      acc = next;
    }
  });
  return total;
}

template <typename T>
T exclusive_scan(std::vector<T>& v, T identity = T{}) {
  return exclusive_scan(ThreadPool::global(), v, identity);
}

// ---------------------------------------------------------------------------
// merge (Shiloach–Vishkin style splitting, [35])
// ---------------------------------------------------------------------------

// Merges sorted [a] and [b] into out (resized). Stable between inputs.
// PRAM cost: work = |a|+|b|, depth = ceil(log2(|a|+|b|)).
template <typename T, typename Less = std::less<T>>
void parallel_merge(ThreadPool& pool, const std::vector<T>& a,
                    const std::vector<T>& b, std::vector<T>& out,
                    Less less = Less{}) {
  size_t n = a.size() + b.size();
  out.resize(n);
  if (n == 0) return;
  pram_charge(n, pram_detail::log2_ceil(n));
  size_t chunks = std::min(pool.num_threads() * 4, (n + 4095) / 4096);
  if (chunks <= 1) {
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), less);
    return;
  }
  // Chunk c handles output positions [c*per, ...): find the (ai, bi) split
  // realizing output rank k by binary search on the diagonal.
  size_t per = (n + chunks - 1) / chunks;
  auto split_at = [&](size_t k) -> std::pair<size_t, size_t> {
    size_t lo = k > b.size() ? k - b.size() : 0;
    size_t hi = std::min(k, a.size());
    while (lo < hi) {
      size_t ai = lo + (hi - lo) / 2;
      size_t bi = k - ai;
      if (bi > 0 && ai < a.size() && less(a[ai], b[bi - 1])) {
        lo = ai + 1;  // a[ai] sorts before b[bi-1]: take more from a
      } else if (ai > 0 && bi < b.size() && less(b[bi], a[ai - 1])) {
        hi = ai;      // b[bi] sorts before a[ai-1]: take fewer from a
      } else {
        return {ai, bi};
      }
    }
    return {lo, k - lo};
  };
  pool.run(chunks, [&](size_t c) {
    size_t k0 = c * per, k1 = std::min(n, k0 + per);
    auto [a0, b0] = split_at(k0);
    auto [a1, b1] = split_at(k1);
    std::merge(a.begin() + a0, a.begin() + a1, b.begin() + b0,
               b.begin() + b1, out.begin() + k0, less);
  });
}

// ---------------------------------------------------------------------------
// sort (Cole's merge sort stand-in, [10])
// ---------------------------------------------------------------------------

// Bottom-up parallel merge sort.
// PRAM cost: work = n ceil(log2 n), depth = ceil(log2 n)^2 (charged via the
// per-round merges plus one charge for the base pass).
template <typename T, typename Less = std::less<T>>
void parallel_sort(ThreadPool& pool, std::vector<T>& v, Less less = Less{}) {
  size_t n = v.size();
  if (n <= 1) return;
  size_t base = std::max<size_t>(1, n / (pool.num_threads() * 4));
  base = std::max<size_t>(base, 1024);
  if (base >= n) {
    pram_charge(n * pram_detail::log2_ceil(n),
                pram_detail::log2_ceil(n) * pram_detail::log2_ceil(n));
    std::sort(v.begin(), v.end(), less);
    return;
  }
  size_t n_runs = (n + base - 1) / base;
  pram_charge(n * pram_detail::log2_ceil(base), pram_detail::log2_ceil(base));
  pool.run(n_runs, [&](size_t r) {
    size_t lo = r * base, hi = std::min(n, lo + base);
    std::sort(v.begin() + lo, v.begin() + hi, less);
  });
  std::vector<T> tmp(n);
  std::vector<T>* src = &v;
  std::vector<T>* dst = &tmp;
  for (size_t width = base; width < n; width *= 2) {
    size_t pairs = (n + 2 * width - 1) / (2 * width);
    for (size_t p = 0; p < pairs; ++p) {
      size_t lo = p * 2 * width;
      size_t mid = std::min(n, lo + width);
      size_t hi = std::min(n, lo + 2 * width);
      // Reuse parallel_merge across the pool for each pair in turn: with a
      // handful of runs the merges themselves are the parallel dimension.
      std::vector<T> a(src->begin() + lo, src->begin() + mid);
      std::vector<T> b(src->begin() + mid, src->begin() + hi);
      std::vector<T> m;
      parallel_merge(pool, a, b, m, less);
      std::copy(m.begin(), m.end(), dst->begin() + lo);
    }
    std::swap(src, dst);
  }
  if (src != &v) v = *src;
}

template <typename T, typename Less = std::less<T>>
void parallel_sort(std::vector<T>& v, Less less = Less{}) {
  parallel_sort(ThreadPool::global(), v, less);
}

}  // namespace rsp
