#pragma once
// CREW-PRAM primitive toolkit: parallel for / reduce / scan / merge / sort,
// plus the PRAM cost-model instrumentation used by the benchmarks.
//
// The paper states all bounds as (time, processors) pairs on a CREW-PRAM
// and composes parallel-prefix [18,19], parallel merging [35], and parallel
// sorting [10] as black boxes. We provide those boxes on the work-stealing
// Scheduler (pram/scheduler.h) and additionally *account* their idealized
// PRAM cost (pram/pram_cost.h).
//
// Nesting semantics: every primitive here is nest-safe. A parallel_for body
// may call any primitive on the same scheduler — including parallel_for
// itself — because forks go to the calling worker's own deque and joins
// execute pending tasks instead of blocking the worker. This is what lets
// the §5 divide-and-conquer run Monge products (parallel_for over rows)
// inside subtree tasks that are themselves forked in parallel.
//
// Grain-size control: `grain` is the minimum number of items a leaf task
// processes. parallel_for splits the range until leaves reach
// max(grain, n / (8 * num_threads)) items — small enough to balance via
// stealing, large enough to amortize the fork. The chunked primitives
// (reduce/scan/merge/sort) keep their fixed chunking: the chunk count is
// part of their charged PRAM cost shape.
//
// Cost accounting: every primitive charges its textbook work and depth once
// per invocation to the global tally and to every PramCostScope active on
// the calling thread (scopes propagate into forked tasks; see pram_cost.h).

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common.h"
#include "pram/pram_cost.h"
#include "pram/scheduler.h"

namespace rsp {

// ---------------------------------------------------------------------------
// parallel_for
// ---------------------------------------------------------------------------

// Runs fn(i) for i in [begin, end). PRAM cost: work = n, depth = 1.
// Reentrant: fn may itself call parallel_for on the same scheduler.
template <typename Fn>
void parallel_for(Scheduler& sched, size_t begin, size_t end, Fn&& fn,
                  size_t grain = 1024) {
  if (begin >= end) return;
  const size_t n = end - begin;
  pram_charge(n, 1);
  const size_t threads = sched.num_threads();
  const size_t leaf =
      std::max(std::max<size_t>(grain, 1), (n + 8 * threads - 1) / (8 * threads));
  if (threads <= 1 || n <= leaf) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Fork the upper half until the local range is a leaf; the forked halves
  // split further inside their own tasks, so the splitting itself runs in
  // parallel. `split` is declared before the group on purpose: if fn
  // throws on the caller's own leaf, unwinding destroys `g` first — which
  // joins the outstanding tasks still invoking `split` by reference —
  // before `split` itself goes away.
  std::function<void(size_t, size_t)> split;
  TaskGroup g(sched);
  split = [&](size_t lo, size_t hi) {
    while (hi - lo > leaf) {
      size_t mid = lo + (hi - lo + 1) / 2;
      g.run([&split, mid, hi] { split(mid, hi); });
      hi = mid;
    }
    for (size_t i = lo; i < hi; ++i) fn(i);
  };
  split(begin, end);
  g.wait();
}

template <typename Fn>
void parallel_for(size_t begin, size_t end, Fn&& fn, size_t grain = 1024) {
  parallel_for(Scheduler::global(), begin, end, std::forward<Fn>(fn), grain);
}

// Block form: runs fn(lo, hi) over disjoint chunks covering [begin, end),
// each at least `grain` items (modulo the final remainder). For bodies that
// amortize per-task state — e.g. the row-block Monge product reuses one
// SMAWK scratch across its whole block — where the per-index form would
// recreate that state every iteration. Same splitting, charging, and
// nesting semantics as parallel_for.
template <typename Fn>
void parallel_for_blocked(Scheduler& sched, size_t begin, size_t end, Fn&& fn,
                          size_t grain = 1024) {
  if (begin >= end) return;
  const size_t n = end - begin;
  pram_charge(n, 1);
  const size_t threads = sched.num_threads();
  const size_t leaf =
      std::max(std::max<size_t>(grain, 1), (n + 8 * threads - 1) / (8 * threads));
  if (threads <= 1 || n <= leaf) {
    fn(begin, end);
    return;
  }
  std::function<void(size_t, size_t)> split;
  TaskGroup g(sched);
  split = [&](size_t lo, size_t hi) {
    while (hi - lo > leaf) {
      size_t mid = lo + (hi - lo + 1) / 2;
      g.run([&split, mid, hi] { split(mid, hi); });
      hi = mid;
    }
    fn(lo, hi);
  };
  split(begin, end);
  g.wait();
}

// ---------------------------------------------------------------------------
// reduce
// ---------------------------------------------------------------------------

// Tree reduction. PRAM cost: work = n, depth = ceil(log2 n).
template <typename T, typename Fn>
T parallel_reduce(Scheduler& sched, size_t begin, size_t end, T identity,
                  Fn&& combine, const std::function<T(size_t)>& item,
                  size_t grain = 2048) {
  if (begin >= end) return identity;
  size_t n = end - begin;
  pram_charge(n, pram_detail::log2_ceil(n));
  size_t chunks = std::min(sched.num_threads() * 4, (n + grain - 1) / grain);
  if (chunks <= 1) {
    T acc = identity;
    for (size_t i = begin; i < end; ++i) acc = combine(acc, item(i));
    return acc;
  }
  size_t per = (n + chunks - 1) / chunks;
  std::vector<T> partial(chunks, identity);
  sched.run(chunks, [&](size_t c) {
    size_t lo = begin + c * per;
    size_t hi = std::min(end, lo + per);
    T acc = identity;
    for (size_t i = lo; i < hi; ++i) acc = combine(acc, item(i));
    partial[c] = acc;
  });
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

// ---------------------------------------------------------------------------
// scan (parallel prefix, [18,19])
// ---------------------------------------------------------------------------

// Exclusive prefix sums of v under +. Returns the total.
// PRAM cost: work = 2n, depth = 2 ceil(log2 n).
template <typename T>
T exclusive_scan(Scheduler& sched, std::vector<T>& v, T identity = T{}) {
  size_t n = v.size();
  if (n == 0) return identity;
  pram_charge(2 * n, 2 * pram_detail::log2_ceil(n));
  size_t chunks = std::min(sched.num_threads() * 4, (n + 2047) / 2048);
  if (chunks <= 1) {
    T acc = identity;
    for (size_t i = 0; i < n; ++i) {
      T next = acc + v[i];
      v[i] = acc;
      acc = next;
    }
    return acc;
  }
  size_t per = (n + chunks - 1) / chunks;
  std::vector<T> sums(chunks, identity);
  sched.run(chunks, [&](size_t c) {
    size_t lo = c * per, hi = std::min(n, lo + per);
    T acc = identity;
    for (size_t i = lo; i < hi; ++i) acc = acc + v[i];
    sums[c] = acc;
  });
  T total = identity;
  for (size_t c = 0; c < chunks; ++c) {
    T next = total + sums[c];
    sums[c] = total;
    total = next;
  }
  sched.run(chunks, [&](size_t c) {
    size_t lo = c * per, hi = std::min(n, lo + per);
    T acc = sums[c];
    for (size_t i = lo; i < hi; ++i) {
      T next = acc + v[i];
      v[i] = acc;
      acc = next;
    }
  });
  return total;
}

template <typename T>
T exclusive_scan(std::vector<T>& v, T identity = T{}) {
  return exclusive_scan(Scheduler::global(), v, identity);
}

// ---------------------------------------------------------------------------
// merge (Shiloach–Vishkin style splitting, [35])
// ---------------------------------------------------------------------------

// Merges sorted [a] and [b] into out (resized). Stable between inputs.
// PRAM cost: work = |a|+|b|, depth = ceil(log2(|a|+|b|)).
template <typename T, typename Less = std::less<T>>
void parallel_merge(Scheduler& sched, const std::vector<T>& a,
                    const std::vector<T>& b, std::vector<T>& out,
                    Less less = Less{}) {
  size_t n = a.size() + b.size();
  out.resize(n);
  if (n == 0) return;
  pram_charge(n, pram_detail::log2_ceil(n));
  size_t chunks = std::min(sched.num_threads() * 4, (n + 4095) / 4096);
  if (chunks <= 1) {
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), less);
    return;
  }
  // Chunk c handles output positions [c*per, ...): find the (ai, bi) split
  // realizing output rank k by binary search on the diagonal.
  size_t per = (n + chunks - 1) / chunks;
  auto split_at = [&](size_t k) -> std::pair<size_t, size_t> {
    size_t lo = k > b.size() ? k - b.size() : 0;
    size_t hi = std::min(k, a.size());
    while (lo < hi) {
      size_t ai = lo + (hi - lo) / 2;
      size_t bi = k - ai;
      if (bi > 0 && ai < a.size() && less(a[ai], b[bi - 1])) {
        lo = ai + 1;  // a[ai] sorts before b[bi-1]: take more from a
      } else if (ai > 0 && bi < b.size() && less(b[bi], a[ai - 1])) {
        hi = ai;      // b[bi] sorts before a[ai-1]: take fewer from a
      } else {
        return {ai, bi};
      }
    }
    return {lo, k - lo};
  };
  sched.run(chunks, [&](size_t c) {
    size_t k0 = c * per, k1 = std::min(n, k0 + per);
    auto [a0, b0] = split_at(k0);
    auto [a1, b1] = split_at(k1);
    std::merge(a.begin() + a0, a.begin() + a1, b.begin() + b0,
               b.begin() + b1, out.begin() + k0, less);
  });
}

// ---------------------------------------------------------------------------
// sort (Cole's merge sort stand-in, [10])
// ---------------------------------------------------------------------------

// Bottom-up parallel merge sort.
// PRAM cost: work = n ceil(log2 n), depth = ceil(log2 n)^2 (charged via the
// per-round merges plus one charge for the base pass).
template <typename T, typename Less = std::less<T>>
void parallel_sort(Scheduler& sched, std::vector<T>& v, Less less = Less{}) {
  size_t n = v.size();
  if (n <= 1) return;
  size_t base = std::max<size_t>(1, n / (sched.num_threads() * 4));
  base = std::max<size_t>(base, 1024);
  if (base >= n) {
    pram_charge(n * pram_detail::log2_ceil(n),
                pram_detail::log2_ceil(n) * pram_detail::log2_ceil(n));
    std::sort(v.begin(), v.end(), less);
    return;
  }
  size_t n_runs = (n + base - 1) / base;
  pram_charge(n * pram_detail::log2_ceil(base), pram_detail::log2_ceil(base));
  sched.run(n_runs, [&](size_t r) {
    size_t lo = r * base, hi = std::min(n, lo + base);
    std::sort(v.begin() + lo, v.begin() + hi, less);
  });
  std::vector<T> tmp(n);
  std::vector<T>* src = &v;
  std::vector<T>* dst = &tmp;
  for (size_t width = base; width < n; width *= 2) {
    size_t pairs = (n + 2 * width - 1) / (2 * width);
    for (size_t p = 0; p < pairs; ++p) {
      size_t lo = p * 2 * width;
      size_t mid = std::min(n, lo + width);
      size_t hi = std::min(n, lo + 2 * width);
      // Reuse parallel_merge across the scheduler for each pair in turn:
      // with a handful of runs the merges themselves are the parallel
      // dimension.
      std::vector<T> a(src->begin() + lo, src->begin() + mid);
      std::vector<T> b(src->begin() + mid, src->begin() + hi);
      std::vector<T> m;
      parallel_merge(sched, a, b, m, less);
      std::copy(m.begin(), m.end(), dst->begin() + lo);
    }
    std::swap(src, dst);
  }
  if (src != &v) v = *src;
}

template <typename T, typename Less = std::less<T>>
void parallel_sort(std::vector<T>& v, Less less = Less{}) {
  parallel_sort(Scheduler::global(), v, less);
}

}  // namespace rsp
