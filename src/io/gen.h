#pragma once
// Workload generators. Every generator produces scenes in the paper's
// general position (no two distinct obstacle edges collinear: all 2n
// x-edge-coordinates are distinct, likewise y), which the path tracer
// relies on (§1 of the paper makes the same assumption).
//
// Thread safety: pure functions — deterministic in (n, seed), no shared
// state; concurrent calls are safe.

#include <cstdint>
#include <random>

#include "core/scene.h"

namespace rsp {

// Uniformly scattered disjoint rectangles (rejection sampling) in a
// rectangular container.
Scene gen_uniform(size_t n, uint64_t seed);

// One rectangle per cell of a jittered ~sqrt(n) x sqrt(n) grid; dense and
// regular, the worst case for separator balance.
Scene gen_grid(size_t n, uint64_t seed);

// Staggered wall-to-wall slabs forming a serpentine corridor: shortest
// paths have Theta(n) segments (the long-k workload for path reporting).
Scene gen_corridors(size_t n, uint64_t seed);

// A few tight clusters of small rectangles with empty space between: very
// unbalanced median splits, stress for the separator.
Scene gen_clustered(size_t n, uint64_t seed);

// Like gen_uniform but inside a randomly corner-cut rectilinear convex
// polygon (exercises non-rectangular containers P).
Scene gen_uniform_convex(size_t n, uint64_t seed);

// Scatter with the fill fraction held constant (~1/4) as n grows: side
// caps scale as span/sqrt(n), so rejection sampling stays cheap at any n.
// This is the large-n workload — gen_uniform's linear side cap overfills
// the container and stops generating near n ~ 600.
Scene gen_sparse(size_t n, uint64_t seed);

// `count` distinct free lattice points in the container (none coincides
// with an obstacle vertex).
std::vector<Point> random_free_points(const Scene& scene, size_t count,
                                      uint64_t seed);

// All generators by name, for parameterized tests.
using SceneGen = Scene (*)(size_t, uint64_t);
struct NamedGen {
  const char* name;
  SceneGen fn;
};
inline constexpr NamedGen kAllGens[] = {
    {"uniform", gen_uniform},
    {"grid", gen_grid},
    {"corridors", gen_corridors},
    {"clustered", gen_clustered},
    {"uniform_convex", gen_uniform_convex},
    {"sparse", gen_sparse},
};

}  // namespace rsp
