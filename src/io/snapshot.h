#pragma once
// Versioned binary persistence for the built all-pairs structure
// (deployment layer; no counterpart in the paper — the paper's structure
// is "build once, query many", and a production deployment builds it once
// offline and fans identical replicas out to query servers, cf. the
// handle-based artifact reuse of rocSPARSE).
//
// Format (all integers little-endian, explicitly encoded — a snapshot
// written on any host loads on any other):
//
//   [ 8] magic            "RSPSNAP\0"
//   [ 4] format version   u32 (kSnapshotFormatVersion)
//   [ 1] payload kind     u8  (0 = scene only, 1 = scene + all-pairs,
//                              2 = scene + boundary tree; kind 2 requires
//                              format version >= 2)
//   [ 3] reserved         zero
//   ---- checksummed payload ----
//   [..] scene            container vertex cycle, then obstacle rects
//   [..] all-pairs state  (kind 1 only) m, dist (i64), pred (i32), pass (i8)
//   [..] boundary tree    (kind 2 only) node count, then each node in
//                         preorder: region vertices, B(Q) points, leaf
//                         rects, child ids, separator bends + orientation,
//                         and the transfer-set ports (rows / child rows /
//                         mids / mid child indices + the reach matrix;
//                         v3 prefixes each non-empty reach with a
//                         representation byte — 0 dense entries, 1 the
//                         breakpoint-compressed parts of
//                         monge/compressed.h: row0, col0, breakpoint
//                         count, CSR starts, rows, deltas)
//   ---- end of payload ----
//   [ 8] checksum         u64: 4-lane interleaved FNV-1a over the payload
//                         64-bit LE words (word i -> lane i mod 4, final
//                         partial word zero-padded, lanes FNV-folded)
//
// Version history: v1 wrote kinds 0 and 1 only; v2 added the boundary-tree
// kind; v3 Monge-compresses the boundary-tree port matrices (dense v1/v2
// snapshots still load — their ports are compressed on load by the same
// deterministic encoder the builder runs). This build writes v3 and reads
// v1..v3; the payload encodings of the non-tree kinds are unchanged.
//
// The all-pairs section is exactly the O(n^2) product of the §9 build
// (AllPairsData: the V_R-to-V_R length matrix plus predecessor/pass
// tables). Everything else an engine needs to answer length()/path() —
// ray-shooting trees, escape-path forests, shortest path trees — is
// derived from (scene, AllPairsData) in O(n log n) on load, so loading
// skips the expensive build entirely. The boundary-tree section is the
// retained §5 recursion tree (DncTree) and is sublinear in the all-pairs
// tables: node regions, boundary discretizations and transfer sets, never
// any n x n matrix.
//
// Error contract: save/load never throw across this API boundary. Loads
// reject bad magic, truncation, checksum mismatch, and internally
// inconsistent tables with StatusCode::kCorruptSnapshot, and a format
// version we do not speak with StatusCode::kVersionMismatch; precise
// messages name the offending section.
//
// Thread safety: free functions with no shared state; concurrent calls on
// distinct streams are safe. The caller owns stream synchronization.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>

#include "api/status.h"
#include "core/dnc_builder.h"
#include "core/scene.h"
#include "core/seq_builder.h"

namespace rsp {

inline constexpr uint32_t kSnapshotFormatVersion = 3;
// Oldest format version this build still reads.
inline constexpr uint32_t kSnapshotMinReadVersion = 1;

enum class SnapshotPayloadKind : uint8_t {
  kSceneOnly = 0,     // structure-free backends (Dijkstra) / unbuilt engines
  kAllPairs = 1,      // scene + the built AllPairsData
  kBoundaryTree = 2,  // scene + the retained DncTree (format v2+)
};

const char* payload_kind_name(SnapshotPayloadKind kind);

// What a snapshot restores to. `data` is engaged iff kind == kAllPairs;
// `tree` is set iff kind == kBoundaryTree.
struct SnapshotPayload {
  SnapshotPayloadKind kind = SnapshotPayloadKind::kSceneOnly;
  Scene scene;
  std::optional<AllPairsData> data;
  std::shared_ptr<const DncTree> tree;
};

// Header + sizes, readable without materializing the payload tables
// (rspcli info). Reads and validates the fixed header and the scene
// section only.
struct SnapshotInfo {
  uint32_t format_version = 0;
  SnapshotPayloadKind kind = SnapshotPayloadKind::kSceneOnly;
  size_t num_obstacles = 0;
  size_t num_container_vertices = 0;
  size_t num_vertices = 0;    // m (all-pairs snapshots only)
  size_t num_tree_nodes = 0;  // recursion nodes (boundary-tree only)
};

// Writes a snapshot of `scene` (and, when non-null, the built all-pairs
// state) to `os`. `data`, when given, must belong to `scene`
// (data->m == 4 * scene.num_obstacles()). Stream failures come back as
// StatusCode::kIoError.
Status save_snapshot(std::ostream& os, const Scene& scene,
                     const AllPairsData* data);

// Writes a boundary-tree snapshot (SnapshotPayloadKind::kBoundaryTree):
// the scene plus the retained recursion tree. `tree` must have been built
// for `scene` (load re-validates every structural invariant).
Status save_snapshot(std::ostream& os, const Scene& scene,
                     const DncTree& tree);

// Reads a snapshot back. Never throws: malformed input of any kind maps
// to a non-OK Status as documented above. On success a seekable stream is
// left positioned just past the snapshot's final byte, so consecutive
// snapshots in one stream compose; on error (and for non-seekable
// streams) the position is unspecified.
Result<SnapshotPayload> load_snapshot(std::istream& is);

// Header/scene introspection (see SnapshotInfo). On success a seekable
// stream is rewound to where the snapshot began, so it composes with a
// subsequent load_snapshot on the same stream; on error (and for
// non-seekable streams) the position is unspecified.
Result<SnapshotInfo> read_snapshot_info(std::istream& is);

}  // namespace rsp
