#pragma once
// Versioned binary persistence for the built all-pairs structure
// (deployment layer; no counterpart in the paper — the paper's structure
// is "build once, query many", and a production deployment builds it once
// offline and fans identical replicas out to query servers, cf. the
// handle-based artifact reuse of rocSPARSE).
//
// Format (all integers little-endian, explicitly encoded — a snapshot
// written on any host loads on any other):
//
//   [ 8] magic            "RSPSNAP\0"
//   [ 4] format version   u32 (kSnapshotFormatVersion)
//   [ 1] payload kind     u8  (0 = scene only, 1 = scene + all-pairs,
//                              2 = scene + boundary tree; kind 2 requires
//                              format version >= 2; 3 = scene + one
//                              all-pairs row shard, requires version >= 4)
//   [ 3] reserved         zero
//   ---- checksummed region (v5: index + padding + sections; v1..v4: the
//        sequential payload) ----
//   v5 layout:
//   [ 4] section count    u32
//   [ 4] flags            u32 (bit 0: dist section is delta-encoded)
//   [24 x count] index    per section: id u32, reserved u32 (zero),
//                         absolute file offset u64, byte size u64.
//                         Section ids: 1 scene+meta, 2 dist, 3 pred,
//                         4 pass, 5 boundary-tree blob. Offsets are
//                         64-byte aligned and strictly increasing; the
//                         gaps are zero padding (checksummed).
//   [..] sections         scene+meta: the scene encoding, then (all-pairs)
//                         u64 m, or (shard) u64 m, u64 row_lo, u64 row_hi.
//                         dist: raw i64 entries, or — when flag bit 0 is
//                         set — one zig-zag LEB128 varint per entry
//                         holding dist(a,b) minus the L1 distance of the
//                         endpoint vertices (the paper's lower bound, so
//                         honest residuals are small non-negatives and
//                         most entries take 1-2 bytes). pred: raw i32.
//                         pass: raw i8. tree blob: the v3+ tree encoding.
//   v1..v4 layout (sequential, no index):
//   [..] scene            container vertex cycle, then obstacle rects
//   [..] all-pairs state  (kind 1 only) m, dist (i64), pred (i32), pass (i8)
//   [..] boundary tree    (kind 2 only) node count, then each node in
//                         preorder: region vertices, B(Q) points, leaf
//                         rects, child ids, separator bends + orientation,
//                         and the transfer-set ports (rows / child rows /
//                         mids / mid child indices + the reach matrix;
//                         v3 prefixes each non-empty reach with a
//                         representation byte — 0 dense entries, 1 the
//                         breakpoint-compressed parts of
//                         monge/compressed.h: row0, col0, breakpoint
//                         count, CSR starts, rows, deltas)
//   [..] all-pairs shard  (kind 3 only) m, row_lo, row_hi, then the
//                         row-major slices of the three tables restricted
//                         to source rows [row_lo, row_hi): dist (i64),
//                         pred (i32), pass (i8), each (row_hi-row_lo) x m
//   ---- end of checksummed region ----
//   [ 8] checksum         u64 over the region's 64-bit LE words, final
//                         partial word zero-padded, lanes FNV-folded at
//                         finish. v1..v4: 4-lane interleaved FNV-1a
//                         (word i -> lane i mod 4). v5: 8 rotate-XOR
//                         lanes (word i -> lane i mod 8 as
//                         h = rotl(h, 27) ^ w) — no multiply in the hot
//                         loop, so the mmap open's single verification
//                         pass runs at memory speed
//
// Version history: v1 wrote kinds 0 and 1 only; v2 added the boundary-tree
// kind; v3 Monge-compresses the boundary-tree port matrices (dense v1/v2
// snapshots still load); v4 adds the all-pairs row-shard kind for fleet
// deployments (io/manifest.h names a shard set and Engine::open mounts the
// union); v5 adds the section index + 64-byte alignment so
// load_snapshot_mapped can mmap the file and adopt the bulk tables in
// place, and delta-encodes the dominant dist table against the L1 lower
// bound. This build writes v5 (SnapshotSaveOptions can pin an older
// version for fixtures) and reads v1..v5.
//
// The all-pairs section is exactly the O(n^2) product of the §9 build
// (AllPairsData: the V_R-to-V_R length matrix plus predecessor/pass
// tables). Everything else an engine needs to answer length()/path() —
// ray-shooting trees, escape-path forests, shortest path trees — is
// derived from (scene, AllPairsData) in O(n log n) on load, so loading
// skips the expensive build entirely. The boundary-tree section is the
// retained §5 recursion tree (DncTree) and is sublinear in the all-pairs
// tables: node regions, boundary discretizations and transfer sets, never
// any n x n matrix.
//
// Error contract: save/load never throw across this API boundary. Loads
// reject bad magic, truncation, checksum mismatch, and internally
// inconsistent tables with StatusCode::kCorruptSnapshot, and a format
// version we do not speak with StatusCode::kVersionMismatch; precise
// messages name the offending section.
//
// Thread safety: free functions with no shared state; concurrent calls on
// distinct streams are safe. The caller owns stream synchronization.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.h"
#include "core/dnc_builder.h"
#include "core/scene.h"
#include "core/seq_builder.h"

namespace rsp {

inline constexpr uint32_t kSnapshotFormatVersion = 5;
// Oldest format version this build still reads.
inline constexpr uint32_t kSnapshotMinReadVersion = 1;

enum class SnapshotPayloadKind : uint8_t {
  kSceneOnly = 0,      // structure-free backends (Dijkstra) / unbuilt engines
  kAllPairs = 1,       // scene + the built AllPairsData
  kBoundaryTree = 2,   // scene + the retained DncTree (format v2+)
  kAllPairsShard = 3,  // scene + one source-row slice of the tables (v4+);
                       //   only meaningful as part of a manifest-named
                       //   shard set (io/manifest.h)
};

const char* payload_kind_name(SnapshotPayloadKind kind);
// Inverse of payload_kind_name (accepts exactly its outputs); nullopt for
// anything else. Manifest parsing uses this.
std::optional<SnapshotPayloadKind> payload_kind_from_name(
    std::string_view name);

// Writer-side knobs. The defaults are what this build ships; tests pin
// `format_version` to write fixtures for the cross-version load matrix.
struct SnapshotSaveOptions {
  // Delta-encode the dist table against the L1 lower bound (v5 only;
  // ignored for older format versions, which have no delta encoding).
  bool delta_encode = true;
  // Format version to write, in [kSnapshotMinReadVersion,
  // kSnapshotFormatVersion]. Each payload kind still needs the version
  // that introduced it (tree >= 2, shard >= 4).
  uint32_t format_version = kSnapshotFormatVersion;
};

// Save-side view of one all-pairs row shard: borrowed row-major slices of
// the full tables, each spanning source rows [row_lo, row_hi) x all m
// columns. Engine::save with .shards > 0 builds these over the resident
// tables so the k shard writers never copy the O(m^2) state.
struct AllPairsShardView {
  size_t m = 0;
  size_t row_lo = 0, row_hi = 0;
  const Length* dist = nullptr;   // (row_hi - row_lo) * m entries
  const int32_t* pred = nullptr;  // (row_hi - row_lo) * m entries
  const int8_t* pass = nullptr;   // (row_hi - row_lo) * m entries
};

// Load-side form of the same slice. Owning by default; a mapped load
// leaves the vectors empty and points the views into the mapping kept
// alive by `arena` (all readers go through the *_data() accessors).
struct AllPairsShardData {
  size_t m = 0;
  size_t row_lo = 0, row_hi = 0;
  std::vector<Length> dist;
  std::vector<int32_t> pred;
  std::vector<int8_t> pass;
  const Length* dist_view = nullptr;
  const int32_t* pred_view = nullptr;
  const int8_t* pass_view = nullptr;
  std::shared_ptr<const void> arena;
  size_t rows() const { return row_hi - row_lo; }
  const Length* dist_data() const { return dist_view ? dist_view : dist.data(); }
  const int32_t* pred_data() const { return pred_view ? pred_view : pred.data(); }
  const int8_t* pass_data() const { return pass_view ? pass_view : pass.data(); }
};

// What a snapshot restores to. `data` is engaged iff kind == kAllPairs;
// `tree` is set iff kind == kBoundaryTree; `shard` is engaged iff kind ==
// kAllPairsShard. `payload_checksum` is the file's verified footer value —
// manifest mounting compares it against the manifest's recorded checksum
// to catch internally-valid-but-swapped shard files.
struct SnapshotPayload {
  SnapshotPayloadKind kind = SnapshotPayloadKind::kSceneOnly;
  Scene scene;
  std::optional<AllPairsData> data;
  std::shared_ptr<const DncTree> tree;
  std::optional<AllPairsShardData> shard;
  uint64_t payload_checksum = 0;
};

// Header + sizes, readable without materializing the payload tables
// (rspcli info). Reads and validates the fixed header and the scene
// section only.
struct SnapshotInfo {
  uint32_t format_version = 0;
  SnapshotPayloadKind kind = SnapshotPayloadKind::kSceneOnly;
  size_t num_obstacles = 0;
  size_t num_container_vertices = 0;
  size_t num_vertices = 0;    // m (all-pairs and shard snapshots)
  size_t num_tree_nodes = 0;  // recursion nodes (boundary-tree only)
  size_t row_lo = 0, row_hi = 0;  // source-row range (shard snapshots only)
  // v5 only (zero/false for older versions): on-disk size of the dist
  // section and whether it is delta-encoded.
  uint64_t dist_section_bytes = 0;
  bool dist_delta_encoded = false;
};

// Writes a snapshot of `scene` (and, when non-null, the built all-pairs
// state) to `os`. `data`, when given, must belong to `scene`
// (data->m == 4 * scene.num_obstacles()). Stream failures come back as
// StatusCode::kIoError.
Status save_snapshot(std::ostream& os, const Scene& scene,
                     const AllPairsData* data,
                     const SnapshotSaveOptions& opt = {});

// Writes a boundary-tree snapshot (SnapshotPayloadKind::kBoundaryTree):
// the scene plus the retained recursion tree. `tree` must have been built
// for `scene` (load re-validates every structural invariant).
Status save_snapshot(std::ostream& os, const Scene& scene,
                     const DncTree& tree, const SnapshotSaveOptions& opt = {});

// Writes one all-pairs row shard (SnapshotPayloadKind::kAllPairsShard).
// The view must belong to `scene` (m == 4 * obstacles, 0 <= row_lo <
// row_hi <= m, non-null slices). On success `*payload_checksum` (when
// non-null) receives the footer checksum the file carries — the manifest
// records it per shard so a mount detects a swapped or regenerated shard
// file even when the file is internally consistent.
Status save_snapshot(std::ostream& os, const Scene& scene,
                     const AllPairsShardView& shard,
                     uint64_t* payload_checksum = nullptr,
                     const SnapshotSaveOptions& opt = {});

// Reads a snapshot back. Never throws: malformed input of any kind maps
// to a non-OK Status as documented above. On success a seekable stream is
// left positioned just past the snapshot's final byte, so consecutive
// snapshots in one stream compose; on error (and for non-seekable
// streams) the position is unspecified.
Result<SnapshotPayload> load_snapshot(std::istream& is);

// Replica fast path: maps `path` (MAP_PRIVATE, read-only) and adopts the
// bulk tables in place — the index is bounds-checked against the actual
// file size, the whole checksummed region is verified once, and then
// pred/pass (and raw dist) become views into the mapping instead of
// copies; a delta-encoded dist decodes into owned storage. The payload's
// arena keeps the mapping alive for the tables' lifetime. Pre-v5 files
// (and boundary-tree payloads, which have no flat tables to adopt) fall
// back to the eager decoder reading from the mapped bytes. Integrity of
// the adopted tables rests on the verified checksum plus linear range
// scans; unlike the eager path the O(m^2) pred-descent recheck is skipped
// here — the §8 walks bound their steps instead, so even a forged-footer
// file degrades to an error, not a hang.
Result<SnapshotPayload> load_snapshot_mapped(const std::string& path);

// Header/scene introspection (see SnapshotInfo). On success a seekable
// stream is rewound to where the snapshot began, so it composes with a
// subsequent load_snapshot on the same stream; on error (and for
// non-seekable streams) the position is unspecified.
Result<SnapshotInfo> read_snapshot_info(std::istream& is);

}  // namespace rsp
