#include "io/mapped.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define RSP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define RSP_HAVE_MMAP 0
#endif

namespace rsp {

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::reset() {
#if RSP_HAVE_MMAP
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
}

Status MappedFile::map(const std::string& path) {
#if RSP_HAVE_MMAP
  reset();
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "' for mapping");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("cannot stat '" + path + "'");
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::CorruptSnapshot("'" + path + "' is empty");
  }
  // MAP_PRIVATE: the tables are adopted read-only; a private mapping keeps
  // any accidental write from reaching the artifact.
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (p == MAP_FAILED) {
    return Status::IoError("mmap failed on '" + path + "'");
  }
  // The checksum pass reads the file front to back once; tell the kernel.
  ::madvise(p, size, MADV_WILLNEED);
  data_ = static_cast<const uint8_t*>(p);
  size_ = size;
  return Status::Ok();
#else
  (void)path;
  return Status::IoError("file mapping is not supported on this platform");
#endif
}

}  // namespace rsp
