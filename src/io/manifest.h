#pragma once
// Shard-set manifest: the small text file naming a row-partitioned
// snapshot fleet (io/snapshot.h kind 3, SnapshotPayloadKind::kAllPairsShard).
//
// Engine::save(path, {.shards = k}) writes k shard snapshots — shard i
// holds source rows [row_lo, row_hi) of the all-pairs tables, all m
// columns — plus this manifest at `path`. Engine::open recognizes the
// magic, verifies each shard against its manifest record, and mounts
// either the union (MountMode::kUnion: every row, any query answerable)
// or one shard's rows (MountMode::kOwnedRows: ~1/k the memory; queries
// needing other rows fail with NOT_OWNER and the router re-routes them).
// `rspcli serve --router` reads the same manifest to route requests to
// shard servers by source x-coordinate slab.
//
// Format (text, LF lines, fields separated by single spaces):
//
//   RSPMANIFEST 1
//   obstacles <n>
//   m <m>
//   shards <k>
//   shard <i> <file> <kind> <row_lo> <row_hi> <x_lo> <x_hi> <checksum>
//   ... (k shard lines, i ascending from 0)
//
// <file> is relative to the manifest's own directory (a shard set moves as
// one directory). <kind> is a payload_kind_name; version 1 manifests admit
// only "all-pairs-shard". [row_lo, row_hi) ranges must partition [0, m)
// contiguously in order; [x_lo, x_hi) are the router's source-coordinate
// slabs, which must tile the x-axis contiguously (ascending, gap-free —
// see route_by_x below for why the map must be total). <checksum> is the
// shard file's
// payload checksum as 16 lowercase hex digits — recorded here so a mount
// detects a swapped or regenerated shard file even when that file is
// internally consistent.
//
// Error contract mirrors io/snapshot.h: nothing here throws across the
// API. Structural inconsistency (bad ranges, bad fields, checksum text) is
// kCorruptSnapshot; a payload kind the manifest version does not admit
// (or mixed kinds) is kSnapshotMismatch; file-system failures are
// kIoError. Precise messages name the offending shard.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "api/status.h"
#include "io/snapshot.h"

namespace rsp {

inline constexpr uint32_t kManifestFormatVersion = 1;
// First bytes of every manifest file; Engine::open sniffs this to pick the
// mount path (binary snapshots start with "RSPSNAP\0" instead).
inline constexpr const char* kManifestMagic = "RSPMANIFEST";

struct ShardEntry {
  std::string file;  // relative to the manifest's directory
  SnapshotPayloadKind kind = SnapshotPayloadKind::kAllPairsShard;
  size_t row_lo = 0, row_hi = 0;  // source rows [row_lo, row_hi)
  Coord x_lo = 0, x_hi = 0;       // routing slab: source x in [x_lo, x_hi)
  uint64_t checksum = 0;          // the shard file's payload checksum
};

struct ShardManifest {
  size_t num_obstacles = 0;
  size_t m = 0;  // == 4 * num_obstacles
  std::vector<ShardEntry> shards;
};

// Structural validation, shared by save and load: m == 4 * obstacles > 0,
// at least one shard, row ranges a contiguous in-order partition of
// [0, m), slabs a contiguous ascending tiling (no gaps or overlaps — every
// source coordinate must route to exactly one shard), one uniform payload
// kind admitted by this manifest version. Does not touch the file system —
// the per-shard file checks (existence, checksum, range agreement) happen
// at mount (Engine::open).
Status validate_manifest(const ShardManifest& man);

Status save_manifest(std::ostream& os, const ShardManifest& man);
Status save_manifest(const std::string& path, const ShardManifest& man);
Result<ShardManifest> load_manifest(std::istream& is);
Result<ShardManifest> load_manifest(const std::string& path);

// True when `path` opens and begins with kManifestMagic.
bool is_manifest_file(const std::string& path);

// The absolute/joined path of a shard file named by a manifest at
// `manifest_path` (manifest-relative resolution).
std::string shard_file_path(const std::string& manifest_path,
                            const ShardEntry& entry);

// The shard whose [x_lo, x_hi) slab contains `x` — the router's first-try
// source routing rule. Deterministic and total: slabs are half-open, so a
// boundary coordinate x == x_hi[i] routes to shard i+1, never both; points
// left of every slab map to shard 0, right of every slab to the last, and
// validate_manifest rejects gaps between slabs. Under MountMode::kUnion
// the pick is a pure affinity hint (every server holds all rows). Under
// MountMode::kOwnedRows it is load-bearing: it must name the shard that
// *probably* owns the query's source rows, and when the query's §6.4
// reduction lands on rows another shard owns, that shard answers
// "ERR NOT_OWNER <row_lo> <row_hi>" and the router re-routes — slab edges
// affect the re-route rate, never correctness.
size_t route_by_x(const ShardManifest& man, Coord x);

}  // namespace rsp
