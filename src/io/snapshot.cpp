#include "io/snapshot.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>

#include "io/mapped.h"

namespace rsp {

namespace {

constexpr std::array<char, 8> kMagic = {'R', 'S', 'P', 'S', 'N', 'A', 'P', 0};

// Payload integrity check (not cryptographic): FNV-1a over the payload
// split into consecutive 64-bit little-endian words, the final partial
// word zero-padded. Word-at-a-time keeps hashing negligible next to the
// stream I/O for the multi-megabyte all-pairs tables.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

constexpr bool kHostLittleEndian = std::endian::native == std::endian::little;

struct BlockHash {
  // Four interleaved FNV lanes (word i goes to lane i mod 4), folded
  // together at finish: the per-lane multiply chains are independent, so
  // the CPU pipelines them instead of serializing on the imul latency —
  // hashing the multi-megabyte tables stays negligible next to the I/O.
  uint64_t h[4] = {kFnvOffset, kFnvOffset + 1, kFnvOffset + 2,
                   kFnvOffset + 3};
  unsigned lane = 0;
  uint64_t pend = 0;
  unsigned pend_n = 0;

  void word(uint64_t w) {
    h[lane] = (h[lane] ^ w) * kFnvPrime;
    lane = (lane + 1) & 3;
  }
  void byte(unsigned char c) {
    pend |= static_cast<uint64_t>(c) << (8 * pend_n);
    if (++pend_n == 8) {
      word(pend);
      pend = 0;
      pend_n = 0;
    }
  }
  void update(const void* p, size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    while (n > 0 && pend_n != 0) {
      byte(*b++);
      --n;
    }
    if constexpr (kHostLittleEndian) {
      // Rotate until lane 0, then run the four multiply chains unrolled
      // with every lane in a register — bit-identical to the word-at-a-
      // time loop (word i still lands in lane i mod 4), but the indexed
      // h[lane] store/load per word is gone, so the bulk-table hash runs
      // at memory speed instead of serializing on it (~6x on the
      // gigabyte-scale v5 sections).
      while (lane != 0 && n >= 8) {
        uint64_t w;
        std::memcpy(&w, b, 8);
        word(w);
        b += 8;
        n -= 8;
      }
      if (lane == 0 && n >= 32) {
        uint64_t h0 = h[0], h1 = h[1], h2 = h[2], h3 = h[3];
        for (; n >= 32; b += 32, n -= 32) {
          uint64_t w0, w1, w2, w3;
          std::memcpy(&w0, b, 8);
          std::memcpy(&w1, b + 8, 8);
          std::memcpy(&w2, b + 16, 8);
          std::memcpy(&w3, b + 24, 8);
          h0 = (h0 ^ w0) * kFnvPrime;
          h1 = (h1 ^ w1) * kFnvPrime;
          h2 = (h2 ^ w2) * kFnvPrime;
          h3 = (h3 ^ w3) * kFnvPrime;
        }
        h[0] = h0;
        h[1] = h1;
        h[2] = h2;
        h[3] = h3;
      }
      for (; n >= 8; b += 8, n -= 8) {
        uint64_t w;
        std::memcpy(&w, b, 8);
        word(w);
      }
    } else {
      for (; n >= 8; b += 8, n -= 8) {
        uint64_t w = 0;
        for (size_t i = 0; i < 8; ++i) w |= static_cast<uint64_t>(b[i]) << (8 * i);
        word(w);
      }
    }
    while (n > 0) {
      byte(*b++);
      --n;
    }
  }
  uint64_t finish() {
    if (pend_n != 0) {
      word(pend);
      pend = 0;
      pend_n = 0;
    }
    uint64_t out = kFnvOffset;
    for (uint64_t lane_h : h) out = (out ^ lane_h) * kFnvPrime;
    return out;
  }
};

// The v5 footer hash: eight rotate-XOR lanes (word i lands in lane
// i mod 8 as h = rotl(h, 27) ^ w), folded through FNV multiplies only
// at finish. The hot loop carries no multiply dependency at all, so it
// runs at memory speed over the gigabyte v5 tables — roughly 2x the
// 4-lane FNV above, and the mmap open's single checksum pass is the
// dominant cost it feeds. Detection properties match the corruption
// (not adversarial) threat model of the FNV footer: per-lane
// rotate/XOR is bijective, so any single flipped bit survives to the
// fold, and the fold's multiplies give the footer compare its
// avalanche. v1-v4 files keep BlockHash — their footers were written
// with it; v5 introduced this hash along with the section index, so
// every v5 file carries it from birth.
struct StripeHash {
  uint64_t h[8] = {kFnvOffset,     kFnvOffset + 1, kFnvOffset + 2,
                   kFnvOffset + 3, kFnvOffset + 4, kFnvOffset + 5,
                   kFnvOffset + 6, kFnvOffset + 7};
  unsigned lane = 0;
  uint64_t pend = 0;
  unsigned pend_n = 0;

  static uint64_t rotl(uint64_t v, int s) { return (v << s) | (v >> (64 - s)); }
  void word(uint64_t w) {
    h[lane] = rotl(h[lane], 27) ^ w;
    lane = (lane + 1) & 7;
  }
  void byte(unsigned char c) {
    pend |= static_cast<uint64_t>(c) << (8 * pend_n);
    if (++pend_n == 8) {
      word(pend);
      pend = 0;
      pend_n = 0;
    }
  }
  void update(const void* p, size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    while (n > 0 && pend_n != 0) {
      byte(*b++);
      --n;
    }
    if constexpr (kHostLittleEndian) {
      while (lane != 0 && n >= 8) {
        uint64_t w;
        std::memcpy(&w, b, 8);
        word(w);
        b += 8;
        n -= 8;
      }
      if (lane == 0 && n >= 64) {
        uint64_t l0 = h[0], l1 = h[1], l2 = h[2], l3 = h[3];
        uint64_t l4 = h[4], l5 = h[5], l6 = h[6], l7 = h[7];
        for (; n >= 64; b += 64, n -= 64) {
          uint64_t w[8];
          std::memcpy(w, b, 64);
          l0 = rotl(l0, 27) ^ w[0];
          l1 = rotl(l1, 27) ^ w[1];
          l2 = rotl(l2, 27) ^ w[2];
          l3 = rotl(l3, 27) ^ w[3];
          l4 = rotl(l4, 27) ^ w[4];
          l5 = rotl(l5, 27) ^ w[5];
          l6 = rotl(l6, 27) ^ w[6];
          l7 = rotl(l7, 27) ^ w[7];
        }
        h[0] = l0;
        h[1] = l1;
        h[2] = l2;
        h[3] = l3;
        h[4] = l4;
        h[5] = l5;
        h[6] = l6;
        h[7] = l7;
      }
      for (; n >= 8; b += 8, n -= 8) {
        uint64_t w;
        std::memcpy(&w, b, 8);
        word(w);
      }
    } else {
      for (; n >= 8; b += 8, n -= 8) {
        uint64_t w = 0;
        for (size_t i = 0; i < 8; ++i) w |= static_cast<uint64_t>(b[i]) << (8 * i);
        word(w);
      }
    }
    while (n > 0) {
      byte(*b++);
      --n;
    }
  }
  uint64_t finish() {
    if (pend_n != 0) {
      word(pend);
      pend = 0;
      pend_n = 0;
    }
    uint64_t out = kFnvOffset;
    for (uint64_t lane_h : h) out = (out ^ lane_h) * kFnvPrime;
    return out;
  }
};

// Version-selected footer hash carried by Writer/Reader: BlockHash for
// v1-v4 footers, StripeHash once a v5 path announces itself (before the
// first hashed byte — the 16-byte header is raw on both sides).
struct SnapHash {
  bool stripe = false;
  BlockHash fnv;
  StripeHash st;
  void update(const void* p, size_t n) {
    if (stripe) {
      st.update(p, n);
    } else {
      fnv.update(p, n);
    }
  }
  uint64_t finish() { return stripe ? st.finish() : fnv.finish(); }
};

// Thrown inside the reader on malformed input; the public entry points
// catch it (and everything else) and return a Status — nothing escapes
// this translation unit as an exception.
struct SnapshotError {
  Status status;
};

[[noreturn]] void fail_corrupt(const std::string& msg) {
  throw SnapshotError{Status::CorruptSnapshot(msg)};
}

// Buffered little-endian encoder. Small fields batch through a 64 KiB
// buffer; table-sized writes bypass it with one stream write.
class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) { buf_.reserve(kBufCap); }
  ~Writer() { flush(); }

  void raw(const void* p, size_t n) {  // header bytes: not checksummed
    pos_ += n;
    if (n >= kBufCap) {
      flush();
      os_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
      return;
    }
    const auto* b = static_cast<const char*>(p);
    if (buf_.size() + n > kBufCap) flush();
    buf_.insert(buf_.end(), b, b + n);
  }
  void bytes(const void* p, size_t n) {
    hash_.update(p, n);
    raw(p, n);
  }
  void flush() {
    if (!buf_.empty()) {
      os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
      buf_.clear();
    }
  }
  void u8(uint8_t v) { bytes(&v, 1); }
  void u32(uint32_t v) { put_le(v, 4); }
  void u64(uint64_t v) { put_le(v, 8); }
  void i64(int64_t v) { put_le(static_cast<uint64_t>(v), 8); }
  void i32(int32_t v) {
    put_le(static_cast<uint64_t>(static_cast<uint32_t>(v)), 4);
  }
  void i8(int8_t v) { u8(static_cast<uint8_t>(v)); }
  void point(const Point& p) {
    i64(p.x);
    i64(p.y);
  }

  uint64_t finish_hash() { return hash_.finish(); }
  // Switch the footer hash to the v5 StripeHash. Must be called before
  // the first hashed byte (the header goes through raw()).
  void use_v5_hash() { hash_.stripe = true; }
  bool good() const { return os_.good(); }
  // Bytes emitted so far (header included) — the v5 writer uses this to
  // compute alignment padding without seeking.
  size_t position() const { return pos_; }

 private:
  void put_le(uint64_t v, size_t n) {
    unsigned char buf[8];
    for (size_t i = 0; i < n; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(buf, n);
  }

  static constexpr size_t kBufCap = 64 * 1024;
  std::ostream& os_;
  std::vector<char> buf_;
  size_t pos_ = 0;
  SnapHash hash_;
};

// Buffered decoder, mirror of Writer. All stream reads go through the
// Reader (nothing reads the stream behind its back); table-sized reads
// land directly in the caller's storage.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) { buf_.resize(kBufCap); }

  void raw(void* p, size_t n, const char* what) {
    consumed_ += n;
    auto* out = static_cast<char*>(p);
    // Drain what the buffer already holds, then read the bulk directly.
    const size_t take0 = std::min(n, len_ - pos_);
    std::memcpy(out, buf_.data() + pos_, take0);
    pos_ += take0;
    out += take0;
    n -= take0;
    while (n > 0) {
      if (n >= kBufCap) {
        is_.read(out, static_cast<std::streamsize>(n));
        const size_t got = static_cast<size_t>(is_.gcount());
        if (got != n) {
          fail_corrupt(std::string("truncated snapshot while reading ") + what);
        }
        return;
      }
      is_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
      len_ = static_cast<size_t>(is_.gcount());
      pos_ = 0;
      if (len_ == 0) {
        fail_corrupt(std::string("truncated snapshot while reading ") + what);
      }
      const size_t take = std::min(n, len_);
      std::memcpy(out, buf_.data(), take);
      pos_ = take;
      out += take;
      n -= take;
    }
  }
  void bytes(void* p, size_t n, const char* what) {
    raw(p, n, what);
    hash_.update(p, n);
  }
  uint8_t u8(const char* what) {
    uint8_t v;
    bytes(&v, 1, what);
    return v;
  }
  uint32_t u32(const char* what) { return static_cast<uint32_t>(get_le(4, what)); }
  uint64_t u64(const char* what) { return get_le(8, what); }
  int64_t i64(const char* what) { return static_cast<int64_t>(get_le(8, what)); }
  int32_t i32(const char* what) {
    return static_cast<int32_t>(static_cast<uint32_t>(get_le(4, what)));
  }
  int8_t i8(const char* what) { return static_cast<int8_t>(u8(what)); }
  Point point(const char* what) {
    Coord x = i64(what);
    Coord y = i64(what);
    return Point{x, y};
  }

  uint64_t finish_hash() { return hash_.finish(); }
  // Switch the footer hash to the v5 StripeHash. Must be called right
  // after the (raw, unhashed) header reveals a v5 file.
  void use_v5_hash() { hash_.stripe = true; }

  // Bytes delivered to the caller so far (header included) — mirrors the
  // file offset for v5 section accounting.
  size_t consumed() const { return consumed_; }

  // Seeks the stream back over refill bytes the snapshot never consumed,
  // so a caller composing several snapshots (or other framing) in one
  // seekable stream finds the position just past the footer. Best-effort:
  // a non-seekable stream stays where the last refill left it.
  void return_unused_to_stream() {
    if (pos_ >= len_) return;
    const std::ios::iostate before = is_.rdstate();
    is_.clear();  // the last refill may have set eofbit
    is_.seekg(-static_cast<std::streamoff>(len_ - pos_), std::ios::cur);
    if (is_.fail()) {
      // Non-seekable stream: leave it exactly as the reads left it rather
      // than poisoned with failbit after a successful load.
      is_.clear();
      is_.setstate(before);
      return;
    }
    pos_ = len_ = 0;
  }

 private:
  uint64_t get_le(size_t n, const char* what) {
    unsigned char buf[8];
    bytes(buf, n, what);
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i) v |= static_cast<uint64_t>(buf[i]) << (8 * i);
    return v;
  }

  static constexpr size_t kBufCap = 64 * 1024;
  std::istream& is_;
  std::vector<char> buf_;
  size_t pos_ = 0, len_ = 0;
  size_t consumed_ = 0;
  SnapHash hash_;
};

// Little-endian encoder into a memory buffer, hash-free: the v5 writer
// pre-serializes the variable-size sections (scene+meta, tree blob, the
// delta-encoded dist) to learn their sizes for the offset index, then
// streams the buffers through the hashing Writer.
class BufWriter {
 public:
  std::vector<char> buf;

  void bytes(const void* p, size_t n) {
    const auto* b = static_cast<const char*>(p);
    buf.insert(buf.end(), b, b + n);
  }
  void u8(uint8_t v) { bytes(&v, 1); }
  void u32(uint32_t v) { put_le(v, 4); }
  void u64(uint64_t v) { put_le(v, 8); }
  void i64(int64_t v) { put_le(static_cast<uint64_t>(v), 8); }
  void i32(int32_t v) {
    put_le(static_cast<uint64_t>(static_cast<uint32_t>(v)), 4);
  }
  void i8(int8_t v) { u8(static_cast<uint8_t>(v)); }
  void point(const Point& p) {
    i64(p.x);
    i64(p.y);
  }

 private:
  void put_le(uint64_t v, size_t n) {
    unsigned char b[8];
    for (size_t i = 0; i < n; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, n);
  }
};

// Reads `count` fixed-width elements into `out`, growing it chunk by
// chunk: a crafted header claiming enormous tables only consumes memory
// in proportion to the bytes actually present in the stream (truncation
// fails after at most one chunk) instead of zero-filling the full claimed
// size up front. The reserve makes growth copy-free for honest input; if
// the claim is so large that even the reservation fails, the bad_alloc is
// translated to kCorruptSnapshot by the public entry points.
template <typename T>
void read_pod_table(Reader& r, std::vector<T>& out, size_t count,
                    const char* what) {
  constexpr size_t kChunkElems = (size_t{1} << 22) / sizeof(T);  // 4 MiB
  out.clear();
  out.reserve(count);
  for (size_t done = 0; done < count;) {
    const size_t take = std::min(kChunkElems, count - done);
    out.resize(done + take);
    r.bytes(out.data() + done, take * sizeof(T), what);
    done += take;
  }
  if constexpr (!kHostLittleEndian && sizeof(T) > 1) {
    for (T& v : out) {
      auto* b = reinterpret_cast<unsigned char*>(&v);
      for (size_t i = 0; i < sizeof(T) / 2; ++i) {
        std::swap(b[i], b[sizeof(T) - 1 - i]);
      }
    }
  }
}

// Opaque byte section (the delta-encoded dist), read with the same
// chunked-growth truncation discipline as read_pod_table.
void read_blob(Reader& r, std::vector<uint8_t>& out, size_t count,
               const char* what) {
  constexpr size_t kChunk = size_t{1} << 22;  // 4 MiB
  out.clear();
  out.reserve(count);
  for (size_t done = 0; done < count;) {
    const size_t take = std::min(kChunk, count - done);
    out.resize(done + take);
    r.bytes(out.data() + done, take, what);
    done += take;
  }
}

// ---- v5 delta codec: dist residuals against the L1 lower bound ----
//
// The L1 distance between the endpoint vertices lower-bounds any
// rectilinear obstacle-avoiding path, so honest residuals are small
// non-negatives and zig-zag LEB128 packs most entries into 1-2 bytes
// (kInf rows cost ~9 bytes each). All arithmetic is mod-2^64 (two's
// complement wrap), which keeps encode/decode exact inverses for every
// possible i64 entry — even hostile ones; the decoder re-validates the
// reconstructed value's range.

inline uint64_t l1_base(const Point& a, const Point& b) {
  const uint64_t dx = a.x > b.x ? static_cast<uint64_t>(a.x) - static_cast<uint64_t>(b.x)
                                : static_cast<uint64_t>(b.x) - static_cast<uint64_t>(a.x);
  const uint64_t dy = a.y > b.y ? static_cast<uint64_t>(a.y) - static_cast<uint64_t>(b.y)
                                : static_cast<uint64_t>(b.y) - static_cast<uint64_t>(a.y);
  return dx + dy;
}

inline uint64_t zigzag(uint64_t residual) {
  const int64_t v = static_cast<int64_t>(residual);
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline uint64_t unzigzag(uint64_t z) { return (z >> 1) ^ (0 - (z & 1)); }

inline void put_varint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

// Encodes the row-major dist block covering source rows
// [row0, row0 + rows) x m columns. `verts` are the scene's obstacle
// vertices (size m).
void encode_delta_dist(const Length* dist, size_t row0, size_t rows, size_t m,
                       const std::vector<Point>& verts,
                       std::vector<uint8_t>& out) {
  out.clear();
  out.reserve(rows * m * 2);
  for (size_t a = 0; a < rows; ++a) {
    const Point& va = verts[row0 + a];
    const Length* row = dist + a * m;
    for (size_t b = 0; b < m; ++b) {
      const uint64_t residual =
          static_cast<uint64_t>(row[b]) - l1_base(va, verts[b]);
      put_varint(out, zigzag(residual));
    }
  }
}

// Exact inverse. Fails on truncated/over-long varints, out-of-range
// reconstructed entries, and trailing bytes (the section size must be
// consumed exactly).
void decode_delta_dist(const uint8_t* p, size_t nbytes, size_t row0,
                       size_t rows, size_t m, const std::vector<Point>& verts,
                       std::vector<Length>& out) {
  const uint8_t* end = p + nbytes;
  out.clear();
  out.reserve(rows * m);
  for (size_t a = 0; a < rows; ++a) {
    const Point& va = verts[row0 + a];
    for (size_t b = 0; b < m; ++b) {
      uint64_t z = 0;
      unsigned shift = 0;
      for (;;) {
        if (p == end) fail_corrupt("dist section truncated mid-varint");
        const uint8_t byte = *p++;
        z |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
          // 10th byte carries bit 63 only.
          if (shift == 63 && (byte & 0x7f) > 1) {
            fail_corrupt("dist varint overflows 64 bits");
          }
          break;
        }
        shift += 7;
        if (shift > 63) fail_corrupt("dist varint overflows 64 bits");
      }
      const uint64_t du = l1_base(va, verts[b]) + unzigzag(z);
      const Length d = static_cast<Length>(du);
      if (d < 0 || d > kInf) fail_corrupt("dist matrix entry out of range");
      out.push_back(d);
    }
  }
  if (p != end) fail_corrupt("dist section has trailing bytes");
}

inline uint64_t align64(uint64_t off) { return (off + 63) & ~uint64_t{63}; }

template <class W>
void write_scene(W& w, const Scene& scene) {
  const auto& cverts = scene.container().vertices();
  w.u64(cverts.size());
  for (const Point& p : cverts) w.point(p);
  w.u64(scene.num_obstacles());
  for (const Rect& r : scene.obstacles()) {
    w.i64(r.xmin);
    w.i64(r.ymin);
    w.i64(r.xmax);
    w.i64(r.ymax);
  }
}

Scene read_scene(Reader& r) {
  const uint64_t ncv = r.u64("container vertex count");
  std::vector<Point> cverts;
  cverts.reserve(std::min<uint64_t>(ncv, 4096));
  for (uint64_t i = 0; i < ncv; ++i) cverts.push_back(r.point("container vertex"));
  const uint64_t nobs = r.u64("obstacle count");
  std::vector<Rect> obstacles;
  obstacles.reserve(std::min<uint64_t>(nobs, 4096));
  for (uint64_t i = 0; i < nobs; ++i) {
    Coord x0 = r.i64("obstacle rect");
    Coord y0 = r.i64("obstacle rect");
    Coord x1 = r.i64("obstacle rect");
    Coord y1 = r.i64("obstacle rect");
    if (x0 > x1 || y0 > y1) fail_corrupt("degenerate obstacle rectangle");
    obstacles.emplace_back(x0, y0, x1, y1);
  }
  if (ncv == 0) {
    if (nobs != 0) fail_corrupt("obstacles present but container empty");
    return Scene{};
  }
  // Scene/polygon constructors re-validate rectilinear convexity and
  // obstacle disjointness; their RSP_CHECK throws surface as corruption.
  try {
    return Scene(std::move(obstacles),
                 RectilinearPolygon::from_vertices(std::move(cverts)));
  } catch (const std::exception& e) {
    fail_corrupt(std::string("snapshot scene failed validation: ") + e.what());
  }
}

void write_all_pairs(Writer& w, const AllPairsData& data) {
  const size_t m = data.m;
  w.u64(m);
  if constexpr (kHostLittleEndian) {
    // In-memory layout == wire layout: one bulk write per table. The
    // *_data() accessors also cover mmap-restored engines re-saving to an
    // older format (borrowed tables, no backing vectors).
    w.bytes(data.dist.data(), m * m * sizeof(Length));
    w.bytes(data.pred_data(), m * m * sizeof(int32_t));
    w.bytes(data.pass_data(), m * m * sizeof(int8_t));
  } else {
    const Length* dist = data.dist.data();
    const int32_t* pred = data.pred_data();
    const int8_t* pass = data.pass_data();
    for (size_t i = 0; i < m * m; ++i) w.i64(dist[i]);
    for (size_t i = 0; i < m * m; ++i) w.i32(pred[i]);
    for (size_t i = 0; i < m * m; ++i) w.i8(pass[i]);
  }
}

// Row-wise validation of a dist/pred/pass block spanning `rows` source
// rows x m columns, shared by the full tables, the shard slices and the
// v5 readers (pred entries index *columns* of their own row, so any slice
// validates without its siblings). Runs on every replica start, so it is
// written for speed — raw row pointers, branch-light:
//  * dist entries in [0, kInf], pred ids in [-1, m), pass in [-1, 3];
//  * when `descent` is set, pred acyclicity, which the non-cryptographic
//    checksum cannot guarantee for crafted input and whose violation
//    would hang the §8 path walk. The builder's invariant makes this a
//    local check: a recorded predecessor lies strictly closer to the
//    source (its hop has positive L1 length), so dist(a, pred(b)) <
//    dist(a, b) < kInf — every pred chain then strictly descends and
//    terminates. The mmap adopter skips it (it would touch every page of
//    the one table that should stay lazily paged); the §8 walks bound
//    their steps instead.
void validate_tables(const Length* dist, const int32_t* pred,
                     const int8_t* pass, size_t rows, size_t m,
                     bool descent) {
  // Branch-free accumulating sweep first: the clean case (every replica
  // start) has no data-dependent branches, so the compiler vectorizes
  // it and the gigabyte-scale tables scan at memory speed. The precise
  // per-entry loop below runs only to name the first offender.
  const size_t cnt = rows * m;
  const uint64_t um = static_cast<uint64_t>(m);
  uint64_t bad = 0;
  for (size_t i = 0; i < cnt; ++i) {
    // dist in [0, kInf]: negatives wrap to huge unsigned values.
    bad |= static_cast<uint64_t>(static_cast<uint64_t>(dist[i]) >
                                 static_cast<uint64_t>(kInf));
  }
  for (size_t i = 0; i < cnt; ++i) {
    // pred in [-1, m): p + 1 in [0, m], with -2 and below wrapping high.
    bad |= static_cast<uint64_t>(
        static_cast<uint64_t>(static_cast<int64_t>(pred[i]) + 1) > um);
  }
  for (size_t i = 0; i < cnt; ++i) {
    // pass in [-1, 3].
    bad |= static_cast<uint64_t>(
        static_cast<uint8_t>(static_cast<int16_t>(pass[i]) + 1) > 4);
  }
  if (bad != 0) {
    for (size_t i = 0; i < cnt; ++i) {
      const Length db = dist[i];
      if (db < 0 || db > kInf) fail_corrupt("dist matrix entry out of range");
      const int32_t p = pred[i];
      if (p < -1 || (p >= 0 && static_cast<size_t>(p) >= m)) {
        fail_corrupt("pred table entry out of range");
      }
    }
    for (size_t i = 0; i < cnt; ++i) {
      if (pass[i] > 3 || pass[i] < -1) {
        fail_corrupt("pass table entry out of range");
      }
    }
  }
  if (!descent) return;
  for (size_t a = 0; a < rows; ++a) {
    const Length* dist_row = dist + a * m;
    const int32_t* pred_row = pred + a * m;
    for (size_t b = 0; b < m; ++b) {
      const int32_t p = pred_row[b];
      if (p < 0) continue;
      const Length db = dist_row[b];
      if (db >= kInf || dist_row[p] >= db) {
        fail_corrupt("pred table inconsistent with dist matrix");
      }
    }
  }
}

// ---- All-pairs row-shard payload (SnapshotPayloadKind::kAllPairsShard) ----

void write_shard(Writer& w, const AllPairsShardView& shard) {
  const size_t rows = shard.row_hi - shard.row_lo;
  const size_t n = rows * shard.m;
  w.u64(shard.m);
  w.u64(shard.row_lo);
  w.u64(shard.row_hi);
  if constexpr (kHostLittleEndian) {
    w.bytes(shard.dist, n * sizeof(Length));
    w.bytes(shard.pred, n * sizeof(int32_t));
    w.bytes(shard.pass, n * sizeof(int8_t));
  } else {
    for (size_t i = 0; i < n; ++i) w.i64(shard.dist[i]);
    for (size_t i = 0; i < n; ++i) w.i32(shard.pred[i]);
    for (size_t i = 0; i < n; ++i) w.i8(shard.pass[i]);
  }
}

AllPairsShardData read_shard(Reader& r, const Scene& scene) {
  AllPairsShardData shard;
  const uint64_t m = r.u64("shard vertex count m");
  if (m != 4 * static_cast<uint64_t>(scene.num_obstacles())) {
    std::ostringstream os;
    os << "shard table size mismatch: m = " << m << " but scene has "
       << scene.num_obstacles() << " obstacles (expected m = "
       << 4 * scene.num_obstacles() << ")";
    fail_corrupt(os.str());
  }
  const uint64_t row_lo = r.u64("shard row_lo");
  const uint64_t row_hi = r.u64("shard row_hi");
  if (row_lo >= row_hi || row_hi > m) {
    fail_corrupt("shard source-row range out of order");
  }
  shard.m = static_cast<size_t>(m);
  shard.row_lo = static_cast<size_t>(row_lo);
  shard.row_hi = static_cast<size_t>(row_hi);
  const size_t n = shard.rows() * shard.m;
  read_pod_table(r, shard.dist, n, "shard dist slice");
  read_pod_table(r, shard.pred, n, "shard pred slice");
  read_pod_table(r, shard.pass, n, "shard pass slice");
  validate_tables(shard.dist.data(), shard.pred.data(), shard.pass.data(),
                  shard.rows(), shard.m, /*descent=*/true);
  return shard;
}

AllPairsData read_all_pairs(Reader& r, const Scene& scene) {
  AllPairsData data;
  const uint64_t m = r.u64("vertex count m");
  if (m != 4 * static_cast<uint64_t>(scene.num_obstacles())) {
    std::ostringstream os;
    os << "all-pairs table size mismatch: m = " << m << " but scene has "
       << scene.num_obstacles() << " obstacles (expected m = "
       << 4 * scene.num_obstacles() << ")";
    fail_corrupt(os.str());
  }
  data.m = static_cast<size_t>(m);
  const size_t mm = data.m * data.m;
  std::vector<Length> dist;
  read_pod_table(r, dist, mm, "dist matrix");
  read_pod_table(r, data.pred, mm, "pred table");
  read_pod_table(r, data.pass, mm, "pass table");
  validate_tables(dist.data(), data.pred.data(), data.pass.data(), data.m,
                  data.m, /*descent=*/true);
  data.dist = Matrix(data.m, data.m, std::move(dist));
  return data;
}

// ---- Boundary-tree payload (SnapshotPayloadKind::kBoundaryTree) ----

template <class W>
void write_points(W& w, const std::vector<Point>& pts) {
  w.u64(pts.size());
  for (const Point& p : pts) w.point(p);
}

template <class W>
void write_u32s(W& w, const std::vector<uint32_t>& v) {
  w.u64(v.size());
  for (uint32_t x : v) w.u32(x);
}

template <class W>
void write_tree(W& w, const DncTree& tree, uint32_t version) {
  w.u64(tree.nodes.size());
  for (const DncNode& n : tree.nodes) {
    write_points(w, n.region.vertices());
    write_points(w, n.b);
    w.u64(n.rects.size());
    for (const Rect& r : n.rects) {
      w.i64(r.xmin);
      w.i64(r.ymin);
      w.i64(r.xmax);
      w.i64(r.ymax);
    }
    write_u32s(w, n.children);
    write_points(w, n.sep);
    w.u8(n.sep_increasing ? 1 : 0);
    w.u64(n.ports.size());
    for (const DncPort& p : n.ports) {
      w.i32(p.child);
      write_u32s(w, p.rows);
      write_u32s(w, p.child_rows);
      write_points(w, p.mids);
      write_u32s(w, p.mid_child);
      w.u64(p.reach.rows());
      w.u64(p.reach.cols());
      // v3+: a representation byte, then either the dense entries (0) or
      // the breakpoint-compressed parts (1; see monge/compressed.h). The
      // builder's compress() is deterministic, so these bytes stay
      // identical across scheduler widths. v2 fixtures (test matrix) have
      // no representation byte — every reach is written dense.
      if (!p.reach.empty()) {
        if (version < 3) {
          const Matrix dense =
              p.reach.compressed() ? p.reach.dense() : p.reach.dense_form();
          for (Length d : dense.storage()) w.i64(d);
        } else if (p.reach.compressed()) {
          w.u8(1);
          for (Length d : p.reach.row0()) w.i64(d);
          for (Length d : p.reach.col0()) w.i64(d);
          w.u64(p.reach.bp_row().size());
          for (uint32_t x : p.reach.bp_start()) w.u32(x);
          for (uint32_t x : p.reach.bp_row()) w.u32(x);
          for (Length d : p.reach.bp_delta()) w.i64(d);
        } else {
          w.u8(0);
          for (Length d : p.reach.dense_form().storage()) w.i64(d);
        }
      }
    }
  }
}

std::vector<Point> read_points(Reader& r, const char* what) {
  const uint64_t n = r.u64(what);
  std::vector<Point> out;
  out.reserve(std::min<uint64_t>(n, 4096));
  for (uint64_t i = 0; i < n; ++i) out.push_back(r.point(what));
  return out;
}

std::vector<uint32_t> read_u32s(Reader& r, const char* what) {
  const uint64_t n = r.u64(what);
  std::vector<uint32_t> out;
  out.reserve(std::min<uint64_t>(n, 4096));
  for (uint64_t i = 0; i < n; ++i) out.push_back(r.u32(what));
  return out;
}

std::shared_ptr<const DncTree> read_tree(Reader& r, const Scene& scene,
                                         uint32_t version) {
  auto tree = std::make_shared<DncTree>();
  const uint64_t count = r.u64("tree node count");
  if (count == 0) fail_corrupt("boundary tree with no nodes");
  tree->nodes.reserve(std::min<uint64_t>(count, 4096));
  for (uint64_t id = 0; id < count; ++id) {
    DncNode n;
    std::vector<Point> rverts = read_points(r, "tree node region");
    try {
      n.region = RectilinearPolygon::from_vertices(std::move(rverts));
    } catch (const std::exception& e) {
      fail_corrupt(std::string("tree node region failed validation: ") +
                   e.what());
    }
    n.b = read_points(r, "tree node boundary set");
    const uint64_t nrects = r.u64("tree leaf rect count");
    n.rects.reserve(std::min<uint64_t>(nrects, 4096));
    for (uint64_t i = 0; i < nrects; ++i) {
      Coord x0 = r.i64("tree leaf rect");
      Coord y0 = r.i64("tree leaf rect");
      Coord x1 = r.i64("tree leaf rect");
      Coord y1 = r.i64("tree leaf rect");
      if (x0 > x1 || y0 > y1) fail_corrupt("degenerate tree leaf rectangle");
      n.rects.emplace_back(x0, y0, x1, y1);
    }
    n.children = read_u32s(r, "tree node children");
    for (uint32_t c : n.children) {
      // Preorder invariant: child ids strictly above the parent's — this
      // alone makes the graph acyclic (and the reachability check below
      // makes it a tree).
      if (c <= id || c >= count) fail_corrupt("tree child id out of order");
    }
    n.sep = read_points(r, "tree node separator");
    n.sep_increasing = r.u8("tree separator orientation") != 0;
    if (!n.children.empty() && n.sep.size() < 2) {
      fail_corrupt("internal tree node without a separator");
    }
    const uint64_t nports = r.u64("tree node port count");
    if (n.children.empty() && nports != 0) {
      fail_corrupt("leaf tree node with ports");
    }
    for (uint64_t i = 0; i < nports; ++i) {
      DncPort p;
      p.child = r.i32("tree port child");
      if (p.child < -1 ||
          p.child >= static_cast<int32_t>(n.children.size())) {
        fail_corrupt("tree port child ordinal out of range");
      }
      p.rows = read_u32s(r, "tree port rows");
      p.child_rows = read_u32s(r, "tree port child rows");
      p.mids = read_points(r, "tree port mids");
      p.mid_child = read_u32s(r, "tree port mid indices");
      const uint64_t rr = r.u64("tree port reach rows");
      const uint64_t rc = r.u64("tree port reach cols");
      const bool has_reach = rr != 0 && rc != 0;
      if (has_reach && (rr != p.rows.size() || rc != p.mids.size())) {
        fail_corrupt("tree port reach matrix shape mismatch");
      }
      for (uint32_t bi : p.rows) {
        if (bi >= n.b.size()) fail_corrupt("tree port row index out of range");
      }
      if (p.child >= 0) {
        if (p.child_rows.size() != p.rows.size() ||
            p.mid_child.size() != p.mids.size()) {
          fail_corrupt("tree port child index tables mis-sized");
        }
      } else if (!p.child_rows.empty() || !p.mid_child.empty()) {
        fail_corrupt("virtual tree port carries child index tables");
      }
      if (has_reach) {
        // v2 and earlier stored every reach matrix dense; v3 prefixes a
        // representation byte (0 = dense, 1 = breakpoint-compressed).
        const uint8_t repr =
            version >= 3 ? r.u8("tree port reach representation") : 0;
        if (repr == 0) {
          std::vector<Length> reach;
          read_pod_table(r, reach, static_cast<size_t>(rr * rc),
                         "tree port reach matrix");
          for (Length d : reach) {
            if (d < 0 || d > kInf) {
              fail_corrupt("tree port reach entry out of range");
            }
          }
          // Re-run the deterministic encoder: reproduces exactly what the
          // builder holds in memory, and shrinks dense v1/v2 snapshots on
          // load for free.
          p.reach = PortMatrix::compress(Matrix(
              static_cast<size_t>(rr), static_cast<size_t>(rc),
              std::move(reach)));
        } else if (repr == 1) {
          std::vector<Length> row0, col0, bp_delta;
          std::vector<uint32_t> bp_start, bp_row;
          read_pod_table(r, row0, static_cast<size_t>(rc), "tree port row0");
          read_pod_table(r, col0, static_cast<size_t>(rr), "tree port col0");
          const uint64_t nbp = r.u64("tree port breakpoint count");
          if (nbp > rr * rc) fail_corrupt("tree port breakpoint count");
          read_pod_table(r, bp_start, static_cast<size_t>(rc),
                         "tree port breakpoint index");
          read_pod_table(r, bp_row, static_cast<size_t>(nbp),
                         "tree port breakpoint rows");
          read_pod_table(r, bp_delta, static_cast<size_t>(nbp),
                         "tree port breakpoint deltas");
          try {
            // from_parts validates the structural invariants (CSR
            // monotone, rows strictly increasing in-step, deltas != 0).
            p.reach = PortMatrix::from_parts(
                static_cast<size_t>(rr), static_cast<size_t>(rc),
                std::move(row0), std::move(col0), std::move(bp_start),
                std::move(bp_row), std::move(bp_delta));
          } catch (const std::exception& e) {
            fail_corrupt(std::string("tree port reach failed validation: ") +
                         e.what());
          }
          // Entry-range validation without materializing the dense form:
          // stream the columns (O(rows) memory).
          PortMatrix::ColumnScan scan(p.reach);
          for (size_t k = 0;; ++k) {
            const Length* col = scan.data();
            for (size_t a = 0; a < p.reach.rows(); ++a) {
              if (col[a] < 0 || col[a] > kInf) {
                fail_corrupt("tree port reach entry out of range");
              }
            }
            if (k + 1 == p.reach.cols()) break;
            scan.advance();
          }
        } else {
          fail_corrupt("unknown tree port reach representation");
        }
      }
      n.ports.push_back(std::move(p));
    }
    tree->nodes.push_back(std::move(n));
  }
  // Second pass: checks that need the whole node array — child-index
  // tables against the child's own boundary set, and tree reachability.
  std::vector<char> reached(tree->nodes.size(), 0);
  reached[0] = 1;
  size_t reach_count = 1;
  for (size_t id = 0; id < tree->nodes.size(); ++id) {
    const DncNode& n = tree->nodes[id];
    for (uint32_t c : n.children) {
      if (reached[c]) fail_corrupt("tree node has two parents");
      reached[c] = 1;
      ++reach_count;
    }
    for (const DncPort& p : n.ports) {
      if (p.child < 0) continue;
      const DncNode& child = tree->nodes[n.children[p.child]];
      for (uint32_t bi : p.child_rows) {
        if (bi >= child.b.size()) {
          fail_corrupt("tree port child row index out of range");
        }
      }
      for (uint32_t bi : p.mid_child) {
        if (bi >= child.b.size()) {
          fail_corrupt("tree port mid index out of range");
        }
      }
    }
  }
  if (reach_count != tree->nodes.size()) {
    fail_corrupt("tree has unreachable nodes");
  }
  // The root must span the snapshot's scene.
  if (tree->nodes[0].region.vertices() != scene.container().vertices()) {
    fail_corrupt("tree root region does not match the scene container");
  }
  return tree;
}

struct Header {
  SnapshotPayloadKind kind;
  uint32_t version;  // as read from the file, not the compiled-in constant
};

constexpr size_t kHeaderBytes = 16;

// Validates the fixed 16-byte header (shared by the stream reader and the
// mmap adopter).
Header parse_header_bytes(const unsigned char* b) {
  if (std::memcmp(b, kMagic.data(), kMagic.size()) != 0) {
    fail_corrupt("bad magic: not an rsp snapshot");
  }
  uint32_t version = 0;
  for (size_t i = 0; i < 4; ++i) version |= static_cast<uint32_t>(b[8 + i]) << (8 * i);
  if (version < kSnapshotMinReadVersion || version > kSnapshotFormatVersion) {
    std::ostringstream os;
    os << "snapshot format version " << version << " (this build speaks "
       << kSnapshotMinReadVersion << ".." << kSnapshotFormatVersion << ")";
    throw SnapshotError{Status::VersionMismatch(os.str())};
  }
  const uint8_t kind = b[12];
  if (kind > static_cast<uint8_t>(SnapshotPayloadKind::kAllPairsShard)) {
    fail_corrupt("unknown payload kind");
  }
  if (kind == static_cast<uint8_t>(SnapshotPayloadKind::kBoundaryTree) &&
      version < 2) {
    fail_corrupt("boundary-tree payload in a version-1 snapshot");
  }
  if (kind == static_cast<uint8_t>(SnapshotPayloadKind::kAllPairsShard) &&
      version < 4) {
    fail_corrupt("all-pairs shard payload in a pre-version-4 snapshot");
  }
  return Header{static_cast<SnapshotPayloadKind>(kind), version};
}

// Reads the fixed (non-checksummed) header.
Header read_header(Reader& r) {
  unsigned char hbuf[kHeaderBytes];
  r.raw(hbuf, kHeaderBytes, "snapshot header");
  return parse_header_bytes(hbuf);
}

// Returns the verified checksum (== stored == computed) so loads can
// surface it (SnapshotPayload::payload_checksum).
uint64_t check_footer(Reader& r) {
  const uint64_t expected = r.finish_hash();  // before the unhashed footer
  unsigned char buf[8];
  r.raw(buf, 8, "checksum");
  uint64_t stored = 0;
  for (size_t i = 0; i < 8; ++i) stored |= static_cast<uint64_t>(buf[i]) << (8 * i);
  if (stored != expected) fail_corrupt("payload checksum mismatch");
  return stored;
}

void write_header(Writer& w, SnapshotPayloadKind kind, uint32_t version) {
  w.raw(kMagic.data(), kMagic.size());
  unsigned char vbuf[4];
  for (size_t i = 0; i < 4; ++i) {
    vbuf[i] = static_cast<unsigned char>(version >> (8 * i));
  }
  w.raw(vbuf, 4);
  const unsigned char kind_and_reserved[4] = {static_cast<unsigned char>(kind),
                                              0, 0, 0};
  w.raw(kind_and_reserved, 4);
}

Status write_footer(Writer& w, std::ostream& os,
                    uint64_t* checksum_out = nullptr) {
  const uint64_t checksum = w.finish_hash();
  unsigned char cbuf[8];
  for (size_t i = 0; i < 8; ++i) {
    cbuf[i] = static_cast<unsigned char>(checksum >> (8 * i));
  }
  w.raw(cbuf, 8);
  w.flush();
  os.flush();
  if (!os.good()) return Status::IoError("snapshot write failed (stream error)");
  if (checksum_out != nullptr) *checksum_out = checksum;
  return Status::Ok();
}

// ---- v5: section index + 64-byte-aligned bulk tables ----

// Section ids, fixed per payload kind (the index lists exactly these, in
// this order; a mismatch is corruption, not extensibility).
constexpr uint32_t kSecSceneMeta = 1;
constexpr uint32_t kSecDist = 2;
constexpr uint32_t kSecPred = 3;
constexpr uint32_t kSecPass = 4;
constexpr uint32_t kSecTree = 5;

constexpr uint32_t kFlagDistDelta = 1;

constexpr size_t kIndexEntryBytes = 24;

std::vector<uint32_t> expected_section_ids(SnapshotPayloadKind kind) {
  switch (kind) {
    case SnapshotPayloadKind::kSceneOnly:
      return {kSecSceneMeta};
    case SnapshotPayloadKind::kAllPairs:
    case SnapshotPayloadKind::kAllPairsShard:
      return {kSecSceneMeta, kSecDist, kSecPred, kSecPass};
    case SnapshotPayloadKind::kBoundaryTree:
      return {kSecSceneMeta, kSecTree};
  }
  fail_corrupt("unknown payload kind");
}

struct SecEntry {
  uint32_t id = 0;
  uint64_t off = 0;
  uint64_t size = 0;
};

struct V5Index {
  uint32_t flags = 0;
  std::vector<SecEntry> secs;
};

// Validates ids against the kind and enforces the writer's canonical
// offsets (each section 64-byte aligned, immediately after its
// predecessor's padding) — which both pins the layout for zero-copy
// adoption and makes padding consumption deterministic for the stream
// reader. Sizes are only claims at this point; the stream reader fails on
// truncation chunk by chunk, and the mmap adopter bounds-checks against
// the real file size before touching anything.
V5Index validate_v5_index(SnapshotPayloadKind kind, uint32_t flags,
                          std::vector<SecEntry> secs) {
  if ((flags & ~kFlagDistDelta) != 0) fail_corrupt("unknown snapshot flags");
  const std::vector<uint32_t> expect = expected_section_ids(kind);
  if (secs.size() != expect.size()) {
    fail_corrupt("snapshot section table does not match payload kind");
  }
  uint64_t off = align64(kHeaderBytes + 8 + kIndexEntryBytes * secs.size());
  for (size_t i = 0; i < secs.size(); ++i) {
    if (secs[i].id != expect[i]) {
      fail_corrupt("snapshot section table does not match payload kind");
    }
    if (secs[i].off != off) fail_corrupt("snapshot section offset out of place");
    if (secs[i].size > (uint64_t{1} << 62) - off) {
      fail_corrupt("snapshot section size out of range");
    }
    off = align64(secs[i].off + secs[i].size);
  }
  return V5Index{flags, std::move(secs)};
}

V5Index read_v5_index(Reader& r, SnapshotPayloadKind kind) {
  const uint32_t nsec = r.u32("section count");
  if (nsec == 0 || nsec > 8) fail_corrupt("snapshot section count out of range");
  const uint32_t flags = r.u32("section flags");
  std::vector<SecEntry> secs(nsec);
  for (SecEntry& e : secs) {
    e.id = r.u32("section id");
    if (r.u32("section reserved") != 0) fail_corrupt("section reserved bits set");
    e.off = r.u64("section offset");
    e.size = r.u64("section size");
  }
  return validate_v5_index(kind, flags, std::move(secs));
}

// Consumes (and checksums) the zero padding up to a section's offset.
void skip_padding(Reader& r, uint64_t target_off) {
  const uint64_t cur = r.consumed();
  if (target_off < cur || target_off - cur >= 64) {
    fail_corrupt("snapshot section padding out of range");
  }
  char pad[64];
  if (target_off > cur) {
    r.bytes(pad, static_cast<size_t>(target_off - cur), "section padding");
  }
}

// Scene+meta section contents (shared by the stream and mmap readers).
struct SceneMeta {
  Scene scene;
  size_t m = 0;
  size_t row_lo = 0, row_hi = 0;  // shard only; [0, m) otherwise
};

SceneMeta read_scene_meta(Reader& r, SnapshotPayloadKind kind) {
  SceneMeta sm;
  sm.scene = read_scene(r);
  if (kind == SnapshotPayloadKind::kAllPairs ||
      kind == SnapshotPayloadKind::kAllPairsShard) {
    const uint64_t m = r.u64("vertex count m");
    if (m != 4 * static_cast<uint64_t>(sm.scene.num_obstacles())) {
      std::ostringstream os;
      os << "all-pairs table size mismatch: m = " << m << " but scene has "
         << sm.scene.num_obstacles() << " obstacles (expected m = "
         << 4 * sm.scene.num_obstacles() << ")";
      fail_corrupt(os.str());
    }
    sm.m = static_cast<size_t>(m);
    sm.row_hi = sm.m;
    if (kind == SnapshotPayloadKind::kAllPairsShard) {
      const uint64_t row_lo = r.u64("shard row_lo");
      const uint64_t row_hi = r.u64("shard row_hi");
      if (row_lo >= row_hi || row_hi > m) {
        fail_corrupt("shard source-row range out of order");
      }
      sm.row_lo = static_cast<size_t>(row_lo);
      sm.row_hi = static_cast<size_t>(row_hi);
    }
  }
  return sm;
}

// Eager v5 decode: sections in index order through the hashing Reader, so
// the footer check downstream covers index, padding and sections alike.
// Fills everything but the checksum.
void read_v5_body(Reader& r, SnapshotPayloadKind kind,
                  SnapshotPayload& payload) {
  const V5Index idx = read_v5_index(r, kind);
  const bool delta = (idx.flags & kFlagDistDelta) != 0;

  skip_padding(r, idx.secs[0].off);
  const size_t meta_start = r.consumed();
  const SceneMeta sm = read_scene_meta(r, kind);
  if (r.consumed() - meta_start != idx.secs[0].size) {
    fail_corrupt("scene section size mismatch");
  }
  payload.scene = sm.scene;

  if (kind == SnapshotPayloadKind::kSceneOnly) return;

  if (kind == SnapshotPayloadKind::kBoundaryTree) {
    skip_padding(r, idx.secs[1].off);
    const size_t tree_start = r.consumed();
    payload.tree = read_tree(r, payload.scene, /*version=*/5);
    if (r.consumed() - tree_start != idx.secs[1].size) {
      fail_corrupt("tree section size mismatch");
    }
    return;
  }

  const size_t rows = sm.row_hi - sm.row_lo;
  const size_t count = rows * sm.m;
  const SecEntry& sdist = idx.secs[1];
  const SecEntry& spred = idx.secs[2];
  const SecEntry& spass = idx.secs[3];
  if (spred.size != count * sizeof(int32_t)) {
    fail_corrupt("pred section size mismatch");
  }
  if (spass.size != count * sizeof(int8_t)) {
    fail_corrupt("pass section size mismatch");
  }

  std::vector<Length> dist;
  skip_padding(r, sdist.off);
  if (delta) {
    std::vector<uint8_t> blob;
    read_blob(r, blob, static_cast<size_t>(sdist.size), "dist section");
    decode_delta_dist(blob.data(), blob.size(), sm.row_lo, rows, sm.m,
                      payload.scene.obstacle_vertices(), dist);
  } else {
    if (sdist.size != count * sizeof(Length)) {
      fail_corrupt("dist section size mismatch");
    }
    read_pod_table(r, dist, count, "dist matrix");
  }

  std::vector<int32_t> pred;
  skip_padding(r, spred.off);
  read_pod_table(r, pred, count, "pred table");

  std::vector<int8_t> pass;
  skip_padding(r, spass.off);
  read_pod_table(r, pass, count, "pass table");

  validate_tables(dist.data(), pred.data(), pass.data(), rows, sm.m,
                  /*descent=*/true);

  if (kind == SnapshotPayloadKind::kAllPairs) {
    AllPairsData data;
    data.m = sm.m;
    data.pred = std::move(pred);
    data.pass = std::move(pass);
    data.dist = Matrix(sm.m, sm.m, std::move(dist));
    payload.data = std::move(data);
  } else {
    AllPairsShardData shard;
    shard.m = sm.m;
    shard.row_lo = sm.row_lo;
    shard.row_hi = sm.row_hi;
    shard.dist = std::move(dist);
    shard.pred = std::move(pred);
    shard.pass = std::move(pass);
    payload.shard = std::move(shard);
  }
}

// v5 writer: pre-serializes the variable-size sections to learn their
// byte sizes (fixed-width tables are sized analytically), emits the index
// with canonical 64-byte-aligned offsets, then streams sections with zero
// padding — strictly sequential, no seeking, so it works on any ostream.
Status save_v5(std::ostream& os, SnapshotPayloadKind kind, const Scene& scene,
               const AllPairsData* data, const DncTree* tree,
               const AllPairsShardView* shard, bool delta_encode,
               uint64_t* checksum_out) {
  BufWriter meta;
  write_scene(meta, scene);
  const Length* dist_ptr = nullptr;
  const int32_t* pred_ptr = nullptr;
  const int8_t* pass_ptr = nullptr;
  size_t row0 = 0, rows = 0, m = 0;
  if (kind == SnapshotPayloadKind::kAllPairs) {
    m = data->m;
    rows = m;
    meta.u64(m);
    dist_ptr = data->dist.data();
    pred_ptr = data->pred_data();
    pass_ptr = data->pass_data();
  } else if (kind == SnapshotPayloadKind::kAllPairsShard) {
    m = shard->m;
    row0 = shard->row_lo;
    rows = shard->row_hi - shard->row_lo;
    meta.u64(m);
    meta.u64(shard->row_lo);
    meta.u64(shard->row_hi);
    dist_ptr = shard->dist;
    pred_ptr = shard->pred;
    pass_ptr = shard->pass;
  }
  const size_t count = rows * m;
  const bool has_tables = kind == SnapshotPayloadKind::kAllPairs ||
                          kind == SnapshotPayloadKind::kAllPairsShard;

  BufWriter tree_buf;
  if (kind == SnapshotPayloadKind::kBoundaryTree) {
    write_tree(tree_buf, *tree, /*version=*/5);
  }

  std::vector<uint8_t> delta_buf;
  const bool delta = has_tables && delta_encode;
  if (delta) {
    encode_delta_dist(dist_ptr, row0, rows, m, scene.obstacle_vertices(),
                      delta_buf);
  }

  std::vector<SecEntry> secs;
  secs.push_back({kSecSceneMeta, 0, meta.buf.size()});
  if (has_tables) {
    secs.push_back(
        {kSecDist, 0, delta ? delta_buf.size() : count * sizeof(Length)});
    secs.push_back({kSecPred, 0, count * sizeof(int32_t)});
    secs.push_back({kSecPass, 0, count * sizeof(int8_t)});
  }
  if (kind == SnapshotPayloadKind::kBoundaryTree) {
    secs.push_back({kSecTree, 0, tree_buf.buf.size()});
  }
  uint64_t off = align64(kHeaderBytes + 8 + kIndexEntryBytes * secs.size());
  for (SecEntry& e : secs) {
    e.off = off;
    off = align64(e.off + e.size);
  }

  Writer w(os);
  w.use_v5_hash();
  write_header(w, kind, /*version=*/5);
  w.u32(static_cast<uint32_t>(secs.size()));
  w.u32(delta ? kFlagDistDelta : 0);
  for (const SecEntry& e : secs) {
    w.u32(e.id);
    w.u32(0);
    w.u64(e.off);
    w.u64(e.size);
  }
  static constexpr char kZeros[64] = {};
  auto pad_to = [&](uint64_t target) {
    RSP_CHECK(target >= w.position() && target - w.position() < 64);
    w.bytes(kZeros, static_cast<size_t>(target - w.position()));
  };
  for (const SecEntry& e : secs) {
    pad_to(e.off);
    switch (e.id) {
      case kSecSceneMeta:
        w.bytes(meta.buf.data(), meta.buf.size());
        break;
      case kSecDist:
        if (delta) {
          w.bytes(delta_buf.data(), delta_buf.size());
        } else if constexpr (kHostLittleEndian) {
          w.bytes(dist_ptr, count * sizeof(Length));
        } else {
          for (size_t i = 0; i < count; ++i) w.i64(dist_ptr[i]);
        }
        break;
      case kSecPred:
        if constexpr (kHostLittleEndian) {
          w.bytes(pred_ptr, count * sizeof(int32_t));
        } else {
          for (size_t i = 0; i < count; ++i) w.i32(pred_ptr[i]);
        }
        break;
      case kSecPass:
        w.bytes(pass_ptr, count * sizeof(int8_t));
        break;
      case kSecTree:
        w.bytes(tree_buf.buf.data(), tree_buf.buf.size());
        break;
    }
  }
  return write_footer(w, os, checksum_out);
}

}  // namespace

const char* payload_kind_name(SnapshotPayloadKind kind) {
  switch (kind) {
    case SnapshotPayloadKind::kSceneOnly: return "scene-only";
    case SnapshotPayloadKind::kAllPairs: return "all-pairs";
    case SnapshotPayloadKind::kBoundaryTree: return "boundary-tree";
    case SnapshotPayloadKind::kAllPairsShard: return "all-pairs-shard";
  }
  return "unknown";
}

std::optional<SnapshotPayloadKind> payload_kind_from_name(
    std::string_view name) {
  for (SnapshotPayloadKind k :
       {SnapshotPayloadKind::kSceneOnly, SnapshotPayloadKind::kAllPairs,
        SnapshotPayloadKind::kBoundaryTree,
        SnapshotPayloadKind::kAllPairsShard}) {
    if (name == payload_kind_name(k)) return k;
  }
  return std::nullopt;
}

namespace {

// Writer-side option validation: a version we cannot write, or a payload
// kind the requested version does not know, is a programming error.
Status check_save_options(const SnapshotSaveOptions& opt,
                          SnapshotPayloadKind kind) {
  if (opt.format_version < kSnapshotMinReadVersion ||
      opt.format_version > kSnapshotFormatVersion) {
    return Status::Internal("save_snapshot: unwritable format version");
  }
  if (kind == SnapshotPayloadKind::kBoundaryTree && opt.format_version < 2) {
    return Status::Internal(
        "save_snapshot: boundary-tree payloads need format version >= 2");
  }
  if (kind == SnapshotPayloadKind::kAllPairsShard && opt.format_version < 4) {
    return Status::Internal(
        "save_snapshot: shard payloads need format version >= 4");
  }
  return Status::Ok();
}

}  // namespace

Status save_snapshot(std::ostream& os, const Scene& scene,
                     const AllPairsData* data, const SnapshotSaveOptions& opt) {
  if (data != nullptr && data->m != 4 * scene.num_obstacles()) {
    return Status::Internal("save_snapshot: AllPairsData does not belong to scene");
  }
  const SnapshotPayloadKind kind =
      data ? SnapshotPayloadKind::kAllPairs : SnapshotPayloadKind::kSceneOnly;
  if (Status st = check_save_options(opt, kind); !st.ok()) return st;
  if (opt.format_version >= 5) {
    return save_v5(os, kind, scene, data, nullptr, nullptr, opt.delta_encode,
                   nullptr);
  }
  Writer w(os);
  write_header(w, kind, opt.format_version);
  write_scene(w, scene);
  if (data != nullptr) write_all_pairs(w, *data);
  return write_footer(w, os);
}

Status save_snapshot(std::ostream& os, const Scene& scene,
                     const DncTree& tree, const SnapshotSaveOptions& opt) {
  if (tree.nodes.empty() ||
      tree.nodes[0].region.vertices() != scene.container().vertices()) {
    return Status::Internal(
        "save_snapshot: DncTree does not belong to scene");
  }
  if (Status st = check_save_options(opt, SnapshotPayloadKind::kBoundaryTree);
      !st.ok()) {
    return st;
  }
  if (opt.format_version >= 5) {
    return save_v5(os, SnapshotPayloadKind::kBoundaryTree, scene, nullptr,
                   &tree, nullptr, opt.delta_encode, nullptr);
  }
  Writer w(os);
  write_header(w, SnapshotPayloadKind::kBoundaryTree, opt.format_version);
  write_scene(w, scene);
  write_tree(w, tree, opt.format_version);
  return write_footer(w, os);
}

Status save_snapshot(std::ostream& os, const Scene& scene,
                     const AllPairsShardView& shard, uint64_t* payload_checksum,
                     const SnapshotSaveOptions& opt) {
  if (shard.m != 4 * scene.num_obstacles() || shard.row_lo >= shard.row_hi ||
      shard.row_hi > shard.m || shard.dist == nullptr ||
      shard.pred == nullptr || shard.pass == nullptr) {
    return Status::Internal(
        "save_snapshot: AllPairsShardView does not belong to scene");
  }
  if (Status st = check_save_options(opt, SnapshotPayloadKind::kAllPairsShard);
      !st.ok()) {
    return st;
  }
  if (opt.format_version >= 5) {
    return save_v5(os, SnapshotPayloadKind::kAllPairsShard, scene, nullptr,
                   nullptr, &shard, opt.delta_encode, payload_checksum);
  }
  Writer w(os);
  write_header(w, SnapshotPayloadKind::kAllPairsShard, opt.format_version);
  write_scene(w, scene);
  write_shard(w, shard);
  return write_footer(w, os, payload_checksum);
}

Result<SnapshotPayload> load_snapshot(std::istream& is) {
  try {
    Reader r(is);
    SnapshotPayload payload;
    const Header h = read_header(r);
    payload.kind = h.kind;
    if (h.version >= 5) {
      r.use_v5_hash();
      read_v5_body(r, h.kind, payload);
    } else {
      payload.scene = read_scene(r);
      if (payload.kind == SnapshotPayloadKind::kAllPairs) {
        payload.data = read_all_pairs(r, payload.scene);
      } else if (payload.kind == SnapshotPayloadKind::kBoundaryTree) {
        payload.tree = read_tree(r, payload.scene, h.version);
      } else if (payload.kind == SnapshotPayloadKind::kAllPairsShard) {
        payload.shard = read_shard(r, payload.scene);
      }
    }
    payload.payload_checksum = check_footer(r);
    r.return_unused_to_stream();
    return payload;
  } catch (const SnapshotError& e) {
    return e.status;
  } catch (const std::exception& e) {
    return Status::CorruptSnapshot(std::string("snapshot load failed: ") + e.what());
  }
}

Result<SnapshotPayload> load_snapshot_mapped(const std::string& path) {
  auto map = std::make_shared<MappedFile>();
  if (Status st = map->map(path); !st.ok()) return st;
  const uint8_t* base = map->data();
  const size_t fsize = map->size();
  try {
    if (fsize < kHeaderBytes + 8) {
      fail_corrupt("truncated snapshot (smaller than header + footer)");
    }
    const Header h = parse_header_bytes(base);
    if (h.version < 5 || h.kind == SnapshotPayloadKind::kBoundaryTree) {
      // No flat aligned tables to adopt: decode eagerly, straight from the
      // mapped bytes (still saves the read syscalls; the mapping dies with
      // this scope since the eager payload owns copies of everything).
      MemoryStreamBuf sb(base, fsize);
      std::istream ms(&sb);
      return load_snapshot(ms);
    }

    // Parse and bounds-check the index against the real file size BEFORE
    // hashing, so truncation is reported precisely and nothing past the
    // mapping is ever dereferenced.
    auto le32 = [&](size_t off) {
      uint32_t v = 0;
      for (size_t i = 0; i < 4; ++i) v |= static_cast<uint32_t>(base[off + i]) << (8 * i);
      return v;
    };
    auto le64 = [&](size_t off) {
      uint64_t v = 0;
      for (size_t i = 0; i < 8; ++i) v |= static_cast<uint64_t>(base[off + i]) << (8 * i);
      return v;
    };
    const uint64_t region_end = fsize - 8;  // footer
    const uint32_t nsec = le32(kHeaderBytes);
    if (nsec == 0 || nsec > 8) fail_corrupt("snapshot section count out of range");
    if (kHeaderBytes + 8 + kIndexEntryBytes * uint64_t{nsec} > region_end) {
      fail_corrupt("truncated snapshot (section index past end of file)");
    }
    const uint32_t flags = le32(kHeaderBytes + 4);
    std::vector<SecEntry> raw_secs(nsec);
    for (size_t i = 0; i < nsec; ++i) {
      const size_t e = kHeaderBytes + 8 + kIndexEntryBytes * i;
      raw_secs[i].id = le32(e);
      if (le32(e + 4) != 0) fail_corrupt("section reserved bits set");
      raw_secs[i].off = le64(e + 8);
      raw_secs[i].size = le64(e + 16);
    }
    const V5Index idx = validate_v5_index(h.kind, flags, std::move(raw_secs));
    const SecEntry& last = idx.secs.back();
    if (last.off + last.size > region_end) {
      fail_corrupt("truncated snapshot (section past end of file)");
    }
    const bool delta = (idx.flags & kFlagDistDelta) != 0;

    // One sequential pass verifies the whole checksummed region (index,
    // padding, sections); everything after this trusts the artifact.
    //
    // The table range scans ride along in the same pass: hashing and
    // validation each stream the full region, and at multi-gigabyte
    // sizes the second DRAM sweep — not the arithmetic — is what a
    // starting replica waits on. The sweep works in L2-sized chunks,
    // hashing a chunk and then range-checking its table overlap while
    // the bytes are still cache-resident. Checks against runtime bounds
    // can't run yet (m is inside the still-unverified scene section),
    // so the pred check accumulates max(entry + 1) and is compared
    // against m after the scene decodes; dist (> kInf) and pass
    // (outside [-1, 3]) check against constants inline.
    StripeHash hash;
    uint64_t bad = 0;
    uint32_t pred_max = 0;
    const bool fused =
        kHostLittleEndian && h.kind != SnapshotPayloadKind::kSceneOnly;
    if (fused) {
      auto check_dist = [&](const uint8_t* p, size_t n) {
        uint64_t acc = 0;
        for (size_t i = 0; i + 8 <= n; i += 8) {
          uint64_t w;
          std::memcpy(&w, p + i, 8);
          acc |= static_cast<uint64_t>(w > static_cast<uint64_t>(kInf));
        }
        bad |= acc;
      };
      auto check_pred = [&](const uint8_t* p, size_t n) {
        uint32_t acc = 0;
        for (size_t i = 0; i + 4 <= n; i += 4) {
          uint32_t w;
          std::memcpy(&w, p + i, 4);
          acc = std::max(acc, w + 1);  // valid iff (entry + 1) <= m
        }
        pred_max = std::max(pred_max, acc);
      };
      auto check_pass = [&](const uint8_t* p, size_t n) {
        constexpr uint64_t k01 = 0x0101010101010101ULL;
        constexpr uint64_t k7B = k01 * 0x7B;
        constexpr uint64_t k7F = k01 * 0x7F;
        constexpr uint64_t k80 = k01 * 0x80;
        uint64_t acc = 0;
        size_t i = 0;
        for (; i + 8 <= n; i += 8) {
          uint64_t w;
          std::memcpy(&w, p + i, 8);
          // x = per-byte (v + 1), carry-free; a byte is bad iff x > 4.
          const uint64_t x = ((w & k7F) + k01) ^ (w & k80);
          acc |= (x | ((x & k7F) + k7B)) & k80;
        }
        for (; i < n; ++i) {
          const int16_t v = static_cast<int8_t>(p[i]);
          acc |= static_cast<uint64_t>(
              static_cast<uint8_t>(static_cast<int16_t>(v + 1)) > 4);
        }
        bad |= acc;
      };
      const uint64_t dist_lo = idx.secs[1].off;
      const uint64_t dist_hi = dist_lo + idx.secs[1].size;
      const uint64_t pred_lo = idx.secs[2].off;
      const uint64_t pred_hi = pred_lo + idx.secs[2].size;
      const uint64_t pass_lo = idx.secs[3].off;
      const uint64_t pass_hi = pass_lo + idx.secs[3].size;
      constexpr uint64_t kChunk = uint64_t{256} << 10;
      for (uint64_t pos = kHeaderBytes; pos < region_end;) {
        const uint64_t end = std::min(pos + kChunk, region_end);
        hash.update(base + pos, static_cast<size_t>(end - pos));
        auto overlap = [&](uint64_t lo, uint64_t hi, auto&& chk) {
          const uint64_t s = std::max(pos, lo), e = std::min(end, hi);
          if (s < e) chk(base + s, static_cast<size_t>(e - s));
        };
        // Sections are 64-byte aligned and chunk edges stay 8-byte
        // aligned, so no dist/pred entry straddles a chunk boundary.
        if (!delta) overlap(dist_lo, dist_hi, check_dist);
        overlap(pred_lo, pred_hi, check_pred);
        overlap(pass_lo, pass_hi, check_pass);
        pos = end;
      }
    } else {
      hash.update(base + kHeaderBytes,
                  static_cast<size_t>(region_end) - kHeaderBytes);
    }
    if (hash.finish() != le64(static_cast<size_t>(region_end))) {
      fail_corrupt("payload checksum mismatch");
    }

    SnapshotPayload payload;
    payload.kind = h.kind;
    payload.payload_checksum = le64(static_cast<size_t>(region_end));

    SceneMeta sm;
    {
      MemoryStreamBuf sb(base + idx.secs[0].off,
                         static_cast<size_t>(idx.secs[0].size));
      std::istream ms(&sb);
      Reader sr(ms);
      sm = read_scene_meta(sr, h.kind);
      if (sr.consumed() != idx.secs[0].size) {
        fail_corrupt("scene section size mismatch");
      }
    }
    payload.scene = std::move(sm.scene);
    if (h.kind == SnapshotPayloadKind::kSceneOnly) return payload;

    const size_t rows = sm.row_hi - sm.row_lo;
    const size_t count = rows * sm.m;
    const SecEntry& sdist = idx.secs[1];
    const SecEntry& spred = idx.secs[2];
    const SecEntry& spass = idx.secs[3];
    if (spred.size != count * sizeof(int32_t)) {
      fail_corrupt("pred section size mismatch");
    }
    if (spass.size != count * sizeof(int8_t)) {
      fail_corrupt("pass section size mismatch");
    }
    if (!delta && sdist.size != count * sizeof(Length)) {
      fail_corrupt("dist section size mismatch");
    }

    // Adopt pred/pass (and raw dist) in place — the 64-byte section
    // alignment plus the page-aligned mapping make the casts well-formed.
    // The wire format is little-endian, so a big-endian host decodes
    // copies instead. Range checks already ran fused into the checksum
    // sweep above (they bound what any downstream indexing can touch);
    // the O(m^2) descent recheck is the one check traded away on this
    // path — see validate_tables.
    const Length* dist_view = nullptr;
    const int32_t* pred_view = nullptr;
    const int8_t* pass_view = nullptr;
    std::vector<Length> dist_own;
    std::vector<int32_t> pred_own;
    std::vector<int8_t> pass_own;
    if (delta) {
      decode_delta_dist(base + sdist.off, static_cast<size_t>(sdist.size),
                        sm.row_lo, rows, sm.m,
                        payload.scene.obstacle_vertices(), dist_own);
    }
    if constexpr (kHostLittleEndian) {
      if (!delta) dist_view = reinterpret_cast<const Length*>(base + sdist.off);
      pred_view = reinterpret_cast<const int32_t*>(base + spred.off);
      pass_view = reinterpret_cast<const int8_t*>(base + spass.off);
    } else {
      if (!delta) {
        MemoryStreamBuf sb(base + sdist.off, static_cast<size_t>(sdist.size));
        std::istream ms(&sb);
        Reader sr(ms);
        read_pod_table(sr, dist_own, count, "dist matrix");
      }
      MemoryStreamBuf pb(base + spred.off, static_cast<size_t>(spred.size));
      std::istream pms(&pb);
      Reader pr(pms);
      read_pod_table(pr, pred_own, count, "pred table");
      pass_own.assign(reinterpret_cast<const int8_t*>(base + spass.off),
                      reinterpret_cast<const int8_t*>(base + spass.off) + count);
    }
    const Length* dist_p = dist_view ? dist_view : dist_own.data();
    const int32_t* pred_p = pred_view ? pred_view : pred_own.data();
    const int8_t* pass_p = pass_view ? pass_view : pass_own.data();
    if (!fused) {
      // Big-endian host: the fused sweep didn't run; scan the decoded
      // copies the portable way.
      validate_tables(dist_p, pred_p, pass_p, rows, sm.m, /*descent=*/false);
    } else if (bad != 0 || static_cast<uint64_t>(pred_max) > sm.m) {
      // The fused sweep only accumulates a verdict; rescan per-table
      // for the precise error message (throws on the offending entry).
      validate_tables(dist_p, pred_p, pass_p, rows, sm.m, /*descent=*/false);
      fail_corrupt("table entry out of range");
    }

    if (h.kind == SnapshotPayloadKind::kAllPairs) {
      AllPairsData data;
      data.m = sm.m;
      if (dist_view != nullptr) {
        data.dist = Matrix(sm.m, sm.m, dist_view, map);
      } else {
        data.dist = Matrix(sm.m, sm.m, std::move(dist_own));
      }
      if (pred_view != nullptr) {
        data.pred_view = pred_view;
        data.pass_view = pass_view;
        data.arena = map;
      } else {
        data.pred = std::move(pred_own);
        data.pass = std::move(pass_own);
      }
      payload.data = std::move(data);
    } else {
      AllPairsShardData shard;
      shard.m = sm.m;
      shard.row_lo = sm.row_lo;
      shard.row_hi = sm.row_hi;
      if (dist_view != nullptr) {
        shard.dist_view = dist_view;
      } else {
        shard.dist = std::move(dist_own);
      }
      if (pred_view != nullptr) {
        shard.pred_view = pred_view;
        shard.pass_view = pass_view;
      } else {
        shard.pred = std::move(pred_own);
        shard.pass = std::move(pass_own);
      }
      if (dist_view != nullptr || pred_view != nullptr) shard.arena = map;
      payload.shard = std::move(shard);
    }
    return payload;
  } catch (const SnapshotError& e) {
    return e.status;
  } catch (const std::exception& e) {
    return Status::CorruptSnapshot(std::string("snapshot load failed: ") + e.what());
  }
}

Result<SnapshotInfo> read_snapshot_info(std::istream& is) {
  const std::istream::pos_type start = is.tellg();
  try {
    Reader r(is);
    SnapshotInfo info;
    const Header h = read_header(r);
    info.format_version = h.version;
    info.kind = h.kind;
    if (h.version >= 5) {
      const V5Index idx = read_v5_index(r, h.kind);
      for (const SecEntry& e : idx.secs) {
        if (e.id == kSecDist) {
          info.dist_section_bytes = e.size;
          info.dist_delta_encoded = (idx.flags & kFlagDistDelta) != 0;
        }
      }
      skip_padding(r, idx.secs[0].off);
      const SceneMeta sm = read_scene_meta(r, h.kind);
      info.num_obstacles = sm.scene.num_obstacles();
      info.num_container_vertices = sm.scene.container().vertices().size();
      info.num_vertices = sm.m;
      if (h.kind == SnapshotPayloadKind::kAllPairsShard) {
        info.row_lo = sm.row_lo;
        info.row_hi = sm.row_hi;
      }
      if (h.kind == SnapshotPayloadKind::kBoundaryTree) {
        // The node count leads the tree section.
        skip_padding(r, idx.secs[1].off);
        info.num_tree_nodes = static_cast<size_t>(r.u64("tree node count"));
      }
    } else {
      Scene scene = read_scene(r);
      info.num_obstacles = scene.num_obstacles();
      info.num_container_vertices = scene.container().vertices().size();
      if (info.kind == SnapshotPayloadKind::kAllPairs) {
        info.num_vertices = static_cast<size_t>(r.u64("vertex count m"));
      } else if (info.kind == SnapshotPayloadKind::kBoundaryTree) {
        info.num_tree_nodes = static_cast<size_t>(r.u64("tree node count"));
      } else if (info.kind == SnapshotPayloadKind::kAllPairsShard) {
        info.num_vertices = static_cast<size_t>(r.u64("shard vertex count m"));
        info.row_lo = static_cast<size_t>(r.u64("shard row_lo"));
        info.row_hi = static_cast<size_t>(r.u64("shard row_hi"));
      }
    }
    // Pure peek on a seekable stream: rewind to where the snapshot began
    // so the caller can hand the same stream straight to load_snapshot.
    if (start != std::istream::pos_type(-1)) {
      is.clear();
      is.seekg(start);
    }
    return info;
  } catch (const SnapshotError& e) {
    return e.status;
  } catch (const std::exception& e) {
    return Status::CorruptSnapshot(std::string("snapshot info failed: ") + e.what());
  }
}

}  // namespace rsp
