#include "io/snapshot.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

namespace rsp {

namespace {

constexpr std::array<char, 8> kMagic = {'R', 'S', 'P', 'S', 'N', 'A', 'P', 0};

// Payload integrity check (not cryptographic): FNV-1a over the payload
// split into consecutive 64-bit little-endian words, the final partial
// word zero-padded. Word-at-a-time keeps hashing negligible next to the
// stream I/O for the multi-megabyte all-pairs tables.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

constexpr bool kHostLittleEndian = std::endian::native == std::endian::little;

struct BlockHash {
  // Four interleaved FNV lanes (word i goes to lane i mod 4), folded
  // together at finish: the per-lane multiply chains are independent, so
  // the CPU pipelines them instead of serializing on the imul latency —
  // hashing the multi-megabyte tables stays negligible next to the I/O.
  uint64_t h[4] = {kFnvOffset, kFnvOffset + 1, kFnvOffset + 2,
                   kFnvOffset + 3};
  unsigned lane = 0;
  uint64_t pend = 0;
  unsigned pend_n = 0;

  void word(uint64_t w) {
    h[lane] = (h[lane] ^ w) * kFnvPrime;
    lane = (lane + 1) & 3;
  }
  void byte(unsigned char c) {
    pend |= static_cast<uint64_t>(c) << (8 * pend_n);
    if (++pend_n == 8) {
      word(pend);
      pend = 0;
      pend_n = 0;
    }
  }
  void update(const void* p, size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    while (n > 0 && pend_n != 0) {
      byte(*b++);
      --n;
    }
    if constexpr (kHostLittleEndian) {
      for (; n >= 8; b += 8, n -= 8) {
        uint64_t w;
        std::memcpy(&w, b, 8);
        word(w);
      }
    } else {
      for (; n >= 8; b += 8, n -= 8) {
        uint64_t w = 0;
        for (size_t i = 0; i < 8; ++i) w |= static_cast<uint64_t>(b[i]) << (8 * i);
        word(w);
      }
    }
    while (n > 0) {
      byte(*b++);
      --n;
    }
  }
  uint64_t finish() {
    if (pend_n != 0) {
      word(pend);
      pend = 0;
      pend_n = 0;
    }
    uint64_t out = kFnvOffset;
    for (uint64_t lane_h : h) out = (out ^ lane_h) * kFnvPrime;
    return out;
  }
};

// Thrown inside the reader on malformed input; the public entry points
// catch it (and everything else) and return a Status — nothing escapes
// this translation unit as an exception.
struct SnapshotError {
  Status status;
};

[[noreturn]] void fail_corrupt(const std::string& msg) {
  throw SnapshotError{Status::CorruptSnapshot(msg)};
}

// Buffered little-endian encoder. Small fields batch through a 64 KiB
// buffer; table-sized writes bypass it with one stream write.
class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) { buf_.reserve(kBufCap); }
  ~Writer() { flush(); }

  void raw(const void* p, size_t n) {  // header bytes: not checksummed
    if (n >= kBufCap) {
      flush();
      os_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
      return;
    }
    const auto* b = static_cast<const char*>(p);
    if (buf_.size() + n > kBufCap) flush();
    buf_.insert(buf_.end(), b, b + n);
  }
  void bytes(const void* p, size_t n) {
    hash_.update(p, n);
    raw(p, n);
  }
  void flush() {
    if (!buf_.empty()) {
      os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
      buf_.clear();
    }
  }
  void u8(uint8_t v) { bytes(&v, 1); }
  void u32(uint32_t v) { put_le(v, 4); }
  void u64(uint64_t v) { put_le(v, 8); }
  void i64(int64_t v) { put_le(static_cast<uint64_t>(v), 8); }
  void i32(int32_t v) {
    put_le(static_cast<uint64_t>(static_cast<uint32_t>(v)), 4);
  }
  void i8(int8_t v) { u8(static_cast<uint8_t>(v)); }
  void point(const Point& p) {
    i64(p.x);
    i64(p.y);
  }

  uint64_t finish_hash() { return hash_.finish(); }
  bool good() const { return os_.good(); }

 private:
  void put_le(uint64_t v, size_t n) {
    unsigned char buf[8];
    for (size_t i = 0; i < n; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(buf, n);
  }

  static constexpr size_t kBufCap = 64 * 1024;
  std::ostream& os_;
  std::vector<char> buf_;
  BlockHash hash_;
};

// Buffered decoder, mirror of Writer. All stream reads go through the
// Reader (nothing reads the stream behind its back); table-sized reads
// land directly in the caller's storage.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) { buf_.resize(kBufCap); }

  void raw(void* p, size_t n, const char* what) {
    auto* out = static_cast<char*>(p);
    // Drain what the buffer already holds, then read the bulk directly.
    const size_t take0 = std::min(n, len_ - pos_);
    std::memcpy(out, buf_.data() + pos_, take0);
    pos_ += take0;
    out += take0;
    n -= take0;
    while (n > 0) {
      if (n >= kBufCap) {
        is_.read(out, static_cast<std::streamsize>(n));
        const size_t got = static_cast<size_t>(is_.gcount());
        if (got != n) {
          fail_corrupt(std::string("truncated snapshot while reading ") + what);
        }
        return;
      }
      is_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
      len_ = static_cast<size_t>(is_.gcount());
      pos_ = 0;
      if (len_ == 0) {
        fail_corrupt(std::string("truncated snapshot while reading ") + what);
      }
      const size_t take = std::min(n, len_);
      std::memcpy(out, buf_.data(), take);
      pos_ = take;
      out += take;
      n -= take;
    }
  }
  void bytes(void* p, size_t n, const char* what) {
    raw(p, n, what);
    hash_.update(p, n);
  }
  uint8_t u8(const char* what) {
    uint8_t v;
    bytes(&v, 1, what);
    return v;
  }
  uint32_t u32(const char* what) { return static_cast<uint32_t>(get_le(4, what)); }
  uint64_t u64(const char* what) { return get_le(8, what); }
  int64_t i64(const char* what) { return static_cast<int64_t>(get_le(8, what)); }
  int32_t i32(const char* what) {
    return static_cast<int32_t>(static_cast<uint32_t>(get_le(4, what)));
  }
  int8_t i8(const char* what) { return static_cast<int8_t>(u8(what)); }
  Point point(const char* what) {
    Coord x = i64(what);
    Coord y = i64(what);
    return Point{x, y};
  }

  uint64_t finish_hash() { return hash_.finish(); }

  // Seeks the stream back over refill bytes the snapshot never consumed,
  // so a caller composing several snapshots (or other framing) in one
  // seekable stream finds the position just past the footer. Best-effort:
  // a non-seekable stream stays where the last refill left it.
  void return_unused_to_stream() {
    if (pos_ >= len_) return;
    const std::ios::iostate before = is_.rdstate();
    is_.clear();  // the last refill may have set eofbit
    is_.seekg(-static_cast<std::streamoff>(len_ - pos_), std::ios::cur);
    if (is_.fail()) {
      // Non-seekable stream: leave it exactly as the reads left it rather
      // than poisoned with failbit after a successful load.
      is_.clear();
      is_.setstate(before);
      return;
    }
    pos_ = len_ = 0;
  }

 private:
  uint64_t get_le(size_t n, const char* what) {
    unsigned char buf[8];
    bytes(buf, n, what);
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i) v |= static_cast<uint64_t>(buf[i]) << (8 * i);
    return v;
  }

  static constexpr size_t kBufCap = 64 * 1024;
  std::istream& is_;
  std::vector<char> buf_;
  size_t pos_ = 0, len_ = 0;
  BlockHash hash_;
};

// Reads `count` fixed-width elements into `out`, growing it chunk by
// chunk: a crafted header claiming enormous tables only consumes memory
// in proportion to the bytes actually present in the stream (truncation
// fails after at most one chunk) instead of zero-filling the full claimed
// size up front. The reserve makes growth copy-free for honest input; if
// the claim is so large that even the reservation fails, the bad_alloc is
// translated to kCorruptSnapshot by the public entry points.
template <typename T>
void read_pod_table(Reader& r, std::vector<T>& out, size_t count,
                    const char* what) {
  constexpr size_t kChunkElems = (size_t{1} << 22) / sizeof(T);  // 4 MiB
  out.clear();
  out.reserve(count);
  for (size_t done = 0; done < count;) {
    const size_t take = std::min(kChunkElems, count - done);
    out.resize(done + take);
    r.bytes(out.data() + done, take * sizeof(T), what);
    done += take;
  }
  if constexpr (!kHostLittleEndian && sizeof(T) > 1) {
    for (T& v : out) {
      auto* b = reinterpret_cast<unsigned char*>(&v);
      for (size_t i = 0; i < sizeof(T) / 2; ++i) {
        std::swap(b[i], b[sizeof(T) - 1 - i]);
      }
    }
  }
}

void write_scene(Writer& w, const Scene& scene) {
  const auto& cverts = scene.container().vertices();
  w.u64(cverts.size());
  for (const Point& p : cverts) w.point(p);
  w.u64(scene.num_obstacles());
  for (const Rect& r : scene.obstacles()) {
    w.i64(r.xmin);
    w.i64(r.ymin);
    w.i64(r.xmax);
    w.i64(r.ymax);
  }
}

Scene read_scene(Reader& r) {
  const uint64_t ncv = r.u64("container vertex count");
  std::vector<Point> cverts;
  cverts.reserve(std::min<uint64_t>(ncv, 4096));
  for (uint64_t i = 0; i < ncv; ++i) cverts.push_back(r.point("container vertex"));
  const uint64_t nobs = r.u64("obstacle count");
  std::vector<Rect> obstacles;
  obstacles.reserve(std::min<uint64_t>(nobs, 4096));
  for (uint64_t i = 0; i < nobs; ++i) {
    Coord x0 = r.i64("obstacle rect");
    Coord y0 = r.i64("obstacle rect");
    Coord x1 = r.i64("obstacle rect");
    Coord y1 = r.i64("obstacle rect");
    if (x0 > x1 || y0 > y1) fail_corrupt("degenerate obstacle rectangle");
    obstacles.emplace_back(x0, y0, x1, y1);
  }
  if (ncv == 0) {
    if (nobs != 0) fail_corrupt("obstacles present but container empty");
    return Scene{};
  }
  // Scene/polygon constructors re-validate rectilinear convexity and
  // obstacle disjointness; their RSP_CHECK throws surface as corruption.
  try {
    return Scene(std::move(obstacles),
                 RectilinearPolygon::from_vertices(std::move(cverts)));
  } catch (const std::exception& e) {
    fail_corrupt(std::string("snapshot scene failed validation: ") + e.what());
  }
}

void write_all_pairs(Writer& w, const AllPairsData& data) {
  const size_t m = data.m;
  w.u64(m);
  if constexpr (kHostLittleEndian) {
    // In-memory layout == wire layout: one bulk write per table.
    w.bytes(data.dist.storage().data(), m * m * sizeof(Length));
    w.bytes(data.pred.data(), m * m * sizeof(int32_t));
    w.bytes(data.pass.data(), m * m * sizeof(int8_t));
  } else {
    for (Length d : data.dist.storage()) w.i64(d);
    for (int32_t p : data.pred) w.i32(p);
    for (int8_t p : data.pass) w.i8(p);
  }
}

// ---- All-pairs row-shard payload (SnapshotPayloadKind::kAllPairsShard) ----

void write_shard(Writer& w, const AllPairsShardView& shard) {
  const size_t rows = shard.row_hi - shard.row_lo;
  const size_t n = rows * shard.m;
  w.u64(shard.m);
  w.u64(shard.row_lo);
  w.u64(shard.row_hi);
  if constexpr (kHostLittleEndian) {
    w.bytes(shard.dist, n * sizeof(Length));
    w.bytes(shard.pred, n * sizeof(int32_t));
    w.bytes(shard.pass, n * sizeof(int8_t));
  } else {
    for (size_t i = 0; i < n; ++i) w.i64(shard.dist[i]);
    for (size_t i = 0; i < n; ++i) w.i32(shard.pred[i]);
    for (size_t i = 0; i < n; ++i) w.i8(shard.pass[i]);
  }
}

AllPairsShardData read_shard(Reader& r, const Scene& scene) {
  AllPairsShardData shard;
  const uint64_t m = r.u64("shard vertex count m");
  if (m != 4 * static_cast<uint64_t>(scene.num_obstacles())) {
    std::ostringstream os;
    os << "shard table size mismatch: m = " << m << " but scene has "
       << scene.num_obstacles() << " obstacles (expected m = "
       << 4 * scene.num_obstacles() << ")";
    fail_corrupt(os.str());
  }
  const uint64_t row_lo = r.u64("shard row_lo");
  const uint64_t row_hi = r.u64("shard row_hi");
  if (row_lo >= row_hi || row_hi > m) {
    fail_corrupt("shard source-row range out of order");
  }
  shard.m = static_cast<size_t>(m);
  shard.row_lo = static_cast<size_t>(row_lo);
  shard.row_hi = static_cast<size_t>(row_hi);
  const size_t n = shard.rows() * shard.m;
  read_pod_table(r, shard.dist, n, "shard dist slice");
  read_pod_table(r, shard.pred, n, "shard pred slice");
  read_pod_table(r, shard.pass, n, "shard pass slice");
  // The same row-local validation the full tables get (see read_all_pairs:
  // pred entries index *columns* of their own row, so a slice validates
  // without its sibling shards).
  for (size_t a = 0; a < shard.rows(); ++a) {
    const Length* dist_row = shard.dist.data() + a * shard.m;
    const int32_t* pred_row = shard.pred.data() + a * shard.m;
    for (size_t b = 0; b < shard.m; ++b) {
      const Length db = dist_row[b];
      if (db < 0 || db > kInf) fail_corrupt("shard dist entry out of range");
      const int32_t p = pred_row[b];
      if (p < 0) {
        if (p < -1) fail_corrupt("shard pred entry out of range");
        continue;
      }
      if (static_cast<size_t>(p) >= shard.m) {
        fail_corrupt("shard pred entry out of range");
      }
      if (db >= kInf || dist_row[p] >= db) {
        fail_corrupt("shard pred slice inconsistent with dist slice");
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (shard.pass[i] > 3 || shard.pass[i] < -1) {
      fail_corrupt("shard pass entry out of range");
    }
  }
  return shard;
}

AllPairsData read_all_pairs(Reader& r, const Scene& scene) {
  AllPairsData data;
  const uint64_t m = r.u64("vertex count m");
  if (m != 4 * static_cast<uint64_t>(scene.num_obstacles())) {
    std::ostringstream os;
    os << "all-pairs table size mismatch: m = " << m << " but scene has "
       << scene.num_obstacles() << " obstacles (expected m = "
       << 4 * scene.num_obstacles() << ")";
    fail_corrupt(os.str());
  }
  data.m = static_cast<size_t>(m);
  const size_t mm = data.m * data.m;
  std::vector<Length> dist;
  read_pod_table(r, dist, mm, "dist matrix");
  read_pod_table(r, data.pred, mm, "pred table");
  read_pod_table(r, data.pass, mm, "pass table");
  // Table validation, one row-wise pass (this runs on every replica start,
  // so it is written for speed — raw row pointers, branch-light):
  //  * dist entries in [0, kInf], pred ids in [-1, m), pass in [-1, 3];
  //  * pred acyclicity, which the non-cryptographic checksum cannot
  //    guarantee for crafted input and whose violation would hang the §8
  //    path walk. The builder's invariant makes this a local check: a
  //    recorded predecessor lies strictly closer to the source (its hop
  //    has positive L1 length), so dist(a, pred(b)) < dist(a, b) < kInf —
  //    every pred chain then strictly descends and terminates.
  for (size_t a = 0; a < data.m; ++a) {
    const Length* dist_row = dist.data() + a * data.m;
    const int32_t* pred_row = data.pred.data() + a * data.m;
    for (size_t b = 0; b < data.m; ++b) {
      const Length db = dist_row[b];
      if (db < 0 || db > kInf) {
        fail_corrupt("dist matrix entry out of range");
      }
      const int32_t p = pred_row[b];
      if (p < 0) {
        if (p < -1) fail_corrupt("pred table entry out of range");
        continue;
      }
      if (static_cast<size_t>(p) >= data.m) {
        fail_corrupt("pred table entry out of range");
      }
      if (db >= kInf || dist_row[p] >= db) {
        fail_corrupt("pred table inconsistent with dist matrix");
      }
    }
  }
  for (size_t i = 0; i < mm; ++i) {
    if (data.pass[i] > 3 || data.pass[i] < -1) {
      fail_corrupt("pass table entry out of range");
    }
  }
  data.dist = Matrix(data.m, data.m, std::move(dist));
  return data;
}

// ---- Boundary-tree payload (SnapshotPayloadKind::kBoundaryTree) ----

void write_points(Writer& w, const std::vector<Point>& pts) {
  w.u64(pts.size());
  for (const Point& p : pts) w.point(p);
}

void write_u32s(Writer& w, const std::vector<uint32_t>& v) {
  w.u64(v.size());
  for (uint32_t x : v) w.u32(x);
}

void write_tree(Writer& w, const DncTree& tree) {
  w.u64(tree.nodes.size());
  for (const DncNode& n : tree.nodes) {
    write_points(w, n.region.vertices());
    write_points(w, n.b);
    w.u64(n.rects.size());
    for (const Rect& r : n.rects) {
      w.i64(r.xmin);
      w.i64(r.ymin);
      w.i64(r.xmax);
      w.i64(r.ymax);
    }
    write_u32s(w, n.children);
    write_points(w, n.sep);
    w.u8(n.sep_increasing ? 1 : 0);
    w.u64(n.ports.size());
    for (const DncPort& p : n.ports) {
      w.i32(p.child);
      write_u32s(w, p.rows);
      write_u32s(w, p.child_rows);
      write_points(w, p.mids);
      write_u32s(w, p.mid_child);
      w.u64(p.reach.rows());
      w.u64(p.reach.cols());
      // v3: a representation byte, then either the dense entries (0) or
      // the breakpoint-compressed parts (1; see monge/compressed.h). The
      // builder's compress() is deterministic, so these bytes stay
      // identical across scheduler widths.
      if (!p.reach.empty()) {
        if (p.reach.compressed()) {
          w.u8(1);
          for (Length d : p.reach.row0()) w.i64(d);
          for (Length d : p.reach.col0()) w.i64(d);
          w.u64(p.reach.bp_row().size());
          for (uint32_t x : p.reach.bp_start()) w.u32(x);
          for (uint32_t x : p.reach.bp_row()) w.u32(x);
          for (Length d : p.reach.bp_delta()) w.i64(d);
        } else {
          w.u8(0);
          for (Length d : p.reach.dense_form().storage()) w.i64(d);
        }
      }
    }
  }
}

std::vector<Point> read_points(Reader& r, const char* what) {
  const uint64_t n = r.u64(what);
  std::vector<Point> out;
  out.reserve(std::min<uint64_t>(n, 4096));
  for (uint64_t i = 0; i < n; ++i) out.push_back(r.point(what));
  return out;
}

std::vector<uint32_t> read_u32s(Reader& r, const char* what) {
  const uint64_t n = r.u64(what);
  std::vector<uint32_t> out;
  out.reserve(std::min<uint64_t>(n, 4096));
  for (uint64_t i = 0; i < n; ++i) out.push_back(r.u32(what));
  return out;
}

std::shared_ptr<const DncTree> read_tree(Reader& r, const Scene& scene,
                                         uint32_t version) {
  auto tree = std::make_shared<DncTree>();
  const uint64_t count = r.u64("tree node count");
  if (count == 0) fail_corrupt("boundary tree with no nodes");
  tree->nodes.reserve(std::min<uint64_t>(count, 4096));
  for (uint64_t id = 0; id < count; ++id) {
    DncNode n;
    std::vector<Point> rverts = read_points(r, "tree node region");
    try {
      n.region = RectilinearPolygon::from_vertices(std::move(rverts));
    } catch (const std::exception& e) {
      fail_corrupt(std::string("tree node region failed validation: ") +
                   e.what());
    }
    n.b = read_points(r, "tree node boundary set");
    const uint64_t nrects = r.u64("tree leaf rect count");
    n.rects.reserve(std::min<uint64_t>(nrects, 4096));
    for (uint64_t i = 0; i < nrects; ++i) {
      Coord x0 = r.i64("tree leaf rect");
      Coord y0 = r.i64("tree leaf rect");
      Coord x1 = r.i64("tree leaf rect");
      Coord y1 = r.i64("tree leaf rect");
      if (x0 > x1 || y0 > y1) fail_corrupt("degenerate tree leaf rectangle");
      n.rects.emplace_back(x0, y0, x1, y1);
    }
    n.children = read_u32s(r, "tree node children");
    for (uint32_t c : n.children) {
      // Preorder invariant: child ids strictly above the parent's — this
      // alone makes the graph acyclic (and the reachability check below
      // makes it a tree).
      if (c <= id || c >= count) fail_corrupt("tree child id out of order");
    }
    n.sep = read_points(r, "tree node separator");
    n.sep_increasing = r.u8("tree separator orientation") != 0;
    if (!n.children.empty() && n.sep.size() < 2) {
      fail_corrupt("internal tree node without a separator");
    }
    const uint64_t nports = r.u64("tree node port count");
    if (n.children.empty() && nports != 0) {
      fail_corrupt("leaf tree node with ports");
    }
    for (uint64_t i = 0; i < nports; ++i) {
      DncPort p;
      p.child = r.i32("tree port child");
      if (p.child < -1 ||
          p.child >= static_cast<int32_t>(n.children.size())) {
        fail_corrupt("tree port child ordinal out of range");
      }
      p.rows = read_u32s(r, "tree port rows");
      p.child_rows = read_u32s(r, "tree port child rows");
      p.mids = read_points(r, "tree port mids");
      p.mid_child = read_u32s(r, "tree port mid indices");
      const uint64_t rr = r.u64("tree port reach rows");
      const uint64_t rc = r.u64("tree port reach cols");
      const bool has_reach = rr != 0 && rc != 0;
      if (has_reach && (rr != p.rows.size() || rc != p.mids.size())) {
        fail_corrupt("tree port reach matrix shape mismatch");
      }
      for (uint32_t bi : p.rows) {
        if (bi >= n.b.size()) fail_corrupt("tree port row index out of range");
      }
      if (p.child >= 0) {
        if (p.child_rows.size() != p.rows.size() ||
            p.mid_child.size() != p.mids.size()) {
          fail_corrupt("tree port child index tables mis-sized");
        }
      } else if (!p.child_rows.empty() || !p.mid_child.empty()) {
        fail_corrupt("virtual tree port carries child index tables");
      }
      if (has_reach) {
        // v2 and earlier stored every reach matrix dense; v3 prefixes a
        // representation byte (0 = dense, 1 = breakpoint-compressed).
        const uint8_t repr =
            version >= 3 ? r.u8("tree port reach representation") : 0;
        if (repr == 0) {
          std::vector<Length> reach;
          read_pod_table(r, reach, static_cast<size_t>(rr * rc),
                         "tree port reach matrix");
          for (Length d : reach) {
            if (d < 0 || d > kInf) {
              fail_corrupt("tree port reach entry out of range");
            }
          }
          // Re-run the deterministic encoder: reproduces exactly what the
          // builder holds in memory, and shrinks dense v1/v2 snapshots on
          // load for free.
          p.reach = PortMatrix::compress(Matrix(
              static_cast<size_t>(rr), static_cast<size_t>(rc),
              std::move(reach)));
        } else if (repr == 1) {
          std::vector<Length> row0, col0, bp_delta;
          std::vector<uint32_t> bp_start, bp_row;
          read_pod_table(r, row0, static_cast<size_t>(rc), "tree port row0");
          read_pod_table(r, col0, static_cast<size_t>(rr), "tree port col0");
          const uint64_t nbp = r.u64("tree port breakpoint count");
          if (nbp > rr * rc) fail_corrupt("tree port breakpoint count");
          read_pod_table(r, bp_start, static_cast<size_t>(rc),
                         "tree port breakpoint index");
          read_pod_table(r, bp_row, static_cast<size_t>(nbp),
                         "tree port breakpoint rows");
          read_pod_table(r, bp_delta, static_cast<size_t>(nbp),
                         "tree port breakpoint deltas");
          try {
            // from_parts validates the structural invariants (CSR
            // monotone, rows strictly increasing in-step, deltas != 0).
            p.reach = PortMatrix::from_parts(
                static_cast<size_t>(rr), static_cast<size_t>(rc),
                std::move(row0), std::move(col0), std::move(bp_start),
                std::move(bp_row), std::move(bp_delta));
          } catch (const std::exception& e) {
            fail_corrupt(std::string("tree port reach failed validation: ") +
                         e.what());
          }
          // Entry-range validation without materializing the dense form:
          // stream the columns (O(rows) memory).
          PortMatrix::ColumnScan scan(p.reach);
          for (size_t k = 0;; ++k) {
            const Length* col = scan.data();
            for (size_t a = 0; a < p.reach.rows(); ++a) {
              if (col[a] < 0 || col[a] > kInf) {
                fail_corrupt("tree port reach entry out of range");
              }
            }
            if (k + 1 == p.reach.cols()) break;
            scan.advance();
          }
        } else {
          fail_corrupt("unknown tree port reach representation");
        }
      }
      n.ports.push_back(std::move(p));
    }
    tree->nodes.push_back(std::move(n));
  }
  // Second pass: checks that need the whole node array — child-index
  // tables against the child's own boundary set, and tree reachability.
  std::vector<char> reached(tree->nodes.size(), 0);
  reached[0] = 1;
  size_t reach_count = 1;
  for (size_t id = 0; id < tree->nodes.size(); ++id) {
    const DncNode& n = tree->nodes[id];
    for (uint32_t c : n.children) {
      if (reached[c]) fail_corrupt("tree node has two parents");
      reached[c] = 1;
      ++reach_count;
    }
    for (const DncPort& p : n.ports) {
      if (p.child < 0) continue;
      const DncNode& child = tree->nodes[n.children[p.child]];
      for (uint32_t bi : p.child_rows) {
        if (bi >= child.b.size()) {
          fail_corrupt("tree port child row index out of range");
        }
      }
      for (uint32_t bi : p.mid_child) {
        if (bi >= child.b.size()) {
          fail_corrupt("tree port mid index out of range");
        }
      }
    }
  }
  if (reach_count != tree->nodes.size()) {
    fail_corrupt("tree has unreachable nodes");
  }
  // The root must span the snapshot's scene.
  if (tree->nodes[0].region.vertices() != scene.container().vertices()) {
    fail_corrupt("tree root region does not match the scene container");
  }
  return tree;
}

struct Header {
  SnapshotPayloadKind kind;
  uint32_t version;  // as read from the file, not the compiled-in constant
};

// Reads the fixed (non-checksummed) header.
Header read_header(Reader& r) {
  std::array<char, 8> magic;
  r.raw(magic.data(), magic.size(), "magic");
  if (magic != kMagic) fail_corrupt("bad magic: not an rsp snapshot");
  unsigned char vbuf[4];
  r.raw(vbuf, 4, "format version");
  uint32_t version = 0;
  for (size_t i = 0; i < 4; ++i) version |= static_cast<uint32_t>(vbuf[i]) << (8 * i);
  if (version < kSnapshotMinReadVersion || version > kSnapshotFormatVersion) {
    std::ostringstream os;
    os << "snapshot format version " << version << " (this build speaks "
       << kSnapshotMinReadVersion << ".." << kSnapshotFormatVersion << ")";
    throw SnapshotError{Status::VersionMismatch(os.str())};
  }
  unsigned char kind_and_reserved[4];
  r.raw(kind_and_reserved, 4, "payload kind");
  const uint8_t kind = kind_and_reserved[0];
  if (kind > static_cast<uint8_t>(SnapshotPayloadKind::kAllPairsShard)) {
    fail_corrupt("unknown payload kind");
  }
  if (kind == static_cast<uint8_t>(SnapshotPayloadKind::kBoundaryTree) &&
      version < 2) {
    fail_corrupt("boundary-tree payload in a version-1 snapshot");
  }
  if (kind == static_cast<uint8_t>(SnapshotPayloadKind::kAllPairsShard) &&
      version < 4) {
    fail_corrupt("all-pairs shard payload in a pre-version-4 snapshot");
  }
  return Header{static_cast<SnapshotPayloadKind>(kind), version};
}

// Returns the verified checksum (== stored == computed) so loads can
// surface it (SnapshotPayload::payload_checksum).
uint64_t check_footer(Reader& r) {
  const uint64_t expected = r.finish_hash();  // before the unhashed footer
  unsigned char buf[8];
  r.raw(buf, 8, "checksum");
  uint64_t stored = 0;
  for (size_t i = 0; i < 8; ++i) stored |= static_cast<uint64_t>(buf[i]) << (8 * i);
  if (stored != expected) fail_corrupt("payload checksum mismatch");
  return stored;
}

void write_header(Writer& w, SnapshotPayloadKind kind) {
  w.raw(kMagic.data(), kMagic.size());
  unsigned char vbuf[4];
  for (size_t i = 0; i < 4; ++i) {
    vbuf[i] = static_cast<unsigned char>(kSnapshotFormatVersion >> (8 * i));
  }
  w.raw(vbuf, 4);
  const unsigned char kind_and_reserved[4] = {static_cast<unsigned char>(kind),
                                              0, 0, 0};
  w.raw(kind_and_reserved, 4);
}

Status write_footer(Writer& w, std::ostream& os,
                    uint64_t* checksum_out = nullptr) {
  const uint64_t checksum = w.finish_hash();
  unsigned char cbuf[8];
  for (size_t i = 0; i < 8; ++i) {
    cbuf[i] = static_cast<unsigned char>(checksum >> (8 * i));
  }
  w.raw(cbuf, 8);
  w.flush();
  os.flush();
  if (!os.good()) return Status::IoError("snapshot write failed (stream error)");
  if (checksum_out != nullptr) *checksum_out = checksum;
  return Status::Ok();
}

}  // namespace

const char* payload_kind_name(SnapshotPayloadKind kind) {
  switch (kind) {
    case SnapshotPayloadKind::kSceneOnly: return "scene-only";
    case SnapshotPayloadKind::kAllPairs: return "all-pairs";
    case SnapshotPayloadKind::kBoundaryTree: return "boundary-tree";
    case SnapshotPayloadKind::kAllPairsShard: return "all-pairs-shard";
  }
  return "unknown";
}

std::optional<SnapshotPayloadKind> payload_kind_from_name(
    std::string_view name) {
  for (SnapshotPayloadKind k :
       {SnapshotPayloadKind::kSceneOnly, SnapshotPayloadKind::kAllPairs,
        SnapshotPayloadKind::kBoundaryTree,
        SnapshotPayloadKind::kAllPairsShard}) {
    if (name == payload_kind_name(k)) return k;
  }
  return std::nullopt;
}

Status save_snapshot(std::ostream& os, const Scene& scene,
                     const AllPairsData* data) {
  if (data != nullptr && data->m != 4 * scene.num_obstacles()) {
    return Status::Internal("save_snapshot: AllPairsData does not belong to scene");
  }
  Writer w(os);
  write_header(w, data ? SnapshotPayloadKind::kAllPairs
                       : SnapshotPayloadKind::kSceneOnly);
  write_scene(w, scene);
  if (data != nullptr) write_all_pairs(w, *data);
  return write_footer(w, os);
}

Status save_snapshot(std::ostream& os, const Scene& scene,
                     const DncTree& tree) {
  if (tree.nodes.empty() ||
      tree.nodes[0].region.vertices() != scene.container().vertices()) {
    return Status::Internal(
        "save_snapshot: DncTree does not belong to scene");
  }
  Writer w(os);
  write_header(w, SnapshotPayloadKind::kBoundaryTree);
  write_scene(w, scene);
  write_tree(w, tree);
  return write_footer(w, os);
}

Status save_snapshot(std::ostream& os, const Scene& scene,
                     const AllPairsShardView& shard,
                     uint64_t* payload_checksum) {
  if (shard.m != 4 * scene.num_obstacles() || shard.row_lo >= shard.row_hi ||
      shard.row_hi > shard.m || shard.dist == nullptr ||
      shard.pred == nullptr || shard.pass == nullptr) {
    return Status::Internal(
        "save_snapshot: AllPairsShardView does not belong to scene");
  }
  Writer w(os);
  write_header(w, SnapshotPayloadKind::kAllPairsShard);
  write_scene(w, scene);
  write_shard(w, shard);
  return write_footer(w, os, payload_checksum);
}

Result<SnapshotPayload> load_snapshot(std::istream& is) {
  try {
    Reader r(is);
    SnapshotPayload payload;
    const Header h = read_header(r);
    payload.kind = h.kind;
    payload.scene = read_scene(r);
    if (payload.kind == SnapshotPayloadKind::kAllPairs) {
      payload.data = read_all_pairs(r, payload.scene);
    } else if (payload.kind == SnapshotPayloadKind::kBoundaryTree) {
      payload.tree = read_tree(r, payload.scene, h.version);
    } else if (payload.kind == SnapshotPayloadKind::kAllPairsShard) {
      payload.shard = read_shard(r, payload.scene);
    }
    payload.payload_checksum = check_footer(r);
    r.return_unused_to_stream();
    return payload;
  } catch (const SnapshotError& e) {
    return e.status;
  } catch (const std::exception& e) {
    return Status::CorruptSnapshot(std::string("snapshot load failed: ") + e.what());
  }
}

Result<SnapshotInfo> read_snapshot_info(std::istream& is) {
  const std::istream::pos_type start = is.tellg();
  try {
    Reader r(is);
    SnapshotInfo info;
    const Header h = read_header(r);
    info.format_version = h.version;
    info.kind = h.kind;
    Scene scene = read_scene(r);
    info.num_obstacles = scene.num_obstacles();
    info.num_container_vertices = scene.container().vertices().size();
    if (info.kind == SnapshotPayloadKind::kAllPairs) {
      info.num_vertices = static_cast<size_t>(r.u64("vertex count m"));
    } else if (info.kind == SnapshotPayloadKind::kBoundaryTree) {
      info.num_tree_nodes = static_cast<size_t>(r.u64("tree node count"));
    } else if (info.kind == SnapshotPayloadKind::kAllPairsShard) {
      info.num_vertices = static_cast<size_t>(r.u64("shard vertex count m"));
      info.row_lo = static_cast<size_t>(r.u64("shard row_lo"));
      info.row_hi = static_cast<size_t>(r.u64("shard row_hi"));
    }
    // Pure peek on a seekable stream: rewind to where the snapshot began
    // so the caller can hand the same stream straight to load_snapshot.
    if (start != std::istream::pos_type(-1)) {
      is.clear();
      is.seekg(start);
    }
    return info;
  } catch (const SnapshotError& e) {
    return e.status;
  } catch (const std::exception& e) {
    return Status::CorruptSnapshot(std::string("snapshot info failed: ") + e.what());
  }
}

}  // namespace rsp
