#include "io/gen.h"

#include <algorithm>
#include <unordered_set>

namespace rsp {

namespace {

using Rng = std::mt19937_64;

Coord uniform_coord(Rng& rng, Coord lo, Coord hi) {
  return std::uniform_int_distribution<Coord>(lo, hi)(rng);
}

// Tracks used edge coordinates per axis to keep general position.
struct CoordPool {
  std::unordered_set<Coord> used_x, used_y;
  bool claim_x(Coord a, Coord b) {
    if (a == b || used_x.count(a) || used_x.count(b)) return false;
    used_x.insert(a);
    used_x.insert(b);
    return true;
  }
  bool claim_y(Coord a, Coord b) {
    if (a == b || used_y.count(a) || used_y.count(b)) return false;
    used_y.insert(a);
    used_y.insert(b);
    return true;
  }
  void release(const Rect& r) {
    used_x.erase(r.xmin);
    used_x.erase(r.xmax);
    used_y.erase(r.ymin);
    used_y.erase(r.ymax);
  }
};

bool overlaps_any(const Rect& r, const std::vector<Rect>& rects) {
  for (const auto& o : rects) {
    if (o.interior_intersects(r)) return true;
  }
  return false;
}

}  // namespace

Scene gen_uniform(size_t n, uint64_t seed) {
  RSP_CHECK(n >= 1);
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  const Coord span = static_cast<Coord>(24 * n + 64);
  const Coord max_side = std::max<Coord>(4, span / 8);
  std::vector<Rect> rects;
  CoordPool pool;
  size_t attempts = 0;
  while (rects.size() < n) {
    RSP_CHECK_MSG(++attempts < 200 * n + 10000, "generator stuck");
    Coord x1 = uniform_coord(rng, 0, span);
    Coord y1 = uniform_coord(rng, 0, span);
    Coord x2 = x1 + uniform_coord(rng, 1, max_side);
    Coord y2 = y1 + uniform_coord(rng, 1, max_side);
    if (!pool.claim_x(x1, x2)) continue;
    if (!pool.claim_y(y1, y2)) {
      pool.used_x.erase(x1);
      pool.used_x.erase(x2);
      continue;
    }
    Rect r{x1, y1, x2, y2};
    if (overlaps_any(r, rects)) {
      pool.release(r);
      continue;
    }
    rects.push_back(r);
  }
  return Scene::with_bbox(std::move(rects), /*margin=*/5);
}

Scene gen_grid(size_t n, uint64_t seed) {
  RSP_CHECK(n >= 1);
  Rng rng(seed * 0x2545F4914F6CDD1Dull + 7);
  const size_t cols = static_cast<size_t>(std::max(
      1.0, std::ceil(std::sqrt(static_cast<double>(n)))));
  const size_t rows = (n + cols - 1) / cols;
  // Disjoint coordinate sub-ranges per cell keep every edge coordinate
  // globally unique: cell (c, r) draws x from [c*W + r*w, c*W + (r+1)*w)
  // and y from [r*H + c*h, r*H + (c+1)*h).
  const Coord w = 12, h = 12;
  const Coord W = static_cast<Coord>(rows) * w + 8;
  const Coord H = static_cast<Coord>(cols) * h + 8;
  std::vector<Rect> rects;
  for (size_t i = 0; i < n; ++i) {
    size_t c = i % cols, r = i / cols;
    Coord x0 = static_cast<Coord>(c) * W + static_cast<Coord>(r) * w;
    Coord y0 = static_cast<Coord>(r) * H + static_cast<Coord>(c) * h;
    Coord x1 = x0 + uniform_coord(rng, 0, 3);
    Coord x2 = x1 + uniform_coord(rng, 1, w - 5);
    Coord y1 = y0 + uniform_coord(rng, 0, 3);
    Coord y2 = y1 + uniform_coord(rng, 1, h - 5);
    rects.push_back(Rect{x1, y1, x2, y2});
  }
  return Scene::with_bbox(std::move(rects), /*margin=*/5);
}

Scene gen_corridors(size_t n, uint64_t seed) {
  RSP_CHECK(n >= 1);
  Rng rng(seed * 0xDA942042E4DD58B5ull + 3);
  // Slab i spans most of the width, attached alternately to the left or
  // right container wall, leaving a gap on the other side. Every edge
  // coordinate is offset by the slab index to stay in general position.
  const Coord width = static_cast<Coord>(16 * n + 128);
  std::vector<Rect> rects;
  Coord y = 0;
  for (size_t i = 0; i < n; ++i) {
    Coord idx = static_cast<Coord>(i);
    Coord thick = 2 + idx % 3;
    // The slab index enters every edge coordinate so that all of them are
    // globally unique (general position).
    Coord gap = 6 + 2 * idx;
    Rect r = (i % 2 == 0) ? Rect{-idx - 1, y, width - gap, y + thick}
                          : Rect{gap, y, width + idx + 1, y + thick};
    rects.push_back(r);
    y += thick + 3 + uniform_coord(rng, 0, 2);
  }
  return Scene::with_bbox(std::move(rects), /*margin=*/5);
}

Scene gen_clustered(size_t n, uint64_t seed) {
  RSP_CHECK(n >= 1);
  Rng rng(seed * 0x94D049BB133111EBull + 11);
  const size_t clusters = std::max<size_t>(1, n / 16);
  const Coord spread = static_cast<Coord>(200 * clusters + 100);
  std::vector<Point> centers;
  for (size_t c = 0; c < clusters; ++c) {
    centers.push_back(
        {uniform_coord(rng, 0, spread), uniform_coord(rng, 0, spread)});
  }
  std::vector<Rect> rects;
  CoordPool pool;
  size_t attempts = 0;
  while (rects.size() < n) {
    RSP_CHECK_MSG(++attempts < 400 * n + 10000, "generator stuck");
    const Point& ctr = centers[rects.size() % clusters];
    Coord x1 = ctr.x + uniform_coord(rng, -40, 40);
    Coord y1 = ctr.y + uniform_coord(rng, -40, 40);
    Coord x2 = x1 + uniform_coord(rng, 1, 9);
    Coord y2 = y1 + uniform_coord(rng, 1, 9);
    if (!pool.claim_x(x1, x2)) continue;
    if (!pool.claim_y(y1, y2)) {
      pool.used_x.erase(x1);
      pool.used_x.erase(x2);
      continue;
    }
    Rect r{x1, y1, x2, y2};
    if (overlaps_any(r, rects)) {
      pool.release(r);
      continue;
    }
    rects.push_back(r);
  }
  return Scene::with_bbox(std::move(rects), /*margin=*/5);
}

Scene gen_uniform_convex(size_t n, uint64_t seed) {
  Scene base = gen_uniform(n, seed);
  Rng rng(seed * 0xBF58476D1CE4E5B9ull + 23);
  Rect bb = base.container().bbox();
  // Corner-cut the bounding rectangle with random monotone staircases that
  // stay outside the obstacle area (cuts live in an extra margin band).
  const Coord band = std::max<Coord>(8, (bb.xmax - bb.xmin) / 6);
  Rect outer = bb.expanded(band);
  auto cut = [&](Coord max_d) {
    return uniform_coord(rng, 1, std::max<Coord>(1, max_d));
  };
  // Build the CCW vertex cycle with one staircase step per corner.
  Coord dx1 = cut(band - 1), dy1 = cut(band - 1);  // SW corner
  Coord dx2 = cut(band - 1), dy2 = cut(band - 1);  // SE
  Coord dx3 = cut(band - 1), dy3 = cut(band - 1);  // NE
  Coord dx4 = cut(band - 1), dy4 = cut(band - 1);  // NW
  std::vector<Point> v{
      {outer.xmin + dx1, outer.ymin},           // SW cut, bottom end
      {outer.xmax - dx2, outer.ymin},           // SE cut, bottom end
      {outer.xmax - dx2, outer.ymin + dy2 / 2 + 1},
      {outer.xmax, outer.ymin + dy2 / 2 + 1},   // SE cut, right end
      {outer.xmax, outer.ymax - dy3},           // NE cut, right end
      {outer.xmax - dx3 / 2 - 1, outer.ymax - dy3},
      {outer.xmax - dx3 / 2 - 1, outer.ymax},   // NE cut, top end
      {outer.xmin + dx4, outer.ymax},           // NW cut, top end
      {outer.xmin + dx4, outer.ymax - dy4 / 2 - 1},
      {outer.xmin, outer.ymax - dy4 / 2 - 1},   // NW cut, left end
      {outer.xmin, outer.ymin + dy1},           // SW cut, left end
      {outer.xmin + dx1, outer.ymin + dy1},
  };
  RectilinearPolygon poly = RectilinearPolygon::from_vertices(std::move(v));
  return Scene(std::vector<Rect>(base.obstacles()), std::move(poly));
}

Scene gen_sparse(size_t n, uint64_t seed) {
  RSP_CHECK(n >= 1);
  Rng rng(seed * 0x94D049BB133111EBull + 11);
  const Coord span = static_cast<Coord>(24 * n + 64);
  // Side cap ~ span / sqrt(n) keeps the expected fill fraction constant
  // (~1/4) as n grows, so rejection sampling succeeds at any n —
  // gen_uniform's span/8 cap overfills the container past n ~ 600. The
  // fill matters for more than sampling speed: in near-empty scenes most
  // obstacle vertices project to sub-region boundaries unblocked, which
  // inflates the boundary sets B(Q) (and with them the retained tree) by
  // an order of magnitude.
  Coord root = 1;
  while ((root + 1) * (root + 1) <= static_cast<Coord>(n)) ++root;
  const Coord max_side = std::max<Coord>(4, span / root);
  std::vector<Rect> rects;
  CoordPool pool;
  size_t attempts = 0;
  while (rects.size() < n) {
    RSP_CHECK_MSG(++attempts < 200 * n + 10000, "generator stuck");
    Coord x1 = uniform_coord(rng, 0, span);
    Coord y1 = uniform_coord(rng, 0, span);
    Coord x2 = x1 + uniform_coord(rng, 1, max_side);
    Coord y2 = y1 + uniform_coord(rng, 1, max_side);
    if (!pool.claim_x(x1, x2)) continue;
    if (!pool.claim_y(y1, y2)) {
      pool.used_x.erase(x1);
      pool.used_x.erase(x2);
      continue;
    }
    Rect r{x1, y1, x2, y2};
    if (overlaps_any(r, rects)) {
      pool.release(r);
      continue;
    }
    rects.push_back(r);
  }
  return Scene::with_bbox(std::move(rects), /*margin=*/5);
}

std::vector<Point> random_free_points(const Scene& scene, size_t count,
                                      uint64_t seed) {
  Rng rng(seed * 0xD6E8FEB86659FD93ull + 31);
  const Rect& bb = scene.container().bbox();
  std::unordered_set<Point, PointHash> taken;
  for (const auto& p : scene.obstacle_vertices()) taken.insert(p);
  std::vector<Point> out;
  size_t attempts = 0;
  while (out.size() < count) {
    RSP_CHECK_MSG(++attempts < 1000 * count + 10000, "point sampling stuck");
    Point p{uniform_coord(rng, bb.xmin, bb.xmax),
            uniform_coord(rng, bb.ymin, bb.ymax)};
    if (!scene.point_free(p) || taken.count(p)) continue;
    taken.insert(p);
    out.push_back(p);
  }
  return out;
}

}  // namespace rsp
