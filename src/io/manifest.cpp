#include "io/manifest.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace rsp {

namespace {

std::string shard_label(size_t i) {
  std::ostringstream os;
  os << "manifest shard " << i;
  return os.str();
}

// Strict unsigned decimal parse (no sign, no trailing junk).
bool parse_u64(const std::string& tok, uint64_t& out) {
  if (tok.empty() || tok.size() > 20) return false;
  uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    const uint64_t d = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

bool parse_i64(const std::string& tok, int64_t& out) {
  if (tok.empty()) return false;
  const bool neg = tok[0] == '-';
  uint64_t mag = 0;
  if (!parse_u64(neg ? tok.substr(1) : tok, mag)) return false;
  if (neg) {
    if (mag > static_cast<uint64_t>(INT64_MAX) + 1) return false;
    out = static_cast<int64_t>(~mag + 1);
  } else {
    if (mag > static_cast<uint64_t>(INT64_MAX)) return false;
    out = static_cast<int64_t>(mag);
  }
  return true;
}

bool parse_hex64(const std::string& tok, uint64_t& out) {
  if (tok.empty() || tok.size() > 16) return false;
  uint64_t v = 0;
  for (char c : tok) {
    uint64_t d;
    if (c >= '0' && c <= '9') d = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<uint64_t>(c - 'a' + 10);
    else return false;
    v = (v << 4) | d;
  }
  out = v;
  return true;
}

std::string hex64(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

}  // namespace

Status validate_manifest(const ShardManifest& man) {
  if (man.m == 0 || man.m != 4 * man.num_obstacles) {
    std::ostringstream os;
    os << "manifest table size mismatch: m = " << man.m << " but "
       << man.num_obstacles << " obstacles (expected m = "
       << 4 * man.num_obstacles << ")";
    return Status::CorruptSnapshot(os.str());
  }
  if (man.shards.empty()) {
    return Status::CorruptSnapshot("manifest names no shards");
  }
  for (size_t i = 0; i < man.shards.size(); ++i) {
    const ShardEntry& e = man.shards[i];
    if (e.file.empty()) {
      return Status::CorruptSnapshot(shard_label(i) + " has no file name");
    }
    // Mixed kinds get their own diagnosis below; a uniform non-shard kind
    // is a payload this manifest version cannot mount.
    if (e.kind != SnapshotPayloadKind::kAllPairsShard &&
        e.kind == man.shards[0].kind) {
      return Status::SnapshotMismatch(
          shard_label(i) + " carries payload kind '" +
          payload_kind_name(e.kind) +
          "'; a version-1 manifest mounts only all-pairs-shard payloads");
    }
    if (e.kind != man.shards[0].kind) {
      return Status::SnapshotMismatch(
          "manifest mixes payload kinds: shard 0 is '" +
          std::string(payload_kind_name(man.shards[0].kind)) + "' but " +
          shard_label(i) + " is '" + payload_kind_name(e.kind) + "'");
    }
    if (e.row_lo >= e.row_hi || e.row_hi > man.m) {
      std::ostringstream os;
      os << shard_label(i) << " row range [" << e.row_lo << ", " << e.row_hi
         << ") is not a valid slice of [0, " << man.m << ")";
      return Status::CorruptSnapshot(os.str());
    }
    const size_t expect_lo = i == 0 ? 0 : man.shards[i - 1].row_hi;
    if (e.row_lo != expect_lo) {
      std::ostringstream os;
      os << shard_label(i) << " row range [" << e.row_lo << ", " << e.row_hi
         << ") " << (e.row_lo < expect_lo ? "overlaps" : "leaves a gap after")
         << " the previous shard (expected row_lo = " << expect_lo << ")";
      return Status::CorruptSnapshot(os.str());
    }
    if (e.x_lo > e.x_hi) {
      std::ostringstream os;
      os << shard_label(i) << " routing slab [" << e.x_lo << ", " << e.x_hi
         << ") is inverted";
      return Status::CorruptSnapshot(os.str());
    }
    // Slabs must tile the x-axis with no gaps: route_by_x is load-bearing
    // for owned-rows fleets, and a coordinate falling between slabs would
    // have no deterministic first-try owner. (route_by_x clamps the two
    // open ends, so contiguity here makes the map total.)
    if (i > 0 && e.x_lo != man.shards[i - 1].x_hi) {
      std::ostringstream os;
      os << shard_label(i) << " routing slab [" << e.x_lo << ", " << e.x_hi
         << ") "
         << (e.x_lo < man.shards[i - 1].x_hi ? "overlaps" : "leaves a gap after")
         << " the previous slab ending at " << man.shards[i - 1].x_hi;
      return Status::CorruptSnapshot(os.str());
    }
  }
  if (man.shards.back().row_hi != man.m) {
    std::ostringstream os;
    os << "manifest shard rows end at " << man.shards.back().row_hi
       << " leaving a gap before m = " << man.m;
    return Status::CorruptSnapshot(os.str());
  }
  return Status::Ok();
}

Status save_manifest(std::ostream& os, const ShardManifest& man) {
  if (Status st = validate_manifest(man); !st.ok()) return st;
  os << kManifestMagic << ' ' << kManifestFormatVersion << '\n'
     << "obstacles " << man.num_obstacles << '\n'
     << "m " << man.m << '\n'
     << "shards " << man.shards.size() << '\n';
  for (size_t i = 0; i < man.shards.size(); ++i) {
    const ShardEntry& e = man.shards[i];
    os << "shard " << i << ' ' << e.file << ' ' << payload_kind_name(e.kind)
       << ' ' << e.row_lo << ' ' << e.row_hi << ' ' << e.x_lo << ' ' << e.x_hi
       << ' ' << hex64(e.checksum) << '\n';
  }
  os.flush();
  if (!os.good()) return Status::IoError("manifest write failed (stream error)");
  return Status::Ok();
}

Status save_manifest(const std::string& path, const ShardManifest& man) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::IoError("cannot open '" + path + "' for writing");
  Status st = save_manifest(os, man);
  os.close();
  if (st.ok() && !os.good()) {
    st = Status::IoError("write to '" + path + "' failed");
  }
  return st;
}

Result<ShardManifest> load_manifest(std::istream& is) {
  std::string line;
  auto next_line = [&](const char* what) -> Result<std::string> {
    if (!std::getline(is, line)) {
      return Status::CorruptSnapshot(std::string("manifest truncated before ") +
                                     what);
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  };
  auto field = [](const std::string& l, const char* key,
                  uint64_t& out) -> Status {
    std::istringstream ls(l);
    std::string k, v, extra;
    if (!(ls >> k >> v) || k != key || (ls >> extra) ||
        !parse_u64(v, out)) {
      return Status::CorruptSnapshot(std::string("manifest: expected '") +
                                     key + " <count>', got '" + l + "'");
    }
    return Status::Ok();
  };

  Result<std::string> l = next_line("magic");
  if (!l.ok()) return l.status();
  {
    std::istringstream ls(*l);
    std::string magic, ver, extra;
    uint64_t v = 0;
    if (!(ls >> magic >> ver) || magic != kManifestMagic || (ls >> extra) ||
        !parse_u64(ver, v)) {
      return Status::CorruptSnapshot("bad magic: not an rsp shard manifest");
    }
    if (v != kManifestFormatVersion) {
      std::ostringstream os;
      os << "manifest format version " << v << " (this build speaks "
         << kManifestFormatVersion << ")";
      return Status::VersionMismatch(os.str());
    }
  }

  ShardManifest man;
  uint64_t nobs = 0, m = 0, k = 0;
  if (l = next_line("obstacle count"); !l.ok()) return l.status();
  if (Status st = field(*l, "obstacles", nobs); !st.ok()) return st;
  if (l = next_line("vertex count"); !l.ok()) return l.status();
  if (Status st = field(*l, "m", m); !st.ok()) return st;
  if (l = next_line("shard count"); !l.ok()) return l.status();
  if (Status st = field(*l, "shards", k); !st.ok()) return st;
  man.num_obstacles = static_cast<size_t>(nobs);
  man.m = static_cast<size_t>(m);
  if (k == 0 || k > m) {
    return Status::CorruptSnapshot("manifest shard count out of range");
  }

  for (uint64_t i = 0; i < k; ++i) {
    if (l = next_line("shard record"); !l.ok()) return l.status();
    std::istringstream ls(*l);
    std::string tag, idx, file, kind, rlo, rhi, xlo, xhi, sum, extra;
    if (!(ls >> tag >> idx >> file >> kind >> rlo >> rhi >> xlo >> xhi >>
          sum) ||
        tag != "shard" || (ls >> extra)) {
      return Status::CorruptSnapshot(shard_label(static_cast<size_t>(i)) +
                                     " record malformed: '" + *l + "'");
    }
    ShardEntry e;
    uint64_t ei = 0, erlo = 0, erhi = 0;
    int64_t exlo = 0, exhi = 0;
    std::optional<SnapshotPayloadKind> ek = payload_kind_from_name(kind);
    if (!parse_u64(idx, ei) || ei != i || !ek.has_value() ||
        !parse_u64(rlo, erlo) || !parse_u64(rhi, erhi) ||
        !parse_i64(xlo, exlo) || !parse_i64(xhi, exhi) ||
        !parse_hex64(sum, e.checksum)) {
      return Status::CorruptSnapshot(shard_label(static_cast<size_t>(i)) +
                                     " record malformed: '" + *l + "'");
    }
    e.file = std::move(file);
    e.kind = *ek;
    e.row_lo = static_cast<size_t>(erlo);
    e.row_hi = static_cast<size_t>(erhi);
    e.x_lo = exlo;
    e.x_hi = exhi;
    man.shards.push_back(std::move(e));
  }
  if (Status st = validate_manifest(man); !st.ok()) return st;
  return man;
}

Result<ShardManifest> load_manifest(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open '" + path + "' for reading");
  return load_manifest(is);
}

bool is_manifest_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::string magic(std::char_traits<char>::length(kManifestMagic), '\0');
  is.read(magic.data(), static_cast<std::streamsize>(magic.size()));
  return is.gcount() == static_cast<std::streamsize>(magic.size()) &&
         magic == kManifestMagic;
}

std::string shard_file_path(const std::string& manifest_path,
                            const ShardEntry& entry) {
  const std::filesystem::path shard(entry.file);
  if (shard.is_absolute()) return entry.file;
  return (std::filesystem::path(manifest_path).parent_path() / shard)
      .string();
}

size_t route_by_x(const ShardManifest& man, Coord x) {
  for (size_t i = 0; i + 1 < man.shards.size(); ++i) {
    if (x < man.shards[i].x_hi) return i;
  }
  return man.shards.size() - 1;
}

}  // namespace rsp
