#include "io/svg.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace rsp {

SvgCanvas::SvgCanvas(Rect world, int pixel_width) : world_(world) {
  RSP_CHECK(world.width() > 0 && world.height() > 0);
  w_ = pixel_width;
  scale_ = static_cast<double>(w_) / static_cast<double>(world.width());
  h_ = static_cast<int>(scale_ * static_cast<double>(world.height())) + 1;
}

double SvgCanvas::sx(Coord x) const {
  return (static_cast<double>(x - world_.xmin)) * scale_;
}
double SvgCanvas::sy(Coord y) const {
  return static_cast<double>(h_) -
         (static_cast<double>(y - world_.ymin)) * scale_;
}

void SvgCanvas::add_rect(const Rect& r, const std::string& fill,
                         const std::string& stroke) {
  std::ostringstream os;
  os << "<rect x='" << sx(r.xmin) << "' y='" << sy(r.ymax) << "' width='"
     << (sx(r.xmax) - sx(r.xmin)) << "' height='" << (sy(r.ymin) - sy(r.ymax))
     << "' fill='" << fill << "' stroke='" << stroke << "'/>\n";
  body_ += os.str();
}

void SvgCanvas::add_polyline(const std::vector<Point>& pts,
                             const std::string& stroke, double width,
                             bool dashed) {
  if (pts.size() < 2) return;
  std::ostringstream os;
  os << "<polyline fill='none' stroke='" << stroke << "' stroke-width='"
     << width << "'";
  if (dashed) os << " stroke-dasharray='6,4'";
  os << " points='";
  for (const auto& p : pts) os << sx(p.x) << ',' << sy(p.y) << ' ';
  os << "'/>\n";
  body_ += os.str();
}

void SvgCanvas::add_polygon(const std::vector<Point>& pts,
                            const std::string& stroke,
                            const std::string& fill) {
  if (pts.size() < 3) return;
  std::ostringstream os;
  os << "<polygon fill='" << fill << "' stroke='" << stroke
     << "' stroke-width='2' points='";
  for (const auto& p : pts) os << sx(p.x) << ',' << sy(p.y) << ' ';
  os << "'/>\n";
  body_ += os.str();
}

void SvgCanvas::add_staircase(const Staircase& s, const std::string& stroke,
                              double width, bool dashed) {
  // Clamp sentinel coordinates into the (slightly expanded) world rect.
  Rect clip = world_.expanded(std::max<Coord>(2, world_.width() / 20));
  std::vector<Point> pts;
  for (Point p : s.points()) {
    p.x = std::clamp(p.x, clip.xmin, clip.xmax);
    p.y = std::clamp(p.y, clip.ymin, clip.ymax);
    if (pts.empty() || pts.back() != p) pts.push_back(p);
  }
  add_polyline(pts, stroke, width, dashed);
}

void SvgCanvas::add_point(const Point& p, const std::string& fill,
                          double radius) {
  std::ostringstream os;
  os << "<circle cx='" << sx(p.x) << "' cy='" << sy(p.y) << "' r='" << radius
     << "' fill='" << fill << "'/>\n";
  body_ += os.str();
}

void SvgCanvas::add_label(const Point& p, const std::string& text,
                          const std::string& color) {
  std::ostringstream os;
  os << "<text x='" << sx(p.x) + 5 << "' y='" << sy(p.y) - 5 << "' fill='"
     << color << "' font-size='14'>" << text << "</text>\n";
  body_ += os.str();
}

void SvgCanvas::add_scene(const Scene& scene) {
  add_polygon(scene.container().vertices(), "#222", "#fdfdf5");
  for (const auto& r : scene.obstacles()) add_rect(r);
}

std::string SvgCanvas::str() const {
  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w_
     << "' height='" << h_ << "' viewBox='0 0 " << w_ << ' ' << h_ << "'>\n"
     << "<rect width='100%' height='100%' fill='white'/>\n"
     << body_ << "</svg>\n";
  return os.str();
}

void SvgCanvas::write(const std::string& path) const {
  std::ofstream f(path);
  RSP_CHECK_MSG(f.good(), "cannot open SVG output file");
  f << str();
}

}  // namespace rsp
