#pragma once
// Read-only file mappings for zero-copy snapshot adoption.
//
// MappedFile wraps open+mmap(MAP_PRIVATE)+madvise on POSIX hosts; snapshot
// tables are adopted straight out of the mapping so replica start cost is a
// checksum pass plus the derived-structure rebuild, and the OS pages the
// bulk tables lazily. On non-POSIX hosts map() reports kIoError and callers
// fall back to the eager stream loader.

#include <cstddef>
#include <cstdint>
#include <ios>
#include <streambuf>
#include <string>

#include "api/status.h"
#include "common.h"

namespace rsp {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // Maps `path` read-only. On failure returns a status and leaves the
  // object unmapped.
  Status map(const std::string& path);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }

 private:
  void reset();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

// Fixed-buffer read streambuf over a mapping, so pre-v5 snapshots (and the
// boundary-tree blob, which has no flat-table layout to adopt) can be
// decoded from the mapped bytes by the ordinary stream reader.
class MemoryStreamBuf : public std::streambuf {
 public:
  MemoryStreamBuf(const uint8_t* data, size_t size) {
    char* p = const_cast<char*>(reinterpret_cast<const char*>(data));
    setg(p, p, p + size);
  }

 protected:
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override {
    if (!(which & std::ios_base::in)) return pos_type(off_type(-1));
    char* base = eback();
    off_type cur = gptr() - base;
    off_type end = egptr() - base;
    off_type target;
    switch (dir) {
      case std::ios_base::beg: target = off; break;
      case std::ios_base::cur: target = cur + off; break;
      case std::ios_base::end: target = end + off; break;
      default: return pos_type(off_type(-1));
    }
    if (target < 0 || target > end) return pos_type(off_type(-1));
    setg(base, base + target, base + end);
    return pos_type(target);
  }

  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override {
    return seekoff(off_type(pos), std::ios_base::beg, which);
  }
};

}  // namespace rsp
