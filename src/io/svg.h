#pragma once
// Small SVG renderer: regenerates the paper's illustrative figures
// (staircases, envelopes, separators, escape paths, shortest paths) from
// live geometry (§2 Fig. 2 envelopes, §3 Fig. 5 escape paths, separators
// of Theorem 2). Used by examples/figures.cpp.
//
// Thread safety: an SvgCanvas is a single-threaded accumulator — confine
// each instance to one thread; distinct instances are independent.

#include <string>
#include <vector>

#include "core/scene.h"
#include "geom/envelope.h"
#include "geom/staircase.h"

namespace rsp {

class SvgCanvas {
 public:
  // World-coordinate viewport; y is flipped so +y is up like the paper.
  SvgCanvas(Rect world, int pixel_width = 800);

  void add_rect(const Rect& r, const std::string& fill = "#888",
                const std::string& stroke = "#333");
  void add_polyline(const std::vector<Point>& pts, const std::string& stroke,
                    double width = 2.0, bool dashed = false);
  void add_polygon(const std::vector<Point>& pts, const std::string& stroke,
                   const std::string& fill = "none");
  // Staircases are clipped to the world rect before drawing.
  void add_staircase(const Staircase& s, const std::string& stroke,
                     double width = 2.0, bool dashed = false);
  void add_point(const Point& p, const std::string& fill = "#c00",
                 double radius = 3.0);
  void add_label(const Point& p, const std::string& text,
                 const std::string& color = "#000");
  void add_scene(const Scene& scene);

  std::string str() const;
  void write(const std::string& path) const;

 private:
  double sx(Coord x) const;
  double sy(Coord y) const;
  Rect world_;
  int w_, h_;
  double scale_;
  std::string body_;
};

}  // namespace rsp
